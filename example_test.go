package hyperloop_test

import (
	"fmt"

	"hyperloop"
)

// Example demonstrates the core workflow: replicate bytes durably to a
// three-replica chain with zero replica CPU, then survive a rack-wide
// power failure. Runs in deterministic virtual time.
func Example() {
	eng := hyperloop.NewEngine()
	tb := hyperloop.NewTestbed(eng, 3)
	defer tb.Group.Close()

	tb.Client().StoreWrite(0, []byte("hello"))
	tb.Group.GWrite(0, 5, true, func(r hyperloop.Result) {
		fmt.Println("replicated durably to 3 replicas")
	})
	eng.RunFor(hyperloop.Millisecond)

	survivors := 0
	for _, rep := range tb.Replicas() {
		rep.Dev.PowerFail()
		if string(rep.StoreBytes(0, 5)) == "hello" {
			survivors++
		}
	}
	fmt.Printf("after power failure: %d/3 replicas hold the data\n", survivors)
	// Output:
	// replicated durably to 3 replicas
	// after power failure: 3/3 replicas hold the data
}
