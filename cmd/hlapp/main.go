// Command hlapp regenerates the paper's application benchmarks (§6.2):
// Figure 11 (replicated RocksDB-style store under YCSB-A) and Figure 12
// (MongoDB-style store under YCSB A/B/D/E/F).
//
// Usage:
//
//	hlapp [-exp all|fig11|fig12] [-quick] [-seed N] [-parallel N] [-metrics-json FILE]
//
// -metrics-json runs a dedicated instrumented collection pass (skipping the
// figure tables) and dumps the merged metrics registry as JSON; the dump is
// bit-identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
	"hyperloop/internal/ycsb"
)

var (
	expFlag  = flag.String("exp", "all", "experiment: all, fig11, fig12")
	quick    = flag.Bool("quick", false, "reduced op counts for a fast run")
	csv      = flag.Bool("csv", false, "emit tables as CSV")
	seed     = flag.Int64("seed", 1, "simulation seed")
	parallel = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	metJSON  = flag.String("metrics-json", "", "run an instrumented collection pass and dump the metrics registry as JSON to this file")
)

func ms(d sim.Duration) string { return fmt.Sprintf("%.3fms", float64(d)/1e6) }

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	if *metJSON != "" {
		if err := dumpMetrics(*metJSON); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-json:", err)
			os.Exit(1)
		}
		return
	}
	records, ops := int64(2000), 20000
	if *quick {
		records, ops = 300, 3000
	}

	if *expFlag == "all" || *expFlag == "fig11" {
		if err := fig11(records, ops); err != nil {
			fmt.Fprintln(os.Stderr, "fig11:", err)
			os.Exit(1)
		}
	}
	if *expFlag == "all" || *expFlag == "fig12" {
		if err := fig12(records, ops); err != nil {
			fmt.Fprintln(os.Stderr, "fig12:", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics runs the instrumented collection pass (one RocksDB and one
// MongoDB cell per system, skipping the figure tables) and writes the
// merged registry dump.
func dumpMetrics(path string) error {
	reg, err := experiments.AppMetrics(*seed, 2000)
	if err != nil {
		return err
	}
	data, err := reg.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote metrics dump to %s\n", path)
	return nil
}

func fig11(records int64, ops int) error {
	fmt.Println("=== Figure 11: replicated RocksDB, YCSB-A updates, 10:1 co-location ===")
	var ps []experiments.AppParams
	for _, sys := range []experiments.System{
		experiments.HyperLoop, experiments.NaiveEvent, experiments.NaivePolling,
	} {
		ps = append(ps, experiments.AppParams{
			System: sys, Records: records, Ops: ops, TenantsPerCore: 10, Seed: *seed,
		})
	}
	results, err := experiments.RocksDBSweep(ps)
	if err != nil {
		return err
	}
	t := stats.NewTable("system", "avg", "p95", "p99", "p99-vs-HL")
	hlP99 := results[0].Latency.P99
	for _, r := range results {
		t.AddRow(r.System, ms(r.Latency.Mean), ms(r.Latency.P95), ms(r.Latency.P99),
			fmt.Sprintf("%.1fx", float64(r.Latency.P99)/float64(hlP99)))
	}
	printTable(t)
	return nil
}

func fig12(records int64, ops int) error {
	fmt.Println("=== Figure 12: MongoDB-style store, YCSB A/B/D/E/F, native vs HyperLoop ===")
	names := []string{"A", "B", "D", "E", "F"}
	var ps []experiments.AppParams
	for _, name := range names {
		for _, sys := range []experiments.System{experiments.NaivePolling, experiments.HyperLoop} {
			ps = append(ps, experiments.AppParams{
				System: sys, Workload: ycsb.Workloads[name],
				Records: records, Ops: ops, TenantsPerCore: 10, Seed: *seed,
			})
		}
	}
	results, err := experiments.MongoDBSweep(ps)
	if err != nil {
		return err
	}
	t := stats.NewTable("workload", "native-avg", "native-p99", "HL-avg", "HL-p99", "avg-cut", "gap-cut")
	for ni, name := range names {
		nv, hl := results[2*ni], results[2*ni+1]
		avgCut := 100 * (1 - float64(hl.Latency.Mean)/float64(nv.Latency.Mean))
		gapNV := float64(nv.Latency.P99 - nv.Latency.Mean)
		gapHL := float64(hl.Latency.P99 - hl.Latency.Mean)
		gapCut := 100 * (1 - gapHL/gapNV)
		t.AddRow(name, ms(nv.Latency.Mean), ms(nv.Latency.P99),
			ms(hl.Latency.Mean), ms(hl.Latency.P99),
			fmt.Sprintf("%.0f%%", avgCut), fmt.Sprintf("%.0f%%", gapCut))
	}
	printTable(t)
	fmt.Println("(avg-cut: average write-latency reduction; gap-cut: avg<->p99 gap reduction)")
	return nil
}

// printTable renders a result table as text or CSV per the -csv flag.
func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
