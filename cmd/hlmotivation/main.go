// Command hlmotivation regenerates the paper's motivation experiment
// (§2.2, Figure 2): MongoDB-like latency and context switches under
// multi-tenant co-location, sweeping replica-set count (2a) and cores per
// server (2b).
//
// Usage:
//
//	hlmotivation [-exp all|fig2a|fig2b] [-quick] [-seed N] [-parallel N] [-metrics-json FILE]
//
// -metrics-json runs a dedicated instrumented collection pass (skipping the
// figure tables) and dumps the merged metrics registry as JSON; the dump is
// bit-identical at any -parallel setting.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	expFlag  = flag.String("exp", "all", "experiment: all, fig2a, fig2b")
	quick    = flag.Bool("quick", false, "reduced op counts for a fast run")
	csv      = flag.Bool("csv", false, "emit tables as CSV")
	seed     = flag.Int64("seed", 1, "simulation seed")
	parallel = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	metJSON  = flag.String("metrics-json", "", "run an instrumented collection pass and dump the metrics registry as JSON to this file")
)

func ms(d sim.Duration) string { return fmt.Sprintf("%.3fms", float64(d)/1e6) }

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	if *metJSON != "" {
		if err := dumpMetrics(*metJSON); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-json:", err)
			os.Exit(1)
		}
		return
	}
	opsPerSet := 2000
	if *quick {
		opsPerSet = 400
	}
	if *expFlag == "all" || *expFlag == "fig2a" {
		if err := fig2a(opsPerSet); err != nil {
			fmt.Fprintln(os.Stderr, "fig2a:", err)
			os.Exit(1)
		}
	}
	if *expFlag == "all" || *expFlag == "fig2b" {
		if err := fig2b(opsPerSet); err != nil {
			fmt.Fprintln(os.Stderr, "fig2b:", err)
			os.Exit(1)
		}
	}
}

// dumpMetrics runs the instrumented collection pass (one Figure 2(a)-style
// cell per replica-set count, skipping the figure tables) and writes the
// merged registry dump.
func dumpMetrics(path string) error {
	reg, err := experiments.MotivationMetrics(*seed, 400)
	if err != nil {
		return err
	}
	data, err := reg.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote metrics dump to %s\n", path)
	return nil
}

func fig2a(opsPerSet int) error {
	fmt.Println("=== Figure 2(a): latency vs replica-sets (3 servers x 16 cores) ===")
	sets := []int{9, 12, 15, 18, 21, 24, 27}
	if *quick {
		sets = []int{9, 18, 27}
	}
	var ps []experiments.MotivationParams
	for _, n := range sets {
		ps = append(ps, experiments.MotivationParams{ReplicaSets: n, OpsPerSet: opsPerSet, Seed: *seed})
	}
	results, err := experiments.MotivationSweep(ps)
	if err != nil {
		return err
	}
	var maxSw uint64
	for _, r := range results {
		if r.ContextSwitches > maxSw {
			maxSw = r.ContextSwitches
		}
	}
	t := stats.NewTable("sets", "avg", "p95", "p99", "ctx-switches(norm)", "util")
	for _, r := range results {
		t.AddRow(fmt.Sprint(r.ReplicaSets),
			ms(r.Latency.Mean), ms(r.Latency.P95), ms(r.Latency.P99),
			fmt.Sprintf("%.2f", float64(r.ContextSwitches)/float64(maxSw)),
			fmt.Sprintf("%.2f", r.Utilization))
	}
	printTable(t)
	return nil
}

func fig2b(opsPerSet int) error {
	fmt.Println("=== Figure 2(b): latency vs cores per server (18 replica-sets) ===")
	cores := []int{2, 4, 6, 8, 10, 12, 14, 16}
	if *quick {
		cores = []int{4, 8, 16}
	}
	var ps []experiments.MotivationParams
	for _, c := range cores {
		ps = append(ps, experiments.MotivationParams{ReplicaSets: 18, Cores: c, OpsPerSet: opsPerSet, Seed: *seed})
	}
	results, err := experiments.MotivationSweep(ps)
	if err != nil {
		return err
	}
	var maxSw uint64
	for _, r := range results {
		if r.ContextSwitches > maxSw {
			maxSw = r.ContextSwitches
		}
	}
	t := stats.NewTable("cores", "avg", "p95", "p99", "ctx-switches(norm)", "util")
	for _, r := range results {
		t.AddRow(fmt.Sprint(r.Cores),
			ms(r.Latency.Mean), ms(r.Latency.P95), ms(r.Latency.P99),
			fmt.Sprintf("%.2f", float64(r.ContextSwitches)/float64(maxSw)),
			fmt.Sprintf("%.2f", r.Utilization))
	}
	printTable(t)
	return nil
}

// printTable renders a result table as text or CSV per the -csv flag.
func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
