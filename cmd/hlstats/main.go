// Command hlstats renders a text dashboard from a metrics dump written by
// hlmicro/hlshard/hlchaos -metrics-json. The dump is pure data (virtual-time
// counters, gauges, and latency histograms), so the dashboard is a pure
// function of the file — diffing two renders diffs two runs.
//
// Usage:
//
//	hlstats [-filter substr] [-csv] [-seed N] [-parallel N] FILE
//
// -seed and -parallel exist on every hl* command with the same defaults;
// hlstats renders a file rather than running a simulation, so here they are
// accepted for interface uniformity and do not change the output.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	filter = flag.String("filter", "", "only show series whose subsystem/name/label contains this substring")
	csv    = flag.Bool("csv", false, "emit tables as CSV")
	_      = flag.Int64("seed", 1, "simulation seed")
	_      = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hlstats [-filter substr] [-csv] FILE")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	dump, err := metrics.ParseJSON(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	render(dump)
}

func keep(subsystem, name, label string) bool {
	if *filter == "" {
		return true
	}
	return strings.Contains(subsystem+"/"+name+"/"+label, *filter)
}

func render(d metrics.JSONDump) {
	fmt.Printf("=== metrics dump: sampled at %v virtual ===\n", sim.Time(d.SampledAtNs))

	if rows := counters(d); rows != nil {
		fmt.Println("--- counters ---")
		printTable(rows)
	}
	if rows := gauges(d); rows != nil {
		fmt.Println("--- gauges ---")
		printTable(rows)
	}
	if rows := hists(d); rows != nil {
		fmt.Println("--- histograms (virtual-time latencies) ---")
		printTable(rows)
	}
}

func counters(d metrics.JSONDump) *stats.Table {
	t := stats.NewTable("series", "label", "value", "rate/s")
	n := 0
	for _, c := range d.Counters {
		if !keep(c.Subsystem, c.Name, c.Label) {
			continue
		}
		n++
		rate := "-"
		if c.Rate != 0 {
			rate = fmt.Sprintf("%.1f", c.Rate)
		}
		t.AddRow(c.Subsystem+"/"+c.Name, c.Label, fmt.Sprintf("%.0f", c.Value), rate)
	}
	if n == 0 {
		return nil
	}
	return t
}

func gauges(d metrics.JSONDump) *stats.Table {
	t := stats.NewTable("series", "label", "value")
	n := 0
	for _, g := range d.Gauges {
		if !keep(g.Subsystem, g.Name, g.Label) {
			continue
		}
		n++
		t.AddRow(g.Subsystem+"/"+g.Name, g.Label, fmt.Sprintf("%g", g.Value))
	}
	if n == 0 {
		return nil
	}
	return t
}

func hists(d metrics.JSONDump) *stats.Table {
	t := stats.NewTable("series", "label", "count", "mean", "p50", "p99", "max")
	q := func(h metrics.JSONHist, p string) string {
		v, ok := h.Quantiles[p]
		if !ok {
			return "-"
		}
		return us(v)
	}
	n := 0
	for _, h := range d.Histograms {
		if !keep(h.Subsystem, h.Name, h.Label) {
			continue
		}
		n++
		t.AddRow(h.Subsystem+"/"+h.Name, h.Label, fmt.Sprint(h.Count),
			us(h.MeanNs), q(h, "50"), q(h, "99"), us(h.MaxNs))
	}
	if n == 0 {
		return nil
	}
	return t
}

func us(ns int64) string { return fmt.Sprintf("%.1fus", float64(ns)/1000) }

func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
