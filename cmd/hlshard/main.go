// Command hlshard exercises the sharded multi-group data plane: the
// shard-count scaling curve (aggregate gWRITE throughput and per-shard p99
// on a fixed 16-host pool) and the migration-inflight chaos matrix (live
// gMEMCPY shard migration with a source or destination replica killed
// mid-copy, judged by the sharded invariant checkers). The same -seed
// always produces byte-identical output at any -parallel setting; the exit
// status is 1 if any chaos scenario fails a check.
//
// Usage:
//
//	hlshard [-exp all|scaling|pscaling|migrate] [-quick] [-seed N] [-seeds N] [-parallel N]
//	        [-engine-workers N] [-csv] [-bench-json FILE] [-metrics-json FILE]
//	        [-cpuprofile FILE] [-memprofile FILE]
//
// -exp pscaling runs the partitioned-engine scaling cell: the 16-shard
// workload on a sim.PartitionedEngine with -engine-workers workers;
// results and metrics dumps are byte-identical at every worker count.
//
// -metrics-json re-runs the selected scaling experiment with the
// observability plane attached (registries merged in deterministic order —
// bit-identical at any -parallel or -engine-workers setting) and dumps the
// merged registry as JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"hyperloop/internal/bench"
	"hyperloop/internal/experiments"
	"hyperloop/internal/metrics"
	"hyperloop/internal/prof"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	expFlag    = flag.String("exp", "all", "experiment: all, scaling, pscaling, migrate")
	quick      = flag.Bool("quick", false, "reduced op counts for a fast run")
	csv        = flag.Bool("csv", false, "emit tables as CSV")
	seed       = flag.Int64("seed", 1, "simulation seed")
	seeds      = flag.Int("seeds", 4, "migration-inflight scenarios to run")
	parallel   = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	engWorkers = flag.Int("engine-workers", 0, "partitioned-engine worker count (0 = all cores, 1 = serial)")
	benchJSON  = flag.String("bench-json", "", "write machine-readable benchmark results to this file")
	metJSON    = flag.String("metrics-json", "", "run the instrumented scaling experiment and dump the merged metrics registry as JSON to this file")
	cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf    = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

var recorder = bench.NewRecorder()

// stopProf flushes any live profiles; os.Exit skips defers, so error paths
// call stopProfAndExit instead.
var stopProf = func() {}

func stopProfAndExit(code int) {
	stopProf()
	os.Exit(code)
}

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	var err error
	stopProf, err = prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()
	if *metJSON != "" {
		if err := dumpMetrics(*metJSON); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			stopProfAndExit(1)
		}
		return
	}

	ok := true
	switch *expFlag {
	case "scaling":
		scaling()
	case "pscaling":
		pscaling()
	case "migrate":
		ok = migrate()
	case "all":
		scaling()
		pscaling()
		ok = migrate()
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}

	if *benchJSON != "" {
		if err := recorder.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			stopProfAndExit(1)
		}
		fmt.Printf("wrote benchmark results to %s\n", *benchJSON)
	}
	if !ok {
		stopProfAndExit(1)
	}
}

func us(d sim.Duration) string { return fmt.Sprintf("%.1fus", float64(d)/1000) }

// dumpMetrics runs the selected scaling experiment with registries attached
// and writes the merged dump. For -exp pscaling the dump is the per-group
// registries of one 16-shard partitioned cell merged in group order — the
// byte-for-byte artifact the CI determinism gate compares across
// -engine-workers settings.
func dumpMetrics(path string) error {
	ops := 400
	if *quick {
		ops = 150
	}
	merged := metrics.NewRegistry()
	if *expFlag == "pscaling" {
		r := experiments.RunPartitionedScaling(experiments.PartitionedScalingParams{
			Shards: 16, Workers: *engWorkers, Seed: *seed, OpsPerShard: ops, Metrics: true,
		})
		if !r.Skew.Pass() {
			return fmt.Errorf("skew check: %w", r.Skew.Err)
		}
		merged = r.MergedRegistry()
	} else {
		counts := experiments.ShardScalingCounts
		res, err := experiments.RunParallel(experiments.Parallelism(), len(counts),
			func(i int) (experiments.ShardScalingResult, error) {
				return experiments.RunShardScaling(experiments.ShardScalingParams{
					Shards: counts[i], Seed: *seed, OpsPerShard: ops, Metrics: true,
				}), nil
			})
		if err != nil {
			return err
		}
		for _, r := range res {
			merged.Merge(r.Reg)
		}
	}
	data, err := merged.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote metrics dump to %s\n", path)
	return nil
}

// scaling prints the shard-count scaling curve on the fixed host pool.
func scaling() {
	ops := 400
	if *quick {
		ops = 150
	}
	fmt.Printf("=== Shard scaling: aggregate gWRITE throughput, 16-host pool, %d ops/shard ===\n", ops)
	res := experiments.ShardScaling(nil, *seed, ops)
	t := stats.NewTable("shards", "acked", "elapsed", "kops/s", "avg", "p99", "max-shard-p99")
	for _, r := range res {
		recorder.Add(bench.Result{
			Experiment: "shard-scaling",
			Params:     map[string]any{"shards": r.Shards},
			AvgNs:      int64(r.Lat.Mean),
			P99Ns:      int64(r.Lat.P99),
			Extra: map[string]float64{
				"tput_kops":        r.TputKops,
				"max_shard_p99_ns": float64(r.MaxShardP99),
			},
		})
		t.AddRow(fmt.Sprint(r.Shards), fmt.Sprint(r.Acked), fmt.Sprint(r.Elapsed),
			fmt.Sprintf("%.1f", r.TputKops), us(r.Lat.Mean), us(r.Lat.P99), us(r.MaxShardP99))
	}
	printTable(t)
}

// pscaling runs the 16-shard partitioned-engine cell across worker counts.
// Simulated results must be byte-identical at every count (the process panics
// if they diverge); only the wall clock may change, and the wall-clock column
// plus the recorded speedup are the multi-core payoff measurement.
func pscaling() {
	ops := 400
	if *quick {
		ops = 150
	}
	workerCounts := []int{1, 2, 4, 8}
	if *engWorkers > 0 {
		workerCounts = []int{1, *engWorkers}
	}
	fmt.Printf("=== Partitioned scaling: 16 shards / 4 groups, %d ops/shard, lookahead = inter-group min latency ===\n", ops)
	t := stats.NewTable("workers", "acked", "cross", "elapsed", "kops/s", "avg", "p99", "wall-ms", "vs-w1")
	var refSum string
	var refWall float64
	for _, w := range workerCounts {
		wall := time.Now()
		r := experiments.RunPartitionedScaling(experiments.PartitionedScalingParams{
			Shards: 16, Workers: w, Seed: *seed, OpsPerShard: ops,
		})
		wallMs := float64(time.Since(wall).Microseconds()) / 1e3
		if !r.Skew.Pass() {
			fmt.Fprintf(os.Stderr, "pscaling: workers=%d: %v\n", w, r.Skew.Err)
			stopProfAndExit(1)
		}
		sum := fmt.Sprintf("acked=%d cross=%d elapsed=%v lat=%v maxShardP99=%v",
			r.Acked, r.CrossAcked, r.Elapsed, r.Lat, r.MaxShardP99)
		speedup := 1.0
		if w == workerCounts[0] {
			refSum, refWall = sum, wallMs
		} else {
			if sum != refSum {
				fmt.Fprintf(os.Stderr, "pscaling: workers=%d diverged from serial:\n  w1: %s\n  w%d: %s\n",
					w, refSum, w, sum)
				stopProfAndExit(1)
			}
			speedup = refWall / wallMs
		}
		recorder.Add(bench.Result{
			Experiment: "partitioned-scaling",
			Params:     map[string]any{"shards": r.Shards, "engine_workers": w},
			AvgNs:      int64(r.Lat.Mean),
			P99Ns:      int64(r.Lat.P99),
			Extra: map[string]float64{
				"tput_kops":        r.TputKops,
				"max_shard_p99_ns": float64(r.MaxShardP99),
				"cross_acked":      float64(r.CrossAcked),
				"wall_ms":          wallMs,
				"speedup_vs_w1":    speedup,
				"cores":            float64(runtime.NumCPU()),
			},
		})
		t.AddRow(fmt.Sprint(w), fmt.Sprint(r.Acked), fmt.Sprint(r.CrossAcked),
			fmt.Sprint(r.Elapsed), fmt.Sprintf("%.1f", r.TputKops),
			us(r.Lat.Mean), us(r.Lat.P99),
			fmt.Sprintf("%.1f", wallMs), fmt.Sprintf("%.2fx", speedup))
	}
	printTable(t)
	fmt.Printf("simulated results identical at all worker counts (%d cores available)\n", runtime.NumCPU())
}

// migrate runs the migration-inflight chaos matrix and narrates the first
// scenario's migration timeline in full.
func migrate() bool {
	n := *seeds
	if *quick && n > 2 {
		n = 2
	}
	fmt.Printf("=== Migration-inflight chaos: %d scenarios (base seed %d) ===\n", n, *seed)
	verdicts := experiments.MigrationMatrix(*seed, n)
	t := stats.NewTable("seed", "kill", "migrate@", "fault+", "acked/err", "migrated", "checks", "verdict")
	failed := 0
	for _, v := range verdicts {
		verdict := "PASS"
		if !v.Pass() {
			verdict = "FAIL"
			failed++
		}
		kill := fmt.Sprintf("source[%d]", v.Spec.VictimIdx)
		if v.Spec.KillDest {
			kill = fmt.Sprintf("dest[%d]", v.Spec.VictimIdx)
		}
		t.AddRow(fmt.Sprint(v.Params.Seed), kill, fmt.Sprint(v.Spec.MigrateAt),
			fmt.Sprint(v.Spec.FaultAfter), fmt.Sprintf("%d/%d", v.Acked, v.Errored),
			fmt.Sprint(v.Migrated), v.Checks.Summary(), verdict)
	}
	printTable(t)

	if len(verdicts) > 0 {
		v := verdicts[0]
		fmt.Printf("--- timeline, seed %d (%v) ---\n", v.Params.Seed, v.Spec)
		for _, e := range v.Timeline {
			fmt.Printf("    %10v  %s\n", e.At, e.What)
		}
		for _, e := range v.Faults {
			fmt.Printf("    %v\n", e)
		}
	}

	for _, v := range verdicts {
		if v.Pass() {
			continue
		}
		fmt.Printf("--- FAILED seed %d (%v) ---\n", v.Params.Seed, v.Spec)
		for _, r := range v.Checks {
			fmt.Printf("    %v\n", r)
		}
	}
	if failed > 0 {
		fmt.Printf("%d of %d scenarios FAILED\n", failed, len(verdicts))
		return false
	}
	fmt.Printf("all %d scenarios passed\n", len(verdicts))
	return true
}

func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
