// Command hlchaos runs the deterministic fault matrix: every fault-scenario
// class (link partition, crash+replace, power-fail mid-chain, NIC stall,
// tenant CPU burst, migration-inflight replica kills on the sharded plane,
// and admission-burst tenant floods on the open-loop serving plane) injected
// into a live replicated-transaction cluster, with post-recovery invariant
// checkers delivering a scenario-by-scenario verdict. The same -seed always
// produces byte-identical output; the exit status is 1 if any scenario
// fails a check.
//
// Usage:
//
//	hlchaos [-seed N] [-seeds-per-class N] [-classes all|a,b,...] [-parallel N]
//	        [-engine-workers N] [-v] [-metrics-json FILE]
//
// -metrics-json merges every scenario's metrics registry in matrix order
// (bit-identical at any -parallel setting) and dumps the result as JSON.
//
// -engine-workers N (N > 0) appends the partitioned-engine determinism gate:
// the seeded 16-shard cell runs serially and again at N workers, and the
// scenario fails unless the results and merged metrics dumps are
// byte-identical and both runs pass the conservative-lookahead skew check.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"hyperloop/internal/experiments"
	"hyperloop/internal/faults"
	"hyperloop/internal/load"
	"hyperloop/internal/metrics"
	"hyperloop/internal/qos"
	"hyperloop/internal/stats"
)

var (
	seed       = flag.Int64("seed", 1, "simulation seed")
	seedsPer   = flag.Int("seeds-per-class", 2, "seeds run per scenario class")
	classesStr = flag.String("classes", "all", "comma-separated class names, or all")
	parallel   = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	engWorkers = flag.Int("engine-workers", 0, "partitioned-engine worker count for the determinism gate (0 = skip the gate)")
	verbose    = flag.Bool("v", false, "print fault timelines and per-check details")
	metJSON    = flag.String("metrics-json", "", "merge every scenario's metrics registry and dump as JSON to this file")
)

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)

	// migration-inflight scenarios run on the sharded plane and
	// admission-burst scenarios on the open-loop serving plane; each is
	// judged by its own checker set, so they split off from the chain matrix.
	requested := faults.AllClasses
	if *classesStr != "all" {
		requested = nil
		for _, name := range strings.Split(*classesStr, ",") {
			c, err := faults.ParseClass(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			requested = append(requested, c)
		}
	}
	var classes []faults.Class
	migration, admission, lockcont, coldrestore := false, false, false, false
	for _, c := range requested {
		switch c {
		case faults.MigrationInflight:
			migration = true
		case faults.AdmissionBurst:
			admission = true
		case faults.LockContention:
			lockcont = true
		case faults.ColdRestore:
			coldrestore = true
		default:
			classes = append(classes, c)
		}
	}

	verdicts := experiments.FaultMatrix(classes, *seed, *seedsPer)
	merged := metrics.NewRegistry()
	for _, v := range verdicts {
		merged.Merge(v.Metrics)
	}

	fmt.Printf("=== Fault matrix: %d classes x %d seeds (base seed %d) ===\n",
		len(classes), *seedsPer, *seed)
	t := stats.NewTable("class", "seed", "victim", "fault@", "detect", "txns ok/err", "checks", "verdict")
	failed := 0
	for _, v := range verdicts {
		verdict := "PASS"
		if !v.Pass() {
			verdict = "FAIL"
			failed++
		}
		detect := "-"
		if v.Failovers > 0 {
			detect = fmt.Sprint(v.DetectIn)
		}
		t.AddRow(v.Spec.Class.String(), fmt.Sprint(v.Spec.Seed),
			fmt.Sprintf("r%d", v.Spec.VictimIdx), fmt.Sprint(v.Spec.FaultAt), detect,
			fmt.Sprintf("%d/%d", v.Committed, v.Errored), v.Checks.Summary(), verdict)
	}
	fmt.Println(t)

	for _, v := range verdicts {
		if !*verbose && v.Pass() {
			continue
		}
		fmt.Printf("--- %v ---\n", v.Spec)
		for _, e := range v.Timeline {
			fmt.Printf("    %v\n", e)
		}
		for _, r := range v.Checks {
			fmt.Printf("    %v\n", r)
		}
	}

	total := len(verdicts)
	if migration {
		mig := experiments.MigrationMatrix(*seed, *seedsPer)
		total += len(mig)
		for _, v := range mig {
			merged.Merge(v.Metrics)
		}
		fmt.Printf("=== Migration-inflight: %d scenarios (base seed %d) ===\n", len(mig), *seed)
		mt := stats.NewTable("seed", "kill", "migrate@", "fault+", "puts ok/err", "migrated", "checks", "verdict")
		for _, v := range mig {
			verdict := "PASS"
			if !v.Pass() {
				verdict = "FAIL"
				failed++
			}
			kill := fmt.Sprintf("source[%d]", v.Spec.VictimIdx)
			faultAfter := v.Spec.FaultAfter
			if v.Spec.Retier {
				kill, faultAfter = "retier-dest", v.Spec.RetierAfter
			} else if v.Spec.KillDest {
				kill = fmt.Sprintf("dest[%d]", v.Spec.VictimIdx)
			}
			mt.AddRow(fmt.Sprint(v.Params.Seed), kill, fmt.Sprint(v.Spec.MigrateAt),
				fmt.Sprint(faultAfter), fmt.Sprintf("%d/%d", v.Acked, v.Errored),
				fmt.Sprint(v.Migrated), v.Checks.Summary(), verdict)
		}
		fmt.Println(mt)
		for _, v := range mig {
			if !*verbose && v.Pass() {
				continue
			}
			fmt.Printf("--- %v ---\n", v.Spec)
			for _, e := range v.Timeline {
				fmt.Printf("    %v  %s\n", e.At, e.What)
			}
			for _, r := range v.Checks {
				fmt.Printf("    %v\n", r)
			}
		}
	}

	if admission {
		adm := experiments.AdmissionBurstMatrix(*seed, *seedsPer)
		total += len(adm)
		for _, v := range adm {
			merged.Merge(v.Metrics)
		}
		fmt.Printf("=== Admission-burst: %d scenarios (base seed %d) ===\n", len(adm), *seed)
		at := stats.NewTable("seed", "burst", "bucket", "throttled", "victim p99 base/burst/off", "checks", "verdict")
		for _, v := range adm {
			verdict := "PASS"
			if !v.Pass() {
				verdict = "FAIL"
				failed++
			}
			at.AddRow(fmt.Sprint(v.Params.Seed), fmt.Sprintf("%dx", v.Spec.BurstMult),
				fmt.Sprintf("%.0f/s+%.0f", v.Spec.AggressorRate, v.Spec.AggressorBurst),
				fmt.Sprintf("%d/%d", burstTenant(v.Burst, "aggressor").Throttled,
					burstTenant(v.Burst, "aggressor").Arrivals),
				fmt.Sprintf("%v / %v / %v", burstTenant(v.Baseline, "victim").P99,
					burstTenant(v.Burst, "victim").P99, burstTenant(v.Uncontrolled, "victim").P99),
				v.Checks.Summary(), verdict)
		}
		fmt.Println(at)
		for _, v := range adm {
			if !*verbose && v.Pass() {
				continue
			}
			fmt.Printf("--- %v ---\n", v.Spec)
			for _, r := range v.Checks {
				fmt.Printf("    %v\n", r)
			}
		}
	}

	if admission {
		// The QoS-on arm of the tenant-burst gate: the full elastic scenario
		// (throttle, funded edge scale-out, spend cap) with the victim's p99
		// held within 10% of baseline as a hard check.
		iso := experiments.TenantIsolationMatrix(*seed, *seedsPer)
		total += len(iso)
		for _, v := range iso {
			merged.Merge(v.Metrics)
		}
		fmt.Printf("=== Tenant-isolation (QoS on): %d scenarios (base seed %d) ===\n", len(iso), *seed)
		it := stats.NewTable("seed", "victim p99 base/burst/off", "aggressor acked", "steps/spent", "checks", "verdict")
		for _, v := range iso {
			verdict := "PASS"
			if !v.Pass() {
				verdict = "FAIL"
				failed++
			}
			agg := burstTenant(v.QoSOn, "aggressor")
			var ledger qos.TenantState
			for _, st := range v.QoSOn.QoSTenants {
				if st.Name == "aggressor" {
					ledger = st
				}
			}
			it.AddRow(fmt.Sprint(v.Params.Seed),
				fmt.Sprintf("%v / %v / %v", burstTenant(v.Baseline, "victim").P99,
					burstTenant(v.QoSOn, "victim").P99, burstTenant(v.Uncontrolled, "victim").P99),
				fmt.Sprintf("%d/%d", agg.Acked, agg.Arrivals),
				fmt.Sprintf("%d/%.0f", ledger.Steps, ledger.Spent),
				v.Checks.Summary(), verdict)
		}
		fmt.Println(it)
		for _, v := range iso {
			if !*verbose && v.Pass() {
				continue
			}
			fmt.Printf("--- tenant-isolation seed=%d ---\n", v.Params.Seed)
			for _, r := range v.Checks {
				fmt.Printf("    %v\n", r)
			}
			for _, e := range v.QoSOn.QoSEvents {
				fmt.Printf("    %v %s %v: %s\n", e.At, e.Name, e.Kind, e.Detail)
			}
		}
	}

	if lockcont {
		lc := experiments.LockContentionMatrix(*seed, *seedsPer)
		total += len(lc)
		for _, v := range lc {
			merged.Merge(v.Metrics)
		}
		fmt.Printf("=== Lock-contention: %d scenarios (base seed %d) ===\n", len(lc), *seed)
		lt := stats.NewTable("seed", "cycles", "hold", "stall", "acquired", "retries", "checks", "verdict")
		for _, v := range lc {
			verdict := "PASS"
			if !v.Pass() {
				verdict = "FAIL"
				failed++
			}
			lt.AddRow(fmt.Sprint(v.Spec.Seed), fmt.Sprintf("2x%d", v.Spec.Cycles),
				fmt.Sprint(v.Spec.Hold),
				fmt.Sprintf("r%d@%v+%v", v.Spec.VictimIdx, v.Spec.StallAt, v.Spec.StallFor),
				fmt.Sprint(v.Acquired), fmt.Sprint(v.Retries), v.Checks.Summary(), verdict)
		}
		fmt.Println(lt)
		for _, v := range lc {
			if !*verbose && v.Pass() {
				continue
			}
			fmt.Printf("--- %v ---\n", v.Spec)
			for _, e := range v.Timeline {
				fmt.Printf("    %v\n", e)
			}
			for _, r := range v.Checks {
				fmt.Printf("    %v\n", r)
			}
		}
	}

	if coldrestore {
		cold := experiments.ColdRestoreMatrix(*seed, *seedsPer)
		total += len(cold)
		for _, v := range cold {
			merged.Merge(v.Metrics)
		}
		fmt.Printf("=== Cold-restore: %d scenarios (base seed %d) ===\n", len(cold), *seed)
		ct := stats.NewTable("seed", "victim", "fault@", "chaos", "rto", "rpo-cold", "acked-lost", "attempts", "checks", "verdict")
		for _, v := range cold {
			verdict := "PASS"
			if !v.Pass() {
				verdict = "FAIL"
				failed++
			}
			chaos := "-"
			switch {
			case v.Spec.KillUploader && v.Spec.KillRestorer:
				chaos = "uploader+restorer"
			case v.Spec.KillUploader:
				chaos = "uploader"
			case v.Spec.KillRestorer:
				chaos = "restorer"
			}
			ct.AddRow(fmt.Sprint(v.Spec.Seed), fmt.Sprintf("r%d", v.Spec.VictimIdx),
				fmt.Sprint(v.Spec.FaultAt), chaos, fmt.Sprint(v.RTO),
				fmt.Sprint(v.RPOCold), fmt.Sprint(v.AckedLost),
				fmt.Sprint(v.RestoreAttempts), v.Checks.Summary(), verdict)
		}
		fmt.Println(ct)
		for _, v := range cold {
			if !*verbose && v.Pass() {
				continue
			}
			fmt.Printf("--- %v ---\n", v.Spec)
			for _, e := range v.Timeline {
				fmt.Printf("    %v\n", e)
			}
			for _, r := range v.Checks {
				fmt.Printf("    %v\n", r)
			}
		}
	}

	if *engWorkers > 0 {
		total++
		if !engineGate(*engWorkers) {
			failed++
		}
	}

	if *metJSON != "" {
		data, err := merged.ExportJSON()
		if err == nil {
			err = os.WriteFile(*metJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics dump to %s\n", *metJSON)
	}

	if failed > 0 {
		fmt.Printf("%d of %d scenarios FAILED\n", failed, total)
		os.Exit(1)
	}
	fmt.Printf("all %d scenarios passed\n", total)
}

// burstTenant picks the named tenant's merged stats out of a load run.
func burstTenant(r load.Result, name string) load.TenantStat {
	for _, t := range r.Tenants {
		if t.Name == name {
			return t
		}
	}
	return load.TenantStat{}
}

// engineGate runs the seeded 16-shard partitioned cell serially and at
// workers workers, then demands byte-identical results and metrics dumps
// plus a clean skew check from both runs. It reports the verdict as one
// table row and returns whether the gate passed.
func engineGate(workers int) bool {
	run := func(w int) (string, []byte, error) {
		r := experiments.RunPartitionedScaling(experiments.PartitionedScalingParams{
			Shards: 16, Workers: w, Seed: *seed, OpsPerShard: 100, Metrics: true,
		})
		if !r.Skew.Pass() {
			return "", nil, fmt.Errorf("skew check: %w", r.Skew.Err)
		}
		sum := fmt.Sprintf("acked=%d cross=%d elapsed=%v lat=%v maxShardP99=%v",
			r.Acked, r.CrossAcked, r.Elapsed, r.Lat, r.MaxShardP99)
		dump, err := r.MergedRegistry().ExportJSON()
		return sum, dump, err
	}
	fmt.Printf("=== Partitioned-engine determinism: 16 shards, workers 1 vs %d (seed %d) ===\n",
		workers, *seed)
	verdict, detail := "PASS", "results and metrics dumps byte-identical, skew checks clean"
	serialSum, serialDump, err := run(1)
	parSum, parDump, perr := run(workers)
	switch {
	case err != nil:
		verdict, detail = "FAIL", fmt.Sprintf("workers=1: %v", err)
	case perr != nil:
		verdict, detail = "FAIL", fmt.Sprintf("workers=%d: %v", workers, perr)
	case serialSum != parSum:
		verdict, detail = "FAIL", fmt.Sprintf("results diverged: %s vs %s", serialSum, parSum)
	case !bytes.Equal(serialDump, parDump):
		verdict, detail = "FAIL", "metrics dumps differ"
	}
	t := stats.NewTable("workers", "result", "verdict")
	t.AddRow(fmt.Sprintf("1 vs %d", workers), detail, verdict)
	fmt.Println(t)
	if verdict == "PASS" && *verbose {
		fmt.Printf("    %s\n", serialSum)
	}
	return verdict == "PASS"
}
