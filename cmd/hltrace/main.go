// Command hltrace narrates one durable gWRITE through a 3-replica
// HyperLoop chain at NIC-event granularity: every WQE execution, WAIT
// firing, ownership stall, and inbound message on every NIC, with virtual
// timestamps — §4's Figures 4-5 as a live timeline. Note which node column
// each event sits in: after the client's initial three sends, every event
// happens on replica NICs with no host code anywhere.
//
// Usage:
//
//	hltrace [-size N] [-durable=true] [-seed N] [-parallel N]
//
// -parallel exists on every hl* command with the same default; the single
// narrated run here is inherently serial, so it is accepted for interface
// uniformity and does not change the output.
package main

import (
	"flag"
	"fmt"
	"log"

	"hyperloop"
	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/sim"
	"hyperloop/internal/trace"
)

var (
	size    = flag.Int("size", 256, "payload bytes")
	durable = flag.Bool("durable", true, "interleave gFLUSH")
	seed    = flag.Int64("seed", 1, "simulation seed")
	_       = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
)

func main() {
	flag.Parse()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     4,
		StoreSize: 1 << 20,
		Seed:      *seed,
		Host:      cpusched.Config{Seed: *seed},
	})
	g := core.New(cl, core.Config{Depth: 16})
	defer g.Close()

	// Let setup traffic (priming, credit seeds) drain before tracing.
	eng.RunFor(hyperloop.Millisecond)

	col := trace.NewCollector(0)
	col.AttachAll(cl)

	cl.Client().StoreWrite(0, make([]byte, *size))
	start := eng.Now()
	done := false
	var lat sim.Duration
	if err := g.GWrite(0, *size, *durable, func(r core.Result) {
		lat = r.Latency
		done = true
	}); err != nil {
		log.Fatal(err)
	}
	eng.RunUntil(func() bool { return done }, eng.Now().Add(hyperloop.Second))
	if !done {
		log.Fatal("gWRITE stalled")
	}

	fmt.Printf("durable gWRITE of %dB across 3 replicas: %v end to end\n", *size, lat)
	fmt.Print(col.Render(col.Window(start, start.Add(lat+1)), start))
	fmt.Println("\nevery row after the client's three posts runs on a replica NIC;")
	fmt.Println("no replica host CPU appears anywhere in this timeline.")
}
