// Command hlmicro regenerates the paper's microbenchmarks (§6.1):
// Figure 8(a/b), Table 2, Figure 9, Figure 10, and the DESIGN.md ablations.
//
// Usage:
//
//	hlmicro [-exp all|fig8a|fig8b|table2|fig9|fig10|ablations|stages|lockstages] [-quick] [-seed N] [-parallel N]
//	        [-bench-json FILE] [-metrics-json FILE] [-cpuprofile FILE] [-memprofile FILE]
//
// -exp stages decomposes durable-gWRITE latency into per-stage slices
// (client post, network, NIC forwarding, host CPU, ...) for HyperLoop vs
// the Naive baseline; -exp lockstages does the same for a contended lock
// acquisition, comparing the NIC-resident retry program against the
// host-bounced loop. Neither is part of -exp all, so the default output is
// unchanged. -metrics-json runs a dedicated instrumented collection pass
// (skipping the experiment tables) and dumps the merged metrics registry as
// JSON — bit-identical at any -parallel worker count.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/bench"
	"hyperloop/internal/experiments"
	"hyperloop/internal/prof"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	expFlag   = flag.String("exp", "all", "experiment: all, fig8a, fig8b, table2, fig9, fig10, multigroup, ablations, stages, lockstages")
	quick     = flag.Bool("quick", false, "reduced op counts for a fast run")
	csv       = flag.Bool("csv", false, "emit tables as CSV")
	seed      = flag.Int64("seed", 1, "simulation seed")
	parallel  = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	benchJSON = flag.String("bench-json", "", "write machine-readable benchmark results to this file")
	metJSON   = flag.String("metrics-json", "", "run an instrumented collection pass and dump the metrics registry as JSON to this file")
	cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
)

// recorder collects results for -bench-json; recording is cheap enough to do
// unconditionally and only the final write is gated on the flag.
var recorder = bench.NewRecorder()

// stopProf flushes any live profiles; os.Exit skips defers, so error paths
// call stopProfAndExit instead.
var stopProf = func() {}

func stopProfAndExit(code int) {
	stopProf()
	os.Exit(code)
}

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	var err error
	stopProf, err = prof.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintf(os.Stderr, "profile: %v\n", err)
		os.Exit(1)
	}
	defer stopProf()
	if *metJSON != "" {
		if err := dumpMetrics(*metJSON); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			stopProfAndExit(1)
		}
		return
	}
	ops := 10000
	totalBytes := 256 << 20
	sizes := experiments.MsgSizesLatency
	if *quick {
		ops = 1500
		totalBytes = 16 << 20
		sizes = []int{128, 1024, 8192}
	}
	base := experiments.MicroParams{Ops: ops, TenantsPerCore: 10, Durable: true, Seed: *seed}

	run := map[string]func() error{
		"fig8a": func() error { return latencySweep("fig8a", "Figure 8(a): gWRITE latency", "gwrite", sizes, base) },
		"fig8b": func() error { return latencySweep("fig8b", "Figure 8(b): gMEMCPY latency", "gmemcpy", sizes, base) },
		"table2": func() error {
			return table2(base)
		},
		"fig9": func() error {
			szs := experiments.MsgSizesThroughput
			if *quick {
				szs = []int{1024, 8192, 65536}
			}
			return fig9(szs, totalBytes)
		},
		"fig10": func() error { return fig10(sizes, base) },
		"multigroup": func() error {
			return multigroup(ops)
		},
		"ablations": func() error {
			return ablations(ops)
		},
		"stages": func() error {
			return stages(ops)
		},
		"lockstages": func() error {
			return lockstages(ops)
		},
	}
	order := []string{"fig8a", "fig8b", "table2", "fig9", "fig10", "multigroup", "ablations"}
	if *expFlag != "all" {
		order = []string{*expFlag}
	}
	for _, name := range order {
		fn, ok := run[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			stopProfAndExit(2)
		}
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			stopProfAndExit(1)
		}
	}
	if *benchJSON != "" {
		if err := recorder.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			stopProfAndExit(1)
		}
		fmt.Printf("wrote benchmark results to %s\n", *benchJSON)
	}
}

func us(d sim.Duration) string { return fmt.Sprintf("%.1fus", float64(d)/1000) }

func latencySweep(id, title, prim string, sizes []int, base experiments.MicroParams) error {
	fmt.Printf("=== %s (group=3, 10:1 co-location, durable) ===\n", title)
	rows, err := experiments.LatencySweep(prim, sizes,
		[]experiments.System{experiments.HyperLoop, experiments.NaiveEvent}, base)
	if err != nil {
		return err
	}
	t := stats.NewTable("size", "HL-avg", "HL-p99", "Naive-avg", "Naive-p99", "p99-ratio")
	for _, r := range rows {
		hl := r.ByName["HyperLoop"]
		nv := r.ByName["Naive-Event"]
		recorder.RecordSummary(id, map[string]any{"size": r.MsgSize, "system": "HyperLoop"}, hl)
		recorder.RecordSummary(id, map[string]any{"size": r.MsgSize, "system": "Naive-Event"}, nv)
		t.AddRow(fmt.Sprint(r.MsgSize), us(hl.Mean), us(hl.P99), us(nv.Mean), us(nv.P99),
			fmt.Sprintf("%.0fx", float64(nv.P99)/float64(hl.P99)))
	}
	printTable(t)
	return nil
}

func table2(base experiments.MicroParams) error {
	fmt.Println("=== Table 2: gCAS latency (group=3, 10:1 co-location) ===")
	rows, err := experiments.LatencySweep("gcas", []int{1024},
		[]experiments.System{experiments.HyperLoop, experiments.NaiveEvent}, base)
	if err != nil {
		return err
	}
	hl := rows[0].ByName["HyperLoop"]
	nv := rows[0].ByName["Naive-Event"]
	recorder.RecordSummary("table2", map[string]any{"size": 1024, "system": "HyperLoop"}, hl)
	recorder.RecordSummary("table2", map[string]any{"size": 1024, "system": "Naive-Event"}, nv)
	t := stats.NewTable("system", "avg", "p95", "p99")
	t.AddRow("Naive-RDMA", us(nv.Mean), us(nv.P95), us(nv.P99))
	t.AddRow("HyperLoop", us(hl.Mean), us(hl.P95), us(hl.P99))
	t.AddRow("ratio",
		fmt.Sprintf("%.1fx", float64(nv.Mean)/float64(hl.Mean)),
		fmt.Sprintf("%.1fx", float64(nv.P95)/float64(hl.P95)),
		fmt.Sprintf("%.1fx", float64(nv.P99)/float64(hl.P99)))
	printTable(t)
	return nil
}

func fig9(sizes []int, totalBytes int) error {
	fmt.Printf("=== Figure 9: gWRITE throughput + replica CPU (%d MB total) ===\n", totalBytes>>20)
	rows, err := experiments.ThroughputSweep(
		[]experiments.System{experiments.HyperLoop, experiments.NaiveEvent}, sizes, totalBytes, *seed)
	if err != nil {
		return err
	}
	t := stats.NewTable("size", "HL-kops/s", "HL-cpu%core", "Naive-kops/s", "Naive-cpu%core")
	for _, r := range rows {
		hl := r.ByName["HyperLoop"]
		nv := r.ByName["Naive-Event"]
		for _, p := range []struct {
			name string
			pt   experiments.ThroughputPoint
		}{{"HyperLoop", hl}, {"Naive-Event", nv}} {
			recorder.Add(bench.Result{
				Experiment: "fig9",
				Params:     map[string]any{"size": r.MsgSize, "system": p.name},
				Extra:      map[string]float64{"kops_sec": p.pt.KopsSec, "cpu_core_pct": p.pt.CPUCorePct},
			})
		}
		t.AddRow(fmt.Sprint(r.MsgSize),
			fmt.Sprintf("%.0f", hl.KopsSec), fmt.Sprintf("%.1f", hl.CPUCorePct),
			fmt.Sprintf("%.0f", nv.KopsSec), fmt.Sprintf("%.1f", nv.CPUCorePct))
	}
	printTable(t)
	return nil
}

func fig10(sizes []int, base experiments.MicroParams) error {
	fmt.Println("=== Figure 10: gWRITE p99 vs group size (10:1 co-location) ===")
	groups := []int{3, 5, 7}
	t := stats.NewTable("size", "HL-g3", "HL-g5", "HL-g7", "Naive-g3", "Naive-g5", "Naive-g7")
	hl, err := experiments.GroupScaling(experiments.HyperLoop, groups, sizes, base)
	if err != nil {
		return err
	}
	nv, err := experiments.GroupScaling(experiments.NaiveEvent, groups, sizes, base)
	if err != nil {
		return err
	}
	record := func(sys string, rows []experiments.GroupScalingRow) {
		for _, r := range rows {
			recorder.Add(bench.Result{
				Experiment: "fig10",
				Params:     map[string]any{"group": r.GroupSize, "size": r.MsgSize, "system": sys},
				AvgNs:      int64(r.Mean),
				P99Ns:      int64(r.P99),
			})
		}
	}
	record("HyperLoop", hl)
	record("Naive-Event", nv)
	at := func(rows []experiments.GroupScalingRow, g, m int) sim.Duration {
		for _, r := range rows {
			if r.GroupSize == g && r.MsgSize == m {
				return r.P99
			}
		}
		return 0
	}
	for _, m := range sizes {
		t.AddRow(fmt.Sprint(m),
			us(at(hl, 3, m)), us(at(hl, 5, m)), us(at(hl, 7, m)),
			us(at(nv, 3, m)), us(at(nv, 5, m)), us(at(nv, 7, m)))
	}
	printTable(t)
	return nil
}

// multigroup sweeps co-located replication groups sharing three servers —
// the multi-tenant deployment study (extension beyond the paper's figures).
func multigroup(ops int) error {
	fmt.Println("=== Multi-group co-location: probe-group gWRITE latency ===")
	counts := []int{1, 16, 64}
	systems := []experiments.System{experiments.HyperLoop, experiments.NaiveEvent}
	pts, err := experiments.RunParallel(experiments.Parallelism(), len(counts)*len(systems),
		func(i int) (experiments.MultiGroupPoint, error) {
			return experiments.MultiGroupCoLocation(systems[i%len(systems)], counts[i/len(systems)], ops/4, *seed)
		})
	if err != nil {
		return err
	}
	t := stats.NewTable("groups", "HL-avg", "HL-p99", "Naive-avg", "Naive-p99")
	for ci, n := range counts {
		hl, nv := pts[ci*len(systems)], pts[ci*len(systems)+1]
		recorder.RecordSummary("multigroup", map[string]any{"groups": n, "system": "HyperLoop"}, hl.Probe)
		recorder.RecordSummary("multigroup", map[string]any{"groups": n, "system": "Naive-Event"}, nv.Probe)
		t.AddRow(fmt.Sprint(n), us(hl.Probe.Mean), us(hl.Probe.P99), us(nv.Probe.Mean), us(nv.Probe.P99))
	}
	printTable(t)
	return nil
}

func ablations(ops int) error {
	fmt.Println("=== Ablations (DESIGN.md §5) ===")
	vol, dur, err := experiments.AblationFlush(1024, ops, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("gFLUSH interleave:    volatile avg %s -> durable avg %s (+%.0f%%)\n",
		us(vol.Mean), us(dur.Mean), 100*(float64(dur.Mean)/float64(vol.Mean)-1))

	nic, cpu, err := experiments.AblationForwarding(1024, ops, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("forwarding (idle):    NIC avg %s vs CPU avg %s (%.1fx)\n",
		us(nic.Mean), us(cpu.Mean), float64(cpu.Mean)/float64(nic.Mean))

	pts, err := experiments.AblationReplenishBatch(
		[]sim.Duration{10 * sim.Microsecond, 100 * sim.Microsecond, 1000 * sim.Microsecond}, 4000, *seed)
	if err != nil {
		return err
	}
	for _, p := range pts {
		fmt.Printf("replenish every %-7v -> replica CPU %5.1f%%core, avg latency %s\n",
			p.Period, p.CPUCorePct, us(p.MeanLatency))
	}

	with, without, err := experiments.AblationWakeupBonus(1024, ops/2, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("scheduler model:      CFS-wakeup avg %s vs pure-FIFO avg %s\n",
		us(with.Mean), us(without.Mean))
	return nil
}

// stages renders the durable-gWRITE latency decomposition (mean per-op
// stage durations; the stages tile the end-to-end window exactly).
func stages(ops int) error {
	fmt.Println("=== Stage breakdown: durable gWRITE, group=3, 10:1 co-location ===")
	rows := experiments.StageBreakdown(*seed, ops/4)
	for _, r := range rows {
		recorder.Add(bench.Result{
			Experiment: "stages",
			Params:     map[string]any{"system": r.System.String()},
			AvgNs:      int64(r.EndToEnd) / int64(r.Ops),
			Extra:      map[string]float64{"host_cpu_share": r.Share("host-cpu")},
		})
	}
	printTable(experiments.StageBreakdownTable(rows))
	return nil
}

// lockstages renders the contended-lock-acquisition decomposition: the
// NIC-resident gATOMIC_LOOP program vs the host-bounced retry loop.
func lockstages(ops int) error {
	fmt.Println("=== Lock stage breakdown: contended WrLock, group=3, 40us foreign hold ===")
	rows := experiments.LockStageBreakdown(ops / 100)
	for _, r := range rows {
		recorder.Add(bench.Result{
			Experiment: "lockstages",
			Params:     map[string]any{"arm": r.Arm},
			AvgNs:      int64(r.EndToEnd) / int64(r.Ops),
			Extra: map[string]float64{
				"host_cpu_share":   r.Share("host-cpu"),
				"doorbells_per_op": float64(r.Doorbells) / float64(r.Ops),
			},
		})
	}
	printTable(experiments.LockStageTable(rows))
	return nil
}

// dumpMetrics runs the instrumented collection pass and writes the merged
// registry dump.
func dumpMetrics(path string) error {
	reg, err := experiments.MicroMetrics(*seed, 2000)
	if err != nil {
		return err
	}
	data, err := reg.ExportJSON()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote metrics dump to %s\n", path)
	return nil
}

// printTable renders a result table as text or CSV per the -csv flag.
func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
