// Command hlverify runs the differential conformance oracle
// (internal/oracle): every fast approximate model in the simulation stack
// checked against an exact shadow implementation, plus the HyperLoop-vs-
// Naïve end-to-end state equivalence run. It exits non-zero on any
// divergence, so CI can gate on it.
//
// Usage:
//
//	hlverify [-seed N] [-n SAMPLES] [-seeds K] [-parallel N]
//
// -n scales the per-check sample/op budgets; -seeds runs the suite at K
// consecutive seeds starting from -seed (soak mode). Seeds run on -parallel
// workers; results print in seed order, so the output is byte-identical at
// any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hyperloop/internal/experiments"
	"hyperloop/internal/oracle"
)

var (
	seed     = flag.Int64("seed", 1, "simulation seed")
	n        = flag.Int("n", 100000, "sample/op budget per check")
	seeds    = flag.Int("seeds", 1, "number of consecutive seeds to run")
	parallel = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
)

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	if *seeds < 1 {
		*seeds = 1
	}
	all, _ := experiments.RunParallel(experiments.Parallelism(), *seeds,
		func(i int) ([]oracle.Report, error) {
			return oracle.RunAll(*seed+int64(i), *n), nil
		})
	ok := true
	for i, reports := range all {
		fmt.Printf("== oracle seed %d, n=%d ==\n", *seed+int64(i), *n)
		text, pass := oracle.Summarize(reports)
		fmt.Print(text)
		printMetrics(reports)
		if !pass {
			ok = false
		}
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "hlverify: conformance divergence detected")
		os.Exit(1)
	}
	fmt.Println("hlverify: all checks conformant")
}

// printMetrics dumps the measured statistics (error bounds, chi-square,
// op counts) so soak runs leave a calibration trail.
func printMetrics(reports []oracle.Report) {
	for _, r := range reports {
		if len(r.Metrics) == 0 {
			continue
		}
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("   %s:", r.Name)
		for _, k := range keys {
			fmt.Printf(" %s=%.5g", k, r.Metrics[k])
		}
		fmt.Println()
	}
}
