// Command hlrestore runs the ephemeral-replica plane: WAL segment streaming
// to the simulated object store, restore-from-cold with measured RTO/RPO,
// and CRAQ-style read offload across the replication chain.
//
// Three sections:
//
//  1. The headline cold-restore scenario at -seed: a replica is destroyed
//     and rebuilt from snapshot + segment replay while a transactional
//     workload keeps running; the checks table is the verdict (RPO over
//     acked commits must be zero).
//  2. The RTO/RPO sweep: the same scenario across segment-size × snapshot-
//     interval cells, showing how stream shape trades restore time against
//     upload amplification — never against acked-write durability.
//  3. The read-offload scaling table: YCSB-B and -D read-mostly mixes over
//     chains of 2/3/5 replicas, tail-only baseline vs CRAQ spread reads.
//     Spread scales with chain length; tail stays flat.
//
// Usage:
//
//	hlrestore [-seed N] [-parallel N] [-engine-workers N] [-csv] [-v]
//	          [-metrics-json FILE]
//
// The same -seed produces byte-identical output and metrics dumps at any
// -parallel or -engine-workers setting; the CI determinism gate diffs both.
// The exit status is 1 if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/experiments"
	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	seed       = flag.Int64("seed", 1, "simulation seed")
	parallel   = flag.Int("parallel", 0, "worker count for scenario cells (0 = all cores, 1 = serial)")
	engWorkers = flag.Int("engine-workers", 0, "partitioned-engine worker count for read-offload cells (0 = all cores, 1 = serial)")
	csv        = flag.Bool("csv", false, "emit tables as CSV")
	verbose    = flag.Bool("v", false, "print fault timelines and per-check details")
	metJSON    = flag.String("metrics-json", "", "merge every scenario's metrics registry and dump as JSON to this file")
)

// Sweep axes: segment size changes replay chunking, snapshot interval
// changes how much tail the restore replays on top of the baseline image.
var (
	sweepSegBytes  = []int{1 << 10, 4 << 10, 16 << 10}
	sweepSnapEvery = []sim.Duration{10 * sim.Millisecond, 40 * sim.Millisecond}
	offloadChains  = []int{2, 3, 5}
)

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	failed := 0
	merged := metrics.NewRegistry()

	// 1. Headline scenario.
	v := experiments.RunColdRestoreScenario(experiments.ColdRestoreParams{Seed: *seed})
	merged.Merge(v.Metrics)
	fmt.Printf("=== Cold restore: %v ===\n", v.Spec)
	fmt.Printf("detect=%v rto=%v rpo-cold=%d acked-lost=%d attempts=%d txns=%d/%d\n",
		v.DetectIn, v.RTO, v.RPOCold, v.AckedLost, v.RestoreAttempts, v.Committed, v.Errored)
	fmt.Printf("restore: %dB snapshot + %d segments (%d records) to seq %d in %v\n",
		v.Restore.SnapshotBytes, v.Restore.Segments, v.Restore.Records,
		v.Restore.RestoredSeq, v.Restore.Elapsed)
	fmt.Printf("stream: %d segments, %d snapshots, %d records, %d retries\n",
		v.Stream.Segments, v.Stream.Snapshots, v.Stream.Records, v.Stream.Retries)
	ct := stats.NewTable("check", "detail", "verdict")
	for _, c := range v.Checks {
		verdict, detail := "PASS", c.Detail
		if c.Err != nil {
			verdict, detail = "FAIL", c.Err.Error()
			failed++
		}
		ct.AddRow(c.Name, detail, verdict)
	}
	printTable(ct)
	if *verbose || !v.Pass() {
		for _, e := range v.Timeline {
			fmt.Printf("    %v\n", e)
		}
	}

	// 2. RTO/RPO sweep.
	cells := experiments.RestoreSweep(*seed, sweepSegBytes, sweepSnapEvery)
	fmt.Printf("=== RTO/RPO sweep: %d segment sizes x %d snapshot intervals (seed %d) ===\n",
		len(sweepSegBytes), len(sweepSnapEvery), *seed)
	st := stats.NewTable("segment", "snapshot", "rto", "rpo-cold", "acked-lost",
		"attempts", "segs", "snaps", "retries", "checks", "verdict")
	for _, c := range cells {
		merged.Merge(c.Verdict.Metrics)
		verdict := "PASS"
		if !c.Verdict.Pass() {
			verdict = "FAIL"
			failed++
		}
		st.AddRow(fmt.Sprintf("%dKiB", c.SegmentBytes>>10), fmt.Sprint(c.SnapshotEvery),
			fmt.Sprint(c.Verdict.RTO), fmt.Sprint(c.Verdict.RPOCold),
			fmt.Sprint(c.Verdict.AckedLost), fmt.Sprint(c.Verdict.RestoreAttempts),
			fmt.Sprint(c.Verdict.Stream.Segments), fmt.Sprint(c.Verdict.Stream.Snapshots),
			fmt.Sprint(c.Verdict.Stream.Retries), c.Verdict.Checks.Summary(), verdict)
	}
	printTable(st)
	for _, c := range cells {
		if c.Verdict.Pass() {
			continue
		}
		fmt.Printf("--- seg=%d snap=%v ---\n", c.SegmentBytes, c.SnapshotEvery)
		for _, r := range c.Verdict.Checks {
			fmt.Printf("    %v\n", r)
		}
	}

	// 3. Read-offload scaling.
	for _, wl := range []string{"B", "D"} {
		cells := experiments.ReadOffloadSweep(wl, offloadChains, *seed, *engWorkers)
		fmt.Printf("=== Read offload: YCSB-%s, chains %v (seed %d) ===\n", wl, offloadChains, *seed)
		ot := stats.NewTable("chain", "tail kops/s", "spread kops/s", "speedup",
			"clean/dirty (spread)", "tail p50", "spread p50", "verdict")
		for _, c := range cells {
			verdict := "PASS"
			if !c.Tail.Skew.Pass() || !c.Spread.Skew.Pass() {
				verdict = "FAIL"
				failed++
			}
			ot.AddRow(fmt.Sprint(c.Replicas),
				fmt.Sprintf("%.1f", c.Tail.ReadTputKops),
				fmt.Sprintf("%.1f", c.Spread.ReadTputKops),
				fmt.Sprintf("%.2fx", c.Speedup()),
				fmt.Sprintf("%d/%d", c.Spread.Clean, c.Spread.Dirty),
				fmt.Sprint(c.Tail.ReadLat.P50), fmt.Sprint(c.Spread.ReadLat.P50), verdict)
		}
		printTable(ot)
	}

	if *metJSON != "" {
		data, err := merged.ExportJSON()
		if err == nil {
			err = os.WriteFile(*metJSON, data, 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics dump to %s\n", *metJSON)
	}

	if failed > 0 {
		fmt.Printf("%d checks FAILED\n", failed)
		os.Exit(1)
	}
	fmt.Println("all checks passed")
}

func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
