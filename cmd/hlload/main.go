// Command hlload drives the open-loop serving plane through and past
// saturation: a modeled million-client population with Poisson or
// self-similar (b-model) arrivals and connection churn, fed through the
// per-group admission controller into the HyperLoop sharded plane or the
// Naive-RDMA baseline. It first probes each system's saturation point
// (admission on, offered load far beyond capacity), then sweeps offered
// load across multiples of it with admission on and off, and finally sweeps
// the WQE-chain fusion depth at saturation. The same -seed always produces
// byte-identical output at any -parallel or -engine-workers setting.
//
// Usage:
//
//	hlload [-exp all|curve|fusion] [-quick] [-seed N] [-clients N] [-arrival poisson|bmodel]
//	       [-parallel N] [-engine-workers N] [-tenants N] [-csv] [-bench-json FILE]
//	       [-metrics-json FILE]
//
// The curve table plots goodput (acks within the SLO) and open-loop p99.9
// against offered load; past the knee the admission-on rows hold goodput at
// capacity while the admission-off rows collapse into their hidden queue.
//
// -tenants N swaps the sweeps for one QoS-on run over N equal tenant
// classes and emits the per-tenant admitted/shed/p99/credits table (the
// same cell hlqos -tenants runs, with its cardinality tally).
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/bench"
	"hyperloop/internal/experiments"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	expFlag    = flag.String("exp", "all", "experiment: all, curve, fusion")
	quick      = flag.Bool("quick", false, "reduced sweep for a fast run")
	csv        = flag.Bool("csv", false, "emit tables as CSV")
	seed       = flag.Int64("seed", 1, "simulation seed")
	clients    = flag.Int("clients", 1<<20, "modeled connection-id space across groups")
	arrival    = flag.String("arrival", "poisson", "arrival process: poisson or bmodel")
	parallel   = flag.Int("parallel", 0, "worker count (0 = all cores, 1 = serial)")
	engWorkers = flag.Int("engine-workers", 0, "partitioned-engine worker count (0 = all cores, 1 = serial)")
	tenants    = flag.Int("tenants", 0, "run one QoS-on cell with this many tenant classes and print the per-tenant table")
	benchJSON  = flag.String("bench-json", "", "write machine-readable benchmark results to this file")
	metJSON    = flag.String("metrics-json", "", "run an instrumented collection pass and dump the metrics registry as JSON to this file")
)

var recorder = bench.NewRecorder()

func main() {
	flag.Parse()
	experiments.SetParallelism(*parallel)
	if *metJSON != "" {
		data, err := experiments.LoadMetrics(*seed, *engWorkers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*metJSON, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics dump to %s\n", *metJSON)
		return
	}

	if *tenants > 0 {
		r := experiments.RunTenantSweep(experiments.TenantSweepParams{
			Seed: *seed, Workers: *engWorkers, Tenants: *tenants,
		})
		fmt.Printf("=== Tenant sweep: %d classes, QoS on, seed %d, %v horizon ===\n",
			*tenants, *seed, r.Run.Elapsed)
		printTable(experiments.TenantTable(r.Run, 16))
		fmt.Printf("label cardinality: %d distinct, %d collapsed, %d controller-skipped\n",
			r.Distinct, r.Overflowed, r.Skipped)
		if err := r.Run.CheckAccounting(); err != nil {
			fmt.Fprintf(os.Stderr, "accounting: %v\n", err)
			os.Exit(1)
		}
		return
	}

	switch *expFlag {
	case "curve", "fusion", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *expFlag)
		os.Exit(2)
	}

	p := experiments.LoadCurveParams{
		Seed:     *seed,
		Clients:  *clients,
		Arrival:  *arrival,
		Workers:  *engWorkers,
		Parallel: experiments.Parallelism(),
		Quick:    *quick,
	}
	res := experiments.RunLoadCurve(p)

	if *expFlag != "fusion" {
		curve(res)
	}
	if *expFlag != "curve" {
		fusion(res)
	}

	if *benchJSON != "" {
		if err := recorder.WriteJSON(*benchJSON); err != nil {
			fmt.Fprintf(os.Stderr, "bench-json: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote benchmark results to %s\n", *benchJSON)
	}
}

func us(d sim.Duration) string { return fmt.Sprintf("%.1fus", float64(d)/1000) }

func onoff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// curve prints the goodput/p99.9-vs-offered-load table per system.
func curve(res experiments.LoadCurveResult) {
	fmt.Printf("=== Load curve: %s arrivals, %d modeled clients, SLO-bounded goodput ===\n",
		*arrival, *clients)
	fmt.Print("measured saturation:")
	for _, sys := range []string{"hyperloop", "naive"} {
		if c, ok := res.CapacityKops[sys]; ok {
			fmt.Printf(" %s=%.1fkops", sys, c)
		}
	}
	fmt.Println()

	t := stats.NewTable("system", "admission", "mult", "offered-kops", "tput-kops",
		"goodput-kops", "p50", "p99.9", "shed", "unserved", "conns")
	for _, pt := range res.Points {
		v := pt.Verdicts
		recorder.Add(bench.Result{
			Experiment: "load-curve",
			Params: map[string]any{
				"system":    pt.System,
				"admission": pt.Admission,
				"mult":      pt.Mult,
			},
			AvgNs: int64(pt.Lat.Mean),
			P99Ns: int64(pt.Lat.P99),
			Extra: map[string]float64{
				"offered_kops":    pt.Offered / 1e3,
				"tput_kops":       pt.TputKops,
				"goodput_kops":    pt.GoodputKops,
				"p999_ns":         float64(pt.P999),
				"shed_queue_full": float64(v.ShedQueueFull),
				"shed_throttled":  float64(v.ShedThrottled),
				"backpressure":    float64(v.Backpressure),
				"unserved":        float64(v.Unserved),
				"clients_modeled": float64(pt.ClientsModeled),
				"conns_opened":    float64(pt.ConnsOpened),
			},
		})
		t.AddRow(pt.System, onoff(pt.Admission), fmt.Sprintf("%.2f", pt.Mult),
			fmt.Sprintf("%.1f", pt.Offered/1e3),
			fmt.Sprintf("%.1f", pt.TputKops), fmt.Sprintf("%.1f", pt.GoodputKops),
			us(pt.Lat.P50), us(pt.P999),
			fmt.Sprint(v.ShedQueueFull+v.ShedThrottled), fmt.Sprint(v.Unserved),
			fmt.Sprint(pt.ConnsOpened))
	}
	printTable(t)
}

// fusion prints the WQE-chain fusion-depth sweep at saturation.
func fusion(res experiments.LoadCurveResult) {
	fmt.Println("=== Fusion sweep: HyperLoop at saturation, doorbell cost 200ns ===")
	t := stats.NewTable("depth", "tput-kops", "goodput-kops", "p50", "p99.9",
		"doorbells", "fused-batches", "fused-ops")
	for _, pt := range res.Fusion {
		recorder.Add(bench.Result{
			Experiment: "load-fusion",
			Params:     map[string]any{"depth": pt.Depth},
			AvgNs:      int64(pt.Lat.Mean),
			P99Ns:      int64(pt.Lat.P99),
			Extra: map[string]float64{
				"tput_kops":     pt.TputKops,
				"goodput_kops":  pt.GoodputKops,
				"p999_ns":       float64(pt.P999),
				"doorbells":     float64(pt.Doorbells),
				"fused_batches": float64(pt.FusedBatches),
				"fused_ops":     float64(pt.FusedOps),
			},
		})
		t.AddRow(fmt.Sprint(pt.Depth), fmt.Sprintf("%.1f", pt.TputKops),
			fmt.Sprintf("%.1f", pt.GoodputKops), us(pt.Lat.P50), us(pt.P999),
			fmt.Sprint(pt.Doorbells), fmt.Sprint(pt.FusedBatches), fmt.Sprint(pt.FusedOps))
	}
	printTable(t)
}

func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
