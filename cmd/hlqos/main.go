// Command hlqos runs the elastic multi-tenant QoS plane. The default mode
// is the tenant-isolation scenario: a victim tenant holds a steady rate
// while an aggressor bursts to ten times its contract over a tiered host
// fleet, and the per-group controllers throttle, fund edge-tier scale-out
// from the aggressor's escrow, and halt at the spend cap. The checks table
// is the verdict — victim p99 flat within 10% of baseline, aggressor
// recovered past 1.5x contract on funded capacity, spend stopped at the
// cap, and the uncontrolled counterfactual inflating the victim's tail 10x.
//
// Usage:
//
//	hlqos [-seed N] [-engine-workers N] [-duration-ms N] [-tenants N]
//	      [-csv] [-v] [-metrics-json FILE]
//
// -tenants N swaps in the cardinality sweep: N equal tenant classes with
// QoS on. Past 256 classes the metric label space collapses; admission
// accounting stays exact while the controller refuses to spend on any
// collapsed class.
//
// -metrics-json dumps the run's merged metrics registry; the same -seed
// produces byte-identical output and dumps at any -engine-workers setting.
// The exit status is 1 if any check fails.
package main

import (
	"flag"
	"fmt"
	"os"

	"hyperloop/internal/experiments"
	"hyperloop/internal/qos"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

var (
	seed       = flag.Int64("seed", 1, "simulation seed")
	engWorkers = flag.Int("engine-workers", 0, "partitioned-engine worker count (0 = all cores, 1 = serial)")
	durationMS = flag.Int("duration-ms", 0, "arrival horizon per run in virtual milliseconds (0 = scenario default)")
	tenants    = flag.Int("tenants", 0, "run the cardinality sweep with this many tenant classes instead of the isolation scenario")
	csv        = flag.Bool("csv", false, "emit tables as CSV")
	verbose    = flag.Bool("v", false, "print the full controller decision log")
	metJSON    = flag.String("metrics-json", "", "dump the run's merged metrics registry as JSON to this file")
)

func main() {
	flag.Parse()
	dur := sim.Duration(*durationMS) * sim.Millisecond
	if *tenants > 0 {
		os.Exit(sweep(dur))
	}
	os.Exit(isolation(dur))
}

// isolation runs and reports the headline tenant-isolation scenario.
func isolation(dur sim.Duration) int {
	v := experiments.RunTenantIsolation(experiments.TenantIsolationParams{
		Seed: *seed, Workers: *engWorkers, Duration: dur,
	})
	fmt.Printf("=== Tenant isolation: %dx burst over tiered hosts, seed %d, %v horizon ===\n",
		10, *seed, v.QoSOn.Elapsed)

	ct := stats.NewTable("check", "detail", "verdict")
	failed := 0
	for _, c := range v.Checks {
		verdict, detail := "PASS", c.Detail
		if c.Err != nil {
			verdict, detail = "FAIL", c.Err.Error()
			failed++
		}
		ct.AddRow(c.Name, detail, verdict)
	}
	printTable(ct)

	fmt.Println("--- per-tenant (QoS on, 10x burst) ---")
	printTable(experiments.TenantTable(v.QoSOn, 0))

	lt := stats.NewTable("tenant", "steps", "spent", "escrow-left", "funded-rate", "degraded")
	for _, st := range v.QoSOn.QoSTenants {
		lt.AddRow(st.Name, fmt.Sprint(st.Steps), fmt.Sprintf("%.1f", st.Spent),
			fmt.Sprintf("%.1f", st.EscrowLeft), fmt.Sprintf("%.0f/s", st.FundedRate),
			fmt.Sprint(st.Degraded))
	}
	fmt.Println("--- controller ledgers (merged across groups) ---")
	printTable(lt)

	events(v.QoSOn.QoSEvents)

	if failed > 0 {
		fmt.Printf("%d of %d checks FAILED\n", failed, len(v.Checks))
		return 1
	}
	if !dumpMetrics(func() ([]byte, error) { return v.Metrics.ExportJSON() }) {
		return 1
	}
	fmt.Printf("all %d checks passed\n", len(v.Checks))
	return 0
}

// sweep runs and reports the tenant-cardinality sweep.
func sweep(dur sim.Duration) int {
	r := experiments.RunTenantSweep(experiments.TenantSweepParams{
		Seed: *seed, Workers: *engWorkers, Tenants: *tenants, Duration: dur,
	})
	fmt.Printf("=== Tenant sweep: %d classes, seed %d, %v horizon ===\n",
		*tenants, *seed, r.Run.Elapsed)
	printTable(experiments.TenantTable(r.Run, 16))
	fmt.Printf("label cardinality: %d distinct, %d collapsed, %d controller-skipped\n",
		r.Distinct, r.Overflowed, r.Skipped)
	events(r.Run.QoSEvents)

	failed := 0
	if err := r.Run.CheckAccounting(); err != nil {
		fmt.Printf("accounting FAILED: %v\n", err)
		failed++
	}
	if r.Skipped != r.Overflowed {
		fmt.Printf("conservatism FAILED: %d skipped vs %d collapsed\n", r.Skipped, r.Overflowed)
		failed++
	}
	if failed > 0 {
		return 1
	}
	if !dumpMetrics(func() ([]byte, error) { return r.Run.MergedRegistry().ExportJSON() }) {
		return 1
	}
	fmt.Println("accounting exact, controller conservative on every collapsed class")
	return 0
}

// events prints the decision log: a count per kind, plus every entry under
// -v (the funding story is short enough to read whole).
func events(evs []qos.Event) {
	if len(evs) == 0 {
		return
	}
	counts := map[qos.EventKind]int{}
	var order []qos.EventKind
	for _, e := range evs {
		if counts[e.Kind] == 0 {
			order = append(order, e.Kind)
		}
		counts[e.Kind]++
	}
	fmt.Print("decisions:")
	for _, k := range order {
		fmt.Printf(" %v=%d", k, counts[k])
	}
	fmt.Println()
	if *verbose {
		for _, e := range evs {
			fmt.Printf("    %v %s %v: %s\n", e.At, e.Name, e.Kind, e.Detail)
		}
	}
}

// dumpMetrics writes the -metrics-json file when requested; it reports
// false only on an I/O or export error.
func dumpMetrics(export func() ([]byte, error)) bool {
	if *metJSON == "" {
		return true
	}
	data, err := export()
	if err == nil {
		err = os.WriteFile(*metJSON, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metrics-json: %v\n", err)
		return false
	}
	fmt.Printf("wrote metrics dump to %s\n", *metJSON)
	return true
}

func printTable(t *stats.Table) {
	if *csv {
		fmt.Print(t.CSV())
		return
	}
	fmt.Println(t)
}
