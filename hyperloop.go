// Package hyperloop is a simulation-backed reproduction of "HyperLoop:
// Group-Based NIC-Offloading to Accelerate Replicated Transactions in
// Multi-Tenant Storage Systems" (SIGCOMM 2018).
//
// It provides the paper's group-based NIC-offload primitives — gWRITE,
// gCAS, gMEMCPY, gFLUSH — over a deterministic discrete-event model of
// RDMA NICs, NVM devices with volatile NIC caches, a data-center fabric,
// and multi-tenant host CPUs; plus the storage systems built on them
// (a replicated write-ahead log, group locks, a RocksDB-style key-value
// store, and a MongoDB-style document store), the Naïve-RDMA baseline, and
// a benchmark harness regenerating every figure and table of the paper's
// evaluation.
//
// # Quick start
//
//	eng := hyperloop.NewEngine()
//	tb := hyperloop.NewTestbed(eng, 3) // client + 3 replicas
//	tb.Client().StoreWrite(0, []byte("hello"))
//	tb.Group.GWrite(0, 5, true, func(r hyperloop.Result) {
//	    fmt.Println("replicated durably in", r.Latency)
//	})
//	eng.RunFor(hyperloop.Millisecond)
//
// Everything runs in virtual time on the supplied engine: drive it with
// RunFor/RunUntil (a Group's background replenisher keeps the event queue
// non-empty, so Drain on a live group does not return). Runs are
// deterministic for a given seed.
package hyperloop

import (
	"hyperloop/internal/chain"
	"hyperloop/internal/check"
	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/docstore"
	"hyperloop/internal/fabric"
	"hyperloop/internal/faults"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/locks"
	"hyperloop/internal/naive"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// Core simulation types.
type (
	// Engine is the discrete-event executive all components share.
	Engine = sim.Engine
	// Time is virtual nanoseconds since the start of the run.
	Time = sim.Time
	// Duration is a span of virtual time.
	Duration = sim.Duration
	// Rand is the seeded random source used across the simulation.
	Rand = sim.Rand
)

// Cluster substrate types.
type (
	// Cluster is a set of simulated machines on one fabric.
	Cluster = cluster.Cluster
	// ClusterConfig sizes a cluster.
	ClusterConfig = cluster.Config
	// Node is one machine: host CPU + RDMA NIC + NVM store.
	Node = cluster.Node
	// HostConfig models the multi-tenant CPU scheduler.
	HostConfig = cpusched.Config
	// NICConfig models the RDMA NIC timing.
	NICConfig = rdma.Config
	// FabricConfig models the network.
	FabricConfig = fabric.Config
)

// HyperLoop group types (the paper's contribution).
type (
	// Group is a HyperLoop replication group exposing the four primitives.
	Group = core.Group
	// GroupConfig tunes ring depths and the replenisher.
	GroupConfig = core.Config
	// Result reports a primitive's outcome.
	Result = core.Result
	// ExecuteMap selects gCAS participants.
	ExecuteMap = core.ExecuteMap
	// FanoutGroup is the §7 FaRM-style primary/backup variant: the
	// primary's NIC coordinates the backups.
	FanoutGroup = core.FanoutGroup
	// FixedChain is the §4.1 fixed-replication strawman (static
	// descriptors, one buffer shape) kept for ablations.
	FixedChain = core.FixedChain
)

// Baseline types.
type (
	// NaiveGroup is the Naïve-RDMA baseline with replica CPUs on the
	// critical path.
	NaiveGroup = naive.Group
	// NaiveConfig selects event-driven vs polling consumption.
	NaiveConfig = naive.Config
)

// Storage building blocks.
type (
	// WAL is the replicated write-ahead log (Append / ExecuteAndAdvance).
	WAL = wal.Log
	// WALEntry is one redo modification.
	WALEntry = wal.Entry
	// Replicator is the substrate interface storage engines replicate
	// through (HyperLoop or Naïve).
	Replicator = wal.Replicator
	// LockManager provides group write locks and per-replica read locks
	// over gCAS.
	LockManager = locks.Manager
	// LockConfig tunes lock retry behaviour.
	LockConfig = locks.Config
	// KVStore is the RocksDB-style replicated key-value store.
	KVStore = kvstore.DB
	// KVConfig sizes a KVStore.
	KVConfig = kvstore.Config
	// DocStore is the MongoDB-style replicated document store.
	DocStore = docstore.Store
	// DocConfig sizes a DocStore.
	DocConfig = docstore.Config
	// DocBackend bundles a DocStore's replication substrate.
	DocBackend = docstore.Backend
	// Document is a document store record.
	Document = docstore.Document
	// TxnManager coordinates replicated ACID transactions (§2.1) over the
	// WAL and group locks.
	TxnManager = txn.Manager
	// TxnConfig tunes the transaction manager.
	TxnConfig = txn.Config
	// Txn is one in-flight transaction.
	Txn = txn.Txn
	// ChainManager detects failures and coordinates chain repair.
	ChainManager = chain.Manager
	// ChainConfig tunes heartbeat-based failure detection.
	ChainConfig = chain.Config
	// Summary holds the latency statistics experiments report.
	Summary = stats.Summary
)

// Chaos-testing types: the deterministic fault-injection plane and the
// post-recovery invariant checkers (see cmd/hlchaos).
type (
	// FaultPlane schedules seeded fault scenarios against a live cluster.
	FaultPlane = faults.Plane
	// FaultClass enumerates the scenario classes of the fault matrix.
	FaultClass = faults.Class
	// FaultSpec is one planned scenario instance (class, victim, timing).
	FaultSpec = faults.Spec
	// FaultEvent is one recorded fault-timeline action.
	FaultEvent = faults.Event
	// CheckImage is read-only named access to a node's store bytes.
	CheckImage = check.Image
	// CheckResult is one invariant checker's verdict.
	CheckResult = check.Result
	// CheckReport is an ordered list of checker results.
	CheckReport = check.Report
)

// Sharded data-plane types: a keyspace routed across many HyperLoop groups
// on a shared host pool, with live epoch-fenced shard migration and
// hot-shard rebalancing (see cmd/hlshard).
type (
	// ShardPlane is the sharded front-end over per-shard KVStores.
	ShardPlane = shard.Plane
	// ShardConfig sizes a plane: shard count, replicas, host pool, regions.
	ShardConfig = shard.Config
	// ShardMap is the versioned key-routing + placement table.
	ShardMap = shard.Map
	// Shard is one shard's live state (group, store, epoch).
	Shard = shard.Shard
	// ShardEvent is one recorded plane-timeline entry.
	ShardEvent = shard.Event
	// Rebalancer watches per-host load and migrates hot shards.
	Rebalancer = shard.Rebalancer
	// RebalanceConfig tunes the rebalancer's trigger policy.
	RebalanceConfig = shard.RebalanceConfig
)

// Re-exported constructors and helpers.
var (
	// NewEngine creates a fresh virtual-time executive.
	NewEngine = sim.NewEngine
	// NewRand creates a seeded random source.
	NewRand = sim.NewRand
	// NewCluster builds simulated machines on a shared fabric.
	NewCluster = cluster.New
	// NewGroup wires a HyperLoop group over a cluster (node 0 = client).
	NewGroup = core.New
	// NewGroupWithNodes wires a group over an explicit client + chain.
	NewGroupWithNodes = core.NewWithNodes
	// NewNaiveGroup wires the baseline over a cluster.
	NewNaiveGroup = naive.New
	// NewFanout wires a FaRM-style fan-out group.
	NewFanout = core.NewFanout
	// NewFixedChain wires the fixed-replication strawman.
	NewFixedChain = core.NewFixedChain
	// NewWAL formats a replicated write-ahead log.
	NewWAL = wal.New
	// NewLockManager creates a gCAS-backed lock manager.
	NewLockManager = locks.New
	// OpenKVStore formats the key-value store.
	OpenKVStore = kvstore.Open
	// OpenDocStore formats the document store.
	OpenDocStore = docstore.Open
	// NewChainManager starts failure detection over a chain.
	NewChainManager = chain.NewManager
	// NewTxnManager creates a replicated transaction coordinator.
	NewTxnManager = txn.New
	// AllReplicas builds a gCAS execute map covering the whole group.
	AllReplicas = core.AllReplicas
	// AddTenants applies background multi-tenant CPU load to a host.
	AddTenants = cpusched.AddTenants
	// NewFaultPlane creates a seeded fault-injection plane over a cluster.
	NewFaultPlane = faults.NewPlane
	// PlanFault derives a deterministic fault scenario from (class, seed).
	PlanFault = faults.Plan
	// FaultClasses lists every chain fault-scenario class in matrix order.
	FaultClasses = faults.Classes
	// AllFaultClasses adds the sharded-plane classes (migration-inflight).
	AllFaultClasses = faults.AllClasses
	// PlanMigrationFault derives a deterministic migration-inflight
	// scenario (victim side, timing) from a seed.
	PlanMigrationFault = faults.PlanMigration
	// NewShardPlane builds a sharded plane on its own fresh cluster.
	NewShardPlane = shard.New
	// OpenShardPlane builds a sharded plane over an existing cluster with
	// an explicit placement.
	OpenShardPlane = shard.Open
	// NewHashShardMap builds a consistent-hash routing table.
	NewHashShardMap = shard.NewHashMap
	// NewRangeShardMap builds a range-boundary routing table.
	NewRangeShardMap = shard.NewRangeMap
)

// Common virtual-time units.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// CoreReplicator adapts a Group for the storage engines.
func CoreReplicator(g *Group) Replicator { return wal.CoreReplicator{G: g} }

// NaiveReplicator adapts a NaiveGroup for the storage engines.
func NaiveReplicator(g *NaiveGroup) Replicator { return wal.NaiveReplicator{G: g} }

// NodeStore adapts a node's NVM window to the WAL's local-store interface.
func NodeStore(n *Node) wal.Store { return wal.NodeStore{N: n} }

// RebuildKV reconstructs a key-value store's contents from a durable image
// (crash recovery).
var RebuildKV = kvstore.Rebuild

// RebuildDocs reconstructs a document store's contents from a durable image.
var RebuildDocs = docstore.Rebuild

// Testbed bundles a wired cluster and HyperLoop group for quick starts.
type Testbed struct {
	Cluster *Cluster
	Group   *Group
}

// NewTestbed builds a cluster of one client plus n replicas with default
// models and a HyperLoop group across them.
func NewTestbed(eng *Engine, n int) *Testbed {
	cl := cluster.New(eng, cluster.Config{Nodes: n + 1})
	return &Testbed{Cluster: cl, Group: core.New(cl, core.Config{})}
}

// Client returns the coordinator node.
func (t *Testbed) Client() *Node { return t.Cluster.Client() }

// Replicas returns the chain nodes.
func (t *Testbed) Replicas() []*Node { return t.Cluster.Replicas() }
