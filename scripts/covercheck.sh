#!/usr/bin/env bash
# Coverage ratchet: fail if total statement coverage drops more than
# ALLOWED_DROP points below the committed baseline. When coverage rises,
# print a reminder to ratchet the baseline up (scripts/coverage-baseline.txt
# holds a single number, the total percentage).
set -euo pipefail

cd "$(dirname "$0")/.."
baseline_file=scripts/coverage-baseline.txt
allowed_drop=${ALLOWED_DROP:-1.0}

profile=$(mktemp)
trap 'rm -f "$profile"' EXIT
go test -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
baseline=$(cat "$baseline_file")

echo "coverage: total=${total}% baseline=${baseline}% allowed drop=${allowed_drop}"
awk -v t="$total" -v b="$baseline" -v d="$allowed_drop" 'BEGIN {
    if (t + d < b) {
        printf "FAIL: coverage %.1f%% dropped more than %.1f points below baseline %.1f%%\n", t, d, b
        exit 1
    }
    if (t > b + d) {
        printf "NOTE: coverage %.1f%% is above baseline %.1f%% — ratchet %s up\n", t, b, "scripts/coverage-baseline.txt"
    }
}'
