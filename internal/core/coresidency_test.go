package core

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// TestCoResidentGroupsDoNotInterfere runs two independent HyperLoop groups
// over the SAME three replica hosts, each confined to its own 64 KiB store
// window — the §4.2 fixed-offset layout the sharded plane relies on when it
// co-locates shard regions on one host. Both groups issue interleaved
// mixed primitives concurrently; at the end every replica must hold each
// group's window byte-for-byte per that group's shadow, and the guard band
// between the windows must still be zero.
func TestCoResidentGroupsDoNotInterfere(t *testing.T) {
	const (
		window = 64 << 10
		baseA  = 0
		baseB  = 128 << 10 // one window of guard band between the two
		guard  = baseA + window
	)
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     4,
		StoreSize: 1 << 20,
		Fabric:    fabric.Config{JitterFrac: -1},
	})
	replicas := cl.Replicas()
	gA := NewWithNodes(eng, cl.Client(), replicas, Config{Depth: 128})
	gB := NewWithNodes(eng, cl.Client(), replicas, Config{Depth: 128})

	shadowA := make([]byte, window)
	shadowB := make([]byte, window)
	r := sim.NewRand(99)

	const opsPer = 150
	completed := 0
	var step func(g *Group, base int, shadow []byte, rnd *sim.Rand, i int)
	step = func(g *Group, base int, shadow []byte, rnd *sim.Rand, i int) {
		if i >= opsPer {
			return
		}
		next := func(Result) {
			completed++
			step(g, base, shadow, rnd, i+1)
		}
		switch rnd.Intn(3) {
		case 0: // gWRITE inside the group's window
			off := rnd.Intn(window - 256)
			size := 1 + rnd.Intn(255)
			data := make([]byte, size)
			for j := range data {
				data[j] = byte(rnd.Intn(256))
			}
			cl.Client().StoreWrite(base+off, data)
			copy(shadow[off:], data)
			g.GWrite(base+off, size, rnd.Intn(2) == 0, next)
		case 1: // gMEMCPY within the window
			src := rnd.Intn(window - 256)
			dst := rnd.Intn(window - 256)
			size := 1 + rnd.Intn(255)
			copy(shadow[dst:dst+size], append([]byte(nil), shadow[src:src+size]...))
			g.GMemcpy(base+dst, base+src, size, rnd.Intn(2) == 0, next)
		default: // gCAS on an aligned word, always with the right expectation
			off := 8 * rnd.Intn(window/8)
			old := le64(shadow[off:])
			newV := rnd.Uint64()
			putLE64(shadow[off:], newV)
			b := make([]byte, 8)
			putLE64(b, newV)
			cl.Client().StoreWrite(base+off, b)
			g.GCAS(base+off, old, newV, AllReplicas(3), next)
		}
	}
	// Independent RNG streams so each group's op sequence is self-contained
	// while the engine interleaves their packets on the shared NICs.
	step(gA, baseA, shadowA, r.Fork(), 0)
	step(gB, baseB, shadowB, r.Fork(), 0)

	ok := eng.RunUntil(func() bool {
		return completed >= 2*opsPer || gA.Failed() != nil || gB.Failed() != nil
	}, eng.Now().Add(30*sim.Second))
	if gA.Failed() != nil || gB.Failed() != nil {
		t.Fatalf("group failure: A=%v B=%v", gA.Failed(), gB.Failed())
	}
	if !ok {
		t.Fatalf("stalled at %d/%d ops", completed, 2*opsPer)
	}

	zeros := make([]byte, baseB-guard)
	for i, n := range replicas {
		if got := n.StoreBytes(baseA, window); !bytes.Equal(got, shadowA) {
			t.Fatalf("replica %d: group A window diverged at %d", i, firstDiff(got, shadowA))
		}
		if got := n.StoreBytes(baseB, window); !bytes.Equal(got, shadowB) {
			t.Fatalf("replica %d: group B window diverged at %d", i, firstDiff(got, shadowB))
		}
		if got := n.StoreBytes(guard, baseB-guard); !bytes.Equal(got, zeros) {
			t.Fatalf("replica %d: guard band dirtied at %d — a group escaped its window",
				i, firstDiff(got, zeros))
		}
	}
	gA.Close()
	gB.Close()
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if a[i] != b[i] {
			return i
		}
	}
	return -1
}
