package core

import (
	"fmt"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// This file implements NIC-resident WQE programs (ROADMAP item 3): the
// client side of gATOMIC_LOOP — a pre-posted, reusable chain template whose
// CondRearm slot re-issues the replication chain until an exit condition
// holds — and the image builders for gATOMIC_LOOP and gWRITE_IF replica
// ops. Legacy primitives rebuild their client WQEs per op; the loop
// template is posted once and thereafter only *patched* (three 8-byte field
// rewrites through the registered queue memory — the same remote-WQE-
// manipulation machinery of Hyperloop §4.1, applied locally) and armed with
// a single doorbell. Retries never touch the host: the NIC evaluates the
// exit word, decrements the budget, doubles a timer-CQ backoff, and
// re-doorbells itself.

// LoopKind selects the atomic each replica executes inside a gATOMIC_LOOP.
type LoopKind int

const (
	// LoopCAS retries a compare-and-swap (Old → New).
	LoopCAS LoopKind = iota
	// LoopMaskFAdd retries a guarded masked fetch-and-add: Add is applied
	// to the field selected by FieldMask only while the guard condition
	// (old&GuardMask == GuardWant) holds — e.g. "increment the reader count
	// unless the writer bit is set" without a second round trip.
	LoopMaskFAdd
)

// LoopSpec parameterizes a gATOMIC_LOOP program.
type LoopSpec struct {
	Off  int // 8-byte target word offset in every replica store
	Kind LoopKind

	Old, New uint64 // LoopCAS operands

	Add       uint64 // LoopMaskFAdd addend
	FieldMask uint64 // LoopMaskFAdd field selector (0 = whole word)
	GuardWant uint64 // LoopMaskFAdd guard value
	GuardMask uint64 // LoopMaskFAdd guard mask (0 = unconditional)

	// ExitWant/ExitMask define success: the loop exits when the guard
	// replica's observed (pre-op) value satisfies obs&ExitMask ==
	// ExitWant&ExitMask (ExitMask 0 compares the full word).
	ExitWant uint64
	ExitMask uint64

	Exec         ExecuteMap // replicas that execute the atomic (others NOP)
	GuardReplica int        // replica whose result word drives the exit test
	Budget       int        // retries after the first attempt (0 = one shot)
}

// loopBackoffCap caps the NIC-side backoff at 64 timer ticks, mirroring the
// 64x clamp of the host-scheduled retry path it replaces.
const loopBackoffCap = 64

// Template slot roles, as offsets from the template base. The program is:
//
//	gate     NOP  (flagGate, host-owned)   — doorbelled once per op
//	backoff  WAIT (timer CQ, count 0)      — count doubled per retry by the NIC
//	send     SEND (metadata, staging slot 0) — launches one chain traversal
//	ackWait  WAIT (ack RecvCQ, count 1)    — tail ack landed, result map fresh
//	cond     COND_REARM                    — exit or rewind to backoff
//
// On retry the CondRearm re-arms [backoff, cond] and rewinds; on exit it
// re-arms the body, CLOSES the gate (flagGate), delivers its CQE, and the
// program parks until the next doorbell — zero postings per op.
const (
	tplSlotGate = iota
	tplSlotBackoff
	tplSlotSend
	tplSlotAckWait
	tplSlotCond
	tplSlots
)

// postLoopTemplate posts the gATOMIC_LOOP client program once, parked at
// its gate. Called from prime on a fresh client QP.
func (c *channel) postLoopTemplate() {
	base := c.cliQP.SQTable().Tail()
	ws := []rdma.WQE{
		{Opcode: rdma.OpNop, Gated: true},
		{Opcode: rdma.OpWait, WaitCQ: c.timerCQ.ID(), WaitCount: 0,
			Imm: 0, Swap: loopBackoffCap, HWOwned: true},
		{Opcode: rdma.OpSend, HWOwned: true,
			SGEs: []rdma.SGE{{LKey: c.cliStaging.LKey(), Offset: 0, Length: uint32(c.msgHead)}}},
		{Opcode: rdma.OpWait, WaitCQ: c.ackQP.RecvCQ().ID(), WaitCount: 1, HWOwned: true},
		{Opcode: rdma.OpCondRearm, Signaled: true, HWOwned: true,
			SGEs: []rdma.SGE{
				{LKey: c.ackMR.LKey(), Offset: 0, Length: 8},  // exit word (patched per op)
				{LKey: c.ctrlMR.LKey(), Offset: 0, Length: 8}, // retry budget
			},
			ProgA:  uint64(base + tplSlotBackoff),   // retry target
			ProgB:  uint64(base+tplSlotBackoff) + 1, // backoff slot + 1
			WaitCQ: uint32(base+tplSlotGate) + 1},   // exit target + 1
	}
	first, err := c.cliQP.PostSendBatch(ws, rdma.RawOwnership)
	if err != nil {
		panic(fmt.Sprintf("core: post loop template: %v", err))
	}
	if first != base {
		panic(fmt.Sprintf("core: loop template at slot %d, expected %d", first, base))
	}
	c.tplGate = base + tplSlotGate
	c.tplCond = base + tplSlotCond
}

// pumpLoop issues the next queued gATOMIC_LOOP. Ops serialize — the
// template is a single program instance — and an op only launches when
// every hop holds enough pre-posted chain instances for its worst-case
// attempt count (the NIC consumes one instance per attempt, autonomously,
// so the host reserves the whole budget up front).
func (c *channel) pumpLoop() {
	if len(c.pending) > 0 || len(c.waiting) == 0 {
		return
	}
	o := c.waiting[0]
	maxAttempts := uint64(o.loop.Budget) + 1
	if c.minCredit() < c.loopAttempts+maxAttempts {
		if !c.pumpArmed {
			c.pumpArmed = true
			c.g.eng.Schedule(10*sim.Microsecond, func() {
				c.pumpArmed = false
				c.pump()
			})
		}
		return
	}
	c.waiting = c.waiting[1:]
	c.issueLoop(o)
}

// issueLoop launches one gATOMIC_LOOP: stage the chain metadata, write the
// budget word, patch the template's per-op fields, top up ack RECVs, and
// ring the gate. This is the *entire* per-op host involvement; every retry
// afterwards is NIC-resident.
func (c *channel) issueLoop(o *op) {
	o.seq = c.issued
	c.issued++
	o.issued = c.g.eng.Now()
	c.pending = append(c.pending, o)
	if c.g.cfg.OpTimeout > 0 {
		seq := o.seq
		o.timeout = c.g.eng.Schedule(c.g.cfg.OpTimeout, func() {
			c.g.fail(fmt.Errorf("%w: %s op %d timed out", ErrGroupFailed, c.kind, seq))
		})
	}
	// Metadata into staging slot 0 (attempts reuse it; see stagingOff).
	msg := c.buildMetadata(o, 0)
	c.cliStaging.Backing().WriteAt(0, msg)
	// Retry budget for the NIC to decrement.
	var buf [8]byte
	putLE64(buf[:], uint64(o.loop.Budget))
	c.ctrlMR.Backing().WriteAt(0, buf[:])
	// Patch the parked CondRearm: exit condition and guard-word address.
	sq := c.cliQP.SQTable()
	sq.PatchSlotU64(c.tplCond, rdma.SlotOffImm, o.loop.ExitWant)
	sq.PatchSlotU64(c.tplCond, rdma.SlotOffSwap, o.loop.ExitMask)
	sq.PatchSlotU64(c.tplCond, rdma.SlotOffSGEAddr(0), uint64(8*o.loop.GuardReplica))
	// Each attempt consumes one ack RECV; reserve the full budget.
	for c.ackQP.RQTable().Posted() < c.g.cfg.Depth {
		if _, err := c.ackQP.PostRecv(rdma.WQE{}); err != nil {
			c.g.fail(fmt.Errorf("%w: %s ack recv top-up: %v", ErrGroupFailed, c.kind, err))
			return
		}
	}
	c.cliQP.Doorbell(c.tplGate)
}

// onLoopCQE consumes the client-side completions of the loop program. Only
// the CondRearm's final CQE reports the op outcome; anything else with a
// bad status is a genuine queue failure.
func (c *channel) onLoopCQE(e rdma.CQE) {
	if e.Opcode != rdma.OpCondRearm {
		if e.Status != rdma.StatusSuccess {
			c.g.fail(fmt.Errorf("%w: client %s completion %s", ErrGroupFailed, c.kind, e.Status))
		}
		return
	}
	switch e.Status {
	case rdma.StatusSuccess:
		c.completeLoop(nil)
	case rdma.StatusRetryExhausted:
		c.completeLoop(ErrRetriesExhausted)
	default:
		c.g.fail(fmt.Errorf("%w: %s program completion %s", ErrGroupFailed, c.kind, e.Status))
	}
}

// completeLoop finishes the in-flight loop op, deriving the attempt count
// from how much budget the NIC left behind.
func (c *channel) completeLoop(err error) {
	if len(c.pending) == 0 {
		c.g.fail(fmt.Errorf("%w: %s spurious program completion", ErrGroupFailed, c.kind))
		return
	}
	o := c.pending[0]
	c.pending = c.pending[1:]
	var buf [8]byte
	c.ctrlMR.Backing().ReadAt(0, buf[:])
	remaining := le64(buf[:])
	o.attempts = o.loop.Budget - int(remaining) + 1
	c.loopAttempts += uint64(o.attempts)
	c.acked++
	c.finish(o, err)
	c.pump()
}

// loopImage is replica i's atomic for a gATOMIC_LOOP attempt (NOP when the
// execute map skips it). Like casImage, the observed value scatters into
// the hop's staging result field, which the chain accumulates into the map
// the CondRearm's exit test reads.
func (c *channel) loopImage(i int, o *op, k int) []byte {
	if !o.exec.Has(i) {
		return nopImage()
	}
	self := c.g.replicas[i]
	resOff := c.stagingOff(i, k) + c.resultFieldOff(i)
	scatter := []rdma.SGE{{LKey: c.hops[i].staging.LKey(), Offset: uint64(resOff), Length: 8}}
	switch o.loop.Kind {
	case LoopMaskFAdd:
		return (&rdma.WQE{
			Opcode: rdma.OpMaskFAdd, Signaled: true, HWOwned: true, WRID: uint64(k),
			RKey: self.Store.RKey(), RAddr: uint64(o.loop.Off),
			Imm: o.loop.Add, Swap: o.loop.FieldMask,
			ProgA: o.loop.GuardWant, ProgB: o.loop.GuardMask,
			SGEs: scatter,
		}).EncodeImage()
	default: // LoopCAS
		return (&rdma.WQE{
			Opcode: rdma.OpCompSwap, Signaled: true, HWOwned: true, WRID: uint64(k),
			RKey: self.Store.RKey(), RAddr: uint64(o.loop.Off),
			Imm: o.loop.Old, Swap: o.loop.New,
			SGEs: scatter,
		}).EncodeImage()
	}
}

// guardImage is hop i's gWRITE_IF predicate: compare the local guard word,
// export the observed value into the staging result field, and on mismatch
// skip the WRITE that follows (which still delivers a PredFail CQE, keeping
// the downstream WAIT count constant).
func (c *channel) guardImage(i int, o *op, k int) []byte {
	self := c.g.replicas[i]
	resOff := c.stagingOff(i, k) + c.resultFieldOff(i)
	return (&rdma.WQE{
		Opcode: rdma.OpGuard, Signaled: true, HWOwned: true, WRID: uint64(k),
		Imm: o.guardWant, ProgB: o.guardMask, ProgA: 1,
		SGEs: []rdma.SGE{
			{LKey: self.Store.LKey(), Offset: uint64(o.guardOff), Length: 8},
			{LKey: c.hops[i].staging.LKey(), Offset: uint64(resOff), Length: 8},
		},
	}).EncodeImage()
}

// writeIfImage is hop i's predicated WRITE: gather the payload carried in
// its staging area and write it into its own store at the target offset.
func (c *channel) writeIfImage(i int, o *op, k int) []byte {
	self := c.g.replicas[i]
	payOff := c.stagingOff(i, k) + c.payloadOff(i)
	return (&rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true, HWOwned: true, WRID: uint64(k),
		RKey: self.Store.RKey(), RAddr: uint64(o.off),
		SGEs: []rdma.SGE{{LKey: c.hops[i].staging.LKey(), Offset: uint64(payOff), Length: uint32(o.size)}},
	}).EncodeImage()
}

// payloadOff locates the carried payload within hop i's staging area:
// right after the images it forwards to later hops.
func (c *channel) payloadOff(i int) int {
	return (len(c.hops) - 1 - i) * c.manipLen
}
