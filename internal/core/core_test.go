package core

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// testGroup builds a quiet cluster (no background load) with n replicas.
func testGroup(t *testing.T, n int, cfg Config) (*sim.Engine, *cluster.Cluster, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     n + 1,
		StoreSize: 1 << 20,
		Fabric:    fabric.Config{JitterFrac: -1},
	})
	g := New(cl, cfg)
	return eng, cl, g
}

// run drives the engine until done or the deadline and fails the test on
// group failure.
func run(t *testing.T, eng *sim.Engine, g *Group, done *bool) {
	t.Helper()
	ok := eng.RunUntil(func() bool { return *done || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if g.Failed() != nil {
		t.Fatalf("group failed: %v", g.Failed())
	}
	if !ok || !*done {
		t.Fatalf("operation did not complete (t=%v)", eng.Now())
	}
}

func TestGWriteReplicatesToAll(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 7} {
		eng, cl, g := testGroup(t, n, Config{Depth: 64})
		payload := bytes.Repeat([]byte("x"), 1024)
		copy(payload, "hello-group")
		cl.Client().StoreWrite(4096, payload)

		done := false
		var res Result
		if err := g.GWrite(4096, len(payload), false, func(r Result) { res = r; done = true }); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		run(t, eng, g, &done)
		if res.Err != nil {
			t.Fatalf("n=%d: result err %v", n, res.Err)
		}
		for i := 0; i < n; i++ {
			got := g.Replica(i).StoreBytes(4096, len(payload))
			if !bytes.Equal(got, payload) {
				t.Fatalf("n=%d: replica %d store mismatch (got %q...)", n, i, got[:16])
			}
		}
		if res.Latency <= 0 {
			t.Fatalf("n=%d: non-positive latency", n)
		}
		g.Close()
	}
}

func TestGWriteDurability(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	data := []byte("must-survive-power-failure")
	cl.Client().StoreWrite(0, data)

	done := false
	g.GWrite(0, len(data), true, func(Result) { done = true })
	run(t, eng, g, &done)

	for i := 0; i < 3; i++ {
		rep := g.Replica(i)
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("durable gWRITE lost on replica %d after power failure: %q", i, got)
		}
	}
}

func TestGWriteNonDurableIsVolatile(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	data := []byte("volatile-bytes")
	cl.Client().StoreWrite(0, data)

	done := false
	g.GWrite(0, len(data), false, func(Result) { done = true })
	run(t, eng, g, &done)

	lost := 0
	for i := 0; i < 3; i++ {
		rep := g.Replica(i)
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("non-durable gWRITE survived power failure on every replica; NIC-cache model inert")
	}
}

func TestGFlushMakesPriorWritesDurable(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	data := []byte("flush-me-later")
	cl.Client().StoreWrite(0, data)

	done := false
	g.GWrite(0, len(data), false, func(Result) { done = true })
	run(t, eng, g, &done)

	done = false
	g.GFlush(func(Result) { done = true })
	run(t, eng, g, &done)

	for i := 0; i < 3; i++ {
		rep := g.Replica(i)
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("gFLUSH did not persist replica %d: %q", i, got)
		}
	}
}

func TestGCASAcquireAndResultMap(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})

	done := false
	var res Result
	g.GCAS(128, 0, 42, AllReplicas(3), func(r Result) { res = r; done = true })
	run(t, eng, g, &done)

	if len(res.CASOld) != 3 {
		t.Fatalf("result map size %d", len(res.CASOld))
	}
	for i, v := range res.CASOld {
		if v != 0 {
			t.Fatalf("replica %d original value %d, want 0", i, v)
		}
		buf := g.Replica(i).StoreBytes(128, 8)
		if le64(buf) != 42 {
			t.Fatalf("replica %d lock word %d, want 42", i, le64(buf))
		}
	}

	// A second CAS expecting 0 must fail everywhere and report 42.
	done = false
	g.GCAS(128, 0, 99, AllReplicas(3), func(r Result) { res = r; done = true })
	run(t, eng, g, &done)
	for i, v := range res.CASOld {
		if v != 42 {
			t.Fatalf("replica %d reported %d, want 42", i, v)
		}
		buf := g.Replica(i).StoreBytes(128, 8)
		if le64(buf) != 42 {
			t.Fatalf("replica %d lock word clobbered to %d", i, le64(buf))
		}
	}
}

func TestGCASExecuteMapSelectsReplicas(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})

	// Execute only on replicas 0 and 2.
	var exec ExecuteMap = 1<<0 | 1<<2
	done := false
	var res Result
	g.GCAS(0, 0, 7, exec, func(r Result) { res = r; done = true })
	run(t, eng, g, &done)

	if res.CASOld[0] != 0 || res.CASOld[2] != 0 {
		t.Fatalf("executed replicas reported %v", res.CASOld)
	}
	if res.CASOld[1] != CASNotExecuted {
		t.Fatalf("skipped replica result = %x, want sentinel", res.CASOld[1])
	}
	if v := le64(g.Replica(0).StoreBytes(0, 8)); v != 7 {
		t.Fatalf("replica 0 word %d", v)
	}
	if v := le64(g.Replica(1).StoreBytes(0, 8)); v != 0 {
		t.Fatalf("skipped replica 1 mutated: %d", v)
	}
	if v := le64(g.Replica(2).StoreBytes(0, 8)); v != 7 {
		t.Fatalf("replica 2 word %d", v)
	}
}

func TestGCASUndoPattern(t *testing.T) {
	// Acquire on all, then undo on the subset that succeeded — the paper's
	// recovery idiom for partially-acquired locks.
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	// Pre-seed replica 1's lock word so its CAS misses.
	g.Replica(1).StoreWrite(64, leBytes(555))

	done := false
	var res Result
	g.GCAS(64, 0, 1, AllReplicas(3), func(r Result) { res = r; done = true })
	run(t, eng, g, &done)
	if res.CASOld[0] != 0 || res.CASOld[1] != 555 || res.CASOld[2] != 0 {
		t.Fatalf("mixed acquire results %v", res.CASOld)
	}

	// Undo where original == expected (replicas 0, 2).
	var undo ExecuteMap
	for i, v := range res.CASOld {
		if v == 0 {
			undo |= 1 << uint(i)
		}
	}
	done = false
	g.GCAS(64, 1, 0, undo, func(r Result) { res = r; done = true })
	run(t, eng, g, &done)
	if v := le64(g.Replica(0).StoreBytes(64, 8)); v != 0 {
		t.Fatalf("undo failed on replica 0: %d", v)
	}
	if v := le64(g.Replica(1).StoreBytes(64, 8)); v != 555 {
		t.Fatalf("undo touched skipped replica 1: %d", v)
	}
	if v := le64(g.Replica(2).StoreBytes(64, 8)); v != 0 {
		t.Fatalf("undo failed on replica 2: %d", v)
	}
}

func TestGMemcpyCommitsLogToData(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	record := []byte("log-record-payload")
	cl.Client().StoreWrite(0, record)

	// Replicate into the "log region" (offset 0) then commit to the "data
	// region" (offset 64K) on all replicas via NIC-local copy.
	done := false
	g.GWrite(0, len(record), true, func(Result) { done = true })
	run(t, eng, g, &done)

	done = false
	g.GMemcpy(64<<10, 0, len(record), true, func(Result) { done = true })
	run(t, eng, g, &done)

	for i := 0; i < 3; i++ {
		rep := g.Replica(i)
		if got := rep.StoreBytes(64<<10, len(record)); !bytes.Equal(got, record) {
			t.Fatalf("replica %d data region %q", i, got)
		}
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(64<<10, len(record)); !bytes.Equal(got, record) {
			t.Fatalf("replica %d durable copy lost: %q", i, got)
		}
	}
}

func TestNoReplicaCPUOnCriticalPath(t *testing.T) {
	// The headline property: replica hosts spend (almost) no CPU while ops
	// flow. Only the periodic replenisher runs, and with nothing consumed
	// it posts nothing.
	eng, cl, g := testGroup(t, 3, Config{Depth: 256})
	payload := bytes.Repeat([]byte("y"), 512)
	cl.Client().StoreWrite(0, payload)

	for i := 0; i < 3; i++ {
		g.Replica(i).Host.ResetAccounting()
	}
	const ops = 200
	completed := 0
	var issue func()
	issue = func() {
		g.GWrite(0, 512, true, func(Result) {
			completed++
			if completed < ops {
				issue()
			}
		})
	}
	issue()
	ok := eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if !ok || g.Failed() != nil {
		t.Fatalf("ops=%d failed=%v", completed, g.Failed())
	}
	for i := 0; i < 3; i++ {
		if u := g.Replica(i).Host.Utilization(); u > 0.02 {
			t.Fatalf("replica %d CPU utilization %.3f during HyperLoop ops, want ≈0", i, u)
		}
	}
}

func TestPipelinedThroughput(t *testing.T) {
	// Many ops in flight: all must complete, in order, with correct data.
	eng, cl, g := testGroup(t, 3, Config{Depth: 128, MaxInflight: 32})
	payload := bytes.Repeat([]byte("z"), 256)
	cl.Client().StoreWrite(0, payload)

	const ops = 500
	completed := 0
	lastSeq := ^uint64(0)
	for i := 0; i < ops; i++ {
		err := g.GWrite(0, 256, false, func(r Result) {
			if lastSeq != ^uint64(0) && r.Seq != lastSeq+1 {
				t.Errorf("acks out of order: %d after %d", r.Seq, lastSeq)
			}
			lastSeq = r.Seq
			completed++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	ok := eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if !ok || g.Failed() != nil {
		t.Fatalf("completed=%d failed=%v", completed, g.Failed())
	}
}

func TestRingWraparound(t *testing.T) {
	// More ops than Depth forces ring reuse and exercises the replenisher.
	eng, cl, g := testGroup(t, 2, Config{Depth: 16, MaxInflight: 4})
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("w"), 64))

	const ops = 200
	completed := 0
	for i := 0; i < ops; i++ {
		if err := g.GWrite(0, 64, true, func(Result) { completed++ }); err != nil {
			t.Fatal(err)
		}
	}
	ok := eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(10*sim.Second))
	if !ok || g.Failed() != nil {
		t.Fatalf("completed=%d/%d failed=%v", completed, ops, g.Failed())
	}
}

func TestMixedPrimitivesInterleaved(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	cl.Client().StoreWrite(1000, []byte("abcdefgh"))

	total := 0
	g.GWrite(1000, 8, true, func(Result) { total++ })
	g.GCAS(2000, 0, 1, AllReplicas(3), func(Result) { total++ })
	g.GMemcpy(3000, 1000, 8, true, func(Result) { total++ })
	g.GFlush(func(Result) { total++ })
	ok := eng.RunUntil(func() bool { return total >= 4 || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if !ok || g.Failed() != nil {
		t.Fatalf("total=%d failed=%v", total, g.Failed())
	}
	if got := g.Replica(2).StoreBytes(3000, 8); string(got) != "abcdefgh" {
		t.Fatalf("memcpy result %q", got)
	}
	if v := le64(g.Replica(0).StoreBytes(2000, 8)); v != 1 {
		t.Fatalf("cas result %d", v)
	}
}

func TestBadArgsRejected(t *testing.T) {
	_, _, g := testGroup(t, 2, Config{Depth: 16})
	if err := g.GWrite(-1, 10, false, nil); err != ErrBadArgs {
		t.Fatalf("negative offset: %v", err)
	}
	if err := g.GWrite(0, 0, false, nil); err != ErrBadArgs {
		t.Fatalf("zero size: %v", err)
	}
	if err := g.GWrite(1<<20-4, 8, false, nil); err != ErrTooLarge {
		t.Fatalf("overflow: %v", err)
	}
	if err := g.GMemcpy(0, -1, 8, false, nil); err != ErrBadArgs {
		t.Fatalf("memcpy bad src: %v", err)
	}
	if err := g.GCAS(1<<20, 0, 1, 1, nil); err != ErrBadArgs {
		t.Fatalf("cas out of range: %v", err)
	}
}

func TestOpTimeoutFailsGroup(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 16, OpTimeout: 10 * sim.Millisecond})
	// Sever the chain between replica 1 and replica 2.
	cl.Net.CutBoth(g.Replica(1).NIC.Node(), g.Replica(2).NIC.Node())
	cl.Client().StoreWrite(0, []byte("doomed"))

	var res Result
	done := false
	g.GWrite(0, 6, false, func(r Result) { res = r; done = true })
	eng.RunUntil(func() bool { return done }, eng.Now().Add(sim.Second))
	if !done || res.Err == nil {
		t.Fatalf("expected timeout failure, got done=%v err=%v", done, res.Err)
	}
	if g.Failed() == nil {
		t.Fatal("group not marked failed after timeout")
	}
	// Subsequent ops fail fast.
	if err := g.GWrite(0, 6, false, nil); err == nil {
		t.Fatal("issue after failure succeeded")
	}
}

func TestLatencyScalesGentlyWithGroupSize(t *testing.T) {
	// HyperLoop's latency grows roughly linearly in chain length (wire
	// hops) with no CPU term — no blow-up (Figure 10 shape).
	lat := func(n int) sim.Duration {
		eng, cl, g := testGroup(t, n, Config{Depth: 64})
		cl.Client().StoreWrite(0, bytes.Repeat([]byte("q"), 1024))
		var total sim.Duration
		done := 0
		var issue func()
		issue = func() {
			g.GWrite(0, 1024, true, func(r Result) {
				total += r.Latency
				done++
				if done < 50 {
					issue()
				}
			})
		}
		issue()
		eng.RunUntil(func() bool { return done >= 50 || g.Failed() != nil }, eng.Now().Add(sim.Second))
		if g.Failed() != nil {
			t.Fatalf("n=%d: %v", n, g.Failed())
		}
		return total / 50
	}
	l3, l7 := lat(3), lat(7)
	if l7 <= l3 {
		t.Fatalf("latency should grow with chain length: %v vs %v", l3, l7)
	}
	if l7 > 4*l3 {
		t.Fatalf("latency blow-up with group size: 3→%v, 7→%v", l3, l7)
	}
	if l3 < 2*sim.Microsecond || l3 > 60*sim.Microsecond {
		t.Fatalf("group-3 durable gWRITE latency %v outside plausible range", l3)
	}
}

func leBytes(v uint64) []byte {
	b := make([]byte, 8)
	putLE64(b, v)
	return b
}

// TestPropertyGroupMatchesShadowModel drives a random sequence of mixed
// primitives and checks every replica's final store against a simple
// shadow model — the strongest end-to-end correctness check we have.
func TestPropertyGroupMatchesShadowModel(t *testing.T) {
	for _, seed := range []int64{3, 17, 4242} {
		eng, cl, g := testGroup(t, 3, Config{Depth: 256})
		r := sim.NewRand(seed)
		const window = 64 << 10
		shadow := make([]byte, window)

		const ops = 120
		completed := 0
		var step func(i int)
		step = func(i int) {
			if i >= ops {
				return
			}
			next := func(Result) {
				completed++
				step(i + 1)
			}
			switch r.Intn(3) {
			case 0: // gWRITE of random bytes at a random offset
				off := r.Intn(window - 256)
				size := 1 + r.Intn(255)
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(r.Intn(256))
				}
				cl.Client().StoreWrite(off, data)
				copy(shadow[off:], data)
				g.GWrite(off, size, r.Intn(2) == 0, next)
			case 1: // gMEMCPY within the window
				src := r.Intn(window - 256)
				dst := r.Intn(window - 256)
				size := 1 + r.Intn(255)
				copy(shadow[dst:dst+size], append([]byte(nil), shadow[src:src+size]...))
				g.GMemcpy(dst, src, size, r.Intn(2) == 0, next)
			default: // gCAS on an aligned word
				off := 8 * r.Intn(window/8)
				old := le64(shadow[off:])
				var cur [8]byte
				copy(cur[:], shadow[off:])
				newV := r.Uint64()
				// Half the time CAS with the right expectation, half wrong.
				expect := old
				if r.Intn(2) == 0 {
					expect = old + 1 + uint64(r.Intn(5))
				}
				if expect == old {
					putLE64(shadow[off:], newV)
					// Keep the client's mirror coherent for later gWRITEs.
					b := make([]byte, 8)
					putLE64(b, newV)
					cl.Client().StoreWrite(off, b)
				}
				g.GCAS(off, expect, newV, AllReplicas(3), next)
			}
		}
		step(0)
		if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(30*sim.Second)) {
			t.Fatalf("seed %d: stalled at %d/%d (%v)", seed, completed, ops, g.Failed())
		}
		if g.Failed() != nil {
			t.Fatalf("seed %d: %v", seed, g.Failed())
		}
		for i := 0; i < 3; i++ {
			got := g.Replica(i).StoreBytes(0, window)
			if !bytes.Equal(got, shadow) {
				for j := range got {
					if got[j] != shadow[j] {
						t.Fatalf("seed %d replica %d: first divergence at offset %d (got %d want %d)",
							seed, i, j, got[j], shadow[j])
					}
				}
			}
		}
		g.Close()
	}
}
