package core

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// chanKind identifies a primitive's dedicated chain of queue pairs. Each
// primitive gets its own QPs, rings, and staging regions so that pre-posted
// chain shapes are uniform per channel (the paper allocates "separate
// metadata memory regions for each primitive", §4.1).
type chanKind int

const (
	chWrite chanKind = iota
	chCAS
	chMemcpy
	chFlush
	chLoop    // NIC-resident bounded atomic retry loop (template program)
	chWriteIf // predicated gWRITE: guard word gates the write on each replica
)

func (k chanKind) String() string {
	switch k {
	case chWrite:
		return "gWRITE"
	case chCAS:
		return "gCAS"
	case chMemcpy:
		return "gMEMCPY"
	case chFlush:
		return "gFLUSH"
	case chLoop:
		return "gATOMIC_LOOP"
	case chWriteIf:
		return "gWRITE_IF"
	default:
		return fmt.Sprintf("chan(%d)", int(k))
	}
}

// op is a queued primitive invocation.
type op struct {
	seq       uint64
	off       int
	src       int
	size      int
	durable   bool
	casOld    uint64
	casNew    uint64
	exec      ExecuteMap
	loop      *LoopSpec // gATOMIC_LOOP parameters
	guardOff  int       // gWRITE_IF: replica-local guard word offset
	guardWant uint64    // gWRITE_IF: value the guard must match
	guardMask uint64    // gWRITE_IF: compare mask (0 = full word)
	attempts  int       // gATOMIC_LOOP: chain traversals executed
	done      func(Result)
	issued    sim.Time
	timeout   sim.EventID
}

// hop is one replica's wiring for a channel.
type hop struct {
	node    *cluster.Node
	up      *rdma.QP // QP whose RQ receives from the previous node
	down    *rdma.QP // QP toward the next node (client for the tail)
	loop    *rdma.QP // loopback QP (gCAS / gMEMCPY local ops)
	staging *rdma.MemoryRegion
	posted  int // op chains pre-posted so far (absolute count)

	// Flow control: after replenishing, the replica CPU RDMA-WRITEs its
	// posted count to the client's credit region — off the critical path —
	// so the client never issues into an unreplenished ring slot.
	credQP *rdma.QP
	credMR *rdma.MemoryRegion // 8-byte counter staging on the replica
}

// channel is the per-primitive datapath: client-side queues plus one hop
// per replica.
type channel struct {
	kind chanKind
	g    *Group
	hops []*hop

	cliQP      *rdma.QP           // client → first replica
	ackQP      *rdma.QP           // on the client, from the tail
	cliStaging *rdma.MemoryRegion // outgoing metadata ring
	ackMR      *rdma.MemoryRegion // result/ack landing ring

	creditMR *rdma.MemoryRegion // per-hop posted counters, written by replicas

	issued     uint64
	acked      uint64
	pending    []*op // in-flight, ack order = issue order (chain + RC)
	waiting    []*op // queued behind MaxInflight / credits
	pumpArmed  bool  // retry timer scheduled for credit-starved issues
	flushArmed bool  // deferred fusion pump scheduled (FusionDepth > 1)
	ackSlot    int   // bytes per ack ring slot
	msgHead    int   // metadata message size entering hop 0
	slotsSQ    int   // downstream SQ slots per op
	slotsLQ    int   // loopback SQ slots per op
	manipLen   int   // bytes of descriptor images peeled per hop

	// gATOMIC_LOOP template state: the client-side WQE program is posted
	// once and re-armed by the NIC itself; per op the host only patches
	// fields and doorbells the gate.
	timerCQ      *rdma.CQ           // backoff tick source on the client NIC
	ctrlMR       *rdma.MemoryRegion // 8-byte retry budget word the NIC decrements
	tplGate      int                // absolute slot index of the template gate
	tplCond      int                // absolute slot index of the CondRearm
	loopAttempts uint64             // chain instances consumed by completed loops
}

// minCredit returns the lowest replenished-op count across hops: the client
// may issue sequence numbers strictly below it.
func (c *channel) minCredit() uint64 {
	var buf [8]byte
	min := ^uint64(0)
	for i := range c.hops {
		c.creditMR.Backing().ReadAt(8*i, buf[:])
		if v := le64(buf[:]); v < min {
			min = v
		}
	}
	return min
}

// geometry returns per-kind chain shape: slots per op on the down SQ and
// loop SQ, and the image bytes peeled by each hop's RECV.
func geometry(kind chanKind) (slotsSQ, slotsLQ, manipLen int) {
	switch kind {
	case chWrite:
		return 4, 0, 2 * rdma.SlotSize // WAIT, WRITE, FLUSH/NOP, SEND
	case chCAS, chLoop:
		return 2, 2, rdma.SlotSize // down: WAIT,SEND; loop: WAIT,CAS
	case chMemcpy:
		return 2, 3, 2 * rdma.SlotSize // loop: WAIT,WRITE,FLUSH/NOP
	case chWriteIf:
		return 2, 3, 2 * rdma.SlotSize // loop: WAIT,GUARD,WRITE
	case chFlush:
		return 3, 0, 0 // WAIT, READ0, SEND
	default:
		panic("core: unknown channel kind")
	}
}

// msgSize returns the metadata message size arriving at hop i (0-indexed)
// for a group of n replicas.
func (c *channel) msgSize(i int) int {
	n := len(c.g.replicas)
	switch c.kind {
	case chWrite:
		// Images for forwarding hops i..n-2 (the tail has none).
		m := n - 1 - i
		if m < 0 {
			m = 0
		}
		return m * c.manipLen
	case chCAS, chLoop:
		// Own image + later hops' images + result map.
		return (n-i)*c.manipLen + 8*n
	case chMemcpy:
		return (n - i) * c.manipLen
	case chWriteIf:
		// Own images + later hops' images + carried payload + observed map.
		return (n-i)*c.manipLen + c.g.cfg.PredPayloadCap + 8*n
	case chFlush:
		return 0
	default:
		panic("core: unknown channel kind")
	}
}

// stagingSize returns the staging bytes per op at hop i: the message it
// forwards downstream.
func (c *channel) stagingSize(i int) int {
	switch c.kind {
	case chCAS, chLoop, chWriteIf:
		// The tail still stages the result map (and, for gWRITE_IF, the
		// payload its own WRITE gathers) it acks to the client.
		return c.msgSize(i) - c.manipLen
	}
	if i == len(c.g.replicas)-1 {
		return 0
	}
	return c.msgSize(i + 1)
}

// buildChannel creates QPs, CQs, staging regions, and client-side rings for
// one primitive.
func (g *Group) buildChannel(kind chanKind) *channel {
	c := &channel{kind: kind, g: g}
	c.slotsSQ, c.slotsLQ, c.manipLen = geometry(kind)
	n := len(g.replicas)
	depth := g.cfg.Depth

	// Chain QPs around the ring: client→R0, R0→R1, …, R(n-1)→client. Hop
	// i's upstream is pair i's receiving end; its downstream is pair i+1's
	// sending end.
	nodes := append([]*cluster.Node{g.client}, g.replicas...)
	type pair struct{ src, dst *rdma.QP }
	pairs := make([]pair, n+1)
	for i := 0; i <= n; i++ {
		src := nodes[i]
		dst := nodes[(i+1)%(n+1)]
		a, b := cluster.ConnectPair(src, dst, depth*maxInt(c.slotsSQ, 4), depth)
		pairs[i] = pair{src: a, dst: b}
	}
	c.cliQP = pairs[0].src
	c.ackQP = pairs[n].dst
	c.creditMR = g.client.NIC.RegisterRAM(8*maxInt(n, 1), rdma.AccessLocalWrite|rdma.AccessRemoteWrite)
	for i, rep := range g.replicas {
		h := &hop{node: rep, up: pairs[i].dst, down: pairs[i+1].src}
		// Credit path: replica → client, used only by the replenisher.
		cq, _ := cluster.ConnectPair(rep, g.client, 64, 1)
		cq.SendCQ().SetAutoDrain(true)
		h.credQP = cq
		h.credMR = rep.NIC.RegisterRAM(8, rdma.AccessLocalWrite)
		if c.slotsLQ > 0 {
			h.loop = cluster.Loopback(rep, depth*c.slotsLQ)
			h.loop.SendCQ().SetAutoDrain(true)
			h.loop.RecvCQ().SetAutoDrain(true)
		}
		if s := c.stagingSize(i); s > 0 {
			h.staging = rep.NIC.RegisterRAM(depth*s, rdma.AccessLocalWrite)
		}
		// Chain CQs are WAIT-only: no host polls them.
		h.up.RecvCQ().SetAutoDrain(true)
		h.up.SendCQ().SetAutoDrain(true)
		h.down.SendCQ().SetAutoDrain(true)
		h.down.RecvCQ().SetAutoDrain(true)
		c.hops = append(c.hops, h)
	}

	// Client rings.
	c.msgHead = c.msgSize(0)
	if c.msgHead > 0 {
		c.cliStaging = g.client.NIC.RegisterRAM(depth*c.msgHead, rdma.AccessLocalWrite)
	}
	c.ackSlot = 8 * n
	if c.ackSlot < 8 {
		c.ackSlot = 8
	}
	c.ackMR = g.client.NIC.RegisterRAM(depth*c.ackSlot, rdma.AccessLocalWrite|rdma.AccessRemoteWrite)
	c.cliQP.SendCQ().SetAutoDrain(true)
	c.ackQP.RecvCQ().SetAutoDrain(true)
	if kind == chLoop {
		// The loop program completes via its CondRearm CQE, not the tail
		// ack: ack completions only feed the template's WAIT counter.
		c.timerCQ = g.client.NIC.CreateTimerCQ(g.cfg.LoopTick)
		c.ctrlMR = g.client.NIC.RegisterRAM(8, rdma.AccessLocalWrite)
		c.cliQP.SendCQ().SetCallback(func(e rdma.CQE) { c.onLoopCQE(e) })
		return c
	}
	c.cliQP.SendCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			g.fail(fmt.Errorf("%w: client %s completion %s", ErrGroupFailed, c.kind, e.Status))
		}
	})
	c.ackQP.RecvCQ().SetCallback(func(e rdma.CQE) { c.onAck(e) })
	return c
}

// prime pre-posts the initial rings: client ack RECVs and every hop's op
// chains.
func (c *channel) prime() {
	for k := 0; k < c.g.cfg.Depth; k++ {
		if _, err := c.ackQP.PostRecv(rdma.WQE{WRID: uint64(k)}); err != nil {
			panic(fmt.Sprintf("core: prime ack recv: %v", err))
		}
	}
	for i := range c.hops {
		c.replenish(i)
		// Setup is host-coordinated: seed the credit region directly.
		var buf [8]byte
		putLE64(buf[:], uint64(c.hops[i].posted))
		c.creditMR.Backing().WriteAt(8*i, buf[:])
	}
	if c.kind == chLoop {
		c.postLoopTemplate()
	}
}

// replenishable returns how many op chains hop ri could re-post right now.
func (c *channel) replenishable(ri int) int {
	h := c.hops[ri]
	free := c.g.cfg.Depth - h.up.RQTable().Posted()
	if dn := (h.down.SQTable().Slots() - h.down.SQTable().Posted()) / c.slotsSQ; dn < free {
		free = dn
	}
	if h.loop != nil {
		if lp := (h.loop.SQTable().Slots() - h.loop.SQTable().Posted()) / c.slotsLQ; lp < free {
			free = lp
		}
	}
	if free < 0 {
		free = 0
	}
	return free
}

// replenish tops up hop ri's rings, returning chains posted. The whole
// round's send-queue descriptors post as one fused batch per queue — one
// doorbell for the round, the replica-side counterpart of client fusion —
// then the new credit is pushed to the client (an RDMA WRITE issued by the
// replica CPU, off the critical path).
func (c *channel) replenish(ri int) int {
	n := c.replenishable(ri)
	if n == 0 {
		return 0
	}
	h := c.hops[ri]
	var down, loop []rdma.WQE
	for i := 0; i < n; i++ {
		if err := c.chainWQEs(ri, h.posted, &down, &loop); err != nil {
			c.g.fail(fmt.Errorf("%w: replenish %s hop %d: %v", ErrGroupFailed, c.kind, ri, err))
			return i
		}
		h.posted++
	}
	if len(down) > 0 {
		if _, err := h.down.PostSendBatch(down, rdma.RawOwnership); err != nil {
			c.g.fail(fmt.Errorf("%w: replenish %s hop %d: %v", ErrGroupFailed, c.kind, ri, err))
			return n
		}
	}
	if len(loop) > 0 {
		if _, err := h.loop.PostSendBatch(loop, rdma.RawOwnership); err != nil {
			c.g.fail(fmt.Errorf("%w: replenish %s hop %d: %v", ErrGroupFailed, c.kind, ri, err))
			return n
		}
	}
	c.pushCredit(ri)
	return n
}

// pushCredit publishes hop ri's posted count into the client's credit
// region.
func (c *channel) pushCredit(ri int) {
	h := c.hops[ri]
	var buf [8]byte
	putLE64(buf[:], uint64(h.posted))
	h.credMR.Backing().WriteAt(0, buf[:])
	if _, err := h.credQP.PostSend(rdma.WQE{
		Opcode: rdma.OpWrite, RKey: c.creditMR.RKey(), RAddr: uint64(8 * ri),
		SGEs: []rdma.SGE{{LKey: h.credMR.LKey(), Offset: 0, Length: 8}},
	}); err != nil {
		c.g.fail(fmt.Errorf("%w: credit push %s hop %d: %v", ErrGroupFailed, c.kind, ri, err))
	}
}

// stagingOff returns the staging byte offset for op k at hop i. gATOMIC_LOOP
// pins every op to slot 0: chain instances are consumed per *attempt*, so an
// instance-indexed offset would desync from the client's precomputed images;
// the program's ack-WAIT strictly serializes attempts, making reuse safe.
func (c *channel) stagingOff(i int, k int) int {
	if c.kind == chLoop {
		return 0
	}
	return (k % c.g.cfg.Depth) * c.stagingSize(i)
}

// ackOff returns the ack-ring byte offset for op k (slot 0 for gATOMIC_LOOP,
// where the CondRearm's guard SGE needs a fixed address).
func (c *channel) ackOff(k int) int {
	if c.kind == chLoop {
		return 0
	}
	return (k % c.g.cfg.Depth) * c.ackSlot
}

// chainWQEs assembles the WQE chain for absolute op index k at hop ri: the
// upstream RECV posts immediately; send-queue descriptors append to *down
// and *loop with their ownership bits set (held placeholders stay
// host-owned), for the caller to post as one fused batch per queue. This is
// the replica-CPU work HyperLoop keeps off the critical path.
func (c *channel) chainWQEs(ri, k int, down, loop *[]rdma.WQE) error {
	h := c.hops[ri]
	tail := ri == len(c.hops)-1
	kk := uint64(k)
	stg := c.stagingSize(ri)

	// Held placeholder rewritten by the RECV scatter.
	held := rdma.WQE{Opcode: rdma.OpNop, WRID: kk}

	switch c.kind {
	case chWrite:
		base := k * c.slotsSQ
		var sges []rdma.SGE
		if !tail {
			sges = append(sges, rdma.SGE{
				LKey:   h.down.SQTable().MR().LKey(),
				Offset: uint64(h.down.SQTable().SlotOffset(base + 1)),
				Length: uint32(c.manipLen),
			})
			if stg > 0 {
				sges = append(sges, rdma.SGE{
					LKey:   h.staging.LKey(),
					Offset: uint64(c.stagingOff(ri, k)),
					Length: uint32(stg),
				})
			}
		}
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk, SGEs: sges}); err != nil {
			return err
		}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true})
		if tail {
			*down = append(*down, rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk, HWOwned: true,
				RKey: c.ackMR.RKey(), RAddr: uint64(c.ackOff(k)),
			})
			return nil
		}
		*down = append(*down, held, held) // WRITE, FLUSH / NOP
		var fwd []rdma.SGE
		if stg > 0 {
			fwd = []rdma.SGE{{LKey: h.staging.LKey(), Offset: uint64(c.stagingOff(ri, k)), Length: uint32(stg)}}
		}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk, HWOwned: true, SGEs: fwd})
		return nil

	case chCAS, chLoop:
		lbase := k * c.slotsLQ
		sges := []rdma.SGE{{
			LKey:   h.loop.SQTable().MR().LKey(),
			Offset: uint64(h.loop.SQTable().SlotOffset(lbase + 1)),
			Length: uint32(c.manipLen),
		}, {
			LKey:   h.staging.LKey(),
			Offset: uint64(c.stagingOff(ri, k)),
			Length: uint32(stg),
		}}
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk, SGEs: sges}); err != nil {
			return err
		}
		*loop = append(*loop,
			rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true},
			held) // CAS / MaskFAdd / NOP
		*down = append(*down, rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.loop.SendCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true})
		ackSGE := []rdma.SGE{{LKey: h.staging.LKey(), Offset: uint64(c.stagingOff(ri, k)), Length: uint32(stg)}}
		if tail {
			*down = append(*down, rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk, HWOwned: true,
				RKey: c.ackMR.RKey(), RAddr: uint64(c.ackOff(k)),
				SGEs: ackSGE,
			})
			return nil
		}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk, HWOwned: true, SGEs: ackSGE})
		return nil

	case chWriteIf:
		lbase := k * c.slotsLQ
		// The RECV peels this hop's GUARD+WRITE images into adjacent loop
		// slots; the rest (downstream images, payload, observed map) stages.
		sges := []rdma.SGE{{
			LKey:   h.loop.SQTable().MR().LKey(),
			Offset: uint64(h.loop.SQTable().SlotOffset(lbase + 1)),
			Length: uint32(c.manipLen),
		}, {
			LKey:   h.staging.LKey(),
			Offset: uint64(c.stagingOff(ri, k)),
			Length: uint32(stg),
		}}
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk, SGEs: sges}); err != nil {
			return err
		}
		*loop = append(*loop,
			rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true},
			held, // GUARD
			held) // predicated WRITE
		// Guard and write are both signaled; a failed guard substitutes a
		// PredFail CQE for the skipped write, so the count is constant.
		*down = append(*down, rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.loop.SendCQ().ID(), WaitCount: 2, WRID: kk, HWOwned: true})
		if tail {
			mapOff := c.stagingOff(ri, k) + c.g.cfg.PredPayloadCap
			*down = append(*down, rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk, HWOwned: true,
				RKey: c.ackMR.RKey(), RAddr: uint64(c.ackOff(k)),
				SGEs: []rdma.SGE{{LKey: h.staging.LKey(), Offset: uint64(mapOff), Length: uint32(8 * len(c.hops))}},
			})
			return nil
		}
		fwd := []rdma.SGE{{LKey: h.staging.LKey(), Offset: uint64(c.stagingOff(ri, k)), Length: uint32(stg)}}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk, HWOwned: true, SGEs: fwd})
		return nil

	case chMemcpy:
		lbase := k * c.slotsLQ
		sges := []rdma.SGE{{
			LKey:   h.loop.SQTable().MR().LKey(),
			Offset: uint64(h.loop.SQTable().SlotOffset(lbase + 1)),
			Length: uint32(c.manipLen),
		}}
		if stg > 0 {
			sges = append(sges, rdma.SGE{LKey: h.staging.LKey(), Offset: uint64(c.stagingOff(ri, k)), Length: uint32(stg)})
		}
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk, SGEs: sges}); err != nil {
			return err
		}
		*loop = append(*loop,
			rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true},
			held, // local WRITE (copy)
			held) // FLUSH / NOP
		// Both loop ops are signaled, so the forward waits for two CQEs.
		*down = append(*down, rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.loop.SendCQ().ID(), WaitCount: 2, WRID: kk, HWOwned: true})
		if tail {
			*down = append(*down, rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk, HWOwned: true,
				RKey: c.ackMR.RKey(), RAddr: uint64(c.ackOff(k)),
			})
			return nil
		}
		var fwd []rdma.SGE
		if stg > 0 {
			fwd = []rdma.SGE{{LKey: h.staging.LKey(), Offset: uint64(c.stagingOff(ri, k)), Length: uint32(stg)}}
		}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk, HWOwned: true, SGEs: fwd})
		return nil

	case chFlush:
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk}); err != nil {
			return err
		}
		*down = append(*down, rdma.WQE{Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk, HWOwned: true})
		if tail {
			*down = append(*down, rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk, HWOwned: true,
				RKey: c.ackMR.RKey(), RAddr: uint64(c.ackOff(k)),
			})
			return nil
		}
		// Flush the next replica's store (0-byte READ), then forward.
		next := c.g.replicas[ri+1]
		*down = append(*down,
			rdma.WQE{Opcode: rdma.OpRead, Signaled: true, WRID: kk, HWOwned: true, RKey: next.Store.RKey()},
			rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk, HWOwned: true})
		return nil

	default:
		panic("core: unknown channel kind")
	}
}

// failAll errors out all in-flight and queued ops.
func (c *channel) failAll(reason error) {
	for _, o := range append(c.pending, c.waiting...) {
		c.finish(o, reason)
	}
	c.pending = nil
	c.waiting = nil
}

func (c *channel) finish(o *op, err error) {
	c.g.eng.Cancel(o.timeout) // no-op for ops without a timeout
	res := Result{
		Seq:       o.seq,
		Issued:    o.issued,
		Completed: c.g.eng.Now(),
		Err:       err,
	}
	res.Latency = res.Completed.Sub(res.Issued)
	if err == nil && (c.kind == chCAS || c.kind == chWriteIf) {
		res.CASOld = c.readResultMap(o.seq)
	}
	if c.kind == chLoop {
		res.Attempts = o.attempts
		// Exhaustion still surfaces the last attempt's observed values.
		if err == nil || err == ErrRetriesExhausted {
			res.CASOld = c.readResultMap(o.seq)
		}
	}
	if err == nil {
		c.g.opsCompleted++
	}
	if o.done != nil {
		o.done(res)
	}
}

// readResultMap copies the gCAS result map out of the ack ring before the
// slot can be reused.
func (c *channel) readResultMap(seq uint64) []uint64 {
	n := len(c.g.replicas)
	buf := make([]byte, 8*n)
	c.ackMR.Backing().ReadAt(c.ackOff(int(seq)), buf)
	out := make([]uint64, n)
	for i := range out {
		out[i] = le64(buf[8*i:])
	}
	return out
}

// onAck handles a tail WRITE_IMM arriving at the client: acks are strictly
// in issue order (chain topology + reliable-connected in-order delivery).
func (c *channel) onAck(e rdma.CQE) {
	if e.Status != rdma.StatusSuccess {
		c.g.fail(fmt.Errorf("%w: %s ack status %s", ErrGroupFailed, c.kind, e.Status))
		return
	}
	if len(c.pending) == 0 {
		c.g.fail(fmt.Errorf("%w: %s spurious ack imm=%d", ErrGroupFailed, c.kind, e.Imm))
		return
	}
	o := c.pending[0]
	c.pending = c.pending[1:]
	if e.Imm != o.seq {
		c.g.fail(fmt.Errorf("%w: %s ack order violation: imm=%d want %d", ErrGroupFailed, c.kind, e.Imm, o.seq))
		return
	}
	c.acked++
	// Re-arm the consumed ack RECV.
	if _, err := c.ackQP.PostRecv(rdma.WQE{}); err != nil {
		c.g.fail(fmt.Errorf("%w: repost ack recv: %v", ErrGroupFailed, err))
		return
	}
	c.finish(o, nil)
	c.pump()
}

// submit queues a primitive invocation and pumps the issue path. With
// FusionDepth > 1 the pump is deferred to a zero-delay event, so every op
// submitted at the same virtual instant lands in the queue before the pump
// runs once over all of them — that is what gives the fuser adjacent runs
// to batch. Determinism is untouched: the deferral is a normal engine event
// at the same timestamp, ordered by the usual (time, seq) rule.
func (c *channel) submit(o *op) error {
	if c.g.failed != nil {
		return c.g.failed
	}
	c.waiting = append(c.waiting, o)
	if c.g.cfg.FusionDepth > 1 {
		if !c.flushArmed {
			c.flushArmed = true
			c.g.eng.Schedule(0, func() {
				c.flushArmed = false
				c.pump()
			})
		}
		return nil
	}
	c.pump()
	return nil
}

// pump issues queued ops while the in-flight window and replica credits
// allow. When credit-starved it arms a retry timer: credits arrive as RDMA
// WRITEs (no completion event on the client), so a short poll is how a real
// client would notice them.
func (c *channel) pump() {
	if c.g.failed != nil {
		return
	}
	if c.kind == chLoop {
		c.pumpLoop()
		return
	}
	for len(c.waiting) > 0 && len(c.pending) < c.g.cfg.MaxInflight && c.issued < c.minCredit() {
		// Fuse up to FusionDepth adjacent ops of this primitive into one
		// posting, bounded by the inflight window and replica credits.
		n := len(c.waiting)
		if d := c.g.cfg.FusionDepth; n > d {
			n = d
		}
		if w := c.g.cfg.MaxInflight - len(c.pending); n > w {
			n = w
		}
		if cr := int(c.minCredit() - c.issued); n > cr {
			n = cr
		}
		batch := c.waiting[:n:n]
		c.waiting = c.waiting[n:]
		c.sendBatch(batch)
	}
	if len(c.waiting) > 0 && len(c.pending) < c.g.cfg.MaxInflight && !c.pumpArmed {
		c.pumpArmed = true
		c.g.eng.Schedule(10*sim.Microsecond, func() {
			c.pumpArmed = false
			c.pump()
		})
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func le64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLE64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
