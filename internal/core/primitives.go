package core

import (
	"fmt"

	"hyperloop/internal/rdma"
)

// sendBatch issues a run of ops on channel c as one fused posting: each
// op's per-replica descriptor images (the "metadata" of §4.1, pre-calculated
// by the client) are staged, then every op's client-side work requests post
// back to back with a single doorbell (rdma.PostSendBatch). Everything after
// this — per-hop execution, forwarding, flushing, the tail ack — happens on
// NICs. A batch of one is the legacy issue path with identical timing when
// no DoorbellCost is configured.
func (c *channel) sendBatch(ops []*op) {
	var ws []rdma.WQE
	for _, o := range ops {
		o.seq = c.issued
		c.issued++
		o.issued = c.g.eng.Now()
		c.pending = append(c.pending, o)
		if c.g.cfg.OpTimeout > 0 {
			seq := o.seq
			o.timeout = c.g.eng.Schedule(c.g.cfg.OpTimeout, func() {
				c.g.fail(fmt.Errorf("%w: %s op %d timed out", ErrGroupFailed, c.kind, seq))
			})
		}
		ws = append(ws, c.clientWQEs(o)...)
	}
	if c.g.failed != nil || len(ws) == 0 {
		return
	}
	if _, err := c.cliQP.PostSendBatch(ws); err != nil {
		c.g.fail(fmt.Errorf("%w: client post %s: %v", ErrGroupFailed, c.kind, err))
		return
	}
	if len(ops) > 1 {
		c.g.fusedBatches++
		c.g.fusedOps += uint64(len(ops))
	}
}

// clientWQEs builds op o's client-side work requests and stages its
// metadata message in the outgoing ring slot for seq o.seq.
func (c *channel) clientWQEs(o *op) []rdma.WQE {
	k := int(o.seq)
	msg := c.buildMetadata(o, k)
	slotOff := (k % c.g.cfg.Depth) * c.msgHead
	if len(msg) > 0 {
		c.cliStaging.Backing().WriteAt(slotOff, msg)
	}
	head := c.g.replicas[0]
	metaSGE := []rdma.SGE{}
	if c.msgHead > 0 {
		metaSGE = []rdma.SGE{{LKey: c.cliStaging.LKey(), Offset: uint64(slotOff), Length: uint32(c.msgHead)}}
	}
	switch c.kind {
	case chWrite:
		ws := []rdma.WQE{{
			Opcode: rdma.OpWrite, Signaled: true, WRID: o.seq,
			RKey: head.Store.RKey(), RAddr: uint64(o.off),
			SGEs: []rdma.SGE{{LKey: c.g.client.Store.LKey(), Offset: uint64(o.off), Length: uint32(o.size)}},
		}}
		if o.durable {
			// gFLUSH interleave: drain the head replica's NIC cache before
			// the metadata SEND triggers its forward.
			ws = append(ws, rdma.WQE{Opcode: rdma.OpRead, Signaled: true, WRID: o.seq, RKey: head.Store.RKey()})
		}
		return append(ws, rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: o.seq, SGEs: metaSGE})
	case chCAS, chMemcpy, chWriteIf:
		return []rdma.WQE{{Opcode: rdma.OpSend, Signaled: true, WRID: o.seq, SGEs: metaSGE}}
	case chLoop:
		// gATOMIC_LOOP never builds per-op client WQEs: its template is
		// pre-posted and issueLoop patches + doorbells it instead.
		panic("core: gATOMIC_LOOP must issue through the template program")
	case chFlush:
		return []rdma.WQE{
			{Opcode: rdma.OpRead, Signaled: true, WRID: o.seq, RKey: head.Store.RKey()},
			{Opcode: rdma.OpSend, Signaled: true, WRID: o.seq},
		}
	default:
		panic("core: unknown channel kind")
	}
}

// buildMetadata assembles the message entering hop 0: the concatenated
// descriptor images each hop's RECV will peel into its own queue slots,
// plus (for gCAS) the result map.
func (c *channel) buildMetadata(o *op, k int) []byte {
	n := len(c.hops)
	msg := make([]byte, 0, c.msgHead)
	switch c.kind {
	case chWrite:
		for i := 0; i < n-1; i++ {
			msg = append(msg, c.writeImage(i, o, k)...)
			msg = append(msg, c.flushImage(i+1, o)...)
		}
	case chCAS:
		for i := 0; i < n; i++ {
			msg = append(msg, c.casImage(i, o, k)...)
		}
		msg = append(msg, sentinelMap(n)...)
	case chLoop:
		for i := 0; i < n; i++ {
			msg = append(msg, c.loopImage(i, o, k)...)
		}
		msg = append(msg, sentinelMap(n)...)
	case chWriteIf:
		for i := 0; i < n; i++ {
			msg = append(msg, c.guardImage(i, o, k)...)
			msg = append(msg, c.writeIfImage(i, o, k)...)
		}
		// Carried payload: the client host copies the bytes out of its
		// store into the chain message (bounded by PredPayloadCap).
		pay := make([]byte, c.g.cfg.PredPayloadCap)
		c.g.client.Store.Backing().ReadAt(o.off, pay[:o.size])
		msg = append(msg, pay...)
		msg = append(msg, sentinelMap(n)...)
	case chMemcpy:
		for i := 0; i < n; i++ {
			msg = append(msg, c.memcpyImage(i, o, k)...)
			msg = append(msg, c.selfFlushImage(i, o)...)
		}
	case chFlush:
		// No images: the chain is fully pre-posted.
	}
	if len(msg) != c.msgHead {
		panic(fmt.Sprintf("core: %s metadata %dB, geometry says %dB", c.kind, len(msg), c.msgHead))
	}
	return msg
}

// writeImage is hop i's forwarding WRITE: gather the freshly-replicated
// bytes from its own store and write them to hop i+1's store at the same
// offset.
func (c *channel) writeImage(i int, o *op, k int) []byte {
	self := c.g.replicas[i]
	next := c.g.replicas[i+1]
	return (&rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true, HWOwned: true, WRID: uint64(k),
		RKey: next.Store.RKey(), RAddr: uint64(o.off),
		SGEs: []rdma.SGE{{LKey: self.Store.LKey(), Offset: uint64(o.off), Length: uint32(o.size)}},
	}).EncodeImage()
}

// flushImage is the interleaved gFLUSH toward replica j's store (a 0-byte
// READ), or a signaled NOP when the op is not durable.
func (c *channel) flushImage(j int, o *op) []byte {
	if !o.durable {
		return nopImage()
	}
	return (&rdma.WQE{
		Opcode: rdma.OpRead, Signaled: true, HWOwned: true,
		RKey: c.g.replicas[j].Store.RKey(),
	}).EncodeImage()
}

// selfFlushImage drains hop i's own store via its loopback QP.
func (c *channel) selfFlushImage(i int, o *op) []byte {
	if !o.durable {
		return nopImage()
	}
	return (&rdma.WQE{
		Opcode: rdma.OpRead, Signaled: true, HWOwned: true,
		RKey: c.g.replicas[i].Store.RKey(),
	}).EncodeImage()
}

// casImage is hop i's local compare-and-swap (or NOP when the execute map
// skips it). The original value scatters into the hop's staging result
// field so the chain accumulates the result map (§4.2, Figure 6).
func (c *channel) casImage(i int, o *op, k int) []byte {
	if !o.exec.Has(i) {
		return nopImage()
	}
	self := c.g.replicas[i]
	resOff := c.stagingOff(i, k) + c.resultFieldOff(i)
	return (&rdma.WQE{
		Opcode: rdma.OpCompSwap, Signaled: true, HWOwned: true, WRID: uint64(k),
		RKey: self.Store.RKey(), RAddr: uint64(o.off),
		Imm: o.casOld, Swap: o.casNew,
		SGEs: []rdma.SGE{{LKey: c.hops[i].staging.LKey(), Offset: uint64(resOff), Length: 8}},
	}).EncodeImage()
}

// resultFieldOff locates replica i's result slot within its staging area:
// after the images it forwards (and, for gWRITE_IF, the carried payload),
// 8 bytes per preceding replica.
func (c *channel) resultFieldOff(i int) int {
	n := len(c.hops)
	off := (n - 1 - i) * c.manipLen
	if c.kind == chWriteIf {
		off += c.g.cfg.PredPayloadCap
	}
	return off + 8*i
}

// sentinelMap builds an n-entry result map filled with CASNotExecuted.
func sentinelMap(n int) []byte {
	res := make([]byte, 8*n)
	for i := 0; i < n; i++ {
		putLE64(res[8*i:], CASNotExecuted)
	}
	return res
}

// memcpyImage is hop i's NIC-local copy from srcOff to dstOff within its
// own store, issued over the loopback QP (§4.2, Figure 7).
func (c *channel) memcpyImage(i int, o *op, k int) []byte {
	self := c.g.replicas[i]
	return (&rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true, HWOwned: true, WRID: uint64(k),
		RKey: self.Store.RKey(), RAddr: uint64(o.off),
		SGEs: []rdma.SGE{{LKey: self.Store.LKey(), Offset: uint64(o.src), Length: uint32(o.size)}},
	}).EncodeImage()
}

func nopImage() []byte {
	return (&rdma.WQE{Opcode: rdma.OpNop, Signaled: true, HWOwned: true}).EncodeImage()
}
