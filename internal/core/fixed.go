package core

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// FixedChain is the strawman §4.1 dismisses before introducing remote work
// request manipulation: WAIT alone lets NICs forward, but "NICs can only
// forward a fixed size buffer of data at a pre-defined memory location,
// which we call fixed replication". Every pre-posted descriptor is fully
// static — same offset, same length, every operation — so the chain can
// replicate exactly one buffer shape.
//
// It exists for the ablation comparing manipulation overhead against the
// fixed strawman (BenchmarkAblationFixedVsManipulated) and as executable
// documentation of why manipulation is necessary for real storage systems.
type FixedChain struct {
	eng      *sim.Engine
	cfg      Config
	client   *cluster.Node
	replicas []*cluster.Node
	off      int
	size     int

	cliQP   *rdma.QP
	ackQP   *rdma.QP
	ackMR   *rdma.MemoryRegion
	hops    []*fixedHop
	issued  uint64
	posted  int
	pending []*op
	waiting []*op
	failed  error
}

type fixedHop struct {
	up, down *rdma.QP
}

// NewFixedChain wires a fixed-replication chain for the single buffer
// [off, off+size) of the shared store window.
func NewFixedChain(cl *cluster.Cluster, off, size int, cfg Config) *FixedChain {
	cfg.fill()
	g := &FixedChain{
		eng: cl.Eng, cfg: cfg,
		client: cl.Client(), replicas: cl.Replicas(),
		off: off, size: size,
	}
	n := len(g.replicas)
	depth := cfg.Depth
	nodes := cl.Nodes
	type pair struct{ src, dst *rdma.QP }
	pairs := make([]pair, n+1)
	for i := 0; i <= n; i++ {
		a, b := cluster.ConnectPair(nodes[i], nodes[(i+1)%(n+1)], depth*4, depth)
		a.SendCQ().SetAutoDrain(true)
		a.RecvCQ().SetAutoDrain(true)
		b.SendCQ().SetAutoDrain(true)
		b.RecvCQ().SetAutoDrain(true)
		pairs[i] = pair{a, b}
	}
	g.cliQP = pairs[0].src
	g.ackQP = pairs[n].dst
	for i := range g.replicas {
		g.hops = append(g.hops, &fixedHop{up: pairs[i].dst, down: pairs[i+1].src})
	}
	g.cliQP.SendCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			g.fail(fmt.Errorf("%w: fixed client completion %s", ErrGroupFailed, e.Status))
		}
	})
	g.ackQP.RecvCQ().SetCallback(func(e rdma.CQE) { g.onAck(e) })
	for k := 0; k < depth; k++ {
		if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
			panic(err)
		}
	}
	g.prime()
	g.startReplenisher()
	return g
}

func (g *FixedChain) fail(reason error) {
	if g.failed != nil {
		return
	}
	g.failed = reason
	for _, o := range append(g.pending, g.waiting...) {
		if o.done != nil {
			o.done(Result{Seq: o.seq, Err: reason})
		}
	}
	g.pending, g.waiting = nil, nil
}

// Failed returns the failure reason, or nil.
func (g *FixedChain) Failed() error { return g.failed }

func (g *FixedChain) canPost() bool {
	for i, h := range g.hops {
		if h.up.RQTable().Posted() >= g.cfg.Depth {
			return false
		}
		slots := 3
		if i == len(g.hops)-1 {
			slots = 2
		}
		if h.down.SQTable().Slots()-h.down.SQTable().Posted() < slots {
			return false
		}
	}
	return true
}

// postOpChain pre-posts one op's fully static chain at every hop: nothing
// is ever rewritten, which is exactly the strawman's limitation.
func (g *FixedChain) postOpChain(k int) error {
	kk := uint64(k)
	n := len(g.replicas)
	for i, h := range g.hops {
		if _, err := h.up.PostRecv(rdma.WQE{WRID: kk}); err != nil {
			return err
		}
		if _, err := h.down.PostSend(rdma.WQE{
			Opcode: rdma.OpWait, WaitCQ: h.up.RecvCQ().ID(), WaitCount: 1, WRID: kk,
		}); err != nil {
			return err
		}
		if i == n-1 {
			// Tail acks the client.
			ackOff := uint64((k % g.cfg.Depth) * 8)
			if _, err := h.down.PostSend(rdma.WQE{
				Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk,
				RKey: g.ackWindowRKey(), RAddr: ackOff,
			}); err != nil {
				return err
			}
			continue
		}
		// Static forward: the fixed buffer to the next replica's store.
		next := g.replicas[i+1]
		if _, err := h.down.PostSend(rdma.WQE{
			Opcode: rdma.OpWrite, Signaled: true, WRID: kk,
			RKey: next.Store.RKey(), RAddr: uint64(g.off),
			SGEs: []rdma.SGE{{LKey: g.replicas[i].Store.LKey(), Offset: uint64(g.off), Length: uint32(g.size)}},
		}); err != nil {
			return err
		}
		if _, err := h.down.PostSend(rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: kk}); err != nil {
			return err
		}
	}
	return nil
}

// ackWindowRKey lazily registers the client-side ack ring.
func (g *FixedChain) ackWindowRKey() uint32 {
	if g.ackMR == nil {
		g.ackMR = g.client.NIC.RegisterRAM(g.cfg.Depth*8, rdma.AccessLocalWrite|rdma.AccessRemoteWrite)
	}
	return g.ackMR.RKey()
}

func (g *FixedChain) prime() {
	g.ackWindowRKey()
	for g.canPost() {
		if err := g.postOpChain(g.posted); err != nil {
			panic(fmt.Sprintf("core: fixed prime: %v", err))
		}
		g.posted++
	}
}

func (g *FixedChain) startReplenisher() {
	var tick func()
	tick = func() {
		if g.failed != nil {
			return
		}
		n := 0
		for g.canPost() {
			if err := g.postOpChain(g.posted); err != nil {
				g.fail(err)
				return
			}
			g.posted++
			n++
		}
		if n > 0 {
			for _, rep := range g.replicas {
				rep.Host.Submit("hl-fixed-replenish", sim.Duration(n)*g.cfg.ChainPostCost, nil)
			}
			g.pump()
		}
		g.eng.Schedule(g.cfg.ReplenishEvery, tick)
	}
	g.eng.Schedule(g.cfg.ReplenishEvery, tick)
}

func (g *FixedChain) onAck(e rdma.CQE) {
	if e.Status != rdma.StatusSuccess {
		g.fail(fmt.Errorf("%w: fixed ack %s", ErrGroupFailed, e.Status))
		return
	}
	if len(g.pending) == 0 {
		g.fail(fmt.Errorf("%w: fixed spurious ack", ErrGroupFailed))
		return
	}
	o := g.pending[0]
	g.pending = g.pending[1:]
	if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
		g.fail(err)
		return
	}
	if o.done != nil {
		o.done(Result{Seq: o.seq, Issued: o.issued, Completed: g.eng.Now(),
			Latency: g.eng.Now().Sub(o.issued)})
	}
	g.pump()
}

func (g *FixedChain) pump() {
	for len(g.waiting) > 0 && len(g.pending) < g.cfg.MaxInflight && g.issued < uint64(g.posted) {
		o := g.waiting[0]
		g.waiting = g.waiting[1:]
		g.send(o)
	}
}

// Write replicates the fixed buffer's current contents (the client must
// have staged data at the fixed offset). The strawman's only verb.
func (g *FixedChain) Write(done func(Result)) error {
	if g.failed != nil {
		return g.failed
	}
	g.waiting = append(g.waiting, &op{done: done})
	g.pump()
	return nil
}

func (g *FixedChain) send(o *op) {
	o.seq = g.issued
	g.issued++
	o.issued = g.eng.Now()
	g.pending = append(g.pending, o)
	post := func(w rdma.WQE) {
		if g.failed != nil {
			return
		}
		if _, err := g.cliQP.PostSend(w); err != nil {
			g.fail(err)
		}
	}
	head := g.replicas[0]
	post(rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true, WRID: o.seq,
		RKey: head.Store.RKey(), RAddr: uint64(g.off),
		SGEs: []rdma.SGE{{LKey: g.client.Store.LKey(), Offset: uint64(g.off), Length: uint32(g.size)}},
	})
	post(rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: o.seq})
}
