package core

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

func fanoutRig(t *testing.T, backups int) (*sim.Engine, *cluster.Cluster, *FanoutGroup) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: backups + 2, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := NewFanout(eng, cl.Client(), cl.Replicas()[0], cl.Replicas()[1:], Config{Depth: 64})
	return eng, cl, g
}

func TestFanoutReplicatesToPrimaryAndBackups(t *testing.T) {
	for _, nb := range []int{1, 2, 4} {
		eng, cl, g := fanoutRig(t, nb)
		payload := bytes.Repeat([]byte("f"), 512)
		copy(payload, "fanout-data")
		cl.Client().StoreWrite(256, payload)

		done := false
		if err := g.GWrite(256, len(payload), true, func(r Result) {
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			done = true
		}); err != nil {
			t.Fatal(err)
		}
		if !eng.RunUntil(func() bool { return done || g.Failed() != nil }, eng.Now().Add(sim.Second)) {
			t.Fatalf("nb=%d: fanout write stalled (%v)", nb, g.Failed())
		}
		for i, rep := range cl.Replicas() {
			if got := rep.StoreBytes(256, len(payload)); !bytes.Equal(got, payload) {
				t.Fatalf("nb=%d replica %d mismatch", nb, i)
			}
		}
	}
}

func TestFanoutAckImpliesBackupDurability(t *testing.T) {
	eng, cl, g := fanoutRig(t, 3)
	data := []byte("must-be-durable-on-backups")
	cl.Client().StoreWrite(0, data)
	done := false
	g.GWrite(0, len(data), true, func(r Result) { done = r.Err == nil })
	eng.RunUntil(func() bool { return done }, eng.Now().Add(sim.Second))
	if !done {
		t.Fatalf("write stalled: %v", g.Failed())
	}
	for i, rep := range cl.Replicas() {
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d lost acked fanout write: %q", i, got)
		}
	}
}

func TestFanoutPipelined(t *testing.T) {
	eng, cl, g := fanoutRig(t, 2)
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("p"), 128))
	const ops = 300
	completed := 0
	for i := 0; i < ops; i++ {
		if err := g.GWrite(0, 128, true, func(r Result) {
			if r.Err == nil {
				completed++
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(10*sim.Second)) {
		t.Fatalf("completed %d/%d (%v)", completed, ops, g.Failed())
	}
}

func TestFanoutNoPrimaryCPUOnCriticalPath(t *testing.T) {
	eng, cl, g := fanoutRig(t, 3)
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("c"), 256))
	primary := cl.Replicas()[0]
	primary.Host.ResetAccounting()
	completed := 0
	var issue func()
	issue = func() {
		g.GWrite(0, 256, true, func(r Result) {
			completed++
			if completed < 150 {
				issue()
			}
		})
	}
	issue()
	if !eng.RunUntil(func() bool { return completed >= 150 || g.Failed() != nil }, eng.Now().Add(10*sim.Second)) {
		t.Fatalf("stalled at %d (%v)", completed, g.Failed())
	}
	if u := primary.Host.Utilization(); u > 0.02 {
		t.Fatalf("primary CPU %.3f during fan-out ops, want ≈0 (coordination offloaded)", u)
	}
}

func TestFanoutBadArgs(t *testing.T) {
	_, _, g := fanoutRig(t, 2)
	if err := g.GWrite(-1, 4, false, nil); err != ErrBadArgs {
		t.Fatalf("negative offset: %v", err)
	}
	if err := g.GWrite(0, 2<<20, false, nil); err != ErrBadArgs {
		t.Fatalf("oversize: %v", err)
	}
}

func TestFanoutWidthLimit(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: 8, StoreSize: 1 << 20})
	defer func() {
		if recover() == nil {
			t.Fatal("over-wide fanout did not panic")
		}
	}()
	NewFanout(eng, cl.Client(), cl.Replicas()[0], cl.Replicas()[1:7], Config{Depth: 16})
}

func TestFanoutVsChainLatency(t *testing.T) {
	// Fan-out trades chain pipelining for parallel backup writes: with the
	// same replica count its latency must be no worse than the chain's
	// (fewer serial wire hops).
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: 5, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1}})
	chainG := New(cl, Config{Depth: 64})
	defer chainG.Close()
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("x"), 1024))

	var chainLat, fanLat sim.Duration
	n := 0
	var chainOp func()
	chainOp = func() {
		chainG.GWrite(0, 1024, true, func(r Result) {
			chainLat += r.Latency
			n++
			if n < 50 {
				chainOp()
			}
		})
	}
	chainOp()
	eng.RunUntil(func() bool { return n >= 50 }, eng.Now().Add(sim.Second))

	eng2 := sim.NewEngine()
	cl2 := cluster.New(eng2, cluster.Config{Nodes: 5, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1}})
	fanG := NewFanout(eng2, cl2.Client(), cl2.Replicas()[0], cl2.Replicas()[1:], Config{Depth: 64})
	cl2.Client().StoreWrite(0, bytes.Repeat([]byte("x"), 1024))
	m := 0
	var fanOp func()
	fanOp = func() {
		fanG.GWrite(0, 1024, true, func(r Result) {
			fanLat += r.Latency
			m++
			if m < 50 {
				fanOp()
			}
		})
	}
	fanOp()
	eng2.RunUntil(func() bool { return m >= 50 }, eng2.Now().Add(sim.Second))

	if n < 50 || m < 50 {
		t.Fatalf("runs incomplete: chain=%d fanout=%d", n, m)
	}
	chainAvg, fanAvg := chainLat/50, fanLat/50
	if fanAvg > chainAvg {
		t.Fatalf("fan-out (%v) slower than chain (%v) at equal replica count", fanAvg, chainAvg)
	}
}

func TestFixedChainReplicatesFixedBuffer(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: 4, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1}})
	const off, size = 4096, 256
	g := NewFixedChain(cl, off, size, Config{Depth: 64})

	payload := bytes.Repeat([]byte("s"), size)
	copy(payload, "static-buffer")
	cl.Client().StoreWrite(off, payload)
	done := false
	if err := g.Write(func(r Result) { done = r.Err == nil }); err != nil {
		t.Fatal(err)
	}
	if !eng.RunUntil(func() bool { return done || g.Failed() != nil }, eng.Now().Add(sim.Second)) {
		t.Fatalf("fixed write stalled: %v", g.Failed())
	}
	for i, rep := range cl.Replicas() {
		if got := rep.StoreBytes(off, size); !bytes.Equal(got, payload) {
			t.Fatalf("replica %d fixed buffer mismatch", i)
		}
	}

	// The strawman's limitation: a second write only ever moves the same
	// buffer — there is no way to address different data.
	copy(payload, "second-content")
	cl.Client().StoreWrite(off, payload)
	done = false
	g.Write(func(r Result) { done = r.Err == nil })
	eng.RunUntil(func() bool { return done }, eng.Now().Add(sim.Second))
	if got := cl.Replicas()[2].StoreBytes(off, 14); string(got) != "second-content" {
		t.Fatalf("fixed rewrite: %q", got)
	}
}

func TestFixedChainPipelined(t *testing.T) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: 4, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1}})
	g := NewFixedChain(cl, 0, 1024, Config{Depth: 32})
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("q"), 1024))
	const ops = 200
	completed := 0
	for i := 0; i < ops; i++ {
		g.Write(func(r Result) {
			if r.Err == nil {
				completed++
			}
		})
	}
	if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(10*sim.Second)) {
		t.Fatalf("completed %d/%d (%v)", completed, ops, g.Failed())
	}
}
