package core

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// FanoutGroup implements the paper's §7 extension: a FaRM-style
// primary/backup topology where the client offloads coordination from the
// primary's CPU to the primary's NIC. One write replicates to the primary
// (by the client) and to every backup (by the primary's NIC), and the
// primary acks only after every backup's write — and its durability flush —
// has completed.
//
// Datapath per operation:
//
//	client:  WRITE data → primary store; [READ0 flush]; SEND metadata
//	primary: RECV scatters one descriptor image per backup into held
//	         slots on the per-backup QPs
//	         per backup QP: WAIT(recv CQ) → WRITE (manipulated) → READ0
//	         ack QP: WAIT(shared completion CQ, 2×backups) → WRITE_IMM → client
//
// The per-backup WRITE and flush completions all land on one shared CQ, so
// a single WAIT with count 2×backups acts as the all-acks barrier — no
// primary CPU involved.
//
// Fan-out width is limited to 4 backups by the RECV scatter's SGE budget
// (one descriptor image per backup per scatter entry).
type FanoutGroup struct {
	eng     *sim.Engine
	cfg     Config
	client  *cluster.Node
	primary *cluster.Node
	backups []*cluster.Node

	cliQP    *rdma.QP   // client → primary
	ackQP    *rdma.QP   // on the client, from the primary
	ackSrcQP *rdma.QP   // primary → client acks
	outQPs   []*rdma.QP // primary → each backup; share one send CQ
	inQP     *rdma.QP   // primary's receive side from the client
	sharedC  *rdma.CQ   // all backup-write completions

	cliStaging *rdma.MemoryRegion
	ackMR      *rdma.MemoryRegion

	issued  uint64
	posted  int
	pending []*op
	waiting []*op
	failed  error
}

// MaxFanout is the widest backup set a FanoutGroup supports.
const MaxFanout = rdma.MaxSGE

// NewFanout wires a fan-out group: client, primary, and up to MaxFanout
// backups.
func NewFanout(eng *sim.Engine, client, primary *cluster.Node, backups []*cluster.Node, cfg Config) *FanoutGroup {
	if len(backups) == 0 || len(backups) > MaxFanout {
		panic(fmt.Sprintf("core: fanout needs 1..%d backups", MaxFanout))
	}
	cfg.fill()
	g := &FanoutGroup{
		eng: eng, cfg: cfg,
		client: client, primary: primary, backups: backups,
	}
	depth := cfg.Depth

	cli, in := cluster.ConnectPair(client, primary, depth*4, depth)
	g.cliQP, g.inQP = cli, in
	ackSrc, ackDst := cluster.ConnectPair(primary, client, depth*2, depth)
	g.ackQP = ackDst

	// Per-backup QPs share one send CQ on the primary: the barrier WAIT
	// watches it.
	g.sharedC = primary.NIC.CreateCQ()
	g.sharedC.SetAutoDrain(true)
	for _, b := range backups {
		src := primary.NIC.CreateQP(g.sharedC, primary.NIC.CreateCQ(), depth*2, 1)
		dst := b.NIC.CreateQP(b.NIC.CreateCQ(), b.NIC.CreateCQ(), 1, depth)
		rdma.Connect(src, dst)
		src.RecvCQ().SetAutoDrain(true)
		dst.SendCQ().SetAutoDrain(true)
		dst.RecvCQ().SetAutoDrain(true)
		g.outQPs = append(g.outQPs, src)
	}
	in.RecvCQ().SetAutoDrain(true)
	in.SendCQ().SetAutoDrain(true)
	ackSrc.SendCQ().SetAutoDrain(true)
	ackSrc.RecvCQ().SetAutoDrain(true)

	g.cliStaging = client.NIC.RegisterRAM(depth*len(backups)*2*rdma.SlotSize, rdma.AccessLocalWrite)
	g.ackMR = client.NIC.RegisterRAM(depth*8, rdma.AccessLocalWrite|rdma.AccessRemoteWrite)

	g.cliQP.SendCQ().SetAutoDrain(true)
	g.cliQP.SendCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			g.fail(fmt.Errorf("%w: fanout client completion %s", ErrGroupFailed, e.Status))
		}
	})
	g.ackQP.RecvCQ().SetAutoDrain(true)
	g.ackQP.RecvCQ().SetCallback(func(e rdma.CQE) { g.onAck(e) })
	for k := 0; k < depth; k++ {
		if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
			panic(err)
		}
	}
	g.ackSrcQP = ackSrc
	g.prime()
	g.startReplenisher()
	return g
}

// fail aborts all pending work.
func (g *FanoutGroup) fail(reason error) {
	if g.failed != nil {
		return
	}
	g.failed = reason
	for _, o := range append(g.pending, g.waiting...) {
		if o.done != nil {
			o.done(Result{Seq: o.seq, Err: reason})
		}
	}
	g.pending, g.waiting = nil, nil
}

// Failed returns the failure reason, or nil.
func (g *FanoutGroup) Failed() error { return g.failed }

// GroupSize returns the replica count (primary + backups).
func (g *FanoutGroup) GroupSize() int { return 1 + len(g.backups) }

// prime posts the initial ring of op chains on the primary.
func (g *FanoutGroup) prime() {
	for g.canPost() {
		if err := g.postOpChain(g.posted); err != nil {
			panic(fmt.Sprintf("core: fanout prime: %v", err))
		}
		g.posted++
	}
}

func (g *FanoutGroup) canPost() bool {
	if g.inQP.RQTable().Posted() >= g.cfg.Depth {
		return false
	}
	for _, q := range g.outQPs {
		if q.SQTable().Slots()-q.SQTable().Posted() < 2 {
			return false
		}
	}
	return g.ackSrcQP.SQTable().Slots()-g.ackSrcQP.SQTable().Posted() >= 2
}

// postOpChain pre-posts the WQEs for op k (primary-side CPU, off the
// critical path).
func (g *FanoutGroup) postOpChain(k int) error {
	kk := uint64(k)
	// RECV: one scatter entry per backup, each covering that backup QP's
	// held WRITE slot (the flush READ0 slot after it stays fixed).
	var sges []rdma.SGE
	for _, q := range g.outQPs {
		sges = append(sges, rdma.SGE{
			LKey:   q.SQTable().MR().LKey(),
			Offset: uint64(q.SQTable().SlotOffset(2*k + 0)),
			Length: rdma.SlotSize,
		})
	}
	if _, err := g.inQP.PostRecv(rdma.WQE{WRID: kk, SGEs: sges}); err != nil {
		return err
	}
	held := rdma.WQE{Opcode: rdma.OpNop, WRID: kk}
	for i, q := range g.outQPs {
		// Slot 2k: manipulated WRITE. It must wait for the RECV, so it is
		// held AND the queue is gated by per-QP WAITs... but the WRITE slot
		// itself is the first of the pair; gate with ownership only: the
		// scatter both rewrites and activates it, and the RECV scatter
		// happens strictly after the client's data WRITE landed (same QP,
		// in order on the client→primary connection; the backup WRITE
		// gathers from the primary's store).
		if _, err := q.PostSend(held, rdma.HoldOwnership); err != nil {
			return err
		}
		// Slot 2k+1: fixed durability flush toward this backup.
		if _, err := q.PostSend(rdma.WQE{
			Opcode: rdma.OpRead, Signaled: true, WRID: kk,
			RKey: g.backups[i].Store.RKey(),
		}); err != nil {
			return err
		}
	}
	// Ack chain: barrier on 2 completions per backup (WRITE + flush), then
	// WRITE_IMM to the client.
	if _, err := g.ackSrcQP.PostSend(rdma.WQE{
		Opcode: rdma.OpWait, WaitCQ: g.sharedC.ID(), WaitCount: uint32(2 * len(g.backups)), WRID: kk,
	}); err != nil {
		return err
	}
	_, err := g.ackSrcQP.PostSend(rdma.WQE{
		Opcode: rdma.OpWriteImm, Signaled: true, WRID: kk, Imm: kk,
		RKey: g.ackMR.RKey(), RAddr: uint64((k % g.cfg.Depth) * 8),
	})
	return err
}

// startReplenisher keeps the primary's rings topped up (off the critical
// path, on the primary's host CPU).
func (g *FanoutGroup) startReplenisher() {
	var tick func()
	tick = func() {
		if g.failed != nil {
			return
		}
		n := 0
		for g.canPost() {
			if err := g.postOpChain(g.posted); err != nil {
				g.fail(fmt.Errorf("%w: fanout replenish: %v", ErrGroupFailed, err))
				return
			}
			g.posted++
			n++
		}
		if n > 0 {
			g.primary.Host.Submit("hl-fanout-replenish", sim.Duration(n)*g.cfg.ChainPostCost, nil)
			g.pump() // fresh credits may unblock queued issues
		}
		g.eng.Schedule(g.cfg.ReplenishEvery, tick)
	}
	g.eng.Schedule(g.cfg.ReplenishEvery, tick)
}

func (g *FanoutGroup) onAck(e rdma.CQE) {
	if e.Status != rdma.StatusSuccess {
		g.fail(fmt.Errorf("%w: fanout ack %s", ErrGroupFailed, e.Status))
		return
	}
	if len(g.pending) == 0 {
		g.fail(fmt.Errorf("%w: fanout spurious ack", ErrGroupFailed))
		return
	}
	o := g.pending[0]
	g.pending = g.pending[1:]
	if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
		g.fail(err)
		return
	}
	g.eng.Cancel(o.timeout) // no-op for ops without a timeout
	if o.done != nil {
		o.done(Result{
			Seq: o.seq, Issued: o.issued, Completed: g.eng.Now(),
			Latency: g.eng.Now().Sub(o.issued),
		})
	}
	g.pump()
}

func (g *FanoutGroup) pump() {
	for len(g.waiting) > 0 && len(g.pending) < g.cfg.MaxInflight &&
		g.issued < uint64(g.posted) {
		o := g.waiting[0]
		g.waiting = g.waiting[1:]
		g.send(o)
	}
}

// GWrite replicates [off, off+size) of the client's store to the primary
// and every backup; durable interleaves flushes so the ack implies
// durability everywhere.
func (g *FanoutGroup) GWrite(off, size int, durable bool, done func(Result)) error {
	if g.failed != nil {
		return g.failed
	}
	if off < 0 || size <= 0 || off+size > g.client.Store.Len() {
		return ErrBadArgs
	}
	g.waiting = append(g.waiting, &op{off: off, size: size, durable: durable, done: done})
	g.pump()
	return nil
}

func (g *FanoutGroup) send(o *op) {
	o.seq = g.issued
	g.issued++
	o.issued = g.eng.Now()
	g.pending = append(g.pending, o)
	k := int(o.seq)

	// Metadata: one WRITE image per backup, gathering from the primary's
	// store and targeting the backup's store at the same offset.
	slotBytes := len(g.backups) * rdma.SlotSize
	slotOff := (k % g.cfg.Depth) * 2 * rdma.SlotSize * len(g.backups)
	msg := make([]byte, 0, slotBytes)
	for _, b := range g.backups {
		img := (&rdma.WQE{
			Opcode: rdma.OpWrite, Signaled: true, HWOwned: true, WRID: o.seq,
			RKey: b.Store.RKey(), RAddr: uint64(o.off),
			SGEs: []rdma.SGE{{LKey: g.primary.Store.LKey(), Offset: uint64(o.off), Length: uint32(o.size)}},
		}).EncodeImage()
		msg = append(msg, img...)
	}
	g.cliStaging.Backing().WriteAt(slotOff, msg)

	post := func(w rdma.WQE) {
		if g.failed != nil {
			return
		}
		if _, err := g.cliQP.PostSend(w); err != nil {
			g.fail(fmt.Errorf("%w: fanout post: %v", ErrGroupFailed, err))
		}
	}
	post(rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true, WRID: o.seq,
		RKey: g.primary.Store.RKey(), RAddr: uint64(o.off),
		SGEs: []rdma.SGE{{LKey: g.client.Store.LKey(), Offset: uint64(o.off), Length: uint32(o.size)}},
	})
	if o.durable {
		post(rdma.WQE{Opcode: rdma.OpRead, Signaled: true, WRID: o.seq, RKey: g.primary.Store.RKey()})
	}
	post(rdma.WQE{Opcode: rdma.OpSend, Signaled: true, WRID: o.seq,
		SGEs: []rdma.SGE{{LKey: g.cliStaging.LKey(), Offset: uint64(slotOff), Length: uint32(len(msg))}}})

	if g.cfg.OpTimeout > 0 {
		seq := o.seq
		o.timeout = g.eng.Schedule(g.cfg.OpTimeout, func() {
			g.fail(fmt.Errorf("%w: fanout op %d timed out", ErrGroupFailed, seq))
		})
	}
}
