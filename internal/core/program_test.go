package core

import (
	"testing"

	"hyperloop/internal/sim"
)

func storeWord(t *testing.T, g *Group, replica, off int) uint64 {
	t.Helper()
	return le64(g.Replica(replica).StoreBytes(off, 8))
}

func TestGAtomicLoopFirstTryWins(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	done := false
	var res Result
	err := g.GAtomicLoop(LoopSpec{
		Off: 512, Kind: LoopCAS, Old: 0, New: 42,
		ExitWant: 0, Exec: 1 << 0, GuardReplica: 0, Budget: 8,
	}, func(r Result) { res = r; done = true })
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	if res.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1", res.Attempts)
	}
	if res.CASOld[0] != 0 {
		t.Fatalf("observed = %d, want 0", res.CASOld[0])
	}
	if w := storeWord(t, g, 0, 512); w != 42 {
		t.Fatalf("replica word = %d, want 42", w)
	}
}

func TestGAtomicLoopRetriesUntilReleased(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	// A foreign holder parks the word; release it after 40µs without any
	// NIC traffic (host store write), so every retry until then loses.
	var hold [8]byte
	putLE64(hold[:], 7)
	g.Replica(0).StoreWrite(512, hold[:])
	eng.Schedule(40*sim.Microsecond, func() {
		var zero [8]byte
		g.Replica(0).StoreWrite(512, zero[:])
	})

	done := false
	var res Result
	err := g.GAtomicLoop(LoopSpec{
		Off: 512, Kind: LoopCAS, Old: 0, New: 42,
		ExitWant: 0, Exec: 1 << 0, GuardReplica: 0, Budget: 63,
	}, func(r Result) { res = r; done = true })
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (word was held)", res.Attempts)
	}
	if w := storeWord(t, g, 0, 512); w != 42 {
		t.Fatalf("replica word = %d, want 42", w)
	}
}

func TestGAtomicLoopExhaustsBudget(t *testing.T) {
	eng, _, g := testGroup(t, 2, Config{Depth: 64})
	var hold [8]byte
	putLE64(hold[:], 7)
	g.Replica(0).StoreWrite(512, hold[:]) // never released

	done := false
	var res Result
	err := g.GAtomicLoop(LoopSpec{
		Off: 512, Kind: LoopCAS, Old: 0, New: 42,
		ExitWant: 0, Exec: 1 << 0, GuardReplica: 0, Budget: 3,
	}, func(r Result) { res = r; done = true })
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != ErrRetriesExhausted {
		t.Fatalf("err = %v, want ErrRetriesExhausted", res.Err)
	}
	if res.Attempts != 4 {
		t.Fatalf("attempts = %d, want 4 (budget 3 + first try)", res.Attempts)
	}
	if res.CASOld[0] != 7 {
		t.Fatalf("observed = %d, want holder value 7", res.CASOld[0])
	}
	if w := storeWord(t, g, 0, 512); w != 7 {
		t.Fatalf("replica word = %d, holder must survive", w)
	}
}

func TestGAtomicLoopMaskFAddGuarded(t *testing.T) {
	const (
		writerBit  = uint64(1) << 63
		readerMask = (uint64(1) << 48) - 1
	)
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	// Writer holds the word on replica 1; releases after 30µs. The guarded
	// fetch-and-add must not register the reader while the bit is up —
	// otherwise the final count would exceed 1 (phantom increments).
	var hold [8]byte
	putLE64(hold[:], writerBit|5<<48)
	g.Replica(1).StoreWrite(512, hold[:])
	eng.Schedule(30*sim.Microsecond, func() {
		var zero [8]byte
		g.Replica(1).StoreWrite(512, zero[:])
	})

	done := false
	var res Result
	err := g.GAtomicLoop(LoopSpec{
		Off: 512, Kind: LoopMaskFAdd,
		Add: 1, FieldMask: readerMask, GuardWant: 0, GuardMask: writerBit,
		ExitWant: 0, ExitMask: writerBit,
		Exec: 1 << 1, GuardReplica: 1, Budget: 63,
	}, func(r Result) { res = r; done = true })
	if err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	if res.Attempts < 2 {
		t.Fatalf("attempts = %d, want >= 2 (writer held)", res.Attempts)
	}
	if w := storeWord(t, g, 1, 512); w&readerMask != 1 {
		t.Fatalf("reader count = %d, want exactly 1 (word %#x)", w&readerMask, w)
	}
}

// TestGAtomicLoopTemplateAmortizesPostings is the chain-setup-amortization
// proof at the API level: after the template is posted once, issuing more
// loop ops adds zero client WQE postings — only field patches + doorbells.
func TestGAtomicLoopTemplateAmortizesPostings(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	ch := g.channels[chLoop]
	tailBefore := ch.cliQP.SQTable().Tail()

	for i := 0; i < 5; i++ {
		done := false
		err := g.GAtomicLoop(LoopSpec{
			Off: 512, Kind: LoopCAS, Old: uint64(i), New: uint64(i + 1),
			ExitWant: uint64(i), Exec: 1 << 0, GuardReplica: 0, Budget: 4,
		}, func(Result) { done = true })
		if err != nil {
			t.Fatal(err)
		}
		run(t, eng, g, &done)
	}
	if d := ch.cliQP.SQTable().Tail() - tailBefore; d != 0 {
		t.Fatalf("5 loop ops posted %d client WQEs, template must amortize to 0", d)
	}
	if w := storeWord(t, g, 0, 512); w != 5 {
		t.Fatalf("replica word = %d, want 5", w)
	}
}

// TestGAtomicLoopQueuedOps regression-tests the exit ordering of the
// CondRearm: the completion CQE re-enters the host synchronously, and the
// host immediately doorbells the next queued op's gate. If the program
// closed its gate AFTER delivering the CQE, that doorbell grant would be
// clobbered and the queued op stranded forever.
func TestGAtomicLoopQueuedOps(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	done := 0
	for i := 0; i < 3; i++ {
		err := g.GAtomicLoop(LoopSpec{
			Off: 512 + 8*i, Kind: LoopCAS, Old: 0, New: 42,
			ExitWant: 0, Exec: 1 << 0, GuardReplica: 0, Budget: 8,
		}, func(r Result) {
			if r.Err != nil {
				t.Errorf("op err: %v", r.Err)
			}
			done++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if !eng.RunUntil(func() bool { return done == 3 }, eng.Now().Add(sim.Second)) {
		t.Fatalf("queued loop ops stranded: done=%d of 3", done)
	}
	for i := 0; i < 3; i++ {
		if w := storeWord(t, g, 0, 512+8*i); w != 42 {
			t.Fatalf("word %d = %d, want 42", i, w)
		}
	}
}

func TestGWriteIfGuardMatch(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	payload := []byte("fenced-payload-bytes")
	cl.Client().StoreWrite(4096, payload)
	// Epoch word 3 on every replica; predicate wants 3 → writes apply.
	var epoch [8]byte
	putLE64(epoch[:], 3)
	for i := 0; i < 3; i++ {
		g.Replica(i).StoreWrite(256, epoch[:])
	}

	done := false
	var res Result
	if err := g.GWriteIf(4096, len(payload), 256, 3, 0, func(r Result) { res = r; done = true }); err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	for i := 0; i < 3; i++ {
		if res.CASOld[i] != 3 {
			t.Fatalf("replica %d observed %d, want 3", i, res.CASOld[i])
		}
		got := g.Replica(i).StoreBytes(4096, len(payload))
		if string(got) != string(payload) {
			t.Fatalf("replica %d payload = %q, want %q", i, got, payload)
		}
	}
}

func TestGWriteIfGuardMismatchSkipsWrite(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Depth: 64})
	payload := []byte("must-not-land")
	cl.Client().StoreWrite(4096, payload)
	// Replica 1's epoch moved ahead; its write must be suppressed while
	// the others apply.
	var epoch [8]byte
	putLE64(epoch[:], 4)
	g.Replica(1).StoreWrite(256, epoch[:])

	done := false
	var res Result
	if err := g.GWriteIf(4096, len(payload), 256, 0, 0, func(r Result) { res = r; done = true }); err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	if res.CASOld[0] != 0 || res.CASOld[1] != 4 || res.CASOld[2] != 0 {
		t.Fatalf("observed map = %v, want [0 4 0]", res.CASOld)
	}
	for i := 0; i < 3; i++ {
		got := string(g.Replica(i).StoreBytes(4096, len(payload)))
		if i == 1 && got == string(payload) {
			t.Fatal("replica 1 write applied despite guard mismatch")
		}
		if i != 1 && got != string(payload) {
			t.Fatalf("replica %d write suppressed despite guard match", i)
		}
	}
}

func TestGWriteIfMaskedGuard(t *testing.T) {
	eng, cl, g := testGroup(t, 2, Config{Depth: 64})
	payload := []byte("masked")
	cl.Client().StoreWrite(4096, payload)
	// Guard word has noise in the low bits; only the high bit matters.
	var word [8]byte
	putLE64(word[:], 1<<63|0xabc)
	for i := 0; i < 2; i++ {
		g.Replica(i).StoreWrite(256, word[:])
	}

	done := false
	var res Result
	if err := g.GWriteIf(4096, len(payload), 256, 1<<63, 1<<63, func(r Result) { res = r; done = true }); err != nil {
		t.Fatal(err)
	}
	run(t, eng, g, &done)
	if res.Err != nil {
		t.Fatalf("result err: %v", res.Err)
	}
	for i := 0; i < 2; i++ {
		if got := string(g.Replica(i).StoreBytes(4096, len(payload))); got != string(payload) {
			t.Fatalf("replica %d masked-guard write missing", i)
		}
	}
}

func TestGAtomicLoopValidation(t *testing.T) {
	_, _, g := testGroup(t, 2, Config{Depth: 64})
	cases := []LoopSpec{
		{Off: -8, Kind: LoopCAS, Exec: 1, GuardReplica: 0},
		{Off: 0, Kind: LoopKind(9), Exec: 1, GuardReplica: 0},
		{Off: 0, Kind: LoopCAS, Exec: 1, GuardReplica: 5},
		{Off: 0, Kind: LoopCAS, Exec: 1 << 1, GuardReplica: 0}, // guard outside exec
		{Off: 0, Kind: LoopCAS, Exec: 1, GuardReplica: 0, Budget: -1},
	}
	for i, spec := range cases {
		if err := g.GAtomicLoop(spec, nil); err != ErrBadArgs {
			t.Fatalf("case %d: err = %v, want ErrBadArgs", i, err)
		}
	}
	if err := g.GWriteIf(0, 1<<20, 0, 0, 0, nil); err != ErrTooLarge {
		t.Fatalf("oversized predicated write: err = %v, want ErrTooLarge", err)
	}
}
