// Package core implements HyperLoop's contribution: group-based NIC-offload
// primitives for replicated NVM transactions (SIGCOMM 2018, §3-§4).
//
// A Group arranges a client (transaction coordinator) and a chain of
// replicas. For each primitive — gWRITE, gCAS, gMEMCPY, gFLUSH — every
// replica pre-posts a ring of work-request chains of the form
//
//	upstream RQ:   RECV  (scatters incoming metadata into the WQE slots
//	                      below and into a staging region)
//	downstream SQ: WAIT  (on the upstream recv CQ)
//	               op(s) (host-owned placeholders, rewritten and activated
//	                      by the RECV scatter — remote WQE manipulation)
//	               SEND  (forwards the remaining metadata down the chain)
//
// so that once the client issues an operation, the replicas' NICs detect,
// execute, and forward it entirely by themselves: no replica CPU cycle is
// on the critical path. The tail NIC acknowledges to the client with a
// WRITE_WITH_IMM. Durability interleaves 0-byte READs (gFLUSH) that drain
// the downstream NVM's NIC cache before the chain advances.
//
// Replica CPUs participate only off the critical path: a periodic
// replenisher tops up consumed rings in batches (§5, "replicas need to wake
// up periodically off the critical path").
package core

import (
	"errors"
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/sim"
)

// Errors surfaced by the group API.
var (
	ErrGroupFailed = errors.New("hyperloop: group failed")
	ErrBadArgs     = errors.New("hyperloop: bad primitive arguments")
	ErrTooLarge    = errors.New("hyperloop: transfer exceeds store window")
	// ErrRetriesExhausted reports that a gATOMIC_LOOP program burned its
	// whole retry budget without reaching the exit condition. The group is
	// healthy; the result map carries the last observed values.
	ErrRetriesExhausted = errors.New("hyperloop: atomic loop retries exhausted")
)

// ExecuteMap selects which replicas execute a gCAS (bit i = replica i,
// 0-indexed from the head of the chain). Excluded replicas see a NOP; their
// result-map entry keeps the sentinel value. This is what lets a client
// undo a partially-acquired group lock (§4.2).
type ExecuteMap uint64

// AllReplicas builds an ExecuteMap covering replicas [0, n).
func AllReplicas(n int) ExecuteMap { return ExecuteMap(1<<uint(n)) - 1 }

// Has reports whether replica i is selected.
func (m ExecuteMap) Has(i int) bool { return m&(1<<uint(i)) != 0 }

// CASNotExecuted is the result-map sentinel for replicas skipped by the
// execute map.
const CASNotExecuted = ^uint64(0)

// Result reports the outcome of a group primitive.
type Result struct {
	Seq       uint64
	Issued    sim.Time
	Completed sim.Time
	Latency   sim.Duration
	// CASOld holds, for gCAS and gATOMIC_LOOP, each replica's original value
	// at the target offset, and for gWRITE_IF each replica's observed guard
	// word (CASNotExecuted where the execute map skipped the replica).
	CASOld []uint64
	// Attempts is, for gATOMIC_LOOP, the number of chain traversals the
	// NIC-resident program executed before exiting (1 = first try won).
	Attempts int
	Err      error
}

// Config tunes a Group. Zero values take defaults.
type Config struct {
	// Depth is the number of operations each primitive ring accommodates
	// (default 1024). Deep rings ride out replenisher scheduling delays on
	// busy hosts.
	Depth int
	// MaxInflight caps client-issued, un-acked operations per primitive
	// (default Depth/4). Beyond it, issues queue client-side.
	MaxInflight int
	// ReplenishEvery is the period of the replica-side ring replenisher
	// (default 100µs). It runs on the replica host CPU, off the critical
	// path.
	ReplenishEvery sim.Duration
	// ChainPostCost is the CPU demand to re-post one op chain (default
	// 150ns) — WQE encoding plus a doorbell, amortized by batching.
	ChainPostCost sim.Duration
	// OpTimeout fails the group if an operation sees no ack in time
	// (0 = disabled). The chain manager uses this to trigger recovery.
	OpTimeout sim.Duration
	// FusionDepth is the most adjacent queued ops of one primitive the
	// client fuses into a single posting batch: all their client-side WQEs
	// are written back to back and armed with one doorbell
	// (rdma.PostSendBatch), so any configured NIC DoorbellCost is paid once
	// per batch instead of once per op. 1 (the default) reproduces the
	// legacy one-op-per-doorbell issue path exactly.
	FusionDepth int
	// LoopTick is the timer-CQ period driving NIC-side capped backoff in
	// gATOMIC_LOOP programs (default 1µs). A retry waits for a power-of-two
	// number of ticks, doubling per attempt up to loopBackoffCap.
	LoopTick sim.Duration
	// PredPayloadCap bounds the payload a gWRITE_IF carries through the
	// metadata chain (default 256 bytes). Predicated writes ship their data
	// inside the chain message so the guard and the write execute on the
	// replica NIC with no client round trip in between.
	PredPayloadCap int
}

func (c *Config) fill() {
	if c.Depth <= 0 {
		c.Depth = 1024
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = c.Depth / 4
	}
	if c.MaxInflight > c.Depth/2 {
		c.MaxInflight = c.Depth / 2
	}
	if c.ReplenishEvery <= 0 {
		c.ReplenishEvery = 100 * sim.Microsecond
	}
	if c.ChainPostCost <= 0 {
		c.ChainPostCost = 150
	}
	if c.FusionDepth <= 0 {
		c.FusionDepth = 1
	}
	if c.FusionDepth > c.MaxInflight {
		c.FusionDepth = c.MaxInflight
	}
	if c.LoopTick <= 0 {
		c.LoopTick = sim.Microsecond
	}
	if c.PredPayloadCap <= 0 {
		c.PredPayloadCap = 256
	}
}

// Group is a HyperLoop replication group: node 0 of the cluster is the
// client/coordinator, nodes 1..n form the chain.
type Group struct {
	eng      *sim.Engine
	cfg      Config
	client   *cluster.Node
	replicas []*cluster.Node

	channels map[chanKind]*channel
	failed   error
	onError  func(error)
	closed   bool

	opsIssued    uint64
	opsCompleted uint64
	fusedBatches uint64 // multi-op postings issued under FusionDepth > 1
	fusedOps     uint64 // ops carried inside those postings
}

// New wires a HyperLoop group over an existing cluster (node 0 = client).
// The cluster must have at least two nodes.
func New(cl *cluster.Cluster, cfg Config) *Group {
	return NewWithNodes(cl.Eng, cl.Client(), cl.Replicas(), cfg)
}

// NewWithNodes wires a group over an explicit topology: client plus an
// ordered replica chain. Nodes may be shared with other groups — that is
// exactly the multi-tenant co-location the paper studies.
func NewWithNodes(eng *sim.Engine, client *cluster.Node, replicas []*cluster.Node, cfg Config) *Group {
	if client == nil || len(replicas) < 1 {
		panic("core: group needs a client and at least one replica")
	}
	cfg.fill()
	g := &Group{
		eng:      eng,
		cfg:      cfg,
		client:   client,
		replicas: replicas,
		channels: make(map[chanKind]*channel),
	}
	kinds := []chanKind{chWrite, chCAS, chMemcpy, chFlush, chLoop, chWriteIf}
	for _, k := range kinds {
		g.channels[k] = g.buildChannel(k)
	}
	for _, k := range kinds {
		g.channels[k].prime()
	}
	g.startReplenishers()
	return g
}

// GroupSize returns the number of replicas.
func (g *Group) GroupSize() int { return len(g.replicas) }

// Client returns the coordinator node.
func (g *Group) Client() *cluster.Node { return g.client }

// Replica returns replica i (0-indexed from the head).
func (g *Group) Replica(i int) *cluster.Node { return g.replicas[i] }

// OpsCompleted returns the number of acknowledged primitives.
func (g *Group) OpsCompleted() uint64 { return g.opsCompleted }

// FusionStats reports multi-op WQE fusion activity: batches is the number
// of postings that carried more than one op, ops the total ops inside them.
// Both stay zero at FusionDepth 1 or with an always-idle issue queue.
func (g *Group) FusionStats() (batches, ops uint64) { return g.fusedBatches, g.fusedOps }

// SetErrorHandler installs a callback invoked once if the group fails.
func (g *Group) SetErrorHandler(fn func(error)) { g.onError = fn }

// Failed returns the failure reason, or nil.
func (g *Group) Failed() error { return g.failed }

// Close stops the replenishers. In-flight operations are abandoned.
func (g *Group) Close() { g.closed = true }

// fail moves the group to the failed state and flushes pending operations
// with errors.
func (g *Group) fail(reason error) {
	if g.failed != nil {
		return
	}
	g.failed = reason
	for _, ch := range g.channels {
		ch.failAll(reason)
	}
	if g.onError != nil {
		g.onError(reason)
	}
}

// GWrite replicates size bytes at offset off of the client's store to the
// same offset on every replica (gWRITE, Table 1). With durable set, gFLUSH
// is interleaved at every hop so the ack implies durability (§4.2). The
// data must already be present in the client's store window.
func (g *Group) GWrite(off, size int, durable bool, done func(Result)) error {
	if off < 0 || size <= 0 {
		return ErrBadArgs
	}
	if off+size > g.client.Store.Len() {
		return ErrTooLarge
	}
	return g.channels[chWrite].submit(&op{
		off: off, size: size, durable: durable, done: done,
	})
}

// GCAS performs a compare-and-swap of the 8-byte word at offset off on every
// replica selected by exec, returning each replica's original value via the
// result map (gCAS, Table 1).
func (g *Group) GCAS(off int, old, new uint64, exec ExecuteMap, done func(Result)) error {
	if off < 0 || off+8 > g.client.Store.Len() {
		return ErrBadArgs
	}
	return g.channels[chCAS].submit(&op{
		off: off, casOld: old, casNew: new, exec: exec, done: done,
	})
}

// GMemcpy copies size bytes from srcOff to dstOff within every replica's
// store (gMEMCPY, Table 1) — the NIC-local copy that commits logged
// transactions to the data region without replica CPUs. With durable set,
// each replica's NVM is flushed after the copy.
func (g *Group) GMemcpy(dstOff, srcOff, size int, durable bool, done func(Result)) error {
	if srcOff < 0 || dstOff < 0 || size <= 0 {
		return ErrBadArgs
	}
	limit := g.client.Store.Len()
	if srcOff+size > limit || dstOff+size > limit {
		return ErrTooLarge
	}
	return g.channels[chMemcpy].submit(&op{
		off: dstOff, src: srcOff, size: size, durable: durable, done: done,
	})
}

// GFlush drains the NIC cache into NVM on every replica (standalone gFLUSH,
// Table 1): the ack implies all previously replicated data is durable.
func (g *Group) GFlush(done func(Result)) error {
	return g.channels[chFlush].submit(&op{done: done})
}

// GAtomicLoop runs a bounded atomic retry loop as a NIC-resident WQE
// program (gATOMIC_LOOP): the client's pre-posted template re-issues the
// chain until the guard replica's observed value satisfies the exit
// condition or the budget runs out, with capped exponential backoff served
// by a timer CQ — no host CPU on any retry. done receives Err == nil on
// exit-condition success, ErrRetriesExhausted otherwise; either way CASOld
// carries the final attempt's observed values and Attempts the traversal
// count.
func (g *Group) GAtomicLoop(spec LoopSpec, done func(Result)) error {
	if spec.Off < 0 || spec.Off+8 > g.client.Store.Len() {
		return ErrBadArgs
	}
	if spec.Kind != LoopCAS && spec.Kind != LoopMaskFAdd {
		return ErrBadArgs
	}
	if spec.GuardReplica < 0 || spec.GuardReplica >= len(g.replicas) ||
		!spec.Exec.Has(spec.GuardReplica) {
		return ErrBadArgs // the exit test reads the guard replica's result word
	}
	if spec.Budget < 0 {
		return ErrBadArgs
	}
	sp := spec
	return g.channels[chLoop].submit(&op{off: spec.Off, exec: spec.Exec, loop: &sp, done: done})
}

// GWriteIf replicates a predicated write (gWRITE_IF): each replica's NIC
// compares its local 8-byte word at guardOff (under mask; 0 = full word)
// against want and applies the write only on match — an epoch-fence check
// with no host round trip. The payload travels inside the chain metadata
// (bounded by PredPayloadCap). Err is nil whether or not guards matched;
// CASOld carries each replica's observed guard word for the caller to
// check.
func (g *Group) GWriteIf(off, size, guardOff int, want, mask uint64, done func(Result)) error {
	if off < 0 || size <= 0 || guardOff < 0 {
		return ErrBadArgs
	}
	if off+size > g.client.Store.Len() || guardOff+8 > g.client.Store.Len() {
		return ErrTooLarge
	}
	if size > g.cfg.PredPayloadCap {
		return ErrTooLarge
	}
	return g.channels[chWriteIf].submit(&op{
		off: off, size: size, guardOff: guardOff, guardWant: want, guardMask: mask, done: done,
	})
}

// String describes the group.
func (g *Group) String() string {
	return fmt.Sprintf("hyperloop.Group{replicas=%d depth=%d}", len(g.replicas), g.cfg.Depth)
}

// startReplenishers schedules each replica's periodic ring top-up on its
// host CPU (off the critical path).
func (g *Group) startReplenishers() {
	for ri := range g.replicas {
		ri := ri
		var tick func()
		tick = func() {
			if g.closed || g.failed != nil {
				return
			}
			need := 0
			for _, ch := range g.channels {
				need += ch.replenishable(ri)
			}
			if need == 0 {
				g.eng.Schedule(g.cfg.ReplenishEvery, tick)
				return
			}
			demand := sim.Duration(need) * g.cfg.ChainPostCost
			g.replicas[ri].Host.Submit("hl-replenish", demand, func() {
				if g.closed || g.failed != nil {
					return
				}
				for _, ch := range g.channels {
					ch.replenish(ri)
				}
				g.eng.Schedule(g.cfg.ReplenishEvery, tick)
			})
		}
		g.eng.Schedule(g.cfg.ReplenishEvery, tick)
	}
}
