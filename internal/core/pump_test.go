package core

import (
	"testing"

	"hyperloop/internal/sim"
)

// TestPumpRetryCollision pins down the credit-starved pump's re-arm
// semantics (the pumpArmed retry timer): a retry firing in the same
// virtual instant as a completion-driven pump — or any other spurious
// wake-up — must neither double-issue an op nor strand the channel.
//
// The schedule below forces the race deterministically: loop ops reserve
// their whole retry budget up front, so with Depth=64 and Budget=63 only
// one op fits the credit window at a time and every subsequent submit
// arms the retry timer. Extra pump() calls are then injected at the
// exact instants the timer fires (10µs grid), colliding with the
// completion-driven pumps inside the engine's same-timestamp event order.
func TestPumpRetryCollision(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 64})
	ch := g.channels[chLoop]

	const ops = 4
	perOp := make([]int, ops)
	done := 0
	for i := 0; i < ops; i++ {
		i := i
		err := g.GAtomicLoop(LoopSpec{
			Off: 512 + 8*i, Kind: LoopCAS, Old: 0, New: uint64(i + 1),
			ExitWant: 0, Exec: 1 << 0, GuardReplica: 0, Budget: 63,
		}, func(r Result) {
			if r.Err != nil {
				t.Errorf("op %d: %v", i, r.Err)
			}
			perOp[i]++
			done++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	// Spurious wake-ups on the retry timer's own grid: if pump were not
	// idempotent under collision, these would double-issue the queued op
	// whose timer is about to fire at the same instant.
	for k := 1; k <= 20; k++ {
		eng.Schedule(sim.Duration(k)*10*sim.Microsecond, ch.pump)
	}

	if !eng.RunUntil(func() bool { return done == ops }, eng.Now().Add(sim.Second)) {
		t.Fatalf("channel stranded: done=%d of %d (waiting=%d pending=%d armed=%v)",
			done, ops, len(ch.waiting), len(ch.pending), ch.pumpArmed)
	}
	for i, n := range perOp {
		if n != 1 {
			t.Fatalf("op %d completed %d times", i, n)
		}
	}
	if ch.issued != ops {
		t.Fatalf("issued = %d, want %d (double-issue?)", ch.issued, ops)
	}
	// Let any stale retry timers fire into the idle channel.
	eng.RunFor(500 * sim.Microsecond)
	if len(ch.waiting) != 0 || len(ch.pending) != 0 {
		t.Fatalf("channel not quiescent: waiting=%d pending=%d", len(ch.waiting), len(ch.pending))
	}
	for i := 0; i < ops; i++ {
		if w := storeWord(t, g, 0, 512+8*i); w != uint64(i+1) {
			t.Fatalf("word %d = %d", i, w)
		}
	}
}

// TestPumpRetrySurvivesStarvationWave drives the legacy (non-loop) pump
// through the same collision: more gCAS ops than the credit window admits,
// with spurious pumps injected on the retry grid. Ops must complete
// exactly once each, in order, with the channel quiescent afterwards.
func TestPumpRetrySurvivesStarvationWave(t *testing.T) {
	eng, _, g := testGroup(t, 3, Config{Depth: 8, MaxInflight: 4})
	ch := g.channels[chCAS]

	const ops = 32
	perOp := make([]int, ops)
	done := 0
	for i := 0; i < ops; i++ {
		i := i
		err := g.GCAS(512, uint64(i), uint64(i+1), AllReplicas(3), func(r Result) {
			if r.Err != nil {
				t.Errorf("op %d: %v", i, r.Err)
			}
			perOp[i]++
			done++
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	for k := 1; k <= 50; k++ {
		eng.Schedule(sim.Duration(k)*10*sim.Microsecond, ch.pump)
	}
	if !eng.RunUntil(func() bool { return done == ops }, eng.Now().Add(sim.Second)) {
		t.Fatalf("channel stranded: done=%d of %d", done, ops)
	}
	for i, n := range perOp {
		if n != 1 {
			t.Fatalf("op %d completed %d times", i, n)
		}
	}
	if w := storeWord(t, g, 0, 512); w != ops {
		t.Fatalf("final word = %d, want %d (CAS chain broken)", w, ops)
	}
}
