package core

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/fabric"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// fusionGroup builds a quiet 3-replica cluster with the given group config
// and NIC doorbell cost.
func fusionGroup(t *testing.T, cfg Config, dbCost sim.Duration) (*sim.Engine, *cluster.Cluster, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     4,
		StoreSize: 1 << 20,
		Fabric:    fabric.Config{JitterFrac: -1},
		NIC:       rdma.Config{DoorbellCost: dbCost},
	})
	g := New(cl, cfg)
	return eng, cl, g
}

// burst issues n gWRITEs back to back in one host event and returns the
// virtual time when the last ack lands.
func burst(t *testing.T, eng *sim.Engine, cl *cluster.Cluster, g *Group, n int) sim.Time {
	t.Helper()
	payload := bytes.Repeat([]byte("f"), 64)
	cl.Client().StoreWrite(0, payload)
	done := 0
	var last sim.Time
	eng.Schedule(0, func() {
		for i := 0; i < n; i++ {
			if err := g.GWrite(0, len(payload), false, func(r Result) {
				if r.Err != nil {
					t.Errorf("gWRITE: %v", r.Err)
				}
				done++
				last = eng.Now()
			}); err != nil {
				t.Fatalf("submit: %v", err)
			}
		}
	})
	ok := eng.RunUntil(func() bool { return done == n || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if g.Failed() != nil {
		t.Fatalf("group failed: %v", g.Failed())
	}
	if !ok {
		t.Fatalf("burst stalled at %d/%d", done, n)
	}
	return last
}

// FusionDepth 1 (the default) must reproduce legacy timing exactly even
// with a doorbell cost configured — the depth axis starts at the old path.
func TestFusionDepthOneMatchesLegacy(t *testing.T) {
	engA, clA, gA := fusionGroup(t, Config{Depth: 64}, 0)
	tA := burst(t, engA, clA, gA, 16)
	engB, clB, gB := fusionGroup(t, Config{Depth: 64, FusionDepth: 1}, 0)
	tB := burst(t, engB, clB, gB, 16)
	if tA != tB {
		t.Fatalf("explicit FusionDepth=1 end %v != default end %v", tB, tA)
	}
	b, o := gB.FusionStats()
	if b != 0 || o != 0 {
		t.Fatalf("fusion stats at depth 1 = (%d, %d), want (0, 0)", b, o)
	}
}

// With a doorbell cost, fusing a backlogged burst must finish strictly
// sooner than unfused issue, and the fusion counters must account for every
// op beyond the unfusable first (issued before a backlog exists).
func TestFusionAmortizesDoorbells(t *testing.T) {
	const cost = 400 * sim.Nanosecond
	const n = 32
	// MaxInflight 4 so a backlog forms and the pump sees fusable runs.
	engA, clA, gA := fusionGroup(t, Config{Depth: 64, MaxInflight: 4}, cost)
	tUnfused := burst(t, engA, clA, gA, n)
	dbA := clA.Client().NIC.Counters().Doorbells

	engB, clB, gB := fusionGroup(t, Config{Depth: 64, MaxInflight: 4, FusionDepth: 4}, cost)
	tFused := burst(t, engB, clB, gB, n)
	dbB := clB.Client().NIC.Counters().Doorbells

	if tFused >= tUnfused {
		t.Fatalf("fused burst end %v not sooner than unfused %v", tFused, tUnfused)
	}
	if dbB >= dbA {
		t.Fatalf("fused client doorbells %d not fewer than unfused %d", dbB, dbA)
	}
	batches, ops := gB.FusionStats()
	if batches == 0 || ops <= batches {
		t.Fatalf("fusion stats = (%d, %d), want multi-op batches", batches, ops)
	}
	bA, oA := gA.FusionStats()
	if bA != 0 || oA != 0 {
		t.Fatalf("unfused group recorded fusion (%d, %d)", bA, oA)
	}
}

// Fused gWRITEs must preserve replication semantics: every replica ends
// with the final payload and acks stay in issue order (checked by onAck).
func TestFusionPreservesReplication(t *testing.T) {
	eng, cl, g := fusionGroup(t, Config{Depth: 64, MaxInflight: 4, FusionDepth: 8}, 200)
	payloads := [][]byte{
		bytes.Repeat([]byte("a"), 128),
		bytes.Repeat([]byte("b"), 128),
		bytes.Repeat([]byte("c"), 128),
		bytes.Repeat([]byte("d"), 128),
	}
	done := 0
	eng.Schedule(0, func() {
		for i, p := range payloads {
			off := i * 1024
			cl.Client().StoreWrite(off, p)
			for j := 0; j < 4; j++ { // re-write each slot repeatedly
				if err := g.GWrite(off, len(p), true, func(r Result) {
					if r.Err != nil {
						t.Errorf("gWRITE: %v", r.Err)
					}
					done++
				}); err != nil {
					t.Fatalf("submit: %v", err)
				}
			}
		}
	})
	want := 4 * len(payloads)
	ok := eng.RunUntil(func() bool { return done == want || g.Failed() != nil }, eng.Now().Add(sim.Second))
	if g.Failed() != nil || !ok {
		t.Fatalf("run: failed=%v done=%d/%d", g.Failed(), done, want)
	}
	for i, p := range payloads {
		for r := 0; r < g.GroupSize(); r++ {
			if got := g.Replica(r).StoreBytes(i*1024, len(p)); !bytes.Equal(got, p) {
				t.Fatalf("replica %d slot %d = %q", r, i, got[:8])
			}
		}
	}
}
