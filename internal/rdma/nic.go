package rdma

import (
	"encoding/binary"
	"fmt"

	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// packetKind discriminates NIC-to-NIC messages.
type packetKind uint8

const (
	pkSend packetKind = iota + 1
	pkWrite
	pkWriteImm
	pkRead
	pkCAS
	pkMaskFAdd // masked fetch-and-add, optionally guarded
	pkAck      // completes SEND/WRITE/WRITE_IMM at the requester
	pkReadResp // carries READ data back
	pkCASResp  // carries the original value back (CAS and MaskFAdd)
)

// packet is the simulation's wire unit. Payloads travel by reference; the
// fabric charges serialization time for the declared size.
type packet struct {
	kind    packetKind
	srcQPN  uint32
	dstQPN  uint32
	rkey    uint32
	raddr   uint64
	data    []byte
	imm     uint64
	compare uint64
	swap    uint64
	gmask   uint64 // pkMaskFAdd guard mask (0 = unconditional)
	readLen int
	reqID   uint64
	status  Status
}

// TraceEvent is one NIC-level action, emitted to an attached Tracer. The
// stream narrates exactly what the hardware does per operation — which is
// the paper's §4 argument made visible.
type TraceEvent struct {
	At   sim.Time
	Node fabric.NodeID
	Kind string // "exec", "wait", "stall", "rx", "cqe", "prog"
	QPN  uint32
	Op   Opcode
	WRID uint64
	Info string
}

// Tracer receives trace events. Implementations must be cheap; tracing is
// disabled when no tracer is attached.
type Tracer func(TraceEvent)

// Counters aggregates NIC activity for the evaluation's CPU/offload
// accounting.
type Counters struct {
	WQEsExecuted uint64
	SendsRx      uint64
	WritesRx     uint64
	ReadsRx      uint64
	AtomicsRx    uint64
	CacheFlushes uint64
	RNRs         uint64
	AccessFaults uint64
	// Doorbells counts explicit ring operations (PostSend, PostSendBatch,
	// Doorbell) — the MMIO writes a batching client amortizes away.
	Doorbells uint64
	// ProgBranches counts OpGuard skips and OpCondRearm branches taken —
	// control transfers NIC-resident WQE programs perform without any host
	// involvement.
	ProgBranches uint64
	// TimerTicks counts timer-CQ completions delivered (NIC-side backoff).
	TimerTicks uint64
}

// NIC is one RDMA-capable network adapter: it owns memory registrations,
// queue pairs, and completion queues, executes work queues autonomously,
// and responds to inbound verbs — all without any cpusched involvement,
// which is precisely the property HyperLoop exploits.
type NIC struct {
	eng  *sim.Engine
	cfg  Config
	net  *fabric.Network
	node fabric.NodeID

	mrsByLKey map[uint32]*MemoryRegion
	mrsByRKey map[uint32]*MemoryRegion
	qps       map[uint32]*QP
	cqs       map[uint32]*CQ
	nextKey   uint32
	nextQPN   uint32
	nextCQID  uint32

	counters Counters
	tracer   Tracer

	// Fault-injection state: stallUntil freezes pipeline starts until the
	// given instant; slowdown (>1) scales per-unit processing costs.
	stallUntil sim.Time
	slowdown   float64
}

// StallFor freezes the NIC's processing pipelines for d from now: work
// already in flight completes, but no queued WQE initiates and no inbound
// packet begins Rx processing until the stall window passes. Models a
// firmware hiccup or PFC pause storm; repeated calls extend the window
// monotonically.
func (n *NIC) StallFor(d sim.Duration) {
	until := n.eng.Now().Add(d)
	if until > n.stallUntil {
		n.stallUntil = until
	}
}

// SetSlowdown scales every subsequent processing cost (WQE initiation, Rx
// processing, DMA) by factor. Values <= 1 restore full speed. Models a
// degraded NIC (thermal throttling, cache thrash) for fault scenarios.
func (n *NIC) SetSlowdown(factor float64) {
	if factor <= 1 {
		factor = 0
	}
	n.slowdown = factor
}

// scaledCost applies the configured slowdown to a processing cost.
func (n *NIC) scaledCost(c sim.Duration) sim.Duration {
	if n.slowdown > 1 {
		c = sim.Duration(float64(c) * n.slowdown)
	}
	return c
}

// stallStart clamps a pipeline start time to the end of any stall window.
func (n *NIC) stallStart(t sim.Time) sim.Time {
	if n.stallUntil > t {
		return n.stallUntil
	}
	return t
}

// SetTracer attaches fn to receive NIC-level trace events (nil detaches).
func (n *NIC) SetTracer(fn Tracer) { n.tracer = fn }

func (n *NIC) trace(kind string, qpn uint32, op Opcode, wrid uint64, info string) {
	if n.tracer != nil {
		n.tracer(TraceEvent{At: n.eng.Now(), Node: n.node, Kind: kind, QPN: qpn, Op: op, WRID: wrid, Info: info})
	}
}

// NewNIC attaches a NIC to the network.
func NewNIC(eng *sim.Engine, net *fabric.Network, cfg Config) *NIC {
	cfg.fill()
	n := &NIC{
		eng:       eng,
		cfg:       cfg,
		net:       net,
		mrsByLKey: make(map[uint32]*MemoryRegion),
		mrsByRKey: make(map[uint32]*MemoryRegion),
		qps:       make(map[uint32]*QP),
		cqs:       make(map[uint32]*CQ),
	}
	n.node = net.Attach(n.handleMessage)
	return n
}

// Node returns the NIC's fabric address.
func (n *NIC) Node() fabric.NodeID { return n.node }

// Engine returns the simulation engine driving this NIC.
func (n *NIC) Engine() *sim.Engine { return n.eng }

// Counters returns a snapshot of activity counters.
func (n *NIC) Counters() Counters { return n.counters }

// RegisterMemory registers backing with the given access rights and returns
// the memory region.
func (n *NIC) RegisterMemory(backing Backing, access Access) *MemoryRegion {
	n.nextKey++
	mr := &MemoryRegion{
		lkey:    n.nextKey,
		rkey:    n.nextKey | 0x8000_0000,
		access:  access,
		backing: backing,
	}
	n.mrsByLKey[mr.lkey] = mr
	n.mrsByRKey[mr.rkey] = mr
	return mr
}

// RegisterRAM is shorthand for registering a fresh volatile buffer.
func (n *NIC) RegisterRAM(size int, access Access) *MemoryRegion {
	return n.RegisterMemory(NewRAMBacking(size), access)
}

// CreateCQ allocates a completion queue.
func (n *NIC) CreateCQ() *CQ {
	n.nextCQID++
	cq := &CQ{id: n.nextCQID, nic: n}
	n.cqs[cq.id] = cq
	return cq
}

// LookupCQ resolves a CQ id (used by WAIT execution).
func (n *NIC) LookupCQ(id uint32) *CQ { return n.cqs[id] }

// CreateTimerCQ allocates a completion queue that self-completes every
// period of virtual time while WAITed on, with ticks aligned to the
// absolute-time grid (tick k at k*period). WQE programs WAIT on it for
// NIC-side capped backoff; idle timers schedule nothing.
func (n *NIC) CreateTimerCQ(period sim.Duration) *CQ {
	if period <= 0 {
		panic("rdma: timer CQ needs a positive period")
	}
	cq := n.CreateCQ()
	cq.timerPeriod = period
	cq.autoDrain = true
	return cq
}

// CreateQP allocates a queue pair with sqSlots send and rqSlots receive
// slots. The queues live in registered memory; writes into the send table
// re-kick the queue so remotely-granted ownership takes effect.
func (n *NIC) CreateQP(sendCQ, recvCQ *CQ, sqSlots, rqSlots int) *QP {
	if sqSlots <= 0 {
		sqSlots = n.cfg.MaxInlineWQ
	}
	if rqSlots <= 0 {
		rqSlots = n.cfg.MaxInlineWQ
	}
	n.nextQPN++
	qp := &QP{
		qpn:          n.nextQPN,
		nic:          n,
		sendCQ:       sendCQ,
		recvCQ:       recvCQ,
		waitConsumed: make(map[uint32]uint64),
		pending:      make(map[uint64]pendingReq),
	}
	sqMR := n.RegisterRAM(sqSlots*SlotSize, AccessLocalWrite|AccessRemoteWrite)
	rqMR := n.RegisterRAM(rqSlots*SlotSize, AccessLocalWrite|AccessRemoteWrite)
	qp.sq = newWQETable(sqMR, sqSlots)
	qp.rq = newWQETable(rqMR, rqSlots)
	// Any write landing in the send table may have granted ownership of a
	// stalled descriptor: re-evaluate the queue.
	sqMR.onWrite = func(off, len int) { n.kick(qp) }
	n.qps[qp.qpn] = qp
	return qp
}

// Connect wires two QPs (reliable connected semantics). Both ends must
// belong to NICs on the same fabric.
func Connect(a, b *QP) {
	a.peerNode, a.peerQPN = b.nic.node, b.qpn
	b.peerNode, b.peerQPN = a.nic.node, a.qpn
	a.loopback = a.nic == b.nic && a.qpn == b.qpn
	b.loopback = a.loopback
	a.state, b.state = QPReady, QPReady
}

// ConnectLoopback wires a QP to itself, giving the NIC a channel for local
// DMA operations — the paper's "local RDMA" used by gMEMCPY and gCAS (§4.2).
func ConnectLoopback(q *QP) {
	q.peerNode, q.peerQPN = q.nic.node, q.qpn
	q.loopback = true
	q.state = QPReady
}

// kick prompts the NIC to (re)evaluate a QP's send queue.
func (n *NIC) kick(q *QP) {
	if q.sqBusy || q.state != QPReady {
		return
	}
	n.advanceSQ(q)
}

// maxInlineProgSteps bounds control-op work per advanceSQ invocation. A
// well-formed WQE program always reaches a data op, a WAIT, or its gate
// within a handful of steps; only a corrupt or adversarial program (e.g. an
// unconditional CondRearm cycle of pure NOPs) can spin, and real hardware
// would wedge on it too — we fail the QP instead of hanging the simulation.
const maxInlineProgSteps = 1 << 16

// advanceSQ drains the send queue head: consumes satisfied WAITs, stalls on
// unsatisfied ones or host-owned slots, interprets program control ops
// (guard skips, conditional re-arm branches) inline, and initiates
// executable WQEs.
func (n *NIC) advanceSQ(q *QP) {
	steps := 0
	for {
		steps++
		if steps > maxInlineProgSteps {
			q.enterError()
			return
		}
		wqe, ok := q.sq.peek()
		if !ok || q.state != QPReady {
			return
		}
		if !wqe.HWOwned {
			n.trace("stall", q.qpn, wqe.Opcode, wqe.WRID, "host-owned")
			return // host-owned: wait for doorbell or remote grant
		}
		switch wqe.Opcode {
		case OpWait:
			cq := n.cqs[wqe.WaitCQ]
			if cq == nil {
				q.enterError()
				return
			}
			need := q.waitConsumed[wqe.WaitCQ] + uint64(wqe.WaitCount)
			if cq.total < need {
				if !q.waiting {
					q.waiting = true
					cq.addWaiter(func() {
						q.waiting = false
						n.kick(q)
					})
				}
				return
			}
			n.trace("wait", q.qpn, OpWait, wqe.WRID, fmt.Sprintf("fired cq=%d count=%d", wqe.WaitCQ, wqe.WaitCount))
			q.waitConsumed[wqe.WaitCQ] = need
			q.sq.advance()
			if wqe.Signaled {
				seq := q.execSeq
				q.execSeq++
				wqe := wqe
				q.deliverInOrder(seq, func() {
					q.sendCQ.push(CQE{WRID: wqe.WRID, Opcode: OpWait, Status: StatusSuccess, QPN: q.qpn})
				})
			}
			continue
		case OpNop:
			q.sq.advance()
			seq := q.execSeq
			q.execSeq++
			wqe := wqe
			q.deliverInOrder(seq, func() {
				if wqe.Signaled {
					q.sendCQ.push(CQE{WRID: wqe.WRID, Opcode: OpNop, Status: StatusSuccess, QPN: q.qpn})
				}
			})
			continue
		case OpGuard:
			if !n.execGuard(q, wqe) {
				return
			}
			continue
		case OpCondRearm:
			if !n.execCondRearm(q, wqe) {
				return
			}
			continue
		default:
			n.trace("exec", q.qpn, wqe.Opcode, wqe.WRID,
				fmt.Sprintf("raddr=%d len=%d", wqe.RAddr, totalSGELen(wqe.SGEs)))
			q.sq.advance()
			q.sqBusy = true
			n.counters.WQEsExecuted++
			gatherLen := 0
			for _, sge := range wqe.SGEs {
				gatherLen += int(sge.Length)
			}
			cost := n.scaledCost(n.cfg.WQEProcess + n.cfg.dmaTime(gatherLen) + q.takeDoorbellCharge())
			wqeCopy := wqe
			seq := q.execSeq
			q.execSeq++
			n.eng.ScheduleAt(n.stallStart(n.eng.Now()).Add(cost), func() {
				q.sqBusy = false
				n.initiate(q, wqeCopy, seq)
				n.advanceSQ(q)
			})
			return
		}
	}
}

// readLocalU64 fetches the 8-byte word addressed by w.SGEs[i] from local
// registered memory.
func (n *NIC) readLocalU64(w WQE, i int) (uint64, bool) {
	if len(w.SGEs) <= i {
		return 0, false
	}
	sge := w.SGEs[i]
	mr := n.mrsByLKey[sge.LKey]
	if mr == nil || !mr.contains(int(sge.Offset), 8) {
		return 0, false
	}
	var b [8]byte
	mr.read(int(sge.Offset), b[:])
	return le64(b[:]), true
}

// writeLocalU64 stores v at the location addressed by sge.
func (n *NIC) writeLocalU64(sge SGE, v uint64) bool {
	mr := n.mrsByLKey[sge.LKey]
	if mr == nil || !mr.contains(int(sge.Offset), 8) {
		return false
	}
	var b [8]byte
	putLE64(b[:], v)
	mr.write(int(sge.Offset), b[:])
	return true
}

// execGuard interprets an OpGuard slot: compare the local word at SGEs[0]
// (under the ProgB mask; 0 = full word) against Imm. On match execution
// falls through; on mismatch the next ProgA slots are skipped, with skipped
// signaled slots still delivering CQEs (StatusPredFail) so downstream WAIT
// counts stay constant either way. SGEs[1], when present, receives the
// observed word — how a predicated chain exports its evidence. Returns
// false when the QP entered error state.
func (n *NIC) execGuard(q *QP, wqe WQE) bool {
	obs, ok := n.readLocalU64(wqe, 0)
	if !ok {
		q.enterError()
		return false
	}
	if len(wqe.SGEs) > 1 && !n.writeLocalU64(wqe.SGEs[1], obs) {
		q.enterError()
		return false
	}
	mask := wqe.ProgB
	if mask == 0 {
		mask = ^uint64(0)
	}
	matched := obs&mask == wqe.Imm&mask
	q.sq.advance()
	st := StatusSuccess
	if !matched {
		st = StatusPredFail
	}
	if wqe.Signaled {
		seq := q.execSeq
		q.execSeq++
		wqe := wqe
		q.deliverInOrder(seq, func() {
			q.sendCQ.push(CQE{WRID: wqe.WRID, Opcode: OpGuard, Status: st, QPN: q.qpn, Imm: obs})
		})
	}
	if matched {
		n.trace("prog", q.qpn, OpGuard, wqe.WRID, fmt.Sprintf("pass obs=%x", obs))
		return true
	}
	n.counters.ProgBranches++
	n.trace("prog", q.qpn, OpGuard, wqe.WRID, fmt.Sprintf("skip %d obs=%x", wqe.ProgA, obs))
	for s := uint64(0); s < wqe.ProgA; s++ {
		sk, ok := q.sq.peek()
		if !ok {
			break
		}
		q.sq.advance()
		if sk.Signaled {
			seq := q.execSeq
			q.execSeq++
			sk := sk
			q.deliverInOrder(seq, func() {
				q.sendCQ.push(CQE{WRID: sk.WRID, Opcode: sk.Opcode, Status: StatusPredFail, QPN: q.qpn})
			})
		}
	}
	return true
}

// execCondRearm interprets an OpCondRearm slot — the loop primitive of
// NIC-resident programs. The local word at SGEs[0] is compared (under the
// Swap mask; 0 = full word) against Imm:
//
//   - match: the loop exits. A final CQE (StatusSuccess, Imm = observed)
//     is delivered and execution branches to the exit slot (WaitCQ-1; a
//     zero WaitCQ falls through instead).
//   - mismatch with budget (the word at SGEs[1]) > 0: the budget is
//     decremented, the backoff WAIT slot (ProgB-1, if any) has its count
//     doubled (0→1, capped at that slot's Swap) against *fresh* completions
//     of its CQ, every slot in [ProgA, here] is re-armed, and the head
//     rewinds to the retry target ProgA. No CQE: retries are silent.
//   - mismatch with budget 0: as the exit case but StatusRetryExhausted.
//
// Branching re-arms ordinary slots and CLOSES flagGate slots (ownership
// cleared), so a template program parks at its gate after the exit branch
// until the host doorbells the next operation — template reuse with zero
// re-posting. Returns false when the QP entered error state.
func (n *NIC) execCondRearm(q *QP, wqe WQE) bool {
	obs, ok := n.readLocalU64(wqe, 0)
	if !ok {
		q.enterError()
		return false
	}
	mask := wqe.Swap
	if mask == 0 {
		mask = ^uint64(0)
	}
	matched := obs&mask == wqe.Imm&mask
	condIdx := q.sq.headAbs()

	// branch re-arms [target, condIdx] (gated slots close instead) and
	// rewinds the consumer.
	branch := func(target int) bool {
		if target < 0 || target > condIdx {
			q.enterError()
			return false
		}
		n.counters.ProgBranches++
		for i := target; i <= condIdx; i++ {
			if q.sq.slotFlags(i)&flagGate != 0 {
				q.sq.setSlotOwned(i, false)
			} else {
				q.sq.setSlotOwned(i, true)
			}
		}
		q.sq.rewindTo(target)
		return true
	}
	// resetBackoff rewrites the backoff WAIT slot's count and pins its CQ
	// watermark to "completions from now on", so the wait is against fresh
	// ticks rather than history.
	resetBackoff := func(count uint32) bool {
		if wqe.ProgB == 0 {
			return true
		}
		b := int(wqe.ProgB) - 1
		if b < 0 || b > condIdx {
			q.enterError()
			return false
		}
		bw := q.sq.readSlot(b)
		cq := n.cqs[bw.WaitCQ]
		if bw.Opcode != OpWait || cq == nil {
			q.enterError()
			return false
		}
		q.sq.patchSlotU32(b, offWaitCount, count)
		q.waitConsumed[bw.WaitCQ] = cq.total
		return true
	}
	final := func(st Status) {
		if !wqe.Signaled {
			return
		}
		seq := q.execSeq
		q.execSeq++
		wqe := wqe
		q.deliverInOrder(seq, func() {
			q.sendCQ.push(CQE{WRID: wqe.WRID, Opcode: OpCondRearm, Status: st, QPN: q.qpn, Imm: obs})
		})
	}
	exit := func(st Status) bool {
		// Restore the backoff WAIT to its encoded base count (Imm) so the
		// next use of the template starts from the configured floor.
		if wqe.ProgB != 0 {
			base := uint32(q.sq.readSlot(int(wqe.ProgB) - 1).Imm)
			if !resetBackoff(base) {
				return false
			}
		}
		if wqe.WaitCQ == 0 {
			q.sq.advance()
			final(st)
			return true
		}
		target := int(wqe.WaitCQ) - 1
		q.sq.advance() // consume before rewinding past ourselves
		// Park the program (close gates, rewind) BEFORE delivering the final
		// CQE: delivery can synchronously re-enter the host, whose next-op
		// doorbell must land on an already-closed gate — the reverse order
		// would clobber the fresh grant and strand the next operation.
		if !branch(target) {
			return false
		}
		n.trace("prog", q.qpn, OpCondRearm, wqe.WRID, fmt.Sprintf("%s obs=%x exit=%d", st, obs, target))
		final(st)
		return true
	}

	if matched {
		return exit(StatusSuccess)
	}
	budget, ok := n.readLocalU64(wqe, 1)
	if !ok {
		q.enterError()
		return false
	}
	if budget == 0 {
		return exit(StatusRetryExhausted)
	}
	if !n.writeLocalU64(wqe.SGEs[1], budget-1) {
		q.enterError()
		return false
	}
	// Double the capped backoff, then loop back to the retry target.
	if wqe.ProgB != 0 {
		b := int(wqe.ProgB) - 1
		if b < 0 || b > condIdx {
			q.enterError()
			return false
		}
		bw := q.sq.readSlot(b)
		next := bw.WaitCount * 2
		if next == 0 {
			next = 1
		}
		if cap := uint32(bw.Swap); cap > 0 && next > cap {
			next = cap
		}
		if !resetBackoff(next) {
			return false
		}
	}
	target := int(wqe.ProgA)
	if !branch(target) {
		return false
	}
	n.trace("prog", q.qpn, OpCondRearm, wqe.WRID,
		fmt.Sprintf("retry obs=%x budget=%d target=%d", obs, budget-1, target))
	return true
}

// gather concatenates the WQE's scatter/gather entries from local MRs.
func (n *NIC) gather(q *QP, w WQE) ([]byte, Status) {
	var out []byte
	for _, sge := range w.SGEs {
		mr := n.mrsByLKey[sge.LKey]
		if mr == nil {
			return nil, StatusLocalProtErr
		}
		if !mr.contains(int(sge.Offset), int(sge.Length)) {
			return nil, StatusLocalProtErr
		}
		buf := make([]byte, sge.Length)
		mr.read(int(sge.Offset), buf)
		out = append(out, buf...)
	}
	return out, StatusSuccess
}

// initiate launches one non-WAIT WQE onto the wire (or loopback path). seq
// is the WQE's execution order for in-order completion delivery.
func (n *NIC) initiate(q *QP, w WQE, seq uint64) {
	fail := func(st Status) {
		q.deliverInOrder(seq, func() {
			if w.Signaled {
				q.sendCQ.push(CQE{WRID: w.WRID, Opcode: w.Opcode, Status: st, QPN: q.qpn})
			}
		})
		q.enterError()
	}
	q.nextReqID++
	reqID := q.nextReqID
	pkt := &packet{srcQPN: q.qpn, dstQPN: q.peerQPN, reqID: reqID}
	switch w.Opcode {
	case OpSend:
		data, st := n.gather(q, w)
		if st != StatusSuccess {
			fail(st)
			return
		}
		pkt.kind, pkt.data, pkt.imm = pkSend, data, w.Imm
	case OpWrite, OpWriteImm:
		data, st := n.gather(q, w)
		if st != StatusSuccess {
			fail(st)
			return
		}
		pkt.kind, pkt.data, pkt.rkey, pkt.raddr, pkt.imm = pkWrite, data, w.RKey, w.RAddr, w.Imm
		if w.Opcode == OpWriteImm {
			pkt.kind = pkWriteImm
		}
	case OpRead:
		length := 0
		for _, sge := range w.SGEs {
			length += int(sge.Length)
		}
		pkt.kind, pkt.rkey, pkt.raddr, pkt.readLen = pkRead, w.RKey, w.RAddr, length
	case OpCompSwap:
		pkt.kind, pkt.rkey, pkt.raddr, pkt.compare, pkt.swap = pkCAS, w.RKey, w.RAddr, w.Imm, w.Swap
	case OpMaskFAdd:
		pkt.kind, pkt.rkey, pkt.raddr = pkMaskFAdd, w.RKey, w.RAddr
		pkt.imm, pkt.swap, pkt.compare, pkt.gmask = w.Imm, w.Swap, w.ProgA, w.ProgB
	default:
		fail(StatusLocalProtErr)
		return
	}
	q.pending[reqID] = pendingReq{wqe: w, seq: seq}
	q.inFlight++
	n.transmit(q, pkt, len(pkt.data))
}

// transmit sends pkt toward q's peer, bypassing the fabric for loopback.
func (n *NIC) transmit(q *QP, pkt *packet, size int) {
	if q.loopback {
		// Local DMA path: charge receive-side processing without wire time.
		n.eng.Schedule(n.cfg.RxProcess, func() {
			n.handlePacket(pkt)
		})
		return
	}
	n.net.Send(fabric.Message{From: n.node, To: q.peerNode, Size: size, Payload: pkt})
}

// handleMessage is the fabric delivery hook.
func (n *NIC) handleMessage(m fabric.Message) {
	pkt, ok := m.Payload.(*packet)
	if !ok {
		panic(fmt.Sprintf("rdma: non-packet payload %T", m.Payload))
	}
	n.handlePacket(pkt)
}

// handlePacket dispatches an inbound packet after charging Rx processing
// plus payload DMA, serialized per destination QP so requests execute in
// arrival order.
func (n *NIC) handlePacket(pkt *packet) {
	cost := n.scaledCost(n.cfg.RxProcess + n.cfg.dmaTime(len(pkt.data)))
	start := n.stallStart(n.eng.Now())
	q := n.qps[pkt.dstQPN]
	if q != nil && q.rxFree > start {
		start = q.rxFree
	}
	end := start.Add(cost)
	if q != nil {
		q.rxFree = end
	}
	n.eng.ScheduleAt(end, func() { n.process(pkt) })
}

func (n *NIC) process(pkt *packet) {
	q := n.qps[pkt.dstQPN]
	if q == nil {
		return // stale packet to a destroyed QP
	}
	n.trace("rx", pkt.dstQPN, 0, 0, fmt.Sprintf("%s %dB raddr=%d", pktKindName(pkt.kind), len(pkt.data), pkt.raddr))
	switch pkt.kind {
	case pkSend:
		n.counters.SendsRx++
		n.recvConsume(q, pkt, pkt.data, false)
		return
	case pkWrite:
		n.counters.WritesRx++
		st := n.remoteWrite(pkt)
		n.respond(q, &packet{kind: pkAck, dstQPN: pkt.srcQPN, reqID: pkt.reqID, status: st}, 0)
		if st != StatusSuccess {
			q.enterError()
		}
	case pkWriteImm:
		n.counters.WritesRx++
		st := n.remoteWrite(pkt)
		if st != StatusSuccess {
			n.respond(q, &packet{kind: pkAck, dstQPN: pkt.srcQPN, reqID: pkt.reqID, status: st}, 0)
			q.enterError()
			return
		}
		// WRITE_IMM additionally consumes a RECV to deliver the immediate.
		n.recvConsume(q, pkt, nil, true)
	case pkRead:
		n.counters.ReadsRx++
		mr := n.mrsByRKey[pkt.rkey]
		resp := &packet{kind: pkReadResp, dstQPN: pkt.srcQPN, reqID: pkt.reqID}
		switch {
		case mr == nil:
			resp.status = StatusRemoteInvalidRkey
		case mr.access&AccessRemoteRead == 0:
			resp.status = StatusRemoteAccessErr
		case !mr.contains(int(pkt.raddr), pkt.readLen):
			resp.status = StatusRemoteAccessErr
		default:
			// A READ drains the NIC's volatile cache for the region before
			// data is returned — the property gFLUSH (a 0-byte READ) is
			// built on (§4.2, "Group RDMA flush").
			n.counters.CacheFlushes++
			if pkt.readLen == 0 {
				mr.backing.Flush(0, mr.backing.Len())
			} else {
				mr.backing.Flush(int(pkt.raddr), pkt.readLen)
			}
			resp.data = make([]byte, pkt.readLen)
			mr.read(int(pkt.raddr), resp.data)
			resp.status = StatusSuccess
		}
		if resp.status != StatusSuccess {
			n.counters.AccessFaults++
		}
		// Flush cost is charged before the response leaves.
		n.eng.Schedule(n.cfg.CacheFlush, func() {
			n.respond(q, resp, len(resp.data))
		})
	case pkCAS:
		n.counters.AtomicsRx++
		mr := n.mrsByRKey[pkt.rkey]
		resp := &packet{kind: pkCASResp, dstQPN: pkt.srcQPN, reqID: pkt.reqID}
		switch {
		case mr == nil:
			resp.status = StatusRemoteInvalidRkey
		case mr.access&AccessRemoteAtomic == 0:
			resp.status = StatusRemoteAccessErr
		case !mr.contains(int(pkt.raddr), 8):
			resp.status = StatusRemoteAccessErr
		default:
			var cur [8]byte
			mr.read(int(pkt.raddr), cur[:])
			orig := le64(cur[:])
			if orig == pkt.compare {
				var nv [8]byte
				putLE64(nv[:], pkt.swap)
				mr.write(int(pkt.raddr), nv[:])
			}
			resp.imm = orig
			resp.status = StatusSuccess
		}
		if resp.status != StatusSuccess {
			n.counters.AccessFaults++
		}
		n.eng.Schedule(n.cfg.AtomicOp, func() {
			n.respond(q, resp, 8)
		})
	case pkMaskFAdd:
		// Masked fetch-and-add in the style of ConnectX extended atomics:
		// the addend applies only within the field mask (swap; 0 = whole
		// word), and only when the guarded bits (old & gmask) equal the
		// expected value — a reader-register that cannot race a writer.
		// The original word always returns, applied or not.
		n.counters.AtomicsRx++
		mr := n.mrsByRKey[pkt.rkey]
		resp := &packet{kind: pkCASResp, dstQPN: pkt.srcQPN, reqID: pkt.reqID}
		switch {
		case mr == nil:
			resp.status = StatusRemoteInvalidRkey
		case mr.access&AccessRemoteAtomic == 0:
			resp.status = StatusRemoteAccessErr
		case !mr.contains(int(pkt.raddr), 8):
			resp.status = StatusRemoteAccessErr
		default:
			var cur [8]byte
			mr.read(int(pkt.raddr), cur[:])
			orig := le64(cur[:])
			if pkt.gmask == 0 || orig&pkt.gmask == pkt.compare {
				field := pkt.swap
				if field == 0 {
					field = ^uint64(0)
				}
				var nv [8]byte
				putLE64(nv[:], (orig+pkt.imm)&field|orig&^field)
				mr.write(int(pkt.raddr), nv[:])
			}
			resp.imm = orig
			resp.status = StatusSuccess
		}
		if resp.status != StatusSuccess {
			n.counters.AccessFaults++
		}
		n.eng.Schedule(n.cfg.AtomicOp, func() {
			n.respond(q, resp, 8)
		})
	case pkAck:
		n.completeRequest(q, pkt, nil)
	case pkReadResp:
		n.completeRequest(q, pkt, pkt.data)
	case pkCASResp:
		var orig [8]byte
		putLE64(orig[:], pkt.imm)
		n.completeRequest(q, pkt, orig[:])
	}
}

// remoteWrite applies an inbound WRITE and returns its status.
func (n *NIC) remoteWrite(pkt *packet) Status {
	mr := n.mrsByRKey[pkt.rkey]
	switch {
	case mr == nil:
		n.counters.AccessFaults++
		return StatusRemoteInvalidRkey
	case mr.access&AccessRemoteWrite == 0:
		n.counters.AccessFaults++
		return StatusRemoteAccessErr
	case !mr.contains(int(pkt.raddr), len(pkt.data)):
		n.counters.AccessFaults++
		return StatusRemoteAccessErr
	}
	mr.write(int(pkt.raddr), pkt.data)
	return StatusSuccess
}

// recvConsume consumes a RECV WQE — from the QP's private queue or its
// attached shared receive queue — for an inbound SEND (scattering data) or
// WRITE_IMM (immediate only).
func (n *NIC) recvConsume(q *QP, pkt *packet, data []byte, immOnly bool) {
	rq := q.rq
	if q.srq != nil {
		rq = q.srq.rq
	}
	rwqe, ok := rq.peek()
	if !ok {
		n.counters.RNRs++
		n.respond(q, &packet{kind: pkAck, dstQPN: pkt.srcQPN, reqID: pkt.reqID, status: StatusRNR}, 0)
		q.enterError()
		return
	}
	rq.advance()
	status := StatusSuccess
	if !immOnly {
		remaining := data
		for _, sge := range rwqe.SGEs {
			if len(remaining) == 0 {
				break
			}
			mr := n.mrsByLKey[sge.LKey]
			if mr == nil || !mr.contains(int(sge.Offset), min(int(sge.Length), len(remaining))) {
				status = StatusLocalProtErr
				break
			}
			chunk := remaining
			if len(chunk) > int(sge.Length) {
				chunk = chunk[:sge.Length]
			}
			mr.write(int(sge.Offset), chunk)
			remaining = remaining[len(chunk):]
		}
		if status == StatusSuccess && len(remaining) > 0 {
			status = StatusLengthErr
		}
	}
	byteLen := len(data)
	if immOnly {
		byteLen = len(pkt.data)
	}
	q.recvCQ.push(CQE{
		WRID:    rwqe.WRID,
		Opcode:  OpRecv,
		Status:  status,
		QPN:     q.qpn,
		Imm:     pkt.imm,
		ByteLen: byteLen,
	})
	n.respond(q, &packet{kind: pkAck, dstQPN: pkt.srcQPN, reqID: pkt.reqID, status: status}, 0)
	if status != StatusSuccess {
		q.enterError()
	}
}

// respond sends a response packet back toward the requester.
func (n *NIC) respond(q *QP, pkt *packet, size int) {
	n.transmit(q, pkt, size)
}

// completeRequest matches a response to its pending request and raises the
// requester-side completion.
func (n *NIC) completeRequest(q *QP, pkt *packet, scatter []byte) {
	p, ok := q.pending[pkt.reqID]
	if !ok {
		return // duplicate or post-error response
	}
	delete(q.pending, pkt.reqID)
	q.inFlight--
	q.deliverInOrder(p.seq, func() {
		st := pkt.status
		if st == StatusSuccess && scatter != nil && len(p.wqe.SGEs) > 0 {
			remaining := scatter
			for _, sge := range p.wqe.SGEs {
				if len(remaining) == 0 {
					break
				}
				mr := n.mrsByLKey[sge.LKey]
				if mr == nil || !mr.contains(int(sge.Offset), min(int(sge.Length), len(remaining))) {
					st = StatusLocalProtErr
					break
				}
				chunk := remaining
				if len(chunk) > int(sge.Length) {
					chunk = chunk[:sge.Length]
				}
				mr.write(int(sge.Offset), chunk)
				remaining = remaining[len(chunk):]
			}
		}
		if p.wqe.Signaled {
			cqe := CQE{WRID: p.wqe.WRID, Opcode: p.wqe.Opcode, Status: st, QPN: q.qpn, ByteLen: len(scatter)}
			if (p.wqe.Opcode == OpCompSwap || p.wqe.Opcode == OpMaskFAdd) && len(scatter) == 8 {
				cqe.Imm = le64(scatter)
			}
			q.sendCQ.push(cqe)
		}
		if st != StatusSuccess {
			q.enterError()
		}
	})
}

func totalSGELen(sges []SGE) int {
	n := 0
	for _, s := range sges {
		n += int(s.Length)
	}
	return n
}

func pktKindName(k packetKind) string {
	switch k {
	case pkSend:
		return "SEND"
	case pkWrite:
		return "WRITE"
	case pkWriteImm:
		return "WRITE_IMM"
	case pkRead:
		return "READ"
	case pkCAS:
		return "CAS"
	case pkMaskFAdd:
		return "MASK_FADD"
	case pkAck:
		return "ACK"
	case pkReadResp:
		return "READ_RESP"
	case pkCASResp:
		return "CAS_RESP"
	default:
		return "?"
	}
}

func le64(b []byte) uint64       { return binary.LittleEndian.Uint64(b) }
func putLE64(b []byte, v uint64) { binary.LittleEndian.PutUint64(b, v) }

// DebugQPState reports internal queue state for diagnostics: head opcode,
// ownership, wait bookkeeping. Test scaffolding only.
func (q *QP) DebugQPState() string {
	wqe, ok := q.sq.peek()
	if !ok {
		return fmt.Sprintf("sq empty, waiting=%v", q.waiting)
	}
	cq := q.nic.cqs[wqe.WaitCQ]
	total := uint64(0)
	if cq != nil {
		total = cq.total
	}
	return fmt.Sprintf("head=%v owned=%v waitCQ=%d count=%d consumed=%d cqTotal=%d waiting=%v sqBusy=%v",
		wqe.Opcode, wqe.HWOwned, wqe.WaitCQ, wqe.WaitCount, q.waitConsumed[wqe.WaitCQ], total, q.waiting, q.sqBusy)
}

// DestroyQP tears a queue pair down: pending work flushes with errors,
// future posts fail, and late inbound packets are dropped. The chain
// manager uses this when decommissioning a failed member's connections.
func (n *NIC) DestroyQP(q *QP) {
	if q == nil || n.qps[q.qpn] != q {
		return
	}
	q.enterError()
	delete(n.qps, q.qpn)
}
