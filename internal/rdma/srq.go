package rdma

// SRQ is a shared receive queue: one pool of RECV work requests consumed by
// inbound SENDs on any attached QP. The paper points to SRQs as the path to
// multi-client HyperLoop groups ("multiple clients can be supported in the
// future using shared receive queues on the first replica", §5): every
// client connects its own QP to the head replica, and all of them consume
// from one pre-posted pool, so the replica does not need per-client rings.
//
// Like ordinary receive queues, the SRQ's WQE slots live in registered
// memory and completions are delivered to each consuming QP's recv CQ.
type SRQ struct {
	nic *NIC
	rq  *WQETable
}

// CreateSRQ allocates a shared receive queue with the given slot count.
func (n *NIC) CreateSRQ(slots int) *SRQ {
	if slots <= 0 {
		slots = n.cfg.MaxInlineWQ
	}
	mr := n.RegisterRAM(slots*SlotSize, AccessLocalWrite|AccessRemoteWrite)
	return &SRQ{nic: n, rq: newWQETable(mr, slots)}
}

// PostRecv adds a receive request to the shared pool.
func (s *SRQ) PostRecv(w WQE) (int, error) {
	if len(w.SGEs) > MaxSGE {
		return 0, ErrTooManySGEs
	}
	w.Opcode = OpRecv
	w.HWOwned = true
	return s.rq.post(&w)
}

// Posted returns the number of un-consumed receives in the pool.
func (s *SRQ) Posted() int { return s.rq.Posted() }

// Table exposes the slot table (registered memory).
func (s *SRQ) Table() *WQETable { return s.rq }

// AttachSRQ makes q consume receives from srq instead of its private
// receive queue. Must be called before any inbound traffic; both must live
// on the same NIC.
func (q *QP) AttachSRQ(srq *SRQ) {
	if srq.nic != q.nic {
		panic("rdma: SRQ and QP on different NICs")
	}
	q.srq = srq
}
