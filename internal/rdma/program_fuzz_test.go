package rdma

import (
	"testing"

	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// FuzzWQEProgram extends the codec fuzz to the WQE-program surface and
// drives the interpreter with adversarial programs. Two properties:
//
//  1. Round-trip: the program fields (Gated, ProgA, ProgB) and the program
//     opcodes (GUARD, COND_REARM, MASK_FADD) survive Encode→Decode exactly —
//     a remote rewrite of a program slot must mean what was written.
//  2. Boundedness: an arbitrary GUARD → WRITE → COND_REARM program (branch
//     targets, masks, and budgets chosen adversarially) always terminates:
//     either the program completes, exits its loop, or the QP faults. It
//     never hangs the simulation or panics.
func FuzzWQEProgram(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(0), uint8(0), uint8(1), uint8(2), uint8(1), uint64(0))
	f.Add(uint64(42), uint64(42), uint64(0xFF), uint8(1), uint8(0), uint8(4), uint8(3), uint64(1))
	f.Add(^uint64(0), uint64(7), ^uint64(0), uint8(2), uint8(3), uint8(7), uint8(8), uint64(9))
	f.Add(uint64(1)<<63, uint64(1)<<63, uint64(1)<<63, uint8(200), uint8(250), uint8(3), uint8(2), uint64(1)<<63)

	f.Fuzz(func(t *testing.T, guardWord, want, mask uint64, progA, progB, budget, cap8 uint8, exitVal uint64) {
		// Property 1: codec round-trip on program descriptors.
		for _, w := range []WQE{
			{Opcode: OpGuard, Signaled: true, Imm: want, Swap: mask,
				ProgA: uint64(progA), ProgB: uint64(progB), Gated: progA&1 == 0},
			{Opcode: OpCondRearm, Signaled: progB&1 == 0, Imm: want,
				ProgA: uint64(progA), ProgB: uint64(progB), WaitCQ: uint32(cap8)},
			{Opcode: OpMaskFAdd, Imm: guardWord, Swap: mask,
				ProgA: uint64(progA), ProgB: uint64(progB), Gated: true},
		} {
			got := DecodeWQE(w.EncodeImage())
			if got.Opcode != w.Opcode || got.Gated != w.Gated ||
				got.ProgA != w.ProgA || got.ProgB != w.ProgB ||
				got.Imm != w.Imm || got.Swap != w.Swap {
				t.Fatalf("program fields lost in round-trip:\n in  %+v\n out %+v", w, got)
			}
		}

		// Property 2: bounded interpretation. Budgets and backoff caps are
		// clamped so well-formed loops stay short; branch targets are raw
		// fuzz bytes, so most values exercise the fault paths.
		eng := sim.NewEngine()
		net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
		na := NewNIC(eng, net, Config{})
		nb := NewNIC(eng, net, Config{})
		acq, arq := na.CreateCQ(), na.CreateCQ()
		bcq, brq := nb.CreateCQ(), nb.CreateCQ()
		qa := na.CreateQP(acq, arq, 64, 64)
		qb := nb.CreateQP(bcq, brq, 64, 64)
		Connect(qa, qb)
		tcq := na.CreateTimerCQ(sim.Microsecond)

		local := na.RegisterRAM(64, AccessLocalWrite)
		dst := nb.RegisterRAM(64, AccessRemoteWrite)
		putWord(local, 0, guardWord)
		putWord(local, 8, uint64(budget%8))
		putWord(local, 16, exitVal)

		ws := []WQE{
			{Opcode: OpWait, WaitCQ: tcq.ID(), WaitCount: 0, Imm: 0, Swap: uint64(cap8%8) + 1},
			{Opcode: OpGuard, Signaled: true, WRID: 1, Imm: want, Swap: 0,
				ProgA: uint64(progA % 3), ProgB: mask,
				SGEs: []SGE{{LKey: local.LKey(), Offset: 0, Length: 8}}},
			{Opcode: OpWrite, Signaled: true, WRID: 2, RKey: dst.RKey(), RAddr: 0,
				SGEs: []SGE{{LKey: local.LKey(), Offset: 0, Length: 8}}},
			{Opcode: OpCondRearm, Signaled: true, WRID: 3, Imm: want, Swap: mask,
				ProgA: uint64(progA), ProgB: uint64(progB), WaitCQ: uint32(cap8 % 6),
				SGEs: []SGE{{LKey: local.LKey(), Offset: 16, Length: 8}, {LKey: local.LKey(), Offset: 8, Length: 8}}},
		}
		if _, err := qa.PostSendBatch(ws); err != nil {
			return // oversized SGE lists etc. are fine to reject
		}
		// Bounded horizon, not Drain: an adversarial exit branch can form a
		// legitimately infinite program (re-arming a gateless body), which
		// real hardware would also happily spin on. The property under test
		// is that nothing panics, wedges the engine, or corrupts QP state.
		eng.RunFor(2 * sim.Millisecond)
		if qa.State() != QPReady && qa.State() != QPError {
			t.Fatalf("QP in unexpected state %v", qa.State())
		}
	})
}
