package rdma

import (
	"encoding/binary"
	"fmt"
)

// WQE slot geometry. Descriptors are fixed 128-byte images in a registered
// ring, encoded little-endian, so that a remote WRITE or a RECV scatter can
// rewrite any field of a pre-posted request — the mechanism behind the
// paper's remote work request manipulation (§4.1, Figure 5).
const (
	SlotSize = 128
	MaxSGE   = 4

	offOpcode    = 0
	offFlags     = 1
	offNumSGE    = 2
	offRKey      = 4
	offRAddr     = 8
	offImm       = 16 // immediate data / CAS compare value
	offSwap      = 24 // CAS swap value
	offWRID      = 32
	offWaitCQ    = 40
	offWaitCount = 44
	offSGEs      = 48
	sgeSize      = 16 // lkey u32, length u32, addr u64
	offProgA     = 112
	offProgB     = 120
)

// WQE flag bits.
const (
	flagSignaled = 1 << 0 // generate a CQE on completion
	flagHWOwned  = 1 << 1 // NIC may execute; clear = host-owned (inert)
	// flagGate marks a template slot as the host gate of a WQE program: a
	// CondRearm branch whose range covers it CLOSES it (clears HW ownership)
	// instead of re-arming it, parking the program until the next doorbell.
	flagGate = 1 << 2
)

// SGE is a scatter/gather entry addressing (lkey, region-relative offset,
// length).
type SGE struct {
	LKey   uint32
	Offset uint64
	Length uint32
}

// WQE is the decoded form of a work-queue entry. The encoded 128-byte image
// in the queue's registered ring is authoritative; this struct is only a
// convenience for building and for the NIC's execution step.
type WQE struct {
	Opcode    Opcode
	Signaled  bool
	HWOwned   bool
	Gated     bool // program gate slot: closed (not re-armed) by branch re-arm
	RKey      uint32
	RAddr     uint64
	Imm       uint64 // immediate data, or CAS compare value / guard want value
	Swap      uint64 // CAS swap value / guard mask / MaskFAdd field mask
	WRID      uint64
	WaitCQ    uint32 // for OpWait: target CQ id; for OpCondRearm: exit slot + 1
	WaitCount uint32 // for OpWait: completions to consume
	SGEs      []SGE
	// ProgA/ProgB parameterize NIC-resident WQE programs. OpGuard: ProgA is
	// the skip count on mismatch, ProgB the compare mask (0 = full word).
	// OpCondRearm: ProgA is the retry branch target (absolute slot), ProgB
	// the backoff WAIT slot + 1 (0 = none). OpMaskFAdd: ProgA is the guard
	// want value, ProgB the guard mask (0 = unconditional).
	ProgA uint64
	ProgB uint64
}

// Encode serializes the WQE into a 128-byte slot image.
func (w *WQE) Encode(dst []byte) {
	if len(dst) < SlotSize {
		panic(fmt.Sprintf("rdma: encode into %d bytes, need %d", len(dst), SlotSize))
	}
	if len(w.SGEs) > MaxSGE {
		panic(ErrTooManySGEs)
	}
	for i := range dst[:SlotSize] {
		dst[i] = 0
	}
	dst[offOpcode] = byte(w.Opcode)
	var flags byte
	if w.Signaled {
		flags |= flagSignaled
	}
	if w.HWOwned {
		flags |= flagHWOwned
	}
	if w.Gated {
		flags |= flagGate
	}
	dst[offFlags] = flags
	dst[offNumSGE] = byte(len(w.SGEs))
	binary.LittleEndian.PutUint32(dst[offRKey:], w.RKey)
	binary.LittleEndian.PutUint64(dst[offRAddr:], w.RAddr)
	binary.LittleEndian.PutUint64(dst[offImm:], w.Imm)
	binary.LittleEndian.PutUint64(dst[offSwap:], w.Swap)
	binary.LittleEndian.PutUint64(dst[offWRID:], w.WRID)
	binary.LittleEndian.PutUint32(dst[offWaitCQ:], w.WaitCQ)
	binary.LittleEndian.PutUint32(dst[offWaitCount:], w.WaitCount)
	binary.LittleEndian.PutUint64(dst[offProgA:], w.ProgA)
	binary.LittleEndian.PutUint64(dst[offProgB:], w.ProgB)
	for i, sge := range w.SGEs {
		base := offSGEs + i*sgeSize
		binary.LittleEndian.PutUint32(dst[base:], sge.LKey)
		binary.LittleEndian.PutUint32(dst[base+4:], sge.Length)
		binary.LittleEndian.PutUint64(dst[base+8:], sge.Offset)
	}
}

// DecodeWQE parses a 128-byte slot image.
func DecodeWQE(src []byte) WQE {
	if len(src) < SlotSize {
		panic(fmt.Sprintf("rdma: decode from %d bytes, need %d", len(src), SlotSize))
	}
	w := WQE{
		Opcode:    Opcode(src[offOpcode]),
		Signaled:  src[offFlags]&flagSignaled != 0,
		HWOwned:   src[offFlags]&flagHWOwned != 0,
		Gated:     src[offFlags]&flagGate != 0,
		RKey:      binary.LittleEndian.Uint32(src[offRKey:]),
		RAddr:     binary.LittleEndian.Uint64(src[offRAddr:]),
		Imm:       binary.LittleEndian.Uint64(src[offImm:]),
		Swap:      binary.LittleEndian.Uint64(src[offSwap:]),
		WRID:      binary.LittleEndian.Uint64(src[offWRID:]),
		WaitCQ:    binary.LittleEndian.Uint32(src[offWaitCQ:]),
		WaitCount: binary.LittleEndian.Uint32(src[offWaitCount:]),
		ProgA:     binary.LittleEndian.Uint64(src[offProgA:]),
		ProgB:     binary.LittleEndian.Uint64(src[offProgB:]),
	}
	n := int(src[offNumSGE])
	if n > MaxSGE {
		n = MaxSGE
	}
	for i := 0; i < n; i++ {
		base := offSGEs + i*sgeSize
		w.SGEs = append(w.SGEs, SGE{
			LKey:   binary.LittleEndian.Uint32(src[base:]),
			Length: binary.LittleEndian.Uint32(src[base+4:]),
			Offset: binary.LittleEndian.Uint64(src[base+8:]),
		})
	}
	return w
}

// EncodeImage returns the WQE as a fresh slot image — what a HyperLoop
// client precomputes as per-replica metadata.
func (w *WQE) EncodeImage() []byte {
	img := make([]byte, SlotSize)
	w.Encode(img)
	return img
}

// WQETable is a ring of WQE slots living in a registered memory region.
// The region uses RAM backing: queues are host memory even on NVM nodes.
type WQETable struct {
	mr    *MemoryRegion
	slots int
	head  int // next slot the NIC will consider (consumer)
	tail  int // next free slot for posting (producer)
}

func newWQETable(mr *MemoryRegion, slots int) *WQETable {
	return &WQETable{mr: mr, slots: slots}
}

// MR returns the registered region holding the slots; its rkey is what a
// HyperLoop group shares so peers can manipulate descriptors.
func (t *WQETable) MR() *MemoryRegion { return t.mr }

// Slots returns the ring capacity.
func (t *WQETable) Slots() int { return t.slots }

// SlotOffset returns the byte offset of slot i within the table's region.
func (t *WQETable) SlotOffset(i int) int { return (i % t.slots) * SlotSize }

// Tail returns the producer index (the absolute index of the next post).
func (t *WQETable) Tail() int { return t.tail }

// Posted returns the number of WQEs posted and not yet consumed.
func (t *WQETable) Posted() int { return t.tail - t.head }

func (t *WQETable) full() bool { return t.tail-t.head >= t.slots }

// post encodes w into the tail slot and returns the absolute slot index.
func (t *WQETable) post(w *WQE) (int, error) {
	if t.full() {
		return 0, ErrQueueFull
	}
	idx := t.tail
	buf := make([]byte, SlotSize)
	w.Encode(buf)
	t.mr.backing.WriteAt(t.SlotOffset(idx), buf)
	t.tail++
	return idx, nil
}

// peek decodes the head slot without consuming it.
func (t *WQETable) peek() (WQE, bool) {
	if t.head >= t.tail {
		return WQE{}, false
	}
	buf := make([]byte, SlotSize)
	t.mr.backing.ReadAt(t.SlotOffset(t.head), buf)
	return DecodeWQE(buf), true
}

// advance consumes the head slot.
func (t *WQETable) advance() { t.head++ }

// headAbs returns the consumer index (the absolute index of the slot the
// NIC will consider next).
func (t *WQETable) headAbs() int { return t.head }

// rewindTo moves the consumer back to absolute slot index abs — the branch
// primitive of NIC-resident WQE programs. Rewinding forward of the head or
// behind slots already overwritten by the producer is a caller bug.
func (t *WQETable) rewindTo(abs int) {
	if abs < 0 || abs > t.head || t.tail-abs > t.slots {
		panic(fmt.Sprintf("rdma: rewind to %d with head %d tail %d slots %d", abs, t.head, t.tail, t.slots))
	}
	t.head = abs
}

// readSlot decodes the slot at absolute index abs without consuming it.
func (t *WQETable) readSlot(abs int) WQE {
	buf := make([]byte, SlotSize)
	t.mr.backing.ReadAt(t.SlotOffset(abs), buf)
	return DecodeWQE(buf)
}

// slotFlags reads the flag byte of slot abs.
func (t *WQETable) slotFlags(abs int) byte {
	var b [1]byte
	t.mr.backing.ReadAt(t.SlotOffset(abs)+offFlags, b[:])
	return b[0]
}

// setSlotOwned sets or clears the hardware-ownership bit of slot abs. It
// writes through the backing directly (no onWrite hook), matching what the
// NIC itself does when it re-arms a branch target: a purely NIC-internal
// state change must not recursively re-kick the queue mid-interpretation.
func (t *WQETable) setSlotOwned(abs int, owned bool) {
	off := t.SlotOffset(abs) + offFlags
	var b [1]byte
	t.mr.backing.ReadAt(off, b[:])
	if owned {
		b[0] |= flagHWOwned
	} else {
		b[0] &^= flagHWOwned
	}
	t.mr.backing.WriteAt(off, b[:])
}

// patchSlotU32 overwrites one 4-byte field of the encoded slot at abs.
func (t *WQETable) patchSlotU32(abs, fieldOff int, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	t.mr.backing.WriteAt(t.SlotOffset(abs)+fieldOff, b[:])
}

// PatchSlotU64 overwrites one 8-byte field of the encoded slot at absolute
// index abs, at byte offset fieldOff within the 128-byte image. This is the
// host side of template reuse: between doorbells the host rewrites only the
// per-op fields (compare value, mask) of a parked program instead of
// rebuilding the chain.
func (t *WQETable) PatchSlotU64(abs int, fieldOff int, v uint64) {
	if fieldOff < 0 || fieldOff+8 > SlotSize {
		panic(fmt.Sprintf("rdma: patch field offset %d outside slot", fieldOff))
	}
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	t.mr.backing.WriteAt(t.SlotOffset(abs)+fieldOff, b[:])
}

// Encoded-slot field offsets exported for host-side template patching.
const (
	SlotOffImm  = offImm
	SlotOffSwap = offSwap
)

// SlotOffSGEAddr returns the byte offset of SGE i's address field within an
// encoded slot image, for patching a template slot's operand location.
func SlotOffSGEAddr(i int) int {
	if i < 0 || i >= MaxSGE {
		panic(fmt.Sprintf("rdma: sge index %d out of range", i))
	}
	return offSGEs + i*sgeSize + 8
}
