package rdma

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzWQECodec checks the two codec properties the remote-manipulation
// datapath depends on (§4.1): Encode→Decode is the identity on structured
// WQEs — including the host/HW ownership flag a remote WRITE toggles — and
// Decode is a canonicalizing projection: decode(encode(decode(raw))) ==
// decode(raw) for arbitrary slot images, so a rewritten descriptor means
// the same thing no matter how many times it is re-read.
func FuzzWQECodec(f *testing.F) {
	seed := []WQE{
		{},
		{Opcode: OpWrite, Signaled: true, HWOwned: true, RKey: 7, RAddr: 4096,
			SGEs: []SGE{{LKey: 1, Offset: 64, Length: 1024}}},
		{Opcode: OpCompSwap, Imm: ^uint64(0), Swap: 42, WRID: 99, HWOwned: false},
		{Opcode: OpWait, WaitCQ: 3, WaitCount: 2, Signaled: true},
		{Opcode: OpSend, SGEs: []SGE{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}},
	}
	for _, w := range seed {
		f.Add(w.EncodeImage())
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < SlotSize {
			padded := make([]byte, SlotSize)
			copy(padded, raw)
			raw = padded
		}
		w := DecodeWQE(raw)
		img := w.EncodeImage()
		w2 := DecodeWQE(img)
		if !wqeEqual(w, w2) {
			t.Fatalf("decode∘encode not idempotent:\n raw  %x\n first %+v\n again %+v", raw[:SlotSize], w, w2)
		}
		// Re-encoding the canonical form must be byte-stable.
		if img2 := w2.EncodeImage(); !bytes.Equal(img, img2) {
			t.Fatalf("encode not canonical:\n %x\n %x", img, img2)
		}
		// Ownership-flag preservation: the NIC's execute/inert decision must
		// survive a round trip in both states.
		for _, owned := range []bool{false, true} {
			w.HWOwned = owned
			if got := DecodeWQE(w.EncodeImage()); got.HWOwned != owned {
				t.Fatalf("HWOwned=%v not preserved through Encode/Decode", owned)
			}
		}
		// Signaled likewise (it gates CQE generation, and WAIT counts CQEs).
		for _, sig := range []bool{false, true} {
			w.Signaled = sig
			if got := DecodeWQE(w.EncodeImage()); got.Signaled != sig {
				t.Fatalf("Signaled=%v not preserved through Encode/Decode", sig)
			}
		}
	})
}

func wqeEqual(a, b WQE) bool {
	if len(a.SGEs) == 0 && len(b.SGEs) == 0 {
		a.SGEs, b.SGEs = nil, nil
	}
	return reflect.DeepEqual(a, b)
}
