package rdma

import "hyperloop/internal/sim"

// CQE is a completion-queue entry.
type CQE struct {
	WRID    uint64
	Opcode  Opcode
	Status  Status
	QPN     uint32 // queue pair the completion belongs to
	Imm     uint64 // immediate data (WRITE_IMM / SEND), or CAS original value
	ByteLen int    // bytes transferred
}

// CQ is a completion queue. Completions can be consumed three ways, all of
// which the evaluation exercises:
//
//   - Poll, by a busy-polling CPU thread (the Naïve-Polling baseline);
//   - a callback, modelling a completion-channel event that wakes a host
//     thread (the Naïve-Event baseline and the client library);
//   - WAIT work requests on other queues (the HyperLoop datapath), which
//     observe only the monotone completion counter and consume nothing.
type CQ struct {
	id        uint32
	nic       *NIC
	entries   []CQE
	total     uint64 // completions ever pushed (monotone; WAIT watches this)
	cb        func(CQE)
	waiters   []func() // queues stalled on a WAIT against this CQ
	autoDrain bool

	// Timer CQs (CreateTimerCQ) self-complete on a fixed virtual-time grid
	// while anything WAITs on them — the NIC-side delay source for capped
	// backoff in WQE programs. The grid is aligned to absolute virtual time
	// (tick k fires at k*period), so tick instants are a property of the
	// configuration, not of when a waiter happened to arm — which keeps
	// program interleavings bit-identical at any PartitionedEngine worker
	// count.
	timerPeriod sim.Duration
	timerArmed  bool
}

// TimerPeriod returns the tick period for a timer CQ (0 for ordinary CQs).
func (c *CQ) TimerPeriod() sim.Duration { return c.timerPeriod }

// SetAutoDrain configures the CQ to discard entries instead of retaining
// them for Poll. The monotone counter (what WAIT observes) and the callback
// still fire. HyperLoop marks its chain CQs auto-drain: no host ever polls
// them — that is the whole point — so retaining entries would just leak.
func (c *CQ) SetAutoDrain(v bool) { c.autoDrain = v }

// ID returns the CQ identifier WAIT WQEs reference.
func (c *CQ) ID() uint32 { return c.id }

// Completions returns the monotone count of completions ever delivered.
func (c *CQ) Completions() uint64 { return c.total }

// Depth returns the number of unpolled entries.
func (c *CQ) Depth() int { return len(c.entries) }

// SetCallback installs fn to run on every future completion. Passing nil
// removes the callback. The callback runs on the simulation goroutine at
// completion time; event-driven consumers are expected to model their host
// wakeup cost themselves (that cost is the paper's whole subject).
func (c *CQ) SetCallback(fn func(CQE)) { c.cb = fn }

// Poll removes and returns up to max entries.
func (c *CQ) Poll(max int) []CQE {
	if max <= 0 || len(c.entries) == 0 {
		return nil
	}
	if max > len(c.entries) {
		max = len(c.entries)
	}
	out := make([]CQE, max)
	copy(out, c.entries[:max])
	c.entries = c.entries[max:]
	return out
}

// push delivers a completion: appends, notifies the callback, and re-kicks
// any queues whose head WAIT watches this CQ.
func (c *CQ) push(e CQE) {
	if !c.autoDrain {
		c.entries = append(c.entries, e)
	}
	c.total++
	if c.cb != nil {
		c.cb(e)
	}
	if len(c.waiters) > 0 {
		ws := c.waiters
		c.waiters = nil
		for _, w := range ws {
			w()
		}
	}
}

// addWaiter registers a re-kick callback for a queue blocked on this CQ.
// Waiting on a timer CQ lazily arms its next grid tick: an idle timer
// (nothing waiting) costs no events at all.
func (c *CQ) addWaiter(fn func()) {
	c.waiters = append(c.waiters, fn)
	c.armTimer()
}

// armTimer schedules the next grid-aligned tick of a timer CQ. Each tick
// delivers one completion; further ticks are armed only while waiters
// remain, re-registered through addWaiter by still-unsatisfied WAITs.
func (c *CQ) armTimer() {
	if c.timerPeriod <= 0 || c.timerArmed {
		return
	}
	c.timerArmed = true
	now := c.nic.eng.Now()
	next := sim.Time(0).Add((sim.Duration(now)/c.timerPeriod + 1) * c.timerPeriod)
	c.nic.eng.ScheduleAt(next, func() {
		c.timerArmed = false
		c.nic.counters.TimerTicks++
		c.push(CQE{Opcode: OpNop, Status: StatusSuccess})
	})
}
