package rdma

import (
	"bytes"
	"testing"
	"testing/quick"

	"hyperloop/internal/fabric"
	"hyperloop/internal/nvm"
	"hyperloop/internal/sim"
)

// rig wires two NICs over a fabric with one connected QP pair.
type rig struct {
	eng      *sim.Engine
	net      *fabric.Network
	na, nb   *NIC
	qa, qb   *QP
	acq, bcq *CQ // send CQs
	arq, brq *CQ // recv CQs
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	na := NewNIC(eng, net, Config{})
	nb := NewNIC(eng, net, Config{})
	r := &rig{eng: eng, net: net, na: na, nb: nb}
	r.acq, r.arq = na.CreateCQ(), na.CreateCQ()
	r.bcq, r.brq = nb.CreateCQ(), nb.CreateCQ()
	r.qa = na.CreateQP(r.acq, r.arq, 64, 64)
	r.qb = nb.CreateQP(r.bcq, r.brq, 64, 64)
	Connect(r.qa, r.qb)
	return r
}

func TestWriteReadRemote(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(1024, AccessLocalWrite)
	dst := r.nb.RegisterRAM(1024, AccessRemoteWrite|AccessRemoteRead)
	copy(src.Backing().(*RAMBacking).Bytes(), "hyperloop-data")

	if _, err := r.qa.PostSend(WQE{
		Opcode: OpWrite, Signaled: true, WRID: 1,
		RKey: dst.RKey(), RAddr: 100,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 14}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	cqes := r.acq.Poll(10)
	if len(cqes) != 1 || cqes[0].Status != StatusSuccess || cqes[0].WRID != 1 {
		t.Fatalf("write completion: %+v", cqes)
	}
	got := make([]byte, 14)
	dst.Backing().ReadAt(100, got)
	if string(got) != "hyperloop-data" {
		t.Fatalf("remote memory = %q", got)
	}

	// READ it back into a separate local buffer.
	rbuf := r.na.RegisterRAM(64, AccessLocalWrite)
	if _, err := r.qa.PostSend(WQE{
		Opcode: OpRead, Signaled: true, WRID: 2,
		RKey: dst.RKey(), RAddr: 100,
		SGEs: []SGE{{LKey: rbuf.LKey(), Offset: 0, Length: 14}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	cqes = r.acq.Poll(10)
	if len(cqes) != 1 || cqes[0].Status != StatusSuccess {
		t.Fatalf("read completion: %+v", cqes)
	}
	got = make([]byte, 14)
	rbuf.Backing().ReadAt(0, got)
	if string(got) != "hyperloop-data" {
		t.Fatalf("read-back = %q", got)
	}
}

func TestSendRecv(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(256, 0)
	dst := r.nb.RegisterRAM(256, AccessLocalWrite)
	copy(src.Backing().(*RAMBacking).Bytes(), "ping")

	if _, err := r.qb.PostRecv(WQE{WRID: 7, SGEs: []SGE{{LKey: dst.LKey(), Offset: 10, Length: 100}}}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.qa.PostSend(WQE{
		Opcode: OpSend, Signaled: true, WRID: 3, Imm: 42,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	rc := r.brq.Poll(10)
	if len(rc) != 1 || rc[0].Status != StatusSuccess || rc[0].WRID != 7 || rc[0].Imm != 42 || rc[0].ByteLen != 4 {
		t.Fatalf("recv completion: %+v", rc)
	}
	got := make([]byte, 4)
	dst.Backing().ReadAt(10, got)
	if string(got) != "ping" {
		t.Fatalf("scattered data = %q", got)
	}
	sc := r.acq.Poll(10)
	if len(sc) != 1 || sc[0].Status != StatusSuccess {
		t.Fatalf("send completion: %+v", sc)
	}
}

func TestRecvMultiSGEScatter(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(256, 0)
	d1 := r.nb.RegisterRAM(8, AccessLocalWrite)
	d2 := r.nb.RegisterRAM(256, AccessLocalWrite)
	copy(src.Backing().(*RAMBacking).Bytes(), "aaaabbbbccccdddd")

	r.qb.PostRecv(WQE{SGEs: []SGE{
		{LKey: d1.LKey(), Offset: 0, Length: 8},
		{LKey: d2.LKey(), Offset: 4, Length: 100},
	}})
	r.qa.PostSend(WQE{Opcode: OpSend, Signaled: true,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 16}}})
	r.eng.Drain()
	b1 := make([]byte, 8)
	d1.Backing().ReadAt(0, b1)
	b2 := make([]byte, 8)
	d2.Backing().ReadAt(4, b2)
	if string(b1) != "aaaabbbb" || string(b2) != "ccccdddd" {
		t.Fatalf("multi-sge scatter: %q %q", b1, b2)
	}
}

func TestWriteWithImmConsumesRecv(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	copy(src.Backing().(*RAMBacking).Bytes(), "ackdata")

	r.qb.PostRecv(WQE{WRID: 99})
	r.qa.PostSend(WQE{
		Opcode: OpWriteImm, Signaled: true, Imm: 1234,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 7}},
	})
	r.eng.Drain()
	rc := r.brq.Poll(10)
	if len(rc) != 1 || rc[0].Imm != 1234 || rc[0].WRID != 99 || rc[0].ByteLen != 7 {
		t.Fatalf("write_imm recv completion: %+v", rc)
	}
	got := make([]byte, 7)
	dst.Backing().ReadAt(0, got)
	if string(got) != "ackdata" {
		t.Fatalf("write_imm payload = %q", got)
	}
}

func TestCompareAndSwap(t *testing.T) {
	r := newRig(t)
	lockMR := r.nb.RegisterRAM(64, AccessRemoteAtomic)
	res := r.na.RegisterRAM(8, AccessLocalWrite)

	// CAS 0 -> 5 succeeds; original value 0 scattered back.
	r.qa.PostSend(WQE{
		Opcode: OpCompSwap, Signaled: true, WRID: 1,
		RKey: lockMR.RKey(), RAddr: 0, Imm: 0, Swap: 5,
		SGEs: []SGE{{LKey: res.LKey(), Offset: 0, Length: 8}},
	})
	r.eng.Drain()
	c := r.acq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusSuccess || c[0].Imm != 0 {
		t.Fatalf("cas completion: %+v", c)
	}
	var cur [8]byte
	lockMR.Backing().ReadAt(0, cur[:])
	if le64(cur[:]) != 5 {
		t.Fatalf("lock word = %d, want 5", le64(cur[:]))
	}

	// Second CAS 0 -> 9 fails (value is 5); word unchanged, original
	// returned.
	r.qa.PostSend(WQE{
		Opcode: OpCompSwap, Signaled: true, WRID: 2,
		RKey: lockMR.RKey(), RAddr: 0, Imm: 0, Swap: 9,
		SGEs: []SGE{{LKey: res.LKey(), Offset: 0, Length: 8}},
	})
	r.eng.Drain()
	c = r.acq.Poll(1)
	if len(c) != 1 || c[0].Imm != 5 {
		t.Fatalf("cas-miss completion: %+v", c)
	}
	lockMR.Backing().ReadAt(0, cur[:])
	if le64(cur[:]) != 5 {
		t.Fatalf("lock word mutated on miss: %d", le64(cur[:]))
	}
}

func TestWaitTriggersQueuedOps(t *testing.T) {
	// The CORE-Direct pattern (paper Figure 4): a WAIT at the head of B's
	// send queue toward a third node fires only when B's recv CQ gets a
	// completion, with no host code running on B.
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	na, nb, nc := NewNIC(eng, net, Config{}), NewNIC(eng, net, Config{}), NewNIC(eng, net, Config{})

	// a -> b QP pair.
	acq, arq := na.CreateCQ(), na.CreateCQ()
	bcq, brq := nb.CreateCQ(), nb.CreateCQ()
	qab := na.CreateQP(acq, arq, 16, 16)
	qba := nb.CreateQP(bcq, brq, 16, 16)
	Connect(qab, qba)
	// b -> c QP pair.
	bcq2, brq2 := nb.CreateCQ(), nb.CreateCQ()
	ccq, crq := nc.CreateCQ(), nc.CreateCQ()
	qbc := nb.CreateQP(bcq2, brq2, 16, 16)
	qcb := nc.CreateQP(ccq, crq, 16, 16)
	Connect(qbc, qcb)

	bBuf := nb.RegisterRAM(256, AccessLocalWrite)
	cBuf := nc.RegisterRAM(256, AccessRemoteWrite)
	aBuf := na.RegisterRAM(256, 0)
	copy(aBuf.Backing().(*RAMBacking).Bytes(), "chained!")

	// B pre-posts: RECV on qba; WAIT + WRITE on qbc.
	qba.PostRecv(WQE{SGEs: []SGE{{LKey: bBuf.LKey(), Offset: 0, Length: 64}}})
	qbc.PostSend(WQE{Opcode: OpWait, WaitCQ: brq.ID(), WaitCount: 1})
	qbc.PostSend(WQE{
		Opcode: OpWrite, Signaled: true,
		RKey: cBuf.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: bBuf.LKey(), Offset: 0, Length: 8}},
	})
	eng.Drain()
	// Nothing should have reached C yet.
	probe := make([]byte, 8)
	cBuf.Backing().ReadAt(0, probe)
	if !bytes.Equal(probe, make([]byte, 8)) {
		t.Fatal("WAIT fired before its CQ condition")
	}

	// A sends to B; the recv completion fires the WAIT which fires the
	// WRITE to C.
	qab.PostSend(WQE{Opcode: OpSend, Signaled: true,
		SGEs: []SGE{{LKey: aBuf.LKey(), Offset: 0, Length: 8}}})
	eng.Drain()
	cBuf.Backing().ReadAt(0, probe)
	if string(probe) != "chained!" {
		t.Fatalf("chained write = %q", probe)
	}
}

func TestWaitCountAccumulates(t *testing.T) {
	// A WAIT with count 2 must not fire after a single completion.
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	sink := r.nb.RegisterRAM(64, AccessLocalWrite)
	flag := r.na.RegisterRAM(64, AccessRemoteWrite)

	// B: two RECVs; then WAIT(2) + WRITE back to A's flag region on the
	// same QP pair (qb's send side).
	r.qb.PostRecv(WQE{SGEs: []SGE{{LKey: sink.LKey(), Offset: 0, Length: 4}}})
	r.qb.PostRecv(WQE{SGEs: []SGE{{LKey: sink.LKey(), Offset: 4, Length: 4}}})
	r.qb.PostSend(WQE{Opcode: OpWait, WaitCQ: r.brq.ID(), WaitCount: 2})
	r.qb.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: flag.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: sink.LKey(), Offset: 0, Length: 8}}})

	copy(src.Backing().(*RAMBacking).Bytes(), "ab")
	r.qa.PostSend(WQE{Opcode: OpSend, SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 1}}})
	r.eng.Drain()
	probe := make([]byte, 1)
	flag.Backing().ReadAt(0, probe)
	if probe[0] != 0 {
		t.Fatal("WAIT(2) fired after one completion")
	}
	r.qa.PostSend(WQE{Opcode: OpSend, SGEs: []SGE{{LKey: src.LKey(), Offset: 1, Length: 1}}})
	r.eng.Drain()
	flag.Backing().ReadAt(0, probe)
	if probe[0] == 0 {
		t.Fatal("WAIT(2) never fired after two completions")
	}
}

func TestHoldOwnershipStallsUntilDoorbell(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	copy(src.Backing().(*RAMBacking).Bytes(), "held")

	idx, err := r.qa.PostSend(WQE{
		Opcode: OpWrite, Signaled: true,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}},
	}, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	probe := make([]byte, 4)
	dst.Backing().ReadAt(0, probe)
	if !bytes.Equal(probe, make([]byte, 4)) {
		t.Fatal("host-owned WQE executed without doorbell")
	}
	r.qa.Doorbell(idx)
	r.eng.Drain()
	dst.Backing().ReadAt(0, probe)
	if string(probe) != "held" {
		t.Fatalf("doorbelled WQE did not execute: %q", probe)
	}
}

func TestRemoteWQEManipulation(t *testing.T) {
	// The paper's key trick (§4.1, Figure 5): node A rewrites a pre-posted,
	// host-owned WQE on node B's send queue via RDMA WRITE — changing its
	// descriptor and granting ownership — and the NIC executes the new
	// descriptor with no host involvement on B.
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	na, nb, nc := NewNIC(eng, net, Config{}), NewNIC(eng, net, Config{}), NewNIC(eng, net, Config{})

	acq, arq := na.CreateCQ(), na.CreateCQ()
	bcq, brq := nb.CreateCQ(), nb.CreateCQ()
	qab := na.CreateQP(acq, arq, 16, 16)
	qba := nb.CreateQP(bcq, brq, 16, 16)
	Connect(qab, qba)
	bcq2, brq2 := nb.CreateCQ(), nb.CreateCQ()
	ccq, crq := nc.CreateCQ(), nc.CreateCQ()
	qbc := nb.CreateQP(bcq2, brq2, 16, 16)
	qcb := nc.CreateQP(ccq, crq, 16, 16)
	Connect(qbc, qcb)

	bLog := nb.RegisterRAM(256, AccessRemoteWrite)
	cLog := nc.RegisterRAM(256, AccessRemoteWrite)

	// B pre-posts a host-owned placeholder WRITE on its queue toward C.
	// The descriptor is deliberately wrong (length 0, wrong offset).
	idx, err := qbc.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: cLog.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: bLog.LKey(), Offset: 0, Length: 0}}}, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}

	// A writes payload into B's log region...
	payload := na.RegisterRAM(64, 0)
	copy(payload.Backing().(*RAMBacking).Bytes(), "manipulated")
	qab.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: bLog.RKey(), RAddr: 32,
		SGEs: []SGE{{LKey: payload.LKey(), Offset: 0, Length: 11}}})

	// ...then crafts the corrected descriptor image and writes it straight
	// into B's send-queue slot, with the ownership flag set.
	desc := (&WQE{
		Opcode: OpWrite, Signaled: true, HWOwned: true,
		RKey: cLog.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: bLog.LKey(), Offset: 32, Length: 11}},
	}).EncodeImage()
	img := na.RegisterRAM(SlotSize, 0)
	copy(img.Backing().(*RAMBacking).Bytes(), desc)
	qab.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: qbc.SQTable().MR().RKey(), RAddr: uint64(qbc.SQTable().SlotOffset(idx)),
		SGEs: []SGE{{LKey: img.LKey(), Offset: 0, Length: SlotSize}}})

	eng.Drain()
	got := make([]byte, 11)
	cLog.Backing().ReadAt(0, got)
	if string(got) != "manipulated" {
		t.Fatalf("manipulated WQE result = %q", got)
	}
}

func TestRNRWithoutRecv(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	r.qa.PostSend(WQE{Opcode: OpSend, Signaled: true, WRID: 5,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	c := r.acq.Poll(10)
	if len(c) != 1 || c[0].Status != StatusRNR {
		t.Fatalf("expected RNR completion, got %+v", c)
	}
	if r.qa.State() != QPError || r.qb.State() != QPError {
		t.Fatalf("QPs not in error after RNR: %v %v", r.qa.State(), r.qb.State())
	}
	if _, err := r.qa.PostSend(WQE{Opcode: OpSend}); err != ErrQPState {
		t.Fatalf("post on errored QP: %v", err)
	}
	if r.na.Counters().RNRs == 0 && r.nb.Counters().RNRs == 0 {
		t.Fatal("RNR not counted")
	}
}

func TestRemoteAccessViolations(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	roMR := r.nb.RegisterRAM(64, AccessRemoteRead) // no RemoteWrite

	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, WRID: 1,
		RKey: roMR.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	c := r.acq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusRemoteAccessErr {
		t.Fatalf("write to read-only MR: %+v", c)
	}
	if r.nb.Counters().AccessFaults == 0 {
		t.Fatal("access fault not counted")
	}
}

func TestBadRKey(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: 0xdeadbeef, RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	c := r.acq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusRemoteInvalidRkey {
		t.Fatalf("bad rkey: %+v", c)
	}
}

func TestBoundsViolation(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(8, AccessRemoteWrite)
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: dst.RKey(), RAddr: 4,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 8}}})
	r.eng.Drain()
	c := r.acq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusRemoteAccessErr {
		t.Fatalf("out-of-bounds write: %+v", c)
	}
}

func TestLocalProtErr(t *testing.T) {
	r := newRig(t)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: 0xbad, Offset: 0, Length: 4}}})
	r.eng.Drain()
	c := r.acq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusLocalProtErr {
		t.Fatalf("bad lkey: %+v", c)
	}
}

func TestZeroByteReadFlushesNVM(t *testing.T) {
	// The gFLUSH building block: a WRITE into NVM is volatile (NIC cache)
	// until a 0-byte READ on the same region drains it.
	r := newRig(t)
	dev := nvm.New(4096)
	nvmMR := r.nb.RegisterMemory(NewNVMBacking(dev, 0, 1024), AccessRemoteWrite|AccessRemoteRead)
	src := r.na.RegisterRAM(64, 0)
	copy(src.Backing().(*RAMBacking).Bytes(), "durable?")

	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: nvmMR.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 8}}})
	r.eng.Drain()
	r.acq.Poll(10) // consume the write completion
	if !dev.IsDirty(0, 8) {
		t.Fatal("RDMA write should land in volatile NIC cache")
	}

	// 0-byte READ = flush.
	r.qa.PostSend(WQE{Opcode: OpRead, Signaled: true, WRID: 9,
		RKey: nvmMR.RKey(), RAddr: 0})
	r.eng.Drain()
	c := r.acq.Poll(10)
	if len(c) != 1 || c[0].Status != StatusSuccess || c[0].WRID != 9 {
		t.Fatalf("flush read completion: %+v", c)
	}
	if dev.IsDirty(0, 8) {
		t.Fatal("0-byte READ did not drain the NIC cache")
	}
	dev.PowerFail()
	if got := dev.Read(0, 8); string(got) != "durable?" {
		t.Fatalf("flushed data lost: %q", got)
	}
}

func TestLoopbackLocalCopy(t *testing.T) {
	// gMEMCPY's worker: a loopback QP lets a NIC copy within its own host
	// memory (log region -> data region) with zero CPU.
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	n := NewNIC(eng, net, Config{})
	cq, rq := n.CreateCQ(), n.CreateCQ()
	lo := n.CreateQP(cq, rq, 16, 16)
	ConnectLoopback(lo)

	logMR := n.RegisterRAM(256, AccessRemoteWrite|AccessRemoteRead)
	dataMR := n.RegisterRAM(256, AccessRemoteWrite)
	copy(logMR.Backing().(*RAMBacking).Bytes(), "commit-me")

	lo.PostSend(WQE{Opcode: OpWrite, Signaled: true,
		RKey: dataMR.RKey(), RAddr: 64,
		SGEs: []SGE{{LKey: logMR.LKey(), Offset: 0, Length: 9}}})
	eng.Drain()
	c := cq.Poll(1)
	if len(c) != 1 || c[0].Status != StatusSuccess {
		t.Fatalf("loopback completion: %+v", c)
	}
	got := make([]byte, 9)
	dataMR.Backing().ReadAt(64, got)
	if string(got) != "commit-me" {
		t.Fatalf("loopback copy = %q", got)
	}
	if net.Delivered() != 0 {
		t.Fatal("loopback op crossed the fabric")
	}
}

func TestInOrderExecutionSameQP(t *testing.T) {
	// Writes posted in order on a QP land in order: a later write to the
	// same address wins.
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	buf := src.Backing().(*RAMBacking).Bytes()
	for i := 0; i < 10; i++ {
		buf[0] = byte(i)
		// Copy value into distinct offsets so gather at execute time sees
		// the right byte.
		src.Backing().WriteAt(i, []byte{byte(i)})
		r.qa.PostSend(WQE{Opcode: OpWrite, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: uint64(i), Length: 1}}})
	}
	r.eng.Drain()
	got := make([]byte, 1)
	dst.Backing().ReadAt(0, got)
	if got[0] != 9 {
		t.Fatalf("final value = %d, want 9 (in-order)", got[0])
	}
}

func TestUnsignaledNoCQE(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	r.qa.PostSend(WQE{Opcode: OpWrite, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	if c := r.acq.Poll(10); len(c) != 0 {
		t.Fatalf("unsignaled op produced CQE: %+v", c)
	}
}

func TestCQCallback(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	var got []CQE
	r.acq.SetCallback(func(e CQE) { got = append(got, e) })
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, WRID: 77,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	if len(got) != 1 || got[0].WRID != 77 {
		t.Fatalf("callback CQEs: %+v", got)
	}
}

func TestQueueFull(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	// Hold ownership so nothing drains; 64-slot queue fills.
	var err error
	for i := 0; i < 65; i++ {
		_, err = r.qa.PostSend(WQE{Opcode: OpWrite, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 1}}}, HoldOwnership)
		if err != nil {
			break
		}
	}
	if err != ErrQueueFull {
		t.Fatalf("expected queue full, got %v", err)
	}
}

func TestWQEEncodeDecodeRoundTrip(t *testing.T) {
	w := WQE{
		Opcode: OpCompSwap, Signaled: true, HWOwned: true,
		RKey: 0xAABBCCDD, RAddr: 0x1122334455667788,
		Imm: 42, Swap: 43, WRID: 99,
		WaitCQ: 7, WaitCount: 3,
		SGEs: []SGE{{LKey: 1, Offset: 2, Length: 3}, {LKey: 4, Offset: 5, Length: 6}},
	}
	img := w.EncodeImage()
	got := DecodeWQE(img)
	if got.Opcode != w.Opcode || got.Signaled != w.Signaled || got.HWOwned != w.HWOwned ||
		got.RKey != w.RKey || got.RAddr != w.RAddr || got.Imm != w.Imm || got.Swap != w.Swap ||
		got.WRID != w.WRID || got.WaitCQ != w.WaitCQ || got.WaitCount != w.WaitCount ||
		len(got.SGEs) != 2 || got.SGEs[0] != w.SGEs[0] || got.SGEs[1] != w.SGEs[1] {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", w, got)
	}
}

func TestLatencyScalesWithMessageSize(t *testing.T) {
	lat := func(size int) sim.Duration {
		r := newRig(t)
		src := r.na.RegisterRAM(size, 0)
		dst := r.nb.RegisterRAM(size, AccessRemoteWrite)
		start := r.eng.Now()
		var end sim.Time
		r.acq.SetCallback(func(CQE) { end = r.eng.Now() })
		r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: uint32(size)}}})
		r.eng.Drain()
		return end.Sub(start)
	}
	small, large := lat(128), lat(65536)
	if large <= small {
		t.Fatalf("latency did not grow with size: %v vs %v", small, large)
	}
	if small < 2*sim.Microsecond || small > 20*sim.Microsecond {
		t.Fatalf("128B write RTT %v outside plausible µs range", small)
	}
}

func TestSendTableWriteKicksStalledQP(t *testing.T) {
	// Granting ownership by writing the flags byte locally (not via
	// Doorbell) must also wake the queue, because the table region's
	// onWrite hook fires.
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	copy(src.Backing().(*RAMBacking).Bytes(), "kick")
	idx, _ := r.qa.PostSend(WQE{Opcode: OpWrite, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}}, HoldOwnership)
	r.eng.Drain()

	tbl := r.qa.SQTable()
	off := tbl.SlotOffset(idx) + 1 // flags byte
	var b [1]byte
	tbl.MR().Backing().ReadAt(off, b[:])
	b[0] |= 0x02
	tbl.MR().write(off, b[:]) // NIC-path write into the table
	r.eng.Drain()
	got := make([]byte, 4)
	dst.Backing().ReadAt(0, got)
	if string(got) != "kick" {
		t.Fatalf("table write did not wake queue: %q", got)
	}
}

func TestSharedReceiveQueue(t *testing.T) {
	// Two senders feed one receiver through distinct QPs sharing an SRQ —
	// the paper's multi-client building block (§5).
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	c1 := NewNIC(eng, net, Config{})
	c2 := NewNIC(eng, net, Config{})
	srv := NewNIC(eng, net, Config{})

	srq := srv.CreateSRQ(32)
	sink := srv.RegisterRAM(1024, AccessLocalWrite)
	recvCQ := srv.CreateCQ()
	var got []uint64
	recvCQ.SetCallback(func(e CQE) {
		if e.Status != StatusSuccess {
			t.Fatalf("srq recv status %v", e.Status)
		}
		got = append(got, e.Imm)
	})

	mkPair := func(cli *NIC) *QP {
		a := cli.CreateQP(cli.CreateCQ(), cli.CreateCQ(), 16, 1)
		b := srv.CreateQP(srv.CreateCQ(), recvCQ, 1, 1)
		b.AttachSRQ(srq)
		Connect(a, b)
		a.SendCQ().SetAutoDrain(true)
		return a
	}
	q1, q2 := mkPair(c1), mkPair(c2)

	// Post a shared pool with distinct scatter targets per slot.
	for i := 0; i < 8; i++ {
		if _, err := srq.PostRecv(WQE{WRID: uint64(i),
			SGEs: []SGE{{LKey: sink.LKey(), Offset: uint64(64 * i), Length: 64}}}); err != nil {
			t.Fatal(err)
		}
	}

	buf1 := c1.RegisterRAM(16, 0)
	buf2 := c2.RegisterRAM(16, 0)
	copy(buf1.Backing().(*RAMBacking).Bytes(), "from-c1")
	copy(buf2.Backing().(*RAMBacking).Bytes(), "from-c2")
	for i := 0; i < 3; i++ {
		q1.PostSend(WQE{Opcode: OpSend, Imm: uint64(100 + i),
			SGEs: []SGE{{LKey: buf1.LKey(), Offset: 0, Length: 7}}})
		q2.PostSend(WQE{Opcode: OpSend, Imm: uint64(200 + i),
			SGEs: []SGE{{LKey: buf2.LKey(), Offset: 0, Length: 7}}})
	}
	eng.Drain()

	if len(got) != 6 {
		t.Fatalf("srq delivered %d sends, want 6 (imms %v)", len(got), got)
	}
	if srq.Posted() != 2 {
		t.Fatalf("srq pool has %d left, want 2", srq.Posted())
	}
	// Both clients' payloads landed somewhere in the shared sink.
	all := string(sink.Backing().(*RAMBacking).Bytes())
	if !bytes.Contains([]byte(all), []byte("from-c1")) || !bytes.Contains([]byte(all), []byte("from-c2")) {
		t.Fatal("shared sink missing a client's payload")
	}
}

func TestSRQExhaustionRNR(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	cli := NewNIC(eng, net, Config{})
	srv := NewNIC(eng, net, Config{})
	srq := srv.CreateSRQ(4)
	a := cli.CreateQP(cli.CreateCQ(), cli.CreateCQ(), 16, 1)
	b := srv.CreateQP(srv.CreateCQ(), srv.CreateCQ(), 1, 1)
	b.AttachSRQ(srq)
	Connect(a, b)
	buf := cli.RegisterRAM(16, 0)
	// One send with an empty pool → RNR.
	a.PostSend(WQE{Opcode: OpSend, Signaled: true, WRID: 1,
		SGEs: []SGE{{LKey: buf.LKey(), Offset: 0, Length: 4}}})
	eng.Drain()
	c := a.SendCQ().Poll(4)
	if len(c) != 1 || c[0].Status != StatusRNR {
		t.Fatalf("expected RNR on empty SRQ: %+v", c)
	}
}

func TestSRQCrossNICRejected(t *testing.T) {
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	n1 := NewNIC(eng, net, Config{})
	n2 := NewNIC(eng, net, Config{})
	srq := n1.CreateSRQ(4)
	q := n2.CreateQP(n2.CreateCQ(), n2.CreateCQ(), 4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-NIC SRQ attach did not panic")
		}
	}()
	q.AttachSRQ(srq)
}

// Property: DecodeWQE tolerates arbitrary slot images (a remote writer can
// place any bytes in a registered queue) without panicking, and clamps the
// SGE count.
func TestPropertyDecodeWQERobust(t *testing.T) {
	f := func(raw [SlotSize]byte) bool {
		w := DecodeWQE(raw[:])
		return len(w.SGEs) <= MaxSGE
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A garbage descriptor granted to the NIC must fail the op (and error the
// QP), never crash the NIC.
func TestGarbageDescriptorFailsGracefully(t *testing.T) {
	r := newRig(t)
	idx, err := r.qa.PostSend(WQE{Opcode: OpWrite}, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}
	// Overwrite the slot with hostile bytes (valid-enough opcode, absurd
	// fields), then grant ownership.
	tbl := r.qa.SQTable()
	junk := make([]byte, SlotSize)
	for i := range junk {
		junk[i] = byte(0xA5 ^ i)
	}
	junk[0] = byte(OpWrite)
	junk[1] = flagHWOwned | flagSignaled
	junk[2] = 3 // SGEs with garbage keys
	tbl.MR().Backing().WriteAt(tbl.SlotOffset(idx), junk)
	r.qa.Doorbell(idx)
	r.eng.Drain()
	c := r.acq.Poll(4)
	if len(c) != 1 || c[0].Status == StatusSuccess {
		t.Fatalf("garbage descriptor outcome: %+v", c)
	}
	if r.qa.State() != QPError {
		t.Fatalf("QP state %v after garbage descriptor", r.qa.State())
	}
}

func TestTracerEmitsEvents(t *testing.T) {
	r := newRig(t)
	var kinds []string
	r.na.SetTracer(func(e TraceEvent) { kinds = append(kinds, e.Kind) })
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	sawExec, sawRx := false, false
	for _, k := range kinds {
		if k == "exec" {
			sawExec = true
		}
		if k == "rx" {
			sawRx = true
		}
	}
	if !sawExec || !sawRx {
		t.Fatalf("tracer events: %v", kinds)
	}
	// Detaching stops the stream.
	r.na.SetTracer(nil)
	n := len(kinds)
	r.qa.PostSend(WQE{Opcode: OpWrite, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	if len(kinds) != n {
		t.Fatal("detached tracer still firing")
	}
}

func TestDestroyQP(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(16, 0)
	dst := r.nb.RegisterRAM(16, AccessRemoteWrite)

	// In-flight op at destroy time flushes with an error completion.
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, WRID: 9,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	r.na.DestroyQP(r.qa)
	r.eng.Drain()
	// Post after destroy fails.
	if _, err := r.qa.PostSend(WQE{Opcode: OpWrite}); err != ErrQPState {
		t.Fatalf("post after destroy: %v", err)
	}
	// Late packets to the destroyed QPN are dropped silently (no panic).
	r.qb.PostRecv(WQE{})
	bsrc := r.nb.RegisterRAM(8, 0)
	r.qb.PostSend(WQE{Opcode: OpSend, SGEs: []SGE{{LKey: bsrc.LKey(), Offset: 0, Length: 4}}})
	r.eng.Drain()
	// Destroying twice or destroying a foreign QP is a no-op.
	r.na.DestroyQP(r.qa)
	r.na.DestroyQP(nil)
}

func TestPipelinedMixedLatencyCompletionOrder(t *testing.T) {
	// Stress the per-QP reorder buffer: a big WRITE (slow DMA), a CAS
	// (round trip + atomic delay), and a 0-byte READ posted back to back
	// must complete in post order.
	r := newRig(t)
	src := r.na.RegisterRAM(64<<10, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64<<10, AccessRemoteWrite|AccessRemoteRead|AccessRemoteAtomic)
	var order []uint64
	r.acq.SetCallback(func(e CQE) {
		if e.Status != StatusSuccess {
			t.Fatalf("completion %v", e.Status)
		}
		order = append(order, e.WRID)
	})
	r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, WRID: 1, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 64 << 10}}})
	r.qa.PostSend(WQE{Opcode: OpCompSwap, Signaled: true, WRID: 2, RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 8}}})
	r.qa.PostSend(WQE{Opcode: OpRead, Signaled: true, WRID: 3, RKey: dst.RKey()})
	r.eng.Drain()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("completion order %v, want [1 2 3]", order)
	}
}

func TestSharedSendCQAcrossQPs(t *testing.T) {
	// Multiple QPs feeding one send CQ (the fan-out barrier pattern): the
	// CQ's monotone counter sums completions across queues.
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	a := NewNIC(eng, net, Config{})
	b := NewNIC(eng, net, Config{})
	shared := a.CreateCQ()
	shared.SetAutoDrain(true)
	src := a.RegisterRAM(64, 0)
	dst := b.RegisterRAM(64, AccessRemoteWrite)
	for i := 0; i < 3; i++ {
		qa := a.CreateQP(shared, a.CreateCQ(), 8, 1)
		qb := b.CreateQP(b.CreateCQ(), b.CreateCQ(), 1, 8)
		Connect(qa, qb)
		qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 4}}})
	}
	eng.Drain()
	if shared.Completions() != 3 {
		t.Fatalf("shared CQ total = %d, want 3", shared.Completions())
	}
}

func TestWaitOnUnknownCQErrorsQP(t *testing.T) {
	r := newRig(t)
	r.qa.PostSend(WQE{Opcode: OpWait, WaitCQ: 9999, WaitCount: 1})
	r.eng.Drain()
	if r.qa.State() != QPError {
		t.Fatalf("QP state %v after WAIT on unknown CQ", r.qa.State())
	}
}

// writeLatency measures one signaled 8B WRITE end to end on a fresh drain.
func writeLatency(t *testing.T, r *rig, src, dst *MemoryRegion) sim.Duration {
	t.Helper()
	start := r.eng.Now()
	if _, err := r.qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, WRID: 99,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 8}}}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	cqes := r.acq.Poll(10)
	if len(cqes) != 1 || cqes[0].Status != StatusSuccess {
		t.Fatalf("write completion: %+v", cqes)
	}
	return r.eng.Now().Sub(start)
}

func TestStallForDelaysExecution(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	base := writeLatency(t, r, src, dst)

	stall := 500 * sim.Microsecond
	r.na.StallFor(stall)
	stalled := writeLatency(t, r, src, dst)
	if stalled < stall || stalled > stall+2*base {
		t.Fatalf("stalled write took %v, want ~stall(%v)+%v", stalled, stall, base)
	}
	// The window has passed: next op runs at full speed again.
	after := writeLatency(t, r, src, dst)
	if after != base {
		t.Fatalf("post-stall write took %v, want %v", after, base)
	}
}

func TestStallForDelaysInbound(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	base := writeLatency(t, r, src, dst)

	// Stalling the RECEIVING NIC delays Rx processing of the request.
	stall := 300 * sim.Microsecond
	r.nb.StallFor(stall)
	stalled := writeLatency(t, r, src, dst)
	if stalled < stall-base || stalled > stall+2*base {
		t.Fatalf("rx-stalled write took %v, want ~%v", stalled, stall)
	}
}

func TestSetSlowdownScalesCosts(t *testing.T) {
	r := newRig(t)
	src := r.na.RegisterRAM(64, 0)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	base := writeLatency(t, r, src, dst)

	r.na.SetSlowdown(8)
	r.nb.SetSlowdown(8)
	slow := writeLatency(t, r, src, dst)
	if slow <= base {
		t.Fatalf("slowdown had no effect: %v vs %v", slow, base)
	}
	r.na.SetSlowdown(1)
	r.nb.SetSlowdown(1)
	restored := writeLatency(t, r, src, dst)
	if restored != base {
		t.Fatalf("slowdown did not restore: %v vs %v", restored, base)
	}
}

func TestStallDeterministic(t *testing.T) {
	run := func() sim.Duration {
		eng := sim.NewEngine()
		net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(7))
		na, nb := NewNIC(eng, net, Config{}), NewNIC(eng, net, Config{})
		acq := na.CreateCQ()
		qa := na.CreateQP(acq, na.CreateCQ(), 8, 1)
		qb := nb.CreateQP(nb.CreateCQ(), nb.CreateCQ(), 1, 8)
		Connect(qa, qb)
		src := na.RegisterRAM(64, 0)
		dst := nb.RegisterRAM(64, AccessRemoteWrite)
		na.StallFor(123 * sim.Microsecond)
		qa.PostSend(WQE{Opcode: OpWrite, Signaled: true, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 8}}})
		eng.Drain()
		return sim.Duration(eng.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("stalled runs diverged: %v vs %v", a, b)
	}
}
