package rdma

import (
	"testing"

	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// progRig is a two-NIC rig plus a timer CQ on the requester side.
func progRig(t *testing.T, period sim.Duration) (*rig, *CQ) {
	t.Helper()
	r := newRig(t)
	return r, r.na.CreateTimerCQ(period)
}

func putWord(mr *MemoryRegion, off int, v uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
	mr.Backing().WriteAt(off, b[:])
}

func getWord(mr *MemoryRegion, off int) uint64 {
	var b [8]byte
	mr.Backing().ReadAt(off, b[:])
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// Timer CQs tick on a fixed virtual-time grid, only while armed by a
// waiter, and count every tick — the deterministic clock source for
// NIC-side backoff.
func TestTimerCQGridTicks(t *testing.T) {
	r, tcq := progRig(t, 10*sim.Microsecond)
	if tcq.TimerPeriod() != 10*sim.Microsecond {
		t.Fatalf("period = %v", tcq.TimerPeriod())
	}
	// No waiters: the timer stays parked.
	r.eng.RunFor(100 * sim.Microsecond)
	if n := r.na.Counters().TimerTicks; n != 0 {
		t.Fatalf("unarmed timer ticked %d times", n)
	}
	// A WAIT for 2 ticks arms it; ticks land on the absolute grid.
	if _, err := r.qa.PostSend(WQE{Opcode: OpWait, WaitCQ: tcq.ID(), WaitCount: 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := r.qa.PostSend(WQE{Opcode: OpNop, Signaled: true, WRID: 7}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	if n := r.na.Counters().TimerTicks; n != 2 {
		t.Fatalf("ticks = %d, want 2", n)
	}
	if cqes := r.acq.Poll(4); len(cqes) != 1 || cqes[0].WRID != 7 {
		t.Fatalf("completions = %+v", cqes)
	}
	// Grid alignment: armed at t=100µs, ticks at 110µs and 120µs.
	if now := r.eng.Now(); now != sim.Time(0).Add(120*sim.Microsecond) {
		t.Fatalf("drained at %v, want the 120µs grid tick", now)
	}
}

func TestCreateTimerCQRejectsZeroPeriod(t *testing.T) {
	r := newRig(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero period accepted")
		}
	}()
	r.na.CreateTimerCQ(0)
}

// guardProgram posts GUARD → WRITE → NOP and returns (dst, obs) regions.
func guardProgram(t *testing.T, r *rig, word, want, mask uint64) (*MemoryRegion, *MemoryRegion) {
	t.Helper()
	g := r.na.RegisterRAM(16, AccessLocalWrite)
	obs := r.na.RegisterRAM(16, AccessLocalWrite)
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	putWord(g, 0, word)
	src.Backing().WriteAt(0, []byte("guarded"))
	ws := []WQE{
		{Opcode: OpGuard, Signaled: true, WRID: 1, Imm: want, Swap: 0,
			ProgA: 1, ProgB: mask,
			SGEs: []SGE{{LKey: g.LKey(), Offset: 0, Length: 8}, {LKey: obs.LKey(), Offset: 0, Length: 8}}},
		{Opcode: OpWrite, Signaled: true, WRID: 2, RKey: dst.RKey(), RAddr: 0,
			SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 7}}},
		{Opcode: OpNop, Signaled: true, WRID: 3},
	}
	if _, err := r.qa.PostSendBatch(ws); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	return dst, obs
}

func TestGuardMatchExecutes(t *testing.T) {
	r := newRig(t)
	dst, obs := guardProgram(t, r, 42, 42, 0)
	cqes := r.acq.Poll(8)
	if len(cqes) != 3 {
		t.Fatalf("completions = %d, want 3", len(cqes))
	}
	if cqes[0].Status != StatusSuccess || cqes[0].Imm != 42 {
		t.Fatalf("guard CQE %+v", cqes[0])
	}
	if cqes[1].Status != StatusSuccess {
		t.Fatalf("guarded write CQE %+v", cqes[1])
	}
	got := make([]byte, 7)
	dst.Backing().ReadAt(0, got)
	if string(got) != "guarded" {
		t.Fatalf("guarded write missing: %q", got)
	}
	if v := getWord(obs, 0); v != 42 {
		t.Fatalf("observed scatter = %d", v)
	}
}

func TestGuardMismatchSkips(t *testing.T) {
	r := newRig(t)
	dst, obs := guardProgram(t, r, 41, 42, 0)
	cqes := r.acq.Poll(8)
	if len(cqes) != 3 {
		t.Fatalf("completions = %d, want 3 (skipped ops still complete)", len(cqes))
	}
	// The guard reports the mismatch with the observed value; the skipped
	// WRITE delivers PredFail (keeping downstream WAIT counts constant);
	// the op after the skip range runs normally.
	if cqes[0].Status != StatusPredFail || cqes[0].Imm != 41 {
		t.Fatalf("guard CQE %+v", cqes[0])
	}
	if cqes[1].Status != StatusPredFail || cqes[1].WRID != 2 {
		t.Fatalf("skipped write CQE %+v", cqes[1])
	}
	if cqes[2].Status != StatusSuccess || cqes[2].WRID != 3 {
		t.Fatalf("post-skip CQE %+v", cqes[2])
	}
	var probe [1]byte
	dst.Backing().ReadAt(0, probe[:])
	if probe[0] != 0 {
		t.Fatal("guarded write executed despite mismatch")
	}
	// The observed value is exported even on mismatch — that is how chained
	// programs accumulate result maps.
	if v := getWord(obs, 0); v != 41 {
		t.Fatalf("observed scatter = %d", v)
	}
}

func TestGuardMaskedCompare(t *testing.T) {
	r := newRig(t)
	// Only the low byte participates: 0xAB01 matches want 0x01 under 0xFF.
	dst, _ := guardProgram(t, r, 0xAB01, 0x01, 0xFF)
	got := make([]byte, 7)
	dst.Backing().ReadAt(0, got)
	if string(got) != "guarded" {
		t.Fatal("masked guard did not match")
	}
}

// condRearmProgram posts WAIT(timer) → CondRearm(exit, budget) and returns
// the exit and budget regions. The CondRearm falls through on exit.
func condRearmProgram(t *testing.T, r *rig, tcq *CQ, exitVal, budget uint64, cap uint64) (*MemoryRegion, *MemoryRegion) {
	t.Helper()
	exit := r.na.RegisterRAM(16, AccessLocalWrite)
	bud := r.na.RegisterRAM(16, AccessLocalWrite)
	putWord(exit, 0, exitVal)
	putWord(bud, 0, budget)
	base := r.qa.SQTable().Tail()
	ws := []WQE{
		{Opcode: OpWait, WaitCQ: tcq.ID(), WaitCount: 0, Imm: 0, Swap: cap},
		{Opcode: OpCondRearm, Signaled: true, WRID: 9, Imm: 0, Swap: 0,
			ProgA: uint64(base), ProgB: uint64(base) + 1, WaitCQ: 0,
			SGEs: []SGE{{LKey: exit.LKey(), Offset: 0, Length: 8}, {LKey: bud.LKey(), Offset: 0, Length: 8}}},
	}
	if _, err := r.qa.PostSendBatch(ws); err != nil {
		t.Fatal(err)
	}
	return exit, bud
}

// The self-rearming loop: retries silently with doubling timer backoff,
// then exits with the observed value once the exit word matches.
func TestCondRearmRetriesWithCappedBackoff(t *testing.T) {
	r, tcq := progRig(t, 10*sim.Microsecond)
	exit, bud := condRearmProgram(t, r, tcq, 1, 10, 4)
	// Attempts run at t=0 (wait 0), 10µs (1 tick), 30µs (2 ticks), 70µs
	// (4 ticks, capped). Flip the word at 35µs → the 70µs attempt exits.
	r.eng.Schedule(35*sim.Microsecond, func() { putWord(exit, 0, 0) })
	r.eng.Drain()
	cqes := r.acq.Poll(4)
	if len(cqes) != 1 {
		t.Fatalf("completions = %d, want 1 (retries are silent)", len(cqes))
	}
	if cqes[0].Status != StatusSuccess || cqes[0].Imm != 0 || cqes[0].Opcode != OpCondRearm {
		t.Fatalf("final CQE %+v", cqes[0])
	}
	if left := getWord(bud, 0); left != 7 {
		t.Fatalf("budget left = %d, want 7 (3 retries consumed)", left)
	}
	if n := r.na.Counters().TimerTicks; n != 7 {
		t.Fatalf("timer ticks = %d, want 1+2+4", n)
	}
}

func TestCondRearmExhaustsBudget(t *testing.T) {
	r, tcq := progRig(t, 10*sim.Microsecond)
	_, bud := condRearmProgram(t, r, tcq, 1, 2, 4)
	r.eng.Drain()
	cqes := r.acq.Poll(4)
	if len(cqes) != 1 || cqes[0].Status != StatusRetryExhausted || cqes[0].Imm != 1 {
		t.Fatalf("completions = %+v, want retry-exhausted with observed=1", cqes)
	}
	if left := getWord(bud, 0); left != 0 {
		t.Fatalf("budget left = %d, want 0", left)
	}
	// The queue survives exhaustion: the program exited, it didn't fault.
	if _, err := r.qa.PostSend(WQE{Opcode: OpNop, Signaled: true, WRID: 5}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	if cqes := r.acq.Poll(4); len(cqes) != 1 || cqes[0].WRID != 5 {
		t.Fatalf("post-exhaustion op: %+v", cqes)
	}
}

// A malformed program that can never reach a data op, WAIT, or gate (a
// CondRearm branching to itself with no backoff slot) must fault the QP
// instead of hanging the simulation.
func TestRunawayProgramFaultsQP(t *testing.T) {
	r := newRig(t)
	exit := r.na.RegisterRAM(16, AccessLocalWrite)
	bud := r.na.RegisterRAM(16, AccessLocalWrite)
	putWord(exit, 0, 1)            // never matches want 0
	putWord(bud, 0, uint64(1)<<40) // effectively unbounded budget
	base := r.qa.SQTable().Tail()
	if _, err := r.qa.PostSend(WQE{
		Opcode: OpCondRearm, Signaled: true, WRID: 1, Imm: 0,
		ProgA: uint64(base), ProgB: 0, WaitCQ: 0,
		SGEs: []SGE{{LKey: exit.LKey(), Offset: 0, Length: 8}, {LKey: bud.LKey(), Offset: 0, Length: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	if _, err := r.qa.PostSend(WQE{Opcode: OpNop}); err != ErrQPState {
		t.Fatalf("post after runaway = %v, want ErrQPState", err)
	}
}

// OpMaskFAdd over the wire: the field-masked add applies atomically at the
// responder and always returns the pre-op word.
func TestMaskFAddWire(t *testing.T) {
	r := newRig(t)
	dst := r.nb.RegisterRAM(64, AccessRemoteAtomic)
	res := r.na.RegisterRAM(16, AccessLocalWrite)
	old := uint64(0xAB00_0000_0000_0005)
	putWord(dst, 0, old)

	// Unconditional masked add: low 16 bits advance, the rest is untouched.
	if _, err := r.qa.PostSend(WQE{
		Opcode: OpMaskFAdd, Signaled: true, WRID: 1,
		RKey: dst.RKey(), RAddr: 0, Imm: 3, Swap: 0xFFFF,
		SGEs: []SGE{{LKey: res.LKey(), Offset: 0, Length: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	cqes := r.acq.Poll(4)
	if len(cqes) != 1 || cqes[0].Status != StatusSuccess || cqes[0].Imm != old {
		t.Fatalf("fadd CQE %+v, want Imm=old", cqes)
	}
	if w := getWord(dst, 0); w != old+3 {
		t.Fatalf("word = %#x, want low field advanced", w)
	}
	if v := getWord(res, 0); v != old {
		t.Fatalf("scatter = %#x, want pre-op word", v)
	}

	// Guarded: the top bit is set, so guard want=0 mask=topbit suppresses
	// the add — the word is returned unchanged.
	if _, err := r.qa.PostSend(WQE{
		Opcode: OpMaskFAdd, Signaled: true, WRID: 2,
		RKey: dst.RKey(), RAddr: 0, Imm: 1, Swap: 0xFFFF,
		ProgA: 0, ProgB: 1 << 63,
		SGEs: []SGE{{LKey: res.LKey(), Offset: 0, Length: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	if w := getWord(dst, 0); w != old+3 {
		t.Fatalf("guard-suppressed add changed the word: %#x", w)
	}
	if v := getWord(res, 0); v != old+3 {
		t.Fatalf("guarded fadd scatter = %#x, want current word", v)
	}
}

// Determinism: the same program produces bit-identical tick counts and
// completion times across runs (the timer grid is virtual-time-anchored,
// not arrival-anchored).
func TestProgramDeterministic(t *testing.T) {
	runOnce := func() (sim.Time, uint64, uint64) {
		eng := sim.NewEngine()
		net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
		na := NewNIC(eng, net, Config{})
		nb := NewNIC(eng, net, Config{})
		acq, arq := na.CreateCQ(), na.CreateCQ()
		bcq, brq := nb.CreateCQ(), nb.CreateCQ()
		qa := na.CreateQP(acq, arq, 64, 64)
		qb := nb.CreateQP(bcq, brq, 64, 64)
		Connect(qa, qb)
		r := &rig{eng: eng, net: net, na: na, nb: nb, qa: qa, qb: qb, acq: acq, bcq: bcq, arq: arq, brq: brq}
		tcq := na.CreateTimerCQ(7 * sim.Microsecond)
		exit, _ := condRearmProgram(t, r, tcq, 1, 20, 8)
		eng.Schedule(100*sim.Microsecond, func() { putWord(exit, 0, 0) })
		eng.Drain()
		return eng.Now(), na.Counters().TimerTicks, na.Counters().ProgBranches
	}
	t1, ticks1, br1 := runOnce()
	t2, ticks2, br2 := runOnce()
	if t1 != t2 || ticks1 != ticks2 || br1 != br2 {
		t.Fatalf("nondeterministic program: (%v,%d,%d) vs (%v,%d,%d)", t1, ticks1, br1, t2, ticks2, br2)
	}
}
