package rdma

import (
	"fmt"

	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// QPState tracks queue-pair health.
type QPState uint8

// Queue pair states (reduced from the verbs state machine: a created QP is
// ready once connected, and any protection or RNR fault moves it to error).
const (
	QPCreated QPState = iota
	QPReady
	QPError
)

func (s QPState) String() string {
	switch s {
	case QPCreated:
		return "created"
	case QPReady:
		return "ready"
	case QPError:
		return "error"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// pendingReq tracks an initiated request awaiting its remote response.
type pendingReq struct {
	wqe WQE
	seq uint64 // execution order for in-order completion delivery
}

// QP is a queue pair. Its send and receive queues are WQETables whose slots
// live in registered memory; HyperLoop group setup shares the send table's
// rkey so that upstream nodes can rewrite pre-posted descriptors.
type QP struct {
	qpn    uint32
	nic    *NIC
	sq     *WQETable
	rq     *WQETable
	sendCQ *CQ
	recvCQ *CQ
	state  QPState

	peerNode fabric.NodeID
	peerQPN  uint32
	loopback bool
	srq      *SRQ // if set, inbound SEND/WRITE_IMM consume from the shared pool

	sqBusy       bool
	dbPending    int               // doorbell rings not yet charged into a WQE initiation
	waiting      bool              // head WAIT registered with a CQ
	waitConsumed map[uint32]uint64 // cumulative completions consumed per CQ
	pending      map[uint64]pendingReq
	nextReqID    uint64
	inFlight     int

	// Send-side completions are delivered strictly in WQE order, as real
	// RC queue pairs guarantee: a fast op (NOP, local atomic) posted after
	// a slower in-flight one must not surface its CQE first — HyperLoop's
	// WAIT chains depend on this.
	execSeq    uint64
	deliverSeq uint64
	reorder    map[uint64]func()

	// rxFree serializes responder-side processing: inbound requests on a
	// QP execute in arrival (PSN) order, so a cheap request (0-byte READ)
	// cannot overtake an expensive one (large WRITE DMA) — gFLUSH's
	// flush-after-write guarantee depends on this.
	rxFree sim.Time
}

// deliverInOrder runs fn once all earlier send-side completions of this QP
// have been delivered.
func (q *QP) deliverInOrder(seq uint64, fn func()) {
	if q.reorder == nil {
		q.reorder = make(map[uint64]func())
	}
	q.reorder[seq] = fn
	for {
		next, ok := q.reorder[q.deliverSeq]
		if !ok {
			return
		}
		delete(q.reorder, q.deliverSeq)
		q.deliverSeq++
		next()
	}
}

// QPN returns the queue pair number.
func (q *QP) QPN() uint32 { return q.qpn }

// State returns the queue pair state.
func (q *QP) State() QPState { return q.state }

// SendCQ returns the CQ receiving send-side completions.
func (q *QP) SendCQ() *CQ { return q.sendCQ }

// RecvCQ returns the CQ receiving receive-side completions.
func (q *QP) RecvCQ() *CQ { return q.recvCQ }

// SQTable exposes the send queue's slot table (registered memory) for
// HyperLoop's descriptor manipulation.
func (q *QP) SQTable() *WQETable { return q.sq }

// RQTable exposes the receive queue's slot table.
func (q *QP) RQTable() *WQETable { return q.rq }

// NIC returns the owning NIC.
func (q *QP) NIC() *NIC { return q.nic }

// PostOption modifies posting behaviour.
type PostOption uint8

// Posting options.
const (
	// HoldOwnership posts the WQE host-owned: the NIC stalls at it until
	// ownership is granted — either locally via Doorbell or remotely by a
	// write that sets the ownership flag (HyperLoop metadata scatter).
	// This models the paper's libmlx4 modification (§4.1).
	HoldOwnership PostOption = 1 << iota
	// RawOwnership takes each WQE's HWOwned field as the caller set it
	// instead of forcing it. PostSendBatch callers use it to fuse chains
	// that mix armed descriptors (WAIT, SEND) with held placeholders.
	RawOwnership
)

// ring records one doorbell: the counter ticks, and when the NIC charges a
// per-ring cost it accrues against the next WQE this send queue initiates.
func (q *QP) ring() {
	q.nic.counters.Doorbells++
	if q.nic.cfg.DoorbellCost > 0 {
		q.dbPending++
	}
	q.nic.kick(q)
}

// takeDoorbellCharge drains the accrued per-ring cost for the WQE now being
// initiated.
func (q *QP) takeDoorbellCharge() sim.Duration {
	if q.dbPending == 0 {
		return 0
	}
	d := sim.Duration(q.dbPending) * q.nic.cfg.DoorbellCost
	q.dbPending = 0
	return d
}

// PostSend appends a work request to the send queue and kicks the NIC.
// It returns the absolute slot index (use SQTable().SlotOffset to derive
// the byte offset remote manipulators must target).
func (q *QP) PostSend(w WQE, opts ...PostOption) (int, error) {
	if q.state == QPError {
		return 0, ErrQPState
	}
	if len(w.SGEs) > MaxSGE {
		return 0, ErrTooManySGEs
	}
	raw := false
	for _, o := range opts {
		if o&RawOwnership != 0 {
			raw = true
		}
	}
	if !raw {
		w.HWOwned = true
		for _, o := range opts {
			if o&HoldOwnership != 0 {
				w.HWOwned = false
			}
		}
	}
	idx, err := q.sq.post(&w)
	if err != nil {
		return 0, err
	}
	q.ring()
	return idx, nil
}

// PostSendBatch appends a run of work requests and rings the doorbell once
// for the whole run — the multi-op fusion path (Storm-style): N descriptors
// written back to back, one MMIO kick, so any configured DoorbellCost is
// paid once instead of N times. Options apply to every WQE in the batch.
// On a mid-batch post failure the already-posted prefix stays posted (and
// rung) and the error is returned; the caller sees which index failed.
func (q *QP) PostSendBatch(ws []WQE, opts ...PostOption) (first int, err error) {
	if q.state == QPError {
		return 0, ErrQPState
	}
	hwOwned, raw := true, false
	for _, o := range opts {
		if o&HoldOwnership != 0 {
			hwOwned = false
		}
		if o&RawOwnership != 0 {
			raw = true
		}
	}
	first = -1
	posted := 0
	for _, w := range ws {
		if len(w.SGEs) > MaxSGE {
			err = ErrTooManySGEs
			break
		}
		if !raw {
			w.HWOwned = hwOwned
		}
		var idx int
		idx, err = q.sq.post(&w)
		if err != nil {
			break
		}
		if first < 0 {
			first = idx
		}
		posted++
	}
	if posted > 0 {
		q.ring()
	}
	if err != nil {
		return first, fmt.Errorf("rdma: batch post failed at wqe %d: %w", posted, err)
	}
	return first, nil
}

// PostRecv appends a receive request. Its SGEs say where inbound SEND
// payloads scatter — in HyperLoop, directly into WQE table slots and
// metadata staging regions.
func (q *QP) PostRecv(w WQE) (int, error) {
	if q.state == QPError {
		return 0, ErrQPState
	}
	if len(w.SGEs) > MaxSGE {
		return 0, ErrTooManySGEs
	}
	w.Opcode = OpRecv
	w.HWOwned = true
	return q.rq.post(&w)
}

// Doorbell grants NIC ownership of the send-queue slot at absolute index
// idx (sets the ownership flag in the encoded image) and kicks the queue.
// This is what the modified driver does after the host finishes editing a
// held descriptor.
func (q *QP) Doorbell(idx int) {
	// Bookkeeping first: the flag write below re-kicks the queue via the
	// table region's onWrite hook, and the ring charge must be visible to
	// that evaluation.
	q.nic.counters.Doorbells++
	if q.nic.cfg.DoorbellCost > 0 {
		q.dbPending++
	}
	off := q.sq.SlotOffset(idx) + offFlags
	var b [1]byte
	q.sq.mr.backing.ReadAt(off, b[:])
	b[0] |= flagHWOwned
	q.sq.mr.backing.WriteAt(off, b[:])
	q.nic.kick(q)
}

// enterError transitions the QP to error state and flushes outstanding
// work with StatusFlushErr completions.
func (q *QP) enterError() {
	if q.state == QPError {
		return
	}
	q.state = QPError
	for id, p := range q.pending {
		delete(q.pending, id)
		if p.wqe.Signaled {
			q.sendCQ.push(CQE{WRID: p.wqe.WRID, Opcode: p.wqe.Opcode, Status: StatusFlushErr, QPN: q.qpn})
		}
	}
	for {
		wqe, ok := q.sq.peek()
		if !ok {
			break
		}
		q.sq.advance()
		if wqe.Signaled {
			q.sendCQ.push(CQE{WRID: wqe.WRID, Opcode: wqe.Opcode, Status: StatusFlushErr, QPN: q.qpn})
		}
	}
	for {
		wqe, ok := q.rq.peek()
		if !ok {
			break
		}
		q.rq.advance()
		q.recvCQ.push(CQE{WRID: wqe.WRID, Opcode: OpRecv, Status: StatusFlushErr, QPN: q.qpn})
	}
}
