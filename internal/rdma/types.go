// Package rdma emulates the subset of InfiniBand/RoCE verbs that HyperLoop
// builds on, at the level of NIC behaviour rather than wire format: memory
// regions with lkey/rkey protection, queue pairs whose work queues live in
// registered (and therefore remotely writable) memory, completion queues,
// one-sided READ/WRITE/atomic operations, two-sided SEND/RECV, and the
// CORE-Direct style WAIT operation that lets one queue's progress trigger
// another's without host involvement.
//
// Two deliberate departures from stock verbs implement the paper's §4
// driver modifications:
//
//   - Work-queue entries are plain bytes in a registerable region
//     (WQETable), so a remote node can rewrite a pre-posted WQE's memory
//     descriptor — the paper's "remote work request manipulation".
//   - PostSend can withhold the hardware-ownership bit (HoldOwnership), so
//     a pre-posted WQE stays inert until some other write — local doorbell
//     or remote metadata scatter — grants ownership.
//
// Timing: every NIC action is charged on the shared discrete-event engine
// (per-WQE processing, DMA at a configured rate, wire time via fabric), so
// latency distributions emerge from the model rather than being scripted.
package rdma

import (
	"errors"
	"fmt"

	"hyperloop/internal/sim"
)

// Opcode identifies a work-request type.
type Opcode uint8

// Work-request opcodes. OpWait is the CORE-Direct cross-queue trigger; the
// paper repurposes it for chain forwarding (§4.1). OpNop occupies a slot
// without any effect — gCAS uses it to skip replicas excluded by the
// execute map (§4.2).
const (
	OpInvalid   Opcode = iota
	OpSend             // two-sided send, consumes a remote RECV
	OpRecv             // receive buffer posting
	OpWrite            // one-sided RDMA write
	OpWriteImm         // RDMA write with immediate; consumes a remote RECV
	OpRead             // one-sided RDMA read (0-byte READ doubles as gFLUSH)
	OpCompSwap         // 8-byte compare-and-swap atomic
	OpWait             // wait for N completions on a CQ, then proceed
	OpNop              // no-op placeholder
	OpGuard            // predicated skip: execute following slots only if a local word matches
	OpCondRearm        // bounded retry loop: branch back and re-arm, or exit, on a local word
	OpMaskFAdd         // masked fetch-and-add atomic, optionally guarded (ConnectX extended atomics)
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_IMM"
	case OpRead:
		return "READ"
	case OpCompSwap:
		return "CMP_SWAP"
	case OpWait:
		return "WAIT"
	case OpNop:
		return "NOP"
	case OpGuard:
		return "GUARD"
	case OpCondRearm:
		return "COND_REARM"
	case OpMaskFAdd:
		return "MASK_FADD"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Access flags gate what remote peers may do to a memory region.
type Access uint8

// Memory region access permissions, mirroring IBV_ACCESS_*.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteWrite
	AccessRemoteRead
	AccessRemoteAtomic
)

// Status is a completion status code.
type Status uint8

// Completion statuses, mirroring ibv_wc_status values we model.
const (
	StatusSuccess Status = iota
	StatusLocalProtErr
	StatusRemoteAccessErr
	StatusRemoteInvalidRkey
	StatusLengthErr
	StatusRNR            // responder had no RECV posted
	StatusFlushErr       // WQE flushed because the QP entered error state
	StatusAtomicMiss     // CAS compare failed (reported, not an error state)
	StatusPredFail       // slot skipped by a failed OpGuard predicate (not an error state)
	StatusRetryExhausted // OpCondRearm gave up: retry budget ran out (not an error state)
)

func (s Status) String() string {
	switch s {
	case StatusSuccess:
		return "success"
	case StatusLocalProtErr:
		return "local-protection-error"
	case StatusRemoteAccessErr:
		return "remote-access-error"
	case StatusRemoteInvalidRkey:
		return "remote-invalid-rkey"
	case StatusLengthErr:
		return "length-error"
	case StatusRNR:
		return "receiver-not-ready"
	case StatusFlushErr:
		return "flushed"
	case StatusAtomicMiss:
		return "atomic-compare-miss"
	case StatusPredFail:
		return "predicate-failed"
	case StatusRetryExhausted:
		return "retry-exhausted"
	default:
		return fmt.Sprintf("status(%d)", uint8(s))
	}
}

// Errors returned by posting and registration.
var (
	ErrQPState     = errors.New("rdma: queue pair not in a postable state")
	ErrQueueFull   = errors.New("rdma: work queue full")
	ErrBadSGE      = errors.New("rdma: scatter/gather entry outside memory region")
	ErrBadKey      = errors.New("rdma: unknown or mismatched memory key")
	ErrTooManySGEs = errors.New("rdma: too many scatter/gather entries")
)

// Config holds NIC timing parameters. Zero values take defaults calibrated
// to a ConnectX-3-class NIC.
type Config struct {
	WQEProcess  sim.Duration // per-WQE fetch/decode/initiate cost (default 150ns)
	RxProcess   sim.Duration // per inbound message processing cost (default 150ns)
	DMAGbps     float64      // host-memory DMA rate (default 200)
	AtomicOp    sim.Duration // execution cost of an atomic op (default 250ns)
	CacheFlush  sim.Duration // NVM NIC-cache drain cost per flush (default 900ns)
	MaxInlineWQ int          // WQE slots per queue (default 1024)
	// DoorbellCost is the NIC-side cost of servicing one doorbell ring (the
	// MMIO write plus the PCIe round to fetch the producer index). Each ring
	// is charged into the first WQE the send queue initiates afterwards, so
	// PostSendBatch — one ring for N descriptors — amortizes it while N
	// individual PostSends pay it N times. The default 0 preserves the
	// legacy timing of every pre-existing experiment exactly.
	DoorbellCost sim.Duration
}

func (c *Config) fill() {
	if c.WQEProcess <= 0 {
		c.WQEProcess = 150
	}
	if c.RxProcess <= 0 {
		c.RxProcess = 150
	}
	if c.DMAGbps <= 0 {
		c.DMAGbps = 200
	}
	if c.AtomicOp <= 0 {
		c.AtomicOp = 250
	}
	if c.CacheFlush <= 0 {
		c.CacheFlush = 900
	}
	if c.MaxInlineWQ <= 0 {
		c.MaxInlineWQ = 1024
	}
}

// dmaTime returns the DMA transfer time for n bytes.
func (c *Config) dmaTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	return sim.Duration(float64(n*8) / c.DMAGbps)
}
