package rdma

import (
	"testing"

	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

// dbRig wires two NICs with a configurable requester-side doorbell cost.
func dbRig(t *testing.T, cost sim.Duration) *rig {
	t.Helper()
	eng := sim.NewEngine()
	net := fabric.New(eng, fabric.Config{JitterFrac: -1}, sim.NewRand(1))
	na := NewNIC(eng, net, Config{DoorbellCost: cost})
	nb := NewNIC(eng, net, Config{})
	r := &rig{eng: eng, net: net, na: na, nb: nb}
	r.acq, r.arq = na.CreateCQ(), na.CreateCQ()
	r.bcq, r.brq = nb.CreateCQ(), nb.CreateCQ()
	r.qa = na.CreateQP(r.acq, r.arq, 64, 64)
	r.qb = nb.CreateQP(r.bcq, r.brq, 64, 64)
	Connect(r.qa, r.qb)
	return r
}

func dbWrite(t *testing.T, r *rig, dst *MemoryRegion, src *MemoryRegion, wrid uint64) WQE {
	t.Helper()
	return WQE{
		Opcode: OpWrite, Signaled: true, WRID: wrid,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: 16}},
	}
}

// runWrites drives n WRITEs through the rig, batched or one at a time, and
// returns the virtual completion time of the last one.
func runWrites(t *testing.T, r *rig, n int, batch bool) sim.Time {
	t.Helper()
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	if batch {
		ws := make([]WQE, n)
		for i := range ws {
			ws[i] = dbWrite(t, r, dst, src, uint64(i+1))
		}
		if _, err := r.qa.PostSendBatch(ws); err != nil {
			t.Fatal(err)
		}
	} else {
		for i := 0; i < n; i++ {
			if _, err := r.qa.PostSend(dbWrite(t, r, dst, src, uint64(i+1))); err != nil {
				t.Fatal(err)
			}
		}
	}
	r.eng.Drain()
	cqes := r.acq.Poll(n + 1)
	if len(cqes) != n {
		t.Fatalf("completions = %d, want %d", len(cqes), n)
	}
	for _, c := range cqes {
		if c.Status != StatusSuccess {
			t.Fatalf("completion %+v", c)
		}
	}
	return r.eng.Now()
}

// A batch of N WQEs rings once; N individual posts ring N times.
func TestPostSendBatchRingsOnce(t *testing.T) {
	r := dbRig(t, 0)
	runWrites(t, r, 8, true)
	if got := r.na.Counters().Doorbells; got != 1 {
		t.Fatalf("batch doorbells = %d, want 1", got)
	}

	r2 := dbRig(t, 0)
	runWrites(t, r2, 8, false)
	if got := r2.na.Counters().Doorbells; got != 8 {
		t.Fatalf("individual doorbells = %d, want 8", got)
	}
}

// With DoorbellCost = 0 (the default for every legacy experiment), batched
// and individual posting complete at the identical virtual time: coalescing
// changes nothing until a cost is configured.
func TestDoorbellCostZeroTimingUnchanged(t *testing.T) {
	tb := runWrites(t, dbRig(t, 0), 8, true)
	ti := runWrites(t, dbRig(t, 0), 8, false)
	if tb != ti {
		t.Fatalf("batch end %v != individual end %v with zero doorbell cost", tb, ti)
	}
}

// With a nonzero DoorbellCost, the batch pays it once and finishes exactly
// (N-1)*cost sooner than N individual posts.
func TestDoorbellCoalescingSavesCost(t *testing.T) {
	const cost = 200 * sim.Nanosecond
	const n = 8
	tb := runWrites(t, dbRig(t, cost), n, true)
	ti := runWrites(t, dbRig(t, cost), n, false)
	if want := tb.Add((n - 1) * cost); ti != want {
		t.Fatalf("individual end %v, want batch end %v + %d rings = %v", ti, tb, n-1, want)
	}
}

// A mid-batch overflow posts (and rings) the fitting prefix and reports the
// failing index; the queue is not left silently half-armed.
func TestPostSendBatchOverflow(t *testing.T) {
	r := dbRig(t, 0)
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	small := r.na.CreateQP(r.acq, r.arq, 4, 4)
	qb2 := r.nb.CreateQP(r.bcq, r.brq, 8, 8)
	Connect(small, qb2)
	ws := make([]WQE, 6)
	for i := range ws {
		ws[i] = dbWrite(t, r, dst, src, uint64(i+1))
	}
	if _, err := small.PostSendBatch(ws); err == nil {
		t.Fatal("expected overflow error")
	}
	r.eng.Drain()
	if got := len(r.acq.Poll(10)); got == 0 {
		t.Fatal("posted prefix should still execute")
	}
}

// HoldOwnership batches stay inert until the per-slot doorbell grants
// ownership, matching single-post semantics.
func TestPostSendBatchHoldOwnership(t *testing.T) {
	r := dbRig(t, 0)
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	ws := []WQE{dbWrite(t, r, dst, src, 1), dbWrite(t, r, dst, src, 2)}
	first, err := r.qa.PostSendBatch(ws, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Drain()
	if got := len(r.acq.Poll(10)); got != 0 {
		t.Fatalf("held batch completed %d WQEs before doorbell", got)
	}
	r.qa.Doorbell(first)
	r.qa.Doorbell(first + 1)
	r.eng.Drain()
	if got := len(r.acq.Poll(10)); got != 2 {
		t.Fatalf("granted batch completions = %d, want 2", got)
	}
}

// A remote WQE rewrite landing after PostSendBatch but BEFORE the per-slot
// doorbell grant must be observed by the NIC: the doorbell is the commit
// point, and Hyperloop's remote manipulation depends on patches applied to
// held slots taking effect.
func TestRewriteBeforeGrantObserved(t *testing.T) {
	r := dbRig(t, 0)
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	pay := []byte("patched-before-db")
	src.Backing().WriteAt(0, pay)

	first, err := r.qa.PostSendBatch([]WQE{{
		Opcode: OpWrite, Signaled: true, WRID: 1,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: uint32(len(pay))}},
	}}, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}
	// The rewrite: redirect the WRITE's remote address while the slot is
	// still host-owned (inert).
	r.qa.SQTable().PatchSlotU64(first, offRAddr, 32)
	r.qa.Doorbell(first)
	r.eng.Drain()
	if got := len(r.acq.Poll(4)); got != 1 {
		t.Fatalf("completions = %d, want 1", got)
	}
	got := make([]byte, len(pay))
	dst.Backing().ReadAt(32, got)
	if string(got) != string(pay) {
		t.Fatalf("pre-grant rewrite ignored: dst@32 = %q", got)
	}
	dst.Backing().ReadAt(0, got)
	if string(got) == string(pay) {
		t.Fatal("write landed at the stale pre-rewrite address too")
	}
}

// A rewrite landing AFTER the doorbell grant must NOT be observed: the NIC
// captures the descriptor at the grant (the doorbell synchronously peeks
// and schedules the op), and a later patch changes only the next use of
// the slot — matching real hardware, where the fetched WQE is immutable.
func TestRewriteAfterGrantIgnored(t *testing.T) {
	r := dbRig(t, 0)
	src := r.na.RegisterRAM(64, AccessLocalWrite)
	dst := r.nb.RegisterRAM(64, AccessRemoteWrite)
	pay := []byte("patched-after-db")
	src.Backing().WriteAt(0, pay)

	first, err := r.qa.PostSendBatch([]WQE{{
		Opcode: OpWrite, Signaled: true, WRID: 1,
		RKey: dst.RKey(), RAddr: 0,
		SGEs: []SGE{{LKey: src.LKey(), Offset: 0, Length: uint32(len(pay))}},
	}}, HoldOwnership)
	if err != nil {
		t.Fatal(err)
	}
	r.qa.Doorbell(first)
	// Too late: the op is already in flight with the captured image.
	r.qa.SQTable().PatchSlotU64(first, offRAddr, 32)
	r.eng.Drain()
	if got := len(r.acq.Poll(4)); got != 1 {
		t.Fatalf("completions = %d, want 1", got)
	}
	got := make([]byte, len(pay))
	dst.Backing().ReadAt(0, got)
	if string(got) != string(pay) {
		t.Fatalf("post-grant rewrite took effect retroactively: dst@0 = %q", got)
	}
	var probe [1]byte
	dst.Backing().ReadAt(32, probe[:])
	if probe[0] != 0 {
		t.Fatal("write landed at the post-grant patched address")
	}
}
