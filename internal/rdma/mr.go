package rdma

import (
	"fmt"

	"hyperloop/internal/nvm"
)

// Backing is the storage a memory region is registered over. Implementations
// decide durability semantics: RAM forgets on power failure tracking,
// NVM tracks NIC-cache dirtiness and supports Flush.
type Backing interface {
	// ReadAt copies len(dst) bytes starting at off into dst.
	ReadAt(off int, dst []byte)
	// WriteAt copies src to off. For NVM backings the bytes are volatile
	// (NIC cache) until Flush.
	WriteAt(off int, src []byte)
	// Flush makes [off, off+n) durable. No-op for RAM.
	Flush(off, n int)
	// Len returns the backing size in bytes.
	Len() int
}

// RAMBacking is plain volatile memory (client-side buffers, staging areas).
type RAMBacking struct{ buf []byte }

// NewRAMBacking allocates n bytes of volatile memory.
func NewRAMBacking(n int) *RAMBacking { return &RAMBacking{buf: make([]byte, n)} }

// ReadAt implements Backing.
func (r *RAMBacking) ReadAt(off int, dst []byte) { copy(dst, r.buf[off:off+len(dst)]) }

// WriteAt implements Backing.
func (r *RAMBacking) WriteAt(off int, src []byte) { copy(r.buf[off:off+len(src)], src) }

// Flush implements Backing (no durability concept for RAM).
func (r *RAMBacking) Flush(off, n int) {}

// Len implements Backing.
func (r *RAMBacking) Len() int { return len(r.buf) }

// Bytes exposes the raw buffer for local (CPU) access in tests and apps.
func (r *RAMBacking) Bytes() []byte { return r.buf }

// NVMBacking registers a window of an nvm.Device. NIC-path writes go through
// the device's volatile-cache model.
type NVMBacking struct {
	dev  *nvm.Device
	base int
	size int
}

// NewNVMBacking registers the window [base, base+size) of dev.
func NewNVMBacking(dev *nvm.Device, base, size int) *NVMBacking {
	if base < 0 || size < 0 || base+size > dev.Size() {
		panic(fmt.Sprintf("rdma: NVM window [%d,%d) outside device of %d", base, base+size, dev.Size()))
	}
	return &NVMBacking{dev: dev, base: base, size: size}
}

// ReadAt implements Backing.
func (b *NVMBacking) ReadAt(off int, dst []byte) { b.dev.ReadInto(b.base+off, dst) }

// WriteAt implements Backing: a NIC-path write, volatile until flushed.
func (b *NVMBacking) WriteAt(off int, src []byte) { b.dev.Write(b.base+off, src) }

// Flush implements Backing.
func (b *NVMBacking) Flush(off, n int) { b.dev.Flush(b.base+off, n) }

// Len implements Backing.
func (b *NVMBacking) Len() int { return b.size }

// Device returns the underlying NVM device.
func (b *NVMBacking) Device() *nvm.Device { return b.dev }

// Base returns the window's offset within the device.
func (b *NVMBacking) Base() int { return b.base }

// MemoryRegion is registered memory addressable by (key, offset). Offsets
// are region-relative, matching how the HyperLoop library computes remote
// descriptors.
type MemoryRegion struct {
	lkey    uint32
	rkey    uint32
	access  Access
	backing Backing
	// onWrite, if set, observes every NIC write into the region. WQE
	// tables use it to notice remotely-manipulated descriptors.
	onWrite func(off, n int)
}

// LKey returns the local access key.
func (m *MemoryRegion) LKey() uint32 { return m.lkey }

// RKey returns the remote access key.
func (m *MemoryRegion) RKey() uint32 { return m.rkey }

// Len returns the region size.
func (m *MemoryRegion) Len() int { return m.backing.Len() }

// Backing returns the registered storage.
func (m *MemoryRegion) Backing() Backing { return m.backing }

func (m *MemoryRegion) contains(off, n int) bool {
	return off >= 0 && n >= 0 && off+n <= m.backing.Len()
}

// write performs a NIC write with bounds already validated by the caller.
func (m *MemoryRegion) write(off int, src []byte) {
	m.backing.WriteAt(off, src)
	if m.onWrite != nil {
		m.onWrite(off, len(src))
	}
}

// read copies out of the region.
func (m *MemoryRegion) read(off int, dst []byte) {
	m.backing.ReadAt(off, dst)
}
