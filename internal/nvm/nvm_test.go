package nvm

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	d := New(1024)
	d.Write(100, []byte("hyperloop"))
	if got := d.Read(100, 9); string(got) != "hyperloop" {
		t.Fatalf("read back %q", got)
	}
}

func TestWriteIsVolatileUntilFlush(t *testing.T) {
	d := New(1024)
	d.Write(0, []byte("important"))
	if !d.IsDirty(0, 9) {
		t.Fatal("write not tracked dirty")
	}
	if got := d.DurableRead(0, 9); !bytes.Equal(got, make([]byte, 9)) {
		t.Fatalf("durable media contains unflushed data: %q", got)
	}
	d.PowerFail()
	if got := d.Read(0, 9); !bytes.Equal(got, make([]byte, 9)) {
		t.Fatalf("unflushed write survived power failure: %q", got)
	}
}

func TestFlushPersists(t *testing.T) {
	d := New(1024)
	d.Write(0, []byte("important"))
	if n := d.Flush(0, 9); n != 9 {
		t.Fatalf("flushed %d bytes, want 9", n)
	}
	if d.IsDirty(0, 9) {
		t.Fatal("flushed range still dirty")
	}
	d.PowerFail()
	if got := d.Read(0, 9); string(got) != "important" {
		t.Fatalf("flushed write lost on power failure: %q", got)
	}
}

func TestPartialFlush(t *testing.T) {
	d := New(1024)
	d.Write(0, []byte("aaaabbbb"))
	d.Flush(0, 4) // persist only the first half
	d.PowerFail()
	got := d.Read(0, 8)
	if string(got[:4]) != "aaaa" {
		t.Fatalf("flushed prefix lost: %q", got)
	}
	if string(got[4:]) == "bbbb" {
		t.Fatalf("unflushed suffix survived: %q", got)
	}
}

func TestStoreIsImmediatelyDurable(t *testing.T) {
	d := New(1024)
	d.Store(10, []byte("cpu-store"))
	d.PowerFail()
	if got := d.Read(10, 9); string(got) != "cpu-store" {
		t.Fatalf("CPU store not durable: %q", got)
	}
}

func TestStoreSupersedesDirtyRange(t *testing.T) {
	d := New(1024)
	d.Write(0, []byte("nic-write"))
	d.Store(0, []byte("cpu-write"))
	if d.IsDirty(0, 9) {
		t.Fatal("store left range dirty")
	}
	d.PowerFail()
	if got := d.Read(0, 9); string(got) != "cpu-write" {
		t.Fatalf("store lost: %q", got)
	}
}

func TestViewAndMarkDirty(t *testing.T) {
	d := New(64)
	v := d.View(0, 8)
	copy(v, "rdmapath")
	d.MarkDirty(0, 8)
	if got := d.Read(0, 8); string(got) != "rdmapath" {
		t.Fatalf("view write invisible: %q", got)
	}
	d.PowerFail()
	if got := d.Read(0, 8); string(got) == "rdmapath" {
		t.Fatal("dirty view write survived power failure")
	}
}

func TestFlushAllAndDirtyBytes(t *testing.T) {
	d := New(1024)
	d.Write(0, make([]byte, 100))
	d.Write(500, make([]byte, 50))
	if db := d.DirtyBytes(); db != 150 {
		t.Fatalf("dirty bytes = %d, want 150", db)
	}
	if n := d.FlushAll(); n != 150 {
		t.Fatalf("FlushAll persisted %d, want 150", n)
	}
	if d.DirtyBytes() != 0 {
		t.Fatal("dirty bytes after FlushAll")
	}
}

func TestOverlappingWritesMergeDirty(t *testing.T) {
	d := New(1024)
	d.Write(0, make([]byte, 10))
	d.Write(5, make([]byte, 10))
	if db := d.DirtyBytes(); db != 15 {
		t.Fatalf("merged dirty bytes = %d, want 15", db)
	}
	d.Write(20, make([]byte, 5))
	if db := d.DirtyBytes(); db != 20 {
		t.Fatalf("dirty bytes = %d, want 20", db)
	}
	// Adjacent intervals merge.
	d.Write(15, make([]byte, 5))
	if db := d.DirtyBytes(); db != 25 {
		t.Fatalf("adjacent dirty bytes = %d, want 25", db)
	}
}

func TestOutOfBoundsPanics(t *testing.T) {
	d := New(16)
	for _, fn := range []func(){
		func() { d.Write(10, make([]byte, 8)) },
		func() { d.Read(-1, 4) },
		func() { d.Flush(0, 17) },
		func() { d.View(16, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("out-of-bounds access did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStatsCounters(t *testing.T) {
	d := New(64)
	d.Write(0, []byte("abc"))
	d.Store(10, []byte("de"))
	d.Flush(0, 3)
	d.PowerFail()
	s := d.Stats()
	if s.Writes != 1 || s.Stores != 1 || s.Flushes != 1 || s.PowerFails != 1 {
		t.Fatalf("stats: %+v", s)
	}
	if s.BytesDirty != 3 || s.BytesSynced != 3 {
		t.Fatalf("byte stats: %+v", s)
	}
}

func TestEmptyWrite(t *testing.T) {
	d := New(16)
	d.Write(0, nil)
	if d.DirtyBytes() != 0 {
		t.Fatal("empty write dirtied device")
	}
}

func TestZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(0) did not panic")
		}
	}()
	New(0)
}

// Property: after any sequence of writes followed by FlushAll and PowerFail,
// the live view equals what was written (flush makes everything durable).
func TestPropertyFlushAllIsComplete(t *testing.T) {
	f := func(ops []struct {
		Off  uint8
		Data []byte
	}) bool {
		d := New(512)
		shadow := make([]byte, 512)
		for _, op := range ops {
			off := int(op.Off)
			data := op.Data
			if off+len(data) > 512 {
				data = data[:512-off]
			}
			d.Write(off, data)
			copy(shadow[off:], data)
		}
		d.FlushAll()
		d.PowerFail()
		return bytes.Equal(d.Read(0, 512), shadow)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: without a flush, power failure restores exactly the durable
// prefix state (all zero here).
func TestPropertyUnflushedAlwaysLost(t *testing.T) {
	f := func(offs []uint8, size uint8) bool {
		d := New(512)
		n := int(size%64) + 1
		for _, o := range offs {
			off := int(o) % (512 - n)
			d.Write(off, bytes.Repeat([]byte{0xAB}, n))
		}
		d.PowerFail()
		return bytes.Equal(d.Read(0, 512), make([]byte, 512))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalSetRemoveSplits(t *testing.T) {
	var s intervalSet
	s.add(0, 100)
	s.remove(40, 60)
	if s.total() != 80 {
		t.Fatalf("total after split = %d, want 80", s.total())
	}
	ovl := s.overlap(0, 100)
	if len(ovl) != 2 || ovl[0] != (interval{0, 40}) || ovl[1] != (interval{60, 100}) {
		t.Fatalf("split intervals: %+v", ovl)
	}
}

func TestIntervalSetOverlapClips(t *testing.T) {
	var s intervalSet
	s.add(10, 30)
	ovl := s.overlap(20, 25)
	if len(ovl) != 1 || ovl[0] != (interval{20, 25}) {
		t.Fatalf("clip: %+v", ovl)
	}
	if got := s.overlap(30, 40); got != nil {
		t.Fatalf("phantom overlap: %+v", got)
	}
}
