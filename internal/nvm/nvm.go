// Package nvm models a byte-addressable non-volatile memory device fronted
// by a volatile NIC-side cache — the hardware combination HyperLoop targets
// (battery-backed DRAM in the paper's testbed, §6).
//
// The durability hazard the paper's gFLUSH primitive exists to close is
// modeled explicitly: an RDMA WRITE is acknowledged once data reaches the
// NIC's volatile cache, so a power failure between the ACK and the cache
// drain loses the write. Flush (the 0-byte RDMA READ trick) drains the
// cache deterministically; PowerFail discards whatever has not drained.
package nvm

import "fmt"

// Device is a simulated NVM DIMM. The zero value is unusable; use New.
//
// Two byte arrays model the two levels of the hierarchy:
//
//	volatile — what reads observe (NIC cache + media, coherent view)
//	durable  — what survives a power failure
//
// NIC-path writes (Write) land in volatile and are tracked dirty until a
// Flush persists them. CPU-path writes (Store) model a store followed by a
// cache-line write-back (CLWB+fence): they persist immediately, since host
// stores do not traverse the NIC cache.
type Device struct {
	volatile []byte
	durable  []byte
	dirty    intervalSet

	writes      uint64
	stores      uint64
	flushes     uint64
	bytesDirty  uint64
	bytesSynced uint64
	powerFails  uint64
}

// New creates a device with the given capacity in bytes.
func New(size int) *Device {
	if size <= 0 {
		panic("nvm: non-positive device size")
	}
	return &Device{
		volatile: make([]byte, size),
		durable:  make([]byte, size),
	}
}

// Size returns the device capacity.
func (d *Device) Size() int { return len(d.volatile) }

func (d *Device) check(off, n int) {
	if off < 0 || n < 0 || off+n > len(d.volatile) {
		panic(fmt.Sprintf("nvm: access [%d, %d) outside device of %d bytes", off, off+n, len(d.volatile)))
	}
}

// Write performs a NIC-path write: data becomes visible immediately but is
// volatile until the covering range is flushed.
func (d *Device) Write(off int, data []byte) {
	d.check(off, len(data))
	copy(d.volatile[off:], data)
	if len(data) > 0 {
		d.dirty.add(off, off+len(data))
		d.writes++
		d.bytesDirty += uint64(len(data))
	}
}

// Store performs a CPU-path persistent write (store + CLWB + fence): data is
// visible and durable at once.
func (d *Device) Store(off int, data []byte) {
	d.check(off, len(data))
	copy(d.volatile[off:], data)
	copy(d.durable[off:], data)
	// A host store also supersedes any pending NIC-cache line for the range.
	d.dirty.remove(off, off+len(data))
	d.stores++
}

// Read returns a copy of the live (volatile-coherent) contents.
func (d *Device) Read(off, n int) []byte {
	d.check(off, n)
	out := make([]byte, n)
	copy(out, d.volatile[off:off+n])
	return out
}

// ReadInto copies live contents into dst and returns the bytes copied.
func (d *Device) ReadInto(off int, dst []byte) int {
	d.check(off, len(dst))
	return copy(dst, d.volatile[off:off+len(dst)])
}

// View returns the live backing slice for [off, off+n). Mutating it without
// going through Write/Store bypasses durability tracking; it exists so the
// RDMA layer can register memory regions over device ranges.
func (d *Device) View(off, n int) []byte {
	d.check(off, n)
	return d.volatile[off : off+n]
}

// MarkDirty records that [off, off+n) was mutated through a View on the NIC
// path and is volatile until flushed.
func (d *Device) MarkDirty(off, n int) {
	d.check(off, n)
	if n == 0 {
		return
	}
	d.dirty.add(off, off+n)
	d.writes++
	d.bytesDirty += uint64(n)
}

// Flush drains any dirty (NIC-cached) bytes overlapping [off, off+n) to
// durable media. It returns the number of bytes persisted.
func (d *Device) Flush(off, n int) int {
	d.check(off, n)
	synced := 0
	for _, iv := range d.dirty.overlap(off, off+n) {
		copy(d.durable[iv.lo:iv.hi], d.volatile[iv.lo:iv.hi])
		synced += iv.hi - iv.lo
	}
	d.dirty.remove(off, off+n)
	d.flushes++
	d.bytesSynced += uint64(synced)
	return synced
}

// FlushAll drains the entire cache.
func (d *Device) FlushAll() int { return d.Flush(0, len(d.volatile)) }

// DirtyBytes returns the number of bytes currently volatile.
func (d *Device) DirtyBytes() int { return d.dirty.total() }

// IsDirty reports whether any byte in [off, off+n) is volatile.
func (d *Device) IsDirty(off, n int) bool {
	d.check(off, n)
	return len(d.dirty.overlap(off, off+n)) > 0
}

// PowerFail simulates losing power: all un-flushed NIC-cache contents are
// discarded and the live view reverts to durable state.
func (d *Device) PowerFail() {
	for _, iv := range d.dirty.overlap(0, len(d.volatile)) {
		copy(d.volatile[iv.lo:iv.hi], d.durable[iv.lo:iv.hi])
	}
	d.dirty.removeAll()
	d.powerFails++
}

// DurableRead returns a copy of the durable contents (what recovery sees).
func (d *Device) DurableRead(off, n int) []byte {
	d.check(off, n)
	out := make([]byte, n)
	copy(out, d.durable[off:off+n])
	return out
}

// Stats is a snapshot of device activity counters.
type Stats struct {
	Writes      uint64 // NIC-path writes
	Stores      uint64 // CPU-path persistent stores
	Flushes     uint64 // flush operations
	BytesDirty  uint64 // cumulative bytes written via the NIC path
	BytesSynced uint64 // cumulative bytes persisted by flushes
	PowerFails  uint64
}

// Stats returns a snapshot of activity counters.
func (d *Device) Stats() Stats {
	return Stats{
		Writes:      d.writes,
		Stores:      d.stores,
		Flushes:     d.flushes,
		BytesDirty:  d.bytesDirty,
		BytesSynced: d.bytesSynced,
		PowerFails:  d.powerFails,
	}
}

// interval is a half-open dirty range.
type interval struct{ lo, hi int }

// intervalSet maintains sorted, disjoint, merged intervals.
type intervalSet struct {
	ivs []interval
}

func (s *intervalSet) add(lo, hi int) {
	if lo >= hi {
		return
	}
	out := s.ivs[:0:0]
	inserted := false
	for _, iv := range s.ivs {
		switch {
		case iv.hi < lo:
			out = append(out, iv)
		case hi < iv.lo:
			if !inserted {
				out = append(out, interval{lo, hi})
				inserted = true
			}
			out = append(out, iv)
		default: // overlap or adjacency: merge
			if iv.lo < lo {
				lo = iv.lo
			}
			if iv.hi > hi {
				hi = iv.hi
			}
		}
	}
	if !inserted {
		out = append(out, interval{lo, hi})
	}
	s.ivs = out
}

func (s *intervalSet) remove(lo, hi int) {
	if lo >= hi {
		return
	}
	out := s.ivs[:0:0]
	for _, iv := range s.ivs {
		if iv.hi <= lo || iv.lo >= hi {
			out = append(out, iv)
			continue
		}
		if iv.lo < lo {
			out = append(out, interval{iv.lo, lo})
		}
		if iv.hi > hi {
			out = append(out, interval{hi, iv.hi})
		}
	}
	s.ivs = out
}

func (s *intervalSet) removeAll() { s.ivs = nil }

func (s *intervalSet) overlap(lo, hi int) []interval {
	var out []interval
	for _, iv := range s.ivs {
		if iv.hi <= lo || iv.lo >= hi {
			continue
		}
		clipped := iv
		if clipped.lo < lo {
			clipped.lo = lo
		}
		if clipped.hi > hi {
			clipped.hi = hi
		}
		out = append(out, clipped)
	}
	return out
}

func (s *intervalSet) total() int {
	n := 0
	for _, iv := range s.ivs {
		n += iv.hi - iv.lo
	}
	return n
}
