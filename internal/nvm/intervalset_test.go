package nvm

import (
	"math/rand"
	"testing"
)

// shadowSet is the exact reference for intervalSet: one bool per byte.
type shadowSet []bool

func (s shadowSet) add(lo, hi int)    { s.set(lo, hi, true) }
func (s shadowSet) remove(lo, hi int) { s.set(lo, hi, false) }
func (s shadowSet) set(lo, hi int, v bool) {
	for i := lo; i < hi && i < len(s); i++ {
		if i >= 0 {
			s[i] = v
		}
	}
}
func (s shadowSet) total() int {
	n := 0
	for _, b := range s {
		if b {
			n++
		}
	}
	return n
}

// assertMatches checks the interval set against the shadow byte-for-byte and
// verifies the sorted/disjoint/coalesced invariant.
func assertMatches(t *testing.T, s *intervalSet, shadow shadowSet, step string) {
	t.Helper()
	covered := make(shadowSet, len(shadow))
	prevHi := -1
	for _, iv := range s.ivs {
		if iv.lo >= iv.hi {
			t.Fatalf("%s: empty interval [%d,%d)", step, iv.lo, iv.hi)
		}
		// Adjacent intervals must have been coalesced: prev.hi < lo strictly.
		if iv.lo <= prevHi {
			t.Fatalf("%s: intervals not disjoint/coalesced around %d (prev hi %d)", step, iv.lo, prevHi)
		}
		prevHi = iv.hi
		covered.add(iv.lo, iv.hi)
	}
	for i := range shadow {
		if shadow[i] != covered[i] {
			t.Fatalf("%s: byte %d dirty=%v in shadow, %v in intervalSet (ivs=%v)",
				step, i, shadow[i], covered[i], s.ivs)
		}
	}
	if s.total() != shadow.total() {
		t.Fatalf("%s: total %d vs shadow %d", step, s.total(), shadow.total())
	}
}

// TestIntervalSetPropertyVsShadow drives random add/remove/overlap sequences
// against the per-byte shadow.
func TestIntervalSetPropertyVsShadow(t *testing.T) {
	const space = 256
	for seed := int64(1); seed <= 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		var s intervalSet
		shadow := make(shadowSet, space)
		for op := 0; op < 4000; op++ {
			lo := r.Intn(space)
			hi := lo + r.Intn(space-lo+1)
			switch r.Intn(3) {
			case 0:
				s.add(lo, hi)
				shadow.add(lo, hi)
			case 1:
				s.remove(lo, hi)
				shadow.remove(lo, hi)
			case 2:
				got := 0
				for _, iv := range s.overlap(lo, hi) {
					if iv.lo < lo || iv.hi > hi {
						t.Fatalf("seed %d op %d: overlap(%d,%d) not clipped: %v", seed, op, lo, hi, iv)
					}
					got += iv.hi - iv.lo
				}
				want := 0
				for i := lo; i < hi; i++ {
					if shadow[i] {
						want++
					}
				}
				if got != want {
					t.Fatalf("seed %d op %d: overlap(%d,%d) covers %d bytes, shadow says %d",
						seed, op, lo, hi, got, want)
				}
			}
			assertMatches(t, &s, shadow, "after op")
		}
	}
}

// TestIntervalSetAdjacentCoalescing is the regression test for adjacency
// around partial flushes: writes that abut each other (or abut the remnant
// of a partially-flushed range) must merge into one interval, and a flush
// cutting through the middle must leave exact remnants.
func TestIntervalSetAdjacentCoalescing(t *testing.T) {
	var s intervalSet
	s.add(0, 10)
	s.add(10, 20) // adjacent: must coalesce
	if len(s.ivs) != 1 || s.ivs[0] != (interval{0, 20}) {
		t.Fatalf("adjacent adds not coalesced: %v", s.ivs)
	}
	s.remove(5, 15) // partial flush through the middle
	if len(s.ivs) != 2 || s.ivs[0] != (interval{0, 5}) || s.ivs[1] != (interval{15, 20}) {
		t.Fatalf("partial remove remnants wrong: %v", s.ivs)
	}
	s.add(5, 15) // re-dirty the gap: everything merges back
	if len(s.ivs) != 1 || s.ivs[0] != (interval{0, 20}) {
		t.Fatalf("gap re-add not coalesced: %v", s.ivs)
	}
	// Abutting the left/right edges of an existing interval.
	s.removeAll()
	s.add(50, 60)
	s.add(40, 50)
	s.add(60, 70)
	if len(s.ivs) != 1 || s.ivs[0] != (interval{40, 70}) {
		t.Fatalf("edge-abutting adds not coalesced: %v", s.ivs)
	}
}

// TestDeviceFlushPartialOverlapCoalescing exercises the same family through
// the Device API: a Flush overlapping two coalesced writes persists exactly
// the overlap and leaves the rest volatile.
func TestDeviceFlushPartialOverlapCoalescing(t *testing.T) {
	d := New(64)
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	d.Write(8, a)  // dirty [8,12)
	d.Write(12, b) // adjacent: dirty [8,16)
	if d.DirtyBytes() != 8 {
		t.Fatalf("dirty bytes = %d, want 8", d.DirtyBytes())
	}
	if n := d.Flush(10, 4); n != 4 { // partial overlap [10,14)
		t.Fatalf("flush persisted %d bytes, want 4", n)
	}
	if got := d.DurableRead(10, 4); got[0] != 3 || got[1] != 4 || got[2] != 5 || got[3] != 6 {
		t.Fatalf("durable [10,14) = %v", got)
	}
	if d.IsDirty(10, 4) {
		t.Fatal("flushed range still dirty")
	}
	if !d.IsDirty(8, 2) || !d.IsDirty(14, 2) {
		t.Fatal("unflushed remnants lost their dirty state")
	}
	if d.DirtyBytes() != 4 {
		t.Fatalf("dirty bytes after partial flush = %d, want 4", d.DirtyBytes())
	}
	d.PowerFail()
	if got := d.Read(8, 8); got[2] != 3 || got[3] != 4 || got[4] != 5 || got[5] != 6 {
		t.Fatalf("post-powerfail live view lost flushed bytes: %v", got)
	}
	if got := d.Read(8, 2); got[0] != 0 || got[1] != 0 {
		t.Fatalf("post-powerfail unflushed bytes survived: %v", got)
	}
}
