// Package chain is the control plane the paper deliberately leaves
// conventional (§5, "group failures are detected and repaired in an
// application specific manner"): heartbeat-based failure detection over a
// replication chain, write pausing, member replacement with state catch-up,
// and hand-off back to the accelerated data path.
//
// HyperLoop only accelerates the data path; this package demonstrates that
// the primitives are low level enough not to interfere with recovery (§5.1):
// on failure the manager tears down the group, the application rebuilds a
// fresh one over the surviving members plus a spare, and writes resume.
package chain

import (
	"errors"
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/metrics"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
)

// Errors.
var (
	ErrNoSpare = errors.New("chain: no spare node available")
	ErrHalted  = errors.New("chain: manager halted")
)

// Config tunes detection.
type Config struct {
	// HeartbeatEvery is the probe period (default 1ms).
	HeartbeatEvery sim.Duration
	// MissedThreshold declares a member failed after this many periods
	// without a response (default 5) — "a configurable number of
	// consecutive missing heartbeats is considered a data path failure".
	MissedThreshold int
	// HandlerCost is the replica CPU demand to answer a probe (default
	// 500ns). Probe replies contend with tenants, so the threshold must
	// ride out scheduling delay.
	HandlerCost sim.Duration
	// CatchUpGbps is the state-copy bandwidth for a joining member
	// (default 10).
	CatchUpGbps float64
}

func (c *Config) fill() {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = sim.Millisecond
	}
	if c.MissedThreshold <= 0 {
		c.MissedThreshold = 5
	}
	if c.HandlerCost <= 0 {
		c.HandlerCost = 500
	}
	if c.CatchUpGbps <= 0 {
		c.CatchUpGbps = 10
	}
}

// member is one monitored replica.
type member struct {
	node     *cluster.Node
	toQP     *rdma.QP // client → member probes
	fromQP   *rdma.QP // member → client replies
	lastSeen sim.Time
}

// Manager monitors a chain and coordinates replacement.
type Manager struct {
	eng     *sim.Engine
	client  *cluster.Node
	cfg     Config
	members []*member
	spares  []*cluster.Node

	paused       bool
	halted       bool
	failedIdx    int
	lastDetectAt sim.Time
	haveDetect   bool
	onFailure    func(failed *cluster.Node, survivors []*cluster.Node)

	probes    uint64
	replies   uint64
	failovers uint64
	epoch     uint64

	spans *span.Recorder // nil unless instrumented
}

// Instrument attaches observability: probe/reply/failover counters as
// computed gauges (reg may be nil) and failure-detection annotations on the
// span recorder (spans may be nil). Observation-only — detection timing and
// probing behavior are unchanged.
func (m *Manager) Instrument(reg *metrics.Registry, spans *span.Recorder, label string) {
	m.spans = spans
	if reg == nil {
		return
	}
	reg.GaugeFunc("chain", "probes", label, func() float64 { return float64(m.probes) })
	reg.GaugeFunc("chain", "replies", label, func() float64 { return float64(m.replies) })
	reg.GaugeFunc("chain", "failovers", label, func() float64 { return float64(m.failovers) })
	reg.GaugeFunc("chain", "members", label, func() float64 { return float64(len(m.members)) })
	reg.GaugeFunc("chain", "spares", label, func() float64 { return float64(len(m.spares)) })
}

// NewManager starts monitoring members (the chain replicas) with the given
// spare pool. onFailure runs once per detected failure with the failed node
// and the surviving members, after writes are paused; the application then
// rebuilds its group and calls Resume.
func NewManager(eng *sim.Engine, client *cluster.Node, members, spares []*cluster.Node,
	cfg Config, onFailure func(failed *cluster.Node, survivors []*cluster.Node)) *Manager {
	cfg.fill()
	m := &Manager{
		eng:       eng,
		client:    client,
		cfg:       cfg,
		spares:    spares,
		onFailure: onFailure,
		failedIdx: -1,
		epoch:     1,
	}
	for _, n := range members {
		m.members = append(m.members, m.watch(n))
	}
	m.scheduleProbe()
	return m
}

// watch wires probe QPs to a node and arms its responder.
func (m *Manager) watch(n *cluster.Node) *member {
	to, toPeer := cluster.ConnectPair(m.client, n, 64, 64)
	from, fromPeer := cluster.ConnectPair(n, m.client, 64, 64)
	mem := &member{node: n, toQP: to, fromQP: from, lastSeen: m.eng.Now()}

	// Member-side responder: each probe wakes a (cheap) host task that
	// posts the reply — control path, so CPU involvement is fine. Probes
	// and replies are 0-byte SENDs; the immediate carries the sequence.
	toPeer.RecvCQ().SetAutoDrain(true)
	toPeer.SendCQ().SetAutoDrain(true)
	from.SendCQ().SetAutoDrain(true)
	toPeer.RecvCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			return
		}
		toPeer.PostRecv(rdma.WQE{})
		n.Host.Submit("chain-heartbeat", m.cfg.HandlerCost, func() {
			from.PostSend(rdma.WQE{Opcode: rdma.OpSend, Imm: e.Imm})
		})
	})
	for i := 0; i < 64; i++ {
		toPeer.PostRecv(rdma.WQE{})
		fromPeer.PostRecv(rdma.WQE{})
	}
	// Client-side reply sink.
	fromPeer.RecvCQ().SetAutoDrain(true)
	fromPeer.SendCQ().SetAutoDrain(true)
	fromPeer.RecvCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			return
		}
		m.replies++
		mem.lastSeen = m.eng.Now()
		fromPeer.PostRecv(rdma.WQE{})
	})
	return mem
}

// Members returns the currently monitored nodes.
func (m *Manager) Members() []*cluster.Node {
	out := make([]*cluster.Node, len(m.members))
	for i, mem := range m.members {
		out[i] = mem.node
	}
	return out
}

// Paused reports whether writes should be held (failure being repaired).
func (m *Manager) Paused() bool { return m.paused }

// Failovers counts completed detections.
func (m *Manager) Failovers() uint64 { return m.failovers }

// Epoch is the chain configuration epoch: 1 at startup, bumped on every
// failure detection. Coordinators stamp commits with it so that a commit
// prepared against a stale membership can be fenced off by a predicated
// gWRITE whose guard word holds the current epoch.
func (m *Manager) Epoch() uint64 { return m.epoch }

// LastDetection returns the virtual time of the most recent failure
// detection; ok is false if no failure has ever been detected. Checkers use
// this to verify detection landed within the configured bound
// (MissedThreshold × HeartbeatEvery plus probe-grid slack).
func (m *Manager) LastDetection() (at sim.Time, ok bool) {
	return m.lastDetectAt, m.haveDetect
}

// DetectionBound returns the configured failure-detection deadline:
// a member is declared failed once no reply has been seen for this long.
func (m *Manager) DetectionBound() sim.Duration {
	return sim.Duration(m.cfg.MissedThreshold) * m.cfg.HeartbeatEvery
}

// Halt stops probing permanently.
func (m *Manager) Halt() { m.halted = true }

func (m *Manager) scheduleProbe() {
	if m.halted {
		return
	}
	m.eng.Schedule(m.cfg.HeartbeatEvery, func() {
		if m.halted {
			return
		}
		m.probe()
		m.check()
		m.scheduleProbe()
	})
}

func (m *Manager) probe() {
	if m.paused {
		return
	}
	for _, mem := range m.members {
		if mem.toQP.State() != rdma.QPReady {
			continue
		}
		m.probes++
		mem.toQP.PostSend(rdma.WQE{Opcode: rdma.OpSend, Imm: m.probes})
	}
}

func (m *Manager) check() {
	if m.paused {
		return
	}
	deadline := sim.Duration(m.cfg.MissedThreshold) * m.cfg.HeartbeatEvery
	for i, mem := range m.members {
		if m.eng.Now().Sub(mem.lastSeen) <= deadline {
			continue
		}
		// Member failed: pause writes and let the application repair.
		m.paused = true
		m.failedIdx = i
		m.failovers++
		m.epoch++
		m.lastDetectAt = m.eng.Now()
		m.haveDetect = true
		failed := mem.node
		if m.spans != nil {
			m.spans.Annotate("chain", fmt.Sprintf("failure detected: member %d (node %d)", i, failed.Index))
		}
		var survivors []*cluster.Node
		for j, other := range m.members {
			if j != i {
				survivors = append(survivors, other.node)
			}
		}
		if m.onFailure != nil {
			m.onFailure(failed, survivors)
		}
		return
	}
}

// TakeSpare removes and returns a spare node for chain repair.
func (m *Manager) TakeSpare() (*cluster.Node, error) {
	if len(m.spares) == 0 {
		return nil, ErrNoSpare
	}
	s := m.spares[0]
	m.spares = m.spares[1:]
	return s, nil
}

// Resume replaces the monitored membership (after the application has
// rebuilt its group and caught the new member up) and restarts probing.
func (m *Manager) Resume(members []*cluster.Node) {
	if m.halted {
		return
	}
	m.members = m.members[:0]
	for _, n := range members {
		m.members = append(m.members, m.watch(n))
	}
	m.paused = false
	m.failedIdx = -1
}

// CatchUp copies [off, off+size) of the client's store to a joining node —
// the "copy the log and the database from an upstream node; writes are
// paused for a short duration" step of §5.1. done fires after the simulated
// transfer time (size / CatchUpGbps) with the bytes installed durably.
func (m *Manager) CatchUp(newNode *cluster.Node, off, size int, done func(error)) {
	if m.halted {
		done(ErrHalted)
		return
	}
	data := m.client.StoreBytes(off, size)
	d := sim.Duration(float64(size*8) / m.cfg.CatchUpGbps)
	m.eng.Schedule(d, func() {
		newNode.StoreWrite(off, data)
		done(nil)
	})
}

func (m *Manager) String() string {
	return fmt.Sprintf("chain.Manager{members=%d spares=%d paused=%v failovers=%d}",
		len(m.members), len(m.spares), m.paused, m.failovers)
}
