package chain

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

func testCluster(t *testing.T, nodes int) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: nodes, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	return eng, cl
}

func TestHeartbeatsKeepMembershipStable(t *testing.T) {
	eng, cl := testCluster(t, 4)
	failures := 0
	m := NewManager(eng, cl.Client(), cl.Replicas(), nil, Config{},
		func(*cluster.Node, []*cluster.Node) { failures++ })
	eng.RunFor(100 * sim.Millisecond)
	if failures != 0 {
		t.Fatalf("healthy chain reported %d failures", failures)
	}
	if m.Paused() {
		t.Fatal("healthy chain paused")
	}
	if m.Epoch() != 1 {
		t.Fatalf("healthy chain epoch = %d, want 1", m.Epoch())
	}
	if m.replies == 0 {
		t.Fatal("no heartbeat replies observed")
	}
}

func TestDetectsSeveredReplica(t *testing.T) {
	eng, cl := testCluster(t, 4)
	var failedNode *cluster.Node
	var survivors []*cluster.Node
	m := NewManager(eng, cl.Client(), cl.Replicas(), nil, Config{},
		func(f *cluster.Node, s []*cluster.Node) { failedNode = f; survivors = s })

	victim := cl.Replicas()[1]
	eng.RunFor(10 * sim.Millisecond)
	cl.Net.CutBoth(cl.Client().NIC.Node(), victim.NIC.Node())

	ok := eng.RunUntil(func() bool { return failedNode != nil }, eng.Now().Add(sim.Second))
	if !ok {
		t.Fatal("failure never detected")
	}
	if failedNode != victim {
		t.Fatalf("detected wrong node: %d", failedNode.Index)
	}
	if len(survivors) != 2 {
		t.Fatalf("survivors = %d", len(survivors))
	}
	if !m.Paused() {
		t.Fatal("writes not paused after failure")
	}
	if m.Failovers() != 1 {
		t.Fatalf("failovers = %d", m.Failovers())
	}
	// The configuration epoch starts at 1 and bumps with the detection:
	// commits stamped with the old epoch can now be fenced.
	if m.Epoch() != 2 {
		t.Fatalf("epoch = %d after one failover, want 2", m.Epoch())
	}
}

func TestNoFalsePositiveUnderLoadedReplicas(t *testing.T) {
	// Heartbeat replies ride the replica CPU; a busy host delays them but
	// the threshold must tolerate normal scheduling noise.
	eng, cl := testCluster(t, 4)
	failures := 0
	NewManager(eng, cl.Client(), cl.Replicas(), nil,
		Config{HeartbeatEvery: 5 * sim.Millisecond, MissedThreshold: 6},
		func(*cluster.Node, []*cluster.Node) { failures++ })
	// Saturate replica CPUs moderately (2 hogs per 16 cores won't starve
	// the tiny heartbeat handler for 30ms).
	for _, rep := range cl.Replicas() {
		rep.Host.StartLoop("hog-1", nil)
		rep.Host.StartLoop("hog-2", nil)
	}
	eng.RunFor(200 * sim.Millisecond)
	if failures != 0 {
		t.Fatalf("false positive failures: %d", failures)
	}
}

func TestSpareManagement(t *testing.T) {
	eng, cl := testCluster(t, 5)
	m := NewManager(eng, cl.Client(), cl.Replicas()[:3], cl.Replicas()[3:], Config{}, nil)
	s, err := m.TakeSpare()
	if err != nil || s != cl.Replicas()[3] {
		t.Fatalf("TakeSpare: %v %v", s, err)
	}
	if _, err := m.TakeSpare(); err != ErrNoSpare {
		t.Fatalf("second TakeSpare: %v", err)
	}
	_ = eng
}

func TestCatchUpCopiesState(t *testing.T) {
	eng, cl := testCluster(t, 3)
	m := NewManager(eng, cl.Client(), cl.Replicas()[:1], nil, Config{}, nil)
	payload := bytes.Repeat([]byte("s"), 4096)
	cl.Client().StoreWrite(100, payload)

	newNode := cl.Replicas()[1]
	done := false
	start := eng.Now()
	m.CatchUp(newNode, 0, 64<<10, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	eng.RunUntil(func() bool { return done }, eng.Now().Add(sim.Second))
	if !done {
		t.Fatal("catch-up never finished")
	}
	if eng.Now() == start {
		t.Fatal("catch-up was instantaneous; transfer time not modeled")
	}
	if got := newNode.StoreBytes(100, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("catch-up did not copy state")
	}
	// CPU-path install is durable.
	newNode.Dev.PowerFail()
	if got := newNode.StoreBytes(100, len(payload)); !bytes.Equal(got, payload) {
		t.Fatal("caught-up state not durable")
	}
}

// tenantLoadCluster builds a cluster whose hosts have one core and the given
// round-robin slice, so a single always-on hog delays every heartbeat reply
// by up to one slice — a dial for probing the detection threshold exactly.
func tenantLoadCluster(t *testing.T, slice sim.Duration) (*sim.Engine, *cluster.Cluster) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: 4, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
		Host: cpusched.Config{Cores: 1, TimeSlice: slice},
	})
	return eng, cl
}

// TestTenantDelayJustUnderThreshold pins the detection edge from below: with
// a 2ms scheduling slice, heartbeat replies from a hogged single-core host
// burst at slice boundaries, delayed well under the 5ms detection bound —
// the manager must not declare a failure.
func TestTenantDelayJustUnderThreshold(t *testing.T) {
	eng, cl := tenantLoadCluster(t, 2*sim.Millisecond)
	failures := 0
	m := NewManager(eng, cl.Client(), cl.Replicas(), nil,
		Config{HeartbeatEvery: sim.Millisecond, MissedThreshold: 5},
		func(*cluster.Node, []*cluster.Node) { failures++ })
	cl.Replicas()[1].Host.StartLoop("hog", nil)
	eng.RunFor(100 * sim.Millisecond)
	if failures != 0 {
		t.Fatalf("sub-threshold tenant load caused %d false failovers", failures)
	}
	if m.Paused() {
		t.Fatal("chain paused under sub-threshold load")
	}
}

// TestTenantDelayJustOverThreshold pins the edge from above: an 8ms slice
// holds heartbeat replies past the 5ms bound, so the loaded member must be
// declared failed even though its links and NIC are perfectly healthy.
func TestTenantDelayJustOverThreshold(t *testing.T) {
	eng, cl := tenantLoadCluster(t, 8*sim.Millisecond)
	var failedNode *cluster.Node
	m := NewManager(eng, cl.Client(), cl.Replicas(), nil,
		Config{HeartbeatEvery: sim.Millisecond, MissedThreshold: 5},
		func(f *cluster.Node, _ []*cluster.Node) { failedNode = f })
	victim := cl.Replicas()[1]
	victim.Host.StartLoop("hog", nil)
	if !eng.RunUntil(func() bool { return failedNode != nil }, eng.Now().Add(sim.Second)) {
		t.Fatal("over-threshold tenant load never triggered detection")
	}
	if failedNode != victim {
		t.Fatalf("declared node %d failed, want loaded node %d", failedNode.Index, victim.Index)
	}
	if at, ok := m.LastDetection(); !ok || at.Sub(sim.Time(0)) > 100*sim.Millisecond {
		t.Fatalf("detection landed at %v ok=%v", at, ok)
	}
}

// TestFailoverWithoutSpare exercises the repair path when the spare pool is
// empty: detection still fires and pauses writes, TakeSpare reports
// ErrNoSpare, and the chain stays paused (no bogus resume).
func TestFailoverWithoutSpare(t *testing.T) {
	eng, cl := testCluster(t, 4)
	var spareErr error
	var m *Manager
	m = NewManager(eng, cl.Client(), cl.Replicas(), nil, Config{},
		func(*cluster.Node, []*cluster.Node) {
			_, spareErr = m.TakeSpare()
		})
	victim := cl.Replicas()[0]
	cl.Net.Isolate(victim.NIC.Node())
	if !eng.RunUntil(func() bool { return spareErr != nil }, eng.Now().Add(sim.Second)) {
		t.Fatal("failure never detected")
	}
	if spareErr != ErrNoSpare {
		t.Fatalf("TakeSpare error = %v, want ErrNoSpare", spareErr)
	}
	eng.RunFor(50 * sim.Millisecond)
	if !m.Paused() {
		t.Fatal("chain resumed without a repaired membership")
	}
	if m.Failovers() != 1 {
		t.Fatalf("failovers = %d, want 1", m.Failovers())
	}
}

// TestEndToEndFailover drives the full repair loop: a HyperLoop group loses
// a replica, the manager detects it, the app rebuilds a fresh group over
// the survivors plus a spare, catches the spare up, and writes continue.
func TestEndToEndFailover(t *testing.T) {
	eng, cl := testCluster(t, 5) // client + 3 chain + 1 spare
	client := cl.Client()
	members := cl.Replicas()[:3]
	spares := cl.Replicas()[3:]

	g := core.NewWithNodes(eng, client, members, core.Config{Depth: 64})
	var m *Manager
	recovered := false

	m = NewManager(eng, client, members, spares, Config{},
		func(failed *cluster.Node, survivors []*cluster.Node) {
			// Application repair: tear down, recruit a spare, catch it up,
			// rebuild the group, resume.
			g.Close()
			spare, err := m.TakeSpare()
			if err != nil {
				t.Fatal(err)
			}
			m.CatchUp(spare, 0, 1<<20, func(err error) {
				if err != nil {
					t.Fatal(err)
				}
				newMembers := append(append([]*cluster.Node{}, survivors...), spare)
				g = core.NewWithNodes(eng, client, newMembers, core.Config{Depth: 64})
				m.Resume(newMembers)
				recovered = true
			})
		})

	// Write some data pre-failure.
	client.StoreWrite(0, []byte("pre-failure-data"))
	preDone := false
	g.GWrite(0, 16, true, func(r core.Result) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		preDone = true
	})
	if !eng.RunUntil(func() bool { return preDone }, eng.Now().Add(sim.Second)) {
		t.Fatal("pre-failure write stalled")
	}

	// Kill the middle replica.
	victim := members[1]
	for _, n := range cl.Nodes {
		if n != victim {
			cl.Net.CutBoth(n.NIC.Node(), victim.NIC.Node())
		}
	}
	if !eng.RunUntil(func() bool { return recovered }, eng.Now().Add(5*sim.Second)) {
		t.Fatal("recovery never completed")
	}

	// Writes flow on the repaired chain, reaching the recruited spare.
	client.StoreWrite(64, []byte("post-failure-data"))
	postDone := false
	g.GWrite(64, 17, true, func(r core.Result) {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
		postDone = true
	})
	if !eng.RunUntil(func() bool { return postDone }, eng.Now().Add(sim.Second)) {
		t.Fatal("post-failure write stalled")
	}
	spare := spares[0]
	if got := spare.StoreBytes(64, 17); string(got) != "post-failure-data" {
		t.Fatalf("spare store: %q", got)
	}
	// And the spare holds the caught-up pre-failure state.
	if got := spare.StoreBytes(0, 16); string(got) != "pre-failure-data" {
		t.Fatalf("spare missing caught-up state: %q", got)
	}
}
