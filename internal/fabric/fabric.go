// Package fabric models the data-center network connecting RDMA NICs: a
// reliable, connected, in-order message transport with a propagation delay,
// line-rate serialization on both the sending and receiving NIC ports, and
// optional jitter. It corresponds to the 56 Gbps RoCE fabric of the paper's
// testbed; parameters are calibrated constants, since the figures depend on
// who waits for whom rather than on absolute wire speed.
package fabric

import (
	"fmt"

	"hyperloop/internal/sim"
)

// NodeID identifies an attached NIC.
type NodeID int

// Message is a unit of delivery between NICs. Payload is carried by
// reference; the simulation charges serialization time for Size bytes.
type Message struct {
	From    NodeID
	To      NodeID
	Size    int // bytes on the wire (payload + header)
	Payload any
}

// Handler receives delivered messages.
type Handler func(Message)

// Config sets the link model. Zero values get defaults approximating the
// paper's testbed (56 Gbps, ~1.5µs one-way delay).
type Config struct {
	PropDelay   sim.Duration // one-way propagation + switching delay (default 1.5µs)
	GbitPerSec  float64      // line rate (default 56)
	JitterFrac  float64      // uniform ± fraction applied to prop delay (default 0.05)
	HeaderBytes int          // per-message framing overhead (default 64)
}

func (c *Config) fill() {
	if c.PropDelay <= 0 {
		c.PropDelay = 1500 * sim.Nanosecond
	}
	if c.GbitPerSec <= 0 {
		c.GbitPerSec = 56
	}
	if c.JitterFrac < 0 {
		c.JitterFrac = 0
	} else if c.JitterFrac == 0 {
		c.JitterFrac = 0.05
	}
	if c.HeaderBytes <= 0 {
		c.HeaderBytes = 64
	}
}

// MinLatency returns a hard lower bound on the delivery delay of any message
// under this config: the propagation delay at maximum negative jitter, with
// serialization excluded (it only adds). This is the conservative lookahead
// a sim.PartitionedEngine may safely assume for traffic crossing a link with
// this config — no message can ever arrive sooner.
func (c Config) MinLatency() sim.Duration {
	c.fill()
	min := sim.Duration(float64(c.PropDelay) * (1 - c.JitterFrac))
	if min < sim.Nanosecond {
		min = sim.Nanosecond
	}
	return min
}

// Latency returns the deterministic (jitter-free) one-way delivery delay for
// a message of size payload bytes: propagation plus line-rate serialization
// of payload + framing. Cross-partition gateways use it so hand-off timing
// stays identical at any worker count; by construction it is >= MinLatency.
func (c Config) Latency(size int) sim.Duration {
	c.fill()
	bits := float64(size+c.HeaderBytes) * 8
	return c.PropDelay + sim.Duration(bits/c.GbitPerSec)
}

type port struct {
	handler  Handler
	txFree   sim.Time // when the egress port finishes its current frame
	rxFree   sim.Time // when the ingress port finishes its current frame
	txBytes  uint64
	rxBytes  uint64
	messages uint64
}

// Network is the shared fabric. Attach NICs, then Send between them.
type Network struct {
	eng   *sim.Engine
	cfg   Config
	r     *sim.Rand
	ports []*port

	// Partitions: pairs that currently cannot communicate (for failure
	// testing). Keyed by directed pair.
	cut map[[2]NodeID]bool

	delivered uint64
	dropped   uint64
}

// New creates a network on the given engine. r may be nil for a default
// seed.
func New(eng *sim.Engine, cfg Config, r *sim.Rand) *Network {
	cfg.fill()
	if r == nil {
		r = sim.NewRand(1)
	}
	return &Network{eng: eng, cfg: cfg, r: r, cut: make(map[[2]NodeID]bool)}
}

// Attach registers a NIC and returns its NodeID. The handler runs at
// delivery time on the simulation goroutine.
func (n *Network) Attach(handler Handler) NodeID {
	if handler == nil {
		panic("fabric: nil handler")
	}
	n.ports = append(n.ports, &port{handler: handler})
	return NodeID(len(n.ports) - 1)
}

// Nodes returns the number of attached NICs.
func (n *Network) Nodes() int { return len(n.ports) }

// serialization returns the time to push size bytes through the line.
func (n *Network) serialization(size int) sim.Duration {
	bits := float64(size+n.cfg.HeaderBytes) * 8
	return sim.Duration(bits / n.cfg.GbitPerSec) // Gbit/s == bits/ns
}

// Send schedules delivery of msg. Delivery time accounts for egress-port
// serialization (a busy sender queues), propagation with jitter, and
// ingress-port serialization. Messages between a given pair arrive in the
// order sent (reliable connected semantics).
func (n *Network) Send(msg Message) {
	if int(msg.From) >= len(n.ports) || int(msg.To) >= len(n.ports) || msg.From < 0 || msg.To < 0 {
		panic(fmt.Sprintf("fabric: send %d -> %d with %d nodes", msg.From, msg.To, len(n.ports)))
	}
	if n.cut[[2]NodeID{msg.From, msg.To}] {
		n.dropped++
		return
	}
	src, dst := n.ports[msg.From], n.ports[msg.To]
	ser := n.serialization(msg.Size)

	txStart := n.eng.Now()
	if src.txFree > txStart {
		txStart = src.txFree
	}
	txEnd := txStart.Add(ser)
	src.txFree = txEnd
	src.txBytes += uint64(msg.Size)

	prop := n.r.Jitter(n.cfg.PropDelay, n.cfg.JitterFrac)
	rxStart := txEnd.Add(prop)
	if dst.rxFree > rxStart {
		rxStart = dst.rxFree
	}
	rxEnd := rxStart.Add(ser)
	dst.rxFree = rxEnd
	dst.rxBytes += uint64(msg.Size)
	dst.messages++

	n.eng.ScheduleAt(rxEnd, func() {
		if n.cut[[2]NodeID{msg.From, msg.To}] {
			n.dropped++
			return
		}
		n.delivered++
		dst.handler(msg)
	})
}

// Cut severs the directed link a→b; in-flight messages are dropped at
// delivery time. Used by failure-injection tests.
func (n *Network) Cut(a, b NodeID) { n.cut[[2]NodeID{a, b}] = true }

// CutBoth severs both directions between a and b.
func (n *Network) CutBoth(a, b NodeID) {
	n.Cut(a, b)
	n.Cut(b, a)
}

// Heal restores the directed link a→b.
func (n *Network) Heal(a, b NodeID) { delete(n.cut, [2]NodeID{a, b}) }

// Isolate severs every link to and from id — the whole-node partition a
// switch-port failure or machine crash produces, as opposed to the
// single-link Cut. In-flight messages involving id are dropped at delivery
// time like any cut link.
func (n *Network) Isolate(id NodeID) {
	for other := NodeID(0); int(other) < len(n.ports); other++ {
		if other != id {
			n.CutBoth(id, other)
		}
	}
}

// Rejoin removes every cut involving id, undoing Isolate (and any directed
// Cut that touches id).
func (n *Network) Rejoin(id NodeID) {
	for pair := range n.cut {
		if pair[0] == id || pair[1] == id {
			delete(n.cut, pair)
		}
	}
}

// HealBoth restores both directions.
func (n *Network) HealBoth(a, b NodeID) {
	n.Heal(a, b)
	n.Heal(b, a)
}

// Delivered returns the number of messages delivered.
func (n *Network) Delivered() uint64 { return n.delivered }

// Dropped returns the number of messages dropped by cut links.
func (n *Network) Dropped() uint64 { return n.dropped }

// BytesSent returns the egress byte count of a node.
func (n *Network) BytesSent(id NodeID) uint64 { return n.ports[id].txBytes }

// BytesReceived returns the ingress byte count of a node.
func (n *Network) BytesReceived(id NodeID) uint64 { return n.ports[id].rxBytes }
