package fabric

import (
	"testing"

	"hyperloop/internal/sim"
)

var gbps = 56.0

func newNet(eng *sim.Engine) *Network {
	return New(eng, Config{JitterFrac: -1}, sim.NewRand(1)) // JitterFrac<0 → no jitter
}

func TestDelivery(t *testing.T) {
	eng := sim.NewEngine()
	var got []Message
	net := newNet(eng)
	a := net.Attach(func(m Message) { t.Fatalf("unexpected delivery to a: %+v", m) })
	b := net.Attach(func(m Message) { got = append(got, m) })
	net.Send(Message{From: a, To: b, Size: 1024, Payload: "hello"})
	eng.Drain()
	if len(got) != 1 || got[0].Payload != "hello" || got[0].From != a {
		t.Fatalf("delivery wrong: %+v", got)
	}
	if net.Delivered() != 1 {
		t.Fatalf("delivered = %d", net.Delivered())
	}
}

func TestLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	var at sim.Time
	b := net.Attach(func(Message) { at = eng.Now() })
	net.Send(Message{From: a, To: b, Size: 1024})
	eng.Drain()
	// (1024+64)*8 bits / 56 Gbps ≈ 155ns serialization ×2 + 1500ns prop.
	ser := sim.Duration(float64((1024+64)*8) / gbps)
	want := sim.Time(2*ser + 1500)
	if at != want {
		t.Fatalf("delivery at %v, want %v", at, want)
	}
}

func TestInOrderSamePair(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	var got []int
	a := net.Attach(func(Message) {})
	b := net.Attach(func(m Message) { got = append(got, m.Payload.(int)) })
	for i := 0; i < 50; i++ {
		net.Send(Message{From: a, To: b, Size: 100 + i*10, Payload: i})
	}
	eng.Drain()
	if len(got) != 50 {
		t.Fatalf("got %d messages", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order delivery: %v", got)
		}
	}
}

func TestEgressSerializationQueues(t *testing.T) {
	// Two large back-to-back sends from one port must be serialized: the
	// second arrives roughly one serialization time after the first.
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	var times []sim.Time
	b := net.Attach(func(Message) { times = append(times, eng.Now()) })
	net.Send(Message{From: a, To: b, Size: 64 * 1024})
	net.Send(Message{From: a, To: b, Size: 64 * 1024})
	eng.Drain()
	if len(times) != 2 {
		t.Fatalf("deliveries = %d", len(times))
	}
	ser := sim.Duration(float64((64*1024+64)*8) / gbps)
	gap := times[1].Sub(times[0])
	if gap < ser {
		t.Fatalf("second message gap %v < one serialization %v", gap, ser)
	}
}

func TestBandwidthThroughput(t *testing.T) {
	// Pushing 10MB in 4KB messages should take ≈ 10MB/56Gbps.
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	n := 0
	b := net.Attach(func(Message) { n++ })
	const msgs = 2560 // 10 MB / 4 KB
	for i := 0; i < msgs; i++ {
		net.Send(Message{From: a, To: b, Size: 4096})
	}
	eng.Drain()
	if n != msgs {
		t.Fatalf("delivered %d/%d", n, msgs)
	}
	bits := float64(msgs*(4096+64)) * 8
	ideal := sim.Duration(bits / gbps)
	actual := sim.Duration(eng.Now())
	if actual < ideal || actual > ideal+ideal/10+2000 {
		t.Fatalf("10MB transfer took %v, ideal %v", actual, ideal)
	}
}

func TestCutAndHeal(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	n := 0
	b := net.Attach(func(Message) { n++ })
	net.Cut(a, b)
	net.Send(Message{From: a, To: b, Size: 10})
	eng.Drain()
	if n != 0 || net.Dropped() != 1 {
		t.Fatalf("cut link delivered: n=%d dropped=%d", n, net.Dropped())
	}
	net.Heal(a, b)
	net.Send(Message{From: a, To: b, Size: 10})
	eng.Drain()
	if n != 1 {
		t.Fatalf("healed link did not deliver")
	}
}

func TestCutDropsInFlight(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	n := 0
	b := net.Attach(func(Message) { n++ })
	net.Send(Message{From: a, To: b, Size: 10})
	net.Cut(a, b) // cut before delivery fires
	eng.Drain()
	if n != 0 {
		t.Fatal("in-flight message survived a cut")
	}
}

func TestCutBothDirections(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	got := 0
	a := net.Attach(func(Message) { got++ })
	b := net.Attach(func(Message) { got++ })
	net.CutBoth(a, b)
	net.Send(Message{From: a, To: b, Size: 1})
	net.Send(Message{From: b, To: a, Size: 1})
	eng.Drain()
	if got != 0 {
		t.Fatal("CutBoth leaked a message")
	}
	net.HealBoth(a, b)
	net.Send(Message{From: a, To: b, Size: 1})
	net.Send(Message{From: b, To: a, Size: 1})
	eng.Drain()
	if got != 2 {
		t.Fatalf("HealBoth: got %d", got)
	}
}

func TestIsolateAndRejoin(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	counts := make([]int, 3)
	var ids []NodeID
	for i := 0; i < 3; i++ {
		i := i
		ids = append(ids, net.Attach(func(Message) { counts[i]++ }))
	}
	net.Isolate(ids[1])
	net.Send(Message{From: ids[0], To: ids[1], Size: 1})
	net.Send(Message{From: ids[1], To: ids[2], Size: 1})
	net.Send(Message{From: ids[0], To: ids[2], Size: 1})
	eng.Drain()
	if counts[1] != 0 || counts[2] != 1 {
		t.Fatalf("isolate: counts=%v", counts)
	}
	net.Rejoin(ids[1])
	net.Send(Message{From: ids[0], To: ids[1], Size: 1})
	net.Send(Message{From: ids[1], To: ids[2], Size: 1})
	eng.Drain()
	if counts[1] != 1 || counts[2] != 2 {
		t.Fatalf("rejoin: counts=%v", counts)
	}
}

func TestRejoinClearsDirectedCuts(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	got := 0
	a := net.Attach(func(Message) { got++ })
	b := net.Attach(func(Message) { got++ })
	net.Cut(a, b)
	net.Rejoin(b)
	net.Send(Message{From: a, To: b, Size: 1})
	eng.Drain()
	if got != 1 {
		t.Fatal("Rejoin left a directed cut in place")
	}
}

func TestByteAccounting(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	b := net.Attach(func(Message) {})
	net.Send(Message{From: a, To: b, Size: 500})
	net.Send(Message{From: a, To: b, Size: 700})
	eng.Drain()
	if net.BytesSent(a) != 1200 || net.BytesReceived(b) != 1200 {
		t.Fatalf("accounting: sent=%d recv=%d", net.BytesSent(a), net.BytesReceived(b))
	}
	if net.BytesSent(b) != 0 || net.BytesReceived(a) != 0 {
		t.Fatal("phantom bytes on idle ports")
	}
}

func TestSendToUnknownNodePanics(t *testing.T) {
	eng := sim.NewEngine()
	net := newNet(eng)
	a := net.Attach(func(Message) {})
	defer func() {
		if recover() == nil {
			t.Fatal("send to unknown node did not panic")
		}
	}()
	net.Send(Message{From: a, To: 99, Size: 1})
}

func TestJitterBounded(t *testing.T) {
	eng := sim.NewEngine()
	net := New(eng, Config{JitterFrac: 0.1}, sim.NewRand(3))
	a := net.Attach(func(Message) {})
	var times []sim.Time
	b := net.Attach(func(Message) { times = append(times, eng.Now()) })
	prev := sim.Time(0)
	for i := 0; i < 100; i++ {
		net.Send(Message{From: a, To: b, Size: 0})
		eng.Drain()
		times = times[:0]
		_ = prev
	}
	// With jitter the one-way delay varies but stays within ±10% of prop
	// plus serialization of the header.
	lat := func() sim.Duration {
		e := sim.NewEngine()
		nn := New(e, Config{JitterFrac: 0.1}, sim.NewRand(4))
		x := nn.Attach(func(Message) {})
		var at sim.Time
		y := nn.Attach(func(Message) { at = e.Now() })
		nn.Send(Message{From: x, To: y, Size: 0})
		e.Drain()
		return sim.Duration(at)
	}()
	ser := sim.Duration(float64(64*8) / gbps)
	prop := 1500.0
	min := sim.Duration(prop*0.9) + 2*ser
	max := sim.Duration(prop*1.1) + 2*ser + 1
	if lat < min || lat > max {
		t.Fatalf("jittered latency %v outside [%v, %v]", lat, min, max)
	}
}

func TestConfigLookaheadBounds(t *testing.T) {
	// MinLatency must lower-bound every observed delivery delay, including
	// under jitter; Latency must match the jitter-free delivery exactly.
	cfg := Config{}
	cfg.fill()
	if got, want := cfg.MinLatency(), sim.Duration(1500*0.95); got != want {
		t.Fatalf("MinLatency = %v, want %v", got, want)
	}
	for seed := int64(1); seed <= 20; seed++ {
		e := sim.NewEngine()
		nn := New(e, Config{}, sim.NewRand(seed))
		x := nn.Attach(func(Message) {})
		var at sim.Time
		y := nn.Attach(func(Message) { at = e.Now() })
		nn.Send(Message{From: x, To: y, Size: 256})
		e.Drain()
		if sim.Duration(at) < cfg.MinLatency() {
			t.Fatalf("seed %d: delivery after %v beat MinLatency %v", seed, at, cfg.MinLatency())
		}
	}

	e := sim.NewEngine()
	nn := New(e, Config{JitterFrac: -1}, sim.NewRand(1)) // no jitter
	x := nn.Attach(func(Message) {})
	var at sim.Time
	y := nn.Attach(func(Message) { at = e.Now() })
	nn.Send(Message{From: x, To: y, Size: 1024})
	e.Drain()
	// One-way Latency covers prop + one serialization; delivery also pays
	// the egress port, so observed = Latency + one extra serialization.
	ser := sim.Duration(float64((1024+64)*8) / gbps)
	if got, want := sim.Duration(at), (Config{}).Latency(1024)+ser; got != want {
		t.Fatalf("delivery %v, Latency-based prediction %v", got, want)
	}
}
