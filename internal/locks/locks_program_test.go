package locks

import (
	"testing"

	"hyperloop/internal/core"
	"hyperloop/internal/sim"
)

// fakeCASer always loses every CAS and records when each attempt was made.
// It deliberately does NOT implement LoopCASer, so it exercises the legacy
// host-bounced retry path even when HostOnly is unset.
type fakeCASer struct {
	eng   *sim.Engine
	n     int
	times []sim.Time
}

func (f *fakeCASer) GroupSize() int { return f.n }

func (f *fakeCASer) GCAS(off int, old, new uint64, exec core.ExecuteMap, done func(core.Result)) error {
	f.times = append(f.times, f.eng.Now())
	res := core.Result{CASOld: make([]uint64, f.n)}
	for i := range res.CASOld {
		res.CASOld[i] = Word(77, 0) // a foreign holder: every CAS loses
	}
	done(res)
	return nil
}

// TestBackoffUnifiedAndBounded is the regression test for the duplicated,
// divergent backoff clamps that used to live in the writer and reader
// paths. Both paths now share backoffDelay, which must (a) start at the
// base Backoff on the first retry — the old clamps both skipped it and
// jumped straight to 2× — and (b) double per retry up to 64×. It also pins
// the attempt-bound semantics: MaxRetries=N yields exactly N CAS attempts,
// not N+1.
func TestBackoffUnifiedAndBounded(t *testing.T) {
	eng := sim.NewEngine()
	fake := &fakeCASer{eng: eng, n: 3}
	m := New(fake, eng, 0, Config{Backoff: sim.Microsecond})

	// The helper itself: 1×, 2×, 4×, … capped at 64×.
	for attempt, want := range map[int]sim.Duration{
		1: 1 * sim.Microsecond, 2: 2 * sim.Microsecond, 3: 4 * sim.Microsecond,
		7: 64 * sim.Microsecond, 8: 64 * sim.Microsecond, 100: 64 * sim.Microsecond,
	} {
		if got := m.backoffDelay(attempt); got != want {
			t.Errorf("backoffDelay(%d) = %v, want %v", attempt, got, want)
		}
	}

	var got error
	done := false
	m.WrLock(0, 5, func(err error) { got = err; done = true })
	if !eng.RunUntil(func() bool { return done }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("writer retry loop never gave up")
	}
	if got != ErrGaveUp {
		t.Fatalf("err = %v, want ErrGaveUp", got)
	}
	// MaxRetries=64 (default) must mean exactly 64 CAS attempts.
	if len(fake.times) != 64 {
		t.Fatalf("CAS attempts = %d, want exactly MaxRetries=64", len(fake.times))
	}
	// Inter-attempt gaps follow the unified schedule: 1µs, 2µs, …, 64µs cap.
	for k := 1; k < len(fake.times); k++ {
		want := m.backoffDelay(k)
		shift := k - 1
		if shift > 6 {
			shift = 6
		}
		if lit := sim.Microsecond << uint(shift); want != lit {
			t.Fatalf("backoffDelay(%d) = %v, want literal %v", k, want, lit)
		}
		if gap := fake.times[k].Sub(fake.times[k-1]); gap != want {
			t.Fatalf("gap before attempt %d = %v, want %v (base delay skipped?)", k+1, gap, want)
		}
	}

	// Reader path shares the same schedule: its re-probe delays after the
	// initial lost CAS must also start doubling from the unified helper.
	fake.times = nil
	done = false
	m.RdLock(0, 0, func(err error) { got = err; done = true })
	if !eng.RunUntil(func() bool { return done }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("reader retry loop never gave up")
	}
	if got != ErrGaveUp {
		t.Fatalf("reader err = %v, want ErrGaveUp", got)
	}
	if len(fake.times) < 3 {
		t.Fatalf("reader made only %d attempts", len(fake.times))
	}
	// Attempt 1 is the optimistic CAS (lost, attempt counter → 1); probe k
	// (k ≥ 2) is scheduled with backoffDelay(k).
	for k := 1; k < len(fake.times); k++ {
		if gap := fake.times[k].Sub(fake.times[k-1]); gap != m.backoffDelay(k+1) {
			t.Fatalf("reader gap before probe %d = %v, want %v", k+1, gap, m.backoffDelay(k+1))
		}
	}
}

// nicPathUsed asserts the manager actually routes through GAtomicLoop for
// a real group (guards against silently falling back to host loops).
func TestNICPathSelected(t *testing.T) {
	eng, g, m := setup(t, 2)
	if m.loopGroup() == nil {
		t.Fatal("core.Group must satisfy LoopCASer")
	}
	m.cfg.HostOnly = true
	if m.loopGroup() != nil {
		t.Fatal("HostOnly must force the legacy path")
	}
	m.cfg.HostOnly = false
	_ = eng
	_ = g
}

// TestWrLockNICContendedHandoff: writer 2 spins NIC-side against writer 1's
// hold and wins after the release, with the retries accounted in Stats.
func TestWrLockNICContendedHandoff(t *testing.T) {
	eng, g, m := setup(t, 3)
	done := false
	m.WrLock(0, 1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)

	// Writer 2 contends; writer 1 releases mid-spin.
	eng.Schedule(30*sim.Microsecond, func() {
		m.WrUnlock(0, 1, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
		})
	})
	done = false
	m.WrLock(0, 2, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	for i := 0; i < 3; i++ {
		if w := word(g, i, 0); w != Word(2, 0) {
			t.Fatalf("replica %d word %x, want owner-2 lock", i, w)
		}
	}
	_, retries, _ := m.Stats()
	if retries == 0 {
		t.Fatal("contended NIC acquisition recorded no retries")
	}
}

// TestWrLockNICUndoOnRestExhaustion: replica 0's program wins, but a reader
// parked on replica 1 never drains. The host sweep must exhaust and undo
// everything held — including the program's replica-0 win.
func TestWrLockNICUndoOnRestExhaustion(t *testing.T) {
	eng, g, m := setup(t, 3)
	m.cfg.MaxRetries = 3
	b := make([]byte, 8)
	b[0] = 1 // one reader registered on replica 1, never leaves
	g.Replica(1).StoreWrite(lockBase, b)

	done := false
	var got error
	m.WrLock(0, 5, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != ErrGaveUp {
		t.Fatalf("err = %v, want ErrGaveUp", got)
	}
	if w := word(g, 0, 0); w != 0 {
		t.Fatalf("replica 0 not undone after giving up: %x", w)
	}
	if w := word(g, 2, 0); w != 0 {
		t.Fatalf("replica 2 not undone after giving up: %x", w)
	}
	if r := Readers(word(g, 1, 0)); r != 1 {
		t.Fatalf("parked reader disturbed: %d", r)
	}
	_, _, undos := m.Stats()
	if undos == 0 {
		t.Fatal("no undo recorded")
	}
}

// TestRdLockNICNoPhantomRegistrations: a reader spinning NIC-side behind a
// writer must register exactly once when the writer leaves — the guarded
// fetch-and-add must not have incremented during any blocked attempt.
func TestRdLockNICNoPhantomRegistrations(t *testing.T) {
	eng, g, m := setup(t, 3)
	b := make([]byte, 8)
	w := Word(9, 0)
	for i := 0; i < 8; i++ {
		b[i] = byte(w >> (8 * i))
	}
	g.Replica(1).StoreWrite(lockBase, b)
	eng.Schedule(40*sim.Microsecond, func() {
		var zero [8]byte
		g.Replica(1).StoreWrite(lockBase, zero[:])
	})

	done := false
	m.RdLock(0, 1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	if r := Readers(word(g, 1, 0)); r != 1 {
		t.Fatalf("reader count = %d, want exactly 1 (phantom registrations?)", r)
	}
	_, retries, _ := m.Stats()
	if retries == 0 {
		t.Fatal("blocked reader recorded no retries")
	}

	done = false
	m.RdUnlock(0, 1, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	if r := Readers(word(g, 1, 0)); r != 0 {
		t.Fatalf("reader count = %d after unlock, want 0", r)
	}
}

// TestHostOnlyMatchesNIC runs the same contended scenario through both
// arms; the lock-state outcome must be identical.
func TestHostOnlyMatchesNIC(t *testing.T) {
	outcome := func(hostOnly bool) [3]uint64 {
		eng, g, m := setup(t, 3)
		m.cfg.HostOnly = hostOnly
		done := 0
		m.WrLock(0, 1, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			eng.Schedule(15*sim.Microsecond, func() {
				m.WrUnlock(0, 1, func(error) { done++ })
			})
		})
		m.WrLock(0, 2, func(err error) {
			if err != nil {
				t.Fatal(err)
			}
			done++
		})
		if !eng.RunUntil(func() bool { return done >= 2 }, eng.Now().Add(10*sim.Second)) {
			t.Fatalf("hostOnly=%v stalled", hostOnly)
		}
		var ws [3]uint64
		for i := range ws {
			ws[i] = word(g, i, 0)
		}
		return ws
	}
	nic, host := outcome(false), outcome(true)
	if nic != host {
		t.Fatalf("NIC arm %x != host arm %x", nic, host)
	}
	if nic[0] != Word(2, 0) {
		t.Fatalf("final holder %x, want owner 2", nic[0])
	}
}
