// Package locks implements HyperLoop's group locking (§4.2, §5 "Locking
// and Isolation"): single-writer/multiple-reader locks whose state lives in
// each replica's NVM and is manipulated exclusively with gCAS — so lock
// acquisition and release never involve replica CPUs.
//
// Lock-word layout (8 bytes, little endian):
//
//	bit 63      writer bit
//	bits 48-62  writer id (15 bits)
//	bits 0-47   reader count
//
// A writer acquires by CAS(0 → writerBit|id) on every replica; a partial
// acquisition (some replicas already locked) is undone via the execute map,
// exactly the paper's undo idiom. A reader registers on one replica only
// (the one it will read from), incrementing that replica's reader count
// with a CAS retry loop.
package locks

import (
	"errors"
	"fmt"

	"hyperloop/internal/core"
	"hyperloop/internal/sim"
)

// Lock-word fields.
const (
	writerBit   = uint64(1) << 63
	writerShift = 48
	readerMask  = (uint64(1) << writerShift) - 1
)

// Word composes a lock word.
func Word(writer uint64, readers uint64) uint64 {
	if writer != 0 {
		return writerBit | (writer&0x7fff)<<writerShift | (readers & readerMask)
	}
	return readers & readerMask
}

// HasWriter reports whether a lock word carries the writer bit.
func HasWriter(w uint64) bool { return w&writerBit != 0 }

// Readers extracts the reader count.
func Readers(w uint64) uint64 { return w & readerMask }

// Errors.
var (
	ErrNotHeld  = errors.New("locks: lock not held by this owner")
	ErrGaveUp   = errors.New("locks: acquisition retries exhausted")
	ErrBadOwner = errors.New("locks: owner id must be in [1, 32767]")
)

// CASer is the group-CAS surface the manager needs (satisfied by
// *core.Group).
type CASer interface {
	GCAS(off int, old, new uint64, exec core.ExecuteMap, done func(core.Result)) error
	GroupSize() int
}

// Config tunes retry behaviour.
type Config struct {
	// MaxRetries bounds acquisition attempts (default 64).
	MaxRetries int
	// Backoff is the initial retry delay, doubled per attempt up to 64×
	// (default 5µs).
	Backoff sim.Duration
}

func (c *Config) fill() {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * sim.Microsecond
	}
}

// Manager coordinates locks stored at lockBase + 8*lock within the shared
// store window.
type Manager struct {
	g        CASer
	eng      *sim.Engine
	cfg      Config
	lockBase int

	acquires uint64
	retries  uint64
	undos    uint64
}

// New creates a lock manager over a group. Lock i's word lives at
// lockBase + 8*i in every store.
func New(g CASer, eng *sim.Engine, lockBase int, cfg Config) *Manager {
	cfg.fill()
	return &Manager{g: g, eng: eng, cfg: cfg, lockBase: lockBase}
}

// Stats returns (acquisitions, retries, undo operations).
func (m *Manager) Stats() (uint64, uint64, uint64) { return m.acquires, m.retries, m.undos }

func (m *Manager) off(lock int) int { return m.lockBase + 8*lock }

// WrLock acquires the group-wide exclusive write lock for owner (a nonzero
// id < 2^15). done receives nil on success.
func (m *Manager) WrLock(lock int, owner uint64, done func(error)) {
	if owner == 0 || owner > 0x7fff {
		done(ErrBadOwner)
		return
	}
	all := core.AllReplicas(m.g.GroupSize())
	want := Word(owner, 0)
	attempt := 0
	backoff := m.cfg.Backoff

	var try func(exec core.ExecuteMap)
	try = func(exec core.ExecuteMap) {
		err := m.g.GCAS(m.off(lock), 0, want, exec, func(res core.Result) {
			if res.Err != nil {
				done(res.Err)
				return
			}
			// Which replicas did we just acquire?
			var won core.ExecuteMap
			allWon := true
			for i, orig := range res.CASOld {
				if !exec.Has(i) {
					continue
				}
				if orig == 0 {
					won |= 1 << uint(i)
				} else {
					allWon = false
				}
			}
			if allWon {
				m.acquires++
				done(nil)
				return
			}
			// Partial acquisition: undo the won subset, back off, retry
			// on all replicas (the paper's execute-map undo).
			proceed := func() {
				attempt++
				if attempt >= m.cfg.MaxRetries {
					done(ErrGaveUp)
					return
				}
				m.retries++
				d := backoff
				if attempt < 7 {
					d = backoff << uint(attempt)
				} else {
					d = backoff << 6
				}
				m.eng.Schedule(d, func() { try(all) })
			}
			if won == 0 {
				proceed()
				return
			}
			m.undos++
			uerr := m.g.GCAS(m.off(lock), want, 0, won, func(ur core.Result) {
				if ur.Err != nil {
					done(ur.Err)
					return
				}
				proceed()
			})
			if uerr != nil {
				done(uerr)
			}
		})
		if err != nil {
			done(err)
		}
	}
	try(all)
}

// WrUnlock releases the write lock held by owner on all replicas.
func (m *Manager) WrUnlock(lock int, owner uint64, done func(error)) {
	want := Word(owner, 0)
	all := core.AllReplicas(m.g.GroupSize())
	err := m.g.GCAS(m.off(lock), want, 0, all, func(res core.Result) {
		if res.Err != nil {
			done(res.Err)
			return
		}
		for _, orig := range res.CASOld {
			if orig != want {
				done(fmt.Errorf("%w: word=%x", ErrNotHeld, orig))
				return
			}
		}
		done(nil)
	})
	if err != nil {
		done(err)
	}
}

// RdLock registers a reader on a single replica, allowing a consistent
// read from that replica while writers are excluded there. Readers on
// different replicas proceed concurrently — that is how HyperLoop lets all
// replicas serve reads (§5).
func (m *Manager) RdLock(lock, replica int, done func(error)) {
	m.casLoopOnReplica(lock, replica, func(cur uint64) (uint64, bool) {
		if HasWriter(cur) {
			return 0, false // writer active: back off and retry
		}
		return cur + 1, true
	}, done)
}

// RdUnlock drops a reader registration on a replica.
func (m *Manager) RdUnlock(lock, replica int, done func(error)) {
	m.casLoopOnReplica(lock, replica, func(cur uint64) (uint64, bool) {
		if Readers(cur) == 0 {
			return 0, false
		}
		return cur - 1, true
	}, done)
}

// casLoopOnReplica retries CAS on one replica until update succeeds. update
// maps the current word to the desired word, or reports not-ready (retry
// after backoff).
func (m *Manager) casLoopOnReplica(lock, replica int, update func(uint64) (uint64, bool), done func(error)) {
	exec := core.ExecuteMap(1) << uint(replica)
	attempt := 0
	expected := uint64(0)

	var try func()
	try = func() {
		next, ready := update(expected)
		if !ready {
			attempt++
			if attempt >= m.cfg.MaxRetries {
				done(ErrGaveUp)
				return
			}
			m.retries++
			// Re-probe by attempting a no-change CAS to learn the word.
			m.eng.Schedule(m.cfg.Backoff<<uint(minInt(attempt, 6)), func() {
				probe := m.g.GCAS(m.off(lock), expected, expected, exec, func(res core.Result) {
					if res.Err != nil {
						done(res.Err)
						return
					}
					expected = res.CASOld[replica]
					try()
				})
				if probe != nil {
					done(probe)
				}
			})
			return
		}
		err := m.g.GCAS(m.off(lock), expected, next, exec, func(res core.Result) {
			if res.Err != nil {
				done(res.Err)
				return
			}
			orig := res.CASOld[replica]
			if orig == expected {
				done(nil)
				return
			}
			// Lost a race: adopt the observed value and retry.
			attempt++
			if attempt >= m.cfg.MaxRetries {
				done(ErrGaveUp)
				return
			}
			m.retries++
			expected = orig
			try()
		})
		if err != nil {
			done(err)
		}
	}
	try()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
