// Package locks implements HyperLoop's group locking (§4.2, §5 "Locking
// and Isolation"): single-writer/multiple-reader locks whose state lives in
// each replica's NVM and is manipulated exclusively with gCAS — so lock
// acquisition and release never involve replica CPUs.
//
// Lock-word layout (8 bytes, little endian):
//
//	bit 63      writer bit
//	bits 48-62  writer id (15 bits)
//	bits 0-47   reader count
//
// A writer acquires by CAS(0 → writerBit|id) on every replica; a partial
// acquisition (some replicas already locked) is undone via the execute map,
// exactly the paper's undo idiom. A reader registers on one replica only
// (the one it will read from), incrementing that replica's reader count
// with a CAS retry loop.
//
// When the group implements LoopCASer (core.Group does), the retry loops
// are NOT host-bounced: acquisition posts one NIC-resident WQE program
// (core.GAtomicLoop) whose CAS → compare → conditional-re-doorbell chain
// retries on the NIC with capped exponential backoff, and the host hears
// only the final verdict. Writers run the program against replica 0 first —
// contending writers serialize there, so the remaining replicas are claimed
// by a nearly uncontended host gCAS sweep. Readers run a guarded
// fetch-and-add program on their one replica: the increment executes only
// while the writer bit is clear, so a blocked reader never leaves phantom
// registrations behind. Set Config.HostOnly to force the legacy
// host-driven loops (the baseline arm in experiments).
package locks

import (
	"errors"
	"fmt"

	"hyperloop/internal/core"
	"hyperloop/internal/sim"
)

// Lock-word fields.
const (
	writerBit   = uint64(1) << 63
	writerShift = 48
	readerMask  = (uint64(1) << writerShift) - 1
)

// Word composes a lock word.
func Word(writer uint64, readers uint64) uint64 {
	if writer != 0 {
		return writerBit | (writer&0x7fff)<<writerShift | (readers & readerMask)
	}
	return readers & readerMask
}

// HasWriter reports whether a lock word carries the writer bit.
func HasWriter(w uint64) bool { return w&writerBit != 0 }

// Readers extracts the reader count.
func Readers(w uint64) uint64 { return w & readerMask }

// Errors.
var (
	ErrNotHeld  = errors.New("locks: lock not held by this owner")
	ErrGaveUp   = errors.New("locks: acquisition retries exhausted")
	ErrBadOwner = errors.New("locks: owner id must be in [1, 32767]")
)

// CASer is the group-CAS surface the manager needs (satisfied by
// *core.Group).
type CASer interface {
	GCAS(off int, old, new uint64, exec core.ExecuteMap, done func(core.Result)) error
	GroupSize() int
}

// LoopCASer extends CASer with the NIC-resident retry-loop primitive. When
// the manager's group satisfies it, acquisition loops run as posted WQE
// programs instead of host-bounced retries.
type LoopCASer interface {
	CASer
	GAtomicLoop(spec core.LoopSpec, done func(core.Result)) error
}

// Config tunes retry behaviour.
type Config struct {
	// MaxRetries bounds acquisition attempts (default 64). Exactly
	// MaxRetries CAS attempts are made before ErrGaveUp.
	MaxRetries int
	// Backoff is the first retry's delay, doubled per retry up to 64×
	// (default 5µs).
	Backoff sim.Duration
	// HostOnly forces the legacy host-driven retry loops even when the
	// group supports NIC-resident programs.
	HostOnly bool
}

func (c *Config) fill() {
	if c.MaxRetries <= 0 {
		c.MaxRetries = 64
	}
	if c.Backoff <= 0 {
		c.Backoff = 5 * sim.Microsecond
	}
}

// Manager coordinates locks stored at lockBase + 8*lock within the shared
// store window.
type Manager struct {
	g        CASer
	eng      *sim.Engine
	cfg      Config
	lockBase int

	acquires uint64
	retries  uint64
	undos    uint64
}

// New creates a lock manager over a group. Lock i's word lives at
// lockBase + 8*i in every store.
func New(g CASer, eng *sim.Engine, lockBase int, cfg Config) *Manager {
	cfg.fill()
	return &Manager{g: g, eng: eng, cfg: cfg, lockBase: lockBase}
}

// Stats returns (acquisitions, retries, undo operations).
func (m *Manager) Stats() (uint64, uint64, uint64) { return m.acquires, m.retries, m.undos }

func (m *Manager) off(lock int) int { return m.lockBase + 8*lock }

// backoffDelay is the single clamp for host-driven retry pacing: retry
// `attempt` (1-based) waits Backoff<<min(attempt-1, 6), i.e. the base delay
// on the first retry, doubling per retry, capped at 64×. The NIC-resident
// programs implement the same schedule in timer-CQ ticks.
func (m *Manager) backoffDelay(attempt int) sim.Duration {
	return m.cfg.Backoff << uint(minInt(attempt-1, 6))
}

// loopGroup returns the group's NIC-program surface, or nil when
// unavailable or disabled.
func (m *Manager) loopGroup() LoopCASer {
	if m.cfg.HostOnly {
		return nil
	}
	lg, ok := m.g.(LoopCASer)
	if !ok {
		return nil
	}
	return lg
}

// WrLock acquires the group-wide exclusive write lock for owner (a nonzero
// id < 2^15). done receives nil on success.
func (m *Manager) WrLock(lock int, owner uint64, done func(error)) {
	if owner == 0 || owner > 0x7fff {
		done(ErrBadOwner)
		return
	}
	if lg := m.loopGroup(); lg != nil {
		m.wrLockNIC(lg, lock, owner, done)
		return
	}
	all := core.AllReplicas(m.g.GroupSize())
	want := Word(owner, 0)
	attempt := 0

	var try func(exec core.ExecuteMap)
	try = func(exec core.ExecuteMap) {
		err := m.g.GCAS(m.off(lock), 0, want, exec, func(res core.Result) {
			if res.Err != nil {
				done(res.Err)
				return
			}
			// Which replicas did we just acquire?
			var won core.ExecuteMap
			allWon := true
			for i, orig := range res.CASOld {
				if !exec.Has(i) {
					continue
				}
				if orig == 0 {
					won |= 1 << uint(i)
				} else {
					allWon = false
				}
			}
			if allWon {
				m.acquires++
				done(nil)
				return
			}
			// Partial acquisition: undo the won subset, back off, retry
			// on all replicas (the paper's execute-map undo).
			proceed := func() {
				attempt++
				if attempt >= m.cfg.MaxRetries {
					done(ErrGaveUp)
					return
				}
				m.retries++
				m.eng.Schedule(m.backoffDelay(attempt), func() { try(all) })
			}
			if won == 0 {
				proceed()
				return
			}
			m.undos++
			uerr := m.g.GCAS(m.off(lock), want, 0, won, func(ur core.Result) {
				if ur.Err != nil {
					done(ur.Err)
					return
				}
				proceed()
			})
			if uerr != nil {
				done(uerr)
			}
		})
		if err != nil {
			done(err)
		}
	}
	try(all)
}

// wrLockNIC acquires the write lock with the retry loop offloaded: one
// posted WQE program spins CAS(0 → want) on replica 0 with NIC-side capped
// backoff. Contending writers serialize on replica 0, so once the program
// wins, the remaining replicas are claimed by an ordinary host gCAS sweep
// that only ever waits out draining readers — won replicas are kept across
// rounds (monotone progress; writer-writer livelock is impossible because
// at most one writer is past replica 0).
func (m *Manager) wrLockNIC(lg LoopCASer, lock int, owner uint64, done func(error)) {
	want := Word(owner, 0)
	err := lg.GAtomicLoop(core.LoopSpec{
		Off: m.off(lock), Kind: core.LoopCAS, Old: 0, New: want,
		ExitWant: 0, ExitMask: 0, // full-word compare: exit once the CAS observed 0
		Exec: 1 << 0, GuardReplica: 0,
		Budget: m.cfg.MaxRetries - 1,
	}, func(res core.Result) {
		if res.Attempts > 1 {
			m.retries += uint64(res.Attempts - 1)
		}
		switch {
		case res.Err == core.ErrRetriesExhausted:
			done(ErrGaveUp)
		case res.Err != nil:
			done(res.Err)
		default:
			m.wrLockRest(lock, want, 1<<0, done)
		}
	})
	if err != nil {
		done(err)
	}
}

// wrLockRest completes a write acquisition whose replica-0 word is already
// held: CAS the remaining replicas, keeping every win across retry rounds,
// and on exhaustion undo everything held (including replica 0).
func (m *Manager) wrLockRest(lock int, want uint64, won core.ExecuteMap, done func(error)) {
	all := core.AllReplicas(m.g.GroupSize())
	attempt := 0

	var try func(exec core.ExecuteMap)
	try = func(exec core.ExecuteMap) {
		if exec == 0 {
			m.acquires++
			done(nil)
			return
		}
		err := m.g.GCAS(m.off(lock), 0, want, exec, func(res core.Result) {
			if res.Err != nil {
				done(res.Err)
				return
			}
			for i, orig := range res.CASOld {
				if exec.Has(i) && orig == 0 {
					won |= 1 << uint(i)
				}
			}
			remaining := all &^ won
			if remaining == 0 {
				m.acquires++
				done(nil)
				return
			}
			attempt++
			if attempt >= m.cfg.MaxRetries {
				m.undos++
				uerr := m.g.GCAS(m.off(lock), want, 0, won, func(ur core.Result) {
					if ur.Err != nil {
						done(ur.Err)
						return
					}
					done(ErrGaveUp)
				})
				if uerr != nil {
					done(uerr)
				}
				return
			}
			m.retries++
			m.eng.Schedule(m.backoffDelay(attempt), func() { try(remaining) })
		})
		if err != nil {
			done(err)
		}
	}
	try(all &^ won)
}

// WrUnlock releases the write lock held by owner on all replicas.
func (m *Manager) WrUnlock(lock int, owner uint64, done func(error)) {
	want := Word(owner, 0)
	all := core.AllReplicas(m.g.GroupSize())
	err := m.g.GCAS(m.off(lock), want, 0, all, func(res core.Result) {
		if res.Err != nil {
			done(res.Err)
			return
		}
		for _, orig := range res.CASOld {
			if orig != want {
				done(fmt.Errorf("%w: word=%x", ErrNotHeld, orig))
				return
			}
		}
		done(nil)
	})
	if err != nil {
		done(err)
	}
}

// RdLock registers a reader on a single replica, allowing a consistent
// read from that replica while writers are excluded there. Readers on
// different replicas proceed concurrently — that is how HyperLoop lets all
// replicas serve reads (§5).
func (m *Manager) RdLock(lock, replica int, done func(error)) {
	if lg := m.loopGroup(); lg != nil {
		// One posted program: a fetch-and-add on the reader-count field
		// guarded by the writer bit — the increment never executes while a
		// writer holds the word (no phantom registrations to undo), and the
		// NIC re-arms itself with capped backoff until the bit clears.
		err := lg.GAtomicLoop(core.LoopSpec{
			Off: m.off(lock), Kind: core.LoopMaskFAdd,
			Add: 1, FieldMask: readerMask, GuardWant: 0, GuardMask: writerBit,
			ExitWant: 0, ExitMask: writerBit,
			Exec: core.ExecuteMap(1) << uint(replica), GuardReplica: replica,
			Budget: m.cfg.MaxRetries - 1,
		}, func(res core.Result) {
			if res.Attempts > 1 {
				m.retries += uint64(res.Attempts - 1)
			}
			switch {
			case res.Err == core.ErrRetriesExhausted:
				done(ErrGaveUp)
			case res.Err != nil:
				done(res.Err)
			default:
				done(nil)
			}
		})
		if err != nil {
			done(err)
		}
		return
	}
	m.casLoopOnReplica(lock, replica, func(cur uint64) (uint64, bool) {
		if HasWriter(cur) {
			return 0, false // writer active: back off and retry
		}
		return cur + 1, true
	}, done)
}

// RdUnlock drops a reader registration on a replica.
func (m *Manager) RdUnlock(lock, replica int, done func(error)) {
	m.casLoopOnReplica(lock, replica, func(cur uint64) (uint64, bool) {
		if Readers(cur) == 0 {
			return 0, false
		}
		return cur - 1, true
	}, done)
}

// casLoopOnReplica retries CAS on one replica until update succeeds. update
// maps the current word to the desired word, or reports not-ready (retry
// after backoff).
func (m *Manager) casLoopOnReplica(lock, replica int, update func(uint64) (uint64, bool), done func(error)) {
	exec := core.ExecuteMap(1) << uint(replica)
	attempt := 0
	expected := uint64(0)

	var try func()
	try = func() {
		next, ready := update(expected)
		if !ready {
			attempt++
			if attempt >= m.cfg.MaxRetries {
				done(ErrGaveUp)
				return
			}
			m.retries++
			// Re-probe by attempting a no-change CAS to learn the word.
			m.eng.Schedule(m.backoffDelay(attempt), func() {
				probe := m.g.GCAS(m.off(lock), expected, expected, exec, func(res core.Result) {
					if res.Err != nil {
						done(res.Err)
						return
					}
					expected = res.CASOld[replica]
					try()
				})
				if probe != nil {
					done(probe)
				}
			})
			return
		}
		err := m.g.GCAS(m.off(lock), expected, next, exec, func(res core.Result) {
			if res.Err != nil {
				done(res.Err)
				return
			}
			orig := res.CASOld[replica]
			if orig == expected {
				done(nil)
				return
			}
			// Lost a race: adopt the observed value and retry.
			attempt++
			if attempt >= m.cfg.MaxRetries {
				done(ErrGaveUp)
				return
			}
			m.retries++
			expected = orig
			try()
		})
		if err != nil {
			done(err)
		}
	}
	try()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
