package locks

import (
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
)

const lockBase = 512 << 10

func setup(t *testing.T, n int) (*sim.Engine, *core.Group, *Manager) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: n + 1, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := core.New(cl, core.Config{Depth: 128})
	m := New(g, eng, lockBase, Config{})
	return eng, g, m
}

func await(t *testing.T, eng *sim.Engine, done *bool) {
	t.Helper()
	if !eng.RunUntil(func() bool { return *done }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("lock operation never completed")
	}
}

func word(g *core.Group, replica, lock int) uint64 {
	b := g.Replica(replica).StoreBytes(lockBase+8*lock, 8)
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestWordHelpers(t *testing.T) {
	w := Word(5, 3)
	if !HasWriter(w) || Readers(w) != 3 {
		t.Fatalf("word %x", w)
	}
	if HasWriter(Word(0, 7)) || Readers(Word(0, 7)) != 7 {
		t.Fatal("reader-only word wrong")
	}
}

func TestWrLockUnlock(t *testing.T) {
	eng, g, m := setup(t, 3)
	done := false
	m.WrLock(0, 7, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	for i := 0; i < 3; i++ {
		if w := word(g, i, 0); !HasWriter(w) {
			t.Fatalf("replica %d lock word %x after WrLock", i, w)
		}
	}
	done = false
	m.WrUnlock(0, 7, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	for i := 0; i < 3; i++ {
		if w := word(g, i, 0); w != 0 {
			t.Fatalf("replica %d lock word %x after WrUnlock", i, w)
		}
	}
	acq, _, _ := m.Stats()
	if acq != 1 {
		t.Fatalf("acquires = %d", acq)
	}
}

func TestWrUnlockWrongOwner(t *testing.T) {
	eng, _, m := setup(t, 2)
	done := false
	m.WrLock(0, 3, func(error) { done = true })
	await(t, eng, &done)
	done = false
	var got error
	m.WrUnlock(0, 4, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got == nil {
		t.Fatal("unlock by wrong owner succeeded")
	}
}

func TestWrLockContention(t *testing.T) {
	// Two writers race; both must eventually hold the lock exactly once,
	// serialized.
	eng, g, m := setup(t, 3)
	holds := 0
	concurrent := 0
	finished := 0
	acquire := func(owner uint64) {
		m.WrLock(1, owner, func(err error) {
			if err != nil {
				t.Errorf("owner %d: %v", owner, err)
				finished = 2
				return
			}
			concurrent++
			if concurrent > 1 {
				t.Error("two writers held the lock at once")
			}
			holds++
			// Hold briefly, then release.
			eng.Schedule(20*sim.Microsecond, func() {
				concurrent--
				m.WrUnlock(1, owner, func(err error) {
					if err != nil {
						t.Errorf("unlock %d: %v", owner, err)
					}
					finished++
				})
			})
		})
	}
	acquire(1)
	acquire(2)
	if !eng.RunUntil(func() bool { return finished >= 2 }, eng.Now().Add(10*sim.Second)) {
		t.Fatalf("contended locking stalled (holds=%d finished=%d)", holds, finished)
	}
	if holds != 2 {
		t.Fatalf("holds = %d, want 2", holds)
	}
	for i := 0; i < 3; i++ {
		if w := word(g, i, 1); w != 0 {
			t.Fatalf("replica %d lock leaked: %x", i, w)
		}
	}
}

func TestPartialAcquisitionUndone(t *testing.T) {
	// Pre-lock replica 1 by a foreign owner directly; a group WrLock must
	// undo its partial wins and keep retrying (then give up cleanly).
	eng, g, m := setup(t, 3)
	m.cfg.MaxRetries = 3
	foreign := Word(99, 0)
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(foreign >> (8 * i))
	}
	g.Replica(1).StoreWrite(lockBase, b)

	done := false
	var got error
	m.WrLock(0, 5, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != ErrGaveUp {
		t.Fatalf("expected ErrGaveUp, got %v", got)
	}
	// Replicas 0 and 2 must have been undone.
	if w := word(g, 0, 0); w != 0 {
		t.Fatalf("replica 0 not undone: %x", w)
	}
	if w := word(g, 2, 0); w != foreign+0 && w != foreign {
		_ = w
	}
	if w := word(g, 2, 0); w != 0 {
		t.Fatalf("replica 2 not undone: %x", w)
	}
	if w := word(g, 1, 0); w != foreign {
		t.Fatalf("foreign lock disturbed: %x", w)
	}
	_, _, undos := m.Stats()
	if undos == 0 {
		t.Fatal("no undo recorded")
	}
}

func TestRdLockConcurrentReaders(t *testing.T) {
	eng, g, m := setup(t, 3)
	done := 0
	for i := 0; i < 3; i++ {
		i := i
		m.RdLock(0, i%3, func(err error) {
			if err != nil {
				t.Errorf("reader %d: %v", i, err)
			}
			done++
		})
	}
	if !eng.RunUntil(func() bool { return done >= 3 }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("readers stalled")
	}
	for i := 0; i < 3; i++ {
		if r := Readers(word(g, i, 0)); r != 1 {
			t.Fatalf("replica %d readers = %d", i, r)
		}
	}
}

func TestRdLockBlocksWriter(t *testing.T) {
	eng, _, m := setup(t, 2)
	m.cfg.MaxRetries = 4
	done := false
	m.RdLock(0, 0, func(error) { done = true })
	await(t, eng, &done)

	done = false
	var got error
	m.WrLock(0, 6, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != ErrGaveUp {
		t.Fatalf("writer should block behind reader: %v", got)
	}

	// Release the reader; the writer can now acquire.
	done = false
	m.RdUnlock(0, 0, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	await(t, eng, &done)
	done = false
	m.WrLock(0, 6, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != nil {
		t.Fatalf("writer blocked after reader left: %v", got)
	}
}

func TestWriterBlocksReader(t *testing.T) {
	eng, _, m := setup(t, 2)
	m.cfg.MaxRetries = 4
	done := false
	m.WrLock(0, 9, func(error) { done = true })
	await(t, eng, &done)

	done = false
	var got error
	m.RdLock(0, 1, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != ErrGaveUp {
		t.Fatalf("reader should block behind writer: %v", got)
	}

	done = false
	m.WrUnlock(0, 9, func(error) { done = true })
	await(t, eng, &done)
	done = false
	m.RdLock(0, 1, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != nil {
		t.Fatalf("reader blocked after writer left: %v", got)
	}
}

func TestRdUnlockWithoutReaders(t *testing.T) {
	eng, _, m := setup(t, 2)
	m.cfg.MaxRetries = 3
	done := false
	var got error
	m.RdUnlock(0, 0, func(err error) { got = err; done = true })
	await(t, eng, &done)
	if got != ErrGaveUp {
		t.Fatalf("unlock with zero readers: %v", got)
	}
}

func TestBadOwnerRejected(t *testing.T) {
	_, _, m := setup(t, 2)
	var got error
	m.WrLock(0, 0, func(err error) { got = err })
	if got != ErrBadOwner {
		t.Fatalf("owner 0: %v", got)
	}
	m.WrLock(0, 1<<20, func(err error) { got = err })
	if got != ErrBadOwner {
		t.Fatalf("oversized owner: %v", got)
	}
}

func TestManyLocksIndependent(t *testing.T) {
	eng, g, m := setup(t, 2)
	done := 0
	for i := 0; i < 16; i++ {
		i := i
		m.WrLock(i, uint64(i+1), func(err error) {
			if err != nil {
				t.Errorf("lock %d: %v", i, err)
			}
			done++
		})
	}
	if !eng.RunUntil(func() bool { return done >= 16 }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("parallel locks stalled")
	}
	for i := 0; i < 16; i++ {
		if w := word(g, 0, i); !HasWriter(w) {
			t.Fatalf("lock %d not held: %x", i, w)
		}
	}
}
