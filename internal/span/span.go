// Package span is the op-scoped tracing half of the observability plane
// (DESIGN.md §12): virtual-time spans that thread one client operation
// through the layers — op issue → WQE chain post → per-hop NIC execution
// (bridged from the rdma.TraceEvent stream) → WAL append → commit/ack — so
// a gWRITE/gCAS decomposes into per-stage durations that sum exactly to
// its end-to-end latency.
//
// Spans are observation-only: a Recorder never schedules engine events and
// never mutates simulation state, so enabling spans cannot change any
// experiment output. All timestamps come from the engine's virtual clock.
package span

import (
	"fmt"

	"hyperloop/internal/sim"
)

// DefaultRetain caps how many root spans a Recorder keeps for inspection.
// Spans past the cap still count in the conservation totals (Started/Ended
// accounting stays exact) but their objects are not retained.
const DefaultRetain = 1 << 15

// Fence marks a shard epoch advance (migration cutover): no span tagged
// with the shard's previous epoch may straddle this instant unnoticed.
type Fence struct {
	At    sim.Time
	Shard int
	Epoch uint64 // the epoch that became current at At
}

// Note is an annotated point event (fault injections, failovers).
type Note struct {
	At   sim.Time
	Kind string
	What string
}

func (n Note) String() string { return fmt.Sprintf("%v [%s] %s", n.At, n.Kind, n.What) }

// Span is one timed operation or stage. Shard is -1 when untagged.
type Span struct {
	rec   *Recorder
	ID    uint64
	Name  string
	Label string
	Start sim.Time
	EndAt sim.Time
	ended bool

	Shard        int
	Epoch        uint64
	CrossedFence bool // op observed an epoch change between issue and ack

	Parent      *Span
	Children    []*Span
	Annotations []Note
}

// Recorder collects spans for one engine. Not safe for concurrent use;
// parallel sweeps give each worker cell its own recorder.
type Recorder struct {
	eng    *sim.Engine
	retain int

	roots  []*Span
	fences []Fence
	notes  []Note

	started     uint64
	ended       uint64
	doubleEnded uint64
	dropped     uint64 // spans started past the retention cap
	nextID      uint64
}

// NewRecorder creates a recorder bound to the engine clock.
func NewRecorder(eng *sim.Engine) *Recorder {
	return &Recorder{eng: eng, retain: DefaultRetain}
}

// SetRetain overrides the retained-root cap (0 keeps every span).
func (r *Recorder) SetRetain(n int) { r.retain = n }

// Start opens a root span now.
func (r *Recorder) Start(name, label string) *Span {
	r.nextID++
	r.started++
	s := &Span{rec: r, ID: r.nextID, Name: name, Label: label, Start: r.eng.Now(), Shard: -1}
	if r.retain == 0 || len(r.roots) < r.retain {
		r.roots = append(r.roots, s)
	} else {
		r.dropped++
	}
	return s
}

// Child opens a stage span under s, starting now.
func (s *Span) Child(name string) *Span {
	r := s.rec
	r.nextID++
	r.started++
	c := &Span{rec: r, ID: r.nextID, Name: name, Label: s.Label,
		Start: r.eng.Now(), Shard: -1, Parent: s}
	s.Children = append(s.Children, c)
	return c
}

// End closes the span now. Ending twice is recorded as a conservation
// violation rather than panicking, so the checker can report it.
func (s *Span) End() {
	if s.ended {
		s.rec.doubleEnded++
		return
	}
	s.ended = true
	s.EndAt = s.rec.eng.Now()
	s.rec.ended++
}

// Ended reports whether End has run.
func (s *Span) Ended() bool { return s.ended }

// Duration returns EndAt-Start for an ended span, else 0.
func (s *Span) Duration() sim.Duration {
	if !s.ended {
		return 0
	}
	return s.EndAt.Sub(s.Start)
}

// SetShardEpoch tags the span with the shard and epoch it was issued
// against (for the epoch-fence invariant).
func (s *Span) SetShardEpoch(shard int, epoch uint64) {
	s.Shard, s.Epoch = shard, epoch
}

// MarkCrossedFence records that the op knowingly observed an epoch change
// (e.g. a put acked after a migration cutover retargeted its shard).
func (s *Span) MarkCrossedFence() { s.CrossedFence = true }

// Annotate attaches a point event to the span at the current virtual time.
func (s *Span) Annotate(kind, what string) {
	s.Annotations = append(s.Annotations, Note{At: s.rec.eng.Now(), Kind: kind, What: what})
}

// Fence records a shard epoch advance at the current virtual time.
func (r *Recorder) Fence(shard int, epoch uint64) {
	r.fences = append(r.fences, Fence{At: r.eng.Now(), Shard: shard, Epoch: epoch})
}

// Annotate records a recorder-level point event (fault injections land
// here when no single op span owns them).
func (r *Recorder) Annotate(kind, what string) {
	r.notes = append(r.notes, Note{At: r.eng.Now(), Kind: kind, What: what})
}

// Roots returns the retained root spans in start order.
func (r *Recorder) Roots() []*Span { return r.roots }

// Fences returns recorded epoch fences in time order.
func (r *Recorder) Fences() []Fence { return r.fences }

// Notes returns recorder-level annotations in time order.
func (r *Recorder) Notes() []Note { return r.notes }

// Counts returns the conservation totals: spans started, ended, ended more
// than once, and started past the retention cap.
func (r *Recorder) Counts() (started, ended, doubleEnded, dropped uint64) {
	return r.started, r.ended, r.doubleEnded, r.dropped
}
