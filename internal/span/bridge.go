// Bridge adapts the rdma.TraceEvent stream into role-tagged events that
// Decompose can partition into per-stage durations. The NIC tracer is the
// only visibility into the offloaded datapath — by construction (§4) no
// host code runs between a WAIT firing and the chained WQE executing, so
// the trace-event boundaries ARE the stage boundaries.
package span

import (
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// RoleEvent is a NIC trace event tagged with the logical role of the node
// that emitted it ("client", "replica1", ...).
type RoleEvent struct {
	rdma.TraceEvent
	Role string
}

// Bridge collects RoleEvents from any number of NIC tracers into one
// time-ordered stream (the engine fires events in time order, so appends
// arrive ordered).
type Bridge struct {
	events []RoleEvent
	limit  int
}

// NewBridge creates a bridge retaining up to limit events (0 = DefaultRetain).
func NewBridge(limit int) *Bridge {
	if limit == 0 {
		limit = DefaultRetain
	}
	return &Bridge{limit: limit}
}

// Tracer returns an rdma.Tracer that tags events with role. Install it via
// NIC.SetTracer.
func (b *Bridge) Tracer(role string) rdma.Tracer {
	return func(e rdma.TraceEvent) {
		if b.limit > 0 && len(b.events) >= b.limit {
			return
		}
		b.events = append(b.events, RoleEvent{TraceEvent: e, Role: role})
	}
}

// Events returns the collected stream.
func (b *Bridge) Events() []RoleEvent { return b.events }

// Reset discards collected events (between measured ops, to bound memory).
func (b *Bridge) Reset() { b.events = b.events[:0] }

// Window returns the events with start < At <= end, preserving order.
func (b *Bridge) Window(start, end sim.Time) []RoleEvent {
	var out []RoleEvent
	for _, e := range b.events {
		if e.At > start && e.At <= end {
			out = append(out, e)
		}
	}
	return out
}

// Classifier names the stage of the gap between two adjacent events.
// prev is nil for the gap starting at the op's issue time, next is nil for
// the gap ending at the op's ack time.
type Classifier func(prev, next *RoleEvent) string

// Stage is one named slice of an op's end-to-end window.
type Stage struct {
	Name string
	Dur  sim.Duration
}

// Decompose partitions the window [start, end] at every event boundary and
// sums the slices per classified stage. The slices tile the window exactly,
// so the returned durations always sum to end-start — per-stage breakdowns
// reconcile with end-to-end latency by construction. Stages appear in
// first-encounter order (deterministic given a deterministic event stream).
func Decompose(events []RoleEvent, start, end sim.Time, classify Classifier) []Stage {
	var stages []Stage
	idx := map[string]int{}
	add := func(name string, d sim.Duration) {
		if d <= 0 {
			return
		}
		i, ok := idx[name]
		if !ok {
			i = len(stages)
			idx[name] = i
			stages = append(stages, Stage{Name: name})
		}
		stages[i].Dur += d
	}
	cur := start
	var prev *RoleEvent
	for i := range events {
		e := &events[i]
		if e.At <= start {
			prev = e
			continue
		}
		if e.At > end {
			break
		}
		add(classify(prev, e), e.At.Sub(cur))
		cur = e.At
		prev = e
	}
	add(classify(prev, nil), end.Sub(cur))
	return stages
}

// MergeStages folds src stage durations into dst (matching by name,
// first-encounter order preserved) and returns dst.
func MergeStages(dst, src []Stage) []Stage {
	idx := map[string]int{}
	for i, s := range dst {
		idx[s.Name] = i
	}
	for _, s := range src {
		if i, ok := idx[s.Name]; ok {
			dst[i].Dur += s.Dur
		} else {
			idx[s.Name] = len(dst)
			dst = append(dst, s)
		}
	}
	return dst
}
