package span

import (
	"testing"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func TestRecorderLifecycle(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng)
	s := r.Start("put", "s0")
	if s.Shard != -1 {
		t.Fatal("new span must start untagged")
	}
	var c *Span
	eng.Schedule(10, func() { c = s.Child("wal-append") })
	eng.Schedule(25, func() { c.End() })
	eng.Schedule(40, func() { s.End() })
	eng.Drain()

	if !s.Ended() || !c.Ended() {
		t.Fatal("spans not ended")
	}
	if s.Duration() != 40 || c.Duration() != 15 {
		t.Fatalf("durations: %v %v", s.Duration(), c.Duration())
	}
	if len(s.Children) != 1 || s.Children[0] != c || c.Parent != s {
		t.Fatal("parent/child links broken")
	}
	started, ended, dbl, dropped := r.Counts()
	if started != 2 || ended != 2 || dbl != 0 || dropped != 0 {
		t.Fatalf("counts: %d %d %d %d", started, ended, dbl, dropped)
	}
	if len(r.Roots()) != 1 || r.Roots()[0] != s {
		t.Fatal("root not retained")
	}
}

func TestDoubleEndCountedNotPanicking(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng)
	s := r.Start("op", "")
	s.End()
	s.End()
	if _, _, dbl, _ := r.Counts(); dbl != 1 {
		t.Fatalf("doubleEnded = %d", dbl)
	}
	if s.Duration() != 0 {
		t.Fatalf("duration after same-instant end: %v", s.Duration())
	}
}

func TestRetentionCapStillCountsConservation(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng)
	r.SetRetain(4)
	var spans []*Span
	for i := 0; i < 10; i++ {
		spans = append(spans, r.Start("op", ""))
	}
	for _, s := range spans {
		s.End()
	}
	started, ended, _, dropped := r.Counts()
	if started != 10 || ended != 10 {
		t.Fatalf("conservation totals must include dropped spans: %d/%d", started, ended)
	}
	if dropped != 6 || len(r.Roots()) != 4 {
		t.Fatalf("dropped=%d roots=%d", dropped, len(r.Roots()))
	}
}

func TestFencesNotesAnnotations(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRecorder(eng)
	s := r.Start("put", "s0")
	s.SetShardEpoch(0, 1)
	eng.Schedule(5, func() { r.Fence(0, 2) })
	eng.Schedule(7, func() { r.Annotate("fault", "crash r1") })
	eng.Schedule(9, func() { s.Annotate("wal", "append refused"); s.MarkCrossedFence(); s.End() })
	eng.Drain()
	if len(r.Fences()) != 1 || r.Fences()[0] != (Fence{At: sim.Time(5), Shard: 0, Epoch: 2}) {
		t.Fatalf("fences: %+v", r.Fences())
	}
	if len(r.Notes()) != 1 || r.Notes()[0].Kind != "fault" {
		t.Fatalf("notes: %+v", r.Notes())
	}
	if got := r.Notes()[0].String(); got == "" {
		t.Fatal("note string empty")
	}
	if len(s.Annotations) != 1 || s.Annotations[0].At != sim.Time(9) {
		t.Fatalf("annotations: %+v", s.Annotations)
	}
	if !s.CrossedFence || s.Shard != 0 || s.Epoch != 1 {
		t.Fatal("tags lost")
	}
}

// --- bridge + decompose ---

func ev(at sim.Duration, role, kind string) RoleEvent {
	return RoleEvent{TraceEvent: rdma.TraceEvent{At: sim.Time(0).Add(at), Kind: kind}, Role: role}
}

func TestDecomposeTilesWindowExactly(t *testing.T) {
	events := []RoleEvent{
		ev(0, "client", "exec"),
		ev(10, "client", "exec"),
		ev(50, "replica0", "rx"),
		ev(55, "replica0", "wait"),
		ev(55, "replica0", "exec"),
		ev(90, "client", "rx"),
		ev(200, "other", "exec"), // beyond the window: must be ignored
	}
	start, end := sim.Time(0), sim.Time(0).Add(100)
	classify := func(prev, next *RoleEvent) string {
		switch {
		case next == nil:
			return "ack"
		case next.Kind == "rx":
			return "net"
		default:
			return "nic"
		}
	}
	stages := Decompose(events, start, end, classify)
	var sum sim.Duration
	got := map[string]sim.Duration{}
	for _, s := range stages {
		sum += s.Dur
		got[s.Name] = s.Dur
	}
	if sum != end.Sub(start) {
		t.Fatalf("stages sum %v != window %v", sum, end.Sub(start))
	}
	// nic: (0,10]; net: (10,50] + (55,90]; nic: (50,55]; ack: (90,100]
	if got["nic"] != 15 || got["net"] != 75 || got["ack"] != 10 {
		t.Fatalf("stages: %+v", got)
	}
	// First-encounter order is deterministic.
	if stages[0].Name != "nic" || stages[1].Name != "net" || stages[2].Name != "ack" {
		t.Fatalf("order: %+v", stages)
	}
}

func TestDecomposeEmptyEvents(t *testing.T) {
	stages := Decompose(nil, sim.Time(0), sim.Time(0).Add(42),
		func(prev, next *RoleEvent) string {
			if prev != nil || next != nil {
				t.Fatal("no events: both ends must be nil")
			}
			return "whole"
		})
	if len(stages) != 1 || stages[0].Dur != 42 {
		t.Fatalf("stages: %+v", stages)
	}
}

func TestBridgeWindowAndReset(t *testing.T) {
	b := NewBridge(3)
	tr := b.Tracer("client")
	for i := 1; i <= 5; i++ {
		tr(rdma.TraceEvent{At: sim.Time(i * 10), Kind: "exec"})
	}
	if len(b.Events()) != 3 {
		t.Fatalf("limit not applied: %d", len(b.Events()))
	}
	w := b.Window(sim.Time(10), sim.Time(30))
	if len(w) != 2 || w[0].At != sim.Time(20) || w[1].At != sim.Time(30) {
		t.Fatalf("window (10,30]: %+v", w)
	}
	if b.Events()[0].Role != "client" {
		t.Fatal("role tag lost")
	}
	b.Reset()
	if len(b.Events()) != 0 {
		t.Fatal("reset did not clear")
	}
	if NewBridge(0).limit != DefaultRetain {
		t.Fatal("zero limit must default")
	}
}

func TestMergeStages(t *testing.T) {
	dst := []Stage{{"a", 10}, {"b", 5}}
	src := []Stage{{"b", 7}, {"c", 3}}
	out := MergeStages(dst, src)
	want := []Stage{{"a", 10}, {"b", 12}, {"c", 3}}
	if len(out) != len(want) {
		t.Fatalf("merged: %+v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("merged[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
}
