// Package memtable provides a deterministic Skiplist: the ordered
// in-memory table behind both storage engines (the analogue of RocksDB's
// memtable and the docstore's primary index). Tower heights come from a
// seeded generator so simulation runs are reproducible.
package memtable

import "hyperloop/internal/sim"

// Skiplist geometry.
const (
	maxLevel = 16
	// branching probability 1/4, expressed against a 30-bit draw.
	levelProb = 1 << 28 // p = 0.25 of (1<<30)
)

type node struct {
	key   string
	value []byte
	next  [maxLevel]*node
}

// Skiplist is a deterministic ordered map from string keys to byte values.
type Skiplist struct {
	head  *node
	level int
	count int
	r     *sim.Rand
}

// Len returns the number of live keys.
func (s *Skiplist) Len() int { return s.count }

// New creates an empty skiplist using r for tower heights.
func New(r *sim.Rand) *Skiplist {
	return &Skiplist{head: &node{}, level: 1, r: r}
}

func (s *Skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.r.Intn(1<<30) < levelProb {
		lvl++
	}
	return lvl
}

// findPredecessors fills prev with the rightmost node before key at every
// level and returns the candidate node (which may or may not match key).
func (s *Skiplist) findPredecessors(key string, prev *[maxLevel]*node) *node {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
		prev[i] = x
	}
	return x.next[0]
}

// put inserts or replaces key's value. It returns true for a fresh insert.
func (s *Skiplist) Put(key string, value []byte) bool {
	var prev [maxLevel]*node
	if n := s.findPredecessors(key, &prev); n != nil && n.key == key {
		n.value = value
		return false
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			prev[i] = s.head
		}
		s.level = lvl
	}
	n := &node{key: key, value: value}
	for i := 0; i < lvl; i++ {
		n.next[i] = prev[i].next[i]
		prev[i].next[i] = n
	}
	s.count++
	return true
}

// get returns the value for key.
func (s *Skiplist) Get(key string) ([]byte, bool) {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
		}
	}
	x = x.next[0]
	if x != nil && x.key == key {
		return x.value, true
	}
	return nil, false
}

// del removes key, reporting whether it was present.
func (s *Skiplist) Del(key string) bool {
	var prev [maxLevel]*node
	n := s.findPredecessors(key, &prev)
	if n == nil || n.key != key {
		return false
	}
	for i := 0; i < s.level; i++ {
		if prev[i].next[i] == n {
			prev[i].next[i] = n.next[i]
		}
	}
	for s.level > 1 && s.head.next[s.level-1] == nil {
		s.level--
	}
	s.count--
	return true
}

// scan returns up to limit pairs with key >= start, in order.
func (s *Skiplist) Scan(start string, limit int) []KV {
	var prev [maxLevel]*node
	n := s.findPredecessors(start, &prev)
	out := make([]KV, 0, limit)
	for n != nil && len(out) < limit {
		out = append(out, KV{Key: n.key, Value: n.value})
		n = n.next[0]
	}
	return out
}

// KV is a key-value pair returned by scans.
type KV struct {
	Key   string
	Value []byte
}
