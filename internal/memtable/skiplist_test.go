package memtable

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"hyperloop/internal/sim"
)

func TestBasic(t *testing.T) {
	s := New(sim.NewRand(1))
	if _, ok := s.Get("missing"); ok {
		t.Fatal("empty list returned a value")
	}
	if !s.Put("b", []byte("2")) {
		t.Fatal("fresh insert reported as replace")
	}
	if s.Put("b", []byte("22")) {
		t.Fatal("replace reported as insert")
	}
	s.Put("a", []byte("1"))
	s.Put("c", []byte("3"))
	if v, ok := s.Get("b"); !ok || string(v) != "22" {
		t.Fatalf("get b = %q %v", v, ok)
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if !s.Del("b") || s.Del("b") {
		t.Fatal("delete semantics wrong")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestOrderedScan(t *testing.T) {
	s := New(sim.NewRand(2))
	for i := 99; i >= 0; i-- {
		s.Put(fmt.Sprintf("key%03d", i), []byte{byte(i)})
	}
	out := s.Scan("key010", 5)
	if len(out) != 5 {
		t.Fatalf("scan returned %d", len(out))
	}
	for i, kv := range out {
		want := fmt.Sprintf("key%03d", 10+i)
		if kv.Key != want {
			t.Fatalf("scan[%d] = %s, want %s", i, kv.Key, want)
		}
	}
	if got := s.Scan("key999", 5); len(got) != 0 {
		t.Fatalf("scan past end returned %d", len(got))
	}
}

func TestScanFromEmptyPrefix(t *testing.T) {
	s := New(sim.NewRand(4))
	s.Put("b", []byte("x"))
	out := s.Scan("", 10)
	if len(out) != 1 || out[0].Key != "b" {
		t.Fatalf("scan from empty prefix: %+v", out)
	}
}

func TestPropertyMatchesMap(t *testing.T) {
	f := func(ops []struct {
		Key byte
		Del bool
	}) bool {
		s := New(sim.NewRand(3))
		shadow := map[string][]byte{}
		for i, op := range ops {
			k := fmt.Sprintf("k%d", op.Key%32)
			if op.Del {
				s.Del(k)
				delete(shadow, k)
			} else {
				v := []byte{byte(i)}
				s.Put(k, v)
				shadow[k] = v
			}
		}
		if s.Len() != len(shadow) {
			return false
		}
		for k, v := range shadow {
			got, ok := s.Get(k)
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyScanIsSorted(t *testing.T) {
	f := func(keys []uint16) bool {
		s := New(sim.NewRand(5))
		for _, k := range keys {
			s.Put(fmt.Sprintf("%05d", k), []byte("v"))
		}
		out := s.Scan("", len(keys)+1)
		for i := 1; i < len(out); i++ {
			if out[i-1].Key >= out[i].Key {
				return false
			}
		}
		return len(out) == s.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
