package ycsb

import (
	"math"
	"strings"
	"testing"
)

// TestWorkloadMixes verifies the generators reproduce Table 3's percentages.
func TestWorkloadMixes(t *testing.T) {
	want := map[string]map[OpType]int{
		"A": {Read: 50, Update: 50},
		"B": {Read: 95, Update: 5},
		"D": {Read: 95, Insert: 5},
		"E": {Insert: 5, Scan: 95},
		"F": {Read: 50, ReadModifyWrite: 50},
	}
	const ops = 200000
	for name, mix := range want {
		g := NewGenerator(Workloads[name], 100000, 42)
		for i := 0; i < ops; i++ {
			g.Next()
		}
		counts := g.Counts()
		for typ, pct := range mix {
			got := 100 * float64(counts[typ]) / ops
			if math.Abs(got-float64(pct)) > 0.5 {
				t.Errorf("workload %s: %v = %.2f%%, want %d%%", name, typ, got, pct)
			}
		}
		// No unexpected op types.
		for typ, c := range counts {
			if mix[typ] == 0 && c > 0 {
				t.Errorf("workload %s generated unexpected %v ops", name, typ)
			}
		}
	}
}

func TestMixMustSumTo100(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("bad mix accepted")
		}
	}()
	NewGenerator(Workload{Name: "bad", Read: 50}, 100, 1)
}

func TestKeysInRange(t *testing.T) {
	g := NewGenerator(WorkloadA, 1000, 7)
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Key < 0 || op.Key >= g.Records() {
			t.Fatalf("key %d outside [0, %d)", op.Key, g.Records())
		}
	}
}

func TestZipfianSkewOnReads(t *testing.T) {
	g := NewGenerator(WorkloadB, 10000, 9)
	counts := make(map[int64]int)
	for i := 0; i < 100000; i++ {
		op := g.Next()
		if op.Type == Read {
			counts[op.Key]++
		}
	}
	hot := 0
	for k := int64(0); k < 100; k++ {
		hot += counts[k]
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if float64(hot)/float64(total) < 0.3 {
		t.Fatalf("top-100 keys got %.1f%% of reads; zipfian skew missing", 100*float64(hot)/float64(total))
	}
}

func TestInsertsGrowKeyspace(t *testing.T) {
	g := NewGenerator(WorkloadD, 1000, 11)
	start := g.Records()
	inserted := int64(0)
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Type == Insert {
			if op.Key != start+inserted {
				t.Fatalf("insert key %d, want sequential %d", op.Key, start+inserted)
			}
			inserted++
		}
	}
	if g.Records() != start+inserted {
		t.Fatalf("records = %d, want %d", g.Records(), start+inserted)
	}
	if inserted == 0 {
		t.Fatal("workload D produced no inserts")
	}
}

func TestLatestDistributionSkewsRecent(t *testing.T) {
	g := NewGenerator(WorkloadD, 100000, 13)
	recent, older := 0, 0
	for i := 0; i < 50000; i++ {
		op := g.Next()
		if op.Type != Read {
			continue
		}
		if op.Key >= g.Records()*9/10 {
			recent++
		} else {
			older++
		}
	}
	if recent < older {
		t.Fatalf("latest distribution not recent-skewed: recent=%d older=%d", recent, older)
	}
}

func TestScanLengths(t *testing.T) {
	g := NewGenerator(WorkloadE, 10000, 17)
	seen := false
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Type != Scan {
			continue
		}
		seen = true
		if op.ScanLen < 1 || op.ScanLen > 100 {
			t.Fatalf("scan length %d outside [1, 100]", op.ScanLen)
		}
	}
	if !seen {
		t.Fatal("workload E produced no scans")
	}
}

func TestDeterministicStream(t *testing.T) {
	a := NewGenerator(WorkloadA, 1000, 23)
	b := NewGenerator(WorkloadA, 1000, 23)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestKeyName(t *testing.T) {
	if KeyName(42) != "user0000000042" {
		t.Fatalf("KeyName = %q", KeyName(42))
	}
}

func TestValueGenerator(t *testing.T) {
	v := NewValueGenerator(1024, 3)
	a := v.Next(1)
	b := v.Next(1)
	if len(a) != 1024 || len(b) != 1024 {
		t.Fatalf("value sizes %d/%d", len(a), len(b))
	}
	if string(a) == string(b) {
		t.Fatal("values not varied")
	}
	if !strings.HasPrefix(string(a), "val:1:") {
		t.Fatalf("value header: %q", a[:16])
	}
	if v.Size() != 1024 {
		t.Fatal("Size")
	}
}

// TestLatestKeysNeverNegative is the regression test for the zipf
// upper-bound off-by-one: zipf.Next() returning n made nextKey compute
// records-1-n = -1 for the "latest" distribution. With the fix every key —
// including the boundary draw — lands in [0, records), even as inserts grow
// the keyspace.
func TestLatestKeysNeverNegative(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := NewGenerator(WorkloadD, 100, seed)
		for i := 0; i < 50000; i++ {
			op := g.Next()
			if op.Key < 0 || op.Key >= g.Records() {
				t.Fatalf("seed %d op %d: key %d outside [0, %d)", seed, i, op.Key, g.Records())
			}
		}
	}
}
