// Package ycsb regenerates the Yahoo! Cloud Serving Benchmark workloads the
// paper evaluates with (Table 3): the operation mixes of workloads A, B, D,
// E, and F, zipfian/latest/uniform request distributions, and scan lengths.
package ycsb

import (
	"fmt"

	"hyperloop/internal/sim"
)

// OpType is a YCSB operation kind.
type OpType int

// Operation kinds.
const (
	Read OpType = iota
	Update
	Insert
	Scan
	ReadModifyWrite
)

func (t OpType) String() string {
	switch t {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Scan:
		return "scan"
	case ReadModifyWrite:
		return "modify"
	default:
		return fmt.Sprintf("op(%d)", int(t))
	}
}

// Distribution selects how keys are drawn.
type Distribution int

// Request distributions.
const (
	Zipfian Distribution = iota
	Latest               // skewed toward recently inserted records (workload D)
	Uniform
)

// Workload is a YCSB operation mix in percent (summing to 100), exactly the
// rows of the paper's Table 3.
type Workload struct {
	Name    string
	Read    int
	Update  int
	Insert  int
	Modify  int // read-modify-write
	Scan    int
	Dist    Distribution
	MaxScan int // maximum scan length (default 100)
}

// The paper's Table 3 workloads.
var (
	// WorkloadA: update heavy (50/50 read/update).
	WorkloadA = Workload{Name: "A", Read: 50, Update: 50, Dist: Zipfian}
	// WorkloadB: read mostly (95/5 read/update).
	WorkloadB = Workload{Name: "B", Read: 95, Update: 5, Dist: Zipfian}
	// WorkloadD: read latest (95/5 read/insert).
	WorkloadD = Workload{Name: "D", Read: 95, Insert: 5, Dist: Latest}
	// WorkloadE: short ranges (95/5 scan/insert).
	WorkloadE = Workload{Name: "E", Insert: 5, Scan: 95, Dist: Zipfian}
	// WorkloadF: read-modify-write (50/50 read/modify).
	WorkloadF = Workload{Name: "F", Read: 50, Modify: 50, Dist: Zipfian}

	// Workloads indexes the standard mixes by name.
	Workloads = map[string]Workload{
		"A": WorkloadA, "B": WorkloadB, "D": WorkloadD, "E": WorkloadE, "F": WorkloadF,
	}
)

// Total returns the mix sum (must be 100).
func (w Workload) Total() int { return w.Read + w.Update + w.Insert + w.Modify + w.Scan }

// Op is one generated operation.
type Op struct {
	Type    OpType
	Key     int64
	ScanLen int
}

// KeyName renders a key the way YCSB does.
func KeyName(k int64) string { return fmt.Sprintf("user%010d", k) }

// Generator produces an operation stream for a workload.
type Generator struct {
	w       Workload
	r       *sim.Rand
	zipf    *sim.Zipf
	records int64
	inserts int64

	counts map[OpType]int
}

// NewGenerator creates a generator over an initial keyspace of records
// keys. Inserts grow the keyspace.
func NewGenerator(w Workload, records int64, seed int64) *Generator {
	if w.Total() != 100 {
		panic(fmt.Sprintf("ycsb: workload %s mix sums to %d", w.Name, w.Total()))
	}
	if w.MaxScan <= 0 {
		w.MaxScan = 100
	}
	if records <= 0 {
		records = 1
	}
	r := sim.NewRand(seed)
	return &Generator{
		w:       w,
		r:       r,
		zipf:    sim.NewZipf(r.Fork(), records, 0.99),
		records: records,
		counts:  make(map[OpType]int),
	}
}

// Records returns the current keyspace size.
func (g *Generator) Records() int64 { return g.records }

// Counts returns per-type operation counts generated so far.
func (g *Generator) Counts() map[OpType]int {
	out := make(map[OpType]int, len(g.counts))
	for k, v := range g.counts {
		out[k] = v
	}
	return out
}

// nextKey draws a key per the workload distribution.
func (g *Generator) nextKey() int64 {
	switch g.w.Dist {
	case Latest:
		// Skew toward the most recent keys: latest = N-1 - zipf.
		k := g.records - 1 - g.zipf.Next()
		if k < 0 {
			k = 0
		}
		return k
	case Uniform:
		return g.r.Int63n(g.records)
	default:
		return g.zipf.Next()
	}
}

// Next generates one operation.
func (g *Generator) Next() Op {
	p := g.r.Intn(100)
	var op Op
	switch {
	case p < g.w.Read:
		op = Op{Type: Read, Key: g.nextKey()}
	case p < g.w.Read+g.w.Update:
		op = Op{Type: Update, Key: g.nextKey()}
	case p < g.w.Read+g.w.Update+g.w.Insert:
		op = Op{Type: Insert, Key: g.records}
		g.records++
		g.inserts++
		g.zipf.Grow(g.records)
	case p < g.w.Read+g.w.Update+g.w.Insert+g.w.Modify:
		op = Op{Type: ReadModifyWrite, Key: g.nextKey()}
	default:
		op = Op{Type: Scan, Key: g.nextKey(), ScanLen: 1 + g.r.Intn(g.w.MaxScan)}
	}
	g.counts[op.Type]++
	return op
}

// ValueGenerator produces record payloads of a fixed size with light
// content variation (so stores cannot cheat via dedup).
type ValueGenerator struct {
	r    *sim.Rand
	size int
}

// NewValueGenerator creates values of size bytes (the paper uses 1024-byte
// values with 32-byte keys, §6.2).
func NewValueGenerator(size int, seed int64) *ValueGenerator {
	if size <= 0 {
		size = 1024
	}
	return &ValueGenerator{r: sim.NewRand(seed), size: size}
}

// Next returns a fresh value.
func (v *ValueGenerator) Next(key int64) []byte {
	buf := make([]byte, v.size)
	header := fmt.Sprintf("val:%d:%d:", key, v.r.Uint64())
	copy(buf, header)
	for i := len(header); i < len(buf); i++ {
		buf[i] = byte('a' + (i+int(key))%26)
	}
	return buf
}

// Size returns the value size.
func (v *ValueGenerator) Size() int { return v.size }
