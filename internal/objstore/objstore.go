// Package objstore is a deterministic simulated object store — the
// durability root of the ephemeral-replica design (DESIGN.md §17). It models
// an S3-class blob service on virtual time: keyed immutable blobs, per-op
// base latency plus a bandwidth term, seeded jitter, and failure injection
// (per-op loss probability and scheduled outage windows) so chaos arms can
// crash an upload mid-segment without leaving the simulation's determinism
// envelope.
//
// The store is engine-local: all mutation happens inside scheduled events,
// and the synchronous accessors (Peek, List, Stats) are control-plane reads
// for checkers and experiment drivers, never data-plane shortcuts.
package objstore

import (
	"errors"
	"sort"
	"strings"

	"hyperloop/internal/sim"
)

// ErrUnavailable reports a failed or outage-dropped operation. Callers are
// expected to retry with their own policy; the store never retries.
var ErrUnavailable = errors.New("objstore: unavailable")

// ErrNotFound reports a Get/Delete for a key that has no blob.
var ErrNotFound = errors.New("objstore: not found")

// Config models the service. Zero values take the defaults noted.
type Config struct {
	// PutLatency / GetLatency are per-op base latencies before the bandwidth
	// term (defaults 500µs / 200µs — cross-AZ object store, not a local SSD).
	PutLatency sim.Duration
	GetLatency sim.Duration
	// BytesPerSec is the modeled transfer bandwidth (default 1 GiB/s).
	BytesPerSec float64
	// JitterFrac spreads each op's latency uniformly in ±frac (default 0.1).
	JitterFrac float64
	// FailProb is the per-op probability of ErrUnavailable after the modeled
	// latency (default 0; chaos arms raise it or use Outage).
	FailProb float64
	// Seed feeds the store's private jitter/failure stream.
	Seed int64
}

func (c *Config) fill() {
	if c.PutLatency == 0 {
		c.PutLatency = 500 * sim.Microsecond
	}
	if c.GetLatency == 0 {
		c.GetLatency = 200 * sim.Microsecond
	}
	if c.BytesPerSec == 0 {
		c.BytesPerSec = float64(1 << 30)
	}
	if c.JitterFrac == 0 {
		c.JitterFrac = 0.1
	}
}

// Stats are cumulative op counters (control-plane reads for reports).
type Stats struct {
	Puts, Gets, Deletes uint64
	Failed              uint64
	BytesIn, BytesOut   uint64
}

// Store is one simulated object-store endpoint.
type Store struct {
	eng      *sim.Engine
	cfg      Config
	rng      *sim.Rand
	blobs    map[string][]byte
	outageTo sim.Time // ops starting before this fail with ErrUnavailable
	stats    Stats
}

// New creates a store on eng.
func New(eng *sim.Engine, cfg Config) *Store {
	cfg.fill()
	return &Store{
		eng:   eng,
		cfg:   cfg,
		rng:   sim.NewRand(cfg.Seed ^ 0x6f626a73746f7265), // "objstore"
		blobs: make(map[string][]byte),
	}
}

// latency models one op moving n payload bytes.
func (s *Store) latency(base sim.Duration, n int) sim.Duration {
	d := base + sim.Duration(float64(n)/s.cfg.BytesPerSec*float64(sim.Second))
	return s.rng.Jitter(d, s.cfg.JitterFrac)
}

// fails draws the per-op failure decision. The draw happens at issue time so
// the RNG stream is consumed identically whether or not an outage window is
// active (outage checks don't consume randomness).
func (s *Store) fails() bool {
	return s.cfg.FailProb > 0 && s.rng.Float64() < s.cfg.FailProb
}

// Put stores an immutable copy of data under key after the modeled transfer
// latency. done(nil) on success; done(ErrUnavailable) if the op drew a
// failure or started inside an outage window (a failed put stores nothing —
// blobs are atomic).
func (s *Store) Put(key string, data []byte, done func(error)) {
	failed := s.fails() || s.eng.Now() < s.outageTo
	d := s.latency(s.cfg.PutLatency, len(data))
	cp := append([]byte(nil), data...)
	s.eng.Schedule(d, func() {
		if failed {
			s.stats.Failed++
			if done != nil {
				done(ErrUnavailable)
			}
			return
		}
		s.blobs[key] = cp
		s.stats.Puts++
		s.stats.BytesIn += uint64(len(cp))
		if done != nil {
			done(nil)
		}
	})
}

// Get fetches the blob at key after the modeled transfer latency. The data
// slice is a private copy.
func (s *Store) Get(key string, done func([]byte, error)) {
	failed := s.fails() || s.eng.Now() < s.outageTo
	blob, ok := s.blobs[key]
	d := s.latency(s.cfg.GetLatency, len(blob))
	cp := append([]byte(nil), blob...)
	s.eng.Schedule(d, func() {
		switch {
		case failed:
			s.stats.Failed++
			done(nil, ErrUnavailable)
		case !ok:
			done(nil, ErrNotFound)
		default:
			s.stats.Gets++
			s.stats.BytesOut += uint64(len(cp))
			done(cp, nil)
		}
	})
}

// Delete removes key after the base put latency (no bandwidth term).
func (s *Store) Delete(key string, done func(error)) {
	failed := s.fails() || s.eng.Now() < s.outageTo
	d := s.latency(s.cfg.PutLatency, 0)
	s.eng.Schedule(d, func() {
		if failed {
			s.stats.Failed++
			if done != nil {
				done(ErrUnavailable)
			}
			return
		}
		delete(s.blobs, key)
		s.stats.Deletes++
		if done != nil {
			done(nil)
		}
	})
}

// Outage makes every op issued in the next d fail with ErrUnavailable.
// Overlapping outages extend to the later end.
func (s *Store) Outage(d sim.Duration) {
	if to := s.eng.Now().Add(d); to > s.outageTo {
		s.outageTo = to
	}
}

// SetFailProb replaces the per-op failure probability.
func (s *Store) SetFailProb(p float64) { s.cfg.FailProb = p }

// List returns the keys under prefix in sorted order — a synchronous
// control-plane read (restore planning, checkers).
func (s *Store) List(prefix string) []string {
	var keys []string
	for k := range s.blobs {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// Peek returns the blob bytes without latency or copy — checker use only.
func (s *Store) Peek(key string) ([]byte, bool) {
	b, ok := s.blobs[key]
	return b, ok
}

// Stats returns cumulative counters.
func (s *Store) Stats() Stats { return s.stats }
