package objstore

import (
	"errors"
	"testing"

	"hyperloop/internal/sim"
)

func TestPutGetRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 1})
	data := []byte("segment-bytes")
	var putErr error
	putDone := false
	st.Put("gen0/seg/0001", data, func(err error) { putErr = err; putDone = true })
	eng.Drain()
	if !putDone || putErr != nil {
		t.Fatalf("put: done=%v err=%v", putDone, putErr)
	}
	// Mutating the caller's slice must not reach the stored blob.
	data[0] = 'X'
	var got []byte
	st.Get("gen0/seg/0001", func(b []byte, err error) {
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		got = b
	})
	eng.Drain()
	if string(got) != "segment-bytes" {
		t.Fatalf("got %q", got)
	}
	if s := st.Stats(); s.Puts != 1 || s.Gets != 1 || s.BytesIn != 13 || s.BytesOut != 13 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGetMissing(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 1})
	var got error
	st.Get("nope", func(_ []byte, err error) { got = err })
	eng.Drain()
	if !errors.Is(got, ErrNotFound) {
		t.Fatalf("err = %v", got)
	}
}

func TestLatencyModel(t *testing.T) {
	eng := sim.NewEngine()
	// JitterFrac < 0 disables jitter: latency is exactly base + size/bandwidth.
	st := New(eng, Config{Seed: 1, JitterFrac: -1, BytesPerSec: 1 << 20, PutLatency: sim.Millisecond})
	var doneAt sim.Time
	st.Put("k", make([]byte, 1<<20), func(error) { doneAt = eng.Now() })
	eng.Drain()
	want := sim.Time(sim.Millisecond + sim.Second)
	if doneAt != want {
		t.Fatalf("put finished at %v, want %v", doneAt, want)
	}
}

func TestOutageWindow(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 7})
	st.Outage(10 * sim.Millisecond)
	var first, second error
	st.Put("a", []byte("x"), func(err error) { first = err })
	eng.Schedule(20*sim.Millisecond, func() {
		st.Put("b", []byte("y"), func(err error) { second = err })
	})
	eng.Drain()
	if !errors.Is(first, ErrUnavailable) {
		t.Fatalf("in-outage put: %v", first)
	}
	if second != nil {
		t.Fatalf("post-outage put: %v", second)
	}
	if _, ok := st.Peek("a"); ok {
		t.Fatal("failed put must not store a blob")
	}
	if _, ok := st.Peek("b"); !ok {
		t.Fatal("post-outage put missing")
	}
}

func TestFailProbDeterministic(t *testing.T) {
	run := func() (fails int) {
		eng := sim.NewEngine()
		st := New(eng, Config{Seed: 42, FailProb: 0.3})
		for i := 0; i < 100; i++ {
			st.Put("k", []byte("v"), func(err error) {
				if err != nil {
					fails++
				}
			})
		}
		eng.Drain()
		return fails
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("failure stream not deterministic: %d vs %d", a, b)
	}
	if a == 0 || a == 100 {
		t.Fatalf("degenerate failure count %d", a)
	}
}

func TestListPrefix(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 1})
	for _, k := range []string{"s0/seg/2", "s0/seg/1", "s1/seg/1", "s0/snap/1"} {
		st.Put(k, []byte("x"), nil)
	}
	eng.Drain()
	got := st.List("s0/seg/")
	if len(got) != 2 || got[0] != "s0/seg/1" || got[1] != "s0/seg/2" {
		t.Fatalf("list: %v", got)
	}
}

func TestDelete(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 1})
	st.Put("k", []byte("v"), nil)
	eng.Drain()
	var derr error
	st.Delete("k", func(err error) { derr = err })
	eng.Drain()
	if derr != nil {
		t.Fatalf("delete: %v", derr)
	}
	if _, ok := st.Peek("k"); ok {
		t.Fatal("blob survived delete")
	}
}

// TestSetFailProbTogglesInjection: a probability of 1 fails every op, and
// resetting to 0 restores service — the chaos-arm control knob.
func TestSetFailProbTogglesInjection(t *testing.T) {
	eng := sim.NewEngine()
	st := New(eng, Config{Seed: 3})
	st.SetFailProb(1)
	var putErr, delErr error
	st.Put("k", []byte("v"), func(err error) { putErr = err })
	st.Delete("k", func(err error) { delErr = err })
	eng.Drain()
	if !errors.Is(putErr, ErrUnavailable) || !errors.Is(delErr, ErrUnavailable) {
		t.Fatalf("injected failure missing: put=%v delete=%v", putErr, delErr)
	}
	st.SetFailProb(0)
	ok := false
	st.Put("k", []byte("v"), func(err error) { ok = err == nil })
	eng.Drain()
	if !ok {
		t.Fatal("put still failing after SetFailProb(0)")
	}
	if _, found := st.Peek("k"); !found {
		t.Fatal("blob missing after recovered put")
	}
	if s := st.Stats(); s.Failed != 2 {
		t.Fatalf("failed ops = %d, want 2", s.Failed)
	}
}
