package metrics

import (
	"strings"
	"testing"

	"hyperloop/internal/sim"
)

// FuzzMetricsExport drives adversarial subsystem/name/label strings and
// values through both encoders and checks the structural invariants: the
// text export's metric lines parse back into name{labels} value form with
// only clean characters in names, and the JSON export round-trips through
// ParseJSON with series counts preserved and repeated exports byte-equal.
func FuzzMetricsExport(f *testing.F) {
	f.Add("wal", "appends", "s0", uint64(3), int64(1500))
	f.Add("", "", "", uint64(0), int64(0))
	f.Add("we ird", "na-me", "l\"bl\n\\", uint64(1<<63), int64(-5))
	f.Add("a", "b", "overflow", uint64(42), int64(1e12))
	f.Add("héllo", "wörld", "ütf8", uint64(7), int64(99))
	f.Fuzz(func(t *testing.T, subsystem, name, label string, v uint64, obs int64) {
		r := NewRegistry()
		r.Counter(subsystem, name, label).Add(v)
		r.Gauge(subsystem, name+"_g", label).Set(float64(v) / 3)
		r.Histogram(subsystem, name+"_h", label).Observe(sim.Duration(obs))
		r.Sample(sim.Time(0).Add(sim.Second))
		r.Counter(subsystem, name, label).Add(v / 2)
		r.Sample(sim.Time(0).Add(2 * sim.Second))

		txt := r.ExportText()
		for _, line := range strings.Split(strings.TrimSuffix(txt, "\n"), "\n") {
			if line == "" {
				t.Fatalf("blank line in text export:\n%s", txt)
			}
			if strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			brace := strings.IndexByte(line, '{')
			if brace <= 0 {
				t.Fatalf("metric line without label braces: %q", line)
			}
			mname := line[:brace]
			if !strings.HasPrefix(mname, "hyperloop_") {
				t.Fatalf("metric name missing namespace: %q", line)
			}
			for _, c := range mname {
				ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
				if !ok {
					t.Fatalf("unclean char %q in metric name %q", c, mname)
				}
			}
			close := strings.LastIndexByte(line, '}')
			if close < brace || close+2 > len(line) || line[close+1] != ' ' {
				t.Fatalf("malformed label/value split: %q", line)
			}
		}

		data, err := r.ExportJSON()
		if err != nil {
			t.Fatalf("ExportJSON: %v", err)
		}
		d, err := ParseJSON(data)
		if err != nil {
			t.Fatalf("ParseJSON of own export: %v\n%s", err, data)
		}
		if len(d.Counters) != 1 || len(d.Gauges) != 1 || len(d.Histograms) != 1 {
			t.Fatalf("series lost in round trip: %d/%d/%d", len(d.Counters), len(d.Gauges), len(d.Histograms))
		}
		if want := float64(v + v/2); d.Counters[0].Value != want {
			t.Fatalf("counter value %v, want %v", d.Counters[0].Value, want)
		}
		again, _ := r.ExportJSON()
		if string(again) != string(data) {
			t.Fatal("repeated JSON export differs")
		}
		if r.ExportText() != txt {
			t.Fatal("repeated text export differs")
		}
	})
}
