// Metric export: Prometheus-style text and JSON. Both encoders order
// series by sorted (subsystem, name, label) key, so a dump is a pure
// function of registry contents — bit-reproducible across runs and worker
// counts once cells are merged in input order.
package metrics

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Percentile points exported for every histogram.
var exportPercentiles = []float64{50, 95, 99, 99.9, 100}

func sortedKeys[T any](m map[Key]T) []Key {
	keys := make([]Key, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	return keys
}

// promName renders subsystem_name with characters outside [a-zA-Z0-9_]
// replaced by '_', matching Prometheus naming rules.
func promName(subsystem, name string) string {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range s {
			switch {
			case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
				b.WriteRune(r)
			default:
				b.WriteByte('_')
			}
		}
		return b.String()
	}
	return "hyperloop_" + clean(subsystem) + "_" + clean(name)
}

// promLabel escapes a label value for the text exposition format.
func promLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders floats the way Prometheus clients do: integral values
// without an exponent, others in shortest round-trip form.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ExportText renders the registry in Prometheus text exposition style.
// Counters also expose a _rate series (per virtual second, last window);
// histograms expose _count, _sum and quantile-tagged value series in
// nanoseconds of virtual time.
func (r *Registry) ExportText() string {
	var b strings.Builder
	lastType := ""
	typeLine := func(name, typ string) {
		if name != lastType {
			fmt.Fprintf(&b, "# TYPE %s %s\n", name, typ)
			lastType = name
		}
	}
	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		name := promName(k.Subsystem, k.Name)
		typeLine(name, "counter")
		fmt.Fprintf(&b, "%s{label=\"%s\"} %d\n", name, promLabel(k.Label), c.Value())
		if rate := c.Rate(); rate != 0 {
			fmt.Fprintf(&b, "%s_rate{label=\"%s\"} %s\n", name, promLabel(k.Label), formatFloat(rate))
		}
	}
	for _, k := range sortedKeys(r.gauges) {
		g := r.gauges[k]
		name := promName(k.Subsystem, k.Name)
		typeLine(name, "gauge")
		fmt.Fprintf(&b, "%s{label=\"%s\"} %s\n", name, promLabel(k.Label), formatFloat(g.Value()))
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k].h
		name := promName(k.Subsystem, k.Name)
		typeLine(name, "histogram")
		lbl := promLabel(k.Label)
		fmt.Fprintf(&b, "%s_count{label=\"%s\"} %d\n", name, lbl, h.Count())
		fmt.Fprintf(&b, "%s_sum{label=\"%s\"} %d\n", name, lbl, int64(h.Sum()))
		for _, p := range exportPercentiles {
			fmt.Fprintf(&b, "%s{label=\"%s\",quantile=\"%s\"} %d\n",
				name, lbl, formatFloat(p/100), int64(h.Percentile(p)))
		}
	}
	return b.String()
}

// JSONSeries is one exported series.
type JSONSeries struct {
	Subsystem string  `json:"subsystem"`
	Name      string  `json:"name"`
	Label     string  `json:"label"`
	Value     float64 `json:"value"`
	Rate      float64 `json:"rate,omitempty"`
}

// JSONHist is one exported histogram.
type JSONHist struct {
	Subsystem string           `json:"subsystem"`
	Name      string           `json:"name"`
	Label     string           `json:"label"`
	Count     uint64           `json:"count"`
	SumNs     int64            `json:"sum_ns"`
	MeanNs    int64            `json:"mean_ns"`
	MinNs     int64            `json:"min_ns"`
	MaxNs     int64            `json:"max_ns"`
	Quantiles map[string]int64 `json:"quantiles"`
}

// JSONDump is the full machine-readable form of a registry.
type JSONDump struct {
	SampledAtNs int64        `json:"sampled_at_ns"`
	Counters    []JSONSeries `json:"counters"`
	Gauges      []JSONSeries `json:"gauges"`
	Histograms  []JSONHist   `json:"histograms"`
}

// Dump builds the JSON-ready snapshot.
func (r *Registry) Dump() JSONDump {
	d := JSONDump{
		Counters:   []JSONSeries{},
		Gauges:     []JSONSeries{},
		Histograms: []JSONHist{},
	}
	if at, ok := r.LastSample(); ok {
		d.SampledAtNs = int64(at)
	}
	for _, k := range sortedKeys(r.counters) {
		c := r.counters[k]
		d.Counters = append(d.Counters, JSONSeries{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Value: float64(c.Value()), Rate: c.Rate(),
		})
	}
	for _, k := range sortedKeys(r.gauges) {
		d.Gauges = append(d.Gauges, JSONSeries{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Value: r.gauges[k].Value(),
		})
	}
	for _, k := range sortedKeys(r.hists) {
		h := r.hists[k].h
		jh := JSONHist{
			Subsystem: k.Subsystem, Name: k.Name, Label: k.Label,
			Count: h.Count(), SumNs: int64(h.Sum()),
			MeanNs: int64(h.Mean()), MinNs: int64(h.Min()), MaxNs: int64(h.Max()),
			Quantiles: make(map[string]int64, len(exportPercentiles)),
		}
		for _, p := range exportPercentiles {
			jh.Quantiles[formatFloat(p)] = int64(h.Percentile(p))
		}
		d.Histograms = append(d.Histograms, jh)
	}
	return d
}

// ExportJSON renders the registry as indented JSON. encoding/json sorts map
// keys, so the output is deterministic.
func (r *Registry) ExportJSON() ([]byte, error) {
	out, err := json.MarshalIndent(r.Dump(), "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// ParseJSON decodes a dump written by ExportJSON (used by cmd/hlstats).
func ParseJSON(data []byte) (JSONDump, error) {
	var d JSONDump
	err := json.Unmarshal(data, &d)
	return d, err
}
