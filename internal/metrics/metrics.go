// Package metrics is the deterministic, virtual-time metrics substrate of
// the observability plane (DESIGN.md §12). A Registry holds counters,
// gauges, and log-linear histograms keyed by (subsystem, name, label) —
// label carries the tenant/shard dimension. Handles are registered once at
// setup; the hot path (Inc/Add/Set/Observe) performs no allocation and no
// map lookup, so instrumented runs stay byte-identical to uninstrumented
// ones. All times are the sim engine's virtual clock: rates are ops per
// virtual second over the last sampling window, never wall time.
//
// Determinism rules:
//   - Instrumentation only observes; it never schedules engine events by
//     itself. A Sampler is the single exception, and its ticks mutate no
//     simulation-visible state.
//   - Per-worker registries (one per RunParallel cell) are merged in input
//     order, so exports are bit-identical at any -parallel worker count.
//   - Export orders series by sorted key, never map iteration order.
package metrics

import (
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

// MaxLabels bounds the label cardinality per (subsystem, name) series
// family. Registrations beyond the bound collapse into a shared "overflow"
// label so a misbehaving caller (e.g. per-key labels) cannot grow the
// registry without bound.
const MaxLabels = 256

// OverflowLabel is the shared label that absorbs registrations past
// MaxLabels.
const OverflowLabel = "overflow"

// Key identifies one series.
type Key struct {
	Subsystem string
	Name      string
	Label     string
}

func (k Key) less(o Key) bool {
	if k.Subsystem != o.Subsystem {
		return k.Subsystem < o.Subsystem
	}
	if k.Name != o.Name {
		return k.Name < o.Name
	}
	return k.Label < o.Label
}

// Counter is a monotonically increasing series with a two-point sampling
// window for rate computation.
type Counter struct {
	v uint64
	// Window snapshots: (t0,v0) is the previous sample, (t1,v1) the latest.
	t0, t1 sim.Time
	v0, v1 uint64
	warm   int // samples taken (rate needs two)
}

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Rate returns the increase per virtual second over the last completed
// sampling window, or 0 before two samples exist.
func (c *Counter) Rate() float64 {
	if c.warm < 2 || c.t1 <= c.t0 {
		return 0
	}
	return float64(c.v1-c.v0) / (float64(c.t1.Sub(c.t0)) / float64(sim.Second))
}

func (c *Counter) sample(now sim.Time) {
	c.t0, c.v0 = c.t1, c.v1
	c.t1, c.v1 = now, c.v
	if c.warm < 2 {
		c.warm++
	}
}

// Gauge is a point-in-time value, either set directly or computed by a
// registered function (evaluated at sample/export time).
type Gauge struct {
	v  float64
	fn func() float64
}

// Set stores v; it clears any registered function.
func (g *Gauge) Set(v float64) { g.v, g.fn = v, nil }

// Value returns the gauge's current value, evaluating the function form.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return g.v
}

func (g *Gauge) sample() {
	if g.fn != nil {
		g.v = g.fn()
	}
}

// Histogram wraps the repo's log-linear histogram for virtual-duration
// observations.
type Histogram struct {
	h *stats.Histogram
}

// Observe records one duration.
func (h *Histogram) Observe(d sim.Duration) { h.h.Record(d) }

// Hist exposes the underlying histogram (for Summarize/Percentile).
func (h *Histogram) Hist() *stats.Histogram { return h.h }

// Registry is a set of series. Not safe for concurrent use; in parallel
// sweeps each worker cell owns a private registry and the cells are merged
// in input order afterwards.
type Registry struct {
	counters map[Key]*Counter
	gauges   map[Key]*Gauge
	hists    map[Key]*Histogram
	// family cardinality accounting for the MaxLabels bound
	labels     map[[2]string]int
	lastSample sim.Time
	sampled    bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[Key]*Counter),
		gauges:   make(map[Key]*Gauge),
		hists:    make(map[Key]*Histogram),
		labels:   make(map[[2]string]int),
	}
}

// bound applies the per-family cardinality cap: a key whose family already
// holds MaxLabels distinct labels collapses to the overflow label.
func (r *Registry) bound(k Key, exists func(Key) bool) Key {
	if exists(k) {
		return k
	}
	fam := [2]string{k.Subsystem, k.Name}
	if r.labels[fam] >= MaxLabels {
		k.Label = OverflowLabel
		if !exists(k) {
			// The overflow series itself is the cap+1'th label.
			r.labels[fam]++
		}
		return k
	}
	r.labels[fam]++
	return k
}

// Counter returns the counter for the key, creating it on first use.
// Callers register once at setup and hold the handle; the handle's methods
// are the zero-allocation hot path.
func (r *Registry) Counter(subsystem, name, label string) *Counter {
	k := r.bound(Key{subsystem, name, label}, func(k Key) bool { _, ok := r.counters[k]; return ok })
	c, ok := r.counters[k]
	if !ok {
		c = &Counter{}
		r.counters[k] = c
	}
	return c
}

// Gauge returns the gauge for the key, creating it on first use.
func (r *Registry) Gauge(subsystem, name, label string) *Gauge {
	k := r.bound(Key{subsystem, name, label}, func(k Key) bool { _, ok := r.gauges[k]; return ok })
	g, ok := r.gauges[k]
	if !ok {
		g = &Gauge{}
		r.gauges[k] = g
	}
	return g
}

// GaugeFunc registers a computed gauge. The function is evaluated at
// Sample/export time, keeping the producer's hot path untouched.
func (r *Registry) GaugeFunc(subsystem, name, label string, fn func() float64) {
	g := r.Gauge(subsystem, name, label)
	g.fn = fn
}

// Histogram returns the histogram for the key, creating it on first use.
func (r *Registry) Histogram(subsystem, name, label string) *Histogram {
	k := r.bound(Key{subsystem, name, label}, func(k Key) bool { _, ok := r.hists[k]; return ok })
	h, ok := r.hists[k]
	if !ok {
		h = &Histogram{h: stats.NewHistogram()}
		r.hists[k] = h
	}
	return h
}

// Sample advances every counter's rate window and materialises computed
// gauges at the given virtual time. Callers invoke it from a Sampler or at
// chosen experiment boundaries.
func (r *Registry) Sample(now sim.Time) {
	for _, c := range r.counters {
		c.sample(now)
	}
	for _, g := range r.gauges {
		g.sample()
	}
	r.lastSample = now
	r.sampled = true
}

// LastSample returns the virtual time of the most recent Sample call and
// whether one has happened.
func (r *Registry) LastSample() (sim.Time, bool) { return r.lastSample, r.sampled }

// Distinct reports whether (subsystem, name, label) exists as its own
// series — i.e. it was registered and did NOT collapse into the overflow
// label. Readers that act on per-label values (the QoS controller) must
// treat a non-distinct series as unreliable: a collapsed counter mixes an
// unknown set of labels.
func (r *Registry) Distinct(subsystem, name, label string) bool {
	if label == OverflowLabel {
		return false
	}
	k := Key{subsystem, name, label}
	if _, ok := r.counters[k]; ok {
		return true
	}
	if _, ok := r.gauges[k]; ok {
		return true
	}
	_, ok := r.hists[k]
	return ok
}

// Merge folds src into r: counters add, histograms merge, gauges take the
// source's materialised value (per-cell gauges should carry disjoint labels,
// e.g. a worker or shard suffix). Merging cells in input order keeps the
// combined registry bit-reproducible at any worker count.
func (r *Registry) Merge(src *Registry) {
	// Sorted iteration: if a family crosses MaxLabels mid-merge, which label
	// collapses to overflow must not depend on map iteration order.
	for _, k := range sortedKeys(src.counters) {
		sc := src.counters[k]
		c := r.Counter(k.Subsystem, k.Name, k.Label)
		c.v += sc.v
		c.v0 += sc.v0
		c.v1 += sc.v1
		if sc.t0 > c.t0 {
			c.t0 = sc.t0
		}
		if sc.t1 > c.t1 {
			c.t1 = sc.t1
		}
		if sc.warm > c.warm {
			c.warm = sc.warm
		}
	}
	for _, k := range sortedKeys(src.gauges) {
		r.Gauge(k.Subsystem, k.Name, k.Label).Set(src.gauges[k].Value())
	}
	for _, k := range sortedKeys(src.hists) {
		r.Histogram(k.Subsystem, k.Name, k.Label).h.Merge(src.hists[k].h)
	}
	if src.sampled && (!r.sampled || src.lastSample > r.lastSample) {
		r.lastSample = src.lastSample
		r.sampled = true
	}
}

// Sampler ticks a registry on the engine clock. Its events read metric
// state but never write simulation state, so enabling one cannot change
// experiment outputs. Stop it before draining an engine to quiescence, or
// the self-rescheduling tick keeps the event queue non-empty forever.
type Sampler struct {
	eng     *sim.Engine
	reg     *Registry
	every   sim.Duration
	stopped bool
}

// NewSampler samples reg every `every` of virtual time, starting one period
// from now.
func NewSampler(eng *sim.Engine, reg *Registry, every sim.Duration) *Sampler {
	s := &Sampler{eng: eng, reg: reg, every: every}
	s.tick()
	return s
}

func (s *Sampler) tick() {
	s.eng.Schedule(s.every, func() {
		if s.stopped {
			return
		}
		s.reg.Sample(s.eng.Now())
		s.tick()
	})
}

// Stop halts sampling; the final pending tick becomes a no-op.
func (s *Sampler) Stop() { s.stopped = true }
