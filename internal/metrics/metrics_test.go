package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

// --- counters and rates ---

func TestCounterRateWindow(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wal", "appends", "s0")
	if c.Rate() != 0 {
		t.Fatal("rate before any sample")
	}
	c.Add(100)
	r.Sample(sim.Time(0).Add(sim.Second))
	if c.Rate() != 0 {
		t.Fatal("rate needs two samples")
	}
	c.Add(50)
	r.Sample(sim.Time(0).Add(2 * sim.Second))
	if got := c.Rate(); got != 50 {
		t.Fatalf("rate = %v, want 50/s over the last window", got)
	}
	if c.Value() != 150 {
		t.Fatalf("value = %d", c.Value())
	}
}

func TestCounterHandleIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("wal", "appends", "s0")
	b := r.Counter("wal", "appends", "s0")
	if a != b {
		t.Fatal("same key must return the same handle")
	}
	if r.Counter("wal", "appends", "s1") == a {
		t.Fatal("distinct labels must get distinct handles")
	}
}

// --- gauges ---

func TestGaugeFuncMaterializedAtSample(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.GaugeFunc("host", "util", "n0", func() float64 { return v })
	g := r.Gauge("host", "util", "n0")
	v = 0.5
	if g.Value() != 0.5 {
		t.Fatalf("gauge fn not evaluated lazily: %v", g.Value())
	}
	r.Sample(sim.Time(0))
	v = 0.25
	if g.Value() != 0.25 {
		t.Fatal("fn gauge must keep tracking after Sample")
	}
	g.Set(9)
	if g.Value() != 9 {
		t.Fatal("Set must override the fn")
	}
}

// --- histogram vs sort-exact reference ---

// histMaxRelErr mirrors the conformance oracle's bound for the log-linear
// layout (subBucketBits=6 → ~1.6% worst-case relative error).
const histMaxRelErr = 0.016

// mixtureSamples reproduces the oracle's mixed workload: tiny integer
// latencies, exponential tails, heavy Pareto tails, and exact powers of two
// (bucket-boundary probes).
func mixtureSamples(n int, seed int64) []sim.Duration {
	rng := sim.NewRand(seed)
	out := make([]sim.Duration, 0, n)
	for i := 0; i < n; i++ {
		var v sim.Duration
		switch i % 5 {
		case 0, 1:
			v = sim.Duration(rng.Int63n(200))
		case 2, 3:
			v = rng.Exp(50 * sim.Microsecond)
		default:
			v = rng.Pareto(sim.Microsecond, 1.3)
		}
		if i%64 == 0 {
			v = sim.Duration(1) << uint(i/64%40)
		}
		out = append(out, v)
	}
	return out
}

func TestHistogramPercentilesVsExact(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		samples := mixtureSamples(20000, seed)
		r := NewRegistry()
		h := r.Histogram("micro", "lat", "t")
		for _, s := range samples {
			h.Observe(s)
		}
		sorted := append([]sim.Duration(nil), samples...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, p := range []float64{50, 90, 95, 99, 99.9, 100} {
			// Same rank convention as Histogram.Percentile / stats.Exact.
			idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sorted) {
				idx = len(sorted) - 1
			}
			exact := sorted[idx]
			got := h.Hist().Percentile(p)
			if exact == 0 {
				if got != 0 {
					t.Fatalf("seed %d p%v: got %v, exact 0", seed, p, got)
				}
				continue
			}
			rel := float64(got-exact) / float64(exact)
			if rel < 0 {
				rel = -rel
			}
			if rel > histMaxRelErr {
				t.Fatalf("seed %d p%v: got %v, exact %v, rel err %.4f > %.4f",
					seed, p, got, exact, rel, histMaxRelErr)
			}
		}
		if h.Hist().Count() != uint64(len(samples)) {
			t.Fatalf("count = %d", h.Hist().Count())
		}
	}
}

// --- merge ---

func TestMergeCountersHistsGauges(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("wal", "appends", "s0").Add(10)
	b.Counter("wal", "appends", "s0").Add(32)
	b.Counter("wal", "appends", "s1").Add(5)
	a.Gauge("host", "util", "n0").Set(0.25)
	b.Gauge("host", "util", "n1").Set(0.75)
	for i := 0; i < 100; i++ {
		a.Histogram("micro", "lat", "t").Observe(sim.Duration(i))
		b.Histogram("micro", "lat", "t").Observe(sim.Duration(1000 + i))
	}
	a.Sample(sim.Time(0).Add(sim.Second))
	b.Sample(sim.Time(0).Add(2 * sim.Second))

	a.Merge(b)
	if got := a.Counter("wal", "appends", "s0").Value(); got != 42 {
		t.Fatalf("merged counter = %d", got)
	}
	if got := a.Counter("wal", "appends", "s1").Value(); got != 5 {
		t.Fatalf("merge must create missing series: %d", got)
	}
	if a.Gauge("host", "util", "n1").Value() != 0.75 {
		t.Fatal("merge must carry gauge values")
	}
	if got := a.Histogram("micro", "lat", "t").Hist().Count(); got != 200 {
		t.Fatalf("merged hist count = %d", got)
	}
	if at, ok := a.LastSample(); !ok || at != sim.Time(0).Add(2*sim.Second) {
		t.Fatalf("merged last sample = %v %v", at, ok)
	}
}

// TestMergeOrderInvariant pins the bit-reproducibility contract: merging the
// same cells in the same order must export identically no matter how the
// cells were produced.
func TestMergeOrderInvariant(t *testing.T) {
	build := func() *Registry {
		m := NewRegistry()
		for cell := 0; cell < 4; cell++ {
			c := NewRegistry()
			c.Counter("op", "acked", fmt.Sprintf("w%d", cell)).Add(uint64(cell * 7))
			c.Histogram("op", "lat", "all").Observe(sim.Duration(cell+1) * sim.Microsecond)
			c.Sample(sim.Time(0).Add(sim.Duration(cell) * sim.Second))
			m.Merge(c)
		}
		return m
	}
	x, _ := build().ExportJSON()
	y, _ := build().ExportJSON()
	if string(x) != string(y) {
		t.Fatal("merged exports differ between identical builds")
	}
}

// --- cardinality bound ---

func TestLabelCardinalityOverflow(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < MaxLabels+50; i++ {
		r.Counter("shard", "puts", fmt.Sprintf("s%d", i)).Inc()
	}
	over := r.Counter("shard", "puts", OverflowLabel)
	if over.Value() != 50 {
		t.Fatalf("overflow absorbed %d, want 50", over.Value())
	}
	// A pre-cap label keeps its own series.
	if r.Counter("shard", "puts", "s0").Value() != 1 {
		t.Fatal("pre-cap series lost")
	}
	// Other families are unaffected.
	r.Counter("wal", "appends", "s300").Inc()
	if r.Counter("wal", "appends", "s300").Value() != 1 {
		t.Fatal("cap leaked across families")
	}
}

// TestThousandTenantsCollapseWithoutPerturbation is the QoS-era cardinality
// regression: 1k+ tenant labels fold into the single overflow series, every
// pre-cap tenant's counts stay exactly its own, and Distinct tells readers
// which is which so nothing acts on the collapsed bucket.
func TestThousandTenantsCollapseWithoutPerturbation(t *testing.T) {
	r := NewRegistry()
	const tenants = 1200
	for i := 0; i < tenants; i++ {
		// Every tenant contributes a distinct count so perturbation of any
		// surviving series would be visible.
		r.Counter("tenant", "arrivals", fmt.Sprintf("t%04d", i)).Add(uint64(i + 1))
	}
	for i := 0; i < MaxLabels; i++ {
		lbl := fmt.Sprintf("t%04d", i)
		if got := r.Counter("tenant", "arrivals", lbl).Value(); got != uint64(i+1) {
			t.Fatalf("tenant %d perturbed: %d, want %d", i, got, i+1)
		}
		if !r.Distinct("tenant", "arrivals", lbl) {
			t.Fatalf("pre-cap tenant %d not distinct", i)
		}
	}
	// The overflow series absorbed exactly the post-cap tenants' sum.
	var want uint64
	for i := MaxLabels; i < tenants; i++ {
		want += uint64(i + 1)
	}
	if got := r.Counter("tenant", "arrivals", OverflowLabel).Value(); got != want {
		t.Fatalf("overflow sum %d, want %d", got, want)
	}
	if r.Distinct("tenant", "arrivals", fmt.Sprintf("t%04d", tenants-1)) {
		t.Fatal("collapsed tenant reported distinct")
	}
	if r.Distinct("tenant", "arrivals", OverflowLabel) {
		t.Fatal("the overflow label itself must never read as distinct")
	}
	if r.Distinct("tenant", "arrivals", "never-registered") {
		t.Fatal("unregistered label reported distinct")
	}
}

// --- sampler ---

func TestSamplerTicksOnVirtualClock(t *testing.T) {
	eng := sim.NewEngine()
	r := NewRegistry()
	c := r.Counter("op", "acked", "all")
	s := NewSampler(eng, r, sim.Millisecond)
	eng.Schedule(500*sim.Microsecond, func() { c.Add(10) })
	eng.Schedule(1500*sim.Microsecond, func() { c.Add(30) })
	eng.RunFor(2500 * sim.Microsecond)
	// Windows: [1ms]=10, [2ms]=40 → rate over (1ms,2ms] = 30 per 1ms.
	want := 30.0 / (float64(sim.Millisecond) / float64(sim.Second))
	if got := c.Rate(); got != want {
		t.Fatalf("rate = %v, want %v", got, want)
	}
	s.Stop()
	at, _ := r.LastSample()
	eng.RunFor(10 * sim.Millisecond)
	if at2, _ := r.LastSample(); at2 != at {
		t.Fatal("stopped sampler kept sampling")
	}
}

// --- export ---

func TestExportTextShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal", "appends", "s0").Add(3)
	r.Gauge("host", "util", "n0").Set(0.5)
	r.Histogram("micro", "lat", "t").Observe(123 * sim.Microsecond)
	txt := r.ExportText()
	for _, want := range []string{
		`hyperloop_wal_appends{label="s0"} 3`,
		`# TYPE hyperloop_host_util gauge`,
		`hyperloop_host_util{label="n0"} 0.5`,
		`hyperloop_micro_lat_count{label="t"} 1`,
		`hyperloop_micro_lat{label="t",quantile="0.5"}`,
	} {
		if !strings.Contains(txt, want) {
			t.Fatalf("export missing %q:\n%s", want, txt)
		}
	}
}

func TestExportJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("wal", "appends", "s0").Add(7)
	r.Histogram("micro", "lat", "t").Observe(42 * sim.Microsecond)
	r.Sample(sim.Time(0).Add(3 * sim.Second))
	data, err := r.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	d, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if d.SampledAtNs != int64(3*sim.Second) {
		t.Fatalf("sampled_at = %d", d.SampledAtNs)
	}
	if len(d.Counters) != 1 || d.Counters[0].Value != 7 {
		t.Fatalf("counters: %+v", d.Counters)
	}
	if len(d.Histograms) != 1 || d.Histograms[0].Count != 1 {
		t.Fatalf("histograms: %+v", d.Histograms)
	}
	// Byte-determinism: exporting twice is identical.
	again, _ := r.ExportJSON()
	if string(again) != string(data) {
		t.Fatal("repeated export differs")
	}
}

func TestPromNameEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("we ird", "na-me", "l\"bl\n").Inc()
	txt := r.ExportText()
	if !strings.Contains(txt, `hyperloop_we_ird_na_me{label="l\"bl\n"} 1`) {
		t.Fatalf("escaping wrong:\n%s", txt)
	}
}

// Exercise the summary path used by stats consumers.
func TestHistogramSum(t *testing.T) {
	h := stats.NewHistogram()
	h.Record(10)
	h.Record(32)
	if h.Sum() != 42 {
		t.Fatalf("sum = %v", h.Sum())
	}
}
