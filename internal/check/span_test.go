package check

import (
	"strings"
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/span"
)

// spanRig builds a recorder whose clock can be stepped explicitly.
type spanRig struct {
	eng *sim.Engine
	rec *span.Recorder
}

func newSpanRig() *spanRig {
	eng := sim.NewEngine()
	return &spanRig{eng: eng, rec: span.NewRecorder(eng)}
}

// at runs fn at virtual time t (absolute).
func (r *spanRig) at(t sim.Duration, fn func()) {
	r.eng.ScheduleAt(sim.Time(0).Add(t), fn)
}

func (r *spanRig) check() Result {
	r.eng.Drain()
	return SpanConservation(r.rec)
}

func TestSpanConservationBalanced(t *testing.T) {
	r := newSpanRig()
	var s *span.Span
	r.at(0, func() { s = r.rec.Start("put", "s0") })
	var c *span.Span
	r.at(5, func() { c = s.Child("wal-append") })
	r.at(9, func() { c.End() })
	r.at(20, func() { s.End() })
	res := r.check()
	if res.Err != nil {
		t.Fatalf("balanced tree flagged: %v", res.Err)
	}
	if !strings.Contains(res.Detail, "2 spans balanced") {
		t.Fatalf("detail: %q", res.Detail)
	}
}

func TestSpanConservationUnended(t *testing.T) {
	r := newSpanRig()
	r.at(0, func() { r.rec.Start("put", "s0") })
	res := r.check()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "started but") {
		t.Fatalf("unended span not flagged: %v", res.Err)
	}
}

func TestSpanConservationDoubleEnd(t *testing.T) {
	r := newSpanRig()
	r.at(0, func() {
		s := r.rec.Start("put", "s0")
		s.End()
		s.End()
	})
	res := r.check()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "more than once") {
		t.Fatalf("double end not flagged: %v", res.Err)
	}
}

func TestSpanConservationChildEscapes(t *testing.T) {
	r := newSpanRig()
	var s, c *span.Span
	r.at(0, func() { s = r.rec.Start("put", "s0") })
	r.at(5, func() { c = s.Child("late-stage") })
	r.at(8, func() { s.End() })
	r.at(12, func() { c.End() }) // ends after its parent
	res := r.check()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "escapes parent") {
		t.Fatalf("escaping child not flagged: %v", res.Err)
	}
}

func TestSpanConservationChildSumOverflow(t *testing.T) {
	r := newSpanRig()
	var s, a, b *span.Span
	r.at(0, func() { s = r.rec.Start("put", "s0") })
	// Two children covering (0,9] and (1,10]: both inside the parent window,
	// but their summed duration (18) exceeds the parent's (10).
	r.at(0, func() { a = s.Child("stage-a") })
	r.at(1, func() { b = s.Child("stage-b") })
	r.at(9, func() { a.End() })
	r.at(10, func() { b.End(); s.End() })
	res := r.check()
	if res.Err == nil || !strings.Contains(res.Err.Error(), "child stages sum") {
		t.Fatalf("overlapping children not flagged: %v", res.Err)
	}
}

func TestSpanConservationFenceStraddle(t *testing.T) {
	build := func(mark bool) Result {
		r := newSpanRig()
		var s *span.Span
		r.at(0, func() {
			s = r.rec.Start("shard-put", "s0")
			s.SetShardEpoch(0, 1)
		})
		r.at(5, func() { r.rec.Fence(0, 2) })
		r.at(10, func() {
			if mark {
				s.MarkCrossedFence()
			}
			s.End()
		})
		return r.check()
	}
	if res := build(false); res.Err == nil || !strings.Contains(res.Err.Error(), "straddles fence") {
		t.Fatalf("unmarked straddle not flagged: %v", res.Err)
	}
	if res := build(true); res.Err != nil {
		t.Fatalf("marked crossing flagged: %v", res.Err)
	}
}

// A fence on a different shard, a fence at an older epoch, and an untagged
// span must all be ignored.
func TestSpanConservationFenceScoping(t *testing.T) {
	r := newSpanRig()
	var tagged, untagged *span.Span
	r.at(0, func() {
		tagged = r.rec.Start("shard-put", "s0")
		tagged.SetShardEpoch(0, 3)
		untagged = r.rec.Start("wal-append", "fm")
	})
	r.at(2, func() { r.rec.Fence(1, 9) }) // other shard
	r.at(3, func() { r.rec.Fence(0, 2) }) // older epoch than the span's
	r.at(8, func() { tagged.End(); untagged.End() })
	if res := r.check(); res.Err != nil {
		t.Fatalf("irrelevant fences flagged: %v", res.Err)
	}
}
