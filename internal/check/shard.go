package check

import (
	"fmt"
	"sort"
	"strings"
)

// Sharded-plane invariants: placement anti-affinity, key safety across a
// migration (nothing lost, nothing duplicated), and epoch fencing (no read
// served from a superseded owner). They consume pure data assembled by the
// experiment — shard contents rebuilt from durable bytes, a client-side
// key model, epoch words — keeping the checkers themselves store-agnostic.

// ShardPlacement verifies the placement table: every shard has a full,
// duplicate-free replica set (anti-affinity — one host never carries two
// replicas of the same shard).
func ShardPlacement(placements [][]int, replicas int) Result {
	res := Result{Name: "shard-placement"}
	hosts := make(map[int]bool)
	for s, ps := range placements {
		if len(ps) != replicas {
			res.Err = fmt.Errorf("shard %d has %d replicas, want %d", s, len(ps), replicas)
			return res
		}
		seen := make(map[int]bool, len(ps))
		for _, h := range ps {
			if seen[h] {
				res.Err = fmt.Errorf("shard %d places two replicas on host %d", s, h)
				return res
			}
			seen[h] = true
			hosts[h] = true
		}
	}
	res.Detail = fmt.Sprintf("%d shards x %d replicas on %d hosts", len(placements), replicas, len(hosts))
	return res
}

// KeyModel is the client-side ground truth for one key: the highest
// sequence number whose write was acked, and any sequence numbers whose
// writes ended in an error after submission (indeterminate — the bytes may
// or may not have landed; a chain fault mid-put admits either outcome).
type KeyModel struct {
	Acked uint64
	Maybe []uint64
}

func (m KeyModel) admits(seq uint64) bool {
	if seq == m.Acked {
		return true
	}
	for _, s := range m.Maybe {
		if seq == s && s > m.Acked {
			return true
		}
	}
	return false
}

// ShardedKeys verifies key safety after migrations: every key the model
// acked is present in its owning shard at an admissible version (the acked
// seq, or a newer indeterminate one), no key surfaces in a shard that does
// not own it (duplication), and no shard holds a key the model never wrote.
// route maps keys to owning shards; contents maps shard -> key -> recovered
// seq (decoded from the durable value).
func ShardedKeys(route func(string) int, contents map[int]map[string]uint64, model map[string]KeyModel) Result {
	res := Result{Name: "sharded-keys"}
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	checked := 0
	for _, k := range keys {
		m := model[k]
		owner := route(k)
		seq, ok := contents[owner][k]
		if !ok {
			if m.Acked != 0 {
				res.Err = fmt.Errorf("key %q lost: acked seq %d absent from shard %d", k, m.Acked, owner)
				return res
			}
			continue // never acked, absence is fine
		}
		if !m.admits(seq) {
			res.Err = fmt.Errorf("key %q on shard %d has seq %d, model admits acked=%d maybe=%v",
				k, owner, seq, m.Acked, m.Maybe)
			return res
		}
		checked++
	}
	shards := make([]int, 0, len(contents))
	for s := range contents {
		shards = append(shards, s)
	}
	sort.Ints(shards)
	for _, s := range shards {
		ks := make([]string, 0, len(contents[s]))
		for k := range contents[s] {
			ks = append(ks, k)
		}
		sort.Strings(ks)
		for _, k := range ks {
			if route(k) != s {
				res.Err = fmt.Errorf("key %q duplicated: present on shard %d, owner is %d", k, s, route(k))
				return res
			}
			if _, known := model[k]; !known {
				res.Err = fmt.Errorf("shard %d holds unknown key %q", s, k)
				return res
			}
		}
	}
	res.Detail = fmt.Sprintf("%d acked keys verified across %d shards", checked, len(contents))
	return res
}

// EpochState is one shard's epoch view: the authoritative epoch, the epoch
// words read from current owners and former owners, and how many replica
// reads were actually served from a superseded epoch.
type EpochState struct {
	Shard       int
	Epoch       uint64   // authoritative (front-end) epoch
	Owners      []uint64 // epoch word on each current replica
	Former      []uint64 // epoch word on each former owner host
	StaleServes uint64   // reads delivered from a superseded epoch
}

// EpochFence verifies the cutover fence: every current owner of a shard
// carries the authoritative epoch word, every former owner a strictly
// older one, and no read was ever served from a superseded epoch.
func EpochFence(states []EpochState) Result {
	res := Result{Name: "epoch-fence"}
	var detail []string
	for _, st := range states {
		for i, e := range st.Owners {
			if e != st.Epoch {
				res.Err = fmt.Errorf("shard %d owner %d has epoch %d, want %d", st.Shard, i, e, st.Epoch)
				return res
			}
		}
		for i, e := range st.Former {
			if e >= st.Epoch {
				res.Err = fmt.Errorf("shard %d former owner %d still carries epoch %d (current %d) — fence leaked",
					st.Shard, i, e, st.Epoch)
				return res
			}
		}
		if st.StaleServes > 0 {
			res.Err = fmt.Errorf("shard %d served %d reads from a superseded epoch", st.Shard, st.StaleServes)
			return res
		}
		detail = append(detail, fmt.Sprintf("s%d@%d(+%d former)", st.Shard, st.Epoch, len(st.Former)))
	}
	res.Detail = strings.Join(detail, " ")
	return res
}
