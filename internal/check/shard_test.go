package check

import (
	"strings"
	"testing"
)

func TestShardPlacement(t *testing.T) {
	ok := ShardPlacement([][]int{{0, 1, 2}, {2, 3, 4}}, 3)
	if !ok.Pass() {
		t.Fatalf("valid placement failed: %v", ok.Err)
	}
	if ShardPlacement([][]int{{0, 1, 1}}, 3).Pass() {
		t.Fatal("duplicate host passed anti-affinity")
	}
	if ShardPlacement([][]int{{0, 1}}, 3).Pass() {
		t.Fatal("short replica set passed")
	}
}

func routeBy(m map[string]int) func(string) int {
	return func(k string) int { return m[k] }
}

func TestShardedKeys(t *testing.T) {
	route := routeBy(map[string]int{"a": 0, "b": 0, "c": 1})
	model := map[string]KeyModel{
		"a": {Acked: 3},
		"b": {Acked: 5, Maybe: []uint64{6}},
		"c": {Acked: 2},
	}
	good := map[int]map[string]uint64{
		0: {"a": 3, "b": 6}, // b surfaced at the indeterminate newer seq
		1: {"c": 2},
	}
	if r := ShardedKeys(route, good, model); !r.Pass() {
		t.Fatalf("good contents failed: %v", r.Err)
	}

	lost := map[int]map[string]uint64{0: {"b": 5}, 1: {"c": 2}}
	if r := ShardedKeys(route, lost, model); r.Pass() || !strings.Contains(r.Err.Error(), "lost") {
		t.Fatalf("lost key not caught: %v", r.Err)
	}

	stale := map[int]map[string]uint64{0: {"a": 2, "b": 5}, 1: {"c": 2}}
	if r := ShardedKeys(route, stale, model); r.Pass() {
		t.Fatal("stale seq admitted")
	}

	dup := map[int]map[string]uint64{0: {"a": 3, "b": 5}, 1: {"c": 2, "a": 3}}
	if r := ShardedKeys(route, dup, model); r.Pass() || !strings.Contains(r.Err.Error(), "duplicated") {
		t.Fatalf("duplicated key not caught: %v", r.Err)
	}

	// An indeterminate seq OLDER than the ack must not be admitted — the
	// acked write cannot be rolled back by a failed earlier one.
	model["b"] = KeyModel{Acked: 5, Maybe: []uint64{4}}
	old := map[int]map[string]uint64{0: {"a": 3, "b": 4}, 1: {"c": 2}}
	if r := ShardedKeys(route, old, model); r.Pass() {
		t.Fatal("rollback below ack admitted")
	}
}

func TestEpochFence(t *testing.T) {
	good := []EpochState{
		{Shard: 0, Epoch: 2, Owners: []uint64{2, 2, 2}, Former: []uint64{1, 0}},
		{Shard: 1, Epoch: 0, Owners: []uint64{0, 0, 0}},
	}
	if r := EpochFence(good); !r.Pass() {
		t.Fatalf("good fence failed: %v", r.Err)
	}
	lagOwner := []EpochState{{Shard: 0, Epoch: 2, Owners: []uint64{2, 1, 2}}}
	if EpochFence(lagOwner).Pass() {
		t.Fatal("lagging owner passed")
	}
	leak := []EpochState{{Shard: 0, Epoch: 2, Owners: []uint64{2}, Former: []uint64{2}}}
	if EpochFence(leak).Pass() {
		t.Fatal("former owner at current epoch passed")
	}
	served := []EpochState{{Shard: 0, Epoch: 1, Owners: []uint64{1}, StaleServes: 3}}
	if EpochFence(served).Pass() {
		t.Fatal("stale serves passed")
	}
}
