package check

import (
	"encoding/binary"
	"strings"
	"testing"

	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

type memStore []byte

func (m memStore) WriteLocal(off int, data []byte) { copy(m[off:], data) }
func (m memStore) ReadLocal(off, size int) []byte  { return m[off : off+size] }

func img(name string, b []byte) Image {
	return Image{Name: name, Read: func(off, size int) []byte { return b[off : off+size] }}
}

const (
	logBase = 0
	logSize = 8 << 10
	objBase = logSize
	storeSz = 16 << 10
)

// buildLogs creates a client plus two replica stores sharing a WAL via the
// local replicator, appends n records, and executes exec of them.
func buildLogs(t *testing.T, n, exec int) (client, r1, r2 memStore) {
	t.Helper()
	client = make(memStore, storeSz)
	r1 = make(memStore, storeSz)
	r2 = make(memStore, storeSz)
	l := wal.New(client, wal.LocalReplicator{Stores: []wal.Store{client, r1, r2}}, logBase, logSize, nil)
	for i := 0; i < n; i++ {
		payload := make([]byte, 8)
		binary.LittleEndian.PutUint64(payload, uint64(i+1))
		err := l.Append([]wal.Entry{{Offset: objBase + 8*i, Data: payload}}, nil)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	for i := 0; i < exec; i++ {
		if err := l.ExecuteAndAdvance(nil); err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
	}
	return client, r1, r2
}

func TestWALSoundnessAndPrefix(t *testing.T) {
	client, r1, r2 := buildLogs(t, 3, 1)
	imgs := []Image{img("client", client), img("r1", r1), img("r2", r2)}
	if res := WALSoundness(imgs, logBase, logSize); !res.Pass() {
		t.Fatalf("soundness: %v", res.Err)
	}
	if res := WALPrefix(imgs, logBase, logSize); !res.Pass() {
		t.Fatalf("prefix: %v", res.Err)
	}
}

func TestWALSoundnessCatchesBadHeader(t *testing.T) {
	_, r1, r2 := buildLogs(t, 2, 0)
	r1[0] ^= 0xFF // clobber the log magic
	res := WALSoundness([]Image{img("r1", r1), img("r2", r2)}, logBase, logSize)
	if res.Pass() {
		t.Fatal("soundness passed with corrupt header")
	}
	if !strings.Contains(res.Err.Error(), "r1") {
		t.Fatalf("error does not name the bad image: %v", res.Err)
	}
}

func TestWALPrefixAllowsLaggingSuffix(t *testing.T) {
	client, r1, r2 := buildLogs(t, 3, 0)
	// Tear r2's last record: flip its final byte so its CRC fails. Recover
	// stops at the torn record, leaving r2 a strict prefix of the others.
	rec, err := wal.Recover(img("r2", r2).Read, logBase, logSize)
	if err != nil || len(rec.Records) != 3 {
		t.Fatalf("setup: %d records, err %v", len(rec.Records), err)
	}
	const ringStart = logBase + 32 // past the log header
	r2[ringStart+rec.Tail-1] ^= 0xFF
	rec, err = wal.Recover(img("r2", r2).Read, logBase, logSize)
	if err != nil || len(rec.Records) != 2 {
		t.Fatalf("tear ineffective: %d records, err %v", len(rec.Records), err)
	}
	res := WALPrefix([]Image{img("client", client), img("r1", r1), img("r2", r2)}, logBase, logSize)
	if !res.Pass() {
		t.Fatalf("prefix rejected a lagging replica: %v", res.Err)
	}
}

func TestWALPrefixCatchesHeaderDivergence(t *testing.T) {
	client, r1, _ := buildLogs(t, 2, 0)
	r1[8]++ // bump the recorded head offset
	res := WALPrefix([]Image{img("client", client), img("r1", r1)}, logBase, logSize)
	if res.Pass() {
		t.Fatal("prefix passed with diverged headers")
	}
}

func TestLocksFree(t *testing.T) {
	buf := make([]byte, 8*16)
	imgs := []Image{img("a", buf)}
	if res := LocksFree(imgs, 0, 16); !res.Pass() {
		t.Fatalf("clean table: %v", res.Err)
	}
	binary.LittleEndian.PutUint64(buf[8*5:], locks.Word(3, 0))
	if res := LocksFree(imgs, 0, 16); res.Pass() {
		t.Fatal("missed leaked writer")
	} else if !strings.Contains(res.Err.Error(), "stripe 5") {
		t.Fatalf("error does not name the stripe: %v", res.Err)
	}
	binary.LittleEndian.PutUint64(buf[8*5:], locks.Word(0, 2))
	if res := LocksFree(imgs, 0, 16); res.Pass() {
		t.Fatal("missed leaked readers")
	}
}

func TestRegionEqual(t *testing.T) {
	a := make([]byte, 256)
	b := make([]byte, 256)
	for i := range a {
		a[i] = byte(i)
		b[i] = byte(i)
	}
	if res := RegionEqual("converge", img("ref", a), []Image{img("b", b)}, 64, 128); !res.Pass() {
		t.Fatalf("equal regions: %v", res.Err)
	}
	b[100] ^= 1
	res := RegionEqual("converge", img("ref", a), []Image{img("b", b)}, 64, 128)
	if res.Pass() {
		t.Fatal("missed divergence")
	}
	if !strings.Contains(res.Err.Error(), "offset 100") {
		t.Fatalf("error does not locate the byte: %v", res.Err)
	}
}

func stamp(buf []byte, slot int, id uint64) {
	binary.LittleEndian.PutUint64(buf[8*slot:], id)
}

func TestTxnAtomicity(t *testing.T) {
	const nSlots = 16
	txns := []TxnRecord{
		{ID: 101, Slots: []int{0, 1}, Acked: true},
		{ID: 102, Slots: []int{1, 2, 3}, Acked: false}, // indeterminate; slot 1 shared
		{ID: 103, Slots: []int{5}, Acked: true},
	}
	fresh := func() []byte {
		buf := make([]byte, 8*nSlots)
		stamp(buf, 0, 101)
		stamp(buf, 1, 102) // shared slot: either writer's stamp is valid
		stamp(buf, 5, 103)
		return buf
	}

	// Indeterminate txn fully absent on its exclusive slots (2, 3): OK.
	if res := TxnAtomicity(img("m", fresh()), 0, nSlots, txns); !res.Pass() {
		t.Fatalf("valid state rejected: %v", res.Err)
	}
	// Fully applied: also OK.
	buf := fresh()
	stamp(buf, 2, 102)
	stamp(buf, 3, 102)
	if res := TxnAtomicity(img("m", buf), 0, nSlots, txns); !res.Pass() {
		t.Fatalf("fully-applied indeterminate rejected: %v", res.Err)
	}
	// Partially applied indeterminate: FAIL.
	buf = fresh()
	stamp(buf, 2, 102)
	if res := TxnAtomicity(img("m", buf), 0, nSlots, txns); res.Pass() {
		t.Fatal("missed partial application")
	}
	// Acked txn missing an exclusive slot: FAIL.
	buf = fresh()
	stamp(buf, 0, 0)
	if res := TxnAtomicity(img("m", buf), 0, nSlots, txns); res.Pass() {
		t.Fatal("missed lost acked write")
	}
	// Slot stamped by a transaction that never wrote it: FAIL.
	buf = fresh()
	stamp(buf, 7, 103)
	if res := TxnAtomicity(img("m", buf), 0, nSlots, txns); res.Pass() {
		t.Fatal("missed misdirected write")
	}
	// Slot stamped with an unknown ID: FAIL.
	buf = fresh()
	stamp(buf, 4, 999)
	if res := TxnAtomicity(img("m", buf), 0, nSlots, txns); res.Pass() {
		t.Fatal("missed foreign stamp")
	}
}

func TestMembership(t *testing.T) {
	bound := 5 * sim.Millisecond
	probe := sim.Millisecond
	if res := Membership(1, true, false, 3, 3, 4*sim.Millisecond, bound, probe); !res.Pass() {
		t.Fatalf("healthy failover rejected: %v", res.Err)
	}
	if res := Membership(0, false, false, 3, 3, 0, bound, probe); !res.Pass() {
		t.Fatalf("healthy no-failover rejected: %v", res.Err)
	}
	if res := Membership(0, true, false, 3, 3, 0, bound, probe); res.Pass() {
		t.Fatal("missed absent failover")
	}
	if res := Membership(1, false, false, 3, 3, 0, bound, probe); res.Pass() {
		t.Fatal("missed spurious failover")
	}
	if res := Membership(1, true, true, 3, 3, 4*sim.Millisecond, bound, probe); res.Pass() {
		t.Fatal("missed stuck-paused chain")
	}
	if res := Membership(1, true, false, 2, 3, 4*sim.Millisecond, bound, probe); res.Pass() {
		t.Fatal("missed short membership")
	}
	if res := Membership(1, true, false, 3, 3, 20*sim.Millisecond, bound, probe); res.Pass() {
		t.Fatal("missed slow detection")
	}
}
