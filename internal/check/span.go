// Span-conservation invariants: every started span ends exactly once,
// child stage durations nest inside and sum to no more than their parent,
// and no shard-tagged span silently straddles an epoch fence (migration
// cutover) — an op that was issued against epoch E but acked after the
// fence advanced the shard to E+1 must carry the crossed-fence mark the
// data plane sets when it observes the retarget.
package check

import (
	"fmt"

	"hyperloop/internal/span"
)

// SpanConservation audits a recorder after a scenario has quiesced.
func SpanConservation(rec *span.Recorder) Result {
	res := Result{Name: "span-conservation"}
	started, ended, doubleEnded, dropped := rec.Counts()
	if doubleEnded > 0 {
		res.Err = fmt.Errorf("%d spans ended more than once", doubleEnded)
		return res
	}
	if ended != started {
		res.Err = fmt.Errorf("%d spans started but %d ended", started, ended)
		return res
	}
	fences := rec.Fences()
	var checked int
	for _, root := range rec.Roots() {
		if err := auditSpan(root, fences); err != nil {
			res.Err = err
			return res
		}
		checked++
	}
	res.Detail = fmt.Sprintf("%d spans balanced, %d roots audited, %d fences, %d past retention",
		started, checked, len(fences), dropped)
	return res
}

func auditSpan(s *span.Span, fences []span.Fence) error {
	if !s.Ended() {
		return fmt.Errorf("span %d (%s) never ended", s.ID, s.Name)
	}
	if s.EndAt < s.Start {
		return fmt.Errorf("span %d (%s) ends at %v before its start %v", s.ID, s.Name, s.EndAt, s.Start)
	}
	var childSum int64
	for _, c := range s.Children {
		if err := auditSpan(c, fences); err != nil {
			return err
		}
		if c.Start < s.Start || c.EndAt > s.EndAt {
			return fmt.Errorf("child span %d (%s) [%v,%v] escapes parent %d (%s) [%v,%v]",
				c.ID, c.Name, c.Start, c.EndAt, s.ID, s.Name, s.Start, s.EndAt)
		}
		childSum += int64(c.Duration())
	}
	if childSum > int64(s.Duration()) {
		return fmt.Errorf("span %d (%s): child stages sum to %d ns > parent %d ns",
			s.ID, s.Name, childSum, int64(s.Duration()))
	}
	if s.Shard >= 0 && !s.CrossedFence {
		for _, f := range fences {
			// The fence that supersedes this span's epoch on its shard:
			// the span must not straddle it without the mark.
			if f.Shard == s.Shard && f.Epoch > s.Epoch && s.Start < f.At && s.EndAt > f.At {
				return fmt.Errorf("span %d (%s) on shard %d epoch %d straddles fence to epoch %d at %v unmarked",
					s.ID, s.Name, s.Shard, s.Epoch, f.Epoch, f.At)
			}
		}
	}
	return nil
}
