// Package check implements the invariant checkers run during and after a
// fault scenario: WAL recovery soundness, durable-prefix consistency across
// replica logs, lock-table quiescence, store convergence, transaction
// atomicity/visibility, and chain-membership convergence within the
// detection bound. Checkers consume read-only images of node state (live or
// durable), return structured Results, and never mutate anything — the
// fault matrix assembles their Reports into per-scenario verdicts.
package check

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"strings"

	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// Image is named, read-only access to a node's store bytes — live
// (volatile-coherent) or durable (what a reboot would find), the caller
// decides which view it hands in.
type Image struct {
	Name string
	Read func(off, size int) []byte
}

// Result is one checker's verdict.
type Result struct {
	Name   string
	Err    error  // nil = pass
	Detail string // human-readable evidence, deterministic per seed
}

// Pass reports whether the check succeeded.
func (r Result) Pass() bool { return r.Err == nil }

func (r Result) String() string {
	if r.Pass() {
		return fmt.Sprintf("PASS %s (%s)", r.Name, r.Detail)
	}
	return fmt.Sprintf("FAIL %s: %v", r.Name, r.Err)
}

// Report is an ordered list of checker results.
type Report []Result

// AllPass reports whether every check passed.
func (rs Report) AllPass() bool {
	for _, r := range rs {
		if !r.Pass() {
			return false
		}
	}
	return true
}

// Summary renders "k/n" plus the names of any failing checks.
func (rs Report) Summary() string {
	pass := 0
	var failed []string
	for _, r := range rs {
		if r.Pass() {
			pass++
		} else {
			failed = append(failed, r.Name)
		}
	}
	s := fmt.Sprintf("%d/%d", pass, len(rs))
	if len(failed) > 0 {
		s += " (" + strings.Join(failed, ",") + ")"
	}
	return s
}

// WALSoundness verifies that every image's log region recovers cleanly
// (CRC-valid, sequence-contiguous records; no scan error). This is the
// recovery-soundness invariant: whatever a fault left behind, the durable
// log must parse as a valid (possibly truncated) redo history.
func WALSoundness(imgs []Image, base, size int) Result {
	res := Result{Name: "wal-soundness"}
	var counts []string
	for _, img := range imgs {
		rec, err := wal.Recover(img.Read, base, size)
		if err != nil {
			res.Err = fmt.Errorf("%s: %w", img.Name, err)
			return res
		}
		counts = append(counts, fmt.Sprintf("%s:%d@%d", img.Name, len(rec.Records), rec.Seq))
	}
	res.Detail = strings.Join(counts, " ")
	return res
}

// WALPrefix verifies durable-prefix consistency: all images agree on the
// log head, and their recovered record sequences are prefixes of one
// another (chain replication admits a downstream replica lagging by a
// suffix, never diverging).
func WALPrefix(imgs []Image, base, size int) Result {
	res := Result{Name: "wal-prefix"}
	type recovered struct {
		name string
		rec  wal.Recovered
	}
	var all []recovered
	for _, img := range imgs {
		rec, err := wal.Recover(img.Read, base, size)
		if err != nil {
			res.Err = fmt.Errorf("%s: %w", img.Name, err)
			return res
		}
		all = append(all, recovered{img.Name, rec})
	}
	if len(all) == 0 {
		res.Detail = "no images"
		return res
	}
	ref := all[0]
	maxLen := 0
	for _, a := range all[1:] {
		if a.rec.Head != ref.rec.Head || a.rec.Seq != ref.rec.Seq {
			res.Err = fmt.Errorf("%s header (head=%d seq=%d) != %s header (head=%d seq=%d)",
				a.name, a.rec.Head, a.rec.Seq, ref.name, ref.rec.Head, ref.rec.Seq)
			return res
		}
		n := len(a.rec.Records)
		if len(ref.rec.Records) < n {
			n = len(ref.rec.Records)
		}
		for i := 0; i < n; i++ {
			if err := sameRecord(a.rec.Records[i], ref.rec.Records[i]); err != nil {
				res.Err = fmt.Errorf("%s vs %s record %d: %w", a.name, ref.name, i, err)
				return res
			}
		}
		if n > maxLen {
			maxLen = n
		}
	}
	res.Detail = fmt.Sprintf("%d images, common prefix ≥ %d records", len(all), maxLen)
	return res
}

func sameRecord(a, b wal.Record) error {
	if a.Seq != b.Seq {
		return fmt.Errorf("seq %d != %d", a.Seq, b.Seq)
	}
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("entry count %d != %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		if a.Entries[i].Offset != b.Entries[i].Offset || !bytes.Equal(a.Entries[i].Data, b.Entries[i].Data) {
			return fmt.Errorf("entry %d differs", i)
		}
	}
	return nil
}

// LocksFree verifies the lock table holds no writer bits or reader counts
// on any image — after quiesce plus repair, every lock taken across the
// fault must have been released or reset (group-lock safety).
func LocksFree(imgs []Image, lockBase, stripes int) Result {
	res := Result{Name: "locks-free"}
	for _, img := range imgs {
		buf := img.Read(lockBase, 8*stripes)
		for s := 0; s < stripes; s++ {
			w := binary.LittleEndian.Uint64(buf[8*s:])
			if w != 0 {
				held := "readers"
				if locks.HasWriter(w) {
					held = "writer"
				}
				res.Err = fmt.Errorf("%s stripe %d leaked (%s, word=%#x)", img.Name, s, held, w)
				return res
			}
		}
	}
	res.Detail = fmt.Sprintf("%d stripes clear on %d images", stripes, len(imgs))
	return res
}

// RegionEqual verifies [off, off+size) is byte-identical between ref and
// every other image — e.g. object-region convergence of all members onto
// the client's committed state, or a member's durable view matching its
// volatile view after a final flush.
func RegionEqual(name string, ref Image, imgs []Image, off, size int) Result {
	res := Result{Name: name}
	want := ref.Read(off, size)
	for _, img := range imgs {
		got := img.Read(off, size)
		if !bytes.Equal(got, want) {
			for i := range want {
				if got[i] != want[i] {
					res.Err = fmt.Errorf("%s diverges from %s at offset %d (%#x != %#x)",
						img.Name, ref.Name, off+i, got[i], want[i])
					return res
				}
			}
		}
	}
	res.Detail = fmt.Sprintf("%dB identical across %d images", size, len(imgs))
	return res
}

// TxnRecord is the workload's account of one transaction: the slots it
// stamped with its ID, and how its commit concluded. Acked means the commit
// callback reported success (durability promised); Err records a failed
// commit — such transactions are *indeterminate* across a fault: the record
// may or may not have been durably logged and replayed.
type TxnRecord struct {
	ID    uint64
	Slots []int
	Acked bool
	Err   error
}

// TxnAtomicity verifies per-image transaction integrity over an object
// region of nSlots 8-byte slots stamped with writer IDs:
//
//   - validity: every slot holds 0 or the ID of a transaction that
//     actually wrote it (no corruption, no misdirected writes);
//   - acked visibility: a slot whose writers ALL acked is non-zero;
//   - atomicity: for each transaction, its *exclusive* slots (written by
//     no other transaction) are either all stamped or none — an acked
//     transaction must have all of them stamped; an indeterminate one may
//     be fully applied or fully absent, but never partial.
func TxnAtomicity(img Image, objBase, nSlots int, txns []TxnRecord) Result {
	res := Result{Name: "txn-atomicity:" + img.Name}
	writers := make(map[int][]int) // slot -> txn indexes
	for ti, tx := range txns {
		for _, s := range tx.Slots {
			writers[s] = append(writers[s], ti)
		}
	}
	buf := img.Read(objBase, 8*nSlots)
	value := func(s int) uint64 { return binary.LittleEndian.Uint64(buf[8*s:]) }

	byID := make(map[uint64]bool, len(txns))
	for _, tx := range txns {
		byID[tx.ID] = true
	}
	for s := 0; s < nSlots; s++ {
		v := value(s)
		if v == 0 {
			continue
		}
		if !byID[v] {
			res.Err = fmt.Errorf("slot %d holds %d, written by no transaction", s, v)
			return res
		}
		wroteHere := false
		for _, ti := range writers[s] {
			if txns[ti].ID == v {
				wroteHere = true
				break
			}
		}
		if !wroteHere {
			res.Err = fmt.Errorf("slot %d holds %d, whose transaction never wrote it", s, v)
			return res
		}
	}

	exclTotal := 0
	for _, tx := range txns {
		var excl []int
		for _, s := range tx.Slots {
			if len(writers[s]) == 1 {
				excl = append(excl, s)
			}
		}
		if len(excl) == 0 {
			continue
		}
		exclTotal += len(excl)
		stamped := 0
		for _, s := range excl {
			if value(s) == tx.ID {
				stamped++
			}
		}
		switch {
		case tx.Acked && stamped != len(excl):
			res.Err = fmt.Errorf("acked txn %d visible on %d/%d exclusive slots", tx.ID, stamped, len(excl))
			return res
		case !tx.Acked && stamped != 0 && stamped != len(excl):
			res.Err = fmt.Errorf("txn %d (indeterminate) partially applied: %d/%d exclusive slots", tx.ID, stamped, len(excl))
			return res
		}
	}
	res.Detail = fmt.Sprintf("%d txns, %d exclusive slots", len(txns), exclTotal)
	return res
}

// Membership verifies the chain converged as the scenario demanded: the
// expected number of failovers happened, the manager is unpaused with a
// full membership, and — when a failover was expected — detection landed
// within the configured bound (plus one probe period of scan granularity
// and one of scheduling slack).
func Membership(failovers uint64, expectFailover bool, paused bool, members, wantMembers int,
	detectDelay, bound, probeEvery sim.Duration) Result {
	res := Result{Name: "membership"}
	wantFailovers := uint64(0)
	if expectFailover {
		wantFailovers = 1
	}
	switch {
	case failovers != wantFailovers:
		res.Err = fmt.Errorf("failovers=%d want %d", failovers, wantFailovers)
	case paused:
		res.Err = fmt.Errorf("chain still paused after recovery window")
	case members != wantMembers:
		res.Err = fmt.Errorf("membership=%d want %d", members, wantMembers)
	case expectFailover && detectDelay > bound+2*probeEvery:
		res.Err = fmt.Errorf("detection took %v, bound %v (+%v slack)", detectDelay, bound, 2*probeEvery)
	}
	if res.Err == nil {
		if expectFailover {
			res.Detail = fmt.Sprintf("1 failover, detected in %v (bound %v)", detectDelay, bound)
		} else {
			res.Detail = "no failover (as expected)"
		}
	}
	return res
}

// RestoreEquivalence verifies the ephemeral-replica contract (DESIGN.md
// §17): the window image rebuilt from the object store's snapshot + segment
// blobs must be byte-identical to the live image at the same commit point.
// rebuild runs the store-side reconstruction (typically stream.RebuildImage
// wrapped over the scenario's objstore); the caller quiesces the streamer
// first so both sides describe the same prefix of commits.
func RestoreEquivalence(live Image, rebuild func() (img []byte, base int, covered uint64, err error)) Result {
	res := Result{Name: "restore-equivalence"}
	img, base, covered, err := rebuild()
	if err != nil {
		res.Err = fmt.Errorf("rebuild: %w", err)
		return res
	}
	want := live.Read(base, len(img))
	if !bytes.Equal(img, want) {
		for i := range want {
			if img[i] != want[i] {
				res.Err = fmt.Errorf("rebuilt image diverges from %s at offset %d (%#x != %#x, covered seq %d)",
					live.Name, base+i, img[i], want[i], covered)
				return res
			}
		}
	}
	res.Detail = fmt.Sprintf("%dB at [%d,+%d) identical, covered seq %d", len(img), base, len(img), covered)
	return res
}
