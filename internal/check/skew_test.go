package check

import (
	"strings"
	"testing"

	"hyperloop/internal/sim"
)

// TestPartitionSkewPass: a model honoring the lookahead contract yields a
// passing check.
func TestPartitionSkewPass(t *testing.T) {
	pe := sim.NewPartitioned(2, 100)
	pe.SetWorkers(2)
	for i := 0; i < 5; i++ {
		i := i
		pe.Partition(0).ScheduleAt(sim.Time(1000*i), func() {
			pe.Send(0, 1, 150, func() {})
		})
	}
	pe.Drain()
	res := PartitionSkew(pe)
	if !res.Pass() {
		t.Fatalf("clean run failed skew check: %v", res.Err)
	}
	if !strings.Contains(res.Detail, "0 violations") {
		t.Fatalf("detail = %q", res.Detail)
	}
}

// TestPartitionSkewCatchesBrokenLookahead is the ISSUE 6 regression test:
// configure the engine with a lookahead larger than the model's real minimum
// send delay — the classic mis-derived-lookahead bug — and require the
// checker to flag it.
func TestPartitionSkewCatchesBrokenLookahead(t *testing.T) {
	// Claimed lookahead 2µs, but the model's fabric actually delivers in
	// 500ns: partition 1 can race past in-flight messages.
	pe := sim.NewPartitioned(2, 2000)
	pe.SetWorkers(2)
	// Busy local work on partition 1 so it runs ahead under the (bogus) wide
	// horizon while the too-fast message is in flight.
	for i := 0; i < 20; i++ {
		pe.Partition(1).ScheduleAt(sim.Time(100*i), func() {})
	}
	pe.Partition(0).ScheduleAt(50, func() {
		pe.Send(0, 1, 500, func() {})
	})
	pe.Drain()
	res := PartitionSkew(pe)
	if res.Pass() {
		t.Fatal("broken lookahead not caught by skew checker")
	}
	if !strings.Contains(res.Err.Error(), "send-lookahead") {
		t.Fatalf("error should identify the violating send: %v", res.Err)
	}
}
