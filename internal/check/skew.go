package check

import (
	"fmt"

	"hyperloop/internal/sim"
)

// PartitionSkew verifies the conservative-lookahead invariant of a
// partitioned run: no partition ever fired an event earlier than a message
// that was still in flight toward it. The engine cannot violate this on its
// own — the horizon construction forbids it — so a violation always means
// the *model* broke its contract: some cross-partition Send promised less
// delay than the lookahead the engine was configured with (and, downstream,
// an arrival may have landed behind its destination's clock and been
// clamped). The checker turns the engine's violation log into the standard
// Result shape the fault matrix and cmd gates consume.
func PartitionSkew(pe *sim.PartitionedEngine) Result {
	res := Result{Name: "partition-skew"}
	viols := pe.SkewViolations()
	if len(viols) > 0 {
		v := viols[0]
		res.Err = fmt.Errorf("%d lookahead violations, first: %v", len(viols), v)
		return res
	}
	res.Detail = fmt.Sprintf("%d partitions, lookahead %v, %d events, 0 violations",
		pe.Partitions(), pe.Lookahead(), pe.TotalFired())
	return res
}
