package stats

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hyperloop/internal/sim"
)

func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty histogram returned nonzero stats: %+v", h.Summarize())
	}
}

func TestSingleValue(t *testing.T) {
	h := NewHistogram()
	h.Record(12345)
	s := h.Summarize()
	if s.Count != 1 {
		t.Fatalf("count = %d", s.Count)
	}
	for _, v := range []sim.Duration{s.Mean, s.P50, s.P95, s.P99, s.Min, s.Max} {
		if v != 12345 {
			t.Fatalf("single-value stats not exact: %+v", s)
		}
	}
}

func TestSmallExactValues(t *testing.T) {
	// Values under 64ns land in exact buckets.
	h := NewHistogram()
	for i := sim.Duration(0); i < 64; i++ {
		h.Record(i)
	}
	if h.Min() != 0 || h.Max() != 63 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if p := h.Percentile(50); p != 31 && p != 32 {
		t.Fatalf("p50 = %v, want 31 or 32", p)
	}
}

func TestPercentileAccuracy(t *testing.T) {
	h := NewHistogram()
	var raw []sim.Duration
	r := sim.NewRand(11)
	for i := 0; i < 50000; i++ {
		v := r.Pareto(1000, 1.2) // heavy tail, like our latency data
		h.Record(v)
		raw = append(raw, v)
	}
	exact := Exact(raw)
	approx := h.Summarize()
	check := func(name string, a, e sim.Duration) {
		if e == 0 {
			return
		}
		rel := math.Abs(float64(a-e)) / float64(e)
		if rel > 0.02 {
			t.Errorf("%s: approx %v vs exact %v (rel err %.3f)", name, a, e, rel)
		}
	}
	check("mean", approx.Mean, exact.Mean)
	check("p50", approx.P50, exact.P50)
	check("p95", approx.P95, exact.P95)
	check("p99", approx.P99, exact.P99)
	if approx.Min != exact.Min || approx.Max != exact.Max {
		t.Errorf("min/max not exact: %v/%v vs %v/%v", approx.Min, approx.Max, exact.Min, exact.Max)
	}
}

func TestNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-100)
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: %+v", h.Summarize())
	}
}

func TestHugeValue(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Duration(math.MaxInt64 / 2))
	if h.Count() != 1 {
		t.Fatal("huge value dropped")
	}
	if h.P99() != h.Max() {
		t.Fatalf("p99 of single huge value should clamp to max")
	}
}

func TestMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 1000; i++ {
		a.Record(sim.Duration(i))
		b.Record(sim.Duration(i + 5000))
	}
	a.Merge(b)
	if a.Count() != 2000 {
		t.Fatalf("merged count = %d", a.Count())
	}
	if a.Min() != 0 || a.Max() != 5999 {
		t.Fatalf("merged min/max = %v/%v", a.Min(), a.Max())
	}
	mean := a.Mean()
	if mean < 2990 || mean > 3010 {
		t.Fatalf("merged mean = %v, want ≈2999", mean)
	}
}

func TestMergeEmpty(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.Record(10)
	a.Merge(b) // merging empty must not disturb min
	if a.Min() != 10 {
		t.Fatalf("min corrupted by empty merge: %v", a.Min())
	}
}

func TestReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(7)
	if h.Min() != 7 || h.Max() != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestPercentileMonotone(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Duration(v))
		}
		prev := sim.Duration(0)
		for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 99.9, 100} {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return h.Percentile(100) == h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	f := func(vals []uint32, p uint8) bool {
		if len(vals) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range vals {
			h.Record(sim.Duration(v))
		}
		pf := float64(p%100) + 1
		v := h.Percentile(pf)
		return v >= h.Min() && v <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExactEmpty(t *testing.T) {
	if s := Exact(nil); s.Count != 0 {
		t.Fatal("Exact(nil) nonzero")
	}
}

func TestExactKnown(t *testing.T) {
	s := Exact([]sim.Duration{5, 1, 3, 2, 4})
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 || s.Mean != 3 {
		t.Fatalf("exact stats wrong: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Duration(5 * sim.Microsecond))
	s := h.Summarize().String()
	if !strings.Contains(s, "n=1") || !strings.Contains(s, "5µs") {
		t.Fatalf("summary string unhelpful: %q", s)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "avg", "p99")
	tb.AddRow("128", "2µs", "3µs")
	tb.AddRow("8192", "10µs", "14µs")
	out := tb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "size") || !strings.Contains(lines[3], "8192") {
		t.Fatalf("table misrendered:\n%s", out)
	}
}

func TestBucketRoundTrip(t *testing.T) {
	// bucketValue(bucketIndex(v)) must be within the bucket's resolution of v.
	for _, v := range []sim.Duration{0, 1, 63, 64, 65, 1000, 4096, 123456, 1 << 30, 1 << 40} {
		idx := bucketIndex(v)
		mid := bucketValue(idx)
		var width float64
		if v < subBucketCount {
			width = 1
		} else {
			width = float64(v) / subBucketCount
		}
		if math.Abs(float64(mid-v)) > width {
			t.Errorf("round trip %d -> bucket %d -> %d (width %.0f)", v, idx, mid, width)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("a", "b")
	tb.AddRow("1,5", "2")
	got := tb.CSV()
	if got != "a,b\n1;5,2\n" {
		t.Fatalf("csv: %q", got)
	}
}

// TestPercentileEdgeArguments pins the documented clamping: p <= 0 returns
// the exact minimum (a negative p previously underflowed the rank
// conversion), p >= 100 the exact maximum.
func TestPercentileEdgeArguments(t *testing.T) {
	h := NewHistogram()
	for _, v := range []sim.Duration{5, 100, 7000} {
		h.Record(v)
	}
	for _, p := range []float64{-50, -0.0001, 0} {
		if got := h.Percentile(p); got != 5 {
			t.Fatalf("Percentile(%v) = %v, want min 5", p, got)
		}
	}
	for _, p := range []float64{100, 1000} {
		if got := h.Percentile(p); got != 7000 {
			t.Fatalf("Percentile(%v) = %v, want max 7000", p, got)
		}
	}
}

// TestBoundaryValuesAgainstExact records the bucket-layout boundary values
// the sub-bucket scheme pivots on and checks every reported percentile
// against the sort-based reference within the documented 1.6% bound
// (unit-width buckets must be exact).
func TestBoundaryValuesAgainstExact(t *testing.T) {
	boundary := []sim.Duration{
		0, 1, subBucketCount - 1, subBucketCount, subBucketCount + 1,
		2*subBucketCount - 1, 2 * subBucketCount,
		1 << 10, 1<<10 + 1, 1 << 20, 1 << 30, 1 << 40, 1 << 62,
		math.MaxInt64 - 1, math.MaxInt64,
	}
	h := NewHistogram()
	var raw []sim.Duration
	for _, v := range boundary {
		h.Record(v)
		raw = append(raw, v)
	}
	exact := Exact(raw)
	for _, p := range []float64{1, 10, 25, 50, 75, 90, 95, 99, 100} {
		a := h.Percentile(p)
		e := exactPercentile(raw, p)
		var rel float64
		if e != 0 {
			rel = math.Abs(float64(a-e)) / float64(e)
		} else {
			rel = math.Abs(float64(a - e))
		}
		if rel > 0.016 {
			t.Errorf("p%.0f: approx %d vs exact %d (rel err %.4f)", p, a, e, rel)
		}
	}
	if h.Min() != exact.Min || h.Max() != exact.Max {
		t.Errorf("min/max: %v/%v vs %v/%v", h.Min(), h.Max(), exact.Min, exact.Max)
	}
	// Values below subBucketCount live in unit buckets: exact percentiles.
	small := NewHistogram()
	var sraw []sim.Duration
	for v := sim.Duration(0); v < subBucketCount; v++ {
		small.Record(v)
		sraw = append(sraw, v)
	}
	for _, p := range []float64{1, 33, 50, 66, 99, 100} {
		if a, e := small.Percentile(p), exactPercentile(sraw, p); a != e {
			t.Errorf("sub-bucket region p%.0f: %v != exact %v", p, a, e)
		}
	}
}

// TestPowersOfTwoRoundTrip checks that every power of two — the octave
// boundaries themselves — maps to a bucket whose reported value stays
// within the sub-bucket error bound.
func TestPowersOfTwoRoundTrip(t *testing.T) {
	for shift := uint(0); shift < 63; shift++ {
		v := sim.Duration(1) << shift
		idx := bucketIndex(v)
		bv := bucketValue(idx)
		if bucketIndex(bv) != idx {
			t.Fatalf("1<<%d: bucketValue %d maps to bucket %d, not %d", shift, bv, bucketIndex(bv), idx)
		}
		rel := math.Abs(float64(bv-v)) / float64(v)
		if rel > 1.0/128 {
			t.Fatalf("1<<%d: bucket value %d rel err %.5f > 1/128", shift, bv, rel)
		}
	}
	// The guard bucket at the top of the range must not overflow into a
	// negative duration.
	top := octaves*subBucketCount - 1
	if bucketValue(top) < 0 {
		t.Fatalf("guard bucket value overflowed: %d", bucketValue(top))
	}
}

// exactPercentile mirrors Exact's rank convention for one percentile.
func exactPercentile(samples []sim.Duration, p float64) sim.Duration {
	sorted := make([]sim.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}
