package stats

import (
	"testing"

	"hyperloop/internal/sim"
)

// Benchmark values span the bucket regimes: sub-64 exact buckets, small
// octaves (typical µs latencies), and large octaves (ms tails).
var benchValues = func() []sim.Duration {
	vals := make([]sim.Duration, 1024)
	r := sim.NewRand(7)
	for i := range vals {
		switch i % 4 {
		case 0:
			vals[i] = sim.Duration(r.Intn(64))
		case 1:
			vals[i] = sim.Duration(500 + r.Intn(5000))
		case 2:
			vals[i] = sim.Duration(100_000 + r.Intn(10_000_000))
		default:
			vals[i] = sim.Duration(r.Int63n(1 << 40))
		}
	}
	return vals
}()

var sinkInt int

func BenchmarkBucketIndex(b *testing.B) {
	s := 0
	for i := 0; i < b.N; i++ {
		s += bucketIndex(benchValues[i%len(benchValues)])
	}
	sinkInt = s
}

func BenchmarkRecord(b *testing.B) {
	h := NewHistogram()
	for i := 0; i < b.N; i++ {
		h.Record(benchValues[i%len(benchValues)])
	}
}
