// Package stats provides the measurement plumbing for every experiment:
// log-bucketed latency histograms with percentile queries, throughput
// counters, and CPU-utilization accounting. The layout mirrors what the
// paper reports — average, 95th, and 99th percentile latency, Kops/s, and
// per-core busy fractions.
package stats

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"strings"

	"hyperloop/internal/sim"
)

// Histogram records durations in logarithmic buckets (HDR-style: a fixed
// number of linear sub-buckets per power of two). Memory is constant and
// percentile error is bounded by the sub-bucket resolution (<1.6% with 64
// sub-buckets), which is far below run-to-run variance.
type Histogram struct {
	counts []uint64
	total  uint64
	sum    float64
	min    sim.Duration
	max    sim.Duration
}

const (
	subBucketBits  = 6 // 64 linear sub-buckets per octave
	subBucketCount = 1 << subBucketBits
	octaves        = 59 // covers the full positive int64 range
)

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		counts: make([]uint64, octaves*subBucketCount),
		min:    math.MaxInt64,
	}
}

// bucketIndex maps v to its bucket. Values below subBucketCount get exact
// unit buckets; octave o >= 1 covers [subBucketCount<<(o-1),
// subBucketCount<<o) with subBucketCount linear sub-buckets of width
// 1<<(o-1).
func bucketIndex(v sim.Duration) int {
	if v < 0 {
		v = 0
	}
	if v < subBucketCount {
		return int(v)
	}
	hi := 63 - bits.LeadingZeros64(uint64(v))
	octave := hi - subBucketBits + 1
	sub := int(uint64(v)>>uint(octave-1)) - subBucketCount
	idx := octave*subBucketCount + sub
	if idx >= octaves*subBucketCount {
		idx = octaves*subBucketCount - 1
	}
	return idx
}

// bucketValue returns the midpoint of bucket idx. Unit-width buckets (the
// sub-subBucketCount region and the first octave) report their exact value,
// so values at octave boundaries like subBucketCount itself round-trip
// exactly; wider buckets report lo + width/2, which bucketIndex maps back
// into the same bucket (width/2 < width). The result is clamped to MaxInt64
// so even the guard bucket at the top of the range cannot overflow into a
// negative duration.
func bucketValue(idx int) sim.Duration {
	if idx < subBucketCount {
		return sim.Duration(idx)
	}
	octave := idx / subBucketCount
	sub := idx % subBucketCount
	lo := (uint64(sub) + subBucketCount) << uint(octave-1)
	width := uint64(1) << uint(octave-1)
	mid := lo + width/2
	if mid > math.MaxInt64 {
		mid = math.MaxInt64
	}
	return sim.Duration(mid)
}

// Record adds one observation.
func (h *Histogram) Record(v sim.Duration) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	h.total++
	h.sum += float64(v)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total }

// Sum returns the total of all observations.
func (h *Histogram) Sum() sim.Duration { return sim.Duration(h.sum) }

// Mean returns the average observation, or 0 if empty.
func (h *Histogram) Mean() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.total))
}

// Min returns the smallest observation, or 0 if empty.
func (h *Histogram) Min() sim.Duration {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation, or 0 if empty.
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile returns the p-th percentile, or 0 if empty. p is clamped to
// (0, 100]: p <= 0 returns the exact minimum and p >= 100 the exact maximum
// (previously p <= 0 silently walked the buckets with rank 1, and a negative
// p underflowed the rank conversion).
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95, P99 are the percentiles the paper reports.
func (h *Histogram) P50() sim.Duration { return h.Percentile(50) }
func (h *Histogram) P95() sim.Duration { return h.Percentile(95) }
func (h *Histogram) P99() sim.Duration { return h.Percentile(99) }

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.total += other.total
	h.sum += other.sum
	if other.total > 0 {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = 0
}

// Summary is a snapshot of the distribution statistics the paper reports.
type Summary struct {
	Count uint64
	Mean  sim.Duration
	P50   sim.Duration
	P95   sim.Duration
	P99   sim.Duration
	Min   sim.Duration
	Max   sim.Duration
}

// Summarize captures the current statistics.
func (h *Histogram) Summarize() Summary {
	return Summary{
		Count: h.total,
		Mean:  h.Mean(),
		P50:   h.P50(),
		P95:   h.P95(),
		P99:   h.P99(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d avg=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Exact computes exact statistics from a raw sample slice. Used in tests to
// bound the histogram's approximation error and in small experiments where
// exactness is cheap.
func Exact(samples []sim.Duration) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	sorted := make([]sim.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var sum float64
	for _, v := range sorted {
		sum += float64(v)
	}
	at := func(p float64) sim.Duration {
		rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
		if rank < 0 {
			rank = 0
		}
		if rank >= len(sorted) {
			rank = len(sorted) - 1
		}
		return sorted[rank]
	}
	return Summary{
		Count: uint64(len(sorted)),
		Mean:  sim.Duration(sum / float64(len(sorted))),
		P50:   at(50),
		P95:   at(95),
		P99:   at(99),
		Min:   sorted[0],
		Max:   sorted[len(sorted)-1],
	}
}

// Table renders aligned rows for experiment output. Each row is a label plus
// cells; widths adapt to content. It is deliberately dependency-free so cmd
// binaries can print paper-style tables.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// CSV renders the table as comma-separated values for plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strings.ReplaceAll(c, ",", ";"))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, hdr := range t.header {
		widths[i] = len(hdr)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
