package cpusched

import (
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

func newHost(eng *sim.Engine, cores int) *Host {
	return NewHost(eng, Config{
		Cores:         cores,
		TimeSlice:     sim.Millisecond,
		ContextSwitch: 3 * sim.Microsecond,
	})
}

func TestIdleHostRunsImmediately(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 4)
	var doneAt sim.Time
	h.Submit("job", 10*sim.Microsecond, func() { doneAt = eng.Now() })
	eng.Drain()
	// Cold core: one context switch (3µs) + 10µs service.
	want := sim.Time(13 * sim.Microsecond)
	if doneAt != want {
		t.Fatalf("job finished at %v, want %v", doneAt, want)
	}
	if h.ContextSwitches() != 1 {
		t.Fatalf("context switches = %d, want 1", h.ContextSwitches())
	}
}

func TestParallelismAcrossCores(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 4)
	finished := 0
	for i := 0; i < 4; i++ {
		h.Submit("job", 100*sim.Microsecond, func() { finished++ })
	}
	eng.Drain()
	// All four fit on four cores concurrently.
	if finished != 4 {
		t.Fatalf("finished = %d", finished)
	}
	if got, want := eng.Now(), sim.Time(103*sim.Microsecond); got != want {
		t.Fatalf("makespan %v, want %v (parallel)", got, want)
	}
}

func TestQueueingDelay(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	var order []string
	h.Submit("a", 100*sim.Microsecond, func() { order = append(order, "a") })
	h.Submit("b", 100*sim.Microsecond, func() { order = append(order, "b") })
	eng.Drain()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v", order)
	}
	// b waited for a: 2 switches + 200µs.
	if got, want := eng.Now(), sim.Time(206*sim.Microsecond); got != want {
		t.Fatalf("makespan %v, want %v (serialized)", got, want)
	}
}

func TestTimeSlicingRoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	var first string
	// Two 2.5ms jobs on one core with 1ms slices interleave; the first one
	// submitted finishes first.
	h.Submit("a", 2500*sim.Microsecond, func() {
		if first == "" {
			first = "a"
		}
	})
	h.Submit("b", 2500*sim.Microsecond, func() {
		if first == "" {
			first = "b"
		}
	})
	eng.Drain()
	if first != "a" {
		t.Fatalf("first finisher = %q, want a", first)
	}
	// Round robin forces repeated switches: at least 5 (2 initial + retakes).
	if h.ContextSwitches() < 5 {
		t.Fatalf("context switches = %d, want >=5 under RR", h.ContextSwitches())
	}
}

func TestNoSwitchCostWhenAlone(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	done := false
	// 5ms job alone on the core: slices continue without extra switches.
	h.Submit("solo", 5*sim.Millisecond, func() { done = true })
	eng.Drain()
	if !done {
		t.Fatal("job did not finish")
	}
	if h.ContextSwitches() != 1 {
		t.Fatalf("context switches = %d, want 1 (no contention)", h.ContextSwitches())
	}
	if got, want := eng.Now(), sim.Time(5*sim.Millisecond+3*sim.Microsecond); got != want {
		t.Fatalf("makespan %v, want %v", got, want)
	}
}

func TestLoopTaskRunsRepeatedly(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	runs := 0
	task := h.StartLoop("poller", func() { runs++ })
	eng.RunFor(10 * sim.Millisecond)
	if runs < 9 {
		t.Fatalf("loop ran %d times in 10ms with 1ms slices, want >=9", runs)
	}
	if !task.Active() {
		t.Fatal("sole loop task should be active")
	}
	task.Stop()
	eng.RunFor(5 * sim.Millisecond)
	after := runs
	eng.RunFor(5 * sim.Millisecond)
	if runs != after {
		t.Fatal("stopped loop task kept running")
	}
}

func TestZeroDemand(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	done := false
	h.Submit("noop", 0, func() { done = true })
	eng.Drain()
	if !done {
		t.Fatal("zero-demand job did not complete")
	}
}

func TestPinReservesCore(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 2)
	p := h.Pin("poller")
	if p == nil {
		t.Fatal("pin failed with free cores")
	}
	if !p.Active() {
		t.Fatal("pinned task not active")
	}
	// Only one schedulable core remains; two jobs serialize.
	n := 0
	h.Submit("a", sim.Millisecond, func() { n++ })
	h.Submit("b", sim.Millisecond, func() { n++ })
	eng.Drain()
	if n != 2 {
		t.Fatalf("jobs finished = %d", n)
	}
	if eng.Now() < sim.Time(2*sim.Millisecond) {
		t.Fatalf("jobs did not serialize on the remaining core: %v", eng.Now())
	}
}

func TestPinExhaustion(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 2)
	if h.Pin("p1") == nil || h.Pin("p2") == nil {
		t.Fatal("pins failed")
	}
	if h.Pin("p3") != nil {
		t.Fatal("third pin on 2-core host succeeded")
	}
	// With all cores pinned, utilization is 100%.
	eng.RunFor(sim.Millisecond)
	if u := h.Utilization(); u < 0.99 {
		t.Fatalf("utilization = %.2f with all cores pinned", u)
	}
}

func TestPinStopReleasesCore(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	p := h.Pin("poller")
	if p == nil {
		t.Fatal("pin failed")
	}
	done := false
	h.Submit("job", 10*sim.Microsecond, func() { done = true })
	eng.RunFor(sim.Millisecond)
	if done {
		t.Fatal("job ran while the only core was pinned")
	}
	p.Stop()
	eng.Drain()
	if !done {
		t.Fatal("job did not run after unpin")
	}
}

func TestUtilizationAccounting(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 2)
	// One core busy for 10ms out of a 20ms window on a 2-core host = 25%.
	h.Submit("job", 10*sim.Millisecond, func() {})
	eng.RunFor(20 * sim.Millisecond)
	u := h.Utilization()
	if u < 0.24 || u > 0.27 {
		t.Fatalf("utilization = %.3f, want ≈0.25", u)
	}
	h.ResetAccounting()
	eng.RunFor(10 * sim.Millisecond)
	if u := h.Utilization(); u > 0.01 {
		t.Fatalf("utilization after reset = %.3f, want ≈0", u)
	}
}

func TestQueueWaitGrowsWithLoad(t *testing.T) {
	mean := func(tenants int) sim.Duration {
		eng := sim.NewEngine()
		h := newHost(eng, 4)
		r := sim.NewRand(42)
		stop := AddTenants(eng, h, tenants, TenantConfig{}, r)
		defer stop()
		hist := stats.NewHistogram()
		// Probe: submit a tiny handler every 500µs and measure completion.
		var probe func()
		probe = func() {
			start := eng.Now()
			h.Submit("probe", 2*sim.Microsecond, func() {
				hist.Record(eng.Now().Sub(start))
			})
			eng.Schedule(500*sim.Microsecond, probe)
		}
		eng.Schedule(0, probe)
		eng.RunFor(2 * sim.Second)
		return hist.Mean()
	}
	light := mean(2)
	heavy := mean(40)
	if heavy <= light {
		t.Fatalf("mean handler latency did not grow with load: light=%v heavy=%v", light, heavy)
	}
	if heavy < 10*sim.Microsecond {
		t.Fatalf("heavy load latency %v suspiciously low", heavy)
	}
}

func TestTenantTailLatency(t *testing.T) {
	// Under moderate multi-tenant load (≈60-70% utilization, heavy-tailed
	// bursts), p99 of a small handler must be at least an order of
	// magnitude above the median — the paper's core observation. (At full
	// saturation the whole distribution shifts up instead; that regime is
	// exercised by TestAlwaysOnHogs.)
	eng := sim.NewEngine()
	h := newHost(eng, 8)
	r := sim.NewRand(7)
	stop := AddTenants(eng, h, 16, TenantConfig{IdleMean: 2 * sim.Millisecond}, r)
	defer stop()
	hist := stats.NewHistogram()
	var probe func()
	probe = func() {
		start := eng.Now()
		h.Submit("probe", 2*sim.Microsecond, func() {
			hist.Record(eng.Now().Sub(start))
		})
		eng.Schedule(sim.Duration(300)*sim.Microsecond, probe)
	}
	eng.Schedule(0, probe)
	eng.RunFor(5 * sim.Second)
	s := hist.Summarize()
	if s.Count < 1000 {
		t.Fatalf("too few probes: %d", s.Count)
	}
	if s.P99 < 10*s.P50 {
		t.Fatalf("tail not heavy: %v", s)
	}
}

func TestAlwaysOnHogs(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 2)
	r := sim.NewRand(9)
	stop := AddTenants(eng, h, 4, TenantConfig{AlwaysOn: true}, r)
	eng.RunFor(50 * sim.Millisecond)
	if u := h.Utilization(); u < 0.95 {
		t.Fatalf("utilization with always-on hogs = %.2f, want ≈1", u)
	}
	stop()
	// After stopping, a small job still gets through.
	done := false
	h.Submit("job", sim.Microsecond, func() { done = true })
	eng.RunFor(50 * sim.Millisecond)
	if !done {
		t.Fatal("job starved after hogs stopped")
	}
}

func TestContextSwitchesScaleWithProcesses(t *testing.T) {
	switches := func(n int) uint64 {
		eng := sim.NewEngine()
		h := newHost(eng, 4)
		r := sim.NewRand(11)
		stop := AddTenants(eng, h, n, TenantConfig{AlwaysOn: true}, r)
		defer stop()
		eng.RunFor(sim.Second)
		return h.ContextSwitches()
	}
	few := switches(4)
	many := switches(32)
	if many <= few {
		t.Fatalf("context switches did not grow with process count: %d vs %d", few, many)
	}
}

func TestMeanQueueWait(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	h.Submit("a", sim.Millisecond, func() {})
	h.Submit("b", sim.Millisecond, func() {})
	eng.Drain()
	if h.MeanQueueWait() == 0 {
		t.Fatal("queue wait not recorded under contention")
	}
}

func TestWakeupBonusShortensWaits(t *testing.T) {
	// With the bonus, a tiny handler submitted to a host saturated by hogs
	// waits roughly one core release; without it, a full round.
	wait := func(noBonus bool) sim.Duration {
		eng := sim.NewEngine()
		h := NewHost(eng, Config{Cores: 8, NoWakeupBonus: noBonus, WakeupDebtProb: 1e-9})
		stop := AddTenants(eng, h, 80, TenantConfig{AlwaysOn: true}, sim.NewRand(3))
		defer stop()
		eng.RunFor(20 * sim.Millisecond) // hogs staggered in
		var total sim.Duration
		const probes = 50
		done := 0
		var probe func()
		probe = func() {
			start := eng.Now()
			h.Submit("probe", sim.Microsecond, func() {
				total += eng.Now().Sub(start)
				done++
				if done < probes {
					eng.Schedule(200*sim.Microsecond, probe)
				}
			})
		}
		probe()
		eng.RunUntil(func() bool { return done >= probes }, eng.Now().Add(30*sim.Second))
		if done < probes {
			t.Fatalf("probes stalled at %d", done)
		}
		return total / probes
	}
	with := wait(false)
	without := wait(true)
	if without < 10*with {
		t.Fatalf("bonus effect too small: with=%v without=%v", with, without)
	}
	// Order-of-magnitude sanity: one core release ≈ slice/cores ≈ 125µs;
	// a full round ≈ (tenants/cores)×slice ≈ 10ms.
	if with > sim.Millisecond {
		t.Fatalf("bonus wait %v too large", with)
	}
	if without < 2*sim.Millisecond {
		t.Fatalf("FIFO wait %v too small", without)
	}
}

func TestDebtProbabilityRespected(t *testing.T) {
	// With WakeupDebtProb = 0.5 about half the probes pay a long wait.
	eng := sim.NewEngine()
	h := NewHost(eng, Config{Cores: 8, WakeupDebtProb: 0.5, Seed: 5})
	stop := AddTenants(eng, h, 80, TenantConfig{AlwaysOn: true}, sim.NewRand(4))
	defer stop()
	eng.RunFor(20 * sim.Millisecond)
	slow, done := 0, 0
	const probes = 200
	var probe func()
	probe = func() {
		start := eng.Now()
		h.Submit("probe", sim.Microsecond, func() {
			if eng.Now().Sub(start) > sim.Millisecond {
				slow++
			}
			done++
			if done < probes {
				eng.Schedule(100*sim.Microsecond, probe)
			}
		})
	}
	probe()
	eng.RunUntil(func() bool { return done >= probes }, eng.Now().Add(60*sim.Second))
	frac := float64(slow) / probes
	if frac < 0.3 || frac > 0.7 {
		t.Fatalf("debt fraction %.2f, want ≈0.5", frac)
	}
}

func TestCrashResetDropsQueuedAndRunning(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 1)
	ranLoop := 0
	h.StartLoop("victim-loop", func() { ranLoop++ })
	fired := false
	h.Submit("victim-oneshot", 10*sim.Millisecond, func() { fired = true })
	eng.RunFor(100 * sim.Microsecond) // let the loop occupy the core
	h.CrashReset()
	eng.RunFor(50 * sim.Millisecond)
	if fired {
		t.Fatal("one-shot completion fired after CrashReset")
	}
	if h.RunQueueLen() != 0 {
		t.Fatalf("run queue not empty after crash: %d", h.RunQueueLen())
	}
	loopRunsAtCrash := ranLoop
	eng.RunFor(10 * sim.Millisecond)
	if ranLoop != loopRunsAtCrash {
		t.Fatal("loop task kept running after CrashReset")
	}
}

func TestCrashResetThenResubmit(t *testing.T) {
	eng := sim.NewEngine()
	h := newHost(eng, 2)
	h.Submit("pre-crash", 5*sim.Millisecond, func() { t.Fatal("pre-crash task survived") })
	eng.RunFor(50 * sim.Microsecond)
	h.CrashReset()
	// The rebooted node accepts fresh work.
	done := false
	h.Submit("post-crash", sim.Microsecond, func() { done = true })
	eng.RunFor(20 * sim.Millisecond)
	if !done {
		t.Fatal("host dead after CrashReset")
	}
}
