// Package cpusched models a multi-tenant host CPU: a fixed set of cores, a
// FIFO round-robin run queue with time slices, per-dispatch context-switch
// cost, core pinning, and background tenant load generators.
//
// This is the substrate behind the paper's central observation (§2.2): in a
// multi-tenant storage server the replica software must wait in the run
// queue before it can take any step of a replicated transaction, and that
// wait — not the network — is what inflates the tail. Naïve-RDMA baselines
// submit their per-message handlers here; HyperLoop's datapath never touches
// this package, which is the whole point.
package cpusched

import (
	"fmt"

	"hyperloop/internal/sim"
)

// Config parameterizes a Host. Zero values are replaced by defaults that
// approximate a Linux server (CFS-like slice, µs-scale switch cost).
type Config struct {
	Cores           int          // number of cores (default 16)
	TimeSlice       sim.Duration // round-robin quantum (default 1ms)
	ContextSwitch   sim.Duration // cost charged per involuntary switch (default 3µs)
	PollGranularity sim.Duration // latency for an active busy-poller to notice work (default 200ns)

	// Wakeup placement models CFS sleeper fairness: a newly woken one-shot
	// task (an I/O completion handler) is usually placed at the head of
	// the run queue, so its wait is one core-release (~TimeSlice/cores)
	// rather than a full round behind every co-located tenant. With
	// probability WakeupDebtProb it has accumulated vruntime debt (or hits
	// throttling) and goes to the tail — the rare full-round wait that
	// forms the multi-tenant latency tail the paper measures.
	NoWakeupBonus  bool    // disable the bonus (pure FIFO) — ablation knob
	WakeupDebtProb float64 // default 0.02
	Seed           int64   // seeds the debt draw (default 1)
}

func (c *Config) fill() {
	if c.Cores <= 0 {
		c.Cores = 16
	}
	if c.TimeSlice <= 0 {
		c.TimeSlice = sim.Millisecond
	}
	if c.ContextSwitch <= 0 {
		c.ContextSwitch = 3 * sim.Microsecond
	}
	if c.PollGranularity <= 0 {
		c.PollGranularity = 200 * sim.Nanosecond
	}
	if c.WakeupDebtProb <= 0 {
		c.WakeupDebtProb = 0.02
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Task is a schedulable entity. One-shot tasks (Submit) run until their
// demand is consumed, then invoke their completion callback. Loop tasks
// (StartLoop) are always runnable and receive an onRun callback at each
// dispatch — they model tenant processes and busy-pollers.
type Task struct {
	name        string
	host        *Host
	remaining   sim.Duration
	done        func()
	loop        bool
	onRun       func()
	pinned      bool
	pinCore     *coreState
	stopped     bool
	queued      bool
	woken       bool // first dispatch gets wakeup placement
	debt        bool // first dispatch pays vruntime debt (random placement)
	wokenQueued bool // currently queued with wakeup placement
	active      bool // currently occupying a core
	enqueued    sim.Time
}

// Name returns the task's label.
func (t *Task) Name() string { return t.name }

// Active reports whether the task currently occupies a core. A pinned task
// is always active.
func (t *Task) Active() bool { return t.pinned || t.active }

// Stop removes a loop task from future scheduling. If it is currently on a
// core it finishes its slice; a pinned task releases its core immediately.
func (t *Task) Stop() {
	t.stopped = true
	if t.pinned {
		t.pinned = false
		t.host.pinnedCores--
		if c := t.pinCore; c != nil && c.busy {
			c.busySum += t.host.eng.Now().Sub(c.busyFrom)
			c.busy = false
		}
		t.pinCore = nil
		t.host.dispatch()
	}
}

type coreState struct {
	busy     bool
	lastTask *Task
	busySum  sim.Duration // cumulative busy time
	busyFrom sim.Time     // when current busy period started
}

// Host is a simulated multi-core machine.
type Host struct {
	eng  *sim.Engine
	cfg  Config
	r    *sim.Rand
	runq []*Task
	// cores[0:len-pinnedCores] participate in general scheduling.
	cores       []*coreState
	pinnedCores int

	contextSwitches uint64
	dispatches      uint64
	accountFrom     sim.Time
	queueWait       sim.Duration // cumulative run-queue wait
	queueWaitN      uint64
}

// NewHost creates a Host driven by eng.
func NewHost(eng *sim.Engine, cfg Config) *Host {
	cfg.fill()
	h := &Host{eng: eng, cfg: cfg, r: sim.NewRand(cfg.Seed)}
	h.cores = make([]*coreState, cfg.Cores)
	for i := range h.cores {
		h.cores[i] = &coreState{}
	}
	return h
}

// Cores returns the total number of cores, including pinned ones.
func (h *Host) Cores() int { return len(h.cores) }

// Config returns the host's effective configuration.
func (h *Host) Config() Config { return h.cfg }

// ContextSwitches returns the number of involuntary context switches since
// the last ResetAccounting.
func (h *Host) ContextSwitches() uint64 { return h.contextSwitches }

// RunQueueLen returns the number of tasks waiting (not running).
func (h *Host) RunQueueLen() int { return len(h.runq) }

// MeanQueueWait returns the average run-queue wait per dispatch.
func (h *Host) MeanQueueWait() sim.Duration {
	if h.queueWaitN == 0 {
		return 0
	}
	return h.queueWait / sim.Duration(h.queueWaitN)
}

// Utilization returns the fraction of total core time spent busy since the
// last ResetAccounting. Pinned cores count as fully busy.
func (h *Host) Utilization() float64 {
	window := h.eng.Now().Sub(h.accountFrom)
	if window <= 0 {
		return 0
	}
	var busy sim.Duration
	for _, c := range h.cores {
		busy += c.busySum
		if c.busy {
			busy += h.eng.Now().Sub(c.busyFrom)
		}
	}
	return float64(busy) / (float64(window) * float64(len(h.cores)))
}

// CrashReset models the machine losing its OS state (crash or hard reboot):
// every queued and running task is stopped — completion callbacks never
// fire, loop tasks are not requeued — and the run queue is discarded.
// In-flight slice timers drain harmlessly. Pinned tasks are NOT touched
// (their owners hold handles and must Stop them explicitly). Whatever the
// node should run after reboot must be resubmitted by the application.
func (h *Host) CrashReset() {
	for _, t := range h.runq {
		t.stopped = true
		t.queued = false
	}
	h.runq = h.runq[:0]
	for _, c := range h.schedulableCores() {
		if c.busy && c.lastTask != nil {
			c.lastTask.stopped = true
		}
	}
}

// ResetAccounting zeroes context-switch and utilization counters; call at
// the start of a measurement window.
func (h *Host) ResetAccounting() {
	h.contextSwitches = 0
	h.dispatches = 0
	h.queueWait = 0
	h.queueWaitN = 0
	h.accountFrom = h.eng.Now()
	for _, c := range h.cores {
		c.busySum = 0
		if c.busy {
			c.busyFrom = h.eng.Now()
		}
	}
}

// Submit enqueues a one-shot task needing demand CPU time; done fires when
// the demand has been served. Returns the task handle.
func (h *Host) Submit(name string, demand sim.Duration, done func()) *Task {
	if demand < 0 {
		demand = 0
	}
	t := &Task{name: name, host: h, remaining: demand, done: done}
	if !h.cfg.NoWakeupBonus {
		if h.r.Float64() >= h.cfg.WakeupDebtProb {
			t.woken = true
		} else {
			t.debt = true
		}
	}
	h.enqueue(t)
	return t
}

// StartLoop registers an always-runnable task; onRun is invoked at each
// dispatch (once per slice while it holds a core). Models tenant processes
// and software busy-pollers.
func (h *Host) StartLoop(name string, onRun func()) *Task {
	t := &Task{name: name, host: h, loop: true, onRun: onRun}
	h.enqueue(t)
	return t
}

// Pin reserves a dedicated core for a busy-polling task, bypassing the run
// queue entirely (the paper's "core-pinning" baseline). It fails (returns
// nil) if no core can be reserved. The pinned core is accounted 100% busy.
func (h *Host) Pin(name string) *Task {
	if h.pinnedCores >= len(h.cores) {
		return nil
	}
	// Claim an idle core; if all are busy, claim the highest-indexed one
	// logically (its current occupant finishes, then the core stays out of
	// the general pool because schedulable() shrinks).
	h.pinnedCores++
	t := &Task{name: name, host: h, loop: true, pinned: true}
	// Mark the reserved core busy for accounting as long as the pin holds.
	c := h.cores[len(h.cores)-h.pinnedCores]
	t.pinCore = c
	if !c.busy {
		c.busy = true
		c.busyFrom = h.eng.Now()
	}
	return t
}

// PollDelay returns the latency for an active poller to notice new work.
func (h *Host) PollDelay() sim.Duration { return h.cfg.PollGranularity }

func (h *Host) schedulableCores() []*coreState {
	return h.cores[:len(h.cores)-h.pinnedCores]
}

func (h *Host) enqueue(t *Task) {
	if t.queued || t.stopped {
		return
	}
	t.queued = true
	t.enqueued = h.eng.Now()
	switch {
	case t.woken:
		// Wakeup placement: ahead of runnable tenants, behind any other
		// woken tasks already queued.
		t.woken = false
		i := 0
		for i < len(h.runq) && h.runq[i].wokenQueued {
			i++
		}
		t.wokenQueued = true
		h.runq = append(h.runq, nil)
		copy(h.runq[i+1:], h.runq[i:])
		h.runq[i] = t
	case t.debt:
		// Vruntime debt: somewhere in the pack, a partial-round wait.
		t.debt = false
		i := 0
		if len(h.runq) > 0 {
			i = h.r.Intn(len(h.runq) + 1)
		}
		h.runq = append(h.runq, nil)
		copy(h.runq[i+1:], h.runq[i:])
		h.runq[i] = t
	default:
		h.runq = append(h.runq, t)
	}
	h.dispatch()
}

// dispatch assigns queued tasks to idle cores.
func (h *Host) dispatch() {
	for _, c := range h.schedulableCores() {
		if len(h.runq) == 0 {
			return
		}
		if c.busy {
			continue
		}
		t := h.runq[0]
		h.runq = h.runq[1:]
		t.queued = false
		t.wokenQueued = false
		h.run(c, t)
	}
}

// run executes one scheduling quantum of t on core c.
func (h *Host) run(c *coreState, t *Task) {
	if t.stopped {
		h.dispatch()
		return
	}
	var overhead sim.Duration
	if c.lastTask != t {
		overhead = h.cfg.ContextSwitch
		h.contextSwitches++
	}
	h.dispatches++
	h.queueWait += h.eng.Now().Sub(t.enqueued)
	h.queueWaitN++

	c.busy = true
	c.busyFrom = h.eng.Now()
	c.lastTask = t
	t.active = true

	slice := h.cfg.TimeSlice
	if !t.loop && t.remaining < slice {
		slice = t.remaining
	}
	runFor := overhead + slice
	h.eng.Schedule(runFor, func() { h.sliceDone(c, t, slice) })

	if t.loop && t.onRun != nil {
		// The loop body observes the world once the switch cost is paid.
		h.eng.Schedule(overhead, func() {
			if !t.stopped {
				t.onRun()
			}
		})
	}
}

func (h *Host) sliceDone(c *coreState, t *Task, served sim.Duration) {
	c.busySum += h.eng.Now().Sub(c.busyFrom)
	c.busy = false
	t.active = false

	if !t.loop {
		t.remaining -= served
		switch {
		case t.stopped:
			// Stopped (or crashed) mid-service: discard without firing done.
		case t.remaining <= 0:
			if t.done != nil {
				t.done()
			}
		default:
			h.requeueOrContinue(c, t)
			return
		}
	} else if !t.stopped {
		h.requeueOrContinue(c, t)
		return
	}
	h.dispatch()
}

// requeueOrContinue implements round-robin: if others are waiting, the task
// goes to the back of the queue; otherwise it keeps the core (no switch
// cost, since lastTask is unchanged).
func (h *Host) requeueOrContinue(c *coreState, t *Task) {
	if len(h.runq) > 0 {
		h.enqueue(t)
		return
	}
	h.run(c, t)
}

// Tenant models a background tenant process alternating idle gaps and CPU
// bursts — the paper emulates this with stress-ng (§6.1) and with 10:1
// process-to-core co-location (§6.2). Bursts are heavy-tailed (Pareto) so
// the run queue occasionally backs up by milliseconds, which is exactly the
// tail the paper measures.
type Tenant struct {
	host    *Host
	r       *sim.Rand
	idle    sim.Duration
	burst   sim.Duration
	shape   float64
	stopped bool
}

// TenantConfig shapes background load.
type TenantConfig struct {
	IdleMean  sim.Duration // mean idle gap between bursts (default 1ms)
	BurstMin  sim.Duration // Pareto minimum burst (default 200µs)
	ParetoK   float64      // Pareto shape (default 1.3; lower = heavier tail)
	AlwaysOn  bool         // if set, the tenant is an always-runnable hog
	hogHandle *Task
}

func (c *TenantConfig) fill() {
	if c.IdleMean <= 0 {
		c.IdleMean = sim.Millisecond
	}
	if c.BurstMin <= 0 {
		c.BurstMin = 200 * sim.Microsecond
	}
	if c.ParetoK <= 0 {
		c.ParetoK = 1.3
	}
}

// AddTenants starts n background tenants with the given shape and returns a
// stop function.
func AddTenants(eng *sim.Engine, h *Host, n int, cfg TenantConfig, r *sim.Rand) (stop func()) {
	cfg.fill()
	tenants := make([]*Tenant, 0, n)
	var hogs []*Task
	halted := false
	for i := 0; i < n; i++ {
		if cfg.AlwaysOn {
			// Stagger starts across one time slice so hog slice boundaries
			// desynchronize, as they would on a real machine; otherwise
			// every core releases in lockstep and wait times collapse to a
			// single deterministic value.
			name := fmt.Sprintf("hog-%d", i)
			stagger := sim.Duration(r.Int63n(int64(h.cfg.TimeSlice)))
			eng.Schedule(stagger, func() {
				if halted {
					return
				}
				hogs = append(hogs, h.StartLoop(name, nil))
			})
			continue
		}
		t := &Tenant{
			host:  h,
			r:     r.Fork(),
			idle:  cfg.IdleMean,
			burst: cfg.BurstMin,
			shape: cfg.ParetoK,
		}
		tenants = append(tenants, t)
		t.scheduleNext(eng, i)
	}
	return func() {
		halted = true
		for _, t := range tenants {
			t.stopped = true
		}
		for _, hog := range hogs {
			hog.Stop()
		}
	}
}

func (t *Tenant) scheduleNext(eng *sim.Engine, id int) {
	gap := t.r.Exp(t.idle)
	eng.Schedule(gap, func() {
		if t.stopped {
			return
		}
		demand := t.r.Pareto(t.burst, t.shape)
		t.host.Submit(fmt.Sprintf("tenant-%d", id), demand, func() {
			t.scheduleNext(eng, id)
		})
	})
}
