package naive

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/fabric"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

func testGroup(t *testing.T, n int, cfg Config) (*sim.Engine, *cluster.Cluster, *Group) {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     n + 1,
		StoreSize: 1 << 20,
		Fabric:    fabric.Config{JitterFrac: -1},
	})
	return eng, cl, New(cl, cfg)
}

func run(t *testing.T, eng *sim.Engine, g *Group, done *bool) {
	t.Helper()
	ok := eng.RunUntil(func() bool { return *done || g.Failed() != nil }, eng.Now().Add(10*sim.Second))
	if g.Failed() != nil {
		t.Fatalf("group failed: %v", g.Failed())
	}
	if !ok {
		t.Fatalf("op did not complete by %v", eng.Now())
	}
}

func TestEventModeReplicates(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Event})
	defer g.Close()
	data := []byte("naive-payload")
	cl.Client().StoreWrite(100, data)

	done := false
	g.GWrite(100, len(data), false, func(Result) { done = true })
	run(t, eng, g, &done)
	for i, rep := range cl.Replicas() {
		if got := rep.StoreBytes(100, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d: %q", i, got)
		}
	}
	if g.HandlerActivations() != 3 {
		t.Fatalf("handler activations = %d, want 3 (one per hop)", g.HandlerActivations())
	}
}

func TestPollingModeReplicates(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Polling, PinCore: true})
	defer g.Close()
	data := []byte("polled")
	cl.Client().StoreWrite(0, data)

	done := false
	g.GWrite(0, len(data), false, func(Result) { done = true })
	run(t, eng, g, &done)
	for i, rep := range cl.Replicas() {
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d: %q", i, got)
		}
	}
}

func TestDurableWriteSurvivesPowerFailure(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Event})
	defer g.Close()
	data := []byte("durable-naive")
	cl.Client().StoreWrite(0, data)
	done := false
	g.GWrite(0, len(data), true, func(Result) { done = true })
	run(t, eng, g, &done)
	for i, rep := range cl.Replicas() {
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(0, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d lost durable write: %q", i, got)
		}
	}
}

func TestGCASMatchesSemantics(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Event})
	defer g.Close()
	var res Result
	done := false
	g.GCAS(64, 0, 9, 0b101, func(r Result) { res = r; done = true })
	run(t, eng, g, &done)
	if res.CASOld[0] != 0 || res.CASOld[2] != 0 {
		t.Fatalf("results %v", res.CASOld)
	}
	if res.CASOld[1] != ^uint64(0) {
		t.Fatalf("skipped replica result %x", res.CASOld[1])
	}
	reps := cl.Replicas()
	if v := le(reps[0].StoreBytes(64, 8)); v != 9 {
		t.Fatalf("replica 0 = %d", v)
	}
	if v := le(reps[1].StoreBytes(64, 8)); v != 0 {
		t.Fatalf("skipped replica mutated: %d", v)
	}
}

func TestGMemcpyAndFlush(t *testing.T) {
	eng, cl, g := testGroup(t, 2, Config{Mode: Event})
	defer g.Close()
	data := []byte("copy-source")
	cl.Client().StoreWrite(0, data)
	done := false
	g.GWrite(0, len(data), false, func(Result) { done = true })
	run(t, eng, g, &done)

	done = false
	g.GMemcpy(4096, 0, len(data), true, func(Result) { done = true })
	run(t, eng, g, &done)
	for i, rep := range cl.Replicas() {
		if got := rep.StoreBytes(4096, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d memcpy: %q", i, got)
		}
		rep.Dev.PowerFail()
		if got := rep.StoreBytes(4096, len(data)); !bytes.Equal(got, data) {
			t.Fatalf("replica %d durable memcpy lost: %q", i, got)
		}
	}

	done = false
	g.GFlush(func(Result) { done = true })
	run(t, eng, g, &done)
}

func TestPipelinedOps(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Event, MaxInflight: 16})
	defer g.Close()
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("p"), 128))
	const ops = 300
	completed := 0
	for i := 0; i < ops; i++ {
		g.GWrite(0, 128, false, func(r Result) {
			if r.Err == nil {
				completed++
			}
		})
	}
	eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(10*sim.Second))
	if g.Failed() != nil || completed != ops {
		t.Fatalf("completed=%d failed=%v", completed, g.Failed())
	}
}

func TestReplicaCPUIsOnCriticalPath(t *testing.T) {
	// The defining contrast with HyperLoop: naive replication burns replica
	// CPU per op.
	eng, cl, g := testGroup(t, 3, Config{Mode: Event})
	defer g.Close()
	cl.Client().StoreWrite(0, bytes.Repeat([]byte("c"), 256))
	for _, rep := range cl.Replicas() {
		rep.Host.ResetAccounting()
	}
	const ops = 100
	completed := 0
	var issue func()
	issue = func() {
		g.GWrite(0, 256, false, func(Result) {
			completed++
			if completed < ops {
				issue()
			}
		})
	}
	issue()
	eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(10*sim.Second))
	if g.Failed() != nil {
		t.Fatal(g.Failed())
	}
	if g.HandlerActivations() != 3*ops {
		t.Fatalf("handler activations = %d, want %d", g.HandlerActivations(), 3*ops)
	}
}

func TestLatencyInflatesUnderMultiTenancy(t *testing.T) {
	// Naive latency must blow up when the replica hosts are busy — the
	// paper's Figure 8 contrast.
	measure := func(tenants int) stats.Summary {
		eng, cl, g := testGroup(t, 3, Config{Mode: Event})
		defer g.Close()
		cl.Client().StoreWrite(0, bytes.Repeat([]byte("m"), 512))
		stops := make([]func(), 0, 3)
		for _, rep := range cl.Replicas() {
			// stress-ng style CPU hogs, 10:1 process-to-core co-location.
			stops = append(stops, cpusched.AddTenants(eng, rep.Host, tenants,
				cpusched.TenantConfig{AlwaysOn: true}, cl.Rand.Fork()))
		}
		defer func() {
			for _, s := range stops {
				s()
			}
		}()
		hist := stats.NewHistogram()
		count := 0
		var issue func()
		issue = func() {
			g.GWrite(0, 512, false, func(r Result) {
				hist.Record(r.Latency)
				count++
				if count < 400 {
					issue()
				}
			})
		}
		issue()
		eng.RunUntil(func() bool { return count >= 400 || g.Failed() != nil }, eng.Now().Add(60*sim.Second))
		if g.Failed() != nil {
			t.Fatal(g.Failed())
		}
		return hist.Summarize()
	}
	quiet := measure(0)
	busy := measure(160)
	if quiet.P99 > 100*sim.Microsecond {
		t.Fatalf("quiet p99 %v too high", quiet.P99)
	}
	if busy.P99 < 10*quiet.P99 {
		t.Fatalf("multi-tenant p99 did not inflate: quiet %v vs busy %v", quiet.P99, busy.P99)
	}
	if busy.Mean < 2*quiet.Mean {
		t.Fatalf("multi-tenant mean did not inflate: quiet %v vs busy %v", quiet.Mean, busy.Mean)
	}
}

func TestPinnedPollingFasterThanEventUnderLoad(t *testing.T) {
	measure := func(cfg Config) sim.Duration {
		eng, cl, g := testGroup(t, 3, cfg)
		defer g.Close()
		cl.Client().StoreWrite(0, bytes.Repeat([]byte("e"), 128))
		for _, rep := range cl.Replicas() {
			cpusched.AddTenants(eng, rep.Host, 32,
				cpusched.TenantConfig{AlwaysOn: true}, cl.Rand.Fork())
		}
		hist := stats.NewHistogram()
		count := 0
		var issue func()
		issue = func() {
			g.GWrite(0, 128, false, func(r Result) {
				hist.Record(r.Latency)
				count++
				if count < 200 {
					issue()
				}
			})
		}
		issue()
		eng.RunUntil(func() bool { return count >= 200 || g.Failed() != nil }, eng.Now().Add(60*sim.Second))
		if g.Failed() != nil {
			t.Fatal(g.Failed())
		}
		return hist.Mean()
	}
	event := measure(Config{Mode: Event})
	pinned := measure(Config{Mode: Polling, PinCore: true})
	if pinned >= event {
		t.Fatalf("pinned polling (%v) not faster than event (%v) under load", pinned, event)
	}
}

func TestPollingBurnsCores(t *testing.T) {
	eng, cl, g := testGroup(t, 3, Config{Mode: Polling, PinCore: true})
	defer g.Close()
	eng.RunFor(10 * sim.Millisecond)
	for i, rep := range cl.Replicas() {
		if u := rep.Host.Utilization(); u < 1.0/16-0.01 {
			t.Fatalf("replica %d utilization %.3f: pinned poller should burn a core", i, u)
		}
	}
	_ = g
}

func le(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestPollingInboxDrainsAtNextDispatch(t *testing.T) {
	// When the (unpinned) poller is off-core, completions park in its
	// inbox and are served at its next dispatch — the contended-poller
	// behaviour behind Figure 11's Naive-Polling tail.
	eng, cl, g := testGroup(t, 2, Config{Mode: Polling, PinCore: false})
	defer g.Close()
	// Crowd each replica host so the poller is usually queued.
	for _, rep := range cl.Replicas() {
		cpusched.AddTenants(eng, rep.Host, 32, cpusched.TenantConfig{AlwaysOn: true}, cl.Rand.Fork())
	}
	eng.RunFor(10 * sim.Millisecond)
	cl.Client().StoreWrite(0, []byte("inbox"))
	done := false
	var lat sim.Duration
	g.GWrite(0, 5, false, func(r Result) { lat = r.Latency; done = true })
	if !eng.RunUntil(func() bool { return done || g.Failed() != nil }, eng.Now().Add(sim.Second)) {
		t.Fatalf("queued-poller op stalled (%v)", g.Failed())
	}
	// The op took at least one poller-dispatch wait (≫ wire time).
	if lat < 100*sim.Microsecond {
		t.Fatalf("latency %v too low for a queued poller", lat)
	}
	if got := cl.Replicas()[1].StoreBytes(0, 5); string(got) != "inbox" {
		t.Fatalf("data lost through inbox path: %q", got)
	}
}
