// Package naive implements the paper's comparison baseline ("Naïve-RDMA",
// §6): the same four group primitives and the same chain topology as
// HyperLoop, but with replica CPUs on the critical path. Each hop's host
// must receive the message, parse it, execute the memory operation, and
// post the forward — exactly the steps §4.1 describes for a traditional
// RDMA implementation.
//
// Two consumption modes are modeled, matching §6.2's RocksDB variants:
//
//   - event-driven (Mode == Event): a CQ event wakes a handler that must be
//     scheduled on the (multi-tenant, busy) host CPU before anything moves;
//   - busy-polling (Mode == Polling): a poller thread spins for
//     completions. If a core can be dedicated (PinCore) the poll latency is
//     sub-µs, but the core burns at 100%; co-located pollers (the
//     multi-tenant case) degrade into scheduled tasks.
package naive

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Mode selects how replica hosts consume completions.
type Mode int

// Baseline completion-consumption modes.
const (
	Event   Mode = iota // completion event wakes a scheduled handler
	Polling             // a poller loop checks CQs
)

// Errors surfaced by the group API.
var (
	ErrGroupFailed = errors.New("naive: group failed")
	ErrBadArgs     = errors.New("naive: bad primitive arguments")
)

// Result mirrors core.Result for drop-in comparisons.
type Result struct {
	Seq     uint64
	Latency sim.Duration
	CASOld  []uint64
	Err     error
}

// Config tunes the baseline.
type Config struct {
	Mode Mode
	// PinCore dedicates one core per replica to the poller (Polling mode
	// only). In multi-tenant co-location this is usually infeasible —
	// which is the paper's point.
	PinCore bool
	// HandlerCPU is the host CPU demand per message hop: receive, parse,
	// execute the memory op, and post the forward (default 2µs).
	HandlerCPU sim.Duration
	// PollPeriod is the poller's loop period when it is a scheduled task
	// rather than pinned (default: the host time slice governs it).
	MaxInflight int // client window (default 64)
}

func (c *Config) fill() {
	if c.HandlerCPU <= 0 {
		c.HandlerCPU = 2 * sim.Microsecond
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
}

// command is the replication message the baseline forwards hop to hop. It
// is encoded into a wire buffer so message sizes are honest.
type command struct {
	op      uint8 // 1 gwrite, 2 gcas, 3 gmemcpy, 4 gflush
	seq     uint64
	off     uint64
	src     uint64
	size    uint32
	durable bool
	casOld  uint64
	casNew  uint64
	exec    uint64
	results []uint64 // accumulated CAS results
}

const cmdOp = 1 + 8 + 8 + 8 + 4 + 1 + 8 + 8 + 8

func (m *command) encode(n int) []byte {
	buf := make([]byte, cmdOp+8*n)
	buf[0] = m.op
	binary.LittleEndian.PutUint64(buf[1:], m.seq)
	binary.LittleEndian.PutUint64(buf[9:], m.off)
	binary.LittleEndian.PutUint64(buf[17:], m.src)
	binary.LittleEndian.PutUint32(buf[25:], m.size)
	if m.durable {
		buf[29] = 1
	}
	binary.LittleEndian.PutUint64(buf[30:], m.casOld)
	binary.LittleEndian.PutUint64(buf[38:], m.casNew)
	binary.LittleEndian.PutUint64(buf[46:], m.exec)
	for i, v := range m.results {
		binary.LittleEndian.PutUint64(buf[cmdOp+8*i:], v)
	}
	return buf
}

func decodeCommand(buf []byte, n int) command {
	m := command{
		op:      buf[0],
		seq:     binary.LittleEndian.Uint64(buf[1:]),
		off:     binary.LittleEndian.Uint64(buf[9:]),
		src:     binary.LittleEndian.Uint64(buf[17:]),
		size:    binary.LittleEndian.Uint32(buf[25:]),
		durable: buf[29] == 1,
		casOld:  binary.LittleEndian.Uint64(buf[30:]),
		casNew:  binary.LittleEndian.Uint64(buf[38:]),
		exec:    binary.LittleEndian.Uint64(buf[46:]),
	}
	for i := 0; i < n; i++ {
		m.results = append(m.results, binary.LittleEndian.Uint64(buf[cmdOp+8*i:]))
	}
	return m
}

// replica is one hop's software state: its QPs plus the host-side handler.
type replica struct {
	g      *Group
	index  int
	node   *cluster.Node
	up     *rdma.QP // from previous node
	down   *rdma.QP // toward next node (client for the tail)
	cmdBuf *rdma.MemoryRegion
	poller *cpusched.Task
	inbox  []rdma.CQE // completions awaiting the poller
	recvs  int
}

// Group is a Naïve-RDMA replication group over the same cluster layout as
// core.Group: node 0 is the client.
type Group struct {
	eng          *sim.Engine
	cfg          Config
	client       *cluster.Node
	replicaNodes []*cluster.Node
	replicas     []*replica

	cliQP   *rdma.QP
	ackQP   *rdma.QP
	cliCmd  *rdma.MemoryRegion
	ackMR   *rdma.MemoryRegion
	pending []*op
	waiting []*op
	issued  uint64
	failed  error

	handlerOps uint64 // replica handler activations (CPU critical path)
}

type op struct {
	seq    uint64
	cmd    command
	issued sim.Time
	done   func(Result)
}

const ringDepth = 256

// New wires the baseline over a cluster (node 0 = client).
func New(cl *cluster.Cluster, cfg Config) *Group {
	return NewWithNodes(cl.Eng, cl.Client(), cl.Replicas(), cfg)
}

// NewWithNodes wires the baseline over an explicit topology.
func NewWithNodes(eng *sim.Engine, client *cluster.Node, replicaNodes []*cluster.Node, cfg Config) *Group {
	if client == nil || len(replicaNodes) < 1 {
		panic("naive: need a client and at least one replica")
	}
	cfg.fill()
	g := &Group{eng: eng, cfg: cfg, client: client, replicaNodes: replicaNodes}
	n := len(replicaNodes)

	nodes := append([]*cluster.Node{client}, replicaNodes...)
	type pair struct{ src, dst *rdma.QP }
	pairs := make([]pair, n+1)
	for i := 0; i <= n; i++ {
		a, b := cluster.ConnectPair(nodes[i], nodes[(i+1)%(n+1)], 4*ringDepth, ringDepth)
		pairs[i] = pair{a, b}
	}
	g.cliQP = pairs[0].src
	g.ackQP = pairs[n].dst
	g.cliCmd = g.client.NIC.RegisterRAM(ringDepth*(cmdOp+8*n), rdma.AccessLocalWrite)
	g.ackMR = g.client.NIC.RegisterRAM(ringDepth*8*maxInt(n, 1), rdma.AccessLocalWrite|rdma.AccessRemoteWrite)

	for i, node := range replicaNodes {
		r := &replica{
			g:     g,
			index: i,
			node:  node,
			up:    pairs[i].dst,
			down:  pairs[i+1].src,
		}
		r.cmdBuf = node.NIC.RegisterRAM(ringDepth*(cmdOp+8*n), rdma.AccessLocalWrite)
		r.up.SendCQ().SetAutoDrain(true)
		r.down.SendCQ().SetAutoDrain(true)
		r.down.SendCQ().SetCallback(func(e rdma.CQE) {
			if e.Status != rdma.StatusSuccess {
				g.fail(fmt.Errorf("%w: replica %d forward %s", ErrGroupFailed, i, e.Status))
			}
		})
		r.up.RecvCQ().SetAutoDrain(true)
		r.up.RecvCQ().SetCallback(r.onCompletion)
		for k := 0; k < ringDepth; k++ {
			r.postRecv(k)
		}
		g.replicas = append(g.replicas, r)
	}

	// Client side: ack RECVs and callbacks.
	g.cliQP.SendCQ().SetAutoDrain(true)
	g.cliQP.SendCQ().SetCallback(func(e rdma.CQE) {
		if e.Status != rdma.StatusSuccess {
			g.fail(fmt.Errorf("%w: client completion %s", ErrGroupFailed, e.Status))
		}
	})
	g.ackQP.RecvCQ().SetAutoDrain(true)
	g.ackQP.RecvCQ().SetCallback(g.onAck)
	for k := 0; k < ringDepth; k++ {
		if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
			panic(err)
		}
	}

	if cfg.Mode == Polling {
		g.startPollers()
	}
	return g
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HandlerActivations counts replica-CPU handler runs — the critical-path
// CPU work HyperLoop eliminates.
func (g *Group) HandlerActivations() uint64 { return g.handlerOps }

// Failed returns the failure reason, or nil.
func (g *Group) Failed() error { return g.failed }

// Close stops pollers.
func (g *Group) Close() {
	for _, r := range g.replicas {
		if r.poller != nil {
			r.poller.Stop()
		}
	}
}

func (g *Group) fail(reason error) {
	if g.failed != nil {
		return
	}
	g.failed = reason
	for _, o := range append(g.pending, g.waiting...) {
		if o.done != nil {
			o.done(Result{Seq: o.seq, Err: reason})
		}
	}
	g.pending, g.waiting = nil, nil
}

func (r *replica) postRecv(k int) {
	n := len(r.g.replicaNodes)
	slot := (k % ringDepth) * (cmdOp + 8*n)
	if _, err := r.up.PostRecv(rdma.WQE{
		WRID: uint64(k),
		SGEs: []rdma.SGE{{LKey: r.cmdBuf.LKey(), Offset: uint64(slot), Length: uint32(cmdOp + 8*n)}},
	}); err != nil {
		r.g.fail(fmt.Errorf("%w: repost recv: %v", ErrGroupFailed, err))
	}
	r.recvs++
}

// onCompletion is the NIC-level completion hook. In Event mode it schedules
// the handler on the host CPU (paying the multi-tenant scheduling tax). In
// Polling mode it parks the completion for the poller.
func (r *replica) onCompletion(e rdma.CQE) {
	if e.Status != rdma.StatusSuccess {
		r.g.fail(fmt.Errorf("%w: replica %d recv %s", ErrGroupFailed, r.index, e.Status))
		return
	}
	switch r.g.cfg.Mode {
	case Event:
		r.g.handlerOps++
		r.node.Host.Submit("naive-handler", r.g.cfg.HandlerCPU, func() { r.handle(e) })
	case Polling:
		r.inbox = append(r.inbox, e)
		if r.poller != nil && r.poller.Active() {
			// The spinning poller notices within its poll granularity, then
			// spends handler CPU inline on its core.
			batch := r.inbox
			r.inbox = nil
			delay := r.node.Host.PollDelay()
			for _, cqe := range batch {
				cqe := cqe
				r.g.handlerOps++
				delay += r.g.cfg.HandlerCPU
				r.g.eng.Schedule(delay, func() { r.handle(cqe) })
			}
		}
	}
}

// drainInbox is the poller's dispatch when it gets (back) on a core.
func (r *replica) drainInbox() {
	batch := r.inbox
	r.inbox = nil
	delay := sim.Duration(0)
	for _, cqe := range batch {
		cqe := cqe
		r.g.handlerOps++
		delay += r.g.cfg.HandlerCPU
		r.g.eng.Schedule(delay, func() { r.handle(cqe) })
	}
}

// startPollers launches one poller per replica: pinned to a dedicated core
// when allowed and available, otherwise a scheduled loop task contending
// with every other tenant.
func (g *Group) startPollers() {
	for _, r := range g.replicas {
		r := r
		if g.cfg.PinCore {
			if p := r.node.Host.Pin(fmt.Sprintf("naive-poller-%d", r.index)); p != nil {
				r.poller = p
				continue
			}
		}
		r.poller = r.node.Host.StartLoop(fmt.Sprintf("naive-poller-%d", r.index), r.drainInbox)
	}
}

// handle executes one hop's replication step on the replica CPU's behalf:
// apply the memory operation locally, then forward down the chain (or ack).
func (r *replica) handle(e rdma.CQE) {
	g := r.g
	if g.failed != nil {
		return
	}
	n := len(g.replicaNodes)
	k := int(e.WRID)
	slot := (k % ringDepth) * (cmdOp + 8*n)
	raw := make([]byte, cmdOp+8*n)
	r.cmdBuf.Backing().ReadAt(slot, raw)
	cmd := decodeCommand(raw, n)

	// Apply locally. The data payload for gWRITE was RDMA-written into our
	// store by the upstream node before the command SEND (same QP, in
	// order).
	switch cmd.op {
	case 1: // gwrite: durability via local flush
		if cmd.durable {
			r.flushStore(int(cmd.off), int(cmd.size))
		}
	case 2: // gcas
		if cmd.exec&(1<<uint(r.index)) != 0 {
			buf := r.node.StoreBytes(int(cmd.off), 8)
			orig := binary.LittleEndian.Uint64(buf)
			if orig == cmd.casOld {
				var nv [8]byte
				binary.LittleEndian.PutUint64(nv[:], cmd.casNew)
				r.storeWriteNICPath(int(cmd.off), nv[:])
			}
			cmd.results[r.index] = orig
		}
	case 3: // gmemcpy
		data := r.node.StoreBytes(int(cmd.src), int(cmd.size))
		r.storeWriteNICPath(int(cmd.off), data)
		if cmd.durable {
			r.flushStore(int(cmd.off), int(cmd.size))
		}
	case 4: // gflush
		r.flushStore(0, r.node.Store.Len())
	}

	r.postRecv(k + ringDepth) // re-arm our ring slot

	if r.index == n-1 {
		// Tail: ack to the client with the (possibly updated) result map.
		ackSlot := (k % ringDepth) * 8 * maxInt(n, 1)
		res := make([]byte, 8*n)
		for i, v := range cmd.results {
			binary.LittleEndian.PutUint64(res[8*i:], v)
		}
		r.cmdBuf.Backing().WriteAt(slot, res)
		if _, err := r.down.PostSend(rdma.WQE{
			Opcode: rdma.OpWriteImm, Signaled: true, Imm: cmd.seq,
			RKey: g.ackMR.RKey(), RAddr: uint64(ackSlot),
			SGEs: []rdma.SGE{{LKey: r.cmdBuf.LKey(), Offset: uint64(slot), Length: uint32(8 * n)}},
		}); err != nil {
			g.fail(fmt.Errorf("%w: tail ack: %v", ErrGroupFailed, err))
		}
		return
	}

	// Forward: replicate payload (gWRITE) then the command.
	next := g.replicaNodes[r.index+1]
	if cmd.op == 1 {
		if _, err := r.down.PostSend(rdma.WQE{
			Opcode: rdma.OpWrite, Signaled: true,
			RKey: next.Store.RKey(), RAddr: cmd.off,
			SGEs: []rdma.SGE{{LKey: r.node.Store.LKey(), Offset: cmd.off, Length: cmd.size}},
		}); err != nil {
			g.fail(fmt.Errorf("%w: forward write: %v", ErrGroupFailed, err))
			return
		}
	}
	r.cmdBuf.Backing().WriteAt(slot, cmd.encode(n))
	if _, err := r.down.PostSend(rdma.WQE{
		Opcode: rdma.OpSend, Signaled: true,
		SGEs: []rdma.SGE{{LKey: r.cmdBuf.LKey(), Offset: uint64(slot), Length: uint32(cmdOp + 8*n)}},
	}); err != nil {
		g.fail(fmt.Errorf("%w: forward send: %v", ErrGroupFailed, err))
	}
}

// flushStore persists a range of the local NVM (CPU-side cache-line
// write-back, charged within the handler demand).
func (r *replica) flushStore(off, size int) {
	b := r.node.Store.Backing().(*rdma.NVMBacking)
	b.Device().Flush(b.Base()+off, size)
}

// storeWriteNICPath mutates the store through the volatile-coherent view
// (host store without an explicit persist — matching a CPU store that has
// not been flushed).
func (r *replica) storeWriteNICPath(off int, data []byte) {
	b := r.node.Store.Backing().(*rdma.NVMBacking)
	copy(b.Device().View(b.Base()+off, len(data)), data)
	b.Device().MarkDirty(b.Base()+off, len(data))
}

// onAck completes the head pending op when the tail's ack lands.
func (g *Group) onAck(e rdma.CQE) {
	if e.Status != rdma.StatusSuccess {
		g.fail(fmt.Errorf("%w: ack %s", ErrGroupFailed, e.Status))
		return
	}
	if len(g.pending) == 0 {
		g.fail(fmt.Errorf("%w: spurious ack", ErrGroupFailed))
		return
	}
	o := g.pending[0]
	g.pending = g.pending[1:]
	if _, err := g.ackQP.PostRecv(rdma.WQE{}); err != nil {
		g.fail(err)
		return
	}
	res := Result{Seq: o.seq, Latency: g.eng.Now().Sub(o.issued)}
	if o.cmd.op == 2 {
		n := len(g.replicaNodes)
		buf := make([]byte, 8*n)
		g.ackMR.Backing().ReadAt((int(o.seq)%ringDepth)*8*maxInt(n, 1), buf)
		res.CASOld = make([]uint64, n)
		for i := range res.CASOld {
			res.CASOld[i] = binary.LittleEndian.Uint64(buf[8*i:])
		}
	}
	if o.done != nil {
		o.done(res)
	}
	g.pump()
}

func (g *Group) pump() {
	for len(g.waiting) > 0 && len(g.pending) < g.cfg.MaxInflight {
		o := g.waiting[0]
		g.waiting = g.waiting[1:]
		g.send(o)
	}
}

func (g *Group) submit(cmd command, done func(Result)) error {
	if g.failed != nil {
		return g.failed
	}
	o := &op{cmd: cmd, done: done}
	g.waiting = append(g.waiting, o)
	g.pump()
	return nil
}

func (g *Group) send(o *op) {
	o.seq = g.issued
	g.issued++
	o.cmd.seq = o.seq
	o.issued = g.eng.Now()
	g.pending = append(g.pending, o)

	n := len(g.replicaNodes)
	head := g.replicaNodes[0]
	if o.cmd.op == 2 {
		o.cmd.results = make([]uint64, n)
		for i := range o.cmd.results {
			o.cmd.results[i] = ^uint64(0)
		}
	}
	post := func(w rdma.WQE) {
		if g.failed != nil {
			return
		}
		if _, err := g.cliQP.PostSend(w); err != nil {
			g.fail(fmt.Errorf("%w: client post: %v", ErrGroupFailed, err))
		}
	}
	if o.cmd.op == 1 {
		post(rdma.WQE{
			Opcode: rdma.OpWrite, Signaled: true,
			RKey: head.Store.RKey(), RAddr: o.cmd.off,
			SGEs: []rdma.SGE{{LKey: g.client.Store.LKey(), Offset: o.cmd.off, Length: o.cmd.size}},
		})
	}
	slot := (int(o.seq) % ringDepth) * (cmdOp + 8*n)
	g.cliCmd.Backing().WriteAt(slot, o.cmd.encode(n))
	post(rdma.WQE{
		Opcode: rdma.OpSend, Signaled: true,
		SGEs: []rdma.SGE{{LKey: g.cliCmd.LKey(), Offset: uint64(slot), Length: uint32(cmdOp + 8*n)}},
	})
}

// GWrite mirrors core.Group.GWrite over the baseline datapath.
func (g *Group) GWrite(off, size int, durable bool, done func(Result)) error {
	if off < 0 || size <= 0 || off+size > g.client.Store.Len() {
		return ErrBadArgs
	}
	return g.submit(command{op: 1, off: uint64(off), size: uint32(size), durable: durable}, done)
}

// GCAS mirrors core.Group.GCAS.
func (g *Group) GCAS(off int, old, new uint64, exec uint64, done func(Result)) error {
	if off < 0 || off+8 > g.client.Store.Len() {
		return ErrBadArgs
	}
	return g.submit(command{op: 2, off: uint64(off), casOld: old, casNew: new, exec: exec}, done)
}

// GMemcpy mirrors core.Group.GMemcpy.
func (g *Group) GMemcpy(dstOff, srcOff, size int, durable bool, done func(Result)) error {
	if dstOff < 0 || srcOff < 0 || size <= 0 {
		return ErrBadArgs
	}
	if dstOff+size > g.client.Store.Len() || srcOff+size > g.client.Store.Len() {
		return ErrBadArgs
	}
	return g.submit(command{op: 3, off: uint64(dstOff), src: uint64(srcOff), size: uint32(size), durable: durable}, done)
}

// GFlush mirrors core.Group.GFlush.
func (g *Group) GFlush(done func(Result)) error {
	return g.submit(command{op: 4}, done)
}
