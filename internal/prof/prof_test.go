package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	stop() // idempotent
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	stop()
}

func TestStartBadPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "x"), ""); err == nil {
		t.Fatal("want error for unwritable cpuprofile path")
	}
}
