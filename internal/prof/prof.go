// Package prof is the tiny profiling harness behind the -cpuprofile and
// -memprofile flags: start CPU profiling up front, write the heap profile at
// shutdown, so engine hot paths can be profiled without code edits.
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath (when non-empty) and arranges for a
// heap profile at memPath (when non-empty). The returned stop function
// flushes both; it is safe to call multiple times and must run before the
// process exits (os.Exit skips defers — call it explicitly on error paths).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile is live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			}
		}
	}, nil
}
