package shard

import (
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/sim"
)

// --- map: routing + placement ---

func TestHashRoutingCoversAllShards(t *testing.T) {
	m := NewHashMap(8)
	hits := make([]int, 8)
	for i := 0; i < 4096; i++ {
		s := m.Route(fmt.Sprintf("key-%05d", i))
		if s < 0 || s >= 8 {
			t.Fatalf("key routed to shard %d", s)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d got no keys", s)
		}
	}
	// Routing is a pure function.
	if m.Route("stable-key") != m.Route("stable-key") {
		t.Fatal("routing not deterministic")
	}
}

func TestRangeRouting(t *testing.T) {
	m := NewRangeMap([]string{"g", "p"})
	cases := map[string]int{"a": 0, "f": 0, "g": 1, "o": 1, "p": 2, "z": 2}
	for k, want := range cases {
		if got := m.Route(k); got != want {
			t.Fatalf("Route(%q) = %d, want %d", k, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted boundaries accepted")
		}
	}()
	NewRangeMap([]string{"p", "g"})
}

func TestPlacementAntiAffinity(t *testing.T) {
	m := NewHashMap(6)
	if err := m.PlaceAll(8, 3); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		p := m.Placement(s)
		if len(p) != 3 {
			t.Fatalf("shard %d placed on %d hosts", s, len(p))
		}
		seen := map[int]bool{}
		for _, h := range p {
			if seen[h] {
				t.Fatalf("shard %d placed twice on host %d", s, h)
			}
			seen[h] = true
		}
	}
	if err := m.Place(0, []int{1, 1, 2}); err == nil {
		t.Fatal("duplicate host accepted")
	}
	// Placement is deterministic: same inputs, same table.
	m2 := NewHashMap(6)
	if err := m2.PlaceAll(8, 3); err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 6; s++ {
		if fmt.Sprint(m.Placement(s)) != fmt.Sprint(m2.Placement(s)) {
			t.Fatalf("placement of shard %d not deterministic", s)
		}
	}
}

// --- plane: end-to-end over the simulated cluster ---

func testPlane(t *testing.T, cfg Config) (*sim.Engine, *Plane) {
	t.Helper()
	eng := sim.NewEngine()
	if cfg.Fabric.JitterFrac == 0 {
		cfg.Fabric = fabric.Config{JitterFrac: -1}
	}
	if cfg.Group.Depth == 0 {
		cfg.Group = core.Config{Depth: 256}
	}
	ready := false
	p := New(eng, cfg, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		ready = true
	})
	if !eng.RunUntil(func() bool { return ready }, eng.Now().Add(sim.Second)) {
		t.Fatal("plane never opened")
	}
	return eng, p
}

func putAll(t *testing.T, eng *sim.Engine, p *Plane, keys []string, val func(string) []byte) {
	t.Helper()
	acked := 0
	for _, k := range keys {
		if _, err := p.Put(k, val(k), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
			acked++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.RunUntil(func() bool { return acked >= len(keys) }, eng.Now().Add(10*sim.Second)) {
		t.Fatalf("acked %d/%d", acked, len(keys))
	}
}

func TestPlanePutGetAcrossShards(t *testing.T) {
	eng, p := testPlane(t, Config{Shards: 4, Replicas: 3, Hosts: 6, Seed: 7})
	defer p.Close()

	var keys []string
	for i := 0; i < 120; i++ {
		keys = append(keys, fmt.Sprintf("key-%04d", i))
	}
	putAll(t, eng, p, keys, func(k string) []byte { return []byte("v:" + k) })

	shardsHit := map[int]bool{}
	for _, k := range keys {
		v, ok := p.Get(k)
		if !ok || string(v) != "v:"+k {
			t.Fatalf("Get(%q) = %q, %v", k, v, ok)
		}
		shardsHit[p.Route(k).ID] = true
	}
	if len(shardsHit) != 4 {
		t.Fatalf("keys landed on %d shards, want 4", len(shardsHit))
	}

	// One-sided replica reads see committed values with correct epochs.
	done := false
	p.Commit(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	})
	if !eng.RunUntil(func() bool { return done }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("commit stalled")
	}
	var got []byte
	read := false
	p.GetFromReplica("key-0000", func(v []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got, read = v, true
	})
	if !eng.RunUntil(func() bool { return read }, eng.Now().Add(sim.Second)) {
		t.Fatal("replica read stalled")
	}
	if string(got) != "v:key-0000" {
		t.Fatalf("replica read = %q", got)
	}
	if p.StaleServed() != 0 {
		t.Fatalf("stale serves = %d", p.StaleServed())
	}
}

// keysFor returns n keys that all route to shard sid.
func keysFor(p *Plane, sid, n int) []string {
	var out []string
	for i := 0; len(out) < n; i++ {
		k := fmt.Sprintf("sk-%d-%05d", sid, i)
		if p.Map.Route(k) == sid {
			out = append(out, k)
		}
	}
	return out
}

// freeHosts returns `want` pool hosts not currently carrying shard sid.
func freeHosts(p *Plane, sid, want int) []int {
	cur := p.Map.Placement(sid)
	var out []int
	for h := 0; h < len(p.Pool()) && len(out) < want; h++ {
		if !contains(cur, h) {
			out = append(out, h)
		}
	}
	return out
}

func TestLiveMigrationPreservesKeys(t *testing.T) {
	eng, p := testPlane(t, Config{
		Shards: 2, Replicas: 3, Hosts: 8,
		ChunkBytes: 2048, Seed: 11,
	})
	defer p.Close()

	const sid = 0
	before := keysFor(p, sid, 80)
	putAll(t, eng, p, before, func(k string) []byte { return []byte("pre:" + k) })

	dest := freeHosts(p, sid, 3)
	oldHosts := p.Shard(sid).Replicas()
	var migErr error
	migDone := false
	if err := p.Migrate(sid, dest, func(err error) {
		migErr = err
		migDone = true
	}); err != nil {
		t.Fatal(err)
	}

	// Writes racing the migration: issued while the quiesce/copy is in
	// flight, they append to the source chain and must survive the cutover
	// via WAL catch-up on the destination.
	during := keysFor(p, sid, 100)[80:]
	ackedDuring := 0
	for _, k := range during {
		if _, err := p.Put(k, []byte("mid:"+k), func(err error) {
			if err != nil {
				t.Errorf("racing put: %v", err)
			}
			ackedDuring++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !eng.RunUntil(func() bool { return migDone && ackedDuring >= len(during) },
		eng.Now().Add(10*sim.Second)) {
		t.Fatalf("migration stalled: done=%v acked=%d/%d", migDone, ackedDuring, len(during))
	}
	if migErr != nil {
		t.Fatalf("migration failed: %v", migErr)
	}

	s := p.Shard(sid)
	if s.Epoch() != 1 || s.Migrations() != 1 {
		t.Fatalf("epoch=%d migrations=%d, want 1/1", s.Epoch(), s.Migrations())
	}
	if fmt.Sprint(s.Replicas()) != fmt.Sprint(dest) {
		t.Fatalf("replicas %v, want %v", s.Replicas(), dest)
	}
	if fmt.Sprint(p.Map.Placement(sid)) != fmt.Sprint(dest) {
		t.Fatalf("map placement %v, want %v", p.Map.Placement(sid), dest)
	}

	// Every key — preloaded and racing — still reads back.
	for _, k := range before {
		if v, ok := p.Get(k); !ok || string(v) != "pre:"+k {
			t.Fatalf("lost preloaded key %q (%q,%v)", k, v, ok)
		}
	}
	for _, k := range during {
		if v, ok := p.Get(k); !ok || string(v) != "mid:"+k {
			t.Fatalf("lost racing key %q (%q,%v)", k, v, ok)
		}
	}

	// Drain commits, then rebuild the shard's region from a destination
	// replica's bytes: the moved data must be physically present there.
	committed := false
	p.Commit(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		committed = true
	})
	if !eng.RunUntil(func() bool { return committed }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("commit stalled")
	}
	regionCfg := kvstore.Config{
		LogBase:  sid*(1<<20) + regionHdr,
		LogSize:  1 << 18,
		DataBase: sid*(1<<20) + regionHdr + 1<<18,
		DataSize: 1<<20 - regionHdr - 1<<18,
	}
	destNode := p.Pool()[dest[0]]
	got, err := kvstore.Rebuild(func(off, size int) []byte {
		return destNode.StoreBytes(off, size)
	}, regionCfg)
	if err != nil {
		t.Fatalf("rebuild on destination: %v", err)
	}
	for _, k := range append(append([]string{}, before...), during...) {
		if _, ok := got[k]; !ok {
			t.Fatalf("key %q missing from destination replica", k)
		}
	}

	// Epoch fencing: the new owners carry epoch 1, the former owners the
	// stale epoch 0.
	for _, h := range dest {
		if e := epochWord(p, h, sid); e != 1 {
			t.Fatalf("dest host %d epoch word = %d, want 1", h, e)
		}
	}
	for _, h := range oldHosts {
		if contains(dest, h) {
			continue
		}
		if e := epochWord(p, h, sid); e != 0 {
			t.Fatalf("former host %d epoch word = %d, want 0", h, e)
		}
	}
	if fmt.Sprint(s.FormerOwners()) == fmt.Sprint([]int{}) {
		t.Fatal("no former owners recorded")
	}
	if p.StaleServed() != 0 {
		t.Fatalf("stale serves = %d", p.StaleServed())
	}
}

// epochWord reads host h's epoch word for shard sid.
func epochWord(p *Plane, h, sid int) uint64 {
	b := p.Pool()[h].StoreBytes(sid*(1<<20)+epochOff, 8)
	var e uint64
	for i := 7; i >= 0; i-- {
		e = e<<8 | uint64(b[i])
	}
	return e
}

func TestMigrationAbortsOnDestFailure(t *testing.T) {
	eng, p := testPlane(t, Config{
		Shards: 2, Replicas: 3, Hosts: 8,
		ChunkBytes: 1024, Seed: 13,
		Group: core.Config{Depth: 256, OpTimeout: 2 * sim.Millisecond},
	})
	defer p.Close()

	const sid = 1
	keys := keysFor(p, sid, 60)
	putAll(t, eng, p, keys, func(k string) []byte { return []byte("v:" + k) })

	oldHosts := p.Shard(sid).Replicas()
	dest := freeHosts(p, sid, 3)
	var migErr error
	migDone := false
	if err := p.Migrate(sid, dest, func(err error) {
		migErr = err
		migDone = true
	}); err != nil {
		t.Fatal(err)
	}
	// Kill a destination host while the copy is in flight.
	victim := p.Pool()[dest[1]]
	p.Cl.Net.Isolate(victim.NIC.Node())

	if !eng.RunUntil(func() bool { return migDone }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("migration neither completed nor aborted")
	}
	if migErr == nil {
		t.Fatal("migration to a dead destination reported success")
	}
	s := p.Shard(sid)
	if s.Epoch() != 0 || s.Migrations() != 0 {
		t.Fatalf("epoch=%d migrations=%d after abort, want 0/0", s.Epoch(), s.Migrations())
	}
	if fmt.Sprint(s.Replicas()) != fmt.Sprint(oldHosts) {
		t.Fatalf("replicas %v after abort, want %v", s.Replicas(), oldHosts)
	}

	// The shard keeps serving on the source chain.
	more := keysFor(p, sid, 70)[60:]
	putAll(t, eng, p, more, func(k string) []byte { return []byte("v:" + k) })
	for _, k := range append(append([]string{}, keys...), more...) {
		if v, ok := p.Get(k); !ok || string(v) != "v:"+k {
			t.Fatalf("key %q lost after abort (%q,%v)", k, v, ok)
		}
	}
}

func TestRebalancerMovesHotShard(t *testing.T) {
	eng, p := testPlane(t, Config{
		Shards: 4, Replicas: 3, Hosts: 8, Seed: 17,
		RegionSize: 4 << 20, LogSize: 1 << 20, // room for the burst before drain
	})
	defer p.Close()

	reb := p.StartRebalancer(RebalanceConfig{
		Every:         200 * sim.Microsecond,
		MinOps:        32,
		Imbalance:     1.5,
		MaxMigrations: 1,
	})

	// Concentrate the workload on one shard: its hosts become hot while the
	// rest of the pool idles.
	const hot = 2
	before := fmt.Sprint(p.Map.Placement(hot))
	keys := keysFor(p, hot, 400)
	acked := 0
	for _, k := range keys {
		if _, err := p.Put(k, []byte("hot"), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
			acked++
		}); err != nil {
			t.Fatal(err)
		}
	}
	migrated := func() bool { return reb.Moves() >= 1 && !p.Shard(hot).Migrating() }
	if !eng.RunUntil(func() bool { return acked >= len(keys) && migrated() },
		eng.Now().Add(10*sim.Second)) {
		t.Fatalf("acked=%d moves=%d: rebalancer never triggered", acked, reb.Moves())
	}
	if got := fmt.Sprint(p.Map.Placement(hot)); got == before {
		t.Fatalf("hot shard placement unchanged: %v", got)
	}
	if p.Shard(hot).Epoch() != 1 {
		t.Fatalf("hot shard epoch = %d, want 1", p.Shard(hot).Epoch())
	}
	for _, k := range keys {
		if v, ok := p.Get(k); !ok || string(v) != "hot" {
			t.Fatalf("key %q lost across rebalance (%q,%v)", k, v, ok)
		}
	}
	hasNote := false
	for _, e := range p.Timeline() {
		if strings.Contains(e.What, "rebalance: host") {
			hasNote = true
		}
	}
	if !hasNote {
		t.Fatal("rebalance decision not recorded in timeline")
	}
}

// runMigrationOnce drives a fixed preload + migration + racing writes and
// returns the full timeline plus final state fingerprint.
func runMigrationOnce(t *testing.T, seed int64) string {
	eng, p := testPlane(t, Config{
		Shards: 2, Replicas: 3, Hosts: 8,
		ChunkBytes: 2048, Seed: seed,
	})
	defer p.Close()
	// Workload size depends on the seed so distinct seeds yield distinct
	// timelines (the fabric is jitter-free here, so timing alone won't).
	keys := keysFor(p, 0, 50+int(seed%7))
	putAll(t, eng, p, keys, func(k string) []byte { return []byte("v:" + k) })
	dest := freeHosts(p, 0, 3)
	migDone := false
	if err := p.Migrate(0, dest, func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		migDone = true
	}); err != nil {
		t.Fatal(err)
	}
	if !eng.RunUntil(func() bool { return migDone }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("migration stalled")
	}
	return fmt.Sprintf("%v | epoch=%d ops=%d now=%v",
		p.Timeline(), p.Shard(0).Epoch(), p.Shard(0).Ops(), eng.Now())
}

func TestMigrationDeterministic(t *testing.T) {
	a := runMigrationOnce(t, 23)
	b := runMigrationOnce(t, 23)
	if a != b {
		t.Fatalf("same seed, different timelines:\n%s\n%s", a, b)
	}
	c := runMigrationOnce(t, 24)
	if a == c {
		t.Fatal("different seeds produced identical timelines (suspicious)")
	}
}
