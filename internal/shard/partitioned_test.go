package shard

import (
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/check"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// runPartitionedWorkload opens a 2-group partitioned plane, pushes a
// closed-loop keyed workload from each group's front-end (deliberately
// including cross-group keys), and returns a flattened per-group ack log.
func runPartitionedWorkload(t *testing.T, workers int) string {
	t.Helper()
	const putsPerGroup = 24
	pp := NewPartitionedPlane(PartitionedConfig{
		Groups:         2,
		ShardsPerGroup: 2,
		Replicas:       3,
		RegionSize:     128 << 10,
		Seed:           11,
		Workers:        workers,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, pp.Groups())
	acked := make([]int, pp.Groups())
	for g := 0; g < pp.Groups(); g++ {
		g := g
		eng := pp.PE.Partition(g)
		var issue func(i int)
		issue = func(i int) {
			key := fmt.Sprintf("k%d-%02d", g, i)
			val := []byte(strings.Repeat("x", 48))
			pp.Put(g, key, val, func(err error) {
				if err == wal.ErrLogFull {
					eng.Schedule(2*sim.Microsecond, func() { issue(i) })
					return
				}
				if err != nil {
					t.Errorf("put %s: %v", key, err)
				}
				logs[g] = append(logs[g], fmt.Sprintf("g%d %s home=%d @%d", g, key, pp.HomeGroup(key), eng.Now()))
				acked[g]++
				if i+1 < putsPerGroup {
					issue(i + 1)
				}
			})
		}
		eng.Schedule(0, func() { issue(0) })
	}
	deadline := pp.PE.Partition(0).Now()
	for chunk := 0; chunk < 200; chunk++ {
		deadline = deadline.Add(200 * sim.Microsecond)
		pp.PE.Run(deadline)
		all := true
		for g := range acked {
			all = all && acked[g] == putsPerGroup
		}
		if all {
			break
		}
	}
	for g := range acked {
		if acked[g] != putsPerGroup {
			t.Fatalf("workers=%d: group %d acked %d/%d puts", workers, g, acked[g], putsPerGroup)
		}
	}
	if res := check.PartitionSkew(pp.PE); !res.Pass() {
		t.Fatalf("workers=%d: %v", workers, res.Err)
	}
	fwd := pp.ForwardedPuts()
	total := uint64(0)
	for _, n := range fwd {
		total += n
	}
	if total == 0 {
		t.Fatalf("workers=%d: workload exercised no cross-group forwards", workers)
	}
	pp.Close()
	var b strings.Builder
	for g, log := range logs {
		fmt.Fprintf(&b, "== group %d (local=%d fwd=%d) ==\n", g, pp.LocalPuts()[g], fwd[g])
		for _, line := range log {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestPartitionedPlaneDeterministicAcrossWorkers: the full stack — planes,
// chains, WALs, cross-group forwards — acks in byte-identical order and at
// identical virtual times at every worker count.
func TestPartitionedPlaneDeterministicAcrossWorkers(t *testing.T) {
	ref := runPartitionedWorkload(t, 1)
	for _, w := range []int{2, 0} {
		if got := runPartitionedWorkload(t, w); got != ref {
			t.Fatalf("workers=%d diverged from serial reference:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, ref, w, got)
		}
	}
}

// TestPartitionedPlaneForwardRefusal: a synchronous refusal at the home
// group still acks the issuing group exactly once, wrapped for errors.Is.
func TestPartitionedPlaneForwardRefusal(t *testing.T) {
	pp := NewPartitionedPlane(PartitionedConfig{
		Groups:         2,
		ShardsPerGroup: 1,
		Replicas:       3,
		RegionSize:     128 << 10,
		Seed:           5,
		Workers:        1,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	// Find a key homed on group 1, then close group 1's plane so its Put
	// refuses synchronously.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if pp.HomeGroup(k) == 1 {
			key = k
			break
		}
	}
	pp.Group(1).Close()
	acks := 0
	var got error
	pp.PE.Partition(0).Schedule(0, func() {
		pp.Put(0, key, []byte("v"), func(err error) {
			acks++
			got = err
		})
	})
	pp.PE.Run(pp.PE.Partition(0).Now().Add(10 * sim.Microsecond))
	if acks != 1 {
		t.Fatalf("forward refusal acked %d times", acks)
	}
	if got == nil || !strings.Contains(got.Error(), "forward refused") {
		t.Fatalf("err = %v, want wrapped ErrForwardFailed", got)
	}
	pp.Close()
}
