package shard

import (
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/check"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// runPartitionedWorkload opens a 2-group partitioned plane, pushes a
// closed-loop keyed workload from each group's front-end (deliberately
// including cross-group keys), and returns a flattened per-group ack log.
func runPartitionedWorkload(t *testing.T, workers int) string {
	t.Helper()
	const putsPerGroup = 24
	pp := NewPartitionedPlane(PartitionedConfig{
		Groups:         2,
		ShardsPerGroup: 2,
		Replicas:       3,
		RegionSize:     128 << 10,
		Seed:           11,
		Workers:        workers,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	logs := make([][]string, pp.Groups())
	acked := make([]int, pp.Groups())
	for g := 0; g < pp.Groups(); g++ {
		g := g
		eng := pp.PE.Partition(g)
		var issue func(i int)
		issue = func(i int) {
			key := fmt.Sprintf("k%d-%02d", g, i)
			val := []byte(strings.Repeat("x", 48))
			pp.Put(g, key, val, func(err error) {
				if err == wal.ErrLogFull {
					eng.Schedule(2*sim.Microsecond, func() { issue(i) })
					return
				}
				if err != nil {
					t.Errorf("put %s: %v", key, err)
				}
				logs[g] = append(logs[g], fmt.Sprintf("g%d %s home=%d @%d", g, key, pp.HomeGroup(key), eng.Now()))
				acked[g]++
				if i+1 < putsPerGroup {
					issue(i + 1)
				}
			})
		}
		eng.Schedule(0, func() { issue(0) })
	}
	deadline := pp.PE.Partition(0).Now()
	for chunk := 0; chunk < 200; chunk++ {
		deadline = deadline.Add(200 * sim.Microsecond)
		pp.PE.Run(deadline)
		all := true
		for g := range acked {
			all = all && acked[g] == putsPerGroup
		}
		if all {
			break
		}
	}
	for g := range acked {
		if acked[g] != putsPerGroup {
			t.Fatalf("workers=%d: group %d acked %d/%d puts", workers, g, acked[g], putsPerGroup)
		}
	}
	if res := check.PartitionSkew(pp.PE); !res.Pass() {
		t.Fatalf("workers=%d: %v", workers, res.Err)
	}
	fwd := pp.ForwardedPuts()
	total := uint64(0)
	for _, n := range fwd {
		total += n
	}
	if total == 0 {
		t.Fatalf("workers=%d: workload exercised no cross-group forwards", workers)
	}
	pp.Close()
	var b strings.Builder
	for g, log := range logs {
		fmt.Fprintf(&b, "== group %d (local=%d fwd=%d) ==\n", g, pp.LocalPuts()[g], fwd[g])
		for _, line := range log {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestPartitionedPlaneDeterministicAcrossWorkers: the full stack — planes,
// chains, WALs, cross-group forwards — acks in byte-identical order and at
// identical virtual times at every worker count.
func TestPartitionedPlaneDeterministicAcrossWorkers(t *testing.T) {
	ref := runPartitionedWorkload(t, 1)
	for _, w := range []int{2, 0} {
		if got := runPartitionedWorkload(t, w); got != ref {
			t.Fatalf("workers=%d diverged from serial reference:\n--- serial ---\n%s--- workers=%d ---\n%s",
				w, ref, w, got)
		}
	}
}

// TestPartitionedPlaneForwardRefusal: a synchronous refusal at the home
// group still acks the issuing group exactly once, wrapped for errors.Is.
func TestPartitionedPlaneForwardRefusal(t *testing.T) {
	pp := NewPartitionedPlane(PartitionedConfig{
		Groups:         2,
		ShardsPerGroup: 1,
		Replicas:       3,
		RegionSize:     128 << 10,
		Seed:           5,
		Workers:        1,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	// Find a key homed on group 1, then close group 1's plane so its Put
	// refuses synchronously.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if pp.HomeGroup(k) == 1 {
			key = k
			break
		}
	}
	pp.Group(1).Close()
	acks := 0
	var got error
	pp.PE.Partition(0).Schedule(0, func() {
		pp.Put(0, key, []byte("v"), func(err error) {
			acks++
			got = err
		})
	})
	pp.PE.Run(pp.PE.Partition(0).Now().Add(10 * sim.Microsecond))
	if acks != 1 {
		t.Fatalf("forward refusal acked %d times", acks)
	}
	if got == nil || !strings.Contains(got.Error(), "forward refused") {
		t.Fatalf("err = %v, want wrapped ErrForwardFailed", got)
	}
	pp.Close()
}

// TestPartitionedPlaneCRAQReads: the CRAQ flag plumbs through to every
// group's plane — a committed key serves a clean read from any chain
// replica of its home group, and the ancillary surface (spans, commit
// drain, group-key salting) behaves.
func TestPartitionedPlaneCRAQReads(t *testing.T) {
	pp := NewPartitionedPlane(PartitionedConfig{
		Groups:         2,
		ShardsPerGroup: 1,
		Replicas:       3,
		RegionSize:     128 << 10,
		CRAQ:           true,
		WithSpans:      true,
		Seed:           7,
		Workers:        1,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < pp.Groups(); g++ {
		if pp.Spans(g) == nil {
			t.Fatalf("group %d has no span recorder", g)
		}
	}
	// One key per group, written at its home group.
	keys := make([]string, pp.Groups())
	for i, found := 0, 0; found < len(keys); i++ {
		k := fmt.Sprintf("craq-%d", i)
		if g := pp.HomeGroup(k); keys[g] == "" {
			keys[g] = k
			found++
		}
	}
	if pp.GroupMap.Route(GroupKey(keys[0])) != pp.HomeGroup(keys[0]) {
		t.Fatal("GroupKey salting disagrees with HomeGroup")
	}
	acked := 0
	for g, k := range keys {
		g, k := g, k
		pp.PE.Partition(g).Schedule(0, func() {
			pp.Put(g, k, []byte("v-"+k), func(err error) {
				if err != nil {
					t.Errorf("put %s: %v", k, err)
				}
				acked++
			})
		})
	}
	drive := func(cond func() bool) {
		deadline := pp.PE.Partition(0).Now()
		for chunk := 0; chunk < 200 && !cond(); chunk++ {
			deadline = deadline.Add(200 * sim.Microsecond)
			pp.PE.Run(deadline)
		}
		if !cond() {
			t.Fatal("partitioned CRAQ run stalled")
		}
	}
	drive(func() bool { return acked == len(keys) })
	// CommitAll slots are filled on error only; drive past the drain.
	slots := pp.CommitAll()
	drive(func() bool {
		return pp.PE.Partition(0).Now() > sim.Time(0).Add(2*sim.Millisecond)
	})
	for g, s := range slots {
		if *s != nil {
			t.Fatalf("group %d commit: %v", g, *s)
		}
	}
	// Every replica of the home group serves the committed key clean.
	reads := 0
	for g, k := range keys {
		g, k := g, k
		for r := 0; r < 3; r++ {
			r := r
			pp.PE.Partition(g).Schedule(0, func() {
				pp.Group(g).ReadCRAQ(k, r, func(val []byte, clean bool, err error) {
					if err != nil || !clean || string(val) != "v-"+k {
						t.Errorf("read %s@r%d: val=%q clean=%v err=%v", k, r, val, clean, err)
					}
					reads++
				})
			})
		}
	}
	drive(func() bool { return reads == 3*len(keys) })
	for g := range keys {
		if c, d := pp.Group(g).Shard(0).DB().CRAQStats(); c != 3 || d != 0 {
			t.Fatalf("group %d craq stats clean=%d dirty=%d, want 3/0", g, c, d)
		}
	}
	if s := pp.Group(0).String(); s == "" {
		t.Fatal("empty plane description")
	}
	pp.Close()
}
