package shard

import (
	"errors"
	"fmt"

	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/metrics"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
)

// PartitionedConfig sizes a PartitionedPlane: Groups shard groups, each a
// full Plane (its own front-end, replica hosts, and intra-group fabric) that
// lives on its own sim partition. Groups talk only over an inter-group link
// whose minimum latency is the engine's conservative lookahead.
type PartitionedConfig struct {
	// Groups is the shard-group — and therefore sim-partition — count
	// (default 4).
	Groups int
	// ShardsPerGroup is each group's shard count (default 4).
	ShardsPerGroup int
	// HostsPerGroup is each group's replica host-pool size (default 4 — four
	// groups match the classic 16-host budget).
	HostsPerGroup int
	// Replicas is the chain length per shard (default 3).
	Replicas int
	// RegionSize / LogSize / CommitEvery / Group / Fabric / NIC configure
	// every group's Plane exactly as in Config.
	RegionSize  int
	LogSize     int
	CommitEvery int
	Group       core.Config
	Fabric      fabric.Config
	NIC         rdma.Config
	// CRAQ enables clean/dirty read serving on every group's plane exactly
	// as in Config.CRAQ.
	CRAQ bool
	// InterFabric models the link between groups (default 3µs propagation —
	// an inter-rack hop, wider than the intra-group 1.5µs). Its MinLatency
	// is the engine lookahead; cross-group forwards pay its deterministic
	// Latency both ways.
	InterFabric fabric.Config
	// HostTiers / TierNIC / Hints configure tiered placement per group
	// exactly as in Config — every group's pool carries the same tier
	// labels, keeping cross-group placement symmetric and deterministic.
	HostTiers []Tier
	TierNIC   map[Tier]rdma.Config
	Hints     func(shard int) Hint
	// Seed feeds every group (group g gets Seed + g*9973).
	Seed int64
	// Workers is the engine worker count (0 = all cores, 1 = serial).
	Workers int
	// Metrics optionally attaches one registry per group (nil, or length
	// Groups). Per-group registries keep metric updates partition-local; the
	// caller merges them in group order after the run.
	Metrics []*metrics.Registry
	// WithSpans attaches one span.Recorder per group (retrievable via
	// Spans(g)), so every Put records an op span without any cross-partition
	// append — recorders, like registries, are merged by the caller in group
	// order.
	WithSpans bool
}

func (c *PartitionedConfig) fill() {
	if c.Groups <= 0 {
		c.Groups = 4
	}
	if c.ShardsPerGroup <= 0 {
		c.ShardsPerGroup = 4
	}
	if c.HostsPerGroup <= 0 {
		c.HostsPerGroup = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.HostsPerGroup < c.Replicas {
		c.HostsPerGroup = c.Replicas
	}
	if c.InterFabric.PropDelay <= 0 {
		c.InterFabric.PropDelay = 3000 * sim.Nanosecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Metrics != nil && len(c.Metrics) != c.Groups {
		panic(fmt.Sprintf("shard: %d metric registries for %d groups", len(c.Metrics), c.Groups))
	}
}

// ErrForwardFailed wraps a cross-group forward whose home group refused the
// put synchronously; callers match the underlying cause with errors.Is.
var ErrForwardFailed = errors.New("shard: cross-group forward refused")

// PartitionedPlane is the sharded data plane scaled out across a
// sim.PartitionedEngine: Groups independent Planes, one per partition, plus
// deterministic cross-group request forwarding over the inter-group link.
// Keys route to a home group by hash; a Put issued at its home group runs
// entirely partition-local, everything else is forwarded and acked over the
// hand-off queues. All cross-partition timing uses the jitter-free
// InterFabric.Latency, so results are bit-identical at any worker count.
type PartitionedPlane struct {
	PE *sim.PartitionedEngine
	// GroupMap routes keys to their home group.
	GroupMap *Map

	cfg    PartitionedConfig
	groups []*Plane
	spans  []*span.Recorder // per group, nil unless cfg.WithSpans

	// Per-source-group counters: each slot is touched only by its own
	// partition, read after Run returns.
	localPuts []uint64
	fwdPuts   []uint64

	openDone []bool
	openErr  []error
}

// NewPartitionedPlane builds Groups planes over a fresh PartitionedEngine
// with lookahead InterFabric.MinLatency(). Call WaitOpen before issuing
// load: opening (log-header durability on every shard) needs the engines to
// run.
func NewPartitionedPlane(cfg PartitionedConfig) *PartitionedPlane {
	cfg.fill()
	pe := sim.NewPartitioned(cfg.Groups, cfg.InterFabric.MinLatency())
	pe.SetWorkers(cfg.Workers)
	pp := &PartitionedPlane{
		PE:        pe,
		GroupMap:  NewHashMap(cfg.Groups),
		cfg:       cfg,
		groups:    make([]*Plane, cfg.Groups),
		localPuts: make([]uint64, cfg.Groups),
		fwdPuts:   make([]uint64, cfg.Groups),
		openDone:  make([]bool, cfg.Groups),
		openErr:   make([]error, cfg.Groups),
	}
	if cfg.WithSpans {
		pp.spans = make([]*span.Recorder, cfg.Groups)
	}
	for g := 0; g < cfg.Groups; g++ {
		g := g
		gcfg := Config{
			Shards:      cfg.ShardsPerGroup,
			Replicas:    cfg.Replicas,
			Hosts:       cfg.HostsPerGroup,
			RegionSize:  cfg.RegionSize,
			LogSize:     cfg.LogSize,
			CommitEvery: cfg.CommitEvery,
			Group:       cfg.Group,
			Fabric:      cfg.Fabric,
			NIC:         cfg.NIC,
			CRAQ:        cfg.CRAQ,
			HostTiers:   cfg.HostTiers,
			TierNIC:     cfg.TierNIC,
			Hints:       cfg.Hints,
			Seed:        cfg.Seed + int64(g)*9973,
		}
		if cfg.Metrics != nil {
			gcfg.Metrics = cfg.Metrics[g]
		}
		if cfg.WithSpans {
			pp.spans[g] = span.NewRecorder(pe.Partition(g))
			gcfg.Spans = pp.spans[g]
		}
		pp.groups[g] = New(pe.Partition(g), gcfg, func(err error) {
			pp.openDone[g] = true
			pp.openErr[g] = err
		})
	}
	return pp
}

// WaitOpen drives the engines in deterministic chunks until every group
// reports open (or limit passes). The open callbacks fire on their own
// partitions; completion is only inspected between Run calls, when no worker
// is live.
func (pp *PartitionedPlane) WaitOpen(limit sim.Time) error {
	const chunk = 100 * sim.Microsecond
	for t := sim.Time(0).Add(chunk); ; t = t.Add(chunk) {
		if t > limit {
			t = limit
		}
		pp.PE.Run(t)
		all := true
		for g := range pp.openDone {
			if pp.openErr[g] != nil {
				return fmt.Errorf("group %d open: %w", g, pp.openErr[g])
			}
			all = all && pp.openDone[g]
		}
		if all {
			return nil
		}
		if t == limit {
			return fmt.Errorf("shard: %d groups not open by %v", pp.Groups(), limit)
		}
	}
}

// Groups returns the group count.
func (pp *PartitionedPlane) Groups() int { return len(pp.groups) }

// Group returns group g's plane. Direct use (Get, Commit, Flush, shard
// introspection) is only safe from events running on partition g, or between
// Run calls.
func (pp *PartitionedPlane) Group(g int) *Plane { return pp.groups[g] }

// Spans returns group g's span recorder (nil unless WithSpans). Same safety
// rule as Group: partition g's events, or between Run calls.
func (pp *PartitionedPlane) Spans(g int) *span.Recorder {
	if pp.spans == nil {
		return nil
	}
	return pp.spans[g]
}

// groupSalt decorrelates group-level routing from the per-plane shard maps:
// both are consistent-hash rings over the same key hash, and the group
// ring's points are a subset of a larger plane ring's, so routing the raw
// key at both levels would make some (group, shard) pairs unreachable.
const groupSalt = "\x00group\x00"

// HomeGroup returns the group owning key. Always use this (not
// GroupMap.Route directly): the group ring hashes a salted key.
func (pp *PartitionedPlane) HomeGroup(key string) int {
	return pp.GroupMap.Route(groupSalt + key)
}

// GroupKey returns the salted form of key that group-level rings route.
// External planes that must agree with HomeGroup (the Naive-RDMA serving
// backend routes the same keyspace over its own group map) hash this through
// a NewHashMap of the same group count.
func GroupKey(key string) string { return groupSalt + key }

// LocalPuts and ForwardedPuts report per-issuing-group put counts; call
// between Run invocations.
func (pp *PartitionedPlane) LocalPuts() []uint64     { return append([]uint64(nil), pp.localPuts...) }
func (pp *PartitionedPlane) ForwardedPuts() []uint64 { return append([]uint64(nil), pp.fwdPuts...) }

// forward wire-format overhead: routing header on the request, status-only
// ack on the way back.
const fwdHeaderBytes = 24

// Put stores key=value from group src's front-end; done fires back on
// partition src at the durability point (exactly once, also on synchronous
// refusal). A key homed on src is a plain local put; otherwise the request
// is forwarded to its home group over the inter-group link and the ack rides
// back the same way — both legs at the link's deterministic latency, which
// is never below the engine lookahead.
func (pp *PartitionedPlane) Put(src int, key string, value []byte, done func(error)) {
	home := pp.HomeGroup(key)
	if home == src {
		pp.localPuts[src]++
		if _, err := pp.groups[src].Put(key, value, done); err != nil {
			done(err) // refusal: the plane never fires the callback itself
		}
		return
	}
	pp.fwdPuts[src]++
	reqLat := pp.cfg.InterFabric.Latency(fwdHeaderBytes + len(key) + len(value))
	ackLat := pp.cfg.InterFabric.Latency(fwdHeaderBytes)
	reply := func(err error) {
		pp.PE.Send(home, src, sim.Duration(ackLat), func() { done(err) })
	}
	pp.PE.Send(src, home, sim.Duration(reqLat), func() {
		if _, err := pp.groups[home].Put(key, value, reply); err != nil {
			reply(fmt.Errorf("%w: %w", ErrForwardFailed, err))
		}
	})
}

// CommitAll drains every group's WAL executors, then FlushAll's gFLUSH, by
// scheduling the calls onto their own partitions; drive the engine afterward
// and inspect errors between runs via the returned slots.
func (pp *PartitionedPlane) CommitAll() []*error {
	out := make([]*error, len(pp.groups))
	for g := range pp.groups {
		g := g
		slot := new(error)
		out[g] = slot
		pp.PE.Partition(g).Schedule(0, func() {
			pp.groups[g].Commit(func(err error) {
				if err != nil {
					*slot = err
				}
			})
		})
	}
	return out
}

// Close stops every group's plane. Call between Run invocations only.
func (pp *PartitionedPlane) Close() {
	for _, pl := range pp.groups {
		pl.Close()
	}
}

func (pp *PartitionedPlane) String() string {
	return fmt.Sprintf("shard.PartitionedPlane{groups=%d shards/group=%d lookahead=%v}",
		len(pp.groups), pp.cfg.ShardsPerGroup, pp.PE.Lookahead())
}
