package shard

import (
	"fmt"
	"testing"
)

// Range-routing boundary semantics: shard i owns [boundaries[i-1],
// boundaries[i]) — a boundary key is the FIRST key of the upper shard, the
// key lexicographically just below it is the LAST key of the lower shard.
func TestRangeMapBoundaryKeys(t *testing.T) {
	m := NewRangeMap([]string{"g", "n", "t"})
	if m.Shards() != 4 {
		t.Fatalf("shards = %d", m.Shards())
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0},          // lowest possible key: first key of shard 0
		{"a", 0},         // interior of shard 0
		{"f\xff", 0},     // last representable key below boundary "g"
		{"g", 1},         // boundary key itself opens the upper shard
		{"g\x00", 1},     // immediate successor of the boundary
		{"m\xff\xff", 1}, // last key of shard 1
		{"n", 2},
		{"s", 2},
		{"t", 3},
		{"t\x00", 3},
		{"zzz", 3},      // far above the last boundary
		{"\xff\xff", 3}, // highest representable prefix
	}
	for _, c := range cases {
		if got := m.Route(c.key); got != c.want {
			t.Errorf("Route(%q) = %d, want %d", c.key, got, c.want)
		}
	}
}

// An empty boundary list is a single-shard map: every key routes to 0.
func TestRangeMapEmptyBoundaries(t *testing.T) {
	m := NewRangeMap(nil)
	if m.Shards() != 1 {
		t.Fatalf("shards = %d", m.Shards())
	}
	for _, k := range []string{"", "a", "zzz", "\xff"} {
		if got := m.Route(k); got != 0 {
			t.Errorf("Route(%q) = %d, want 0", k, got)
		}
	}
}

// An empty-string boundary is legal (shard 0 owns only the empty key's
// predecessors — i.e. nothing, every real key routes above it).
func TestRangeMapEmptyStringBoundary(t *testing.T) {
	m := NewRangeMap([]string{""})
	if got := m.Route(""); got != 1 {
		t.Fatalf("Route(\"\") = %d: boundary key belongs to the upper shard", got)
	}
	if got := m.Route("a"); got != 1 {
		t.Fatalf("Route(\"a\") = %d", got)
	}
}

func TestRangeMapUnsortedBoundariesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted boundaries must panic")
		}
	}()
	NewRangeMap([]string{"b", "a"})
}

func TestRangeMapDuplicateBoundariesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate boundaries must panic")
		}
	}()
	NewRangeMap([]string{"a", "a"})
}

// A single-shard hash map has one shard's vnodes on the ring; every key must
// route to shard 0 including hashes above the highest ring point (the
// wrap-around branch).
func TestHashMapSingleShardWrapAround(t *testing.T) {
	m := NewHashMap(1)
	for i := 0; i < 4096; i++ {
		if got := m.Route(fmt.Sprintf("key-%d", i)); got != 0 {
			t.Fatalf("Route(key-%d) = %d", i, got)
		}
	}
}

// Hash routing must cover every shard and be stable across map rebuilds.
func TestHashMapCoverageAndStability(t *testing.T) {
	a, b := NewHashMap(8), NewHashMap(8)
	hit := make([]int, 8)
	for i := 0; i < 4096; i++ {
		k := fmt.Sprintf("key-%d", i)
		ra, rb := a.Route(k), b.Route(k)
		if ra != rb {
			t.Fatalf("Route(%q) unstable: %d vs %d", k, ra, rb)
		}
		if ra < 0 || ra >= 8 {
			t.Fatalf("Route(%q) = %d out of range", k, ra)
		}
		hit[ra]++
	}
	for s, n := range hit {
		if n == 0 {
			t.Errorf("shard %d never routed", s)
		}
	}
}
