package shard

import (
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
	"hyperloop/internal/wal"
)

// An instrumented plane: every put lands in the per-shard counters and
// latency histograms, acks settle their spans, and the plane annotations
// reach the recorder. The hooks observe only, so the data path is identical
// to the uninstrumented tests around this one.
func TestPlaneInstrumentedPutsAndSpans(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.NewRegistry()
	rec := span.NewRecorder(eng)
	ready := false
	p := New(eng, planeCfg(Config{Shards: 2, Replicas: 3, Hosts: 4, Seed: 3,
		Metrics: reg, Spans: rec}), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		ready = true
	})
	if !eng.RunUntil(func() bool { return ready }, eng.Now().Add(sim.Second)) {
		t.Fatal("plane never opened")
	}
	defer p.Close()

	const keys = 24
	var ks []string
	for i := 0; i < keys; i++ {
		ks = append(ks, fmt.Sprintf("obs-key-%03d", i))
	}
	putAll(t, eng, p, ks, func(k string) []byte { return []byte("v-" + k) })

	var counted uint64
	for sid := 0; sid < p.Shards(); sid++ {
		lbl := fmt.Sprintf("s%d", sid)
		counted += reg.Counter("shard", "puts", lbl).Value()
		if reg.Counter("shard", "puts_refused", lbl).Value() != 0 {
			t.Fatalf("healthy plane refused puts on %s", lbl)
		}
	}
	if counted != keys {
		t.Fatalf("puts counted %d, want %d", counted, keys)
	}
	started, ended, dbl, _ := rec.Counts()
	if started != keys || ended != keys || dbl != 0 {
		t.Fatalf("span conservation: %d/%d dbl=%d", started, ended, dbl)
	}

	// One replica read and a plane-wide flush keep the read/flush paths in
	// the instrumented configuration too.
	var got []byte
	readDone := false
	p.GetFromReplica(ks[0], func(v []byte, err error) {
		if err != nil {
			t.Errorf("replica read: %v", err)
		}
		got, readDone = v, true
	})
	if !eng.RunUntil(func() bool { return readDone }, eng.Now().Add(sim.Second)) {
		t.Fatal("replica read stalled")
	}
	if string(got) != "v-"+ks[0] {
		t.Fatalf("replica read = %q", got)
	}
	flushed := false
	p.Flush(func(err error) {
		if err != nil {
			t.Errorf("flush: %v", err)
		}
		flushed = true
	})
	if !eng.RunUntil(func() bool { return flushed }, eng.Now().Add(sim.Second)) {
		t.Fatal("flush stalled")
	}
	if p.StaleSuppressed() != 0 || p.StaleServed() != 0 {
		t.Fatal("stale reads on a migration-free plane")
	}

	// Sampled export carries the shard series.
	reg.Sample(eng.Now())
	txt := reg.ExportText()
	for _, want := range []string{"hyperloop_shard_puts", "hyperloop_shard_epoch", "hyperloop_shard_put_latency_ns"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("export missing %s:\n%s", want, txt)
		}
	}

	// Surface accessors used by dashboards.
	if p.Shard(0).Group() == nil || p.Shard(0).DB() == nil {
		t.Fatal("shard accessors nil")
	}
	if p.Shard(0).LatencyEWMA() <= 0 {
		t.Fatal("latency EWMA never updated")
	}
	if p.Client() == nil || len(p.Pool()) != 4 {
		t.Fatalf("pool accessors: client=%v pool=%d", p.Client(), len(p.Pool()))
	}
	if s := p.String(); !strings.Contains(s, "shards=2") {
		t.Fatalf("plane string: %q", s)
	}
	if v := p.Map.Version(); v == 0 {
		t.Fatalf("map version = %d", v)
	}
	if hs := p.Map.HostShards(len(p.Pool())); len(hs) != len(p.Pool()) {
		t.Fatalf("host shard rows: %d", len(hs))
	}
	if ms := p.Map.String(); ms == "" {
		t.Fatal("map string empty")
	}
	rc := p.RegionConfig(0)
	if rc.LogSize <= 0 || rc.DataSize <= 0 || rc.DataBase != rc.LogBase+rc.LogSize {
		t.Fatalf("region config: %+v", rc)
	}
	for h := range p.Pool() {
		if p.EpochWord(h, 0) > 1 {
			t.Fatalf("fresh shard epoch word = %d", p.EpochWord(h, 0))
		}
	}
}

// planeCfg mirrors testPlane's defaulting for configs built inline.
func planeCfg(cfg Config) Config {
	if cfg.Fabric.JitterFrac == 0 {
		cfg.Fabric.JitterFrac = -1
	}
	if cfg.Group.Depth == 0 {
		cfg.Group.Depth = 256
	}
	return cfg
}

// Ring-full backpressure on an instrumented shard: the refusal must land in
// puts_refused and settle the span instead of leaking it unended.
func TestPlaneRefusedPutCountedAndSpanSettled(t *testing.T) {
	eng := sim.NewEngine()
	reg := metrics.NewRegistry()
	rec := span.NewRecorder(eng)
	ready := false
	p := New(eng, planeCfg(Config{Shards: 1, Replicas: 3, Hosts: 3, Seed: 5,
		LogSize: 4096, CommitEvery: 1 << 30, Metrics: reg, Spans: rec}), func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		ready = true
	})
	if !eng.RunUntil(func() bool { return ready }, eng.Now().Add(sim.Second)) {
		t.Fatal("plane never opened")
	}
	defer p.Close()

	refused := false
	for i := 0; i < 200 && !refused; i++ {
		_, err := p.Put(fmt.Sprintf("bp-%04d", i), []byte("vvvvvvvv"), nil)
		if err == wal.ErrLogFull {
			refused = true
		} else if err != nil {
			t.Fatalf("put: %v", err)
		}
	}
	if !refused {
		t.Fatal("ring never filled")
	}
	if got := reg.Counter("shard", "puts_refused", "s0").Value(); got != 1 {
		t.Fatalf("puts_refused = %d", got)
	}
	eng.RunFor(sim.Second) // let in-flight acks settle their spans
	started, ended, dbl, _ := rec.Counts()
	if started != ended || dbl != 0 {
		t.Fatalf("refusal leaked spans: %d/%d dbl=%d", started, ended, dbl)
	}
}
