// Package shard is the sharded multi-group data plane: it routes a keyspace
// across N HyperLoop groups placed on a shared simulated host pool, migrates
// live shards between replica sets with an epoch-fenced cutover, and
// rebalances hot shards off overloaded hosts. One group's throughput is
// capped by one chain; this layer is what turns a chain into a fleet
// (ROADMAP "sharding"; cf. Storm's partitioned RDMA dataplane).
//
// Layout: every node's store window is carved into one fixed region per
// shard. Region offsets are identical on every node (the §4.2 invariant the
// primitives rely on), so a shard's group replicates exactly its region and
// co-resident shards on one host never touch each other's bytes. Each region
// holds an epoch word, a replicated WAL, and a kvstore data area.
package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Mode selects how keys map to shards.
type Mode int

const (
	// Hash routes by consistent hashing: each shard owns vnodes on a ring,
	// a key goes to the shard owning the first vnode at or after its hash.
	Hash Mode = iota
	// Range routes by sorted key boundaries: shard i owns keys in
	// [boundary[i-1], boundary[i]).
	Range
)

func (m Mode) String() string {
	if m == Range {
		return "range"
	}
	return "hash"
}

// vnodesPerShard sizes the consistent-hash ring. 64 points per shard keeps
// the per-shard key share within a few percent of uniform.
const vnodesPerShard = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// Map is the versioned routing + placement table: keys to shards, shards to
// replica hosts. Every mutation bumps Version, so stale routing decisions
// are detectable. The Map is pure bookkeeping — it never touches the
// cluster — which keeps routing decisions trivially deterministic.
type Map struct {
	mode       Mode
	shards     int
	version    uint64
	ring       []ringPoint // Hash mode
	boundaries []string    // Range mode: len == shards-1, sorted
	placement  [][]int     // shard -> replica host indexes (into the pool)
}

// mix64 is a murmur3-style finalizer. Raw FNV values of similar short
// strings form tight arithmetic clusters (consecutive "s2/v17"-style labels
// differ by small multiples of the FNV prime), which wrecks ring dispersion;
// the avalanche pass restores uniformity.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

func keyHash(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

func pointHash(shard, vnode int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "s%d/v%d", shard, vnode)
	return mix64(h.Sum64())
}

// NewHashMap builds a consistent-hash map over `shards` shards with no
// placement (call Place or PlaceAll before use).
func NewHashMap(shards int) *Map {
	m := &Map{mode: Hash, shards: shards, placement: make([][]int, shards)}
	m.ring = make([]ringPoint, 0, shards*vnodesPerShard)
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			m.ring = append(m.ring, ringPoint{pointHash(s, v), s})
		}
	}
	sort.Slice(m.ring, func(i, j int) bool {
		if m.ring[i].hash != m.ring[j].hash {
			return m.ring[i].hash < m.ring[j].hash
		}
		return m.ring[i].shard < m.ring[j].shard
	})
	return m
}

// NewRangeMap builds a range-routed map: boundaries must be sorted and have
// exactly shards-1 entries; shard i owns [boundaries[i-1], boundaries[i]).
func NewRangeMap(boundaries []string) *Map {
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			panic(fmt.Sprintf("shard: boundaries not sorted at %d", i))
		}
	}
	shards := len(boundaries) + 1
	bs := make([]string, len(boundaries))
	copy(bs, boundaries)
	return &Map{mode: Range, shards: shards, boundaries: bs, placement: make([][]int, shards)}
}

// Shards returns the shard count.
func (m *Map) Shards() int { return m.shards }

// Mode returns the routing mode.
func (m *Map) Mode() Mode { return m.mode }

// Version returns the current map version; it bumps on every placement
// change (including migrations).
func (m *Map) Version() uint64 { return m.version }

// Route returns the shard owning key.
func (m *Map) Route(key string) int {
	if m.mode == Range {
		return sort.SearchStrings(m.boundaries, key+"\x00")
	}
	h := keyHash(key)
	i := sort.Search(len(m.ring), func(i int) bool { return m.ring[i].hash >= h })
	if i == len(m.ring) {
		i = 0
	}
	return m.ring[i].shard
}

// Placement returns shard s's replica host indexes (a copy).
func (m *Map) Placement(s int) []int {
	out := make([]int, len(m.placement[s]))
	copy(out, m.placement[s])
	return out
}

// Placements returns every shard's replica host indexes (a deep copy).
func (m *Map) Placements() [][]int {
	out := make([][]int, m.shards)
	for s := range out {
		out[s] = m.Placement(s)
	}
	return out
}

// Place sets shard s's replica hosts, enforcing anti-affinity (a host may
// not carry two replicas of the same shard), and bumps the version.
func (m *Map) Place(s int, hosts []int) error {
	seen := make(map[int]bool, len(hosts))
	for _, h := range hosts {
		if seen[h] {
			return fmt.Errorf("shard: placement of shard %d repeats host %d (anti-affinity)", s, h)
		}
		seen[h] = true
	}
	m.placement[s] = append([]int(nil), hosts...)
	m.version++
	return nil
}

// rendezvous scores host h for shard s (highest-random-weight hashing).
func rendezvous(s, h int) uint64 {
	hs := fnv.New64a()
	fmt.Fprintf(hs, "p%d/h%d", s, h)
	return mix64(hs.Sum64())
}

// PlaceAll assigns every shard `replicas` hosts from a pool of `hosts` by
// rendezvous hashing: shard s takes the `replicas` highest-scoring hosts.
// Distinct hosts by construction (anti-affinity), spread statistically
// evenly, and fully determined by (shard, host) — placement never depends
// on iteration order or time.
func (m *Map) PlaceAll(hosts, replicas int) error {
	if replicas > hosts {
		return fmt.Errorf("shard: %d replicas need at least that many hosts, have %d", replicas, hosts)
	}
	type scored struct {
		score uint64
		host  int
	}
	for s := 0; s < m.shards; s++ {
		sc := make([]scored, hosts)
		for h := 0; h < hosts; h++ {
			sc[h] = scored{rendezvous(s, h), h}
		}
		sort.Slice(sc, func(i, j int) bool {
			if sc[i].score != sc[j].score {
				return sc[i].score > sc[j].score
			}
			return sc[i].host < sc[j].host
		})
		picks := make([]int, replicas)
		for i := range picks {
			picks[i] = sc[i].host
		}
		if err := m.Place(s, picks); err != nil {
			return err
		}
	}
	return nil
}

// HostShards returns, for each host index in [0, hosts), the shards with a
// replica on it — the co-residency view the rebalancer works from.
func (m *Map) HostShards(hosts int) [][]int {
	out := make([][]int, hosts)
	for s, ps := range m.placement {
		for _, h := range ps {
			out[h] = append(out[h], s)
		}
	}
	return out
}

func (m *Map) String() string {
	return fmt.Sprintf("shard.Map{%s shards=%d v%d}", m.mode, m.shards, m.version)
}
