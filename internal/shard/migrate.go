package shard

import (
	"fmt"

	"hyperloop/internal/core"
	"hyperloop/internal/sim"
)

// Live shard migration.
//
// A shard moves between replica sets in five phases, all on the virtual
// clock and all through the group primitives:
//
//  1. quiesce  — PauseCommits on the shard's kvstore and wait for the
//     in-flight ExecuteAndAdvance to drain (CommitIdle). Appends keep
//     flowing to the source chain; only WAL *execution* stops, so the data
//     region below the allocation point is frozen.
//  2. bulk     — a destination group is built over the new hosts and the
//     allocated data region [DataBase, next) is copied in ChunkBytes
//     chunks of durable gWRITEs. The front-end's own window is the source
//     of truth, so the copy needs no source-chain cooperation and survives
//     a source-replica crash.
//  3. fence    — the shard's epoch word is bumped locally and pushed to
//     the destination with a durable gWRITE. The ack is the cutover fence:
//     from here the destination owns the epoch.
//  4. catch-up — the WAL is re-pointed at the destination group via
//     kvstore.Reattach (wal.Reattach bumps the generation, fencing every
//     ack still in flight from the source chain with ErrRetargeted, and
//     re-replicates the header plus all pending records). Records appended
//     during phases 1–3 therefore land on the destination and execute
//     there via gMEMCPY when commits resume.
//  5. cutover  — routing flips: the Map places the shard on the new hosts,
//     replica reads re-arm against the destination, the source group
//     closes, commits resume.
//
// A destination failure before the fence aborts cleanly: the destination
// group is closed, commits resume, and the shard stays on the source.
// After the fence the destination owns the shard; the migration completes
// through Reattach exactly like a recovery.

// quiescePoll is how often the migrator re-checks CommitIdle.
const quiescePoll = sim.Duration(200)

// migration tracks one in-flight shard move.
type migration struct {
	p         *Plane
	s         *Shard
	destHosts []int
	dest      *core.Group
	copyBase  int
	copyEnd   int
	chunks    int
	done      func(error)
}

// Migrate moves shard sid onto destHosts (indexes into the host pool) with
// a live, epoch-fenced migration. done fires when the cutover is complete
// (or the migration aborted). Returns an error synchronously only for
// invalid arguments.
func (p *Plane) Migrate(sid int, destHosts []int, done func(error)) error {
	if !p.open {
		return ErrNotOpen
	}
	if sid < 0 || sid >= len(p.shards) {
		return ErrBadShard
	}
	s := p.shards[sid]
	if s.migrating {
		return ErrMigrating
	}
	if len(destHosts) != p.cfg.Replicas {
		return fmt.Errorf("%w: want %d hosts, got %d", ErrBadDest, p.cfg.Replicas, len(destHosts))
	}
	seen := make(map[int]bool, len(destHosts))
	for _, h := range destHosts {
		if h < 0 || h >= len(p.pool) {
			return fmt.Errorf("%w: host %d out of pool", ErrBadDest, h)
		}
		if seen[h] {
			return fmt.Errorf("%w: host %d repeated (anti-affinity)", ErrBadDest, h)
		}
		seen[h] = true
	}
	if err := p.validateTiers(destHosts); err != nil {
		return err
	}
	s.migrating = true
	m := &migration{p: p, s: s, destHosts: append([]int(nil), destHosts...), done: done}
	p.note("shard %d: migrate %v -> %v: quiesce", sid, s.replicas, destHosts)
	s.db.PauseCommits()
	m.quiesce()
	return nil
}

// quiesce waits for the paused store's executor to go idle.
func (m *migration) quiesce() {
	if !m.s.db.CommitIdle() {
		m.p.Eng.Schedule(quiescePoll, m.quiesce)
		return
	}
	m.bulk()
}

// bulk builds the destination group and streams the allocated data region
// across in durable gWRITE chunks.
func (m *migration) bulk() {
	p, s := m.p, m.s
	m.dest = core.NewWithNodes(p.Eng, p.client, p.hostNodes(m.destHosts), p.cfg.Group)
	m.copyBase, m.copyEnd = s.db.DataUsed()
	p.note("shard %d: bulk copy [%#x,%#x) (%d bytes, %d-byte chunks)",
		s.ID, m.copyBase, m.copyEnd, m.copyEnd-m.copyBase, p.cfg.ChunkBytes)
	m.copyChunk(m.copyBase)
}

func (m *migration) copyChunk(off int) {
	if off >= m.copyEnd {
		m.p.note("shard %d: bulk copy done (%d chunks)", m.s.ID, m.chunks)
		m.fence()
		return
	}
	size := m.copyEnd - off
	if size > m.p.cfg.ChunkBytes {
		size = m.p.cfg.ChunkBytes
	}
	m.chunks++
	m.destWrite(off, size, func(err error) {
		if err != nil {
			m.abort(fmt.Errorf("shard %d: bulk copy at %#x: %w", m.s.ID, off, err))
			return
		}
		m.copyChunk(off + size)
	})
}

// destWrite issues one durable gWRITE on the destination group.
func (m *migration) destWrite(off, size int, done func(error)) {
	err := m.dest.GWrite(off, size, true, func(r core.Result) { done(r.Err) })
	if err != nil {
		done(err)
	}
}

// fence bumps the epoch word locally and pushes it durably to the
// destination; the ack is the cutover point.
func (m *migration) fence() {
	p, s := m.p, m.s
	if err := p.validateTiers(m.destHosts); err != nil {
		// A host was re-tiered during the bulk copy and the destination
		// chain no longer satisfies the tier constraint. The epoch word has
		// not moved yet, so this aborts as cleanly as a dest failure.
		m.abort(fmt.Errorf("shard %d: fence: %w", s.ID, err))
		return
	}
	next := s.epoch + 1
	p.client.StoreWrite(s.base+epochOff, epochBytes(next))
	p.note("shard %d: epoch fence %d -> %d", s.ID, s.epoch, next)
	m.destWrite(s.base+epochOff, 8, func(err error) {
		if err != nil {
			// The fence never reached the destination: the source still owns
			// the epoch. Roll the local word back and abort.
			p.client.StoreWrite(s.base+epochOff, epochBytes(s.epoch))
			m.abort(fmt.Errorf("shard %d: epoch fence: %w", s.ID, err))
			return
		}
		m.cutover(next)
	})
}

// cutover flips ownership to the destination and replays the WAL tail.
func (m *migration) cutover(epoch uint64) {
	p, s := m.p, m.s
	old := s.rep.g
	oldHosts := s.replicas
	s.epoch = epoch
	if p.cfg.Spans != nil {
		// The fence: spans issued against the previous epoch must not
		// straddle this instant unmarked (check.SpanConservation).
		p.cfg.Spans.Fence(s.ID, epoch)
	}
	for _, h := range oldHosts {
		if !contains(m.destHosts, h) {
			s.former[h] = true
		}
	}
	for _, h := range m.destHosts {
		delete(s.former, h)
	}
	s.rep.g = m.dest
	s.replicas = append([]int(nil), m.destHosts...)
	if err := p.Map.Place(s.ID, m.destHosts); err != nil {
		// Arguments were validated up front; a failure here is a bug.
		panic(err)
	}
	p.note("shard %d: cutover to %v (epoch %d), WAL catch-up %d pending",
		s.ID, m.destHosts, epoch, s.db.PendingCommits())
	s.db.Reattach(s.rep, func(err error) {
		if err != nil {
			// Destination died after taking the epoch. The shard is down
			// until an operator re-migrates it; do not fall back to the
			// source — it lost the fence.
			p.note("shard %d: catch-up failed: %v", s.ID, err)
			m.finish(fmt.Errorf("shard %d: WAL catch-up: %w", s.ID, err))
			return
		}
		s.db.ResetReplicaReads()
		s.db.EnableReplicaReads(p.client, p.hostNodes(m.destHosts))
		old.Close()
		s.migrations++
		p.note("shard %d: migration complete (epoch %d)", s.ID, epoch)
		m.finish(nil)
	})
}

// abort tears the destination down and leaves the shard on the source.
func (m *migration) abort(err error) {
	m.p.note("shard %d: migration aborted: %v", m.s.ID, err)
	if m.dest != nil {
		m.dest.Close()
	}
	m.finish(err)
}

// finish resumes commits and reports the outcome.
func (m *migration) finish(err error) {
	m.s.migrating = false
	m.s.db.ResumeCommits()
	if m.done != nil {
		m.done(err)
	}
}

func contains(a []int, x int) bool {
	for _, v := range a {
		if v == x {
			return true
		}
	}
	return false
}
