package shard

import (
	"errors"
	"sort"

	"hyperloop/internal/rdma"
)

// Tiered host pools. A pool host carries a Tier label describing its
// hardware profile (NIC and NVM speed via per-tier rdma.Config); a shard
// carries a Hint describing its service temperature. Placement, migration
// targets, and the rebalancer bias toward tier/hint affinity, with one hard
// constraint: a replica chain may never consist of edge-tier hosts only —
// edge capacity is elastic overflow, not a durability root.

// Tier classifies a pool host's hardware profile.
type Tier uint8

const (
	// TierGeneral is the default profile; an untiered pool is all-general.
	TierGeneral Tier = iota
	// TierEdge hosts have the fastest NIC/NVM path but are volatile
	// capacity, recruited by funded scale-out for hot tenants.
	TierEdge
	// TierArchive hosts have the slowest path and the most room; cold
	// shards settle there.
	TierArchive
)

func (t Tier) String() string {
	switch t {
	case TierEdge:
		return "edge"
	case TierArchive:
		return "archive"
	}
	return "general"
}

// Hint is a shard's service-temperature hint, biasing which tiers its
// replicas land on.
type Hint uint8

const (
	// HintNone prefers general hosts and keeps edge as a last resort.
	HintNone Hint = iota
	// HintHot recruits edge-tier hosts first (latency-critical, funded).
	HintHot
	// HintCold settles on archive-tier hosts first.
	HintCold
)

func (h Hint) String() string {
	switch h {
	case HintHot:
		return "hot"
	case HintCold:
		return "cold"
	}
	return "none"
}

// ErrAllEdge rejects a replica chain made entirely of edge-tier hosts.
var ErrAllEdge = errors.New("shard: replica chain would be all edge-tier")

// tierRank orders tiers by preference under a hint (0 = most preferred,
// 2 = last resort). Rank-2 tiers are also off-limits to the rebalancer.
func tierRank(h Hint, t Tier) int {
	switch h {
	case HintHot:
		switch t {
		case TierEdge:
			return 0
		case TierGeneral:
			return 1
		}
		return 2
	case HintCold:
		switch t {
		case TierArchive:
			return 0
		case TierGeneral:
			return 1
		}
		return 2
	}
	switch t {
	case TierGeneral:
		return 0
	case TierArchive:
		return 1
	}
	return 2
}

// tierOf looks a host up in a tier table, defaulting to general for hosts
// past the table (or a nil table — the untiered legacy pool).
func tierOf(tiers []Tier, h int) Tier {
	if h < len(tiers) {
		return tiers[h]
	}
	return TierGeneral
}

// allEdge reports whether every listed host is edge-tier. An untiered pool
// has no edge hosts, so it always reports false.
func allEdge(hosts []int, tiers []Tier) bool {
	if len(tiers) == 0 || len(hosts) == 0 {
		return false
	}
	for _, h := range hosts {
		if tierOf(tiers, h) != TierEdge {
			return false
		}
	}
	return true
}

// PickTiered returns shard s's `replicas` hosts from a pool of `hosts`,
// chosen by hint-biased rendezvous hashing: hosts sort by (tier preference
// under hint, rendezvous score, index), so the pick is a pure function of
// its arguments — map versions, placement history, and time never enter.
// Anti-affinity holds by construction and an all-edge chain is repaired by
// swapping the weakest pick for the best non-edge candidate.
func PickTiered(s, hosts, replicas int, tiers []Tier, hint Hint) []int {
	type scored struct {
		rank  int
		score uint64
		host  int
	}
	sc := make([]scored, hosts)
	for h := 0; h < hosts; h++ {
		sc[h] = scored{tierRank(hint, tierOf(tiers, h)), rendezvous(s, h), h}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].rank != sc[j].rank {
			return sc[i].rank < sc[j].rank
		}
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].host < sc[j].host
	})
	if replicas > hosts {
		replicas = hosts
	}
	picks := make([]int, replicas)
	for i := range picks {
		picks[i] = sc[i].host
	}
	if allEdge(picks, tiers) {
		for _, c := range sc[replicas:] {
			if tierOf(tiers, c.host) != TierEdge {
				picks[replicas-1] = c.host
				break
			}
		}
	}
	return picks
}

// PlaceAllTiered assigns every shard `replicas` hosts by hint-biased tiered
// rendezvous (PickTiered). hintOf may be nil (HintNone throughout).
func (m *Map) PlaceAllTiered(hosts, replicas int, tiers []Tier, hintOf func(shard int) Hint) error {
	if replicas > hosts {
		return errors.New("shard: more replicas than hosts")
	}
	for s := 0; s < m.shards; s++ {
		hint := HintNone
		if hintOf != nil {
			hint = hintOf(s)
		}
		if err := m.Place(s, PickTiered(s, hosts, replicas, tiers, hint)); err != nil {
			return err
		}
	}
	return nil
}

// Tiers returns the plane's pool tier labels (nil when untiered).
func (p *Plane) Tiers() []Tier {
	if p.tiers == nil {
		return nil
	}
	return append([]Tier(nil), p.tiers...)
}

// HostTier returns pool host h's tier.
func (p *Plane) HostTier(h int) Tier { return tierOf(p.tiers, h) }

// SetHostTier relabels pool host h mid-run (an operator re-tiering a
// machine). Placement is not re-evaluated eagerly, but any in-flight
// migration re-validates the tier constraint at its fence and aborts if the
// destination chain has become all-edge.
func (p *Plane) SetHostTier(h int, t Tier) {
	if p.tiers == nil {
		p.tiers = make([]Tier, len(p.pool))
	}
	p.tiers[h] = t
	p.note("host %d re-tiered to %v", h, t)
}

// validateTiers rejects destination chains that violate the tier
// constraint; an untiered plane accepts everything.
func (p *Plane) validateTiers(hosts []int) error {
	if allEdge(hosts, p.tiers) {
		return ErrAllEdge
	}
	return nil
}

// tierNICFor resolves the NIC profile for cluster node i (node 0 is the
// front-end client and keeps the base profile; host h = node h+1 takes its
// tier's override when one is configured).
func tierNICFor(base rdma.Config, tiers []Tier, overrides map[Tier]rdma.Config, i int) rdma.Config {
	if i == 0 {
		return base
	}
	if c, ok := overrides[tierOf(tiers, i-1)]; ok {
		return c
	}
	return base
}
