package shard

import (
	"fmt"
	"strings"
	"testing"

	"hyperloop/internal/core"
	"hyperloop/internal/sim"
)

// mixedTiers labels a pool: the last `edge` hosts edge-tier, the one before
// them archive, the rest general.
func mixedTiers(hosts, edge int) []Tier {
	tiers := make([]Tier, hosts)
	for h := hosts - edge; h < hosts; h++ {
		tiers[h] = TierEdge
	}
	if hosts-edge-1 >= 0 {
		tiers[hosts-edge-1] = TierArchive
	}
	return tiers
}

func tierCounts(hosts []int, tiers []Tier) map[Tier]int {
	out := map[Tier]int{}
	for _, h := range hosts {
		out[tierOf(tiers, h)]++
	}
	return out
}

func TestPickTieredHintBias(t *testing.T) {
	const hosts, replicas = 10, 3
	tiers := mixedTiers(hosts, 3) // 0-5 general, 6 archive, 7-9 edge
	for s := 0; s < 8; s++ {
		// HintNone keeps edge hosts out entirely: 6 general + 1 archive
		// outrank them.
		if c := tierCounts(PickTiered(s, hosts, replicas, tiers, HintNone), tiers); c[TierEdge] != 0 {
			t.Fatalf("shard %d: HintNone placed on edge: %v", s, c)
		}
		// HintHot recruits edge first but never an all-edge chain.
		picks := PickTiered(s, hosts, replicas, tiers, HintHot)
		c := tierCounts(picks, tiers)
		if c[TierEdge] != 2 {
			t.Fatalf("shard %d: HintHot picked %v, want exactly 2 of 3 edge (no-all-edge)", s, c)
		}
		// HintCold pins the lone archive host.
		if c := tierCounts(PickTiered(s, hosts, replicas, tiers, HintCold), tiers); c[TierArchive] != 1 {
			t.Fatalf("shard %d: HintCold skipped archive: %v", s, c)
		}
	}
}

func TestPickTieredAntiAffinity(t *testing.T) {
	tiers := mixedTiers(12, 4)
	for s := 0; s < 16; s++ {
		for _, hint := range []Hint{HintNone, HintHot, HintCold} {
			picks := PickTiered(s, 12, 3, tiers, hint)
			seen := map[int]bool{}
			for _, h := range picks {
				if seen[h] {
					t.Fatalf("shard %d hint %v: host %d repeated in %v", s, hint, h, picks)
				}
				seen[h] = true
			}
		}
	}
}

func TestPickTieredAllEdgePoolUnsatisfiable(t *testing.T) {
	// A pool with nothing but edge hosts can't honor the constraint; the
	// pick still returns a chain (validation rejects it downstream).
	tiers := []Tier{TierEdge, TierEdge, TierEdge, TierEdge}
	picks := PickTiered(0, 4, 3, tiers, HintHot)
	if len(picks) != 3 || !allEdge(picks, tiers) {
		t.Fatalf("picks = %v", picks)
	}
}

// TestPickTieredDeterministicAcrossMapVersions: hint-biased routing is a
// pure function of (shard, pool, tiers, hint) — placement history and map
// version bumps never shift it.
func TestPickTieredDeterministicAcrossMapVersions(t *testing.T) {
	const hosts, replicas = 10, 3
	tiers := mixedTiers(hosts, 3)
	m := NewHashMap(6)
	if err := m.PlaceAllTiered(hosts, replicas, tiers, func(s int) Hint { return Hint(s % 3) }); err != nil {
		t.Fatal(err)
	}
	before := fmt.Sprint(m.Placements())
	v := m.Version()

	// Churn the map: re-place two shards, bumping the version.
	if err := m.Place(1, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Place(1, PickTiered(1, hosts, replicas, tiers, HintHot)); err != nil {
		t.Fatal(err)
	}
	if m.Version() == v {
		t.Fatal("version did not bump")
	}

	// Re-deriving every placement from scratch reproduces the original.
	m2 := NewHashMap(6)
	if err := m2.PlaceAllTiered(hosts, replicas, tiers, func(s int) Hint { return Hint(s % 3) }); err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprint(m2.Placements()); got != before {
		t.Fatalf("tiered placement drifted across map generations:\n%s\n%s", got, before)
	}
	for s := 0; s < 6; s++ {
		a := fmt.Sprint(PickTiered(s, hosts, replicas, tiers, HintHot))
		b := fmt.Sprint(PickTiered(s, hosts, replicas, tiers, HintHot))
		if a != b {
			t.Fatalf("PickTiered(%d) unstable: %s vs %s", s, a, b)
		}
	}
}

func TestMigrateRejectsAllEdgeDest(t *testing.T) {
	tiers := mixedTiers(8, 3) // hosts 5,6,7 edge... (4 archive)
	tiers[4] = TierEdge       // now 4,5,6,7 edge: an all-edge dest is possible
	eng, p := testPlane(t, Config{
		Shards: 2, Replicas: 3, Hosts: 8, Seed: 19, HostTiers: tiers,
	})
	defer p.Close()
	_ = eng
	err := p.Migrate(0, []int{4, 5, 6}, nil)
	if err == nil || !strings.Contains(err.Error(), "all edge-tier") {
		t.Fatalf("all-edge destination accepted: %v", err)
	}
}

// TestMigrationAbortsOnMidflightRetier: an operator re-tiers a destination
// host to edge while the bulk copy runs, making the chain all-edge. The
// fence re-validates and the migration aborts cleanly — epoch unmoved,
// shard still serving from the source.
func TestMigrationAbortsOnMidflightRetier(t *testing.T) {
	tiers := mixedTiers(8, 2) // hosts 6,7 edge; 5 archive; 0-4 general
	eng, p := testPlane(t, Config{
		Shards: 2, Replicas: 3, Hosts: 8,
		ChunkBytes: 1024, Seed: 13, HostTiers: tiers,
		Group: core.Config{Depth: 256, OpTimeout: 2 * sim.Millisecond},
	})
	defer p.Close()

	const sid = 1
	keys := keysFor(p, sid, 60)
	putAll(t, eng, p, keys, func(k string) []byte { return []byte("v:" + k) })

	// Destination: both edge hosts plus one free general host.
	cur := p.Map.Placement(sid)
	gen := -1
	for h := 0; h < 5; h++ {
		if !contains(cur, h) {
			gen = h
			break
		}
	}
	if gen < 0 {
		t.Fatal("no free general host")
	}
	dest := []int{6, 7, gen}
	for _, h := range dest {
		if contains(cur, h) {
			t.Fatalf("dest %v overlaps current %v", dest, cur)
		}
	}

	oldHosts := p.Shard(sid).Replicas()
	var migErr error
	migDone := false
	if err := p.Migrate(sid, dest, func(err error) {
		migErr = err
		migDone = true
	}); err != nil {
		t.Fatal(err)
	}
	// Mid-copy, the general host is re-tiered to edge: dest becomes
	// all-edge and the fence must refuse it.
	p.SetHostTier(gen, TierEdge)

	if !eng.RunUntil(func() bool { return migDone }, eng.Now().Add(10*sim.Second)) {
		t.Fatal("migration neither completed nor aborted")
	}
	if migErr == nil || !strings.Contains(migErr.Error(), "all edge-tier") {
		t.Fatalf("migration error = %v, want all-edge tier violation", migErr)
	}
	s := p.Shard(sid)
	if s.Epoch() != 0 || s.Migrations() != 0 {
		t.Fatalf("epoch=%d migrations=%d after tier abort, want 0/0", s.Epoch(), s.Migrations())
	}
	if fmt.Sprint(s.Replicas()) != fmt.Sprint(oldHosts) {
		t.Fatalf("replicas %v after abort, want %v", s.Replicas(), oldHosts)
	}
	// Still serving on the source chain.
	more := keysFor(p, sid, 70)[60:]
	putAll(t, eng, p, more, func(k string) []byte { return []byte("v:" + k) })
	for _, k := range append(append([]string{}, keys...), more...) {
		if v, ok := p.Get(k); !ok || string(v) != "v:"+k {
			t.Fatalf("key %q lost after tier abort", k)
		}
	}
}

// TestRebalancerRespectsTiers: with the pool tiered and the shard unhinted,
// the rebalancer must not move it onto an edge host even when edge is the
// least loaded — and must still fix the hot spot using an allowed host.
func TestRebalancerRespectsTiers(t *testing.T) {
	tiers := make([]Tier, 8)
	tiers[6], tiers[7] = TierEdge, TierEdge // idle and tempting
	eng, p := testPlane(t, Config{
		Shards: 4, Replicas: 3, Hosts: 8, Seed: 17,
		RegionSize: 4 << 20, LogSize: 1 << 20,
		HostTiers: tiers,
	})
	defer p.Close()

	reb := p.StartRebalancer(RebalanceConfig{
		Every:         200 * sim.Microsecond,
		MinOps:        32,
		Imbalance:     1.5,
		MaxMigrations: 1,
	})

	const hot = 2
	before := fmt.Sprint(p.Map.Placement(hot))
	keys := keysFor(p, hot, 400)
	acked := 0
	for _, k := range keys {
		if _, err := p.Put(k, []byte("hot"), func(err error) {
			if err != nil {
				t.Errorf("put: %v", err)
			}
			acked++
		}); err != nil {
			t.Fatal(err)
		}
	}
	migrated := func() bool { return reb.Moves() >= 1 && !p.Shard(hot).Migrating() }
	if !eng.RunUntil(func() bool { return acked >= len(keys) && migrated() },
		eng.Now().Add(10*sim.Second)) {
		t.Fatalf("acked=%d moves=%d: rebalancer never triggered", acked, reb.Moves())
	}
	after := p.Map.Placement(hot)
	if fmt.Sprint(after) == before {
		t.Fatalf("hot shard placement unchanged: %v", after)
	}
	for _, h := range after {
		if tierOf(tiers, h) == TierEdge {
			t.Fatalf("unhinted shard rebalanced onto edge host %d: %v", h, after)
		}
	}
}
