package shard

import (
	"errors"
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/metrics"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
	"hyperloop/internal/wal"
)

// Errors surfaced by the plane.
var (
	ErrBadShard    = errors.New("shard: no such shard")
	ErrMigrating   = errors.New("shard: shard already migrating")
	ErrBadDest     = errors.New("shard: bad migration destination")
	ErrNotOpen     = errors.New("shard: plane not open")
	ErrShardFailed = errors.New("shard: owning group failed")
)

// Per-region layout: the epoch word sits at the region base, the WAL after a
// cache-line pad, the data area after the WAL.
const (
	epochOff  = 0
	regionHdr = 64
)

// Config sizes the sharded data plane.
type Config struct {
	// Shards is the shard count (default 4).
	Shards int
	// Replicas is the chain length per shard (default 3).
	Replicas int
	// Hosts is the replica host-pool size (default max(Replicas,
	// 2*Shards*Replicas/3) — enough spread for rebalancing). The cluster
	// carries Hosts+1 nodes: node 0 is the shared front-end client.
	Hosts int
	// RegionSize is the store bytes each shard owns on every node
	// (default 1 MiB).
	RegionSize int
	// LogSize is the per-shard WAL size (default RegionSize/4).
	LogSize int
	// ChunkBytes is the bulk-copy granularity for migrations (default 64 KiB).
	ChunkBytes int
	// Boundaries switches the map to range routing with these sorted
	// boundaries (len == Shards-1); nil selects consistent hashing.
	Boundaries []string
	// Fabric tunes the network when New builds the cluster itself (Open
	// ignores it — the caller's cluster wins).
	Fabric fabric.Config
	// NIC tunes every node's NIC when New builds the cluster itself (Open
	// ignores it, like Fabric). The zero value keeps legacy timing; setting
	// DoorbellCost charges per-ring MMIO and makes WQE-chain fusion pay off.
	NIC rdma.Config
	// Group tunes every shard's HyperLoop group.
	Group core.Config
	// CommitEvery is the per-shard kvstore commit policy (default 1).
	CommitEvery int
	// CRAQ enables clean/dirty read serving at every chain replica
	// (kvstore.EnableCRAQ): clean keys are read from the queried replica
	// directly, dirty keys forward to the tail. Off by default — CRAQ runs
	// are a distinct configuration, so legacy byte-streams are untouched.
	CRAQ bool
	// Seed feeds the cluster and the per-shard stores.
	Seed int64
	// HostTiers labels each pool host with a hardware tier (nil = the
	// legacy uniform general pool). With tiers set and no explicit
	// placement, shards place via hint-biased tiered rendezvous, and every
	// migration destination must satisfy the no-all-edge constraint.
	HostTiers []Tier
	// TierNIC overrides the NIC profile per tier when New builds the
	// cluster itself (edge faster, archive slower). Open ignores it, like
	// Fabric and NIC — the caller's cluster wins.
	TierNIC map[Tier]rdma.Config
	// Hints supplies each shard's service-temperature hint for tiered
	// placement and the rebalancer (nil = HintNone throughout).
	Hints func(shard int) Hint
	// Metrics attaches the observability registry (nil = disabled). Series
	// are labeled "s<id>" per shard — cardinality is bounded by the shard
	// count, never the keyspace.
	Metrics *metrics.Registry
	// Spans attaches op-span recording: every Put opens a span tagged with
	// its shard and issue epoch, and migration cutovers record epoch fences
	// (nil = disabled). Observation-only either way.
	Spans *span.Recorder
}

func (c *Config) fill() {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Hosts <= 0 {
		c.Hosts = c.Shards * c.Replicas * 2 / 3
		if c.Hosts < c.Replicas {
			c.Hosts = c.Replicas
		}
	}
	if c.RegionSize <= 0 {
		c.RegionSize = 1 << 20
	}
	if c.LogSize <= 0 {
		c.LogSize = c.RegionSize / 4
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Boundaries != nil && len(c.Boundaries) != c.Shards-1 {
		panic(fmt.Sprintf("shard: %d boundaries for %d shards", len(c.Boundaries), c.Shards))
	}
}

// groupRep adapts a shard's *current* group to wal.Replicator; migration
// swaps g underneath while the WAL and kvstore keep their handle (the
// switch-group pattern wal.Reattach's generation fencing is built for).
type groupRep struct{ g *core.Group }

func wrapRes(done func(error)) func(core.Result) {
	if done == nil {
		return nil
	}
	return func(r core.Result) { done(r.Err) }
}

func (r *groupRep) Write(off, size int, durable bool, done func(error)) {
	if err := r.g.GWrite(off, size, durable, wrapRes(done)); err != nil && done != nil {
		done(err)
	}
}

func (r *groupRep) Memcpy(dst, src, size int, durable bool, done func(error)) {
	if err := r.g.GMemcpy(dst, src, size, durable, wrapRes(done)); err != nil && done != nil {
		done(err)
	}
}

func (r *groupRep) Flush(done func(error)) {
	if err := r.g.GFlush(wrapRes(done)); err != nil && done != nil {
		done(err)
	}
}

// Shard is one keyspace partition: a region of every store window, a
// HyperLoop group over its current replica set, and a kvstore head.
type Shard struct {
	ID    int
	plane *Plane
	base  int // region base offset in the store window

	epoch    uint64 // bumps at every migration cutover
	rep      *groupRep
	db       *kvstore.DB
	replicas []int // current replica host indexes (mirrors Map.Placement)

	migrating  bool
	migrations uint64

	ops       uint64 // lifetime routed write ops
	windowOps uint64 // write ops since the last detector scan
	latEWMA   sim.Duration
	former    map[int]bool // host indexes that owned this shard before a cutover

	// observability handles (nil when the plane is uninstrumented)
	putCount   *metrics.Counter
	putRefused *metrics.Counter
	putLat     *metrics.Histogram
}

// Epoch returns the shard's current epoch (bumped at every cutover).
func (s *Shard) Epoch() uint64 { return s.epoch }

// Migrating reports whether a migration is in flight.
func (s *Shard) Migrating() bool { return s.migrating }

// Migrations counts completed cutovers.
func (s *Shard) Migrations() uint64 { return s.migrations }

// Ops returns lifetime routed write operations.
func (s *Shard) Ops() uint64 { return s.ops }

// LatencyEWMA returns the exponentially weighted put latency.
func (s *Shard) LatencyEWMA() sim.Duration { return s.latEWMA }

// Group returns the shard's current HyperLoop group.
func (s *Shard) Group() *core.Group { return s.rep.g }

// DB returns the shard's kvstore head.
func (s *Shard) DB() *kvstore.DB { return s.db }

// Replicas returns the current replica host indexes.
func (s *Shard) Replicas() []int { return append([]int(nil), s.replicas...) }

// FormerOwners returns host indexes that held this shard before a completed
// migration (and no longer do) — the set the epoch-fence check audits.
func (s *Shard) FormerOwners() []int {
	var out []int
	for h := range s.former {
		out = append(out, h)
	}
	sortInts(out)
	return out
}

func sortInts(a []int) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

// epochBytes renders e as the store's epoch-word image.
func epochBytes(e uint64) []byte {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(e >> (8 * i))
	}
	return b
}

// Event is one recorded plane action (migration phases, rebalance
// decisions) at virtual time At.
type Event struct {
	At   sim.Time
	What string
}

func (e Event) String() string { return fmt.Sprintf("%v %s", e.At, e.What) }

// Plane is the sharded data plane: a shared front-end (cluster node 0)
// driving one HyperLoop group per shard over a pooled replica fleet.
type Plane struct {
	Eng    *sim.Engine
	Cl     *cluster.Cluster
	Map    *Map
	cfg    Config
	client *cluster.Node
	pool   []*cluster.Node // replica hosts (cluster nodes 1..Hosts)
	tiers  []Tier          // pool tier labels (nil = untiered)
	shards []*Shard

	reb      *Rebalancer
	timeline []Event

	// staleSuppressed counts replica reads that raced a cutover and were
	// re-routed instead of served; staleServed counts reads actually
	// delivered from a superseded epoch (the invariant: always zero).
	staleSuppressed uint64
	staleServed     uint64

	open bool
}

// StoreSize returns the store window each node needs for this config.
func StoreSize(cfg Config) int {
	cfg.fill()
	return cfg.Shards * cfg.RegionSize
}

// New builds a sharded plane over its own cluster: 1 front-end client +
// cfg.Hosts pooled replica hosts, cfg.Shards groups placed by rendezvous
// hashing (or an explicit placement via Open). done fires when every
// shard's (empty) log header is durable on its replicas.
func New(eng *sim.Engine, cfg Config, done func(error)) *Plane {
	cfg.fill()
	ccfg := cluster.Config{
		Nodes:     cfg.Hosts + 1,
		StoreSize: StoreSize(cfg),
		Fabric:    cfg.Fabric,
		NIC:       cfg.NIC,
		Seed:      cfg.Seed,
	}
	if len(cfg.TierNIC) > 0 {
		base, tiers, overrides := cfg.NIC, cfg.HostTiers, cfg.TierNIC
		ccfg.NodeNIC = func(i int) rdma.Config { return tierNICFor(base, tiers, overrides, i) }
	}
	return Open(eng, cluster.New(eng, ccfg), nil, cfg, done)
}

// Open builds the plane over an existing cluster (node 0 = front-end,
// nodes 1.. = host pool). placement optionally pins every shard's replica
// hosts (indexes into the pool); nil selects rendezvous placement. done
// fires when every shard's log header is durable.
func Open(eng *sim.Engine, cl *cluster.Cluster, placement [][]int, cfg Config, done func(error)) *Plane {
	cfg.fill()
	p := &Plane{
		Eng:    eng,
		Cl:     cl,
		cfg:    cfg,
		client: cl.Client(),
		pool:   cl.Replicas(),
	}
	if len(p.pool) < cfg.Hosts {
		panic(fmt.Sprintf("shard: cluster has %d hosts, config needs %d", len(p.pool), cfg.Hosts))
	}
	if len(cfg.HostTiers) > 0 {
		if len(cfg.HostTiers) != cfg.Hosts {
			panic(fmt.Sprintf("shard: %d host tiers for %d hosts", len(cfg.HostTiers), cfg.Hosts))
		}
		p.tiers = append([]Tier(nil), cfg.HostTiers...)
	}
	if cfg.Boundaries != nil {
		p.Map = NewRangeMap(cfg.Boundaries)
	} else {
		p.Map = NewHashMap(cfg.Shards)
	}
	if placement != nil {
		if len(placement) != cfg.Shards {
			panic(fmt.Sprintf("shard: placement for %d shards, config has %d", len(placement), cfg.Shards))
		}
		for s, hosts := range placement {
			if len(hosts) != cfg.Replicas {
				panic(fmt.Sprintf("shard: shard %d placed on %d hosts, want %d", s, len(hosts), cfg.Replicas))
			}
			if err := p.Map.Place(s, hosts); err != nil {
				panic(err)
			}
		}
	} else if p.tiers != nil {
		if err := p.Map.PlaceAllTiered(cfg.Hosts, cfg.Replicas, p.tiers, cfg.Hints); err != nil {
			panic(err)
		}
	} else if err := p.Map.PlaceAll(cfg.Hosts, cfg.Replicas); err != nil {
		panic(err)
	}

	remaining := cfg.Shards
	var firstErr error
	oneOpen := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
		remaining--
		if remaining == 0 {
			p.open = firstErr == nil
			if done != nil {
				done(firstErr)
			}
		}
	}
	for sid := 0; sid < cfg.Shards; sid++ {
		p.shards = append(p.shards, p.buildShard(sid, oneOpen))
	}
	if cfg.Metrics != nil {
		cfg.Metrics.GaugeFunc("shard", "stale_suppressed", "plane", func() float64 {
			return float64(p.staleSuppressed)
		})
		cfg.Metrics.GaugeFunc("shard", "stale_served", "plane", func() float64 {
			return float64(p.staleServed)
		})
	}
	return p
}

// hostNodes maps host indexes to their cluster nodes.
func (p *Plane) hostNodes(hosts []int) []*cluster.Node {
	out := make([]*cluster.Node, len(hosts))
	for i, h := range hosts {
		out[i] = p.pool[h]
	}
	return out
}

// buildShard wires shard sid's group and store over its placed hosts.
func (p *Plane) buildShard(sid int, opened func(error)) *Shard {
	hosts := p.Map.Placement(sid)
	s := &Shard{
		ID:       sid,
		plane:    p,
		base:     sid * p.cfg.RegionSize,
		replicas: hosts,
		former:   make(map[int]bool),
	}
	s.rep = &groupRep{g: core.NewWithNodes(p.Eng, p.client, p.hostNodes(hosts), p.cfg.Group)}
	// The epoch word starts at 0 everywhere; write it locally so the head's
	// view is explicit rather than implicit zeros.
	p.client.StoreWrite(s.base+epochOff, epochBytes(0))
	s.db = kvstore.Open(wal.NodeStore{N: p.client}, s.rep, kvstore.Config{
		LogBase:     s.base + regionHdr,
		LogSize:     p.cfg.LogSize,
		DataBase:    s.base + regionHdr + p.cfg.LogSize,
		DataSize:    p.cfg.RegionSize - regionHdr - p.cfg.LogSize,
		CommitEvery: p.cfg.CommitEvery,
		Seed:        p.cfg.Seed + int64(sid)*7919,
	}, opened)
	s.db.EnableReplicaReads(p.client, p.hostNodes(hosts))
	if p.cfg.CRAQ {
		s.db.EnableCRAQ()
	}
	if p.cfg.Metrics != nil {
		lbl := fmt.Sprintf("s%d", sid)
		s.putCount = p.cfg.Metrics.Counter("shard", "puts", lbl)
		s.putRefused = p.cfg.Metrics.Counter("shard", "puts_refused", lbl)
		s.putLat = p.cfg.Metrics.Histogram("shard", "put_latency_ns", lbl)
		p.cfg.Metrics.GaugeFunc("shard", "epoch", lbl, func() float64 { return float64(s.epoch) })
		p.cfg.Metrics.GaugeFunc("shard", "migrations", lbl, func() float64 { return float64(s.migrations) })
		if p.cfg.CRAQ {
			p.cfg.Metrics.GaugeFunc("shard", "craq_clean_reads", lbl, func() float64 {
				c, _ := s.db.CRAQStats()
				return float64(c)
			})
			p.cfg.Metrics.GaugeFunc("shard", "craq_dirty_reads", lbl, func() float64 {
				_, d := s.db.CRAQStats()
				return float64(d)
			})
		}
	}
	return s
}

// RegionConfig returns shard sid's kvstore layout — what a checker needs
// to Rebuild the shard's region from any node's bytes.
func (p *Plane) RegionConfig(sid int) kvstore.Config {
	base := sid * p.cfg.RegionSize
	return kvstore.Config{
		LogBase:  base + regionHdr,
		LogSize:  p.cfg.LogSize,
		DataBase: base + regionHdr + p.cfg.LogSize,
		DataSize: p.cfg.RegionSize - regionHdr - p.cfg.LogSize,
	}
}

// EpochWord reads shard sid's epoch word as stored on pool host h.
func (p *Plane) EpochWord(h, sid int) uint64 {
	b := p.pool[h].StoreBytes(sid*p.cfg.RegionSize+epochOff, 8)
	var e uint64
	for i := 7; i >= 0; i-- {
		e = e<<8 | uint64(b[i])
	}
	return e
}

// note records a timeline event at the current virtual time.
func (p *Plane) note(format string, args ...any) {
	what := fmt.Sprintf(format, args...)
	p.timeline = append(p.timeline, Event{At: p.Eng.Now(), What: what})
	if p.cfg.Spans != nil {
		p.cfg.Spans.Annotate("shard", what)
	}
}

// Timeline returns the recorded plane events (migration phases, rebalance
// decisions) in order.
func (p *Plane) Timeline() []Event {
	out := make([]Event, len(p.timeline))
	copy(out, p.timeline)
	return out
}

// Shards returns the shard count.
func (p *Plane) Shards() int { return len(p.shards) }

// Shard returns shard sid.
func (p *Plane) Shard(sid int) *Shard { return p.shards[sid] }

// Client returns the front-end node.
func (p *Plane) Client() *cluster.Node { return p.client }

// Pool returns the replica host pool (host index i = cluster node i+1).
func (p *Plane) Pool() []*cluster.Node { return p.pool }

// StaleSuppressed counts replica reads re-routed because a cutover landed
// while they were in flight.
func (p *Plane) StaleSuppressed() uint64 { return p.staleSuppressed }

// StaleServed counts reads delivered from a superseded epoch — the
// stale-epoch invariant demands this stays zero.
func (p *Plane) StaleServed() uint64 { return p.staleServed }

// Route returns the shard owning key.
func (p *Plane) Route(key string) *Shard { return p.shards[p.Map.Route(key)] }

// Put stores key=value on the owning shard's replica chain; done fires at
// the shard's durability point. Returns the owning shard id.
func (p *Plane) Put(key string, value []byte, done func(error)) (int, error) {
	if !p.open {
		return 0, ErrNotOpen
	}
	s := p.Route(key)
	s.ops++
	s.windowOps++
	start := p.Eng.Now()
	issueEpoch := s.epoch
	var sp *span.Span
	if p.cfg.Spans != nil {
		sp = p.cfg.Spans.Start("shard-put", fmt.Sprintf("s%d", s.ID))
		sp.SetShardEpoch(s.ID, issueEpoch)
	}
	if s.putCount != nil {
		s.putCount.Inc()
	}
	err := s.db.Put(key, value, func(err error) {
		if err == nil {
			lat := p.Eng.Now().Sub(start)
			if s.latEWMA == 0 {
				s.latEWMA = lat
			} else {
				s.latEWMA = (s.latEWMA*7 + lat) / 8
			}
			if s.putLat != nil {
				s.putLat.Observe(lat)
			}
		}
		if sp != nil {
			if s.epoch != issueEpoch {
				// The op's ack observed a cutover; the span is explicitly
				// marked so the fence invariant knows this was seen.
				sp.MarkCrossedFence()
			}
			if err != nil {
				sp.Annotate("error", err.Error())
			}
			sp.End()
		}
		if done != nil {
			done(err)
		}
	})
	if err != nil {
		// Synchronous refusal (ring-full backpressure): the callback never
		// fires, so settle the span and counters here.
		if s.putRefused != nil {
			s.putRefused.Inc()
		}
		if sp != nil {
			sp.Annotate("error", err.Error())
			sp.End()
		}
	}
	return s.ID, err
}

// Delete removes key from its owning shard.
func (p *Plane) Delete(key string, done func(error)) (int, error) {
	if !p.open {
		return 0, ErrNotOpen
	}
	s := p.Route(key)
	s.ops++
	s.windowOps++
	return s.ID, s.db.Delete(key, done)
}

// Get reads key from the owning shard's head memtable.
func (p *Plane) Get(key string) ([]byte, bool) {
	s := p.Route(key)
	return s.db.Get(key)
}

// GetFromReplica reads key's committed value from one of the owning
// shard's replicas via a one-sided RDMA READ, validating the shard epoch:
// if a migration cut over while the read was in flight, the stale result is
// suppressed and the read retried against the new owner group — a key is
// never served from a superseded epoch.
func (p *Plane) GetFromReplica(key string, done func([]byte, error)) {
	p.getFromReplica(key, 0, done)
}

const maxReadRetries = 3

func (p *Plane) getFromReplica(key string, attempt int, done func([]byte, error)) {
	s := p.Route(key)
	issueEpoch := s.epoch
	s.db.GetFromReplica(key, 0, func(val []byte, err error) {
		if s.epoch != issueEpoch {
			// Cutover raced the read: the bytes came from the old owner.
			p.staleSuppressed++
			if attempt+1 < maxReadRetries {
				p.getFromReplica(key, attempt+1, done)
				return
			}
			p.staleServed++ // would have to serve stale — counted, never hidden
		}
		done(val, err)
	})
}

// ReadCRAQ reads key from replica r of its owning shard under the CRAQ
// clean/dirty protocol (Config.CRAQ must be set): clean keys are served from
// r's NVM directly, dirty keys forward to the tail and serve the newest
// acked version. r = -1 selects the tail. The shard epoch is validated the
// same way as GetFromReplica — a read racing a migration cutover is
// re-issued rather than served stale.
func (p *Plane) ReadCRAQ(key string, r int, done func(val []byte, clean bool, err error)) {
	if !p.open {
		done(nil, false, ErrNotOpen)
		return
	}
	p.readCRAQ(key, r, 0, done)
}

func (p *Plane) readCRAQ(key string, r, attempt int, done func(val []byte, clean bool, err error)) {
	s := p.Route(key)
	rr := r
	if rr < 0 {
		rr = s.db.TailReplica()
	}
	issueEpoch := s.epoch
	s.db.GetCRAQ(key, rr, func(val []byte, clean bool, err error) {
		if s.epoch != issueEpoch {
			p.staleSuppressed++
			if attempt+1 < maxReadRetries {
				p.readCRAQ(key, r, attempt+1, done)
				return
			}
			p.staleServed++
		}
		done(val, clean, err)
	})
}

// Commit asks every shard to drain its WAL executor; done fires when all
// are drained (first error wins).
func (p *Plane) Commit(done func(error)) {
	remaining := len(p.shards)
	var firstErr error
	for _, s := range p.shards {
		s.db.Commit(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(firstErr)
			}
		})
	}
}

// Flush issues a gFLUSH on every shard's group; done fires when all acks
// arrive (first error wins).
func (p *Plane) Flush(done func(error)) {
	remaining := len(p.shards)
	var firstErr error
	for _, s := range p.shards {
		s.rep.Flush(func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
			remaining--
			if remaining == 0 && done != nil {
				done(firstErr)
			}
		})
	}
}

// Close stops the rebalancer and every shard's group.
func (p *Plane) Close() {
	if p.reb != nil {
		p.reb.Stop()
	}
	for _, s := range p.shards {
		s.rep.g.Close()
	}
	p.open = false
}

func (p *Plane) String() string {
	return fmt.Sprintf("shard.Plane{shards=%d hosts=%d replicas=%d %v}",
		len(p.shards), len(p.pool), p.cfg.Replicas, p.Map.Mode())
}
