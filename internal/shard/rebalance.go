package shard

import (
	"hyperloop/internal/sim"
)

// RebalanceConfig tunes the hot-shard detector.
type RebalanceConfig struct {
	// Every is the detector scan period (default 200µs virtual).
	Every sim.Duration
	// MinOps is the minimum write ops a host must absorb in one window
	// before it can be called hot (default 64) — keeps idle planes still.
	MinOps uint64
	// Imbalance is the hot threshold: a host is hot when its window load
	// exceeds Imbalance × the mean host load (default 2.0).
	Imbalance float64
	// Cooldown suppresses further migrations after one triggers
	// (default 4×Every) so a move can take effect before re-measuring.
	Cooldown sim.Duration
	// MaxMigrations caps rebalancer-triggered moves (0 = unlimited).
	MaxMigrations int
	// HintOf supplies each shard's service-temperature hint on a tiered
	// plane (nil = HintNone): replacement hosts must sit in a tier the hint
	// tolerates, and a move may never leave a chain all-edge. On an
	// untiered plane the hint is irrelevant and behavior is unchanged.
	HintOf func(shard int) Hint
}

func (c *RebalanceConfig) fill() {
	if c.Every <= 0 {
		c.Every = 200_000 // 200µs
	}
	if c.MinOps == 0 {
		c.MinOps = 64
	}
	if c.Imbalance <= 1 {
		c.Imbalance = 2.0
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 4 * c.Every
	}
}

// Rebalancer periodically scans per-shard write-op windows, attributes load
// to hosts, and migrates the hottest shard off the hottest host onto the
// least-loaded host outside its replica set. Every decision is a pure
// function of the window counters — deterministic tie-breaks by lowest
// index — so rebalancing stays bit-reproducible under RunParallel.
type Rebalancer struct {
	p       *Plane
	cfg     RebalanceConfig
	timer   sim.EventID
	paused  bool // a triggered migration is still in flight
	cooloff sim.Time
	moves   int
	stopped bool
}

// StartRebalancer attaches a rebalancer to the plane and begins scanning.
// Only one may be active at a time.
func (p *Plane) StartRebalancer(cfg RebalanceConfig) *Rebalancer {
	if p.reb != nil && !p.reb.stopped {
		panic("shard: rebalancer already running")
	}
	cfg.fill()
	r := &Rebalancer{p: p, cfg: cfg}
	p.reb = r
	r.timer = p.Eng.Schedule(cfg.Every, r.scan)
	return r
}

// Moves returns how many migrations the rebalancer has triggered.
func (r *Rebalancer) Moves() int { return r.moves }

// Stop halts scanning; an in-flight triggered migration still completes.
func (r *Rebalancer) Stop() {
	if r.stopped {
		return
	}
	r.stopped = true
	r.p.Eng.Cancel(r.timer)
}

func (r *Rebalancer) rearm() {
	if r.stopped {
		return
	}
	r.timer = r.p.Eng.Schedule(r.cfg.Every, r.scan)
}

// scan runs one detector pass and resets the per-shard windows.
func (r *Rebalancer) scan() {
	p := r.p
	windows := make([]uint64, len(p.shards))
	for i, s := range p.shards {
		windows[i] = s.windowOps
		s.windowOps = 0
	}
	if r.paused || p.Eng.Now() < r.cooloff ||
		(r.cfg.MaxMigrations > 0 && r.moves >= r.cfg.MaxMigrations) {
		r.rearm()
		return
	}

	// Attribute each shard's window load to every host carrying a replica.
	load := make([]uint64, len(p.pool))
	var total uint64
	for s, hosts := range p.Map.Placements() {
		for _, h := range hosts {
			load[h] += windows[s]
			total += windows[s]
		}
	}
	hot, hotLoad := -1, uint64(0)
	for h, l := range load {
		if l > hotLoad {
			hot, hotLoad = h, l
		}
	}
	mean := float64(total) / float64(len(load))
	if hot < 0 || hotLoad < r.cfg.MinOps || float64(hotLoad) <= r.cfg.Imbalance*mean {
		r.rearm()
		return
	}

	// Hottest shard resident on the hot host (lowest id on ties).
	victim := -1
	var victimOps uint64
	for s, hosts := range p.Map.Placements() {
		if !contains(hosts, hot) || p.shards[s].migrating {
			continue
		}
		if victim < 0 || windows[s] > victimOps {
			victim, victimOps = s, windows[s]
		}
	}
	if victim < 0 {
		r.rearm()
		return
	}

	// Replacement: the least-loaded host not already in the shard's set
	// whose tier the shard's hint tolerates (untiered planes tolerate all).
	cur := p.Map.Placement(victim)
	hint := HintNone
	if r.cfg.HintOf != nil {
		hint = r.cfg.HintOf(victim)
	}
	repl, replLoad := -1, ^uint64(0)
	for h, l := range load {
		if contains(cur, h) {
			continue
		}
		if !r.tierAllowed(hint, cur, hot, h) {
			continue
		}
		if l < replLoad {
			repl, replLoad = h, l
		}
	}
	if repl < 0 || replLoad >= hotLoad {
		r.rearm() // nowhere cooler to go
		return
	}
	dest := make([]int, len(cur))
	for i, h := range cur {
		if h == hot {
			dest[i] = repl
		} else {
			dest[i] = h
		}
	}

	p.note("rebalance: host %d hot (%d ops, mean %.0f) -> move shard %d to host %d",
		hot, hotLoad, mean, victim, repl)
	r.moves++
	r.paused = true
	r.cooloff = p.Eng.Now().Add(r.cfg.Cooldown)
	err := p.Migrate(victim, dest, func(error) {
		r.paused = false
		r.cooloff = p.Eng.Now().Add(r.cfg.Cooldown)
	})
	if err != nil {
		r.paused = false
	}
	r.rearm()
}

// tierAllowed reports whether moving the replica on host `hot` to `cand`
// respects the tier rules for a shard hinted `hint` currently on `cur`:
// the candidate's tier must not be the hint's last resort, and the
// resulting chain must not be all-edge.
func (r *Rebalancer) tierAllowed(hint Hint, cur []int, hot, cand int) bool {
	tiers := r.p.tiers
	if len(tiers) == 0 {
		return true
	}
	if tierRank(hint, tierOf(tiers, cand)) >= 2 {
		return false
	}
	dest := make([]int, 0, len(cur))
	for _, h := range cur {
		if h == hot {
			h = cand
		}
		dest = append(dest, h)
	}
	return !allEdge(dest, tiers)
}
