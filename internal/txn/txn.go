// Package txn implements the replicated ACID transactions of §2.1 over the
// HyperLoop building blocks: a transaction is a set of object writes that
// must commit atomically on every replica.
//
// The protocol is the paper's Figure 1(c) pipeline, with every replica-side
// step offloaded to NICs:
//
//	Atomicity   — all writes of a transaction form ONE redo-log record
//	              (wal.Append = gWRITE+gFLUSH); recovery replays complete
//	              records only (CRC + sequence), so partial transactions
//	              never surface.
//	Consistency — commits apply in log order via ExecuteAndAdvance
//	              (gMEMCPY+gFLUSH per entry, then a durable head advance).
//	Isolation   — a group write lock (gCAS) covers the objects during
//	              commit; readers take per-replica read locks.
//	Durability  — the commit point is the log-record ack: every replica
//	              has the record in NVM before the client proceeds.
package txn

import (
	"encoding/binary"
	"errors"
	"fmt"

	"hyperloop/internal/core"
	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// Errors.
var (
	ErrTxnClosed   = errors.New("txn: transaction already committed or aborted")
	ErrMgrClosed   = errors.New("txn: manager closed")
	ErrEmptyTxn    = errors.New("txn: transaction has no writes")
	ErrLockTimeout = errors.New("txn: could not acquire object locks")
	ErrFenced      = errors.New("txn: commit fenced by epoch change")
)

// Fencer is the predicated-gWRITE surface the conditional-commit fence
// rides on; *core.Group satisfies it.
type Fencer interface {
	GWriteIf(off, size, guardOff int, want, mask uint64, done func(core.Result)) error
}

// Manager coordinates transactions over a shared store window: a WAL for
// redo records, a lock table for object isolation, and an object region the
// committed values land in.
type Manager struct {
	eng   *sim.Engine
	log   *wal.Log
	store wal.Store
	locks *locks.Manager
	owner uint64

	// lockStripes maps object offsets onto lock words.
	lockStripes int

	// Conditional-commit fence (nil = unfenced).
	fence      Fencer
	fenceOff   int
	fenceEpoch func() uint64

	committed uint64
	aborted   uint64
	fenced    uint64
	closed    bool
}

// Config sizes a Manager.
type Config struct {
	// LockStripes is the lock-table width; object offsets hash onto
	// stripes (default 64).
	LockStripes int
	// Owner identifies this coordinator in lock words (default 1).
	Owner uint64

	// Fence, when non-nil, arms the conditional-commit fence: after the
	// object locks are held but before the redo record is appended, the
	// coordinator stamps FenceEpoch() at FenceOff+8 on every replica via a
	// predicated gWRITE guarded by the replica-local epoch word at
	// FenceOff. A replica whose epoch moved past the coordinator's view
	// (a failover it hasn't observed) suppresses the stamp, the commit
	// aborts with ErrFenced, and no redo record is ever made durable.
	Fence Fencer
	// FenceOff is the store offset of the 8-byte epoch guard word; the
	// stamp word lives at FenceOff+8.
	FenceOff int
	// FenceEpoch returns the coordinator's current view of the chain
	// epoch (e.g. chain.Manager.Epoch). Defaults to a constant 1.
	FenceEpoch func() uint64
}

// New creates a transaction manager. log must be an initialized replicated
// WAL over store; lm covers a lock table of at least LockStripes words.
func New(eng *sim.Engine, log *wal.Log, store wal.Store, lm *locks.Manager, cfg Config) *Manager {
	if cfg.LockStripes <= 0 {
		cfg.LockStripes = 64
	}
	if cfg.Owner == 0 {
		cfg.Owner = 1
	}
	if cfg.FenceEpoch == nil {
		cfg.FenceEpoch = func() uint64 { return 1 }
	}
	return &Manager{
		eng:         eng,
		log:         log,
		store:       store,
		locks:       lm,
		owner:       cfg.Owner,
		lockStripes: cfg.LockStripes,
		fence:       cfg.Fence,
		fenceOff:    cfg.FenceOff,
		fenceEpoch:  cfg.FenceEpoch,
	}
}

// Stats returns (committed, aborted).
func (m *Manager) Stats() (uint64, uint64) { return m.committed, m.aborted }

// Fenced counts commits aborted by the epoch fence.
func (m *Manager) Fenced() uint64 { return m.fenced }

// Close rejects further transactions.
func (m *Manager) Close() { m.closed = true }

// Txn is one in-flight transaction. Writes buffer locally; Commit makes
// them atomic, isolated, and durable across the group.
type Txn struct {
	m      *Manager
	writes []wal.Entry
	read   map[int][]byte
	closed bool
}

// Begin starts a transaction.
func (m *Manager) Begin() (*Txn, error) {
	if m.closed {
		return nil, ErrMgrClosed
	}
	return &Txn{m: m, read: make(map[int][]byte)}, nil
}

// Write buffers a modification: data will be placed at offset in every
// replica's store when the transaction commits. Overlapping writes within
// one transaction apply in order.
func (t *Txn) Write(offset int, data []byte) error {
	if t.closed {
		return ErrTxnClosed
	}
	buf := make([]byte, len(data))
	copy(buf, data)
	t.writes = append(t.writes, wal.Entry{Offset: offset, Data: buf})
	return nil
}

// WriteUint64 buffers an 8-byte little-endian value.
func (t *Txn) WriteUint64(offset int, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return t.Write(offset, b[:])
}

// Read returns the transaction's view of [offset, offset+size): buffered
// writes overlay the committed store (read-your-writes).
func (t *Txn) Read(offset, size int) []byte {
	out := t.m.store.ReadLocal(offset, size)
	for _, w := range t.writes {
		overlayInto(out, offset, w)
	}
	return out
}

// overlayInto applies the overlapping part of w onto out (which covers
// [base, base+len(out))).
func overlayInto(out []byte, base int, w wal.Entry) {
	lo := w.Offset
	hi := w.Offset + len(w.Data)
	if hi <= base || lo >= base+len(out) {
		return
	}
	src := 0
	dst := lo - base
	if dst < 0 {
		src = -dst
		dst = 0
	}
	copy(out[dst:], w.Data[src:min(len(w.Data), src+len(out)-dst)])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// stripes returns the distinct, sorted lock stripes the transaction's
// writes touch (sorted to avoid deadlocks between concurrent coordinators).
func (t *Txn) stripes() []int {
	seen := map[int]bool{}
	var out []int
	for _, w := range t.writes {
		s := (w.Offset / 64) % t.m.lockStripes
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	// Insertion sort: stripe counts are tiny.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Abort discards the transaction (nothing was shared yet, so this is
// purely local).
func (t *Txn) Abort() {
	if !t.closed {
		t.closed = true
		t.m.aborted++
	}
}

// Commit makes the transaction durable and applied on every replica:
//
//  1. acquire the group write locks covering the touched objects (gCAS);
//  2. if a Fence is configured, stamp the coordinator's epoch through a
//     predicated gWRITE guarded by each replica's epoch word — a replica
//     that moved past our view fences the commit (ErrFenced) before
//     anything is made durable;
//  3. append one redo record holding every write (gWRITE+gFLUSH) — the
//     durability point: done's success means all-or-nothing recovery;
//  4. execute the record (gMEMCPY+gFLUSH per write + head advance);
//  5. release the locks.
//
// done fires after step 5 with the first error, if any. On lock failure
// or a fence the transaction aborts without side effects.
func (t *Txn) Commit(done func(error)) error {
	if t.closed {
		return ErrTxnClosed
	}
	if len(t.writes) == 0 {
		return ErrEmptyTxn
	}
	t.closed = true
	m := t.m
	stripes := t.stripes()

	finish := func(err error) {
		if err == nil {
			m.committed++
		} else {
			m.aborted++
		}
		if done != nil {
			done(err)
		}
	}

	// Step 4 (deferred): release in reverse order.
	release := func(held int, after func(error)) {
		var next func(i int, first error)
		next = func(i int, first error) {
			if i < 0 {
				after(first)
				return
			}
			m.locks.WrUnlock(stripes[i], m.owner, func(err error) {
				if first == nil {
					first = err
				}
				next(i-1, first)
			})
		}
		next(held-1, nil)
	}

	// Steps 2+3 under the locks. ExecuteAndAdvance commits the oldest
	// unexecuted record, which may belong to a concurrent disjoint
	// transaction — that is safe (records apply in log order, and every
	// record's owner still holds its stripes until its own commit
	// completes) but means a head record whose replication ack is still in
	// flight surfaces as ErrNotReady: retry shortly rather than abort.
	var execute func()
	execute = func() {
		execErr := m.log.ExecuteAndAdvance(func(err error) {
			release(len(stripes), func(uerr error) {
				if err == nil {
					err = uerr
				}
				finish(err)
			})
		})
		switch execErr {
		case nil:
		case wal.ErrNotReady:
			m.eng.Schedule(5*sim.Microsecond, execute)
		case wal.ErrEmpty:
			// A concurrent commit already executed our record.
			release(len(stripes), func(uerr error) { finish(uerr) })
		default:
			release(len(stripes), func(error) { finish(execErr) })
		}
	}
	applyAndRelease := func() {
		err := m.log.Append(t.writes, func(err error) {
			if err != nil {
				release(len(stripes), func(error) { finish(err) })
				return
			}
			execute()
		})
		if err != nil {
			release(len(stripes), func(error) { finish(err) })
		}
	}

	// Step 2: the conditional-commit fence. The stamp word (FenceOff+8)
	// carries the epoch we are committing under; the predicated gWRITE
	// lands it only where the replica-local guard word (FenceOff) still
	// equals that epoch. Any mismatch means a failover this coordinator
	// has not observed — abort before the redo record exists anywhere.
	fenceGate := func(next func()) {
		if m.fence == nil {
			next()
			return
		}
		want := m.fenceEpoch()
		var stamp [8]byte
		binary.LittleEndian.PutUint64(stamp[:], want)
		m.store.WriteLocal(m.fenceOff+8, stamp[:])
		err := m.fence.GWriteIf(m.fenceOff+8, 8, m.fenceOff, want, 0, func(r core.Result) {
			if r.Err != nil {
				release(len(stripes), func(error) { finish(r.Err) })
				return
			}
			for i, obs := range r.CASOld {
				if obs != want {
					m.fenced++
					release(len(stripes), func(error) {
						finish(fmt.Errorf("%w: replica %d at epoch %d, coordinator at %d",
							ErrFenced, i, obs, want))
					})
					return
				}
			}
			next()
		})
		if err != nil {
			release(len(stripes), func(error) { finish(err) })
		}
	}

	// Step 1: acquire stripes in order.
	var acquire func(i int)
	acquire = func(i int) {
		if i >= len(stripes) {
			fenceGate(applyAndRelease)
			return
		}
		m.locks.WrLock(stripes[i], m.owner, func(err error) {
			if err != nil {
				release(i, func(error) {
					finish(fmt.Errorf("%w: stripe %d: %v", ErrLockTimeout, stripes[i], err))
				})
				return
			}
			acquire(i + 1)
		})
	}
	acquire(0)
	return nil
}
