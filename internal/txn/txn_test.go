package txn

import (
	"bytes"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

const (
	logBase  = 0
	logSize  = 256 << 10
	lockBase = 900 << 10
	objBase  = 512 << 10 // object region
)

type rig struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	g   *core.Group
	m   *Manager
}

func newRig(t *testing.T, replicas int) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: replicas + 1, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := core.New(cl, core.Config{Depth: 256})
	ready := false
	log := wal.New(wal.NodeStore{N: cl.Client()}, wal.CoreReplicator{G: g}, logBase, logSize,
		func(err error) { ready = err == nil })
	if !eng.RunUntil(func() bool { return ready }, eng.Now().Add(sim.Second)) {
		t.Fatal("wal init stalled")
	}
	lm := locks.New(g, eng, lockBase, locks.Config{})
	m := New(eng, log, wal.NodeStore{N: cl.Client()}, lm, Config{})
	return &rig{eng: eng, cl: cl, g: g, m: m}
}

func (r *rig) await(t *testing.T, done *bool) {
	t.Helper()
	if !r.eng.RunUntil(func() bool { return *done || r.g.Failed() != nil }, r.eng.Now().Add(10*sim.Second)) {
		t.Fatalf("commit stalled (%v)", r.g.Failed())
	}
	if r.g.Failed() != nil {
		t.Fatal(r.g.Failed())
	}
}

// TestAtomicMultiObjectCommit is the paper's Figure 1(c) example: X and Y
// must both change, on every replica, durably.
func TestAtomicMultiObjectCommit(t *testing.T) {
	r := newRig(t, 3)
	defer r.g.Close()
	tx, err := r.m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	offX, offY := objBase, objBase+4096
	tx.WriteUint64(offX, 1) // X = 1
	tx.WriteUint64(offY, 2) // Y = 2
	done := false
	if err := tx.Commit(func(err error) {
		if err != nil {
			t.Fatal(err)
		}
		done = true
	}); err != nil {
		t.Fatal(err)
	}
	r.await(t, &done)

	for i := 0; i < 3; i++ {
		rep := r.g.Replica(i)
		rep.Dev.PowerFail()
		x := le64(rep.StoreBytes(offX, 8))
		y := le64(rep.StoreBytes(offY, 8))
		if x != 1 || y != 2 {
			t.Fatalf("replica %d: X=%d Y=%d after power failure, want 1/2", i, x, y)
		}
	}
	c, a := r.m.Stats()
	if c != 1 || a != 0 {
		t.Fatalf("stats: committed=%d aborted=%d", c, a)
	}
}

func TestReadYourWrites(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	tx, _ := r.m.Begin()
	tx.Write(objBase+10, []byte("hello"))
	got := tx.Read(objBase+8, 10)
	if string(got[2:7]) != "hello" {
		t.Fatalf("read-your-writes overlay: %q", got)
	}
	// Committed store unaffected before commit.
	if string(r.cl.Client().StoreBytes(objBase+10, 5)) == "hello" {
		t.Fatal("uncommitted write leaked to the store")
	}
	tx.Abort()
	if _, a := r.m.Stats(); a != 1 {
		t.Fatal("abort not counted")
	}
}

func TestOverlappingWritesLastWins(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	tx, _ := r.m.Begin()
	tx.Write(objBase, []byte("AAAA"))
	tx.Write(objBase+2, []byte("BB"))
	done := false
	tx.Commit(func(err error) { done = err == nil })
	r.await(t, &done)
	if got := string(r.g.Replica(1).StoreBytes(objBase, 4)); got != "AABB" {
		t.Fatalf("overlap result %q, want AABB", got)
	}
}

func TestAbortedTxnHasNoEffect(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	tx, _ := r.m.Begin()
	tx.WriteUint64(objBase, 99)
	tx.Abort()
	if err := tx.Commit(nil); err != ErrTxnClosed {
		t.Fatalf("commit after abort: %v", err)
	}
	if err := tx.Write(0, []byte("x")); err != ErrTxnClosed {
		t.Fatalf("write after abort: %v", err)
	}
	r.eng.RunFor(10 * sim.Millisecond)
	if v := le64(r.g.Replica(0).StoreBytes(objBase, 8)); v != 0 {
		t.Fatalf("aborted write surfaced: %d", v)
	}
}

func TestEmptyCommitRejected(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	tx, _ := r.m.Begin()
	if err := tx.Commit(nil); err != ErrEmptyTxn {
		t.Fatalf("empty commit: %v", err)
	}
}

func TestUncommittedTxnInvisibleAfterCrash(t *testing.T) {
	// A transaction whose log record never replicated must vanish on
	// recovery — atomicity under failure.
	r := newRig(t, 3)
	defer r.g.Close()

	// First, a committed transaction to anchor the log.
	tx1, _ := r.m.Begin()
	tx1.WriteUint64(objBase, 7)
	done := false
	tx1.Commit(func(err error) { done = err == nil })
	r.await(t, &done)

	// Second transaction: sever the chain mid-commit so its record cannot
	// replicate, then inspect a replica's durable state.
	r.cl.Net.CutBoth(r.g.Replica(0).NIC.Node(), r.g.Replica(1).NIC.Node())
	tx2, _ := r.m.Begin()
	tx2.WriteUint64(objBase+8, 13)
	tx2.Commit(func(error) {})
	r.eng.RunFor(50 * sim.Millisecond)

	rep := r.g.Replica(2) // tail, beyond the cut
	rep.Dev.PowerFail()
	rec, err := wal.Recover(func(off, size int) []byte {
		return rep.Dev.DurableRead(off, size)
	}, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	for _, record := range rec.Records {
		for _, e := range record.Entries {
			if e.Offset == objBase+8 {
				t.Fatal("unreplicated transaction visible in recovered log")
			}
		}
	}
	if v := le64(rep.StoreBytes(objBase+8, 8)); v != 0 {
		t.Fatalf("unreplicated transaction reached the data region: %d", v)
	}
	if v := le64(rep.StoreBytes(objBase, 8)); v != 7 {
		t.Fatalf("committed transaction lost: %d", v)
	}
}

func TestConcurrentDisjointTransactions(t *testing.T) {
	r := newRig(t, 3)
	defer r.g.Close()
	const n = 20
	completed := 0
	for i := 0; i < n; i++ {
		tx, err := r.m.Begin()
		if err != nil {
			t.Fatal(err)
		}
		// Disjoint stripes: spread offsets 4KB apart.
		tx.WriteUint64(objBase+i*4096, uint64(100+i))
		if err := tx.Commit(func(err error) {
			if err != nil {
				t.Errorf("txn %d: %v", i, err)
			}
			completed++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if !r.eng.RunUntil(func() bool { return completed >= n }, r.eng.Now().Add(30*sim.Second)) {
		t.Fatalf("concurrent commits stalled at %d/%d", completed, n)
	}
	for i := 0; i < n; i++ {
		for rep := 0; rep < 3; rep++ {
			if v := le64(r.g.Replica(rep).StoreBytes(objBase+i*4096, 8)); v != uint64(100+i) {
				t.Fatalf("txn %d on replica %d: %d", i, rep, v)
			}
		}
	}
	c, _ := r.m.Stats()
	if c != n {
		t.Fatalf("committed = %d, want %d", c, n)
	}
}

func TestConflictingTransactionsSerialize(t *testing.T) {
	r := newRig(t, 3)
	defer r.g.Close()
	// Both transactions read-modify-write the same counter; with proper
	// isolation the final value is the sum.
	const off = objBase + 128
	completed := 0
	increment := func() {
		tx, _ := r.m.Begin()
		// Read the committed value at commit-lock time is what a real RMW
		// would do; here the second txn starts after the first holds the
		// lock, so we re-read inside the commit by chaining: simplest
		// faithful pattern is lock-read-write via two txns issued
		// sequentially per worker.
		cur := le64(tx.Read(off, 8))
		tx.WriteUint64(off, cur+1)
		tx.Commit(func(err error) {
			if err != nil {
				t.Errorf("increment: %v", err)
			}
			completed++
		})
	}
	// Serial increments (each waits for the previous ack) — exercises lock
	// reuse on the same stripe.
	increment()
	r.eng.RunUntil(func() bool { return completed >= 1 }, r.eng.Now().Add(10*sim.Second))
	increment()
	r.eng.RunUntil(func() bool { return completed >= 2 }, r.eng.Now().Add(10*sim.Second))
	if completed != 2 {
		t.Fatalf("completed = %d", completed)
	}
	if v := le64(r.g.Replica(0).StoreBytes(off, 8)); v != 2 {
		t.Fatalf("counter = %d, want 2", v)
	}
}

func TestLockStripesSortedDeadlockFree(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	// Two transactions locking the same two stripes in opposite write
	// order must both commit (stripe acquisition is sorted).
	completed := 0
	t1, _ := r.m.Begin()
	t1.WriteUint64(objBase, 1)       // stripe A
	t1.WriteUint64(objBase+64*64, 2) // stripe B (64 words later)
	t2, _ := r.m.Begin()
	t2.WriteUint64(objBase+64*64, 3) // stripe B first
	t2.WriteUint64(objBase, 4)       // stripe A
	t1.Commit(func(err error) {
		if err != nil {
			t.Errorf("t1: %v", err)
		}
		completed++
	})
	t2.Commit(func(err error) {
		if err != nil {
			t.Errorf("t2: %v", err)
		}
		completed++
	})
	if !r.eng.RunUntil(func() bool { return completed >= 2 }, r.eng.Now().Add(30*sim.Second)) {
		t.Fatalf("possible deadlock: %d/2 committed", completed)
	}
}

func TestManagerClose(t *testing.T) {
	r := newRig(t, 2)
	defer r.g.Close()
	r.m.Close()
	if _, err := r.m.Begin(); err != ErrMgrClosed {
		t.Fatalf("begin after close: %v", err)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func TestOverlayInto(t *testing.T) {
	out := bytes.Repeat([]byte("."), 10)
	overlayInto(out, 100, wal.Entry{Offset: 95, Data: []byte("XXXXXXX")}) // covers 95..102
	if string(out) != "XX........" {
		t.Fatalf("left overlap: %q", out)
	}
	out = bytes.Repeat([]byte("."), 10)
	overlayInto(out, 100, wal.Entry{Offset: 108, Data: []byte("YYYY")}) // 108..112
	if string(out) != "........YY" {
		t.Fatalf("right overlap: %q", out)
	}
	out = bytes.Repeat([]byte("."), 10)
	overlayInto(out, 100, wal.Entry{Offset: 90, Data: []byte("Z")}) // disjoint
	if string(out) != ".........." {
		t.Fatalf("disjoint overlay: %q", out)
	}
}

func TestRedoRecoveryAppliesReplicatedTxns(t *testing.T) {
	// Positive counterpart to the atomicity test: a transaction whose
	// record was replicated but whose ExecuteAndAdvance never ran must be
	// redone from the log at recovery — recovery applies all-or-nothing,
	// and "all" here means all.
	r := newRig(t, 3)
	defer r.g.Close()

	// Build the transaction's record and drive only its append (the
	// durability point), modeling a coordinator crash after the ack but
	// before ExecuteAndAdvance ran.
	tx, _ := r.m.Begin()
	tx.WriteUint64(objBase, 41)
	tx.WriteUint64(objBase+64, 43)
	acked := false
	if err := r.m.log.Append(tx.writes, func(err error) { acked = err == nil }); err != nil {
		t.Fatal(err)
	}
	if !r.eng.RunUntil(func() bool { return acked }, r.eng.Now().Add(10*sim.Second)) {
		t.Fatal("append never acked")
	}

	// Crash every replica NOW: the record is in NVM, the data region is not.
	rep := r.g.Replica(2)
	rep.Dev.PowerFail()
	rec, err := wal.Recover(func(off, size int) []byte {
		return rep.Dev.DurableRead(off, size)
	}, logBase, logSize)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 1 {
		t.Fatalf("recovered %d records, want 1", len(rec.Records))
	}
	// Redo: apply the recovered record's entries to the durable image.
	state := map[int]uint64{}
	for _, record := range rec.Records {
		for _, e := range record.Entries {
			state[e.Offset] = le64(e.Data)
		}
	}
	if state[objBase] != 41 || state[objBase+64] != 43 {
		t.Fatalf("redo state: %v", state)
	}
}
