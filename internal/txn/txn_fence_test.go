package txn

import (
	"errors"
	"testing"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

const fenceBase = 800 << 10 // guard word; stamp word at fenceBase+8

// newFencedRig builds the standard rig with the conditional-commit fence
// armed: every replica's guard word starts at the epoch *epoch points to,
// and the coordinator reads its view through the same pointer.
func newFencedRig(t *testing.T, replicas int, epoch *uint64) *rig {
	t.Helper()
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: replicas + 1, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := core.New(cl, core.Config{Depth: 256})
	ready := false
	log := wal.New(wal.NodeStore{N: cl.Client()}, wal.CoreReplicator{G: g}, logBase, logSize,
		func(err error) { ready = err == nil })
	if !eng.RunUntil(func() bool { return ready }, eng.Now().Add(sim.Second)) {
		t.Fatal("wal init stalled")
	}
	lm := locks.New(g, eng, lockBase, locks.Config{})
	m := New(eng, log, wal.NodeStore{N: cl.Client()}, lm, Config{
		Fence:      g,
		FenceOff:   fenceBase,
		FenceEpoch: func() uint64 { return *epoch },
	})
	r := &rig{eng: eng, cl: cl, g: g, m: m}
	for i := 0; i < replicas; i++ {
		setGuard(r, i, *epoch)
	}
	return r
}

func setGuard(r *rig, replica int, epoch uint64) {
	var b [8]byte
	for i := range b {
		b[i] = byte(epoch >> (8 * i))
	}
	r.g.Replica(replica).StoreWrite(fenceBase, b[:])
}

func replicaWord(r *rig, replica, off int) uint64 {
	return le64(r.g.Replica(replica).StoreBytes(off, 8))
}

func commit(t *testing.T, r *rig, off int, v uint64) error {
	t.Helper()
	tx, err := r.m.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tx.WriteUint64(off, v)
	done := false
	var got error
	if err := tx.Commit(func(err error) { got = err; done = true }); err != nil {
		t.Fatal(err)
	}
	r.await(t, &done)
	return got
}

// A commit whose epoch view matches every replica passes the fence and
// leaves the stamp word behind on each replica.
func TestFenceMatchCommits(t *testing.T) {
	epoch := uint64(1)
	r := newFencedRig(t, 3, &epoch)
	defer r.g.Close()

	if err := commit(t, r, objBase, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if w := replicaWord(r, i, objBase); w != 7 {
			t.Fatalf("replica %d object = %d, want 7", i, w)
		}
		if w := replicaWord(r, i, fenceBase+8); w != 1 {
			t.Fatalf("replica %d stamp = %d, want epoch 1", i, w)
		}
	}
	if r.m.Fenced() != 0 {
		t.Fatalf("fenced = %d, want 0", r.m.Fenced())
	}
}

// A replica whose epoch moved past the coordinator's view fences the
// commit: ErrFenced, no object mutation anywhere, locks released, and no
// stamp on the advanced replica.
func TestFenceMismatchAbortsCleanly(t *testing.T) {
	epoch := uint64(1)
	r := newFencedRig(t, 3, &epoch)
	defer r.g.Close()

	setGuard(r, 1, 2) // replica 1 observed a failover we have not

	err := commit(t, r, objBase, 7)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("err = %v, want ErrFenced", err)
	}
	for i := 0; i < 3; i++ {
		if w := replicaWord(r, i, objBase); w != 0 {
			t.Fatalf("replica %d object mutated to %d despite fence", i, w)
		}
	}
	if w := replicaWord(r, 1, fenceBase+8); w != 0 {
		t.Fatalf("advanced replica stamped with %d despite guard mismatch", w)
	}
	// The touched stripe's lock word must be free again on every replica.
	stripe := (objBase / 64) % 64
	for i := 0; i < 3; i++ {
		if w := replicaWord(r, i, lockBase+8*stripe); w != 0 {
			t.Fatalf("replica %d lock word %x still held after fence", i, w)
		}
	}
	c, a := r.m.Stats()
	if c != 0 || a != 1 {
		t.Fatalf("committed/aborted = %d/%d, want 0/1", c, a)
	}
	if r.m.Fenced() != 1 {
		t.Fatalf("fenced = %d, want 1", r.m.Fenced())
	}

	// After the coordinator learns the new epoch (and the lagging replicas
	// catch up), commits flow again.
	epoch = 2
	setGuard(r, 0, 2)
	setGuard(r, 2, 2)
	if err := commit(t, r, objBase, 9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if w := replicaWord(r, i, objBase); w != 9 {
			t.Fatalf("replica %d object = %d after recovery, want 9", i, w)
		}
	}
}
