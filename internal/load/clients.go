package load

import (
	"hyperloop/internal/qos"
	"hyperloop/internal/sim"
)

// TenantClass is one tenant rate class: a share of the client population and
// the admission-control budget its members collectively get at each group.
type TenantClass struct {
	Name string
	// Weight is the class's relative share of the client-id space.
	Weight int
	// RatePerSec refills the class's per-group admission token bucket;
	// 0 leaves the class unthrottled (only the shared queue bound applies).
	// With QoS on, it doubles as the class's contract rate per group.
	RatePerSec float64
	// Burst is the bucket depth in ops (default: max(8, RatePerSec/1000) —
	// a millisecond of budget).
	Burst float64
	// SLO is the class's latency target, elasticity budget, and placement
	// hint for the QoS controller (zero value = observe-only class).
	SLO qos.SLO
}

// DefaultTenants is the single-class population: every client in one
// unthrottled class, so admission control reduces to the bounded queue.
var DefaultTenants = []TenantClass{{Name: "default", Weight: 1}}

// Clients models one group's slice of the open-loop client population: a
// connection-id space of Space ids of which Active are open at any instant.
// Churn slides the active window across the id space — each advance closes
// the oldest connection and opens a fresh id — so over a run the group
// touches far more distinct clients than it ever holds open, the way a real
// frontend sees connection arrivals and departures. Ids map statically to
// tenant classes by weighted hash, so a client keeps its class across churn.
type Clients struct {
	space  int
	active int
	lo     int     // active window start
	churn  float64 // window advances per arrival (may be fractional)
	frac   float64 // accumulated fractional advances

	opened, closed uint64

	classes []TenantClass
	cum     []int // cumulative weights
	total   int
}

// NewClients builds a population over space ids with active concurrently
// open and churnPerArrival window advances per arrival. classes must be
// non-empty with positive total weight.
func NewClients(space, active int, churnPerArrival float64, classes []TenantClass) *Clients {
	if space < 1 {
		space = 1
	}
	if active < 1 {
		active = 1
	}
	if active > space {
		active = space
	}
	if len(classes) == 0 {
		classes = DefaultTenants
	}
	c := &Clients{
		space:   space,
		active:  active,
		churn:   churnPerArrival,
		opened:  uint64(active),
		classes: classes,
	}
	for _, cl := range classes {
		w := cl.Weight
		if w < 0 {
			w = 0
		}
		c.total += w
		c.cum = append(c.cum, c.total)
	}
	if c.total == 0 {
		panic("load: tenant classes have zero total weight")
	}
	return c
}

// Space returns the modeled client-id space size.
func (c *Clients) Space() int { return c.space }

// Conns returns lifetime connection opens and closes.
func (c *Clients) Conns() (opened, closed uint64) { return c.opened, c.closed }

// Classes returns the tenant classes.
func (c *Clients) Classes() []TenantClass { return c.classes }

// ClassOf maps a client id to its tenant class index: a weighted hash, so
// the assignment is stable for the id's whole lifetime and across runs.
func (c *Clients) ClassOf(id int) int {
	h := (uint64(id) + 1) * 0x9E3779B97F4A7C15
	w := int(h % uint64(c.total))
	for i, cum := range c.cum {
		if w < cum {
			return i
		}
	}
	return len(c.cum) - 1
}

// Sample applies the churn due for one arrival, then draws a client from the
// active window, returning its id and tenant class.
func (c *Clients) Sample(rng *sim.Rand) (id, class int) {
	c.frac += c.churn
	for c.frac >= 1 {
		c.frac--
		c.lo++
		if c.lo >= c.space {
			c.lo = 0
		}
		c.opened++
		c.closed++
	}
	id = c.lo + rng.Intn(c.active)
	if id >= c.space {
		id -= c.space
	}
	return id, c.ClassOf(id)
}
