package load

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/kvstore"
	"hyperloop/internal/metrics"
	"hyperloop/internal/naive"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
	"hyperloop/internal/wal"
)

// Server is the replicated data plane a load driver feeds: the HyperLoop
// sharded plane or the Naive-RDMA baseline behind one Put surface. Both
// arms run one group per sim partition and route the same keyspace with the
// same salted group hash, so a driver's per-group keysets are identical
// across systems and every Put stays partition-local.
type Server interface {
	Groups() int
	PE() *sim.PartitionedEngine
	// HomeGroup routes a key to the group whose driver must issue it.
	HomeGroup(key string) int
	// Put stores key=value from group g's front-end; g must be the key's
	// home group. done fires exactly once on partition g.
	Put(g int, key string, value []byte, done func(error))
	// Cluster returns group g's cluster (for instrumentation).
	Cluster(g int) *cluster.Cluster
	// Plane returns group g's shard plane for control-plane actuation
	// (migration-backed scale-out), or nil when the backend has none (the
	// Naive arm serves but cannot elastically re-place shards).
	Plane(g int) *shard.Plane
	// Spans returns group g's span recorder (nil when not recording).
	Spans(g int) *span.Recorder
	// FusionStats sums (batches, fused ops) across the backend's groups.
	FusionStats() (uint64, uint64)
	Close()
}

// ServerConfig sizes either backend identically: the topology fields mirror
// shard.PartitionedConfig so the two systems differ only in their datapath.
type ServerConfig struct {
	Groups         int // default 2
	ShardsPerGroup int // default 2
	HostsPerGroup  int // default 3
	Replicas       int // default 3
	RegionSize     int // default 1 MiB
	// FusionDepth is the HyperLoop WQE-chain fusion bound (default 1 =
	// legacy one-op-per-doorbell issue; the Naive arm has no fusion path).
	FusionDepth int
	// DoorbellCost charges per-MMIO-ring NIC time on every node of either
	// arm (default 0 = free doorbells, the legacy model).
	DoorbellCost sim.Duration
	// HostTiers labels every group's host pool (nil = untiered legacy pool;
	// length HostsPerGroup otherwise) and TierNIC gives each tier its own
	// NIC profile. The HyperLoop arm places and migrates by tier; the Naive
	// arm ignores both (its chains have no placement control plane).
	HostTiers []shard.Tier
	TierNIC   map[shard.Tier]rdma.Config
	Workers   int
	Seed      int64
	// Metrics optionally attaches one registry per group (nil, or length
	// Groups).
	Metrics []*metrics.Registry
	// WithSpans turns on per-group op-span recording (HyperLoop arm).
	WithSpans bool
}

func (c *ServerConfig) fill() {
	if c.Groups <= 0 {
		c.Groups = 2
	}
	if c.ShardsPerGroup <= 0 {
		c.ShardsPerGroup = 2
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.HostsPerGroup <= 0 {
		c.HostsPerGroup = 3
	}
	if c.HostsPerGroup < c.Replicas {
		c.HostsPerGroup = c.Replicas
	}
	if c.RegionSize <= 0 {
		c.RegionSize = 1 << 20
	}
	if c.FusionDepth <= 0 {
		c.FusionDepth = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// openLimit bounds WaitOpen for either backend.
const openLimit = sim.Time(sim.Second)

// hlServer is the HyperLoop arm: a shard.PartitionedPlane.
type hlServer struct {
	pp *shard.PartitionedPlane
}

// OpenHyperLoop builds the HyperLoop serving backend and drives it open.
func OpenHyperLoop(cfg ServerConfig) (Server, error) {
	cfg.fill()
	pp := shard.NewPartitionedPlane(shard.PartitionedConfig{
		Groups:         cfg.Groups,
		ShardsPerGroup: cfg.ShardsPerGroup,
		HostsPerGroup:  cfg.HostsPerGroup,
		Replicas:       cfg.Replicas,
		RegionSize:     cfg.RegionSize,
		Group:          core.Config{Depth: 512, FusionDepth: cfg.FusionDepth},
		Fabric:         fabric.Config{JitterFrac: -1},
		NIC:            rdma.Config{DoorbellCost: cfg.DoorbellCost},
		HostTiers:      cfg.HostTiers,
		TierNIC:        cfg.TierNIC,
		Seed:           cfg.Seed,
		Workers:        cfg.Workers,
		Metrics:        cfg.Metrics,
		WithSpans:      cfg.WithSpans,
	})
	if err := pp.WaitOpen(openLimit); err != nil {
		return nil, fmt.Errorf("load: hyperloop open: %w", err)
	}
	return &hlServer{pp: pp}, nil
}

func (s *hlServer) Groups() int                { return s.pp.Groups() }
func (s *hlServer) PE() *sim.PartitionedEngine { return s.pp.PE }
func (s *hlServer) HomeGroup(key string) int   { return s.pp.HomeGroup(key) }
func (s *hlServer) Cluster(g int) *cluster.Cluster {
	return s.pp.Group(g).Cl
}
func (s *hlServer) Spans(g int) *span.Recorder { return s.pp.Spans(g) }
func (s *hlServer) Plane(g int) *shard.Plane   { return s.pp.Group(g) }

func (s *hlServer) Put(g int, key string, value []byte, done func(error)) {
	s.pp.Put(g, key, value, done)
}

func (s *hlServer) FusionStats() (uint64, uint64) {
	var batches, ops uint64
	for g := 0; g < s.pp.Groups(); g++ {
		pl := s.pp.Group(g)
		for sid := 0; sid < pl.Shards(); sid++ {
			b, o := pl.Shard(sid).Group().FusionStats()
			batches += b
			ops += o
		}
	}
	return batches, ops
}

func (s *hlServer) Close() { s.pp.Close() }

// nvShard is one Naive-backed shard: a baseline chain and a kvstore head
// over a carved region, mirroring shard.Plane's per-shard layout.
type nvShard struct {
	g  *naive.Group
	db *kvstore.DB
}

// nvGroup is one group of the Naive arm: its own cluster on its own
// partition, ShardsPerGroup baseline chains over a pooled host fleet.
type nvGroup struct {
	cl     *cluster.Cluster
	smap   *shard.Map
	shards []*nvShard
}

// nvServer is the Naive-RDMA arm: the same topology as the HyperLoop plane
// with replica CPUs back on the critical path of every hop.
type nvServer struct {
	pe     *sim.PartitionedEngine
	gmap   *shard.Map
	groups []*nvGroup
}

// naive regions reuse the sharded plane's layout: a cache-line header pad,
// the WAL, then the data area.
const nvRegionHdr = 64

// OpenNaive builds the Naive-RDMA serving backend and drives it open.
func OpenNaive(cfg ServerConfig) (Server, error) {
	cfg.fill()
	interFabric := fabric.Config{PropDelay: 3000 * sim.Nanosecond}
	pe := sim.NewPartitioned(cfg.Groups, interFabric.MinLatency())
	pe.SetWorkers(cfg.Workers)
	s := &nvServer{pe: pe, gmap: shard.NewHashMap(cfg.Groups)}

	openDone := make([]int, cfg.Groups)
	openErr := make([]error, cfg.Groups)
	for g := 0; g < cfg.Groups; g++ {
		g := g
		eng := pe.Partition(g)
		cl := cluster.New(eng, cluster.Config{
			Nodes:     cfg.HostsPerGroup + 1,
			StoreSize: cfg.ShardsPerGroup * cfg.RegionSize,
			Fabric:    fabric.Config{JitterFrac: -1},
			NIC:       rdma.Config{DoorbellCost: cfg.DoorbellCost},
			Seed:      cfg.Seed + int64(g)*9973,
		})
		ng := &nvGroup{cl: cl, smap: shard.NewHashMap(cfg.ShardsPerGroup)}
		client := cl.Client()
		pool := cl.Replicas()
		logSize := cfg.RegionSize / 4
		for sid := 0; sid < cfg.ShardsPerGroup; sid++ {
			hosts := make([]*cluster.Node, cfg.Replicas)
			for i := range hosts {
				hosts[i] = pool[(sid*cfg.Replicas+i)%cfg.HostsPerGroup]
			}
			ngr := naive.NewWithNodes(eng, client, hosts, naive.Config{Mode: naive.Event})
			base := sid * cfg.RegionSize
			db := kvstore.Open(wal.NodeStore{N: client}, wal.NaiveReplicator{G: ngr}, kvstore.Config{
				LogBase:     base + nvRegionHdr,
				LogSize:     logSize,
				DataBase:    base + nvRegionHdr + logSize,
				DataSize:    cfg.RegionSize - nvRegionHdr - logSize,
				CommitEvery: 1,
				Seed:        cfg.Seed + int64(g)*9973 + int64(sid)*7919,
			}, func(err error) {
				openDone[g]++
				if err != nil && openErr[g] == nil {
					openErr[g] = err
				}
			})
			ng.shards = append(ng.shards, &nvShard{g: ngr, db: db})
		}
		s.groups = append(s.groups, ng)
	}

	// Drive the engines in deterministic chunks until every shard's log
	// header is durable (mirrors shard.PartitionedPlane.WaitOpen).
	const chunk = 100 * sim.Microsecond
	for t := sim.Time(0).Add(chunk); ; t = t.Add(chunk) {
		if t > openLimit {
			t = openLimit
		}
		pe.Run(t)
		all := true
		for g := range openDone {
			if openErr[g] != nil {
				return nil, fmt.Errorf("load: naive group %d open: %w", g, openErr[g])
			}
			all = all && openDone[g] == cfg.ShardsPerGroup
		}
		if all {
			return s, nil
		}
		if t == openLimit {
			return nil, fmt.Errorf("load: naive backend not open by %v", openLimit)
		}
	}
}

func (s *nvServer) Groups() int                { return len(s.groups) }
func (s *nvServer) PE() *sim.PartitionedEngine { return s.pe }

func (s *nvServer) HomeGroup(key string) int {
	return s.gmap.Route(shard.GroupKey(key))
}

func (s *nvServer) Cluster(g int) *cluster.Cluster { return s.groups[g].cl }
func (s *nvServer) Spans(g int) *span.Recorder     { return nil }
func (s *nvServer) Plane(g int) *shard.Plane       { return nil }

func (s *nvServer) Put(g int, key string, value []byte, done func(error)) {
	ng := s.groups[g]
	sh := ng.shards[ng.smap.Route(key)]
	if err := sh.db.Put(key, value, done); err != nil {
		done(err) // synchronous refusal: the store never fires the callback
	}
}

func (s *nvServer) FusionStats() (uint64, uint64) { return 0, 0 }

func (s *nvServer) Close() {
	for _, ng := range s.groups {
		for _, sh := range ng.shards {
			sh.g.Close()
		}
	}
}
