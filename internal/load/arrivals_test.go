package load

import (
	"math"
	"testing"

	"hyperloop/internal/sim"
)

// gaps draws n inter-arrival gaps.
func gaps(a Arrivals, n int) []sim.Duration {
	out := make([]sim.Duration, n)
	for i := range out {
		out[i] = a.Next()
	}
	return out
}

func meanVar(ds []sim.Duration) (mean, variance float64) {
	for _, d := range ds {
		mean += float64(d)
	}
	mean /= float64(len(ds))
	for _, d := range ds {
		dev := float64(d) - mean
		variance += dev * dev
	}
	variance /= float64(len(ds) - 1)
	return mean, variance
}

// Poisson gaps must average 1/rate with CV ~= 1 (the exponential signature),
// with bounds calibrated to the sample count.
func TestPoissonInterarrivals(t *testing.T) {
	const rate = 1e6 // 1 op/µs
	const n = 200000
	p := NewPoisson(rate, sim.NewRand(7))
	mean, variance := meanVar(gaps(p, n))
	want := 1e9 / rate // ns
	// Sample mean of n exponentials: stddev = want/sqrt(n); allow 5 sigma.
	if tol := 5 * want / math.Sqrt(n); math.Abs(mean-want) > tol {
		t.Fatalf("mean gap %.1fns, want %.1f +- %.1f", mean, want, tol)
	}
	cv := math.Sqrt(variance) / mean
	if cv < 0.97 || cv > 1.03 {
		t.Fatalf("coefficient of variation %.3f, want ~1 (exponential)", cv)
	}
}

// windowCounts buckets an arrival stream into fixed windows.
func windowCounts(a Arrivals, n int, window sim.Duration) []float64 {
	var at sim.Duration
	counts := []float64{0}
	limit := window
	for i := 0; i < n; i++ {
		at += a.Next()
		for at >= limit {
			counts = append(counts, 0)
			limit += window
		}
		counts[len(counts)-1]++
	}
	return counts[:len(counts)-1] // drop the partial tail window
}

func dispersion(counts []float64) float64 {
	var mean, variance float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	for _, c := range counts {
		dev := c - mean
		variance += dev * dev
	}
	variance /= float64(len(counts) - 1)
	return variance / mean
}

// The b-model must conserve its configured rate while being far burstier
// than Poisson: its windowed index of dispersion grows with the bias, where
// Poisson's stays ~1 at every window.
func TestBModelBurstiness(t *testing.T) {
	const rate = 1e6
	const n = 200000
	window := 100 * sim.Microsecond

	b := NewBModel(rate, 0.8, sim.NewRand(7))
	bCounts := windowCounts(b, n, window)
	p := NewPoisson(rate, sim.NewRand(7))
	pCounts := windowCounts(p, n, window)

	// Rate conservation: the b-model emits exactly rate*segment ops per
	// segment, so windowed means must agree with Poisson's within a few %.
	var bMean, pMean float64
	for _, c := range bCounts {
		bMean += c
	}
	bMean /= float64(len(bCounts))
	for _, c := range pCounts {
		pMean += c
	}
	pMean /= float64(len(pCounts))
	if math.Abs(bMean-pMean)/pMean > 0.05 {
		t.Fatalf("b-model window mean %.1f vs poisson %.1f: rate not conserved", bMean, pMean)
	}

	bD, pD := dispersion(bCounts), dispersion(pCounts)
	if pD > 3 {
		t.Fatalf("poisson dispersion %.2f, want ~1", pD)
	}
	if bD < 5*pD {
		t.Fatalf("b-model dispersion %.2f not >> poisson %.2f", bD, pD)
	}
}

// Same seed, same sequence — the determinism contract every experiment
// leans on.
func TestArrivalsDeterministic(t *testing.T) {
	for _, mk := range []func() Arrivals{
		func() Arrivals { return NewPoisson(5e5, sim.NewRand(42)) },
		func() Arrivals { return NewBModel(5e5, 0.7, sim.NewRand(42)) },
	} {
		a, b := mk(), mk()
		for i := 0; i < 10000; i++ {
			if ga, gb := a.Next(), b.Next(); ga != gb {
				t.Fatalf("gap %d diverged: %v vs %v", i, ga, gb)
			}
		}
	}
}

// FuzzArrivals drives both generators with arbitrary parameters and checks
// the structural invariants: gaps are never negative and the long-run rate
// stays within a factor-2 envelope of the configured one.
func FuzzArrivals(f *testing.F) {
	f.Add(int64(1), uint16(1000), uint8(0))
	f.Add(int64(99), uint16(60000), uint8(200))
	f.Fuzz(func(t *testing.T, seed int64, kops uint16, biasByte uint8) {
		rate := float64(kops)*1e3 + 1e3 // 1k..65.5M ops/s
		bias := 0.5 + float64(biasByte)/256*0.49
		for _, a := range []Arrivals{
			NewPoisson(rate, sim.NewRand(seed)),
			NewBModel(rate, bias, sim.NewRand(seed)),
		} {
			// The b-model only conserves rate over whole segments, so the
			// window must span at least two of them at high rates.
			n := 5000 + int(2*rate*bModelSegment.Seconds())
			var total sim.Duration
			for i := 0; i < n; i++ {
				g := a.Next()
				if g < 0 {
					t.Fatalf("negative gap %v", g)
				}
				total += g
			}
			got := float64(n) / total.Seconds()
			if got < rate/2 || got > rate*2 {
				t.Fatalf("rate %.0f/s drifted to %.0f/s", rate, got)
			}
		}
	})
}
