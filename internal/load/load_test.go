package load

import (
	"bytes"
	"fmt"
	"testing"

	"hyperloop/internal/qos"
	"hyperloop/internal/sim"
)

// tinyConfig is a fast two-group cell shared by the package tests.
func tinyConfig(system string) Config {
	return Config{
		System:         system,
		Groups:         2,
		ShardsPerGroup: 1,
		HostsPerGroup:  3,
		Replicas:       3,
		RegionSize:     1 << 18,
		Seed:           1,
		Clients:        100_000,
		ActivePerGroup: 1024,
		OfferedLoad:    400_000,
		Duration:       2 * sim.Millisecond,
		Admission:      AdmissionConfig{Enabled: true},
	}
}

func summary(r Result) string {
	return fmt.Sprintf("v=%+v lat=%v p999=%v good=%.2f tput=%.2f peak=%d conns=%d/%d fused=%d/%d db=%d",
		r.Verdicts, r.Lat, r.P999, r.GoodputKops, r.TputKops, r.QueuePeak,
		r.ConnsOpened, r.ConnsClosed, r.FusedBatches, r.FusedOps, r.Doorbells)
}

// The HyperLoop arm must serve the open-loop plane with clean accounting, a
// churned million-scale client space, and bit-identical results at any
// engine worker count.
func TestRunHyperLoopDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		cfg := tinyConfig("hyperloop")
		cfg.Workers = workers
		cfg.Metrics = true
		return Run(cfg)
	}
	r1 := run(1)
	if err := r1.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if r1.Verdicts.Acked == 0 {
		t.Fatalf("nothing acked: %s", summary(r1))
	}
	if !r1.Skew.Pass() {
		t.Fatalf("skew check failed: %v", r1.Skew.Err)
	}
	if r1.ClientsModeled != 100_000 {
		t.Fatalf("modeled %d clients, want the configured space", r1.ClientsModeled)
	}
	// Churn must sweep the active window across most of the id space.
	if r1.ConnsOpened < 80_000 {
		t.Fatalf("churn opened only %d conns over a 100k space", r1.ConnsOpened)
	}

	r2 := run(2)
	s1, s2 := summary(r1), summary(r2)
	if s1 != s2 {
		t.Fatalf("results diverged across workers:\n  w1: %s\n  w2: %s", s1, s2)
	}
	d1, err := r1.MergedRegistry().ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := r2.MergedRegistry().ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Fatal("metrics dumps differ across worker counts")
	}
}

// With QoS on — per-tenant buckets, shard-scoped keysets, and a live
// controller per group — the accounting contract must still balance
// exactly, per class and in aggregate.
func TestRunQoSAccountingBalances(t *testing.T) {
	cfg := tinyConfig("hyperloop")
	cfg.ShardsPerGroup = 2
	cfg.HostsPerGroup = 5
	cfg.Tenants = []TenantClass{
		{Name: "steady", Weight: 1},
		{Name: "metered", Weight: 1, RatePerSec: 50_000,
			SLO: qos.SLO{Budget: qos.Budget{Escrow: 1, StepCost: 1, SpendCap: 1}}},
	}
	cfg.Admission.PerTenantQueues = true
	cfg.QoS = true
	r := Run(cfg)
	if err := r.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	var arrivals, admitted, throttled, acked uint64
	for _, ts := range r.Tenants {
		if ts.Admitted+ts.Throttled > ts.Arrivals {
			t.Errorf("class %s: admitted %d + throttled %d > arrivals %d",
				ts.Name, ts.Admitted, ts.Throttled, ts.Arrivals)
		}
		arrivals += ts.Arrivals
		admitted += ts.Admitted
		throttled += ts.Throttled
		acked += ts.Acked
	}
	v := r.Verdicts
	if arrivals != v.Arrivals || admitted != v.Admitted ||
		throttled != v.ShedThrottled || acked != v.Acked {
		t.Fatalf("class sums (%d/%d/%d/%d) disagree with verdicts %+v",
			arrivals, admitted, throttled, acked, v)
	}
	if v.ShedThrottled == 0 {
		t.Fatal("metered class was never throttled: the QoS bucket is not engaged")
	}
}

// The Naive arm serves the same keyspace through the baseline datapath.
func TestRunNaiveBackend(t *testing.T) {
	cfg := tinyConfig("naive")
	cfg.OfferedLoad = 200_000
	r := Run(cfg)
	if err := r.CheckAccounting(); err != nil {
		t.Fatal(err)
	}
	if r.Verdicts.Acked == 0 {
		t.Fatalf("nothing acked: %s", summary(r))
	}
	if b, o := r.FusedBatches, r.FusedOps; b != 0 || o != 0 {
		t.Fatalf("naive arm reported fusion (%d, %d)", b, o)
	}
}

// Past saturation, admission control must hold goodput while the disabled
// baseline's hidden queue pushes open-loop latency through the SLO.
func TestAdmissionProtectsGoodputPastSaturation(t *testing.T) {
	base := Config{
		System:         "hyperloop",
		Groups:         2,
		ShardsPerGroup: 1,
		HostsPerGroup:  3,
		Replicas:       3,
		RegionSize:     1 << 18,
		FusionDepth:    4,
		DoorbellCost:   200 * sim.Nanosecond,
		Seed:           1,
		Clients:        100_000,
		OfferedLoad:    1_000_000, // ~5x the measured two-group capacity
		Duration:       2 * sim.Millisecond,
		SLO:            500 * sim.Microsecond,
	}
	// A shallow bounded queue keeps admitted-op sojourn under the SLO at the
	// measured ~100 kops/s per-group service rate; everything beyond it sheds.
	adm := AdmissionConfig{
		QueueDepth: 12, MaxInflight: 8, DispatchBatch: 8,
		DispatchEvery: 2 * sim.Microsecond,
	}

	on := base
	on.Admission = adm
	on.Admission.Enabled = true
	rOn := Run(on)
	if err := rOn.CheckAccounting(); err != nil {
		t.Fatal(err)
	}

	off := base
	off.Admission = adm
	off.Admission.Enabled = false
	rOff := Run(off)
	if err := rOff.CheckAccounting(); err != nil {
		t.Fatal(err)
	}

	if rOn.Verdicts.ShedQueueFull == 0 {
		t.Fatalf("overload but no queue-full sheds: %s", summary(rOn))
	}
	if rOff.Verdicts.ShedQueueFull != 0 || rOff.Verdicts.ShedThrottled != 0 {
		t.Fatalf("disabled admission shed load: %s", summary(rOff))
	}
	if rOn.GoodputKops < 1.5*rOff.GoodputKops {
		t.Fatalf("admission-on goodput %.1f not >> admission-off %.1f",
			rOn.GoodputKops, rOff.GoodputKops)
	}
	if rOff.P999 < 2*rOn.P999 {
		t.Fatalf("hidden queue p99.9 %v not >> bounded-queue %v", rOff.P999, rOn.P999)
	}
	// Same-instant dispatch batches must engage the WQE fusion path.
	if rOn.FusedBatches == 0 || rOn.FusedOps <= rOn.FusedBatches {
		t.Fatalf("fusion never engaged: batches=%d ops=%d", rOn.FusedBatches, rOn.FusedOps)
	}
}
