package load

import (
	"fmt"

	"hyperloop/internal/check"
	"hyperloop/internal/cluster"
	"hyperloop/internal/metrics"
	"hyperloop/internal/qos"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
	"hyperloop/internal/ycsb"
)

// Config sizes one open-loop serving-plane run.
type Config struct {
	// System selects the data plane: "hyperloop" (default) or "naive".
	System string
	// Topology — mirrors ServerConfig.
	Groups         int
	ShardsPerGroup int
	HostsPerGroup  int
	Replicas       int
	RegionSize     int
	FusionDepth    int
	DoorbellCost   sim.Duration
	Workers        int
	Seed           int64

	// Clients is the modeled connection-id space across all groups
	// (default 1<<20). Ids cost nothing per se — the population is a
	// sampling space, not a goroutine army — so a million-client run is the
	// normal case, not a stress test.
	Clients int
	// ActivePerGroup is each group's concurrently-open connection count
	// (default 4096); churn slides this window across the group's id slice
	// so the whole space is touched over the run.
	ActivePerGroup int
	// Arrival selects the process: "poisson" (default) or "bmodel".
	Arrival string
	// BModelBias is the b-model's burstiness knob (default 0.7).
	BModelBias float64
	// OfferedLoad is the total arrival rate across groups, puts/second
	// (default 400k).
	OfferedLoad float64
	// ValueSize is the put payload (default 128).
	ValueSize int
	// Duration is the arrival horizon in virtual time (default 20ms);
	// admitted ops are allowed a drain window of 3x afterward before being
	// counted unserved.
	Duration sim.Duration
	// SLO bounds the open-loop latency (arrival to ack) an op may take and
	// still count toward goodput (default 150µs).
	SLO sim.Duration

	// Tenants partitions the client population into rate classes (default:
	// one unthrottled class).
	Tenants []TenantClass
	// Admission tunes the per-group controller; Admission.Enabled is the
	// on/off axis the experiments sweep.
	Admission AdmissionConfig

	// HostTiers labels each group's host pool for tiered placement and
	// TierNIC gives tiers their own NIC profiles (see ServerConfig).
	HostTiers []shard.Tier
	TierNIC   map[shard.Tier]rdma.Config
	// QoS starts one qos.Controller per group: tenant keysets become
	// shard-scoped, verdicts flow into per-tenant metric series, and
	// sustained saturation can fund migration-backed scale-out within each
	// tenant's budget. Requires the hyperloop arm; forces Metrics on.
	QoS bool
	// QoSConfig tunes the controllers (zero fields take qos defaults).
	QoSConfig qos.Config

	// Metrics attaches per-group registries; WithSpans per-group op spans
	// (HyperLoop arm only).
	Metrics   bool
	WithSpans bool
}

func (c *Config) fill() {
	if c.System == "" {
		c.System = "hyperloop"
	}
	if c.Clients <= 0 {
		c.Clients = 1 << 20
	}
	if c.ActivePerGroup <= 0 {
		c.ActivePerGroup = 4096
	}
	if c.Arrival == "" {
		c.Arrival = "poisson"
	}
	if c.BModelBias == 0 {
		c.BModelBias = 0.7
	}
	if c.OfferedLoad <= 0 {
		c.OfferedLoad = 400_000
	}
	if c.ValueSize <= 0 {
		c.ValueSize = 128
	}
	if c.Duration <= 0 {
		c.Duration = 20 * sim.Millisecond
	}
	if c.SLO <= 0 {
		c.SLO = 150 * sim.Microsecond
	}
	if len(c.Tenants) == 0 {
		c.Tenants = DefaultTenants
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// TenantStat is one rate class's merged outcome.
type TenantStat struct {
	Name      string
	Arrivals  uint64
	Admitted  uint64
	Throttled uint64
	Acked     uint64
	P99       sim.Duration
	// Credits is the class's leftover bucket credit summed across groups at
	// cut-off (burst headroom it never spent).
	Credits float64
}

// Result is one serving-plane run, merged across groups in group order so
// every field is bit-identical at any engine worker count.
type Result struct {
	System   string
	Offered  float64 // puts/second across groups
	Workers  int
	Elapsed  sim.Duration // the arrival horizon
	Verdicts Verdicts

	// Open-loop latency (arrival to ack, queueing included) over all acked
	// ops; P999 is the tail the curve plots.
	Lat  stats.Summary
	P999 sim.Duration
	// TputKops counts every ack; GoodputKops only acks within SLO. Both are
	// normalized by the arrival horizon, so shed or unserved load shows up
	// as the gap against the offered rate.
	TputKops    float64
	GoodputKops float64

	QueuePeak int

	// Client-population accounting.
	ClientsModeled int
	ConnsOpened    uint64
	ConnsClosed    uint64

	// Data-plane counters.
	FusedBatches uint64
	FusedOps     uint64
	Doorbells    uint64

	Tenants []TenantStat

	// QoSEvents is every group controller's decision log concatenated in
	// group order; QoSTenants the per-tenant controller ledgers merged in
	// group order (steps/spend summed, Degraded OR-ed). Both empty unless
	// Config.QoS.
	QoSEvents  []qos.Event
	QoSTenants []qos.TenantState

	// Placements is, per group in group order, the hyperloop arm's final
	// shard→hosts map (nil for naive) — the audit trail tier-placement
	// checks read after the run.
	Placements [][][]int

	// SpansStarted/Ended report the op-span ledger when WithSpans is set.
	SpansStarted uint64
	SpansEnded   uint64

	// Skew is the conservative-lookahead invariant verdict.
	Skew check.Result
	// Regs are the per-group registries in group order (nil unless
	// Config.Metrics).
	Regs []*metrics.Registry
}

// MergedRegistry merges the per-group registries in group order — the
// bit-reproducible dump the determinism gates compare.
func (r Result) MergedRegistry() *metrics.Registry {
	merged := metrics.NewRegistry()
	for _, reg := range r.Regs {
		merged.Merge(reg)
	}
	return merged
}

// CheckAccounting verifies the no-hidden-hole identity: every arrival ended
// in exactly one verdict bucket.
func (r Result) CheckAccounting() error {
	v := r.Verdicts
	if v.Arrivals != v.Admitted+v.ShedQueueFull+v.ShedThrottled {
		return fmt.Errorf("load: %d arrivals != %d admitted + %d shed-queue + %d shed-throttled",
			v.Arrivals, v.Admitted, v.ShedQueueFull, v.ShedThrottled)
	}
	if v.Admitted != v.Acked+v.Failed+v.Unserved {
		return fmt.Errorf("load: %d admitted != %d acked + %d failed + %d unserved",
			v.Admitted, v.Acked, v.Failed, v.Unserved)
	}
	return nil
}

// keysetSize is the per-group bounded key footprint (the workload pattern
// the population samples; the modeled scale lives in the client-id space).
const keysetSize = 128

// Run executes one open-loop serving run and returns the merged result.
func Run(cfg Config) Result {
	cfg.fill()
	if cfg.QoS {
		if cfg.System != "hyperloop" {
			panic("load: QoS requires the hyperloop arm (scale-out needs the shard plane)")
		}
		// The controllers observe tenant series living in the per-group
		// registries; without them there is nothing to window.
		cfg.Metrics = true
	}
	var regs []*metrics.Registry
	scfg := ServerConfig{
		Groups:         cfg.Groups,
		ShardsPerGroup: cfg.ShardsPerGroup,
		HostsPerGroup:  cfg.HostsPerGroup,
		Replicas:       cfg.Replicas,
		RegionSize:     cfg.RegionSize,
		FusionDepth:    cfg.FusionDepth,
		DoorbellCost:   cfg.DoorbellCost,
		HostTiers:      cfg.HostTiers,
		TierNIC:        cfg.TierNIC,
		Workers:        cfg.Workers,
		Seed:           cfg.Seed,
		WithSpans:      cfg.WithSpans,
	}
	scfg.fill()
	if cfg.Metrics {
		regs = make([]*metrics.Registry, scfg.Groups)
		for g := range regs {
			regs[g] = metrics.NewRegistry()
		}
		scfg.Metrics = regs
	}
	var srv Server
	var err error
	switch cfg.System {
	case "hyperloop":
		srv, err = OpenHyperLoop(scfg)
	case "naive":
		srv, err = OpenNaive(scfg)
	default:
		panic(fmt.Sprintf("load: unknown system %q", cfg.System))
	}
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	groups := srv.Groups()

	// Per-group plumbing, every slot touched only by its own partition.
	type groupState struct {
		adm      *Admission
		clients  *Clients
		hist     *stats.Histogram
		classH   []*stats.Histogram
		classAck []uint64
		good     uint64
		act      *groupActuator // nil unless cfg.QoS
		ctrl     *qos.Controller
	}
	gs := make([]*groupState, groups)

	// Common absolute start: the latest any partition has reached after
	// open, so every group's arrival clock is anchored at one instant.
	var start sim.Time
	for g := 0; g < groups; g++ {
		if t := srv.PE().Partition(g).Now(); t > start {
			start = t
		}
	}
	horizon := start.Add(cfg.Duration)

	rateG := cfg.OfferedLoad / float64(groups)
	spaceG := cfg.Clients / groups
	if spaceG < 1 {
		spaceG = 1
	}
	expArrivals := rateG * cfg.Duration.Seconds()
	churn := 0.0
	if expArrivals > 0 && spaceG > cfg.ActivePerGroup {
		churn = float64(spaceG-cfg.ActivePerGroup) / expArrivals
	}

	for g := 0; g < groups; g++ {
		g := g
		eng := srv.PE().Partition(g)
		st := &groupState{
			clients:  NewClients(spaceG, cfg.ActivePerGroup, churn, cfg.Tenants),
			hist:     stats.NewHistogram(),
			classH:   make([]*stats.Histogram, len(cfg.Tenants)),
			classAck: make([]uint64, len(cfg.Tenants)),
		}
		for i := range st.classH {
			st.classH[i] = stats.NewHistogram()
		}
		gs[g] = st

		rng := sim.NewRand(cfg.Seed + 77*int64(g) + 13)
		var arr Arrivals
		switch cfg.Arrival {
		case "poisson":
			arr = NewPoisson(rateG, rng.Fork())
		case "bmodel":
			arr = NewBModel(rateG, cfg.BModelBias, rng.Fork())
		default:
			panic(fmt.Sprintf("load: unknown arrival process %q", cfg.Arrival))
		}

		// Bounded per-group keyset, filtered to keys homed here — puts stay
		// partition-local, and both backends agree on the filter.
		var keys []string
		for i := 0; len(keys) < keysetSize; i++ {
			k := fmt.Sprintf("ld/g%d/%06d", g, i)
			if srv.HomeGroup(k) == g {
				keys = append(keys, k)
			}
		}
		vals := ycsb.NewValueGenerator(cfg.ValueSize, cfg.Seed+int64(g)*1013+7)

		st.adm = NewAdmission(eng, cfg.Admission, cfg.Tenants,
			func(key string, val []byte, done func(error)) { srv.Put(g, key, val, done) },
			func(o *Op, err error) {
				if err != nil {
					return
				}
				lat := eng.Now().Sub(o.arrived)
				st.hist.Record(lat)
				st.classH[o.class].Record(lat)
				st.classAck[o.class]++
				if lat <= cfg.SLO {
					st.good++
				}
			})

		if cfg.Metrics {
			reg := regs[g]
			lbl := fmt.Sprintf("lg%d", g)
			cluster.Instrument(reg, srv.Cluster(g), lbl)
			v := &st.adm.v
			reg.GaugeFunc("load", "arrivals", lbl, func() float64 { return float64(v.Arrivals) })
			reg.GaugeFunc("load", "admitted", lbl, func() float64 { return float64(v.Admitted) })
			reg.GaugeFunc("load", "shed_queue_full", lbl, func() float64 { return float64(v.ShedQueueFull) })
			reg.GaugeFunc("load", "shed_throttled", lbl, func() float64 { return float64(v.ShedThrottled) })
			reg.GaugeFunc("load", "backpressure", lbl, func() float64 { return float64(v.Backpressure) })
			reg.GaugeFunc("load", "acked", lbl, func() float64 { return float64(v.Acked) })
			reg.GaugeFunc("load", "queue_depth", lbl, func() float64 {
				return float64(st.adm.Pending() - st.adm.inflight)
			})
			reg.GaugeFunc("load", "conns_opened", lbl, func() float64 {
				o, _ := st.clients.Conns()
				return float64(o)
			})
		}

		if cfg.QoS {
			names := make([]string, len(cfg.Tenants))
			classes := make([]qos.Class, len(cfg.Tenants))
			for i, tc := range cfg.Tenants {
				names[i] = tc.Name
				classes[i] = qos.Class{Name: tc.Name, ContractRate: tc.RatePerSec, SLO: tc.SLO}
			}
			src := qos.NewRegistrySource(regs[g], names)
			st.adm.InstrumentQoS(src)

			pl := srv.Plane(g)
			shardCache := map[int][]string{}
			shardKeys := func(sid int) []string {
				ks, ok := shardCache[sid]
				if !ok {
					ks = shardKeyset(srv, pl, g, sid)
					shardCache[sid] = ks
				}
				return ks
			}
			// Tenant i starts on shard i mod ShardsPerGroup; shards past the
			// tenant count are the spares scale-out recruits.
			keysets := make([][]string, len(cfg.Tenants))
			for i := range keysets {
				keysets[i] = shardKeys(i % pl.Shards())
			}
			spare := len(cfg.Tenants)
			if spare > pl.Shards() {
				spare = pl.Shards()
			}
			st.act = &groupActuator{
				adm: st.adm, pl: pl,
				hosts: scfg.HostsPerGroup, replicas: scfg.Replicas,
				keysets: keysets, spare: spare, shardKeys: shardKeys,
			}
			st.ctrl = qos.NewController(eng, cfg.QoSConfig, classes, src, st.act)
			// Decisions stop at the arrival horizon; in-flight scale-outs
			// still settle their ledgers during the drain window.
			ctrl := st.ctrl
			eng.Schedule(horizon.Sub(eng.Now()), func() { ctrl.Stop() })
		}

		// The open-loop arrival pump: offer, then schedule the next arrival
		// if it still lands inside the horizon.
		var tick func()
		tick = func() {
			// A client keeps its key across the run (session working set);
			// the keyset stays bounded while the id space is huge. With QoS
			// on, the class's live keyset aims the op at the shards the
			// tenant owns right now.
			id, class := st.clients.Sample(rng)
			var key string
			if st.act != nil {
				ks := st.act.keysets[class]
				key = ks[id%len(ks)]
			} else {
				key = keys[id%len(keys)]
			}
			st.adm.Offer(key, vals.Next(0), class)
			gap := arr.Next()
			if eng.Now().Add(gap) <= horizon {
				eng.Schedule(gap, tick)
			}
		}
		first := arr.Next()
		at := start.Add(first)
		if at <= horizon {
			eng.Schedule(at.Sub(eng.Now()), tick)
		}
		if sp := srv.Spans(g); sp != nil {
			sp.Annotate("load", fmt.Sprintf("open-loop start g%d rate=%.0f/s", g, rateG))
		}
	}

	var samplers []*metrics.Sampler
	if cfg.Metrics {
		for g := 0; g < groups; g++ {
			samplers = append(samplers, metrics.NewSampler(srv.PE().Partition(g), regs[g], sim.Millisecond))
		}
	}

	// Drive to the horizon, then give admitted ops a bounded drain window;
	// whatever is still pending after it is counted unserved, never hidden.
	drainLimit := horizon.Add(3 * cfg.Duration).Add(10 * sim.Millisecond)
	deadline := start
	for {
		deadline = deadline.Add(500 * sim.Microsecond)
		if deadline > drainLimit {
			deadline = drainLimit
		}
		srv.PE().Run(deadline)
		if deadline.Sub(horizon) >= 0 {
			pending := 0
			for _, st := range gs {
				pending += st.adm.Pending()
			}
			if pending == 0 || deadline == drainLimit {
				break
			}
		}
	}
	for _, s := range samplers {
		s.Stop()
	}
	if cfg.Metrics {
		for g := range regs {
			regs[g].Sample(srv.PE().Partition(g).Now())
		}
	}
	skew := check.PartitionSkew(srv.PE())

	// Merge in group order.
	res := Result{
		System:         cfg.System,
		Offered:        cfg.OfferedLoad,
		Workers:        cfg.Workers,
		Elapsed:        cfg.Duration,
		QueuePeak:      0,
		ClientsModeled: spaceG * groups,
		Skew:           skew,
		Regs:           regs,
	}
	agg := stats.NewHistogram()
	var good uint64
	classH := make([]*stats.Histogram, len(cfg.Tenants))
	for i := range classH {
		classH[i] = stats.NewHistogram()
	}
	res.Tenants = make([]TenantStat, len(cfg.Tenants))
	for i, tc := range cfg.Tenants {
		res.Tenants[i].Name = tc.Name
	}
	for g, st := range gs {
		st.adm.CutOff()
		res.Verdicts.Add(st.adm.Verdicts())
		if qp := st.adm.QueuePeak(); qp > res.QueuePeak {
			res.QueuePeak = qp
		}
		agg.Merge(st.hist)
		good += st.good
		o, c := st.clients.Conns()
		res.ConnsOpened += o
		res.ConnsClosed += c
		for i := range cfg.Tenants {
			arrivals, admitted, throttled, _ := st.adm.ClassStats(i)
			res.Tenants[i].Arrivals += arrivals
			res.Tenants[i].Admitted += admitted
			res.Tenants[i].Throttled += throttled
			res.Tenants[i].Acked += st.classAck[i]
			res.Tenants[i].Credits += st.adm.Credits(i)
			classH[i].Merge(st.classH[i])
		}
		if st.ctrl != nil {
			res.QoSEvents = append(res.QoSEvents, st.ctrl.Events()...)
			states := st.ctrl.States()
			if res.QoSTenants == nil {
				res.QoSTenants = make([]qos.TenantState, len(states))
			}
			for i, s := range states {
				res.QoSTenants[i].Name = s.Name
				res.QoSTenants[i].Steps += s.Steps
				res.QoSTenants[i].Spent += s.Spent
				res.QoSTenants[i].EscrowLeft += s.EscrowLeft
				res.QoSTenants[i].FundedRate += s.FundedRate
				res.QoSTenants[i].Degraded = res.QoSTenants[i].Degraded || s.Degraded
			}
		}
		if pl := srv.Plane(g); pl != nil {
			res.Placements = append(res.Placements, pl.Map.Placements())
		}
		if sp := srv.Spans(g); sp != nil {
			started, ended, _, _ := sp.Counts()
			res.SpansStarted += started
			res.SpansEnded += ended
		}
	}
	for i := range res.Tenants {
		res.Tenants[i].P99 = classH[i].P99()
	}
	res.Lat = agg.Summarize()
	res.P999 = agg.Percentile(99.9)
	res.TputKops = float64(res.Verdicts.Acked) / cfg.Duration.Seconds() / 1e3
	res.GoodputKops = float64(good) / cfg.Duration.Seconds() / 1e3
	res.FusedBatches, res.FusedOps = srv.FusionStats()
	for g := 0; g < groups; g++ {
		cl := srv.Cluster(g)
		res.Doorbells += cl.Client().NIC.Counters().Doorbells
		for _, n := range cl.Replicas() {
			res.Doorbells += n.NIC.Counters().Doorbells
		}
	}
	return res
}
