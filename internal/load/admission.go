package load

import (
	"errors"

	"hyperloop/internal/qos"
	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// AdmissionConfig tunes one group leader's admission controller.
type AdmissionConfig struct {
	// Enabled guards the whole policy. Disabled, every arrival joins an
	// unbounded queue and no throttle applies — the hidden-queue baseline
	// whose open-loop latency explodes past saturation.
	Enabled bool
	// QueueDepth bounds the admission queue; an arrival that finds it full
	// is shed with a counted verdict (default 256).
	QueueDepth int
	// MaxInflight caps ops handed to the data plane at once (default 64).
	MaxInflight int
	// DispatchBatch ops leave the queue in one drain event, reaching the
	// group leader in the same virtual instant — the back-to-back run the
	// doorbell-coalescing WQE fusion path needs (default 8).
	DispatchBatch int
	// DispatchEvery is the drain cadence: the leader aggregates requests for
	// this long before posting the next batch. It is the classic doorbell-
	// moderation trade — a fixed small latency add at low load buys one MMIO
	// ring per batch under high load (default 1µs).
	DispatchEvery sim.Duration
	// RetryDelay pauses dispatch after WAL-full backpressure: the ring needs
	// executor progress, which hammering cannot accelerate (default 2µs).
	RetryDelay sim.Duration
	// PerTenantQueues splits the admission FIFO into one queue per tenant
	// class, drained round-robin, so a bursting tenant cannot occupy the
	// whole shared queue ahead of everyone else. The depth bound stays
	// global. Off, the single shared FIFO is the legacy policy.
	PerTenantQueues bool
}

func (c *AdmissionConfig) fill() {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 64
	}
	if c.DispatchBatch <= 0 {
		c.DispatchBatch = 8
	}
	if c.DispatchEvery <= 0 {
		c.DispatchEvery = sim.Microsecond
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 2 * sim.Microsecond
	}
}

// Verdicts counts every admission outcome. The controller's contract is
// that no arrival ever vanishes: Arrivals == Admitted + ShedQueueFull +
// ShedThrottled, and Admitted == Acked + Failed + Unserved once a run is
// cut off. Backpressure counts WAL-full bounces, which re-queue the op
// rather than ending it, so it is a pressure signal, not a terminal state.
type Verdicts struct {
	Arrivals      uint64
	Admitted      uint64
	ShedQueueFull uint64
	ShedThrottled uint64
	Backpressure  uint64
	Acked         uint64
	Failed        uint64
	Unserved      uint64
}

// Add accumulates other into v (merging per-group verdicts in group order).
func (v *Verdicts) Add(o Verdicts) {
	v.Arrivals += o.Arrivals
	v.Admitted += o.Admitted
	v.ShedQueueFull += o.ShedQueueFull
	v.ShedThrottled += o.ShedThrottled
	v.Backpressure += o.Backpressure
	v.Acked += o.Acked
	v.Failed += o.Failed
	v.Unserved += o.Unserved
}

// newBucket builds a class's qos.Bucket with the legacy default burst:
// a millisecond of budget, floored at 8 ops. A class with RatePerSec 0 is
// unthrottled — its bucket exists only so SetRate can impose a contract
// later.
func newBucket(class TenantClass) qos.Bucket {
	burst := class.Burst
	if burst <= 0 {
		burst = class.RatePerSec / 1000
		if burst < 8 {
			burst = 8
		}
	}
	return qos.NewBucket(class.RatePerSec, burst)
}

// Op is one queued put.
type Op struct {
	key     string
	val     []byte
	class   int
	arrived sim.Time
}

// Admission is one group leader's admission controller: per-tenant token
// buckets, a bounded FIFO, and a batching dispatcher that releases up to
// DispatchBatch ops per DispatchEvery tick into the data plane — all ops of
// a batch submitted in the same virtual instant, which is exactly the run
// the core's WQE-chain fusion coalesces behind one doorbell.
type Admission struct {
	eng *sim.Engine
	cfg AdmissionConfig

	// put hands one op to the data plane; the controller owns the window
	// accounting around it.
	put func(key string, val []byte, done func(error))
	// onAck observes terminal completions (latency recording lives with the
	// driver, not the controller).
	onAck func(o *Op, err error)

	buckets  []qos.Bucket
	queue    []*Op
	head     int
	queues   [][]*Op // per-class FIFOs when cfg.PerTenantQueues
	heads    []int
	rr       int   // next class the round-robin drain visits
	retry    []*Op // WAL-bounced ops, drained before the queue
	inflight int
	armed    bool
	paused   bool

	// qs, when set, mirrors per-tenant verdicts into metric series for the
	// QoS controller to observe. Writes are observe-only: they never
	// schedule events or alter admission decisions.
	qs *qos.RegistrySource

	v         Verdicts
	queuePeak int
	// per-class verdict slices, indexed like buckets
	classArrivals  []uint64
	classAdmitted  []uint64
	classThrottled []uint64
	classAcked     []uint64
}

// NewAdmission builds a controller for one group over the given tenant
// classes. put submits to the data plane; onAck fires once per admitted op
// at its terminal completion (may be nil).
func NewAdmission(eng *sim.Engine, cfg AdmissionConfig, classes []TenantClass,
	put func(key string, val []byte, done func(error)), onAck func(o *Op, err error)) *Admission {
	cfg.fill()
	if len(classes) == 0 {
		classes = DefaultTenants
	}
	a := &Admission{
		eng:            eng,
		cfg:            cfg,
		put:            put,
		onAck:          onAck,
		classArrivals:  make([]uint64, len(classes)),
		classAdmitted:  make([]uint64, len(classes)),
		classThrottled: make([]uint64, len(classes)),
		classAcked:     make([]uint64, len(classes)),
	}
	for _, cl := range classes {
		a.buckets = append(a.buckets, newBucket(cl))
	}
	if cfg.PerTenantQueues {
		a.queues = make([][]*Op, len(classes))
		a.heads = make([]int, len(classes))
	}
	return a
}

// InstrumentQoS mirrors this controller's per-tenant verdicts and ack
// latencies into src's metric series (one series per class, same indexing)
// so a qos.Controller can observe the group. Set before offering load.
func (a *Admission) InstrumentQoS(src *qos.RegistrySource) { a.qs = src }

// SetRate retunes class's token bucket at the engine's current instant —
// the QoS controller's actuation path for funded rate raises. Settling
// happens inside the bucket, so accrual at the old rate is never lost.
func (a *Admission) SetRate(class int, rate float64) {
	a.buckets[class].SetRate(a.eng.Now(), rate)
}

// Rate returns class's current bucket refill rate (0 = unthrottled).
func (a *Admission) Rate(class int) float64 { return a.buckets[class].Rate() }

// Credits returns class's burst credit balance right now.
func (a *Admission) Credits(class int) float64 {
	return a.buckets[class].Credits(a.eng.Now())
}

// Verdicts returns the verdict counters so far.
func (a *Admission) Verdicts() Verdicts { return a.v }

// QueuePeak returns the deepest the queue ever got.
func (a *Admission) QueuePeak() int { return a.queuePeak }

// queued returns ops sitting in the FIFO(s), whichever queue policy runs.
func (a *Admission) queued() int {
	if a.cfg.PerTenantQueues {
		n := 0
		for c := range a.queues {
			n += len(a.queues[c]) - a.heads[c]
		}
		return n
	}
	return len(a.queue) - a.head
}

// Pending returns ops admitted but not yet terminal: queued, bounced, or in
// the data plane.
func (a *Admission) Pending() int {
	return a.queued() + len(a.retry) + a.inflight
}

// ClassStats returns per-class (arrivals, admitted, throttled, acked)
// counters.
func (a *Admission) ClassStats(class int) (arrivals, admitted, throttled, acked uint64) {
	return a.classArrivals[class], a.classAdmitted[class], a.classThrottled[class], a.classAcked[class]
}

// Offer presents one arrival. The verdict is immediate: throttled, shed at
// the full queue, or admitted (queued for dispatch).
func (a *Admission) Offer(key string, val []byte, class int) {
	a.v.Arrivals++
	a.classArrivals[class]++
	if a.qs != nil {
		a.qs.Series(class).Arrivals.Inc()
	}
	if a.cfg.Enabled {
		// Rate 0 is unthrottled by contract; a bucket only gates once a
		// contract (initial or SetRate-imposed) gives it a refill rate.
		if b := &a.buckets[class]; b.Rate() > 0 && !b.Take(a.eng.Now()) {
			a.v.ShedThrottled++
			a.classThrottled[class]++
			if a.qs != nil {
				a.qs.Series(class).Throttled.Inc()
			}
			return
		}
		if a.queued()+len(a.retry) >= a.cfg.QueueDepth {
			a.v.ShedQueueFull++
			return
		}
	}
	a.v.Admitted++
	a.classAdmitted[class]++
	if a.qs != nil {
		a.qs.Series(class).Admitted.Inc()
	}
	o := &Op{key: key, val: val, class: class, arrived: a.eng.Now()}
	if a.cfg.PerTenantQueues {
		a.queues[class] = append(a.queues[class], o)
	} else {
		a.queue = append(a.queue, o)
	}
	if d := a.Pending() - a.inflight; d > a.queuePeak {
		a.queuePeak = d
	}
	a.arm()
}

// arm schedules the next drain tick if one isn't already pending and there
// is both work and window.
func (a *Admission) arm() {
	if a.armed || a.paused {
		return
	}
	if a.inflight >= a.cfg.MaxInflight || a.queued()+len(a.retry) == 0 {
		return
	}
	a.armed = true
	a.eng.Schedule(a.cfg.DispatchEvery, a.drain)
}

// next pops the op to dispatch: bounced ops first (they were admitted
// earliest), then the FIFO — or, with per-tenant queues, the next non-empty
// class in round-robin order, so every class's head-of-line op competes
// equally for dispatch slots.
func (a *Admission) next() *Op {
	if n := len(a.retry); n > 0 {
		o := a.retry[n-1]
		a.retry = a.retry[:n-1]
		return o
	}
	if a.cfg.PerTenantQueues {
		for i := 0; i < len(a.queues); i++ {
			c := (a.rr + i) % len(a.queues)
			if a.heads[c] >= len(a.queues[c]) {
				continue
			}
			o := a.queues[c][a.heads[c]]
			a.queues[c][a.heads[c]] = nil
			a.heads[c]++
			if a.heads[c] > 1024 && a.heads[c]*2 > len(a.queues[c]) {
				a.queues[c] = append(a.queues[c][:0], a.queues[c][a.heads[c]:]...)
				a.heads[c] = 0
			}
			a.rr = (c + 1) % len(a.queues)
			return o
		}
		return nil
	}
	if a.head < len(a.queue) {
		o := a.queue[a.head]
		a.queue[a.head] = nil
		a.head++
		if a.head > 1024 && a.head*2 > len(a.queue) {
			a.queue = append(a.queue[:0], a.queue[a.head:]...)
			a.head = 0
		}
		return o
	}
	return nil
}

// drain releases one batch into the data plane — every op of the batch in
// this same virtual instant.
func (a *Admission) drain() {
	a.armed = false
	if a.paused {
		return
	}
	for n := a.cfg.DispatchBatch; n > 0 && a.inflight < a.cfg.MaxInflight; n-- {
		o := a.next()
		if o == nil {
			break
		}
		a.inflight++
		a.put(o.key, o.val, func(err error) { a.complete(o, err) })
	}
	a.arm()
}

// complete settles one data-plane completion.
func (a *Admission) complete(o *Op, err error) {
	a.inflight--
	if errors.Is(err, wal.ErrLogFull) {
		// Ring backpressure: surface it as a counted verdict, re-queue the
		// op (it was admitted — shedding it now would be a hidden hole), and
		// pause dispatch so the executor can make progress.
		a.v.Backpressure++
		if a.qs != nil {
			a.qs.Backpressure().Inc()
		}
		a.retry = append(a.retry, o)
		a.pause()
		return
	}
	if err != nil {
		a.v.Failed++
	} else {
		a.v.Acked++
		a.classAcked[o.class]++
		if a.qs != nil {
			s := a.qs.Series(o.class)
			s.Acked.Inc()
			s.Lat.Observe(a.eng.Now().Sub(o.arrived))
		}
	}
	if a.onAck != nil {
		a.onAck(o, err)
	}
	a.arm()
}

func (a *Admission) pause() {
	if a.paused {
		return
	}
	a.paused = true
	a.eng.Schedule(a.cfg.RetryDelay, func() {
		a.paused = false
		a.arm()
	})
}

// CutOff counts everything still pending as unserved (end-of-run
// accounting; the identity Admitted == Acked + Failed + Unserved holds from
// here on). Call only after the engine has stopped driving this group.
func (a *Admission) CutOff() {
	a.v.Unserved += uint64(a.Pending())
}
