// Package load is the open-loop serving plane: millions of modeled client
// connections — Poisson or self-similar (b-model) arrival processes, open/
// close churn over a bounded active window, per-tenant rate classes — feeding
// a replicated data plane (the HyperLoop sharded plane or the Naive-RDMA
// baseline) through an admission controller in front of each group leader.
//
// The plane is open-loop in the queueing-theory sense: arrivals are drawn
// from a process whose rate the experiment sets, independent of completions.
// Past the saturation knee the offered load keeps coming, and what happens
// to it is the measured object — the admission controller sheds it with a
// counted verdict (bounded queue, per-tenant token buckets), while the
// disabled-admission baseline lets the queue grow without bound and the
// open-loop latency with it. Nothing is ever silently dropped: every arrival
// ends in exactly one verdict bucket, and the accounting identity
// (arrivals == admitted + shed, admitted == acked + failed + unserved) is
// checked by tests and surfaced in every result.
//
// All randomness flows through per-group seeded RNGs and all state is
// partition-local, so a run on a sim.PartitionedEngine produces bit-identical
// results at any worker count — the same discipline as the sharded plane.
package load

import "hyperloop/internal/sim"

// Arrivals generates an open-loop arrival sequence as successive
// inter-arrival gaps. Implementations are deterministic functions of their
// seed: the same constructor arguments produce the same gap sequence.
type Arrivals interface {
	// Next returns the gap from the previous arrival to the next one.
	Next() sim.Duration
}

// Poisson is the memoryless arrival process: exponential inter-arrival gaps
// with mean 1/rate. It is the classic open-loop baseline — burstiness only
// from chance clustering, coefficient of variation 1.
type Poisson struct {
	mean sim.Duration
	rng  *sim.Rand
}

// NewPoisson builds a Poisson process offering ratePerSec arrivals/second.
func NewPoisson(ratePerSec float64, rng *sim.Rand) *Poisson {
	if ratePerSec <= 0 {
		panic("load: Poisson rate must be positive")
	}
	return &Poisson{mean: sim.Duration(1e9 / ratePerSec), rng: rng}
}

// Next returns an exponential gap.
func (p *Poisson) Next() sim.Duration { return p.rng.Exp(p.mean) }

// bModelLevels fixes the b-model's aggregation depth: segments split 2^10
// ways, enough scales for the burstiness to show at every window size the
// oracle checks while keeping the per-segment state constant.
const bModelLevels = 10

// BModelSegment is the regenerated horizon: each segment's op mass is
// conserved exactly (rate * segment ops), so long-run throughput matches the
// configured rate while short windows swing with the bias. Exported so the
// oracle can measure rate conservation over whole segments.
const BModelSegment = 8 * sim.Millisecond

const bModelSegment = BModelSegment

// BModel is the self-similar arrival process of Wang et al.'s b-model: the
// ops of each time interval split between its two halves in proportion
// bias : 1-bias (the biased side chosen by fair coin), recursively down to
// leaf slots. A bias of 0.5 degenerates to near-constant rate; values toward
// 1.0 concentrate the same op mass into ever-burstier clumps at every time
// scale — the traffic shape multi-tenant storage frontends actually see.
type BModel struct {
	rng  *sim.Rand
	bias float64
	slot sim.Duration

	perSeg int
	gaps   []sim.Duration
	head   int
	carry  sim.Duration // stream time since the last arrival, across segments
}

// NewBModel builds a b-model process offering ratePerSec arrivals/second on
// average with the given bias in [0.5, 1).
func NewBModel(ratePerSec, bias float64, rng *sim.Rand) *BModel {
	if ratePerSec <= 0 {
		panic("load: b-model rate must be positive")
	}
	if bias < 0.5 || bias >= 1 {
		panic("load: b-model bias must be in [0.5, 1)")
	}
	perSeg := int(ratePerSec*bModelSegment.Seconds() + 0.5)
	if perSeg < 1 {
		perSeg = 1
	}
	return &BModel{
		rng:    rng,
		bias:   bias,
		slot:   bModelSegment / (1 << bModelLevels),
		perSeg: perSeg,
	}
}

// split distributes n ops over counts[lo:hi) by recursive biased halving.
// The op count is conserved exactly at every level.
func (b *BModel) split(n, lo, hi int, counts []int) {
	if n == 0 {
		return
	}
	if hi-lo == 1 {
		counts[lo] += n
		return
	}
	big := int(float64(n)*b.bias + 0.5)
	small := n - big
	mid := (lo + hi) / 2
	if b.rng.Float64() < 0.5 {
		b.split(big, lo, mid, counts)
		b.split(small, mid, hi, counts)
	} else {
		b.split(small, lo, mid, counts)
		b.split(big, mid, hi, counts)
	}
}

// refill generates the next segment's gap list. Arrivals inside a slot are
// spaced evenly — the burstiness lives in the slot-count distribution, not
// in sub-slot jitter.
func (b *BModel) refill() {
	counts := make([]int, 1<<bModelLevels)
	b.split(b.perSeg, 0, len(counts), counts)
	b.gaps = b.gaps[:0]
	b.head = 0
	prev := sim.Duration(-1)
	for i, k := range counts {
		if k == 0 {
			continue
		}
		step := b.slot / sim.Duration(k)
		for j := 0; j < k; j++ {
			at := sim.Duration(i)*b.slot + sim.Duration(j)*step
			if prev < 0 {
				b.gaps = append(b.gaps, b.carry+at)
			} else {
				b.gaps = append(b.gaps, at-prev)
			}
			prev = at
		}
	}
	segDur := sim.Duration(1<<bModelLevels) * b.slot
	if prev < 0 {
		b.carry += segDur
	} else {
		b.carry = segDur - prev
	}
}

// Next returns the gap to the next arrival, regenerating segments as needed.
func (b *BModel) Next() sim.Duration {
	for b.head >= len(b.gaps) {
		b.refill()
	}
	g := b.gaps[b.head]
	b.head++
	return g
}
