package load

import (
	"errors"
	"fmt"

	"hyperloop/internal/qos"
	"hyperloop/internal/shard"
)

// QoS wiring for the serving plane.
//
// With Config.QoS set, each group runs a qos.Controller on its own
// partition, closing the observe→decide→act loop entirely group-locally:
//
//   observe — the admission controller mirrors per-tenant verdicts and ack
//     latencies into the group registry (qos.RegistrySource series), which
//     the controller windows on the virtual clock.
//   decide  — sustained saturation (throttled share over the threshold for
//     consecutive windows) arms a funding decision bounded by the tenant's
//     escrow, spend cap, and step limit — the Nil-Store user-funded
//     elasticity contract.
//   act     — a funded step migrates the group's next spare shard onto
//     hint-preferred (edge-tier) hosts via the live migration path, extends
//     the tenant's keyset onto it so new load lands there, and raises the
//     tenant's admission bucket rate by FundFrac of the contract.
//
// Tenancy is shard-scoped: tenant i's keyset initially routes to shard
// i mod ShardsPerGroup, and shards beyond the tenant count are spares the
// actuator may recruit. Everything — metric reads, migration, bucket
// retuning — happens on the group's own partition, so runs stay
// byte-identical at any worker count.

// errNoSpareShard is the scale-out refusal when every spare is recruited;
// the controller refunds the step on seeing it.
var errNoSpareShard = errors.New("load: no spare shard left for scale-out")

// groupActuator executes one group's QoS decisions. At most one ScaleOut
// per class is in flight (the controller guarantees it), but different
// classes may migrate different spares concurrently — each spare is
// consumed at submit time.
type groupActuator struct {
	adm      *Admission
	pl       *shard.Plane // nil for backends without a control plane
	hosts    int
	replicas int
	// keysets[i] is tenant i's live keyset; the arrival pump indexes it, so
	// an extension shifts new load onto the recruited shard immediately.
	keysets   [][]string
	spare     int // next unrecruited spare shard
	shardKeys func(sid int) []string
}

func (ga *groupActuator) SetRate(i int, rate float64) { ga.adm.SetRate(i, rate) }

func (ga *groupActuator) ScaleOut(i int, hint qos.Hint, done func(error)) {
	if ga.pl == nil {
		done(errors.New("load: qos scale-out needs the hyperloop plane"))
		return
	}
	if ga.spare >= ga.pl.Shards() {
		done(errNoSpareShard)
		return
	}
	sid := ga.spare
	dest := shard.PickTiered(sid, ga.hosts, ga.replicas, ga.pl.Tiers(), hint)
	err := ga.pl.Migrate(sid, dest, func(err error) {
		if err == nil {
			ga.keysets[i] = append(ga.keysets[i], ga.shardKeys(sid)...)
		}
		done(err)
	})
	if err != nil {
		done(err)
		return
	}
	ga.spare++
}

// shardKeyset generates the bounded keyset group g's tenants aim at shard
// sid: keys homed on g whose shard route is sid, so every put stays
// partition-local and lands exactly where the tenant's capacity lives. A
// pure function of (g, sid) — identical across runs and worker counts.
func shardKeyset(srv Server, pl *shard.Plane, g, sid int) []string {
	keys := make([]string, 0, keysetSize)
	for i := 0; len(keys) < keysetSize; i++ {
		k := fmt.Sprintf("ld/g%d/t%06d", g, i)
		if srv.HomeGroup(k) == g && pl.Map.Route(k) == sid {
			keys = append(keys, k)
		}
	}
	return keys
}
