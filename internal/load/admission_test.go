package load

import (
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/wal"
)

// fakePlane is a hand-cranked backend: completions fire only when the test
// releases them, so queue dynamics are fully controlled.
type fakePlane struct {
	eng     *sim.Engine
	latency sim.Duration
	// bounce makes the next n puts fail synchronously-with-callback as
	// WAL-full backpressure.
	bounce  int
	held    []func(error)
	hold    bool
	puts    int
	batchAt []sim.Time // dispatch instants, one per put
}

func (f *fakePlane) put(key string, val []byte, done func(error)) {
	f.puts++
	f.batchAt = append(f.batchAt, f.eng.Now())
	if f.bounce > 0 {
		f.bounce--
		f.eng.Schedule(0, func() { done(wal.ErrLogFull) })
		return
	}
	if f.hold {
		f.held = append(f.held, done)
		return
	}
	f.eng.Schedule(f.latency, func() { done(nil) })
}

func (f *fakePlane) release() {
	for _, done := range f.held {
		done := done
		f.eng.Schedule(f.latency, func() { done(nil) })
	}
	f.held = nil
}

func checkIdentity(t *testing.T, a *Admission) {
	t.Helper()
	v := a.Verdicts()
	if v.Arrivals != v.Admitted+v.ShedQueueFull+v.ShedThrottled {
		t.Fatalf("identity broken: %+v", v)
	}
}

// A full queue must shed with a counted verdict — and nothing else may be
// lost: arrivals always equal admitted + shed.
func TestAdmissionShedsOnFullQueue(t *testing.T) {
	eng := sim.NewEngine()
	fp := &fakePlane{eng: eng, hold: true}
	a := NewAdmission(eng, AdmissionConfig{
		Enabled: true, QueueDepth: 8, MaxInflight: 2, DispatchBatch: 2,
	}, nil, fp.put, nil)
	eng.Schedule(0, func() {
		for i := 0; i < 20; i++ {
			a.Offer("k", nil, 0)
		}
	})
	eng.RunFor(sim.Millisecond)
	v := a.Verdicts()
	// 8 queued + up to MaxInflight dispatched-but-held are admitted; the
	// rest shed. Nothing hidden.
	if v.ShedQueueFull == 0 {
		t.Fatal("no queue-full sheds despite 20 offers into depth 8")
	}
	if v.Admitted+v.ShedQueueFull != 20 {
		t.Fatalf("20 arrivals accounted as %d admitted + %d shed", v.Admitted, v.ShedQueueFull)
	}
	checkIdentity(t, a)
	fp.hold = false
	fp.latency = sim.Microsecond
	fp.release()
	eng.RunFor(sim.Second)
	if got := a.Verdicts().Acked; got != v.Admitted {
		t.Fatalf("released %d admitted ops, %d acked", v.Admitted, got)
	}
}

// A tenant over its token-bucket budget is throttled; an unthrottled tenant
// sharing the controller is not.
func TestAdmissionThrottlesPerTenant(t *testing.T) {
	eng := sim.NewEngine()
	fp := &fakePlane{eng: eng, latency: sim.Microsecond}
	classes := []TenantClass{
		{Name: "victim", Weight: 1},                                    // unthrottled
		{Name: "aggressor", Weight: 1, RatePerSec: 100_000, Burst: 10}, // 0.1/µs
	}
	a := NewAdmission(eng, AdmissionConfig{
		Enabled: true, QueueDepth: 4096, MaxInflight: 64, DispatchBatch: 8,
	}, classes, fp.put, nil)
	// 1000 offers per class over 1ms: aggressor budget is 10 burst + 100
	// refill, so ~890 of its offers must throttle; the victim sails.
	for i := 0; i < 1000; i++ {
		eng.Schedule(sim.Duration(i)*sim.Microsecond, func() {
			a.Offer("v", nil, 0)
			a.Offer("a", nil, 1)
		})
	}
	eng.RunFor(10 * sim.Millisecond)
	_, _, vThrottled, _ := a.ClassStats(0)
	_, aAdmitted, aThrottled, _ := a.ClassStats(1)
	if vThrottled != 0 {
		t.Fatalf("victim throttled %d times", vThrottled)
	}
	if aThrottled < 800 {
		t.Fatalf("aggressor throttled only %d of 1000", aThrottled)
	}
	if aAdmitted+aThrottled != 1000 {
		t.Fatalf("aggressor arrivals leak: %d + %d != 1000", aAdmitted, aThrottled)
	}
	checkIdentity(t, a)
}

// WAL-full backpressure must surface as a counted verdict and a re-queue —
// the op completes later, it never disappears.
func TestAdmissionBackpressureRetries(t *testing.T) {
	eng := sim.NewEngine()
	fp := &fakePlane{eng: eng, latency: sim.Microsecond, bounce: 5}
	a := NewAdmission(eng, AdmissionConfig{
		Enabled: true, QueueDepth: 64, MaxInflight: 4, DispatchBatch: 4,
	}, nil, fp.put, nil)
	eng.Schedule(0, func() {
		for i := 0; i < 8; i++ {
			a.Offer("k", nil, 0)
		}
	})
	eng.RunFor(10 * sim.Millisecond)
	v := a.Verdicts()
	if v.Backpressure == 0 {
		t.Fatal("no backpressure verdicts despite 5 bounces")
	}
	if v.Acked != 8 {
		t.Fatalf("acked %d of 8 admitted ops (backpressure lost ops)", v.Acked)
	}
	checkIdentity(t, a)
}

// Disabled admission is the hidden-queue baseline: everything is admitted no
// matter how deep the backlog grows.
func TestAdmissionDisabledAdmitsAll(t *testing.T) {
	eng := sim.NewEngine()
	fp := &fakePlane{eng: eng, hold: true}
	a := NewAdmission(eng, AdmissionConfig{
		Enabled: false, QueueDepth: 4, MaxInflight: 2,
	}, nil, fp.put, nil)
	eng.Schedule(0, func() {
		for i := 0; i < 500; i++ {
			a.Offer("k", nil, 0)
		}
	})
	eng.RunFor(sim.Millisecond)
	v := a.Verdicts()
	if v.Admitted != 500 || v.ShedQueueFull != 0 || v.ShedThrottled != 0 {
		t.Fatalf("disabled controller shed: %+v", v)
	}
	if a.QueuePeak() < 490 {
		t.Fatalf("queue peak %d, want the backlog visible", a.QueuePeak())
	}
}

// The dispatcher must release whole batches in one virtual instant — the
// same-instant run WQE fusion coalesces — and respect the inflight window.
func TestAdmissionDispatchesBatchesAtOneInstant(t *testing.T) {
	eng := sim.NewEngine()
	fp := &fakePlane{eng: eng, latency: 100 * sim.Microsecond}
	a := NewAdmission(eng, AdmissionConfig{
		Enabled: true, QueueDepth: 64, MaxInflight: 8, DispatchBatch: 4,
	}, nil, fp.put, nil)
	eng.Schedule(0, func() {
		for i := 0; i < 8; i++ {
			a.Offer("k", nil, 0)
		}
	})
	eng.RunFor(10 * sim.Millisecond)
	if len(fp.batchAt) != 8 {
		t.Fatalf("dispatched %d of 8", len(fp.batchAt))
	}
	// First four share one instant, next four another, later one.
	if fp.batchAt[0] != fp.batchAt[3] {
		t.Fatalf("first batch not fused in time: %v vs %v", fp.batchAt[0], fp.batchAt[3])
	}
	if fp.batchAt[4] != fp.batchAt[7] {
		t.Fatalf("second batch not fused in time: %v vs %v", fp.batchAt[4], fp.batchAt[7])
	}
	if fp.batchAt[3] == fp.batchAt[4] {
		t.Fatal("batches 1 and 2 dispatched at the same instant despite DispatchEvery")
	}
}
