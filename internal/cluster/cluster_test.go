package cluster

import (
	"testing"

	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

func TestClusterWiring(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{Nodes: 5, StoreSize: 1 << 16})
	if len(cl.Nodes) != 5 || cl.Client() != cl.Nodes[0] || len(cl.Replicas()) != 4 {
		t.Fatalf("topology wrong: %v", cl)
	}
	for i, n := range cl.Nodes {
		if n.Index != i {
			t.Fatalf("node %d has index %d", i, n.Index)
		}
		if n.Store.Len() != 1<<16 {
			t.Fatalf("store size %d", n.Store.Len())
		}
		if n.Host == nil || n.NIC == nil || n.Dev == nil {
			t.Fatalf("node %d missing components", i)
		}
	}
}

func TestStoreWriteIsDurable(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{Nodes: 2, StoreSize: 4096})
	n := cl.Client()
	n.StoreWrite(100, []byte("cpu-store"))
	n.Dev.PowerFail()
	if got := string(n.StoreBytes(100, 9)); got != "cpu-store" {
		t.Fatalf("CPU store lost: %q", got)
	}
}

func TestConnectPairRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{Nodes: 2, StoreSize: 4096})
	a, b := ConnectPair(cl.Nodes[0], cl.Nodes[1], 8, 8)
	if a.State() != rdma.QPReady || b.State() != rdma.QPReady {
		t.Fatal("pair not connected")
	}
	got := false
	b.RecvCQ().SetCallback(func(e rdma.CQE) { got = e.Status == rdma.StatusSuccess })
	b.PostRecv(rdma.WQE{})
	a.PostSend(rdma.WQE{Opcode: rdma.OpSend})
	eng.Drain()
	if !got {
		t.Fatal("message did not traverse the pair")
	}
}

func TestLoopbackQP(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{Nodes: 2, StoreSize: 4096})
	lo := Loopback(cl.Nodes[1], 8)
	cl.Nodes[1].StoreWrite(0, []byte("src-bytes"))
	done := false
	lo.SendCQ().SetCallback(func(e rdma.CQE) { done = e.Status == rdma.StatusSuccess })
	lo.PostSend(rdma.WQE{
		Opcode: rdma.OpWrite, Signaled: true,
		RKey: cl.Nodes[1].Store.RKey(), RAddr: 512,
		SGEs: []rdma.SGE{{LKey: cl.Nodes[1].Store.LKey(), Offset: 0, Length: 9}},
	})
	eng.Drain()
	if !done {
		t.Fatal("loopback write did not complete")
	}
	if got := string(cl.Nodes[1].StoreBytes(512, 9)); got != "src-bytes" {
		t.Fatalf("loopback copy: %q", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		cl := New(eng, Config{Nodes: 3, StoreSize: 4096, Seed: 99})
		a, b := ConnectPair(cl.Nodes[0], cl.Nodes[1], 8, 8)
		var at sim.Time
		b.RecvCQ().SetCallback(func(rdma.CQE) { at = eng.Now() })
		b.PostRecv(rdma.WQE{})
		a.PostSend(rdma.WQE{Opcode: rdma.OpSend})
		eng.Drain()
		return at
	}
	if run() != run() {
		t.Fatal("same seed produced different delivery times")
	}
}
