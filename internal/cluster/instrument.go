// Cluster-level observability wiring (DESIGN.md §12): per-node NIC and
// host-CPU series registered as computed gauges, so the hot path pays
// nothing — values are read only when the registry samples or exports.
package cluster

import (
	"fmt"

	"hyperloop/internal/metrics"
)

// Instrument registers per-node gauges for every node in the cluster under
// the given label prefix (the tenant/experiment dimension); each node adds
// a "/n<i>" suffix. Label cardinality is nodes × series, bounded by the
// cluster size (≤ 16 hosts in every experiment here).
func Instrument(reg *metrics.Registry, cl *Cluster, label string) {
	for _, n := range cl.Nodes {
		n := n
		lbl := fmt.Sprintf("%s/n%d", label, n.Index)
		reg.GaugeFunc("nic", "wqes_executed", lbl, func() float64 {
			return float64(n.NIC.Counters().WQEsExecuted)
		})
		reg.GaugeFunc("nic", "writes_rx", lbl, func() float64 {
			return float64(n.NIC.Counters().WritesRx)
		})
		reg.GaugeFunc("nic", "atomics_rx", lbl, func() float64 {
			return float64(n.NIC.Counters().AtomicsRx)
		})
		reg.GaugeFunc("nic", "cache_flushes", lbl, func() float64 {
			return float64(n.NIC.Counters().CacheFlushes)
		})
		reg.GaugeFunc("nic", "rnrs", lbl, func() float64 {
			return float64(n.NIC.Counters().RNRs)
		})
		reg.GaugeFunc("nic", "doorbells", lbl, func() float64 {
			return float64(n.NIC.Counters().Doorbells)
		})
		reg.GaugeFunc("host", "utilization", lbl, func() float64 {
			return n.Host.Utilization()
		})
		reg.GaugeFunc("host", "context_switches", lbl, func() float64 {
			return float64(n.Host.ContextSwitches())
		})
		reg.GaugeFunc("host", "mean_queue_wait_ns", lbl, func() float64 {
			return float64(n.Host.MeanQueueWait())
		})
	}
}
