// Package cluster assembles simulated machines: each node couples a
// multi-core host (cpusched), an RDMA NIC (rdma), and an NVM device (nvm)
// on a shared fabric and discrete-event engine. Both the HyperLoop datapath
// and the Naïve-RDMA baselines are built over the same cluster, so their
// comparisons differ only in who performs the replication work.
package cluster

import (
	"fmt"

	"hyperloop/internal/cpusched"
	"hyperloop/internal/fabric"
	"hyperloop/internal/nvm"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// Node is one simulated machine.
type Node struct {
	Index int
	Host  *cpusched.Host
	NIC   *rdma.NIC
	Dev   *nvm.Device
	// Store is the node's registered NVM window — the database + log area
	// every group member exposes at identical offsets (§4.2).
	Store *rdma.MemoryRegion
}

// StoreBytes returns the live contents of the node's store window. It reads
// through the volatile-coherent view; durability is a separate question.
func (n *Node) StoreBytes(off, size int) []byte {
	buf := make([]byte, size)
	n.Store.Backing().ReadAt(off, buf)
	return buf
}

// StoreWrite performs a local CPU store into the node's store window
// (immediately durable, as host stores bypass the NIC cache).
func (n *Node) StoreWrite(off int, data []byte) {
	b := n.Store.Backing().(*rdma.NVMBacking)
	b.Device().Store(b.Base()+off, data)
}

// Config sizes a cluster.
type Config struct {
	Nodes     int             // total machines including the client (node 0)
	StoreSize int             // NVM store bytes per node (default 16 MiB)
	Host      cpusched.Config // per-node CPU model
	NIC       rdma.Config     // per-node NIC model
	Fabric    fabric.Config   // network model
	Seed      int64           // RNG seed (default 1)
	// NodeNIC, when set, overrides NIC per node index — the hook tiered
	// host pools (edge/general/archive hardware profiles) hang off. It must
	// be a pure function of the index so cluster builds stay deterministic.
	NodeNIC func(i int) rdma.Config
}

func (c *Config) fill() {
	if c.Nodes <= 0 {
		c.Nodes = 4
	}
	if c.StoreSize <= 0 {
		c.StoreSize = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Cluster is a set of nodes on one fabric.
type Cluster struct {
	Eng   *sim.Engine
	Net   *fabric.Network
	Rand  *sim.Rand
	Nodes []*Node
}

// New builds a cluster.
func New(eng *sim.Engine, cfg Config) *Cluster {
	cfg.fill()
	r := sim.NewRand(cfg.Seed)
	c := &Cluster{
		Eng:  eng,
		Net:  fabric.New(eng, cfg.Fabric, r.Fork()),
		Rand: r,
	}
	for i := 0; i < cfg.Nodes; i++ {
		dev := nvm.New(cfg.StoreSize)
		nicCfg := cfg.NIC
		if cfg.NodeNIC != nil {
			nicCfg = cfg.NodeNIC(i)
		}
		nic := rdma.NewNIC(eng, c.Net, nicCfg)
		store := nic.RegisterMemory(
			rdma.NewNVMBacking(dev, 0, cfg.StoreSize),
			rdma.AccessLocalWrite|rdma.AccessRemoteWrite|rdma.AccessRemoteRead|rdma.AccessRemoteAtomic,
		)
		c.Nodes = append(c.Nodes, &Node{
			Index: i,
			Host:  cpusched.NewHost(eng, cfg.Host),
			NIC:   nic,
			Dev:   dev,
			Store: store,
		})
	}
	return c
}

// Client returns node 0, the transaction coordinator.
func (c *Cluster) Client() *Node { return c.Nodes[0] }

// Replicas returns nodes 1..n, the chain members.
func (c *Cluster) Replicas() []*Node { return c.Nodes[1:] }

// ConnectPair creates and connects a QP pair between two nodes, with fresh
// CQs on each side, returning (src-side QP, dst-side QP).
func ConnectPair(a, b *Node, sqSlots, rqSlots int) (*rdma.QP, *rdma.QP) {
	qa := a.NIC.CreateQP(a.NIC.CreateCQ(), a.NIC.CreateCQ(), sqSlots, rqSlots)
	qb := b.NIC.CreateQP(b.NIC.CreateCQ(), b.NIC.CreateCQ(), sqSlots, rqSlots)
	rdma.Connect(qa, qb)
	return qa, qb
}

// Loopback creates a loopback QP on a node for NIC-local DMA operations.
func Loopback(n *Node, sqSlots int) *rdma.QP {
	q := n.NIC.CreateQP(n.NIC.CreateCQ(), n.NIC.CreateCQ(), sqSlots, 1)
	rdma.ConnectLoopback(q)
	return q
}

// String describes the cluster.
func (c *Cluster) String() string {
	return fmt.Sprintf("cluster{nodes=%d}", len(c.Nodes))
}
