package cluster

import (
	"strings"
	"testing"

	"hyperloop/internal/metrics"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
)

// TestConfigDefaults: a zero Config fills to the documented defaults, and
// per-node NIC overrides are honored.
func TestConfigDefaults(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{})
	if len(cl.Nodes) != 4 {
		t.Fatalf("default nodes = %d, want 4", len(cl.Nodes))
	}
	if cl.Nodes[0].Store.Len() != 16<<20 {
		t.Fatalf("default store = %d, want 16 MiB", cl.Nodes[0].Store.Len())
	}
	if got := cl.String(); !strings.Contains(got, "nodes=4") {
		t.Fatalf("String = %q", got)
	}

	tiered := New(eng, Config{Nodes: 2, StoreSize: 4096, NodeNIC: func(i int) rdma.Config {
		c := rdma.Config{}
		if i == 1 {
			c.DMAGbps = 400
		}
		return c
	}})
	if len(tiered.Nodes) != 2 {
		t.Fatalf("tiered nodes = %d", len(tiered.Nodes))
	}
}

// TestInstrumentRegistersNodeGauges: Instrument wires every node's NIC and
// host series as computed gauges, readable through a registry export.
func TestInstrumentRegistersNodeGauges(t *testing.T) {
	eng := sim.NewEngine()
	cl := New(eng, Config{Nodes: 3, StoreSize: 4096})
	reg := metrics.NewRegistry()
	Instrument(reg, cl, "test")

	// Drive one message so the NIC counters move.
	a, b := ConnectPair(cl.Nodes[0], cl.Nodes[1], 8, 8)
	b.PostRecv(rdma.WQE{})
	a.PostSend(rdma.WQE{Opcode: rdma.OpSend})
	eng.Drain()

	reg.Sample(eng.Now())
	dump, err := reg.ExportJSON()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"wqes_executed", "utilization", "test/n0", "test/n2", "doorbells"} {
		if !strings.Contains(string(dump), want) {
			t.Fatalf("export misses %q", want)
		}
	}
}
