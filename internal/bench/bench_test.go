package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

func TestRecorderRoundTrip(t *testing.T) {
	b := NewRecorder()
	b.RecordSummary("fig8a", map[string]any{"size": 128, "system": "HyperLoop"},
		stats.Summary{Mean: 8 * sim.Microsecond, P95: 9 * sim.Microsecond, P99: 10 * sim.Microsecond})
	b.Add(Result{Experiment: "fig9", Extra: map[string]float64{"kops_sec": 512}})

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := b.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got []Result
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("round-tripped %d results, want 2", len(got))
	}
	if got[0].Experiment != "fig8a" || got[0].AvgNs != 8000 || got[0].P99Ns != 10000 {
		t.Fatalf("first result mangled: %+v", got[0])
	}
	if got[1].Extra["kops_sec"] != 512 {
		t.Fatalf("extra metrics mangled: %+v", got[1])
	}

	// Same recording sequence, byte-identical file.
	b2 := NewRecorder()
	b2.RecordSummary("fig8a", map[string]any{"size": 128, "system": "HyperLoop"},
		stats.Summary{Mean: 8 * sim.Microsecond, P95: 9 * sim.Microsecond, P99: 10 * sim.Microsecond})
	b2.Add(Result{Experiment: "fig9", Extra: map[string]float64{"kops_sec": 512}})
	path2 := filepath.Join(t.TempDir(), "bench2.json")
	if err := b2.WriteJSON(path2); err != nil {
		t.Fatal(err)
	}
	data2, _ := os.ReadFile(path2)
	if string(data) != string(data2) {
		t.Fatal("bench JSON not deterministic across identical runs")
	}
}
