// Package bench is the shared benchmark-JSON emitter: every cmd that
// records machine-readable measurements (hlmicro's BENCH_*.json, hlshard,
// hlload) serializes through the same Recorder, so regression tooling parses
// one schema instead of per-command ad-hoc writers.
package bench

import (
	"encoding/json"
	"os"
	"sync"

	"hyperloop/internal/stats"
)

// Result is one benchmark measurement in machine-readable form, for
// regression tracking across commits: which experiment, at which sweep
// point, with the latency profile in plain nanoseconds.
type Result struct {
	Experiment string             `json:"experiment"`
	Params     map[string]any     `json:"params,omitempty"`
	AvgNs      int64              `json:"avg_ns"`
	P95Ns      int64              `json:"p95_ns,omitempty"`
	P99Ns      int64              `json:"p99_ns,omitempty"`
	Extra      map[string]float64 `json:"extra,omitempty"`
}

// Recorder accumulates Results across experiments (safe for concurrent Add
// from sweep workers) and serializes them as an indented JSON array. Map
// keys marshal in sorted order, so the file is deterministic for a given
// run sequence.
type Recorder struct {
	mu      sync.Mutex
	results []Result
}

// NewRecorder creates an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Add appends one result.
func (b *Recorder) Add(r Result) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.results = append(b.results, r)
}

// RecordSummary adds a latency summary under the given experiment id and
// sweep-point parameters.
func (b *Recorder) RecordSummary(experiment string, params map[string]any, s stats.Summary) {
	b.Add(Result{
		Experiment: experiment,
		Params:     params,
		AvgNs:      int64(s.Mean),
		P95Ns:      int64(s.P95),
		P99Ns:      int64(s.P99),
	})
}

// Results returns a copy of everything recorded so far.
func (b *Recorder) Results() []Result {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Result, len(b.results))
	copy(out, b.results)
	return out
}

// WriteJSON writes the recorded results to path as an indented JSON array.
func (b *Recorder) WriteJSON(path string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	data, err := json.MarshalIndent(b.results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
