package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.Schedule(30, func() { got = append(got, 3) })
	e.Schedule(10, func() { got = append(got, 1) })
	e.Schedule(20, func() { got = append(got, 2) })
	e.Drain()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30ns", e.Now())
	}
}

func TestFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { got = append(got, i) })
	}
	e.Drain()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var depth int
	var fire func()
	fire = func() {
		depth++
		if depth < 100 {
			e.Schedule(1, fire)
		}
	}
	e.Schedule(0, fire)
	e.Drain()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != 99 {
		t.Fatalf("clock = %v, want 99ns", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(10, func() { fired = true })
	if !e.Active(ev) {
		t.Fatal("event reported inactive before firing")
	}
	e.Cancel(ev)
	if e.Active(ev) {
		t.Fatal("event still active after cancel")
	}
	e.Drain()
	if fired {
		t.Fatal("canceled event fired")
	}
	// Double cancel is a no-op.
	e.Cancel(ev)
	// Cancel of the zero EventID is a no-op.
	e.Cancel(EventID{})
}

func TestCancelMiddleOfHeap(t *testing.T) {
	e := NewEngine()
	var got []int
	var evs []EventID
	for i := 0; i < 20; i++ {
		i := i
		evs = append(evs, e.Schedule(Duration(i), func() { got = append(got, i) }))
	}
	for i := 0; i < 20; i += 2 {
		e.Cancel(evs[i])
	}
	e.Drain()
	if len(got) != 10 {
		t.Fatalf("fired %d events, want 10", len(got))
	}
	for _, v := range got {
		if v%2 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
	}
}

func TestRunDeadline(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Duration(i)*Microsecond, func() { count++ })
	}
	e.Run(Time(5 * Microsecond))
	if count != 5 {
		t.Fatalf("fired %d events by deadline, want 5", count)
	}
	if e.Now() != Time(5*Microsecond) {
		t.Fatalf("clock = %v, want 5µs", e.Now())
	}
	e.Drain()
	if count != 10 {
		t.Fatalf("fired %d events total, want 10", count)
	}
}

func TestRunForAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunFor(Millisecond)
	if e.Now() != Time(Millisecond) {
		t.Fatalf("clock = %v, want 1ms", e.Now())
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	n := 0
	for i := 1; i <= 100; i++ {
		e.Schedule(Duration(i), func() { n++ })
	}
	ok := e.RunUntil(func() bool { return n >= 7 }, Forever)
	if !ok || n != 7 {
		t.Fatalf("RunUntil stopped at n=%d ok=%v, want 7/true", n, ok)
	}
	ok = e.RunUntil(func() bool { return n >= 1000 }, Forever)
	if ok || n != 100 {
		t.Fatalf("RunUntil with unreachable pred: n=%d ok=%v", n, ok)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(10, func() {})
	e.Drain()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.ScheduleAt(5, func() {})
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-5, func() { fired = true })
	e.Drain()
	if !fired || e.Now() != 0 {
		t.Fatalf("negative delay: fired=%v now=%v", fired, e.Now())
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty queue returned true")
	}
	e.Schedule(1, func() {})
	if !e.Step() {
		t.Fatal("Step with pending event returned false")
	}
	if e.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", e.Fired())
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(100)
	if tm.Add(50) != 150 {
		t.Fatal("Add")
	}
	if Time(150).Sub(tm) != 50 {
		t.Fatal("Sub")
	}
	if Duration(2*Second).Seconds() != 2.0 {
		t.Fatal("Seconds")
	}
}

// Property: for any batch of delays, events fire in nondecreasing time order
// and the engine ends at the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(delays []uint16) bool {
		if len(delays) == 0 {
			return true
		}
		e := NewEngine()
		var fireTimes []Time
		var maxDelay Duration
		for _, d := range delays {
			d := Duration(d)
			if d > maxDelay {
				maxDelay = d
			}
			e.Schedule(d, func() { fireTimes = append(fireTimes, e.Now()) })
		}
		e.Drain()
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return e.Now() == Time(maxDelay)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(1)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[int64]int)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf value %d out of range", v)
		}
		counts[v]++
	}
	// Item 0 must be by far the most popular; top-10 items should carry a
	// large share of all draws under theta=0.99.
	top := 0
	for i := int64(0); i < 10; i++ {
		top += counts[i]
	}
	if counts[0] < draws/20 {
		t.Fatalf("item 0 drawn %d times, want skew (>%d)", counts[0], draws/20)
	}
	if top < draws/4 {
		t.Fatalf("top-10 items drawn %d times, want > %d", top, draws/4)
	}
}

func TestZipfGrow(t *testing.T) {
	r := NewRand(2)
	z := NewZipf(r, 10, 0.99)
	z.Grow(100)
	if z.N() != 100 {
		t.Fatalf("N = %d, want 100", z.N())
	}
	seenHigh := false
	for i := 0; i < 10000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("zipf value %d out of grown range", v)
		}
		if v >= 10 {
			seenHigh = true
		}
	}
	if !seenHigh {
		t.Fatal("grown range never produced values beyond original range")
	}
	// Shrinking is a no-op.
	z.Grow(50)
	if z.N() != 100 {
		t.Fatalf("Grow shrank the range to %d", z.N())
	}
}

func TestExpMean(t *testing.T) {
	r := NewRand(3)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(r.Exp(1000))
	}
	mean := sum / n
	if math.Abs(mean-1000) > 30 {
		t.Fatalf("exponential mean = %.1f, want ≈1000", mean)
	}
	if r.Exp(0) != 0 || r.Exp(-5) != 0 {
		t.Fatal("non-positive mean should yield 0")
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRand(4)
	const n = 100000
	exceed := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(100, 1.5)
		if v < 100 {
			t.Fatalf("pareto value %d below minimum", v)
		}
		if v > 1000 {
			exceed++
		}
	}
	// P(X > 10*min) = 10^-1.5 ≈ 3.16%.
	frac := float64(exceed) / n
	if frac < 0.02 || frac > 0.05 {
		t.Fatalf("pareto tail fraction = %.4f, want ≈0.0316", frac)
	}
	if r.Pareto(0, 1.5) != 0 {
		t.Fatal("non-positive minimum should yield 0")
	}
}

func TestJitter(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 1000; i++ {
		v := r.Jitter(1000, 0.1)
		if v < 900 || v > 1100 {
			t.Fatalf("jittered value %d outside ±10%%", v)
		}
	}
	if r.Jitter(1000, 0) != 1000 {
		t.Fatal("zero jitter changed value")
	}
}

func TestNormalClamped(t *testing.T) {
	r := NewRand(6)
	for i := 0; i < 10000; i++ {
		if r.Normal(10, 100) < 0 {
			t.Fatal("normal produced negative duration")
		}
	}
}

func TestForkIndependence(t *testing.T) {
	a := NewRand(7)
	b := a.Fork()
	c := a.Fork()
	// Forked streams should differ from each other and the parent.
	av, bv, cv := a.Uint64(), b.Uint64(), c.Uint64()
	if av == bv && bv == cv {
		t.Fatal("forked RNG streams identical")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int64 {
		r := NewRand(42)
		z := NewZipf(r.Fork(), 100, 0.99)
		var out []int64
		for i := 0; i < 100; i++ {
			out = append(out, z.Next(), r.Int63n(1000))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestEventTimeAndPending(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(25, func() {})
	if at, ok := e.EventTime(ev); !ok || at != 25 {
		t.Fatalf("event time %v ok=%v", at, ok)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("pending after drain %d", e.Pending())
	}
	if _, ok := e.EventTime(ev); ok {
		t.Fatal("fired event still reports a time")
	}
}

// A handle must go stale the moment its event fires, and stay stale even
// after the underlying slab slot is recycled by a new event.
func TestStaleHandleAfterSlotReuse(t *testing.T) {
	e := NewEngine()
	first := e.Schedule(1, func() {})
	e.Drain()
	if e.Active(first) {
		t.Fatal("fired event still active")
	}
	fired := false
	second := e.Schedule(5, func() { fired = true }) // recycles first's slot
	e.Cancel(first)                                  // stale: must not cancel second
	e.Drain()
	if !fired {
		t.Fatal("stale handle canceled a recycled slot's event")
	}
	if e.Active(second) {
		t.Fatal("fired event still active")
	}
}

// Canceling and rescheduling under churn must preserve (time, seq) firing
// order exactly.
func TestCancelRescheduleChurn(t *testing.T) {
	e := NewEngine()
	var got []int
	var ids []EventID
	for i := 0; i < 100; i++ {
		i := i
		ids = append(ids, e.Schedule(Duration(100+i), func() { got = append(got, i) }))
	}
	// Cancel every third, then schedule replacements at earlier instants.
	for i := 0; i < 100; i += 3 {
		e.Cancel(ids[i])
	}
	var early []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Duration(i), func() { early = append(early, i) })
	}
	e.Drain()
	for i, v := range early {
		if v != i {
			t.Fatalf("early events out of order: %v", early)
		}
	}
	want := 0
	for _, v := range got {
		if v%3 == 0 {
			t.Fatalf("canceled event %d fired", v)
		}
		if v < want {
			t.Fatalf("late events out of order: %v", got)
		}
		want = v
	}
}

// RunUntil must advance the clock to the deadline when it gives up
// (mirroring Run), and leave the clock at the satisfying event otherwise.
func TestRunUntilDeadlineAdvancesClock(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Schedule(10, func() { n++ })
	e.Schedule(20*Microsecond, func() { n++ })
	// Pred satisfied: clock stays at the satisfying event.
	if !e.RunUntil(func() bool { return n >= 1 }, Time(Microsecond)) {
		t.Fatal("pred not satisfied")
	}
	if e.Now() != 10 {
		t.Fatalf("clock = %v after satisfied pred, want 10ns", e.Now())
	}
	// Pred not satisfied by deadline: clock advances to the deadline.
	if e.RunUntil(func() bool { return n >= 2 }, Time(Microsecond)) {
		t.Fatal("pred unexpectedly satisfied")
	}
	if e.Now() != Time(Microsecond) {
		t.Fatalf("clock = %v after missed deadline, want 1µs", e.Now())
	}
	// The later event still fires afterwards.
	e.Drain()
	if n != 2 || e.Now() != Time(20*Microsecond) {
		t.Fatalf("n=%d now=%v after drain", n, e.Now())
	}
	// Forever deadline with an empty queue must not teleport the clock.
	if e.RunUntil(func() bool { return false }, Forever) {
		t.Fatal("pred satisfied on empty queue")
	}
	if e.Now() != Time(20*Microsecond) {
		t.Fatalf("clock moved on Forever deadline: %v", e.Now())
	}
}

// BenchmarkEngineScheduleFire pins the zero-allocation claim for the
// steady-state schedule→fire cycle: the slab and heap arrays must be fully
// recycled, so allocs/op reported here must be 0.
func BenchmarkEngineScheduleFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(1, fn)
		e.Step()
	}
	if e.Fired() != uint64(b.N) {
		b.Fatalf("fired %d/%d", e.Fired(), b.N)
	}
}

// BenchmarkEngineScheduleFireDeep exercises the same cycle with a deep
// standing queue so sifts traverse several heap levels.
func BenchmarkEngineScheduleFireDeep(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 4096; i++ {
		e.Schedule(Duration(1+i%64), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(64, fn)
		e.Step()
	}
}

// BenchmarkEngineCancel pins schedule→cancel: canceling from the middle of
// the heap must not allocate either.
func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 1024; i++ {
		e.Schedule(Duration(1+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := e.Schedule(Duration(1+i%512), fn)
		e.Cancel(id)
	}
}

func TestReentrantRunPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("re-entrant Run did not panic")
			}
		}()
		e.Run(Forever)
	})
	e.Drain()
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("nil fn accepted")
		}
	}()
	e.Schedule(1, nil)
}
