package sim

import (
	"math"
	"testing"
)

// TestZipfUpperBoundClamped is the regression test for the generator
// off-by-one: at u close enough to 1 the spline term eta*u-eta+1 rounds to
// exactly 1.0, math.Pow returns 1, and the unclamped result is n — outside
// [0, n). The ycsb "latest" distribution then computed records-1-n, a
// negative key. Hammer the boundary directly through nextU.
func TestZipfUpperBoundClamped(t *testing.T) {
	for _, tc := range []struct {
		n     int64
		theta float64
	}{
		{2, 0.99}, {10, 0.99}, {1000, 0.99}, {1000, 0.5}, {1 << 20, 0.99},
	} {
		z := NewZipf(NewRand(1), tc.n, tc.theta)
		// Walk u up to the largest float64 below 1, including the exact
		// values Float64 can produce.
		u := 1.0 - 1.0/float64(1<<20)
		for u < 1 {
			if v := z.nextU(u); v < 0 || v >= tc.n {
				t.Fatalf("n=%d theta=%v: nextU(%v) = %d outside [0, %d)",
					tc.n, tc.theta, u, v, tc.n)
			}
			u = math.Nextafter(u, 2)
			// Exhaustive near 1, strided further out.
			if 1-u > 1e-12 {
				u += (1 - u) / 2
			}
		}
		for _, u := range []float64{0, math.SmallestNonzeroFloat64, 0.5, 1 - 0x1p-53} {
			if v := z.nextU(u); v < 0 || v >= tc.n {
				t.Fatalf("n=%d theta=%v: nextU(%v) = %d outside [0, %d)",
					tc.n, tc.theta, u, v, tc.n)
			}
		}
	}
}

// TestZipfNextStaysInRange hammers the public API across sizes and thetas.
func TestZipfNextStaysInRange(t *testing.T) {
	for _, theta := range []float64{0.2, 0.5, 0.99} {
		for _, n := range []int64{1, 2, 3, 100, 10000} {
			z := NewZipf(NewRand(42), n, theta)
			for i := 0; i < 20000; i++ {
				if v := z.Next(); v < 0 || v >= n {
					t.Fatalf("theta=%v n=%d: Next() = %d outside range", theta, n, v)
				}
			}
		}
	}
}

// TestZipfGrowBoundary checks the clamp holds after Grow (the insert-heavy
// YCSB-D path recomputes eta/alpha incrementally).
func TestZipfGrowBoundary(t *testing.T) {
	z := NewZipf(NewRand(3), 10, 0.99)
	for _, n := range []int64{11, 64, 1000, 5000} {
		z.Grow(n)
		if z.N() != n {
			t.Fatalf("Grow(%d): N() = %d", n, z.N())
		}
		if v := z.nextU(1 - 0x1p-53); v < 0 || v >= n {
			t.Fatalf("after Grow(%d): boundary value %d outside [0, %d)", n, v, n)
		}
		for i := 0; i < 5000; i++ {
			if v := z.Next(); v < 0 || v >= n {
				t.Fatalf("after Grow(%d): Next() = %d outside range", n, v)
			}
		}
	}
	// Shrinking is a no-op.
	z.Grow(5)
	if z.N() != 5000 {
		t.Fatalf("Grow(5) shrank the range to %d", z.N())
	}
}

// TestZipfThetaOneGuard: theta == 1 used to make alpha = 1/(1-theta) = +Inf
// (and every spline draw NaN-prone); the guard nudges theta off the pole.
func TestZipfThetaOneGuard(t *testing.T) {
	z := NewZipf(NewRand(9), 100, 1.0)
	if math.IsInf(z.alpha, 0) || math.IsNaN(z.alpha) {
		t.Fatalf("alpha = %v with theta == 1", z.alpha)
	}
	if math.IsNaN(z.eta) || math.IsInf(z.eta, 0) {
		t.Fatalf("eta = %v with theta == 1", z.eta)
	}
	for i := 0; i < 20000; i++ {
		if v := z.Next(); v < 0 || v >= 100 {
			t.Fatalf("theta=1: Next() = %d outside [0, 100)", v)
		}
	}
	z.Grow(200)
	for i := 0; i < 5000; i++ {
		if v := z.Next(); v < 0 || v >= 200 {
			t.Fatalf("theta=1 after Grow: Next() = %d outside [0, 200)", v)
		}
	}
}

// TestZipfZetaIncrementalMatchesDirect: the lazily-extended zeta must agree
// with a from-scratch computation, or Grow would skew every frequency.
func TestZipfZetaIncrementalMatchesDirect(t *testing.T) {
	z := NewZipf(NewRand(1), 10, 0.99)
	for _, n := range []int64{20, 100, 1000} {
		z.Grow(n)
		want := zetaStatic(n, 0.99)
		if diff := math.Abs(z.zetan - want); diff > 1e-9 {
			t.Fatalf("zeta(%d) incremental %v vs direct %v (diff %v)", n, z.zetan, want, diff)
		}
	}
}

// TestZipfSkewAfterClamp sanity-checks that low ranks dominate (it is still
// a zipfian after the clamp).
func TestZipfSkewAfterClamp(t *testing.T) {
	z := NewZipf(NewRand(5), 1000, 0.99)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[500]*10 {
		t.Fatalf("rank 0 (%d) not dominating rank 500 (%d)", counts[0], counts[500])
	}
}
