// Package sim provides a deterministic discrete-event simulation engine.
//
// All HyperLoop components — NICs, the network fabric, host CPU schedulers,
// NVM devices, and the storage applications — are actors driven by a single
// Engine. Virtual time is measured in nanoseconds (Time). Events scheduled
// for the same instant fire in the order they were scheduled, which makes
// every run bit-for-bit reproducible for a given RNG seed.
package sim

import (
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time, in nanoseconds. It converts directly
// from time.Duration (also nanoseconds).
type Duration int64

// Common durations, mirroring the time package for readable constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a Time later than any reachable instant; Run(Forever) drains
// the event queue completely.
const Forever Time = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (t Time) String() string { return time.Duration(t).String() }

func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// EventID is a generation-tagged handle to a scheduled event. The zero
// EventID is invalid and safe to Cancel (a no-op). Handles are only
// meaningful on the Engine that issued them; once the event fires or is
// canceled the handle goes stale and every Engine method treats it as a
// no-op, even after the underlying slot is reused.
type EventID struct {
	slot int32
	gen  uint32
}

// Valid reports whether the handle was ever issued by an engine (it does
// not say whether the event is still pending — see Engine.Active).
func (id EventID) Valid() bool { return id.gen != 0 }

// eventSlot is one slab cell. Slots are recycled through a free list; gen
// increments on every release so stale EventIDs can never touch a reused
// slot.
type eventSlot struct {
	at      Time
	seq     uint64
	fn      func()
	src     int32 // merge-order source tag: the engine's own tag for local events, the sender's partition tag for cross-partition arrivals
	gen     uint32
	heapIdx int32 // index into Engine.heap; -1 when not queued
	next    int32 // free-list link, meaningful only while free
}

// Engine is a discrete-event simulation executive. It is not safe for
// concurrent use: the entire simulation runs on one goroutine.
//
// The pending queue is an index-based 4-ary min-heap over a slab of event
// slots: Schedule/Step allocate nothing in steady state (the slab and heap
// arrays are recycled), and comparisons read the slab directly instead of
// bouncing through container/heap interface calls.
type Engine struct {
	now      Time
	seq      uint64
	tag      int32 // this engine's own source tag (0 for standalone engines)
	slots    []eventSlot
	freeHead int32   // head of the free-slot list, -1 when empty
	heap     []int32 // slot indices ordered as a 4-ary min-heap by (at, src, seq)
	fired    uint64
	running  bool
}

// NewEngine returns an Engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{freeHead: -1}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.heap) }

// PeekTime returns the instant of the earliest pending event; ok is false
// when the queue is empty. It is the lower-bound primitive the partitioned
// scheduler's conservative-lookahead horizon is computed from.
func (e *Engine) PeekTime() (at Time, ok bool) {
	if len(e.heap) == 0 {
		return 0, false
	}
	return e.slots[e.heap[0]].at, true
}

// less orders slot a before slot b by (time, source tag, sequence). For a
// standalone engine every event carries the same source tag, so the order
// is the historical (time, schedule sequence). In a partitioned run the
// source tag is the scheduling partition and seq is that partition's
// deterministic counter, making the cross-partition merge order a property
// of the model rather than of worker timing. seq is unique per (src), so
// this is a strict total order: any heap shape pops events in exactly one
// possible sequence, keeping runs reproducible.
func (e *Engine) less(a, b int32) bool {
	sa, sb := &e.slots[a], &e.slots[b]
	if sa.at != sb.at {
		return sa.at < sb.at
	}
	if sa.src != sb.src {
		return sa.src < sb.src
	}
	return sa.seq < sb.seq
}

// siftUp moves heap[i] toward the root; returns the final heap index.
func (e *Engine) siftUp(i int) int {
	si := e.heap[i]
	for i > 0 {
		p := (i - 1) / 4
		if !e.less(si, e.heap[p]) {
			break
		}
		e.heap[i] = e.heap[p]
		e.slots[e.heap[i]].heapIdx = int32(i)
		i = p
	}
	e.heap[i] = si
	e.slots[si].heapIdx = int32(i)
	return i
}

// siftDown moves heap[i] toward the leaves; returns the final heap index.
func (e *Engine) siftDown(i int) int {
	si := e.heap[i]
	n := len(e.heap)
	for {
		c := 4*i + 1
		if c >= n {
			break
		}
		best := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if e.less(e.heap[j], e.heap[best]) {
				best = j
			}
		}
		if !e.less(e.heap[best], si) {
			break
		}
		e.heap[i] = e.heap[best]
		e.slots[e.heap[i]].heapIdx = int32(i)
		i = best
	}
	e.heap[i] = si
	e.slots[si].heapIdx = int32(i)
	return i
}

// release returns a slot to the free list and invalidates outstanding
// handles to it.
func (e *Engine) release(si int32) {
	s := &e.slots[si]
	s.fn = nil
	s.heapIdx = -1
	s.gen++
	if s.gen == 0 { // skip 0 on wrap: gen 0 marks the invalid zero EventID
		s.gen = 1
	}
	s.next = e.freeHead
	e.freeHead = si
}

// Schedule runs fn after delay d. A negative delay is treated as zero.
// It returns an EventID handle that can be passed to Cancel.
func (e *Engine) Schedule(d Duration, fn func()) EventID {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at instant t. Scheduling in the past panics: in a
// deterministic simulation that is always a bug in the caller.
func (e *Engine) ScheduleAt(t Time, fn func()) EventID {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	e.seq++
	return e.insert(t, e.tag, e.seq, fn)
}

// insert places one event into the slab and heap with an explicit merge key.
func (e *Engine) insert(t Time, src int32, seq uint64, fn func()) EventID {
	var si int32
	if e.freeHead >= 0 {
		si = e.freeHead
		e.freeHead = e.slots[si].next
	} else {
		e.slots = append(e.slots, eventSlot{gen: 1})
		si = int32(len(e.slots) - 1)
	}
	s := &e.slots[si]
	s.at, s.src, s.seq, s.fn = t, src, seq, fn
	i := len(e.heap)
	e.heap = append(e.heap, si)
	s.heapIdx = int32(i)
	e.siftUp(i)
	return EventID{slot: si, gen: s.gen}
}

// scheduleArrival inserts a cross-partition hand-off event carrying the
// sender's merge key (src partition tag, per-channel sequence). The caller —
// the partitioned scheduler's drain — guarantees t >= e.now; the local seq
// counter is untouched so local schedule order stays deterministic.
func (e *Engine) scheduleArrival(t Time, src int32, seq uint64, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: arrival at %v before now %v", t, e.now))
	}
	e.insert(t, src, seq, fn)
}

// runBefore fires events strictly earlier than horizon, in (time, src, seq)
// order, and reports how many fired. Unlike Run it never advances the clock
// past the last fired event: the horizon is a conservative safety bound, not
// a barrier the simulation has reached.
func (e *Engine) runBefore(horizon Time) int {
	n := 0
	for len(e.heap) > 0 && e.slots[e.heap[0]].at < horizon {
		e.Step()
		n++
	}
	return n
}

// Cancel removes a pending event. Canceling a fired, already-canceled, or
// zero EventID is a no-op.
func (e *Engine) Cancel(id EventID) {
	if id.gen == 0 || id.slot < 0 || int(id.slot) >= len(e.slots) {
		return
	}
	s := &e.slots[id.slot]
	if s.gen != id.gen || s.heapIdx < 0 {
		return
	}
	i := int(s.heapIdx)
	last := len(e.heap) - 1
	if i != last {
		e.heap[i] = e.heap[last]
		e.heap = e.heap[:last]
		e.slots[e.heap[i]].heapIdx = int32(i)
		if e.siftDown(i) == i {
			e.siftUp(i)
		}
	} else {
		e.heap = e.heap[:last]
	}
	e.release(id.slot)
}

// Active reports whether the event is still pending (scheduled, not yet
// fired or canceled).
func (e *Engine) Active(id EventID) bool {
	if id.gen == 0 || id.slot < 0 || int(id.slot) >= len(e.slots) {
		return false
	}
	s := &e.slots[id.slot]
	return s.gen == id.gen && s.heapIdx >= 0
}

// EventTime returns the instant a pending event is scheduled for; ok is
// false for fired, canceled, or zero handles.
func (e *Engine) EventTime(id EventID) (at Time, ok bool) {
	if !e.Active(id) {
		return 0, false
	}
	return e.slots[id.slot].at, true
}

// Step fires the single earliest pending event, advancing the clock to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	si := e.heap[0]
	s := &e.slots[si]
	at, fn := s.at, s.fn
	last := len(e.heap) - 1
	e.heap[0] = e.heap[last]
	e.heap = e.heap[:last]
	if last > 0 {
		e.slots[e.heap[0]].heapIdx = 0
		e.siftDown(0)
	}
	// Release before invoking fn: the handle is already stale inside the
	// callback (as before the slab rewrite), and fn's own scheduling can
	// recycle the slot immediately.
	e.release(si)
	e.now = at
	e.fired++
	fn()
	return true
}

// Run fires events in order until the queue is empty or the next event lies
// beyond deadline. The clock is left at the last fired event (or moved to
// deadline if that is later and finite).
func (e *Engine) Run(deadline Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
		e.Step()
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d from the current instant.
func (e *Engine) RunFor(d Duration) { e.Run(e.now.Add(d)) }

// Drain runs the simulation until no events remain.
func (e *Engine) Drain() { e.Run(Forever) }

// RunUntil fires events until pred returns true or the queue empties or the
// hard deadline passes; it reports whether pred was satisfied. pred is
// checked after every event. On a false return the clock is advanced to the
// deadline (when finite), mirroring Run's deadline semantics, so virtual
// time never sits before an instant the engine has already given up on.
func (e *Engine) RunUntil(pred func() bool, deadline Time) bool {
	if pred() {
		return true
	}
	for len(e.heap) > 0 && e.slots[e.heap[0]].at <= deadline {
		e.Step()
		if pred() {
			return true
		}
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
	return false
}
