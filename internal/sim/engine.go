// Package sim provides a deterministic discrete-event simulation engine.
//
// All HyperLoop components — NICs, the network fabric, host CPU schedulers,
// NVM devices, and the storage applications — are actors driven by a single
// Engine. Virtual time is measured in nanoseconds (Time). Events scheduled
// for the same instant fire in the order they were scheduled, which makes
// every run bit-for-bit reproducible for a given RNG seed.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the run.
type Time int64

// Duration is a span of virtual time, in nanoseconds. It converts directly
// from time.Duration (also nanoseconds).
type Duration int64

// Common durations, mirroring the time package for readable constants.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Forever is a Time later than any reachable instant; Run(Forever) drains
// the event queue completely.
const Forever Time = math.MaxInt64

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span between t and earlier instant u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a time.Duration for printing.
func (d Duration) Std() time.Duration { return time.Duration(d) }

func (t Time) String() string { return time.Duration(t).String() }

func (d Duration) String() string { return time.Duration(d).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Event is a scheduled callback. The zero Event is invalid.
type Event struct {
	at     Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 once fired or canceled
	engine *Engine
}

// Canceled reports whether the event was canceled or has already fired.
func (e *Event) Canceled() bool { return e == nil || e.index < 0 }

// Time returns the instant the event is scheduled for.
func (e *Event) Time() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation executive. It is not safe for
// concurrent use: the entire simulation runs on one goroutine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	fired   uint64
	running bool
}

// NewEngine returns an Engine positioned at time zero with an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events currently scheduled.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay d. A negative delay is treated as zero.
// It returns an Event handle that can be passed to Cancel.
func (e *Engine) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.ScheduleAt(e.now.Add(d), fn)
}

// ScheduleAt runs fn at instant t. Scheduling in the past panics: in a
// deterministic simulation that is always a bug in the caller.
func (e *Engine) ScheduleAt(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: schedule nil func")
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn, engine: e}
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. Canceling a fired or already-canceled
// event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 || ev.engine != e {
		return
	}
	heap.Remove(&e.queue, ev.index)
}

// Step fires the single earliest pending event, advancing the clock to it.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.at
	e.fired++
	ev.fn()
	return true
}

// Run fires events in order until the queue is empty or the next event lies
// beyond deadline. The clock is left at the last fired event (or moved to
// deadline if that is later and finite).
func (e *Engine) Run(deadline Time) {
	if e.running {
		panic("sim: re-entrant Run")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
	}
	if deadline != Forever && e.now < deadline {
		e.now = deadline
	}
}

// RunFor advances the simulation by d from the current instant.
func (e *Engine) RunFor(d Duration) { e.Run(e.now.Add(d)) }

// Drain runs the simulation until no events remain.
func (e *Engine) Drain() { e.Run(Forever) }

// RunUntil fires events until pred returns true or the queue empties or the
// hard deadline passes; it reports whether pred was satisfied. pred is
// checked after every event.
func (e *Engine) RunUntil(pred func() bool, deadline Time) bool {
	if pred() {
		return true
	}
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.Step()
		if pred() {
			return true
		}
	}
	return false
}
