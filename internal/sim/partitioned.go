// Conservative parallel discrete-event simulation: a PartitionedEngine runs
// one slab-heap Engine per partition concurrently under a bounded-lag CMB
// scheme. Each partition owns a disjoint set of actors; the only way state
// crosses a partition boundary is an explicit Send, which models a fabric
// hop and therefore arrives at least `lookahead` after it was issued.
//
// Safety rests on one number: GlobalMin, the minimum over every partition of
// (its next local event, its round floor while firing, the earliest
// undrained arrival addressed to it). Because every cross-partition message
// is delivered >= lookahead after its send instant, no event earlier than
// GlobalMin + lookahead can ever materialize anywhere — so every partition
// may fire everything strictly before that horizon without coordination.
// GlobalMin is monotone (appends land at >= sender floor + lookahead, and a
// partition's floor never retreats), which makes the horizon race-free: a
// stale read is merely more conservative.
//
// Determinism does not come from the horizon at all. Every event carries a
// merge key (time, source partition, per-source sequence) and each
// partition's heap pops in exactly that order, so the fired sequence of
// every partition is a property of the model, independent of worker count,
// round boundaries, or drain timing. The horizon only gates *how far* a
// round may run, never *in what order*.
package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// SkewViolation records one breach of the conservative-lookahead contract:
// either a Send that promised less delay than the configured lookahead, or
// an arrival drained after its destination's clock had already passed it
// (the downstream symptom of the former). A correct configuration records
// none; check.PartitionSkew turns the absence into an invariant verdict.
type SkewViolation struct {
	Src, Dst int
	At       Time   // requested delivery instant
	Bound    Time   // the bound it violated (send floor + lookahead, or the destination clock)
	Kind     string // "send-lookahead" or "arrival-behind-clock"
}

func (v SkewViolation) String() string {
	return fmt.Sprintf("skew[%s] p%d->p%d at %v bound %v", v.Kind, v.Src, v.Dst, v.At, v.Bound)
}

// handoff is one directed cross-partition channel. Appends come only from
// the source partition's firing goroutine, drains only from the destination
// partition's round — both under the PartitionedEngine mutex.
type handoff struct {
	seq  uint64 // per-channel deterministic sequence, assigned at send
	msgs []handoffMsg
}

type handoffMsg struct {
	at  Time
	seq uint64
	fn  func()
}

// PartitionedEngine executes n partition Engines concurrently while keeping
// every partition's event order bit-identical at any worker count. Build
// actors on Partition(i) engines before the first Run; cross-partition
// effects must go through Send. Not safe for concurrent use by callers:
// Run, Send-from-within-events, and the accessors follow the same
// single-driver discipline as Engine itself.
type PartitionedEngine struct {
	lookahead Duration
	parts     []*Engine
	workers   int
	pacer     func(part int) // test scaffolding: invoked at every round start

	mu      sync.Mutex
	selfB   []Time       // per-partition floor: heap peek between rounds, round floor while firing
	chanMin []Time       // per-destination min delivery time over undrained arrivals
	chans   [][]*handoff // [src][dst]
	skew    []SkewViolation
	done    atomic.Bool
}

// NewPartitioned builds a partitioned engine with n partitions and the given
// conservative lookahead: the guaranteed minimum delay of any
// cross-partition Send, normally fabric.Config.MinLatency of the
// inter-partition link. lookahead must be positive — a zero-lookahead model
// has no exploitable concurrency and should run on a single Engine.
func NewPartitioned(n int, lookahead Duration) *PartitionedEngine {
	if n < 1 {
		panic("sim: partitioned engine needs at least one partition")
	}
	if lookahead <= 0 {
		panic("sim: partitioned engine needs a positive lookahead")
	}
	pe := &PartitionedEngine{
		lookahead: lookahead,
		parts:     make([]*Engine, n),
		selfB:     make([]Time, n),
		chanMin:   make([]Time, n),
		chans:     make([][]*handoff, n),
	}
	for i := range pe.parts {
		pe.parts[i] = NewEngine()
		pe.parts[i].tag = int32(i)
		pe.selfB[i] = Forever
		pe.chanMin[i] = Forever
		pe.chans[i] = make([]*handoff, n)
		for j := range pe.chans[i] {
			pe.chans[i][j] = &handoff{}
		}
	}
	return pe
}

// Partitions returns the partition count.
func (pe *PartitionedEngine) Partitions() int { return len(pe.parts) }

// Partition returns partition i's engine. Actors built on it belong to
// partition i and must never touch another partition's state directly.
func (pe *PartitionedEngine) Partition(i int) *Engine { return pe.parts[i] }

// Lookahead returns the configured conservative lookahead.
func (pe *PartitionedEngine) Lookahead() Duration { return pe.lookahead }

// SetWorkers fixes the worker count used by Run: 0 selects GOMAXPROCS,
// 1 forces the serial reference schedule (same event order, one goroutine).
func (pe *PartitionedEngine) SetWorkers(w int) {
	if w < 0 {
		w = 0
	}
	pe.workers = w
}

// SetPacer installs a test-only hook invoked at the start of every round
// with the partition index, letting determinism tests perturb worker
// interleavings (random Gosched/sleep) without touching the scheduler.
func (pe *PartitionedEngine) SetPacer(fn func(part int)) { pe.pacer = fn }

// SkewViolations returns every recorded breach of the lookahead contract,
// in the deterministic order the destination partitions observed them
// within each partition (cross-partition order is reported per destination).
func (pe *PartitionedEngine) SkewViolations() []SkewViolation {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	out := make([]SkewViolation, len(pe.skew))
	copy(out, pe.skew)
	return out
}

// TotalFired sums fired-event counts over all partitions.
func (pe *PartitionedEngine) TotalFired() uint64 {
	var n uint64
	for _, p := range pe.parts {
		n += p.Fired()
	}
	return n
}

// TotalPending sums pending events and undrained arrivals over all
// partitions. Only meaningful between Run calls.
func (pe *PartitionedEngine) TotalPending() int {
	pe.mu.Lock()
	defer pe.mu.Unlock()
	n := 0
	for i, p := range pe.parts {
		n += p.Pending()
		for src := range pe.chans {
			n += len(pe.chans[src][i].msgs)
		}
	}
	return n
}

// Send schedules fn on partition dst at the sender's current time plus d.
// It must be called from within an event firing on partition src (or from
// the setup thread before the first Run). The lookahead contract requires
// d >= Lookahead(); a shorter delay is recorded as a skew violation and
// still delivered, so the checker — not a crash — reports the broken
// configuration.
func (pe *PartitionedEngine) Send(src, dst int, d Duration, fn func()) {
	if fn == nil {
		panic("sim: partitioned send nil func")
	}
	if src == dst {
		pe.parts[src].Schedule(d, fn)
		return
	}
	now := pe.parts[src].Now()
	at := now.Add(d)
	pe.mu.Lock()
	if d < pe.lookahead {
		pe.skew = append(pe.skew, SkewViolation{
			Src: src, Dst: dst, At: at, Bound: now.Add(pe.lookahead), Kind: "send-lookahead",
		})
	}
	ch := pe.chans[src][dst]
	ch.seq++
	ch.msgs = append(ch.msgs, handoffMsg{at: at, seq: ch.seq, fn: fn})
	if at < pe.chanMin[dst] {
		pe.chanMin[dst] = at
	}
	pe.mu.Unlock()
}

// Run fires events on every partition until no event at or before deadline
// remains anywhere, then advances each partition's clock to the deadline
// (when finite), mirroring Engine.Run. Repeated calls with increasing
// deadlines drive the simulation in deterministic chunks; the event order
// of every partition is byte-identical at any worker count.
func (pe *PartitionedEngine) Run(deadline Time) {
	w := pe.workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > len(pe.parts) {
		w = len(pe.parts)
	}
	pe.done.Store(false)
	// Seed every floor from the real heap state before any worker looks at
	// GlobalMin: a partition that has not run a round yet must not read as
	// Forever, or a fast worker would compute a bogus horizon (or declare the
	// run finished) while its neighbors still hold work. chanMin persists
	// across Runs and already covers undrained pre-Run Sends.
	pe.mu.Lock()
	for i, p := range pe.parts {
		pe.selfB[i] = Forever
		if at, ok := p.PeekTime(); ok {
			pe.selfB[i] = at
		}
	}
	pe.mu.Unlock()
	if w == 1 {
		pe.worker(0, 1, deadline)
	} else {
		var wg sync.WaitGroup
		wg.Add(w)
		for wi := 0; wi < w; wi++ {
			wi := wi
			go func() {
				defer wg.Done()
				pe.worker(wi, w, deadline)
			}()
		}
		wg.Wait()
	}
	if deadline != Forever {
		for _, p := range pe.parts {
			if p.now < deadline {
				p.now = deadline
			}
		}
	}
}

// Drain runs until no events remain anywhere.
func (pe *PartitionedEngine) Drain() { pe.Run(Forever) }

// worker owns partitions {i : i % workers == wi} and loops rounds over them
// until the global termination flag is raised.
func (pe *PartitionedEngine) worker(wi, workers int, deadline Time) {
	idle := 0
	for {
		if pe.done.Load() {
			return
		}
		progress := false
		for p := wi; p < len(pe.parts); p += workers {
			if pe.round(p, deadline) {
				progress = true
			}
			if pe.done.Load() {
				return
			}
		}
		if progress {
			idle = 0
			continue
		}
		// No runnable partition: the horizon is owned by someone else's
		// partitions. Yield, then back off to a short sleep so a stalled
		// co-worker doesn't burn the core it needs.
		idle++
		if idle < 16 {
			runtime.Gosched()
		} else {
			time.Sleep(20 * time.Microsecond)
		}
	}
}

// round performs one conservative round on partition p: drain arrivals into
// the local heap, publish the floor, compute the horizon, fire strictly
// below it. Reports whether any event fired.
func (pe *PartitionedEngine) round(p int, deadline Time) bool {
	if pe.pacer != nil {
		pe.pacer(p)
	}
	eng := pe.parts[p]
	pe.mu.Lock()
	// Drain every inbound channel. Insert order is irrelevant: the heap
	// comparator (time, src, seq) is the merge rule, so arrivals interleave
	// with local events identically no matter when the drain happened.
	for src := range pe.chans {
		ch := pe.chans[src][p]
		if len(ch.msgs) == 0 {
			continue
		}
		for _, m := range ch.msgs {
			at := m.at
			if at < eng.now {
				pe.skew = append(pe.skew, SkewViolation{
					Src: src, Dst: p, At: at, Bound: eng.now, Kind: "arrival-behind-clock",
				})
				at = eng.now // keep the run alive; the checker reports the breach
			}
			eng.scheduleArrival(at, int32(src), m.seq, m.fn)
		}
		ch.msgs = ch.msgs[:0]
	}
	pe.chanMin[p] = Forever
	floor := Forever
	if at, ok := eng.PeekTime(); ok {
		floor = at
	}
	pe.selfB[p] = floor
	// GlobalMin over floors and undrained arrivals everywhere.
	gm := Forever
	for i := range pe.parts {
		if pe.selfB[i] < gm {
			gm = pe.selfB[i]
		}
		if pe.chanMin[i] < gm {
			gm = pe.chanMin[i]
		}
	}
	// gm == Forever means nothing is pending anywhere — done even when the
	// deadline itself is Forever (Drain).
	if gm == Forever || gm > deadline {
		pe.done.Store(true)
		pe.mu.Unlock()
		return false
	}
	horizon := Forever
	if gm <= Forever-Time(pe.lookahead) {
		horizon = gm.Add(pe.lookahead)
	}
	if deadline != Forever && horizon > deadline {
		horizon = deadline + 1 // fire events at the deadline itself
	}
	runnable := floor < horizon
	pe.mu.Unlock()
	if !runnable {
		return false
	}
	n := eng.runBefore(horizon)
	pe.mu.Lock()
	// Republish the floor: everything below the horizon fired, so the floor
	// only moved up — GlobalMin stays monotone.
	pe.selfB[p] = Forever
	if at, ok := eng.PeekTime(); ok {
		pe.selfB[p] = at
	}
	pe.mu.Unlock()
	return n > 0
}
