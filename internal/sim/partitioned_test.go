package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"testing"
	"time"
)

// ringModel is a randomized multi-partition workload: every partition runs a
// local tick train and sprays cross-partition messages (delay >= lookahead,
// jittered from a per-partition RNG); each arrival may bounce onward with a
// TTL. Every fired event appends one line to its partition's private log, so
// the logs capture the exact per-partition event order.
type ringModel struct {
	pe   *PartitionedEngine
	logs [][]string
	rngs []*rand.Rand
}

func newRingModel(pe *PartitionedEngine, seed int64) *ringModel {
	n := pe.Partitions()
	m := &ringModel{pe: pe, logs: make([][]string, n), rngs: make([]*rand.Rand, n)}
	for p := 0; p < n; p++ {
		m.rngs[p] = rand.New(rand.NewSource(seed + int64(p)*7919))
	}
	return m
}

func (m *ringModel) record(p int, what string) {
	m.logs[p] = append(m.logs[p], fmt.Sprintf("p%d@%d %s", p, m.pe.Partition(p).Now(), what))
}

func (m *ringModel) bounce(dst, ttl int) func() {
	return func() {
		m.record(dst, fmt.Sprintf("arrive ttl=%d", ttl))
		if ttl <= 0 {
			return
		}
		r := m.rngs[dst]
		next := r.Intn(m.pe.Partitions())
		d := m.pe.Lookahead() + Duration(r.Intn(2000))
		m.pe.Send(dst, next, d, m.bounce(next, ttl-1))
	}
}

func (m *ringModel) start(ticks, msgsPerTick, ttl int) {
	for p := 0; p < m.pe.Partitions(); p++ {
		p := p
		eng := m.pe.Partition(p)
		var tick func(i int)
		tick = func(i int) {
			m.record(p, fmt.Sprintf("tick %d", i))
			r := m.rngs[p]
			for k := 0; k < msgsPerTick; k++ {
				dst := r.Intn(m.pe.Partitions())
				d := m.pe.Lookahead() + Duration(r.Intn(3000))
				m.pe.Send(p, dst, d, m.bounce(dst, ttl))
			}
			if i+1 < ticks {
				eng.Schedule(Duration(500+r.Intn(700)), func() { tick(i + 1) })
			}
		}
		eng.ScheduleAt(Time(10*(p+1)), func() { tick(0) })
	}
}

func (m *ringModel) flatten() string {
	var b strings.Builder
	for p, log := range m.logs {
		fmt.Fprintf(&b, "== partition %d ==\n", p)
		for _, line := range log {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// runRing executes one seeded ring workload and returns the per-partition
// event logs. pacerSeed != 0 installs a pacer that randomly yields or sleeps
// at round starts to perturb the worker interleaving.
func runRing(t *testing.T, parts, workers int, seed, pacerSeed int64) (string, *PartitionedEngine) {
	t.Helper()
	pe := NewPartitioned(parts, 100)
	pe.SetWorkers(workers)
	if pacerSeed != 0 {
		rngs := make([]*rand.Rand, parts)
		for p := range rngs {
			rngs[p] = rand.New(rand.NewSource(pacerSeed + int64(p)))
		}
		pe.SetPacer(func(part int) {
			// Per-partition RNG: each partition is paced by one worker at a
			// time, so this introduces no data race, only timing chaos.
			switch rngs[part].Intn(4) {
			case 0:
				runtime.Gosched()
			case 1:
				time.Sleep(time.Duration(rngs[part].Intn(50)) * time.Microsecond)
			}
		})
	}
	m := newRingModel(pe, seed)
	m.start(8, 2, 5)
	pe.Drain()
	if v := pe.SkewViolations(); len(v) != 0 {
		t.Fatalf("unexpected skew violations: %v", v)
	}
	return m.flatten(), pe
}

// TestPartitionedDeterminismAcrossWorkers is the tentpole property: the same
// seeded workload produces byte-identical per-partition event order at every
// worker count, including with randomized pacing perturbing the interleaving.
func TestPartitionedDeterminismAcrossWorkers(t *testing.T) {
	ref, refPE := runRing(t, 4, 1, 42, 0)
	if refPE.TotalFired() == 0 {
		t.Fatal("reference run fired nothing")
	}
	for _, workers := range []int{1, 2, 3, 4} {
		for pacerSeed := int64(0); pacerSeed < 3; pacerSeed++ {
			got, gotPE := runRing(t, 4, workers, 42, 1000+pacerSeed)
			if got != ref {
				t.Fatalf("workers=%d pacer=%d: event order diverged from serial reference\nref fired=%d got fired=%d",
					workers, pacerSeed, refPE.TotalFired(), gotPE.TotalFired())
			}
		}
	}
}

// TestPartitionedDeterminismTwoPartitionsRandomized is the ISSUE 6 satellite
// property test: many randomized seeded interleavings of a 2-partition run,
// each compared byte-for-byte against the serial (workers=1) order.
func TestPartitionedDeterminismTwoPartitionsRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		ref, _ := runRing(t, 2, 1, seed, 0)
		for trial := int64(0); trial < 4; trial++ {
			got, _ := runRing(t, 2, 2, seed, seed*100+trial+1)
			if got != ref {
				t.Fatalf("seed=%d trial=%d: 2-partition parallel order diverged from serial", seed, trial)
			}
		}
	}
}

// TestPartitionedMatchesPlainEngine runs a tie-free deterministic workload on
// a 2-partition engine and on a plain serial Engine, and checks the global
// chronological event order is identical. Times are constructed on distinct
// residues mod 10 so merging the per-partition logs by timestamp is
// unambiguous:
//
//	p0 ticks      ≡ 0 (0, 10, ..., 90)
//	p1 ticks      ≡ 2 (2, 12, ..., 92)
//	p0→p1 arrival ≡ 3 (tick + 13)
//	p1→p0 reply   ≡ 1 (arrival + 8)
func TestPartitionedMatchesPlainEngine(t *testing.T) {
	const lookahead = 5
	type entry struct {
		at   Time
		what string
	}

	runPartitioned := func(workers int) []entry {
		pe := NewPartitioned(2, lookahead)
		pe.SetWorkers(workers)
		logs := [2][]entry{}
		rec := func(p int, what string) {
			logs[p] = append(logs[p], entry{pe.Partition(p).Now(), what})
		}
		for i := 0; i < 10; i++ {
			i := i
			pe.Partition(0).ScheduleAt(Time(10*i), func() {
				rec(0, fmt.Sprintf("p0 tick %d", i))
				pe.Send(0, 1, 13, func() {
					rec(1, fmt.Sprintf("p1 arrive %d", i))
					pe.Send(1, 0, 8, func() { rec(0, fmt.Sprintf("p0 reply %d", i)) })
				})
			})
			pe.Partition(1).ScheduleAt(Time(10*i+2), func() { rec(1, fmt.Sprintf("p1 tick %d", i)) })
		}
		pe.Drain()
		if v := pe.SkewViolations(); len(v) != 0 {
			t.Fatalf("workers=%d: unexpected skew: %v", workers, v)
		}
		// Merge the two logs chronologically; all timestamps are globally
		// distinct by construction, verified below.
		var out []entry
		i, j := 0, 0
		for i < len(logs[0]) || j < len(logs[1]) {
			switch {
			case j == len(logs[1]) || (i < len(logs[0]) && logs[0][i].at < logs[1][j].at):
				out = append(out, logs[0][i])
				i++
			default:
				out = append(out, logs[1][j])
				j++
			}
		}
		for k := 1; k < len(out); k++ {
			if out[k].at <= out[k-1].at {
				t.Fatalf("model not tie-free: %v then %v", out[k-1], out[k])
			}
		}
		return out
	}

	// The same model on one plain Engine: Send becomes ScheduleAt(now+d).
	e := NewEngine()
	var serial []entry
	rec := func(what string) { serial = append(serial, entry{e.Now(), what}) }
	for i := 0; i < 10; i++ {
		i := i
		e.ScheduleAt(Time(10*i), func() {
			rec(fmt.Sprintf("p0 tick %d", i))
			e.Schedule(13, func() {
				rec(fmt.Sprintf("p1 arrive %d", i))
				e.Schedule(8, func() { rec(fmt.Sprintf("p0 reply %d", i)) })
			})
		})
		e.ScheduleAt(Time(10*i+2), func() { rec(fmt.Sprintf("p1 tick %d", i)) })
	}
	e.Drain()

	for _, workers := range []int{1, 2} {
		got := runPartitioned(workers)
		if len(got) != len(serial) {
			t.Fatalf("workers=%d: fired %d events, plain engine fired %d", workers, len(got), len(serial))
		}
		for k := range got {
			if got[k] != serial[k] {
				t.Fatalf("workers=%d: event %d = %+v, plain engine has %+v", workers, k, got[k], serial[k])
			}
		}
	}
}

// TestPartitionedMergeOrder pins the deterministic merge rule: events landing
// on one partition at the same instant fire ordered by source partition tag,
// then per-source sequence — with the destination's own local events carrying
// its own tag.
func TestPartitionedMergeOrder(t *testing.T) {
	for _, workers := range []int{1, 3} {
		pe := NewPartitioned(3, 10)
		pe.SetWorkers(workers)
		var order []string
		// Local event on p2 at t=100 (src tag 2).
		pe.Partition(2).ScheduleAt(100, func() { order = append(order, "local") })
		// p0 and p1 each send two messages all arriving at t=100.
		for src := 0; src < 2; src++ {
			src := src
			for k := 0; k < 2; k++ {
				k := k
				pe.Partition(src).ScheduleAt(Time(50+src), func() {
					pe.Send(src, 2, Duration(100-pe.Partition(src).Now()), func() {
						order = append(order, fmt.Sprintf("src%d-%d", src, k))
					})
				})
			}
		}
		pe.Drain()
		want := []string{"src0-0", "src0-1", "src1-0", "src1-1", "local"}
		if fmt.Sprint(order) != fmt.Sprint(want) {
			t.Fatalf("workers=%d: merge order = %v, want %v", workers, order, want)
		}
	}
}

// TestPartitionedSkewRecording verifies the lookahead contract is checked,
// not assumed: a Send promising less delay than the configured lookahead is
// recorded (and still delivered), which is what the check.PartitionSkew
// invariant and its regression test build on.
func TestPartitionedSkewRecording(t *testing.T) {
	pe := NewPartitioned(2, 1000)
	pe.SetWorkers(2)
	delivered := false
	// p1 runs far ahead on local work so the too-fast message also lands
	// behind its clock.
	for i := 0; i < 50; i++ {
		pe.Partition(1).ScheduleAt(Time(10*i), func() {})
	}
	pe.Partition(0).ScheduleAt(5, func() {
		pe.Send(0, 1, 7, func() { delivered = true }) // 7 < lookahead 1000
	})
	pe.Drain()
	if !delivered {
		t.Fatal("too-fast message was dropped; it must still be delivered")
	}
	viols := pe.SkewViolations()
	if len(viols) == 0 {
		t.Fatal("no skew violation recorded for send below lookahead")
	}
	sawSend := false
	for _, v := range viols {
		if v.Kind == "send-lookahead" {
			sawSend = true
			if v.Src != 0 || v.Dst != 1 || v.At != 12 {
				t.Fatalf("bad violation record: %+v", v)
			}
		}
	}
	if !sawSend {
		t.Fatalf("expected a send-lookahead violation, got %v", viols)
	}
}

// TestPartitionedDeadlineChunks checks chunked Run calls advance every
// partition clock to each finite deadline and produce the same event totals
// as a single Drain.
func TestPartitionedDeadlineChunks(t *testing.T) {
	build := func() (*PartitionedEngine, *ringModel) {
		pe := NewPartitioned(2, 100)
		pe.SetWorkers(2)
		m := newRingModel(pe, 7)
		m.start(6, 1, 3)
		return pe, m
	}

	peA, mA := build()
	peA.Drain()

	peB, mB := build()
	for d := Time(2000); ; d += 2000 {
		peB.Run(d)
		for p := 0; p < peB.Partitions(); p++ {
			if now := peB.Partition(p).Now(); now != d {
				t.Fatalf("after Run(%d): partition %d clock %d", d, p, now)
			}
		}
		if peB.TotalPending() == 0 {
			break
		}
	}
	if got, want := mB.flatten(), mA.flatten(); got != want {
		t.Fatal("chunked runs diverged from single Drain")
	}
	if peA.TotalFired() != peB.TotalFired() {
		t.Fatalf("fired counts differ: %d vs %d", peA.TotalFired(), peB.TotalFired())
	}
}

// TestPartitionedSelfSend pins that a same-partition Send degenerates to a
// plain local Schedule with no channel traffic and no skew complaint even
// below lookahead.
func TestPartitionedSelfSend(t *testing.T) {
	pe := NewPartitioned(2, 1000)
	pe.SetWorkers(1)
	ran := false
	pe.Partition(0).ScheduleAt(1, func() {
		pe.Send(0, 0, 1, func() { ran = true })
	})
	pe.Drain()
	if !ran {
		t.Fatal("self-send did not run")
	}
	if v := pe.SkewViolations(); len(v) != 0 {
		t.Fatalf("self-send must not trip the lookahead check: %v", v)
	}
}

func TestPeekTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.PeekTime(); ok {
		t.Fatal("PeekTime on empty engine reported ok")
	}
	e.ScheduleAt(30, func() {})
	id := e.ScheduleAt(10, func() {})
	if at, ok := e.PeekTime(); !ok || at != 10 {
		t.Fatalf("PeekTime = %v,%v want 10,true", at, ok)
	}
	e.Cancel(id)
	if at, ok := e.PeekTime(); !ok || at != 30 {
		t.Fatalf("PeekTime after cancel = %v,%v want 30,true", at, ok)
	}
}
