package sim

import (
	"math"
	"math/rand"
)

// Rand wraps a seeded PRNG with the distributions the workloads and device
// models need. It exists (rather than using *rand.Rand directly) so every
// distribution used in an experiment is named, seedable, and testable.
type Rand struct {
	src *rand.Rand
}

// NewRand returns a Rand seeded deterministically.
func NewRand(seed int64) *Rand {
	return &Rand{src: rand.New(rand.NewSource(seed))}
}

// Int63n returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Int63n(n int64) int64 { return r.src.Int63n(n) }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int { return r.src.Intn(n) }

// Float64 returns a uniform float in [0, 1).
func (r *Rand) Float64() float64 { return r.src.Float64() }

// Uint64 returns a uniform 64-bit value.
func (r *Rand) Uint64() uint64 { return r.src.Uint64() }

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int { return r.src.Perm(n) }

// Exp returns an exponentially distributed duration with the given mean.
// Used for background-tenant burst lengths and arrival gaps.
func (r *Rand) Exp(mean Duration) Duration {
	if mean <= 0 {
		return 0
	}
	return Duration(r.src.ExpFloat64() * float64(mean))
}

// Pareto returns a Pareto(shape)-distributed duration with the given minimum.
// Heavy-tailed service demands: shape in (1, 2] yields the bursty tenant
// behaviour that produces millisecond scheduling tails.
func (r *Rand) Pareto(min Duration, shape float64) Duration {
	if min <= 0 {
		return 0
	}
	u := r.src.Float64()
	for u == 0 {
		u = r.src.Float64()
	}
	return Duration(float64(min) / math.Pow(u, 1.0/shape))
}

// Normal returns a normally distributed duration clamped at zero.
func (r *Rand) Normal(mean, stddev Duration) Duration {
	v := float64(mean) + r.src.NormFloat64()*float64(stddev)
	if v < 0 {
		v = 0
	}
	return Duration(v)
}

// Jitter returns d scaled by a uniform factor in [1-frac, 1+frac].
func (r *Rand) Jitter(d Duration, frac float64) Duration {
	if frac <= 0 {
		return d
	}
	f := 1 + frac*(2*r.src.Float64()-1)
	return Duration(float64(d) * f)
}

// Fork derives an independent child generator; use one per component so
// adding draws in one component does not perturb another.
func (r *Rand) Fork() *Rand {
	return NewRand(int64(r.src.Uint64()))
}

// Zipf generates zipfian-distributed integers in [0, n) with exponent theta,
// matching the YCSB generator (theta 0.99 by default). It supports growing n
// incrementally (for insert-heavy workloads) by recomputing zeta lazily.
type Zipf struct {
	r     *Rand
	n     int64
	theta float64
	zetan float64
	zeta2 float64
	alpha float64
	eta   float64
}

// NewZipf returns a zipfian generator over [0, n).
func NewZipf(r *Rand, n int64, theta float64) *Zipf {
	if n <= 0 {
		panic("sim: zipf over empty range")
	}
	z := &Zipf{r: r, theta: theta}
	z.zeta2 = zetaStatic(2, theta)
	z.grow(n)
	return z
}

func zetaStatic(n int64, theta float64) float64 {
	s := 0.0
	for i := int64(1); i <= n; i++ {
		s += 1 / math.Pow(float64(i), theta)
	}
	return s
}

func (z *Zipf) grow(n int64) {
	// Incrementally extend zeta(n) rather than recomputing from scratch.
	if n <= z.n {
		return
	}
	for i := z.n + 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.n = n
	// theta == 1 sits on the pole of alpha = 1/(1-theta); nudge just below
	// it so alpha stays finite and eta well-defined. The distribution at
	// 1-1e-9 is indistinguishable from the s=1 zipfian at any sample size
	// we can draw.
	theta := z.theta
	if theta == 1 {
		theta = 1 - 1e-9
	}
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
}

// Next returns the next zipfian value in [0, n).
func (z *Zipf) Next() int64 { return z.nextU(z.r.Float64()) }

// nextU maps one uniform draw u in [0, 1) to a zipfian value in [0, n) —
// Gray et al.'s spline, as in the YCSB generator. Split from Next so the
// boundary behaviour is directly testable.
func (z *Zipf) nextU(u float64) int64 {
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+math.Pow(0.5, z.theta) {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	// For u close enough to 1, eta*u-eta+1 rounds to exactly 1.0 and the
	// spline evaluates to n — one past the domain (the canonical YCSB
	// generator off-by-one). Clamp to the last item.
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// Grow extends the item space to n (used after inserts).
func (z *Zipf) Grow(n int64) { z.grow(n) }

// N returns the current item-space size.
func (z *Zipf) N() int64 { return z.n }
