package qos

import (
	"math"
	"testing"

	"hyperloop/internal/sim"
)

// checkBucket asserts the two bucket invariants at an observation point.
func checkBucket(t *testing.T, b *Bucket, now sim.Time) {
	t.Helper()
	c := b.Credits(now)
	if c < 0 || math.IsNaN(c) {
		t.Fatalf("credits went negative: %v at %v", c, now)
	}
	if c > b.Cap()+1e-9 {
		t.Fatalf("credits %v exceed cap %v at %v", c, b.Cap(), now)
	}
}

func TestBucketAccrualAndSpend(t *testing.T) {
	b := NewBucket(1_000_000, 8) // 1 token/µs, burst 8
	if got := b.Credits(0); got != 8 {
		t.Fatalf("born with %v credits, want full burst 8", got)
	}
	for i := 0; i < 8; i++ {
		if !b.Take(0) {
			t.Fatalf("take %d refused with credits available", i)
		}
	}
	if b.Take(0) {
		t.Fatal("take admitted with an empty bucket")
	}
	// 3µs refills 3 tokens.
	now := sim.Time(3 * sim.Microsecond)
	if got := b.Credits(now); got < 2.99 || got > 3.01 {
		t.Fatalf("credits after 3µs = %v, want ~3", got)
	}
	// A long idle clamps at the cap, never above.
	now = sim.Time(1 * sim.Second)
	if got := b.Credits(now); got != 8 {
		t.Fatalf("credits after idle = %v, want cap 8", got)
	}
	if b.Spent() != 8 {
		t.Fatalf("spent = %d, want 8", b.Spent())
	}
}

func TestBucketBackwardsTimeAccruesNothing(t *testing.T) {
	b := NewBucket(1_000_000, 4)
	for i := 0; i < 4; i++ {
		b.Take(sim.Time(10 * sim.Microsecond))
	}
	// The clock jumping backwards must not mint credit, and the later
	// watermark must survive so a replay can't double-pay.
	if got := b.Credits(sim.Time(2 * sim.Microsecond)); got != 0 {
		t.Fatalf("backwards time minted %v credits", got)
	}
	if got := b.Credits(sim.Time(11 * sim.Microsecond)); got < 0.99 || got > 1.01 {
		t.Fatalf("credits after watermark+1µs = %v, want ~1", got)
	}
}

func TestBucketSetRate(t *testing.T) {
	b := NewBucket(1_000_000, 8)
	for i := 0; i < 8; i++ {
		b.Take(0)
	}
	b.SetRate(sim.Time(2*sim.Microsecond), 4_000_000)
	// 2µs at the old rate accrued 2; the next 1µs at the new rate adds 4.
	if got := b.Credits(sim.Time(3 * sim.Microsecond)); got < 5.99 || got > 6.01 {
		t.Fatalf("credits across a rate change = %v, want ~6", got)
	}
	if b.Rate() != 4_000_000 {
		t.Fatalf("rate = %v, want 4e6", b.Rate())
	}
	b.SetRate(sim.Time(3*sim.Microsecond), -5)
	if b.Rate() != 0 {
		t.Fatalf("negative rate not clamped: %v", b.Rate())
	}
}

func TestBucketZeroRateNeverRefills(t *testing.T) {
	b := NewBucket(0, 2)
	if !b.Take(0) || !b.Take(0) {
		t.Fatal("burst credits not spendable at rate 0")
	}
	if b.Take(sim.Time(sim.Second)) {
		t.Fatal("rate-0 bucket refilled")
	}
}

// FuzzTenantBucket drives a bucket with an adversarial op/timestamp stream
// — including non-monotonic clocks and mid-stream rate changes — and
// asserts credits never go negative nor above the cap.
func FuzzTenantBucket(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 255, 0, 128, 7}, uint16(5000), uint8(8))
	f.Add([]byte{9, 9, 9, 9, 9, 9}, uint16(0), uint8(0))
	f.Add([]byte{1, 0, 1, 0, 1, 0, 200, 100}, uint16(65535), uint8(255))
	f.Fuzz(func(t *testing.T, ops []byte, rate uint16, burst uint8) {
		b := NewBucket(float64(rate)*1000, float64(burst))
		var now sim.Time
		for i, op := range ops {
			// Low bits pick the action, high bits the time delta; every
			// third op rewinds the clock to probe the monotonic guard.
			delta := sim.Duration(op>>2) * sim.Microsecond
			if i%3 == 2 {
				now = now.Add(-delta)
			} else {
				now = now.Add(delta)
			}
			switch op & 3 {
			case 0, 1:
				b.Take(now)
			case 2:
				b.SetRate(now, float64(op)*500)
			case 3:
				b.Credits(now)
			}
			if c := b.Credits(now); c < 0 || c > b.Cap()+1e-9 || math.IsNaN(c) {
				t.Fatalf("op %d at %v: credits %v outside [0, %v]", i, now, c, b.Cap())
			}
		}
	})
}
