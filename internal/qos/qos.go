// Package qos is the deterministic tenant control plane: it closes the
// observe→decide→act loop over the serving stack. Per-tenant contracts
// (admission rate, burst credits, a latency budget) are observed through
// virtual-time windows over tenant-labeled counters; a sustained saturation
// signal — the tenant shedding more than a threshold share of its arrivals
// while the group queue backs up — makes the controller *act*: it funds a
// shard scale-out step from the tenant's escrow if the budget cap allows,
// and degrades to plain throttling when the escrow is exhausted (the
// Nil-Store §6.1 economics: user-funded elasticity, never unfunded).
//
// Everything runs on the owning group's event engine in virtual time, so a
// run is byte-identical at any -parallel / -engine-workers setting. The
// controller never reads wall clock, never samples outside its window tick,
// and treats collapsed (overflow-label) metric series as unreliable: no
// scale-out decision is ever made from the overflow bucket.
package qos

import (
	"fmt"

	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
)

// Budget is a tenant's elasticity escrow, in abstract funding units. A
// scale-out step is funded only while Spent+StepCost <= SpendCap and the
// escrow covers the step; otherwise the controller degrades to throttling.
type Budget struct {
	// Escrow is the balance deposited for elastic capacity.
	Escrow float64
	// StepCost is the price of one scale-out step (one shard recruited).
	StepCost float64
	// SpendCap bounds lifetime spend regardless of escrow top-ups.
	SpendCap float64
}

// SLO carries a tenant's service terms: the latency budget it bought, the
// elasticity escrow behind it, and the placement hint steering where funded
// capacity lands (Hot recruits edge-tier hosts, Cold archive-tier).
type SLO struct {
	// P99Target is the tenant's tail-latency budget; breaches are recorded
	// as events (observe-only — the scale-out trigger is throttle share,
	// which is exact, not a quantile estimate).
	P99Target sim.Duration
	Budget    Budget
	Hint      shard.Hint
}

// Class is one tenant class as the controller sees it: a name, the
// per-group contracted admission rate, and its SLO terms. ContractRate 0
// means uncontracted — the controller observes but never acts.
type Class struct {
	Name         string
	ContractRate float64
	SLO          SLO
}

// TenantWindow is a cumulative snapshot of one tenant's counters, read at a
// window tick. The controller differences consecutive snapshots itself.
type TenantWindow struct {
	Arrivals  uint64
	Admitted  uint64
	Throttled uint64
	Acked     uint64
	// Backpressure counts WAL ring-full bounces attributed to the group
	// (shared across tenants; reported per window for the saturation log).
	Backpressure uint64
	// P99 is the tenant's cumulative ack-latency p99 at the snapshot
	// (zero when the source has no latency stream). Used only for
	// SLO-breach bookkeeping, never for spend decisions.
	P99 sim.Duration
	// Overflow marks the snapshot as coming from a collapsed metric series
	// (the MaxLabels overflow bucket). Overflow windows never trigger
	// scale-out: the counts mix an unknown set of tenants.
	Overflow bool
}

// Source exposes tenant counters to the controller. Implementations must be
// deterministic reads of simulation state (no wall clock, no goroutines).
type Source interface {
	// Window returns the cumulative snapshot for class i.
	Window(i int) TenantWindow
}

// Actuator applies controller decisions to the serving plane.
type Actuator interface {
	// SetRate replaces class i's admission bucket refill rate.
	SetRate(i int, ratePerSec float64)
	// ScaleOut recruits one more shard for class i, biased by hint. done
	// fires on the owning engine with nil on success; on error the step is
	// refunded. At most one ScaleOut per class is in flight at a time.
	ScaleOut(i int, hint shard.Hint, done func(error))
}

// EventKind classifies controller log entries.
type EventKind int

const (
	// Saturated: the sustained-saturation signal fired for a tenant.
	Saturated EventKind = iota
	// Funded: a scale-out step was paid for and dispatched.
	Funded
	// ScaleOutDone: the funded step completed; the contract rate was raised.
	ScaleOutDone
	// ScaleOutFailed: the funded step failed; the spend was refunded.
	ScaleOutFailed
	// CapExhausted: saturation persisted but escrow/cap refused the step;
	// the tenant degrades to throttling at its current rate.
	CapExhausted
	// OverflowSkipped: the tenant's series collapsed into the overflow
	// label; the controller refused to decide on it.
	OverflowSkipped
	// SLOBreach: the tenant's cumulative p99 crossed its P99Target
	// (observational only).
	SLOBreach
)

func (k EventKind) String() string {
	switch k {
	case Saturated:
		return "saturated"
	case Funded:
		return "funded"
	case ScaleOutDone:
		return "scaleout-done"
	case ScaleOutFailed:
		return "scaleout-failed"
	case CapExhausted:
		return "cap-exhausted"
	case OverflowSkipped:
		return "overflow-skipped"
	case SLOBreach:
		return "slo-breach"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one controller decision, stamped in virtual time. Events are
// appended in engine order per controller; callers merge controllers in
// group order for a deterministic global log.
type Event struct {
	At     sim.Time
	Class  int
	Name   string
	Kind   EventKind
	Detail string
}

func (e Event) String() string {
	return fmt.Sprintf("%v %s %s: %s", e.At, e.Name, e.Kind, e.Detail)
}

// TenantState is a snapshot of the controller's per-tenant ledger.
type TenantState struct {
	Name string
	// Steps counts completed funded scale-out steps.
	Steps int
	// Spent is the lifetime escrow spend (refunds excluded).
	Spent float64
	// EscrowLeft is the remaining balance.
	EscrowLeft float64
	// FundedRate is the extra admission rate granted on top of the
	// contract by completed steps.
	FundedRate float64
	// Degraded reports the tenant hit the budget cap while saturated and
	// was left throttled.
	Degraded bool
}
