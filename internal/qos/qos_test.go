package qos

import (
	"strings"
	"testing"

	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
)

// TestEventKindStrings: every decision kind prints a stable name (these land
// in determinism-gated summaries and CI logs), and unknown kinds are still
// printable.
func TestEventKindStrings(t *testing.T) {
	want := map[EventKind]string{
		Saturated:       "saturated",
		Funded:          "funded",
		ScaleOutDone:    "scaleout-done",
		ScaleOutFailed:  "scaleout-failed",
		CapExhausted:    "cap-exhausted",
		OverflowSkipped: "overflow-skipped",
		SLOBreach:       "slo-breach",
	}
	for k, s := range want {
		if k.String() != s {
			t.Fatalf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if got := EventKind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown kind prints %q", got)
	}
	e := Event{At: sim.Time(1500), Name: "agg", Kind: Funded, Detail: "step 1"}
	for _, part := range []string{"agg", "funded", "step 1"} {
		if !strings.Contains(e.String(), part) {
			t.Fatalf("Event.String() = %q misses %q", e.String(), part)
		}
	}
}

// TestBucketNegativeArgsClamp: adversarial constructor arguments clamp to
// zero instead of minting negative credit.
func TestBucketNegativeArgsClamp(t *testing.T) {
	b := NewBucket(-5, -3)
	if b.Rate() != 0 || b.Credits(0) != 0 {
		t.Fatalf("negative args leaked: rate=%v credits=%v", b.Rate(), b.Credits(0))
	}
	if b.Take(sim.Time(1000)) {
		t.Fatal("empty zero-rate bucket granted a token")
	}
}

// TestRegistrySourceBackpressure: the group-wide backpressure counter is a
// live handle into the same registry series the windows read.
func TestRegistrySourceBackpressure(t *testing.T) {
	src := NewRegistrySource(metrics.NewRegistry(), []string{"a"})
	src.Backpressure().Add(3)
	if w := src.Window(0); w.Backpressure != 3 {
		t.Fatalf("window backpressure = %v, want 3", w.Backpressure)
	}
}
