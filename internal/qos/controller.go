package qos

import (
	"fmt"

	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
)

// Config tunes one group's QoS controller. Zero values take the defaults
// noted on each field.
type Config struct {
	// Window is the observation period between decision ticks (200µs).
	Window sim.Duration
	// Sustain is how many consecutive saturated windows arm the saturation
	// signal (2) — a single bursty window never triggers spend.
	Sustain int
	// SaturationFrac is the throttled share of a tenant's window arrivals
	// that marks the window saturated (0.25).
	SaturationFrac float64
	// BackpressureFrac is the WAL ring-full bounce count, as a share of the
	// window's admitted requests, that marks the window saturated even when
	// the admission throttle is quiet (0.5). Bounces mean admitted work is
	// stalling inside the group — a saturation mode the throttle share alone
	// under-reports, since the limiter only sees arrivals it refused.
	BackpressureFrac float64
	// FundFrac is the admission-rate raise per completed scale-out step,
	// as a fraction of the contract rate (0.5).
	FundFrac float64
	// MaxSteps is a safety cap on funded steps per tenant regardless of
	// escrow (8).
	MaxSteps int
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 200 * sim.Microsecond
	}
	if c.Sustain <= 0 {
		c.Sustain = 2
	}
	if c.SaturationFrac <= 0 {
		c.SaturationFrac = 0.25
	}
	if c.BackpressureFrac <= 0 {
		c.BackpressureFrac = 0.5
	}
	if c.FundFrac <= 0 {
		c.FundFrac = 0.5
	}
	if c.MaxSteps <= 0 {
		c.MaxSteps = 8
	}
	return c
}

type tenantState struct {
	prev           TenantWindow
	sustain        int
	steps          int
	spent          float64
	escrow         float64
	funded         float64
	inflight       bool
	degraded       bool
	overflowLogged bool
	breachLogged   bool
}

// Controller is one group leader's observe→decide→act loop. It ticks every
// cfg.Window on the group's engine, differences the Source snapshots, and
// drives the Actuator. All state is engine-local, so runs stay
// byte-identical at any worker count.
type Controller struct {
	eng     *sim.Engine
	cfg     Config
	classes []Class
	src     Source
	act     Actuator
	st      []tenantState
	events  []Event
	timer   sim.EventID
	stopped bool
}

// NewController starts a controller on eng and schedules its first tick one
// window out. Each tenant's escrow is seeded from its SLO budget.
func NewController(eng *sim.Engine, cfg Config, classes []Class, src Source, act Actuator) *Controller {
	c := &Controller{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		classes: classes,
		src:     src,
		act:     act,
		st:      make([]tenantState, len(classes)),
	}
	for i := range classes {
		c.st[i].escrow = classes[i].SLO.Budget.Escrow
	}
	c.timer = eng.Schedule(c.cfg.Window, c.tick)
	return c
}

// Stop cancels the tick loop; in-flight scale-outs still complete.
func (c *Controller) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	if c.timer.Valid() {
		c.eng.Cancel(c.timer)
	}
}

// Events returns the decision log in virtual-time order.
func (c *Controller) Events() []Event { return c.events }

// States snapshots the per-tenant ledgers.
func (c *Controller) States() []TenantState {
	out := make([]TenantState, len(c.st))
	for i := range c.st {
		out[i] = TenantState{
			Name:       c.classes[i].Name,
			Steps:      c.st[i].steps,
			Spent:      c.st[i].spent,
			EscrowLeft: c.st[i].escrow,
			FundedRate: c.st[i].funded,
			Degraded:   c.st[i].degraded,
		}
	}
	return out
}

func (c *Controller) log(at sim.Time, class int, kind EventKind, detail string) {
	c.events = append(c.events, Event{
		At: at, Class: class, Name: c.classes[class].Name, Kind: kind, Detail: detail,
	})
}

func (c *Controller) tick() {
	if c.stopped {
		return
	}
	now := c.eng.Now()
	for i := range c.classes {
		c.observe(i, now)
	}
	c.timer = c.eng.Schedule(c.cfg.Window, c.tick)
}

// observe differences class i's window and decides. The decision ladder is
// strict: collapsed series are skipped, a lone saturated window only arms
// the counter, and funding happens only within escrow, cap, and MaxSteps.
func (c *Controller) observe(i int, now sim.Time) {
	cl := &c.classes[i]
	st := &c.st[i]
	cur := c.src.Window(i)
	w := TenantWindow{
		Arrivals:     cur.Arrivals - st.prev.Arrivals,
		Admitted:     cur.Admitted - st.prev.Admitted,
		Throttled:    cur.Throttled - st.prev.Throttled,
		Acked:        cur.Acked - st.prev.Acked,
		Backpressure: cur.Backpressure - st.prev.Backpressure,
	}
	st.prev = cur

	if cl.SLO.P99Target > 0 && cur.P99 > cl.SLO.P99Target && !st.breachLogged {
		st.breachLogged = true
		c.log(now, i, SLOBreach, fmt.Sprintf("p99 %v over target %v", cur.P99, cl.SLO.P99Target))
	}
	if cl.ContractRate <= 0 {
		return
	}
	if cur.Overflow {
		st.sustain = 0
		if !st.overflowLogged {
			st.overflowLogged = true
			c.log(now, i, OverflowSkipped, "series collapsed into overflow label; refusing to decide")
		}
		return
	}
	saturated := w.Arrivals > 0 &&
		float64(w.Throttled) >= c.cfg.SaturationFrac*float64(w.Arrivals)
	// WAL ring-full bounces are the second saturation mode: admitted work
	// stalling inside the group, invisible to the admission throttle.
	if !saturated && w.Arrivals > 0 && w.Admitted > 0 &&
		float64(w.Backpressure) >= c.cfg.BackpressureFrac*float64(w.Admitted) {
		saturated = true
	}
	if !saturated {
		st.sustain = 0
		return
	}
	st.sustain++
	if st.sustain < c.cfg.Sustain || st.inflight {
		return
	}
	st.sustain = 0

	b := cl.SLO.Budget
	canFund := st.steps < c.cfg.MaxSteps &&
		st.escrow >= b.StepCost &&
		st.spent+b.StepCost <= b.SpendCap
	if canFund || !st.degraded {
		c.log(now, i, Saturated, fmt.Sprintf("shed %d of %d arrivals; backpressure +%d",
			w.Throttled, w.Arrivals, w.Backpressure))
	}
	if !canFund {
		if !st.degraded {
			st.degraded = true
			c.log(now, i, CapExhausted, fmt.Sprintf(
				"spent %.1f of cap %.1f, escrow %.1f: degrading to throttle",
				st.spent, b.SpendCap, st.escrow))
		}
		return
	}
	st.spent += b.StepCost
	st.escrow -= b.StepCost
	st.inflight = true
	c.log(now, i, Funded, fmt.Sprintf("step %d: cost %.1f, escrow %.1f left",
		st.steps+1, b.StepCost, st.escrow))
	c.act.ScaleOut(i, cl.SLO.Hint, func(err error) { c.scaleDone(i, err) })
}

func (c *Controller) scaleDone(i int, err error) {
	cl := &c.classes[i]
	st := &c.st[i]
	st.inflight = false
	if err != nil {
		st.spent -= cl.SLO.Budget.StepCost
		st.escrow += cl.SLO.Budget.StepCost
		c.log(c.eng.Now(), i, ScaleOutFailed, fmt.Sprintf("refunded: %v", err))
		return
	}
	st.steps++
	st.funded += c.cfg.FundFrac * cl.ContractRate
	c.act.SetRate(i, cl.ContractRate+st.funded)
	c.log(c.eng.Now(), i, ScaleOutDone, fmt.Sprintf("rate raised to %.0f/s", cl.ContractRate+st.funded))
}

// Hint re-exports the shard placement hint type for callers that only
// import qos.
type Hint = shard.Hint
