package qos

import (
	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
)

// Subsystem is the metrics subsystem carrying tenant-labeled QoS series.
const Subsystem = "tenant"

// TenantSeries is the write side of one tenant's QoS stream: the serving
// plane increments these from its hot paths (observe-only handles, per the
// determinism rules), and the controller reads them back through Window.
type TenantSeries struct {
	Arrivals  *metrics.Counter
	Admitted  *metrics.Counter
	Throttled *metrics.Counter
	Acked     *metrics.Counter
	Lat       *metrics.Histogram
}

// RegistrySource adapts tenant-labeled registry series into a Source. When
// a tenant's label collapsed into the MaxLabels overflow bucket, its
// snapshots are flagged Overflow and the controller refuses to act on them
// — the collapsed counter mixes every overflowed tenant.
type RegistrySource struct {
	reg      *metrics.Registry
	series   []TenantSeries
	distinct []bool
	backpr   *metrics.Counter
}

// NewRegistrySource registers (or looks up) the tenant-labeled series for
// each name in reg. Registration order is the caller's name order, so the
// same names always collapse the same way at the cardinality bound.
func NewRegistrySource(reg *metrics.Registry, names []string) *RegistrySource {
	s := &RegistrySource{
		reg:      reg,
		series:   make([]TenantSeries, len(names)),
		distinct: make([]bool, len(names)),
		backpr:   reg.Counter(Subsystem, "backpressure", "group"),
	}
	for i, name := range names {
		s.series[i] = TenantSeries{
			Arrivals:  reg.Counter(Subsystem, "arrivals", name),
			Admitted:  reg.Counter(Subsystem, "admitted", name),
			Throttled: reg.Counter(Subsystem, "throttled", name),
			Acked:     reg.Counter(Subsystem, "acked", name),
			Lat:       reg.Histogram(Subsystem, "lat", name),
		}
	}
	// Distinctness is checked after all registrations: a label is reliable
	// only if every one of its series survived the cardinality bound.
	for i, name := range names {
		s.distinct[i] = reg.Distinct(Subsystem, "arrivals", name) &&
			reg.Distinct(Subsystem, "lat", name)
	}
	return s
}

// Series returns tenant i's write handles.
func (s *RegistrySource) Series(i int) TenantSeries { return s.series[i] }

// Backpressure returns the group-wide WAL-bounce counter handle.
func (s *RegistrySource) Backpressure() *metrics.Counter { return s.backpr }

// Distinct reports whether tenant i's series survived the label bound.
func (s *RegistrySource) Distinct(i int) bool { return s.distinct[i] }

// Window implements Source.
func (s *RegistrySource) Window(i int) TenantWindow {
	t := s.series[i]
	var p99 sim.Duration
	if t.Lat.Hist().Count() > 0 {
		p99 = t.Lat.Hist().P99()
	}
	return TenantWindow{
		Arrivals:     t.Arrivals.Value(),
		Admitted:     t.Admitted.Value(),
		Throttled:    t.Throttled.Value(),
		Acked:        t.Acked.Value(),
		Backpressure: s.backpr.Value(),
		P99:          p99,
		Overflow:     !s.distinct[i],
	}
}
