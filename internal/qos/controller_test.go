package qos

import (
	"errors"
	"fmt"
	"testing"

	"hyperloop/internal/metrics"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
)

// fakeSource scripts per-class cumulative windows by tick index.
type fakeSource struct {
	tick    int
	windows func(class, tick int) TenantWindow
}

func (s *fakeSource) Window(i int) TenantWindow { return s.windows(i, s.tick) }

// fakeActuator records decisions and completes scale-outs on the engine.
type fakeActuator struct {
	eng      *sim.Engine
	rates    []float64
	scales   int
	failWith error
	delay    sim.Duration
}

func (a *fakeActuator) SetRate(i int, r float64) { a.rates = append(a.rates, r) }

func (a *fakeActuator) ScaleOut(i int, hint shard.Hint, done func(error)) {
	a.scales++
	err := a.failWith
	a.eng.Schedule(a.delay, func() { done(err) })
}

func saturatedAlways(class, tick int) TenantWindow {
	// Cumulative counters growing every window, 50% throttled.
	return TenantWindow{
		Arrivals:  uint64(tick) * 100,
		Admitted:  uint64(tick) * 50,
		Throttled: uint64(tick) * 50,
	}
}

func testClasses(escrow, cap float64) []Class {
	return []Class{{
		Name:         "agg",
		ContractRate: 10_000,
		SLO: SLO{
			Budget: Budget{Escrow: escrow, StepCost: 1, SpendCap: cap},
			Hint:   shard.HintHot,
		},
	}}
}

func runController(t *testing.T, classes []Class, src Source, act Actuator, d sim.Duration) *Controller {
	t.Helper()
	eng := sim.NewEngine()
	fa, ok := act.(*fakeActuator)
	if ok {
		fa.eng = eng
	}
	fs, isFake := src.(*fakeSource)
	c := NewController(eng, Config{Window: 100 * sim.Microsecond}, classes, src, act)
	if isFake {
		// Advance the scripted tick just before each controller tick fires.
		var pump func()
		pump = func() {
			fs.tick++
			eng.Schedule(100*sim.Microsecond, pump)
		}
		eng.Schedule(100*sim.Microsecond-1, pump)
	}
	eng.Run(sim.Time(0).Add(d))
	c.Stop()
	// Drain in-flight scale-out completions so ledgers are settled.
	eng.Run(sim.Time(0).Add(d + sim.Millisecond))
	return c
}

func kinds(events []Event) []EventKind {
	out := make([]EventKind, len(events))
	for i, e := range events {
		out[i] = e.Kind
	}
	return out
}

func TestControllerFundsThenExhausts(t *testing.T) {
	src := &fakeSource{windows: saturatedAlways}
	act := &fakeActuator{delay: 10 * sim.Microsecond}
	c := runController(t, testClasses(2, 2), src, act, 3*sim.Millisecond)

	st := c.States()[0]
	if st.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (escrow covers exactly 2)", st.Steps)
	}
	if st.Spent != 2 || st.EscrowLeft != 0 {
		t.Fatalf("spent/escrow = %v/%v, want 2/0", st.Spent, st.EscrowLeft)
	}
	if !st.Degraded {
		t.Fatal("controller did not degrade to throttling at the cap")
	}
	// Funded rate: contract 10k, FundFrac 0.5 → +5k per step.
	if st.FundedRate != 10_000 {
		t.Fatalf("funded rate = %v, want 10000", st.FundedRate)
	}
	if act.scales != 2 {
		t.Fatalf("scale-outs = %d, want 2", act.scales)
	}
	if len(act.rates) != 2 || act.rates[0] != 15_000 || act.rates[1] != 20_000 {
		t.Fatalf("rates = %v, want [15000 20000]", act.rates)
	}
	var sawCap bool
	for _, e := range c.Events() {
		if e.Kind == CapExhausted {
			sawCap = true
		}
	}
	if !sawCap {
		t.Fatalf("no cap-exhausted event in %v", kinds(c.Events()))
	}
}

func TestControllerRefundsFailedScaleOut(t *testing.T) {
	src := &fakeSource{windows: saturatedAlways}
	act := &fakeActuator{delay: 10 * sim.Microsecond, failWith: errors.New("no spare shard")}
	c := runController(t, testClasses(4, 4), src, act, 2*sim.Millisecond)

	st := c.States()[0]
	if st.Steps != 0 {
		t.Fatalf("steps = %d, want 0 (every scale-out failed)", st.Steps)
	}
	if st.Spent != 0 || st.EscrowLeft != 4 {
		t.Fatalf("spent/escrow = %v/%v, want 0/4 after refunds", st.Spent, st.EscrowLeft)
	}
	if len(act.rates) != 0 {
		t.Fatalf("rate raised despite failed scale-outs: %v", act.rates)
	}
	if act.scales == 0 {
		t.Fatal("no scale-out attempted")
	}
}

func TestControllerCalmTenantNeverFunds(t *testing.T) {
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		return TenantWindow{Arrivals: uint64(tick) * 100, Admitted: uint64(tick) * 100}
	}}
	act := &fakeActuator{delay: sim.Microsecond}
	c := runController(t, testClasses(10, 10), src, act, 2*sim.Millisecond)
	if act.scales != 0 || len(c.Events()) != 0 {
		t.Fatalf("calm tenant acted on: %d scale-outs, events %v", act.scales, kinds(c.Events()))
	}
}

func TestControllerSingleWindowDoesNotTrigger(t *testing.T) {
	// Saturated only in window 3: sustain=2 must never be reached.
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		w := TenantWindow{Arrivals: uint64(tick) * 100, Admitted: uint64(tick) * 100}
		if tick >= 3 {
			w.Throttled = 90 // one window's worth, then flat again
		}
		return w
	}}
	act := &fakeActuator{delay: sim.Microsecond}
	c := runController(t, testClasses(10, 10), src, act, 2*sim.Millisecond)
	if act.scales != 0 {
		t.Fatalf("single saturated window funded a step (events %v)", kinds(c.Events()))
	}
}

// TestControllerBackpressureSaturation pins the second saturation mode:
// every arrival is admitted (the throttle share reads 0%), but WAL
// ring-full bounces pile up inside the group. Throttle share alone would
// under-report this as a calm tenant; the backpressure term must fund the
// scale-out anyway.
func TestControllerBackpressureSaturation(t *testing.T) {
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		return TenantWindow{
			Arrivals:     uint64(tick) * 100,
			Admitted:     uint64(tick) * 100, // throttle silent
			Backpressure: uint64(tick) * 60,  // 60% of admitted bounced
		}
	}}
	act := &fakeActuator{delay: 10 * sim.Microsecond}
	c := runController(t, testClasses(2, 2), src, act, 3*sim.Millisecond)

	st := c.States()[0]
	if st.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (backpressure saturation must fund)", st.Steps)
	}
	if act.scales != 2 {
		t.Fatalf("scale-outs = %d, want 2", act.scales)
	}
	var sawSaturated bool
	for _, e := range c.Events() {
		if e.Kind == Saturated {
			sawSaturated = true
		}
	}
	if !sawSaturated {
		t.Fatalf("no saturated event in %v", kinds(c.Events()))
	}
}

// TestControllerMildBackpressureDoesNotTrigger: bounces below the
// BackpressureFrac share of admitted work stay sub-saturation.
func TestControllerMildBackpressureDoesNotTrigger(t *testing.T) {
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		return TenantWindow{
			Arrivals:     uint64(tick) * 100,
			Admitted:     uint64(tick) * 100,
			Backpressure: uint64(tick) * 40, // below the 0.5 default
		}
	}}
	act := &fakeActuator{delay: sim.Microsecond}
	c := runController(t, testClasses(10, 10), src, act, 2*sim.Millisecond)
	if act.scales != 0 {
		t.Fatalf("mild backpressure funded a step (events %v)", kinds(c.Events()))
	}
}

func TestControllerOverflowIsConservative(t *testing.T) {
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		w := saturatedAlways(class, tick)
		w.Overflow = true
		return w
	}}
	act := &fakeActuator{delay: sim.Microsecond}
	c := runController(t, testClasses(10, 10), src, act, 2*sim.Millisecond)
	if act.scales != 0 {
		t.Fatal("controller scaled out from an overflow-bucket series")
	}
	evs := c.Events()
	if len(evs) != 1 || evs[0].Kind != OverflowSkipped {
		t.Fatalf("events = %v, want exactly one overflow-skipped", kinds(evs))
	}
}

func TestControllerSLOBreachObserved(t *testing.T) {
	classes := testClasses(0, 0)
	classes[0].SLO.P99Target = 100 * sim.Microsecond
	src := &fakeSource{windows: func(class, tick int) TenantWindow {
		w := TenantWindow{Arrivals: uint64(tick) * 100, Admitted: uint64(tick) * 100}
		w.P99 = 250 * sim.Microsecond
		return w
	}}
	act := &fakeActuator{delay: sim.Microsecond}
	c := runController(t, classes, src, act, sim.Millisecond)
	var breaches int
	for _, e := range c.Events() {
		if e.Kind == SLOBreach {
			breaches++
		}
	}
	if breaches != 1 {
		t.Fatalf("SLO breaches logged %d times, want once", breaches)
	}
	if act.scales != 0 {
		t.Fatal("SLO breach alone must never fund a scale-out")
	}
}

// TestRegistrySourceOverflowConservative is the label-cardinality
// regression for the QoS reader: past MaxLabels the collapsed tenants'
// snapshots are flagged Overflow, distinct tenants stay unperturbed, and
// the controller refuses to act for collapsed tenants.
func TestRegistrySourceOverflowConservative(t *testing.T) {
	reg := metrics.NewRegistry()
	n := metrics.MaxLabels + 64
	names := make([]string, n)
	for i := range names {
		names[i] = fmt.Sprintf("t%04d", i)
	}
	src := NewRegistrySource(reg, names)

	for i := 0; i < n; i++ {
		s := src.Series(i)
		s.Arrivals.Add(100)
		s.Throttled.Add(90)
	}
	if !src.Distinct(0) || src.Distinct(n-1) {
		t.Fatalf("distinct flags wrong: first=%v last=%v", src.Distinct(0), src.Distinct(n-1))
	}
	// Tenant 0's series is its own: exactly what it wrote, regardless of
	// the overflow crowd.
	if w := src.Window(0); w.Overflow || w.Arrivals != 100 {
		t.Fatalf("distinct tenant perturbed: %+v", w)
	}
	// A collapsed tenant reads the shared overflow counter and says so.
	if w := src.Window(n - 1); !w.Overflow {
		t.Fatalf("collapsed tenant not flagged: %+v", w)
	}

	// End-to-end: a saturated-looking collapsed tenant must not be funded.
	eng := sim.NewEngine()
	act := &fakeActuator{eng: eng, delay: sim.Microsecond}
	classes := make([]Class, n)
	for i := range classes {
		classes[i] = Class{Name: names[i], ContractRate: 1000,
			SLO: SLO{Budget: Budget{Escrow: 10, StepCost: 1, SpendCap: 10}}}
	}
	c := NewController(eng, Config{Window: 100 * sim.Microsecond}, classes, src, act)
	pump := func() {
		for i := 0; i < n; i++ {
			s := src.Series(i)
			s.Arrivals.Add(100)
			s.Throttled.Add(90)
		}
	}
	var tickPump func()
	tickPump = func() { pump(); eng.Schedule(100*sim.Microsecond, tickPump) }
	eng.Schedule(100*sim.Microsecond-1, tickPump)
	eng.Run(sim.Time(0).Add(2 * sim.Millisecond))
	c.Stop()

	funded := map[int]bool{}
	for _, e := range c.Events() {
		if e.Kind == Funded {
			funded[e.Class] = true
		}
	}
	for i := metrics.MaxLabels; i < n; i++ {
		if funded[i] {
			t.Fatalf("collapsed tenant %d was funded", i)
		}
	}
	if len(funded) == 0 {
		t.Fatal("no distinct tenant funded — controller inert, test vacuous")
	}
}
