package qos

import "hyperloop/internal/sim"

// Bucket is the canonical virtual-time token bucket behind tenant burst
// credits: tokens accrue at rate per second of simulated time up to a burst
// cap, and one token admits one op. Two invariants hold under any call
// sequence, including adversarial (non-monotonic) timestamps:
//
//	0 <= Credits(now) <= Cap
//
// Time moving backwards — which a correct caller never does, but a buggy
// merge of per-group clocks could — is treated as zero elapsed time rather
// than accruing a negative credit.
type Bucket struct {
	rate   float64 // tokens per second of virtual time
	cap    float64 // burst ceiling
	tokens float64
	last   sim.Time
	spent  uint64 // lifetime tokens consumed
}

// NewBucket returns a bucket with the given refill rate (tokens/sec) and
// burst cap, born full at virtual time zero. Negative inputs clamp to zero.
func NewBucket(rate, burst float64) Bucket {
	if rate < 0 {
		rate = 0
	}
	if burst < 0 {
		burst = 0
	}
	return Bucket{rate: rate, cap: burst, tokens: burst}
}

// settle accrues credit for the time since the last settle, clamping both
// backwards time and the burst cap.
func (b *Bucket) settle(now sim.Time) {
	if now > b.last {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.cap {
			b.tokens = b.cap
		}
		b.last = now
	}
	// now <= b.last: clock went backwards (or stood still); accrue nothing
	// and keep the later watermark so a replayed timestamp cannot double-pay.
}

// Take spends one token if one whole token is available and reports whether
// the op is admitted.
func (b *Bucket) Take(now sim.Time) bool {
	b.settle(now)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	b.spent++
	return true
}

// Credits returns the whole tokens available at now without spending any.
func (b *Bucket) Credits(now sim.Time) float64 {
	b.settle(now)
	return b.tokens
}

// Spent returns the lifetime token spend.
func (b *Bucket) Spent() uint64 { return b.spent }

// Rate returns the current refill rate in tokens per second.
func (b *Bucket) Rate() float64 { return b.rate }

// Cap returns the burst ceiling.
func (b *Bucket) Cap() float64 { return b.cap }

// SetRate settles at now, then swaps the refill rate — the elastic-rate
// lever the QoS controller pulls after a funded scale-out. Accrued credit
// is kept; negative rates clamp to zero.
func (b *Bucket) SetRate(now sim.Time, rate float64) {
	b.settle(now)
	if rate < 0 {
		rate = 0
	}
	b.rate = rate
}
