package experiments

import (
	"fmt"
	"strings"

	"hyperloop/internal/cluster"
	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
)

// Instrumented metrics collection over the microbenchmark rig: one cell per
// system, each with a private registry sampled on the virtual clock, merged
// in input order. The dump is therefore bit-identical at any -parallel
// worker count, and because every hook only observes, the op latencies are
// identical to an uninstrumented run.

// sysLabel is the metric-label form of a System name ("hyperloop",
// "naive-event", ...).
func sysLabel(s System) string { return strings.ToLower(s.String()) }

// RunMicroMetrics drives p.Ops durable gWRITEs on one system with the full
// observability plane attached and returns the cell's registry.
func RunMicroMetrics(p MicroParams) (*metrics.Registry, error) {
	p.fill()
	rig := newMicroRig(p)
	defer rig.close()

	reg := metrics.NewRegistry()
	label := sysLabel(p.System)
	cluster.Instrument(reg, rig.cl, label)
	acked := reg.Counter("micro", "ops_acked", label)
	lat := reg.Histogram("micro", "gwrite_latency_ns", label)
	sampler := metrics.NewSampler(rig.eng, reg, 100*sim.Microsecond)

	start := rig.eng.Now()
	_, err := rig.runOps(p.Ops, p.Pipeline, 120*sim.Second, func(i int, done func(error)) {
		issued := rig.eng.Now()
		issueErr := rig.api.GWrite(0, p.MsgSize, p.Durable, func(opErr error) {
			if opErr == nil {
				acked.Inc()
				lat.Observe(rig.eng.Now().Sub(issued))
			}
			done(opErr)
		})
		if issueErr != nil {
			done(issueErr)
		}
	})
	sampler.Stop()
	reg.Sample(rig.eng.Now())
	reg.Gauge("micro", "run_seconds", label).Set(rig.eng.Now().Sub(start).Seconds())
	return reg, err
}

// MicroMetrics runs the HyperLoop and Naive-Event cells over the worker
// pool and merges their registries in input order.
func MicroMetrics(seed int64, ops int) (*metrics.Registry, error) {
	systems := []System{HyperLoop, NaiveEvent}
	cells, err := RunParallel(Parallelism(), len(systems), func(i int) (*metrics.Registry, error) {
		return RunMicroMetrics(MicroParams{
			System: systems[i], Ops: ops, TenantsPerCore: 10, Durable: true, Seed: seed,
		})
	})
	if err != nil {
		return nil, fmt.Errorf("micro metrics: %w", err)
	}
	merged := metrics.NewRegistry()
	for _, c := range cells {
		merged.Merge(c)
	}
	return merged, nil
}
