package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"hyperloop/internal/stats"
)

func TestRunParallelOrderAndErrors(t *testing.T) {
	// Results come back in input order regardless of worker count.
	for _, workers := range []int{1, 3, 16} {
		got, err := RunParallel(workers, 10, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}

	// Zero jobs is a no-op.
	if out, err := RunParallel(4, 0, func(i int) (int, error) { return 0, nil }); err != nil || out != nil {
		t.Fatalf("n=0: out=%v err=%v", out, err)
	}

	// The lowest-indexed failure wins — the same error a serial run hits
	// first — no matter which worker sees it.
	bad := func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, workers := range []int{1, 8} {
		_, err := RunParallel(workers, 10, bad)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("workers=%d: err = %v, want job 3's", workers, err)
		}
	}
}

func TestSetParallelism(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Fatalf("Parallelism() = %d after SetParallelism(3)", Parallelism())
	}
	SetParallelism(0)
	if Parallelism() < 1 {
		t.Fatalf("auto parallelism %d < 1", Parallelism())
	}
	SetParallelism(-5) // clamped to auto
	if Parallelism() < 1 {
		t.Fatalf("negative parallelism not clamped: %d", Parallelism())
	}
}

// TestParallelMatchesSerial is the determinism regression test: a Figure
// 8(a)-style sweep fanned out over a pool must produce rows byte-identical
// to the serial path for the same seeds. Every sweep point owns a private
// engine and RNG chain, so scheduling order across workers must not leak
// into results.
func TestParallelMatchesSerial(t *testing.T) {
	base := MicroParams{Ops: 300, TenantsPerCore: 2, Durable: true, Seed: 11}
	sizes := []int{128, 1024}
	systems := []System{HyperLoop, NaiveEvent}

	defer SetParallelism(0)
	SetParallelism(1)
	serial, err := LatencySweep("gwrite", sizes, systems, base)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	par, err := LatencySweep("gwrite", sizes, systems, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Fatalf("parallel sweep diverged from serial:\nserial: %+v\nparallel: %+v", serial, par)
	}
	// Byte-for-byte on the rendered form too (fmt sorts map keys).
	if s, p := fmt.Sprintf("%+v", serial), fmt.Sprintf("%+v", par); s != p {
		t.Fatalf("rendered rows differ:\nserial: %s\nparallel: %s", s, p)
	}

	// Same property for a parameter-list sweep.
	ps := []MotivationParams{
		{ReplicaSets: 9, OpsPerSet: 100, Records: 50, Seed: 11},
		{ReplicaSets: 12, OpsPerSet: 100, Records: 50, Seed: 11},
	}
	SetParallelism(1)
	mSerial, err := MotivationSweep(ps)
	if err != nil {
		t.Fatal(err)
	}
	SetParallelism(4)
	mPar, err := MotivationSweep(ps)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mSerial, mPar) {
		t.Fatalf("motivation sweep diverged:\nserial: %+v\nparallel: %+v", mSerial, mPar)
	}
}

// TestSeedReproducibleTables pins the -seed contract the cmd binaries rely
// on: two runs with the same seed render identical tables, byte for byte.
func TestSeedReproducibleTables(t *testing.T) {
	render := func() string {
		rows, err := LatencySweep("gwrite", []int{1024}, []System{HyperLoop, NaiveEvent},
			MicroParams{Ops: 250, TenantsPerCore: 2, Durable: true, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		tb := stats.NewTable("size", "HL-avg", "HL-p99", "Naive-avg", "Naive-p99")
		for _, r := range rows {
			hl, nv := r.ByName["HyperLoop"], r.ByName["Naive-Event"]
			tb.AddRow(fmt.Sprint(r.MsgSize),
				fmt.Sprint(hl.Mean), fmt.Sprint(hl.P99),
				fmt.Sprint(nv.Mean), fmt.Sprint(nv.P99))
		}
		return tb.CSV()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("same seed produced different tables:\n%s\nvs\n%s", a, b)
	}
}

// TestSweepErrorPropagation: a failing cell surfaces its error (not a
// panic, not a zero row) through the pool.
func TestSweepErrorPropagation(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(4)
	sentinel := errors.New("boom")
	_, err := RunParallel(Parallelism(), 5, func(i int) (int, error) {
		if i == 2 {
			return 0, sentinel
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if _, err := LatencySweep("nosuch", []int{128}, []System{HyperLoop}, MicroParams{}); err == nil {
		t.Fatal("unknown primitive accepted")
	}
}
