package experiments

import (
	"testing"

	"hyperloop/internal/sim"
)

// The load curve's headline claims, pinned at quick scale: past saturation
// the admission-on plane holds goodput within 90% of its peak, the
// admission-off baseline demonstrably degrades, and deeper WQE fusion never
// costs throughput while ringing fewer doorbells.
func TestLoadCurveHoldsGoodputPastSaturation(t *testing.T) {
	res := RunLoadCurve(LoadCurveParams{
		Systems:      []string{"hyperloop"},
		Mults:        []float64{1.0, 1.5},
		FusionDepths: []int{1, 4},
		Duration:     2 * sim.Millisecond,
		Seed:         1,
		Workers:      1,
	})
	if res.CapacityKops["hyperloop"] <= 0 {
		t.Fatal("no measured capacity")
	}

	var peakOn float64
	for _, pt := range res.Points {
		if pt.Admission && pt.GoodputKops > peakOn {
			peakOn = pt.GoodputKops
		}
	}
	for _, pt := range res.Points {
		if pt.Mult <= 1.0 {
			continue
		}
		if pt.Admission {
			if pt.GoodputKops < 0.9*peakOn {
				t.Fatalf("admission-on goodput %.1f at mult %.2f below 90%% of peak %.1f",
					pt.GoodputKops, pt.Mult, peakOn)
			}
		} else {
			if pt.GoodputKops > 0.9*peakOn {
				t.Fatalf("admission-off goodput %.1f at mult %.2f did not degrade (peak %.1f)",
					pt.GoodputKops, pt.Mult, peakOn)
			}
		}
	}

	if len(res.Fusion) != 2 {
		t.Fatalf("fusion sweep has %d points", len(res.Fusion))
	}
	shallow, deep := res.Fusion[0], res.Fusion[1]
	if deep.Doorbells >= shallow.Doorbells {
		t.Fatalf("fusion depth %d rang %d doorbells, depth %d rang %d — no coalescing win",
			deep.Depth, deep.Doorbells, shallow.Depth, shallow.Doorbells)
	}
	if deep.TputKops < shallow.TputKops {
		t.Fatalf("fusion cost throughput: %.1f at depth %d vs %.1f at depth %d",
			deep.TputKops, deep.Depth, shallow.TputKops, shallow.Depth)
	}
	if deep.FusedOps == 0 {
		t.Fatal("deep fusion point never fused")
	}
}
