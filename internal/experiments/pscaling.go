package experiments

import (
	"errors"
	"fmt"

	"hyperloop/internal/check"
	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/metrics"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
	"hyperloop/internal/wal"
	"hyperloop/internal/ycsb"
)

// Partitioned-scaling experiment: the same fixed-pool scaling workload as
// RunShardScaling, but executed on a sim.PartitionedEngine — shards are
// carved into groups of four, each group a full plane on its own partition,
// with a slice of the offered load forwarded cross-group over the
// inter-group link. The measured numbers (throughput, latency, per-shard
// p99, metrics dump) are bit-identical at every -engine-workers setting;
// only the wall clock changes. That invariant is what the CI determinism
// gate pins.

// PartitionedScalingParams selects one partitioned-scaling cell.
type PartitionedScalingParams struct {
	// Shards is the total shard count (default 16); groups of 4 shards are
	// carved from it, each on its own engine partition.
	Shards int
	// Workers is the engine worker count (0 = all cores, 1 = serial).
	Workers int
	Seed    int64
	// OpsPerShard, Pipeline, ValueSize mirror ShardScalingParams (defaults
	// 400 / 8 / 128).
	OpsPerShard int
	Pipeline    int
	ValueSize   int
	// CrossPct is the percentage of puts each group aims at keys homed on a
	// foreign group (default 10) — the cross-partition traffic that makes
	// the conservative scheme earn its keep.
	CrossPct int
	// Metrics attaches one registry per group (merged in group order by the
	// caller; observation-only).
	Metrics bool
}

func (p *PartitionedScalingParams) fill() {
	if p.Shards <= 0 {
		p.Shards = 16
	}
	if p.OpsPerShard <= 0 {
		p.OpsPerShard = 400
	}
	if p.Pipeline <= 0 {
		p.Pipeline = 8
	}
	if p.ValueSize <= 0 {
		p.ValueSize = 128
	}
	if p.CrossPct <= 0 {
		p.CrossPct = 10
	}
}

// groupsFor carves total shards into groups of 4 (falling back to one group
// when the count doesn't divide).
func groupsFor(shards int) (groups, perGroup int) {
	groups = shards / 4
	if groups < 1 {
		groups = 1
	}
	perGroup = shards / groups
	if groups*perGroup != shards {
		return 1, shards
	}
	return groups, perGroup
}

// PartitionedScalingResult is one partitioned-scaling cell.
type PartitionedScalingResult struct {
	Shards  int
	Groups  int
	Workers int
	Acked   int
	// CrossAcked counts puts that were forwarded to a foreign home group.
	CrossAcked  uint64
	Elapsed     sim.Duration
	TputKops    float64
	Lat         stats.Summary
	MaxShardP99 sim.Duration
	// Skew is the conservative-lookahead invariant verdict for the run.
	Skew check.Result
	// Regs are the per-group registries in group order (nil unless
	// Params.Metrics); merge them in this order for a bit-reproducible dump.
	Regs []*metrics.Registry
}

// RunPartitionedScaling runs one cell of the scaling workload on the
// partitioned engine.
func RunPartitionedScaling(p PartitionedScalingParams) PartitionedScalingResult {
	p.fill()
	groups, perGroup := groupsFor(p.Shards)
	hostsPerGroup := scalingHosts / groups
	var regs []*metrics.Registry
	if p.Metrics {
		regs = make([]*metrics.Registry, groups)
		for g := range regs {
			regs[g] = metrics.NewRegistry()
		}
	}
	pp := shard.NewPartitionedPlane(shard.PartitionedConfig{
		Groups:         groups,
		ShardsPerGroup: perGroup,
		HostsPerGroup:  hostsPerGroup,
		Replicas:       3,
		RegionSize:     scalingRegion,
		Group:          core.Config{Depth: 512},
		Seed:           p.Seed,
		Workers:        p.Workers,
		Metrics:        regs,
	})
	if err := pp.WaitOpen(sim.Time(sim.Second)); err != nil {
		panic(fmt.Sprintf("partitioned scaling: %v", err))
	}
	var samplers []*metrics.Sampler
	if regs != nil {
		for g := 0; g < groups; g++ {
			cluster.Instrument(regs[g], pp.Group(g).Cl, fmt.Sprintf("pg%d", g))
			samplers = append(samplers, metrics.NewSampler(pp.PE.Partition(g), regs[g], sim.Millisecond))
		}
	}

	// Per-(group, local shard) keysets: 64 keys that hash home to the group
	// AND route to the shard inside the group's plane — the same bounded
	// footprint as the serial cell. Cross keysets hold keys homed on foreign
	// groups; the issuing group's RNG picks from them read-only.
	const keysetSize = 64
	gens := make([][]*ycsb.Generator, groups)
	vals := make([][]*ycsb.ValueGenerator, groups)
	keyset := make([][][]string, groups)
	crossKeys := make([][]string, groups)
	rngs := make([]*sim.Rand, groups)
	for g := 0; g < groups; g++ {
		gens[g] = make([]*ycsb.Generator, perGroup)
		vals[g] = make([]*ycsb.ValueGenerator, perGroup)
		keyset[g] = make([][]string, perGroup)
		rngs[g] = sim.NewRand(p.Seed + 77*int64(g) + 5)
		for s := 0; s < perGroup; s++ {
			gens[g][s] = ycsb.NewGenerator(
				ycsb.Workload{Name: "update", Update: 100, Dist: ycsb.Uniform},
				100_000, p.Seed+int64(g)*1009+int64(s)*101)
			vals[g][s] = ycsb.NewValueGenerator(p.ValueSize, p.Seed+int64(g)*1013+int64(s)*103)
			for i := int64(0); len(keyset[g][s]) < keysetSize; i++ {
				k := fmt.Sprintf("g%d/s%d/%s", g, s, ycsb.KeyName(i))
				if pp.HomeGroup(k) == g && pp.Group(g).Map.Route(k) == s {
					keyset[g][s] = append(keyset[g][s], k)
				}
			}
		}
		if groups > 1 {
			for i := 0; len(crossKeys[g]) < keysetSize; i++ {
				k := fmt.Sprintf("x%d/%05d", g, i)
				if pp.HomeGroup(k) != g {
					crossKeys[g] = append(crossKeys[g], k)
				}
			}
		}
	}

	// Per-group state, each slot touched only by its own partition.
	groupTarget := p.OpsPerShard * perGroup
	acked := make([]int, groups)
	crossAcked := make([]uint64, groups)
	hists := make([]*stats.Histogram, groups)
	shardHists := make([][]*stats.Histogram, groups)
	finishAt := make([]sim.Time, groups)
	for g := range hists {
		hists[g] = stats.NewHistogram()
		shardHists[g] = make([]*stats.Histogram, perGroup)
		for s := range shardHists[g] {
			shardHists[g][s] = stats.NewHistogram()
		}
	}

	start := pp.PE.Partition(0).Now()
	for g := 0; g < groups; g++ {
		g := g
		eng := pp.PE.Partition(g)
		var issue func(s int)
		var submit func(s int, k string, v []byte, cross bool, issuedAt sim.Time)
		submit = func(s int, k string, v []byte, cross bool, issuedAt sim.Time) {
			pp.Put(g, k, v, func(err error) {
				switch {
				case err == nil:
				case errors.Is(err, wal.ErrLogFull):
					// Ring backpressure (possibly at the foreign home group,
					// transported back in the ack): retry after the same pause
					// as the serial cell; the queueing time stays inside the
					// op's latency sample.
					eng.Schedule(2*sim.Microsecond, func() { submit(s, k, v, cross, issuedAt) })
					return
				default:
					panic(fmt.Sprintf("partitioned scaling: put: %v", err))
				}
				lat := eng.Now().Sub(issuedAt)
				hists[g].Record(lat)
				if cross {
					crossAcked[g]++
				} else {
					shardHists[g][s].Record(lat)
				}
				acked[g]++
				if acked[g] == groupTarget {
					finishAt[g] = eng.Now()
				}
				issue(s)
			})
		}
		issue = func(s int) {
			if acked[g] >= groupTarget {
				return
			}
			if crossKeys[g] != nil && rngs[g].Intn(100) < p.CrossPct {
				k := crossKeys[g][rngs[g].Intn(len(crossKeys[g]))]
				submit(s, k, vals[g][s].Next(0), true, eng.Now())
				return
			}
			op := gens[g][s].Next()
			k := keyset[g][s][int(op.Key)%keysetSize]
			submit(s, k, vals[g][s].Next(0), false, eng.Now())
		}
		eng.Schedule(0, func() {
			for s := 0; s < perGroup; s++ {
				for i := 0; i < p.Pipeline; i++ {
					issue(s)
				}
			}
		})
	}

	deadline := start
	limit := start.Add(60 * sim.Second)
	for {
		deadline = deadline.Add(500 * sim.Microsecond)
		pp.PE.Run(deadline)
		done := true
		for g := range acked {
			done = done && acked[g] >= groupTarget
		}
		if done {
			break
		}
		if deadline >= limit {
			panic(fmt.Sprintf("partitioned scaling: stalled at %v/%d per group", acked, groupTarget))
		}
	}
	for _, s := range samplers {
		s.Stop()
	}
	if regs != nil {
		for g := range regs {
			regs[g].Sample(pp.PE.Partition(g).Now())
		}
	}
	skew := check.PartitionSkew(pp.PE)
	pp.Close()

	// The cell's elapsed time is the slowest group's finish; per-group
	// histograms merge in group order so the summary is order-independent of
	// worker scheduling.
	var end sim.Time
	total := 0
	var cross uint64
	agg := stats.NewHistogram()
	res := PartitionedScalingResult{
		Shards: p.Shards, Groups: groups, Workers: p.Workers, Skew: skew, Regs: regs,
	}
	for g := 0; g < groups; g++ {
		if finishAt[g] > end {
			end = finishAt[g]
		}
		total += acked[g]
		cross += crossAcked[g]
		agg.Merge(hists[g])
		for _, h := range shardHists[g] {
			if p99 := h.P99(); p99 > res.MaxShardP99 {
				res.MaxShardP99 = p99
			}
		}
	}
	res.Acked = total
	res.CrossAcked = cross
	res.Elapsed = end.Sub(start)
	res.TputKops = float64(total) / res.Elapsed.Seconds() / 1e3
	res.Lat = agg.Summarize()
	return res
}

// MergedRegistry merges the per-group registries in group order into one
// dump — byte-identical at any worker count.
func (r PartitionedScalingResult) MergedRegistry() *metrics.Registry {
	merged := metrics.NewRegistry()
	for _, reg := range r.Regs {
		merged.Merge(reg)
	}
	return merged
}
