package experiments

import (
	"reflect"
	"testing"
)

// Every seeded lock-contention scenario must pass all invariants: mutual
// exclusion through the NIC stall, full completion, and a free lock word.
func TestLockContentionMatrixPasses(t *testing.T) {
	for _, v := range LockContentionMatrix(1, 3) {
		if !v.Pass() {
			for _, c := range v.Checks {
				t.Errorf("%v: %v", v.Spec, c)
			}
		}
		if v.MaxHeld != 1 {
			t.Errorf("%v: occupancy %d", v.Spec, v.MaxHeld)
		}
		if v.Retries == 0 {
			t.Errorf("%v: contention produced no retries", v.Spec)
		}
	}
}

// The scenario is pure virtual time: the same seed must reproduce the
// verdict exactly, including the fault timeline.
func TestLockContentionDeterministic(t *testing.T) {
	a := RunLockContention(LockContentionParams{Seed: 7})
	b := RunLockContention(LockContentionParams{Seed: 7})
	a.Metrics, b.Metrics = nil, nil // registries hold function-valued gauges
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("repeat runs differ:\n%+v\n%+v", a, b)
	}
}
