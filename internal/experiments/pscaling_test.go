package experiments

import (
	"bytes"
	"fmt"
	"testing"
)

// TestPartitionedScalingDeterministicAcrossWorkers is the tentpole gate in
// miniature: the seeded 16-shard cell produces identical measured results —
// and a byte-identical merged metrics dump — at 1, 2, and 4 engine workers.
func TestPartitionedScalingDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cell")
	}
	run := func(workers int) (string, []byte) {
		r := RunPartitionedScaling(PartitionedScalingParams{
			Shards: 16, Workers: workers, Seed: 3, OpsPerShard: 60, Metrics: true,
		})
		if !r.Skew.Pass() {
			t.Fatalf("workers=%d: %v", workers, r.Skew.Err)
		}
		if r.CrossAcked == 0 {
			t.Fatalf("workers=%d: no cross-group traffic exercised", workers)
		}
		dump, err := r.MergedRegistry().ExportJSON()
		if err != nil {
			t.Fatalf("workers=%d: export: %v", workers, err)
		}
		sum := fmt.Sprintf("shards=%d groups=%d acked=%d cross=%d elapsed=%v lat=%v maxShardP99=%v",
			r.Shards, r.Groups, r.Acked, r.CrossAcked, r.Elapsed, r.Lat, r.MaxShardP99)
		return sum, dump
	}
	refSum, refDump := run(1)
	for _, w := range []int{2, 4} {
		sum, dump := run(w)
		if sum != refSum {
			t.Fatalf("workers=%d results diverged:\n  w1: %s\n  w%d: %s", w, refSum, w, sum)
		}
		if !bytes.Equal(dump, refDump) {
			t.Fatalf("workers=%d metrics dump not byte-identical to serial", w)
		}
	}
}

// TestShardScalingEngineWorkersAxis: the EngineWorkers axis on the classic
// params dispatches to the partitioned cell and stays deterministic.
func TestShardScalingEngineWorkersAxis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second cell")
	}
	a := RunShardScaling(ShardScalingParams{Shards: 8, Seed: 2, OpsPerShard: 40, EngineWorkers: 1})
	b := RunShardScaling(ShardScalingParams{Shards: 8, Seed: 2, OpsPerShard: 40, EngineWorkers: 2})
	if a != b {
		t.Fatalf("EngineWorkers 1 vs 2 diverged:\n%+v\n%+v", a, b)
	}
	// Closed-loop strands still in flight at the finish line keep acking, so
	// the total can legitimately overshoot the target — but never undershoot.
	if a.Acked < 8*40 {
		t.Fatalf("acked = %d, want >= %d", a.Acked, 8*40)
	}
}

func TestGroupsFor(t *testing.T) {
	cases := []struct{ shards, groups, per int }{
		{16, 4, 4}, {8, 2, 4}, {4, 1, 4}, {2, 1, 2}, {1, 1, 1}, {12, 3, 4}, {10, 2, 5},
	}
	for _, c := range cases {
		g, per := groupsFor(c.shards)
		if g != c.groups || per != c.per {
			t.Fatalf("groupsFor(%d) = (%d,%d), want (%d,%d)", c.shards, g, per, c.groups, c.per)
		}
	}
}
