package experiments

import (
	"fmt"

	"hyperloop/internal/load"
	"hyperloop/internal/sim"
)

// Load-curve experiment: the open-loop serving plane driven through and past
// saturation. For each system we first probe the saturation point (admission
// on, offered load far beyond capacity — the admitted-op completion rate IS
// the capacity), then sweep offered load across multiples of it with the
// admission controller on and off. The curve shows the paper's serving-plane
// story: with a bounded queue in front of each group leader, goodput holds
// at capacity past the knee while the uncontrolled baseline's hidden queue
// pushes open-loop p99.9 out by orders of magnitude.

// LoadCurveParams selects one load-curve sweep.
type LoadCurveParams struct {
	// Systems to sweep (default hyperloop, naive).
	Systems []string
	// Mults are the offered-load multiples of measured saturation swept per
	// system (default 0.5, 0.75, 1.0, 1.25, 1.5).
	Mults []float64
	// FusionDepths is the WQE-chain fusion sweep run at saturation on the
	// HyperLoop arm (default 1, 2, 4, 8; nil-able via Quick).
	FusionDepths []int
	// Clients is the modeled connection-id space (default 1<<20 — the
	// million-client population is the normal case).
	Clients int
	// Duration is the arrival horizon per point (default 5ms; Quick 2ms).
	Duration sim.Duration
	// Arrival is the arrival process for curve points (default "poisson").
	Arrival string
	Seed    int64
	// Workers is the engine worker count inside each point's partitioned run.
	Workers int
	// Parallel runs curve points concurrently (wall-clock only; each point
	// owns its engines).
	Parallel int
	// Quick shrinks the sweep for CI: 3 mults, 2 fusion depths.
	Quick bool
}

func (p *LoadCurveParams) fill() {
	if len(p.Systems) == 0 {
		p.Systems = []string{"hyperloop", "naive"}
	}
	if len(p.Mults) == 0 {
		if p.Quick {
			p.Mults = []float64{0.5, 1.0, 1.5}
		} else {
			p.Mults = []float64{0.5, 0.75, 1.0, 1.25, 1.5}
		}
	}
	if len(p.FusionDepths) == 0 {
		if p.Quick {
			p.FusionDepths = []int{1, 4}
		} else {
			p.FusionDepths = []int{1, 2, 4, 8}
		}
	}
	if p.Clients <= 0 {
		p.Clients = 1 << 20
	}
	if p.Duration <= 0 {
		if p.Quick {
			p.Duration = 2 * sim.Millisecond
		} else {
			p.Duration = 5 * sim.Millisecond
		}
	}
	if p.Arrival == "" {
		p.Arrival = "poisson"
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Parallel <= 0 {
		p.Parallel = 1
	}
}

// curveSLO is the open-loop latency bound an op must meet to count toward
// goodput, sized so a full bounded queue at measured capacity still clears.
const curveSLO = 500 * sim.Microsecond

// curveAdmission is the controller setting every curve point shares: a
// shallow bounded queue (sojourn under the SLO at capacity), a modest
// inflight window, and batch dispatch so same-instant runs hit WQE fusion.
var curveAdmission = load.AdmissionConfig{
	QueueDepth:    8,
	MaxInflight:   16,
	DispatchBatch: 8,
	DispatchEvery: 2 * sim.Microsecond,
}

// probeOffered is the saturation probe's offered load, far above the
// serving capacity any configuration here can reach.
const probeOffered = 2_000_000.0

// LoadPoint is one (system, admission, offered-load) cell of the curve.
type LoadPoint struct {
	System    string
	Admission bool
	// Mult is the offered-load multiple of the system's measured saturation
	// (0 for the probe itself).
	Mult float64
	load.Result
}

// FusionPoint is one fusion-depth cell, run at saturation on HyperLoop.
type FusionPoint struct {
	Depth int
	load.Result
}

// LoadCurveResult is the full sweep.
type LoadCurveResult struct {
	// CapacityKops is each system's measured saturation throughput.
	CapacityKops map[string]float64
	Points       []LoadPoint
	Fusion       []FusionPoint
}

func (p LoadCurveParams) config(system string, offered float64, admissionOn bool) load.Config {
	cfg := load.Config{
		System:         system,
		Groups:         2,
		HostsPerGroup:  3,
		ShardsPerGroup: 1,
		Replicas:       3,
		RegionSize:     1 << 18,
		Workers:        p.Workers,
		Seed:           p.Seed,
		Clients:        p.Clients,
		Arrival:        p.Arrival,
		OfferedLoad:    offered,
		Duration:       p.Duration,
		SLO:            curveSLO,
		Admission:      curveAdmission,
	}
	cfg.Admission.Enabled = admissionOn
	if system == "hyperloop" {
		cfg.FusionDepth = 4
		cfg.DoorbellCost = 200 * sim.Nanosecond
	}
	return cfg
}

// Saturate measures one system's serving capacity: admission on, offered
// load far past any reachable throughput, capacity = admitted completions
// over the horizon.
func (p LoadCurveParams) Saturate(system string) load.Result {
	p.fill()
	return load.Run(p.config(system, probeOffered, true))
}

// RunLoadCurve measures saturation per system and sweeps offered load across
// Mults of it with admission on and off, plus the fusion-depth sweep at
// saturation. Deterministic for a given seed at any Workers/Parallel count.
func RunLoadCurve(p LoadCurveParams) LoadCurveResult {
	p.fill()
	res := LoadCurveResult{CapacityKops: make(map[string]float64)}

	// Phase 1: saturation probes (parallel across systems).
	caps, err := RunParallel(p.Parallel, len(p.Systems), func(i int) (float64, error) {
		return p.Saturate(p.Systems[i]).TputKops, nil
	})
	if err != nil {
		panic(fmt.Sprintf("load curve: probe: %v", err))
	}
	for i, sys := range p.Systems {
		res.CapacityKops[sys] = caps[i]
	}

	// Phase 2: the curve grid — every (system, admission, mult) cell.
	type cell struct {
		sys  string
		adm  bool
		mult float64
	}
	var cells []cell
	for _, sys := range p.Systems {
		for _, adm := range []bool{true, false} {
			for _, m := range p.Mults {
				cells = append(cells, cell{sys, adm, m})
			}
		}
	}
	points, err := RunParallel(p.Parallel, len(cells), func(i int) (LoadPoint, error) {
		c := cells[i]
		offered := c.mult * res.CapacityKops[c.sys] * 1e3
		r := load.Run(p.config(c.sys, offered, c.adm))
		if err := r.CheckAccounting(); err != nil {
			return LoadPoint{}, err
		}
		return LoadPoint{System: c.sys, Admission: c.adm, Mult: c.mult, Result: r}, nil
	})
	if err != nil {
		panic(fmt.Sprintf("load curve: %v", err))
	}
	res.Points = points

	// Phase 3: fusion-depth sweep at saturation (HyperLoop only).
	for _, sys := range p.Systems {
		if sys != "hyperloop" {
			continue
		}
		offered := res.CapacityKops[sys] * 1e3
		fusion, ferr := RunParallel(p.Parallel, len(p.FusionDepths), func(i int) (FusionPoint, error) {
			// Coalescing needs a dispatch window spanning several arrivals:
			// hold the queue for 50µs (a tenth of the SLO), release it as one
			// same-instant batch, and let WQE-chain fusion turn the batch
			// into FusionDepth-op chains — one doorbell per chain instead of
			// one per op. Bursty b-model arrivals fill the window faster.
			cfg := p.config(sys, offered, true)
			cfg.Arrival = "bmodel"
			cfg.Admission.DispatchEvery = 50 * sim.Microsecond
			cfg.FusionDepth = p.FusionDepths[i]
			r := load.Run(cfg)
			if err := r.CheckAccounting(); err != nil {
				return FusionPoint{}, err
			}
			return FusionPoint{Depth: p.FusionDepths[i], Result: r}, nil
		})
		if ferr != nil {
			panic(fmt.Sprintf("load curve: fusion sweep: %v", ferr))
		}
		res.Fusion = fusion
	}
	return res
}

// LoadMetrics runs one instrumented admission-on point at saturation-probe
// load and returns its merged registry — the byte-reproducible dump the CI
// determinism gate diffs across engine worker counts.
func LoadMetrics(seed int64, workers int) ([]byte, error) {
	p := LoadCurveParams{Seed: seed, Workers: workers, Quick: true}
	p.fill()
	cfg := p.config("hyperloop", probeOffered, true)
	cfg.Metrics = true
	cfg.WithSpans = true
	r := load.Run(cfg)
	if err := r.CheckAccounting(); err != nil {
		return nil, err
	}
	return r.MergedRegistry().ExportJSON()
}
