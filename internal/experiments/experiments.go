// Package experiments regenerates every table and figure in the paper's
// evaluation (§2.2 motivation and §6): the same workloads, parameter
// sweeps, baselines, and reported statistics, over the simulated cluster.
// Each experiment is a plain function returning rows, shared by the cmd/
// binaries, the root benchmark suite, and EXPERIMENTS.md.
package experiments

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/cpusched"
	"hyperloop/internal/naive"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

// System selects a datapath implementation.
type System int

// Systems under comparison.
const (
	HyperLoop    System = iota // NIC-offloaded group primitives
	NaiveEvent                 // replica CPUs, event-driven completion handling
	NaivePolling               // replica CPUs, co-located busy-pollers
	NaivePinned                // replica CPUs, pollers on dedicated cores
)

func (s System) String() string {
	switch s {
	case HyperLoop:
		return "HyperLoop"
	case NaiveEvent:
		return "Naive-Event"
	case NaivePolling:
		return "Naive-Polling"
	case NaivePinned:
		return "Naive-Pinned"
	default:
		return fmt.Sprintf("system(%d)", int(s))
	}
}

// groupAPI is the uniform primitive surface over both implementations.
type groupAPI interface {
	GWrite(off, size int, durable bool, done func(error)) error
	GMemcpy(dst, src, size int, durable bool, done func(error)) error
	GCAS(off int, old, new uint64, done func(error)) error
	Failed() error
	Close()
}

type coreAPI struct{ g *core.Group }

func (a coreAPI) GWrite(off, size int, durable bool, done func(error)) error {
	return a.g.GWrite(off, size, durable, func(r core.Result) { done(r.Err) })
}
func (a coreAPI) GMemcpy(dst, src, size int, durable bool, done func(error)) error {
	return a.g.GMemcpy(dst, src, size, durable, func(r core.Result) { done(r.Err) })
}
func (a coreAPI) GCAS(off int, old, new uint64, done func(error)) error {
	return a.g.GCAS(off, old, new, core.AllReplicas(a.g.GroupSize()), func(r core.Result) { done(r.Err) })
}
func (a coreAPI) Failed() error { return a.g.Failed() }
func (a coreAPI) Close()        { a.g.Close() }

type naiveAPI struct {
	g *naive.Group
	n int
}

func (a naiveAPI) GWrite(off, size int, durable bool, done func(error)) error {
	return a.g.GWrite(off, size, durable, func(r naive.Result) { done(r.Err) })
}
func (a naiveAPI) GMemcpy(dst, src, size int, durable bool, done func(error)) error {
	return a.g.GMemcpy(dst, src, size, durable, func(r naive.Result) { done(r.Err) })
}
func (a naiveAPI) GCAS(off int, old, new uint64, done func(error)) error {
	return a.g.GCAS(off, old, new, ^uint64(0), func(r naive.Result) { done(r.Err) })
}
func (a naiveAPI) Failed() error { return a.g.Failed() }
func (a naiveAPI) Close()        { a.g.Close() }

// MicroParams configures a microbenchmark run (§6.1's setup: group of
// replicas, stress-ng style co-located CPU load, fixed message size).
type MicroParams struct {
	System    System
	GroupSize int // replicas in the chain (default 3)
	MsgSize   int // bytes per op (default 1024)
	Ops       int // measured operations (default 10000, as in the paper)
	Pipeline  int // concurrent ops (default 1: closed loop, latency mode)
	// TenantsPerCore is the co-located CPU-hog multiplier (default 10,
	// the paper's 10:1 process-to-core ratio; 0 disables).
	TenantsPerCore int
	Durable        bool // interleave gFLUSH
	// NoWakeupBonus disables the CFS sleeper-fairness model on every host
	// (pure FIFO behind tenants) — ablation knob.
	NoWakeupBonus bool
	Seed          int64
}

func (p *MicroParams) fill() {
	if p.GroupSize <= 0 {
		p.GroupSize = 3
	}
	if p.MsgSize <= 0 {
		p.MsgSize = 1024
	}
	if p.Ops <= 0 {
		p.Ops = 10000
	}
	if p.Pipeline <= 0 {
		p.Pipeline = 1
	}
	if p.TenantsPerCore < 0 {
		p.TenantsPerCore = 0
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
}

// microRig is a cluster plus a group of the selected system with background
// load applied to every replica host.
type microRig struct {
	eng   *sim.Engine
	cl    *cluster.Cluster
	api   groupAPI
	stops []func()
}

func newMicroRig(p MicroParams) *microRig {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     p.GroupSize + 1,
		StoreSize: 16 << 20,
		Host:      cpusched.Config{NoWakeupBonus: p.NoWakeupBonus, Seed: p.Seed},
		Seed:      p.Seed,
	})
	r := &microRig{eng: eng, cl: cl}
	// Co-located tenant load on replica hosts (the client is the dedicated
	// measurement machine, as in §6.1).
	if p.TenantsPerCore > 0 {
		for _, rep := range cl.Replicas() {
			stop := cpusched.AddTenants(eng, rep.Host, p.TenantsPerCore*rep.Host.Cores(),
				cpusched.TenantConfig{AlwaysOn: true}, cl.Rand.Fork())
			r.stops = append(r.stops, stop)
		}
	}
	switch p.System {
	case HyperLoop:
		r.api = coreAPI{g: core.New(cl, core.Config{Depth: 2048, MaxInflight: 256})}
	case NaiveEvent:
		r.api = naiveAPI{g: naive.New(cl, naive.Config{Mode: naive.Event, MaxInflight: 256}), n: p.GroupSize}
	case NaivePolling:
		r.api = naiveAPI{g: naive.New(cl, naive.Config{Mode: naive.Polling, MaxInflight: 256}), n: p.GroupSize}
	case NaivePinned:
		r.api = naiveAPI{g: naive.New(cl, naive.Config{Mode: naive.Polling, PinCore: true, MaxInflight: 256}), n: p.GroupSize}
	}
	return r
}

func (r *microRig) close() {
	r.api.Close()
	for _, s := range r.stops {
		s()
	}
}

// runOps drives `ops` operations with `pipeline` in flight, recording
// per-op latency; issue builds op i and must invoke the callback exactly
// once on completion.
func (r *microRig) runOps(ops, pipeline int, deadline sim.Duration,
	issue func(i int, done func(error))) (*stats.Histogram, error) {
	hist := stats.NewHistogram()
	completed := 0
	launched := 0
	var firstErr error
	var launch func()
	launch = func() {
		if launched >= ops || firstErr != nil {
			return
		}
		i := launched
		launched++
		start := r.eng.Now()
		issue(i, func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
				return
			}
			hist.Record(r.eng.Now().Sub(start))
			completed++
			launch()
		})
	}
	for k := 0; k < pipeline && k < ops; k++ {
		launch()
	}
	r.eng.RunUntil(func() bool {
		return completed >= ops || firstErr != nil || r.api.Failed() != nil
	}, r.eng.Now().Add(deadline))
	if r.api.Failed() != nil {
		return hist, r.api.Failed()
	}
	if firstErr != nil {
		return hist, firstErr
	}
	if completed < ops {
		return hist, fmt.Errorf("experiments: only %d/%d ops completed by deadline", completed, ops)
	}
	return hist, nil
}
