package experiments

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/locks"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
	"hyperloop/internal/stats"
)

// Lock-contention stage breakdown: where does a contended writer
// acquisition spend its time? The NIC-resident gATOMIC_LOOP program retries
// entirely inside the client NIC (CondRearm re-arms the CAS chain off a
// timer CQ), so its breakdown has a structurally-zero host-cpu stage and
// zero per-retry doorbells; the host-bounced arm (HostOnly) pays a host
// wake-up plus a fresh posting for every retry. The pre-posted loop
// template also amortizes chain setup: its slots are patched in place, so
// steady-state acquisitions ring one doorbell regardless of retry count.

const lockStageBase = 900 << 10

// LockStageResult is one arm's decomposed contended-acquire latency.
type LockStageResult struct {
	Arm      string // "nic-program" or "host-bounced"
	Ops      int
	EndToEnd sim.Duration // total across ops; Stages tile this exactly
	Stages   []span.Stage
	// Attempts counts CAS attempts across all ops (retries + the wins).
	Attempts uint64
	// Doorbells counts client MMIO rings during the measured acquisitions —
	// the per-op chain-setup cost the loop template amortizes away.
	Doorbells uint64
	// ProgBranches counts NIC-side control transfers (retry re-arms and
	// loop exits) taken on the client NIC during the acquisitions.
	ProgBranches uint64
}

// Stage returns the summed duration of the named stage (0 if absent).
func (r LockStageResult) Stage(name string) sim.Duration {
	for _, s := range r.Stages {
		if s.Name == name {
			return s.Dur
		}
	}
	return 0
}

// Share returns the named stage's fraction of end-to-end time.
func (r LockStageResult) Share(name string) float64 {
	if r.EndToEnd <= 0 {
		return 0
	}
	return float64(r.Stage(name)) / float64(r.EndToEnd)
}

// classifyLockStage delegates to classifyStage but folds "client-post"
// into "host-cpu": the measurement window opens at issue (so the initial
// posting classifies as client-issue via the prev==nil rule), which makes
// every later client exec in a contended acquisition a host wake-up —
// posting a fresh CAS after a backoff sleep. That is exactly the work the
// NIC-resident loop program eliminates, so it belongs in the host-cpu
// column the comparison is about.
func classifyLockStage(prev, next *span.RoleEvent) string {
	s := classifyStage(prev, next)
	if s == "client-post" {
		return "host-cpu"
	}
	return s
}

// RunLockStageBreakdown measures contended writer acquisitions on one arm.
// Contention is injected without a second lock manager (which would pollute
// the NIC trace): a foreign holder word is installed by direct host stores
// on every replica and released the same way mid-spin, so every traced NIC
// event belongs to the measured acquirer.
func RunLockStageBreakdown(hostOnly bool, ops int) LockStageResult {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: 4, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := core.New(cl, core.Config{Depth: 256})
	defer g.Close()
	m := locks.New(g, eng, lockStageBase, locks.Config{HostOnly: hostOnly})

	// Only the client NIC is traced: the comparison is about where the
	// acquiring HOST burns time, and replica-side events would smear
	// background ring top-ups into the host-cpu column. Everything between
	// a client tx and the returning ack classifies as network (wire plus
	// remote forwarding), which is exactly the resolution the table needs.
	bridge := span.NewBridge(0)
	cl.Client().NIC.SetTracer(bridge.Tracer("client"))

	arm := "nic-program"
	if hostOnly {
		arm = "host-bounced"
	}
	res := LockStageResult{Arm: arm, Ops: ops}

	var hold [8]byte
	holder := locks.Word(9, 0)
	for i := range hold {
		hold[i] = byte(holder >> (8 * uint(i)))
	}
	installHolder := func() {
		for ri := 0; ri < 3; ri++ {
			g.Replica(ri).StoreWrite(lockStageBase, hold[:])
		}
	}
	releaseHolder := func() {
		var zero [8]byte
		for ri := 0; ri < 3; ri++ {
			g.Replica(ri).StoreWrite(lockStageBase, zero[:])
		}
	}

	const holdFor = 40 * sim.Microsecond
	for i := 0; i < ops; i++ {
		installHolder()
		eng.Schedule(holdFor, releaseHolder)

		bridge.Reset()
		before := cl.Client().NIC.Counters()
		start := eng.Now()
		acquired := false
		m.WrLock(0, 2, func(err error) {
			if err != nil {
				panic(fmt.Sprintf("lock stages (%s): %v", arm, err))
			}
			acquired = true
		})
		if !eng.RunUntil(func() bool { return acquired }, eng.Now().Add(10*sim.Second)) {
			panic(fmt.Sprintf("lock stages (%s): acquisition stalled", arm))
		}
		end := eng.Now()
		after := cl.Client().NIC.Counters()
		res.EndToEnd += end.Sub(start)
		res.Stages = span.MergeStages(res.Stages,
			span.Decompose(bridge.Events(), start, end, classifyLockStage))
		res.Doorbells += after.Doorbells - before.Doorbells
		res.ProgBranches += after.ProgBranches - before.ProgBranches

		released := false
		m.WrUnlock(0, 2, func(err error) { released = true })
		if !eng.RunUntil(func() bool { return released }, eng.Now().Add(sim.Second)) {
			panic(fmt.Sprintf("lock stages (%s): release stalled", arm))
		}
	}
	_, retries, _ := m.Stats()
	res.Attempts = uint64(ops) + retries
	return res
}

// LockStageBreakdown runs both arms over the worker pool; results come back
// in input order (NIC program first).
func LockStageBreakdown(ops int) []LockStageResult {
	arms := []bool{false, true}
	out, _ := RunParallel(Parallelism(), len(arms), func(i int) (LockStageResult, error) {
		return RunLockStageBreakdown(arms[i], ops), nil
	})
	return out
}

// LockStageTable renders both arms as mean-per-op stage durations plus the
// offload counters that prove the host is out of the retry loop.
func LockStageTable(rows []LockStageResult) *stats.Table {
	header := []string{"arm", "end-to-end", "attempts/op", "doorbells/op", "branches/op"}
	header = append(header, StageNames...)
	tb := stats.NewTable(header...)
	for _, r := range rows {
		ops := r.Ops
		if ops <= 0 {
			ops = 1
		}
		cells := []string{
			r.Arm,
			fmt.Sprintf("%v", r.EndToEnd/sim.Duration(ops)),
			fmt.Sprintf("%.1f", float64(r.Attempts)/float64(ops)),
			fmt.Sprintf("%.1f", float64(r.Doorbells)/float64(ops)),
			fmt.Sprintf("%.1f", float64(r.ProgBranches)/float64(ops)),
		}
		for _, name := range StageNames {
			cells = append(cells, fmt.Sprintf("%v (%.1f%%)",
				r.Stage(name)/sim.Duration(ops), 100*r.Share(name)))
		}
		tb.AddRow(cells...)
	}
	return tb
}
