package experiments

import (
	"errors"
	"fmt"

	"hyperloop/internal/chain"
	"hyperloop/internal/check"
	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/faults"
	"hyperloop/internal/locks"
	"hyperloop/internal/metrics"
	"hyperloop/internal/objstore"
	"hyperloop/internal/sim"
	"hyperloop/internal/span"
	"hyperloop/internal/stream"
	"hyperloop/internal/txn"
	"hyperloop/internal/wal"
)

// FaultMatrix: every fault-scenario class from the faults package, run
// against a full replicated-transaction stack (cluster + chain manager +
// WAL + group locks + txn coordinator), with the check package's invariant
// checkers delivering the verdict. Each (class, seed) cell is one
// self-contained deterministic simulation, fanned out over RunParallel like
// every other sweep; results are assembled in input order so the verdict
// table is bit-for-bit reproducible for a given base seed.

// Store layout for fault scenarios (well under the 1 MiB store):
// lock table at 0, object slots at 4 KiB, WAL at 64 KiB.
const (
	fmMembers     = 3
	fmLockBase    = 0
	fmLockStripes = 64
	fmObjBase     = 4096
	fmObjSlots    = 2048
	fmLogBase     = 64 << 10
	fmLogSize     = 192 << 10
	fmStoreSize   = 1 << 20
)

// Workload shape: a closed loop of small multi-slot transactions that runs
// through the fault and keeps going after repair.
const (
	fmPipeline  = 4
	fmThinkMean = 400 * sim.Microsecond
	fmStopAt    = 70 * sim.Millisecond
	fmDeadline  = 400 * sim.Millisecond
)

// FaultParams selects one cell of the fault matrix.
type FaultParams struct {
	Class faults.Class
	Seed  int64
}

// FaultVerdict is the outcome of one scenario run.
type FaultVerdict struct {
	Params    FaultParams
	Spec      faults.Spec
	Timeline  []faults.Event
	Committed int          // transactions whose commit acked
	Errored   int          // transactions whose commit failed (indeterminate)
	Failovers uint64       // chain failovers observed
	DetectIn  sim.Duration // fault-to-detection delay (0 when no failover)
	Checks    check.Report
	// Metrics is the scenario's registry (always collected; observation-only,
	// so it never perturbs the verdict). hlchaos -metrics-json merges these
	// in matrix order.
	Metrics *metrics.Registry
}

// Pass reports whether every invariant check passed.
func (v FaultVerdict) Pass() bool { return v.Checks.AllPass() }

// switchGroup lets the WAL and lock manager survive a group rebuild: it
// implements wal.Replicator and locks.CASer by delegating to the current
// group, which the repair path swaps out underneath them.
type switchGroup struct{ g *core.Group }

func (s *switchGroup) do(err error, done func(error)) {
	if err != nil && done != nil {
		done(err)
	}
}

func (s *switchGroup) Write(off, size int, durable bool, done func(error)) {
	s.do(s.g.GWrite(off, size, durable, resWrap(done)), done)
}

func (s *switchGroup) Memcpy(dst, src, size int, durable bool, done func(error)) {
	s.do(s.g.GMemcpy(dst, src, size, durable, resWrap(done)), done)
}

func (s *switchGroup) Flush(done func(error)) {
	s.do(s.g.GFlush(resWrap(done)), done)
}

func (s *switchGroup) GCAS(off int, old, new uint64, exec core.ExecuteMap, done func(core.Result)) error {
	return s.g.GCAS(off, old, new, exec, done)
}

// GAtomicLoop keeps the lock manager on the NIC-resident retry path across
// a group rebuild (locks.LoopCASer is satisfied through the switch).
func (s *switchGroup) GAtomicLoop(spec core.LoopSpec, done func(core.Result)) error {
	return s.g.GAtomicLoop(spec, done)
}

// GWriteIf keeps the txn epoch fence wired to the current group.
func (s *switchGroup) GWriteIf(off, size, guardOff int, want, mask uint64, done func(core.Result)) error {
	return s.g.GWriteIf(off, size, guardOff, want, mask, done)
}

func (s *switchGroup) GroupSize() int { return s.g.GroupSize() }

func resWrap(done func(error)) func(core.Result) {
	if done == nil {
		return nil
	}
	return func(res core.Result) { done(res.Err) }
}

// RunFaultScenario builds a fresh cluster (client + 3 chain members + 1
// spare), runs a transaction workload through the planned fault, repairs the
// chain if the fault is detected (spare promotion + catch-up + WAL reattach
// + lock reset), quiesces, and runs every invariant checker. Same params,
// same verdict — byte for byte.
func RunFaultScenario(p FaultParams) FaultVerdict {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     2 + fmMembers, // client + members + spare
		StoreSize: fmStoreSize,
		Seed:      p.Seed*2 + 1,
	})
	client := cl.Client()
	members := cl.Replicas()[:fmMembers]
	spare := cl.Replicas()[fmMembers]

	chainCfg := chain.Config{HeartbeatEvery: sim.Millisecond, MissedThreshold: 5}
	coreCfg := core.Config{Depth: 512, OpTimeout: 25 * sim.Millisecond}

	sw := &switchGroup{g: core.NewWithNodes(eng, client, members, coreCfg)}
	log := wal.New(wal.NodeStore{N: client}, sw, fmLogBase, fmLogSize, nil)
	// Every matrix cell also streams the object window to a simulated object
	// store, so the restore-equivalence property (rebuild from blobs ==
	// client's live window) is exercised by every chaos class. The streamer
	// only observes the WAL — the scenario unfolds identically without it.
	obs := objstore.New(eng, objstore.Config{Seed: p.Seed*3 + 11})
	str := stream.NewStreamer(eng, obs, log, stream.StreamerConfig{
		Prefix:     crPrefix,
		WindowBase: fmObjBase,
		WindowSize: crWindowSize,
		FlushEvery: crFlushEvery,
	}, client.StoreBytes)
	lm := locks.New(sw, eng, fmLockBase, locks.Config{})
	tm := txn.New(eng, log, wal.NodeStore{N: client}, lm, txn.Config{LockStripes: fmLockStripes})

	// Observability plane, always on: spans and counters only observe, so
	// the scenario unfolds identically with or without them — and the
	// span-conservation checker gets exercised by every chaos class.
	reg := metrics.NewRegistry()
	rec := span.NewRecorder(eng)
	log.Instrument(reg, rec, "fm", eng.Now)
	cluster.Instrument(reg, cl, "fm")

	// Plan and install the fault before anything runs, so the fault timeline
	// depends only on (class, seed).
	detectBound := sim.Duration(chainCfg.MissedThreshold) * chainCfg.HeartbeatEvery
	spec := faults.Plan(p.Class, p.Seed, fmMembers, detectBound)
	plane := faults.NewPlane(eng, cl, p.Seed^0x5EED)
	plane.SetSpans(rec)
	spec.Install(plane, members)

	// Chain repair: tear down the failed group, reset the lock table, promote
	// the spare, catch it up from the client's store, rebuild the group over
	// survivors + spare, reattach the WAL (re-replicating unexecuted
	// records), and re-replicate the lock reset durably before resuming.
	var mgr *chain.Manager
	var repairErr error
	fail := func(err error) {
		if repairErr == nil {
			repairErr = err
		}
		mgr.Halt()
	}
	onFailure := func(failed *cluster.Node, survivors []*cluster.Node) {
		sw.g.Close()
		client.StoreWrite(fmLockBase, make([]byte, 8*fmLockStripes))
		sp, err := mgr.TakeSpare()
		if err != nil {
			fail(err)
			return
		}
		mgr.CatchUp(sp, 0, fmStoreSize, func(err error) {
			if err != nil {
				fail(err)
				return
			}
			newMembers := append(append([]*cluster.Node{}, survivors...), sp)
			sw.g = core.NewWithNodes(eng, client, newMembers, coreCfg)
			log.Reattach(sw, func(err error) {
				if err != nil {
					fail(fmt.Errorf("reattach: %w", err))
				}
			})
			sw.Write(fmLockBase, 8*fmLockStripes, true, func(err error) {
				if err != nil {
					fail(fmt.Errorf("lock reset: %w", err))
					return
				}
				mgr.Resume(newMembers)
			})
		})
	}
	mgr = chain.NewManager(eng, client, members, []*cluster.Node{spare}, chainCfg, onFailure)
	mgr.Instrument(reg, rec, "fm")

	// Closed-loop workload: fmPipeline strands, each committing transactions
	// of 1–3 distinct slots stamped with the transaction ID, thinking an
	// exponential gap between commits, holding off while the chain is paused.
	wr := sim.NewRand(p.Seed + 0x7777)
	stopAt := sim.Time(0).Add(fmStopAt)
	var recs []*check.TxnRecord
	nextID := uint64(1)
	inflight := 0
	var issue func()
	think := func() { eng.Schedule(wr.Exp(fmThinkMean), issue) }
	issue = func() {
		if eng.Now() >= stopAt {
			return
		}
		if mgr.Paused() || sw.g.Failed() != nil {
			eng.Schedule(200*sim.Microsecond, issue)
			return
		}
		t, err := tm.Begin()
		if err != nil {
			return
		}
		n := 1 + wr.Intn(3)
		slots := make([]int, 0, n)
		seen := map[int]bool{}
		for len(slots) < n {
			s := wr.Intn(fmObjSlots)
			if !seen[s] {
				seen[s] = true
				slots = append(slots, s)
			}
		}
		rec := &check.TxnRecord{ID: nextID, Slots: slots}
		nextID++
		recs = append(recs, rec)
		for _, s := range slots {
			t.WriteUint64(fmObjBase+8*s, rec.ID)
		}
		inflight++
		err = t.Commit(func(err error) {
			inflight--
			if err == nil {
				rec.Acked = true
			} else {
				rec.Err = err
			}
			think()
		})
		if err != nil {
			inflight--
			rec.Err = err
			think()
		}
	}
	for i := 0; i < fmPipeline; i++ {
		eng.Schedule(sim.Duration(i)*50*sim.Microsecond, issue)
	}

	// Run the workload through fault and repair, then quiesce: no commit in
	// flight and the chain unpaused (or the repair definitively failed).
	deadline := sim.Time(0).Add(fmDeadline)
	eng.RunFor(fmStopAt)
	quiesced := eng.RunUntil(func() bool {
		return inflight == 0 && (!mgr.Paused() || repairErr != nil)
	}, deadline)

	// Drain: replay any still-pending durably-logged records (from
	// indeterminate commits interrupted by the fault) so the object region
	// reaches its final converged state, then flush everything.
	var drainErr error
	for drainErr == nil && log.Pending() > 0 {
		if !eng.RunUntil(log.Ready, deadline) {
			drainErr = errors.New("drain: record never became ready")
			break
		}
		replayDone, replayErr := false, error(nil)
		if err := log.ExecuteAndAdvance(func(err error) { replayDone, replayErr = true, err }); err != nil {
			drainErr = fmt.Errorf("drain: %w", err)
			break
		}
		if !eng.RunUntil(func() bool { return replayDone }, deadline) {
			drainErr = errors.New("drain: replay stalled")
		} else if replayErr != nil {
			drainErr = fmt.Errorf("drain replay: %w", replayErr)
		}
	}
	if repairErr == nil && drainErr == nil {
		flushed, flushErr := false, error(nil)
		sw.Flush(func(err error) { flushed, flushErr = true, err })
		if !eng.RunUntil(func() bool { return flushed }, deadline) {
			drainErr = errors.New("final flush stalled")
		} else if flushErr != nil {
			drainErr = fmt.Errorf("final flush: %w", flushErr)
		}
	}
	// Let the stream finish uploading everything committed before comparing
	// the rebuilt image against the live window.
	streamIdle := false
	str.Quiesce(func() { streamIdle = true })
	streamOK := eng.RunUntil(func() bool { return streamIdle }, deadline)
	mgr.Halt()
	plane.StopAll()

	// Assemble the verdict.
	reg.Sample(eng.Now())
	v := FaultVerdict{
		Params:    p,
		Spec:      spec,
		Timeline:  plane.Timeline(),
		Failovers: mgr.Failovers(),
		Metrics:   reg,
	}
	for _, r := range recs {
		if r.Acked {
			v.Committed++
		} else {
			v.Errored++
		}
	}
	if at, ok := mgr.LastDetection(); ok {
		v.DetectIn = at.Sub(sim.Time(0).Add(spec.FaultAt))
	}

	live := func(n *cluster.Node) check.Image {
		return check.Image{Name: fmt.Sprintf("n%d", n.Index), Read: n.StoreBytes}
	}
	durable := func(n *cluster.Node) check.Image {
		return check.Image{Name: fmt.Sprintf("n%d-durable", n.Index), Read: n.Dev.DurableRead}
	}
	final := mgr.Members()
	liveAll := []check.Image{live(client)}
	for _, m := range final {
		liveAll = append(liveAll, live(m))
	}

	v.Checks = append(v.Checks,
		check.Result{Name: "repair", Err: repairErr, Detail: "chain repair path clean"},
		quiesceResult(quiesced, drainErr, v.Committed, v.Errored),
		check.WALSoundness(liveAll, fmLogBase, fmLogSize),
		check.WALPrefix(liveAll, fmLogBase, fmLogSize),
		check.LocksFree(liveAll, fmLockBase, fmLockStripes),
		check.RegionEqual("object-converge", live(client), liveAll[1:], fmObjBase, 8*fmObjSlots),
		check.TxnAtomicity(live(client), fmObjBase, fmObjSlots, derefRecs(recs)),
		check.Membership(v.Failovers, spec.ExpectFailover, mgr.Paused(),
			len(final), fmMembers, v.DetectIn, detectBound, chainCfg.HeartbeatEvery),
		check.SpanConservation(rec),
	)
	restoreEq := check.Result{Name: "restore-equivalence", Err: errors.New("stream never quiesced")}
	if streamOK {
		restoreEq = check.RestoreEquivalence(live(client), func() ([]byte, int, uint64, error) {
			return stream.RebuildImage(obs.Peek, crPrefix)
		})
	}
	v.Checks = append(v.Checks, restoreEq)
	// Every surviving member's durable image must match its live view after
	// the final flush — nothing the client was promised lives only in a
	// volatile cache.
	for _, m := range final {
		v.Checks = append(v.Checks, check.RegionEqual(
			fmt.Sprintf("durable=live:n%d", m.Index), live(m),
			[]check.Image{durable(m)}, 0, fmStoreSize))
	}
	// Victim post-mortem for hard faults: whatever the crash (or power
	// failure) left on the victim's durable media must still recover as a
	// valid log — possibly truncated, never corrupt.
	if spec.ExpectFailover {
		victim := members[spec.VictimIdx]
		pm := check.WALSoundness([]check.Image{durable(victim)}, fmLogBase, fmLogSize)
		pm.Name = "wal-soundness-victim"
		v.Checks = append(v.Checks, pm)
	}
	return v
}

func quiesceResult(quiesced bool, drainErr error, committed, errored int) check.Result {
	res := check.Result{
		Name:   "quiesce",
		Detail: fmt.Sprintf("%d committed, %d indeterminate", committed, errored),
	}
	switch {
	case !quiesced:
		res.Err = errors.New("workload did not quiesce before deadline")
	case drainErr != nil:
		res.Err = drainErr
	case committed == 0:
		res.Err = errors.New("no transaction committed")
	}
	return res
}

func derefRecs(recs []*check.TxnRecord) []check.TxnRecord {
	out := make([]check.TxnRecord, len(recs))
	for i, r := range recs {
		out[i] = *r
	}
	return out
}

// FaultMatrix runs seedsPerClass scenarios of every class in classes,
// seeding cell (class, i) with baseSeed+i, fanned over the configured worker
// pool. Verdicts come back in matrix order (class-major), independent of
// worker interleaving.
func FaultMatrix(classes []faults.Class, baseSeed int64, seedsPerClass int) []FaultVerdict {
	params := make([]FaultParams, 0, len(classes)*seedsPerClass)
	for _, c := range classes {
		for i := 0; i < seedsPerClass; i++ {
			params = append(params, FaultParams{Class: c, Seed: baseSeed + int64(i)})
		}
	}
	out, _ := RunParallel(Parallelism(), len(params), func(i int) (FaultVerdict, error) {
		return RunFaultScenario(params[i]), nil
	})
	return out
}
