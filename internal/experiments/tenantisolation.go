package experiments

import (
	"fmt"

	"hyperloop/internal/check"
	"hyperloop/internal/load"
	"hyperloop/internal/metrics"
	"hyperloop/internal/qos"
	"hyperloop/internal/rdma"
	"hyperloop/internal/shard"
	"hyperloop/internal/sim"
)

// Tenant-isolation experiment: the elastic QoS plane end to end. A victim
// tenant runs at a steady rate while an aggressor bursts to ten times its
// contract over a tiered host fleet. Three seeded runs:
//
//   baseline     — aggressor at its contract, QoS on: the quiescent
//                  reference for the victim's tail.
//   QoS on       — the 10x burst. The controller throttles the aggressor
//                  to its contract, detects sustained saturation, funds
//                  scale-out steps from the tenant's escrow (each one a
//                  live migration of a spare shard onto edge-tier hosts
//                  plus a FundFrac rate raise), and halts at the spend
//                  cap — degrading back to pure throttling.
//   uncontrolled — the same burst with admission off: the hidden-queue
//                  counterfactual that shows what the victim was spared.
//
// The verdicts are the paper-style isolation story: victim p99 flat within
// 10% of baseline through the burst, aggressor recovered past 1.5x its
// contract via funded edge capacity, spend stopped exactly at the cap, and
// the uncontrolled run inflating the victim's tail by 10x or more.

// TenantIsolationParams selects one scenario.
type TenantIsolationParams struct {
	Seed int64
	// Workers is the engine worker count inside each run.
	Workers int
	// Duration is the arrival horizon per run (default 20ms — long enough
	// that the funded plateau dominates the aggressor's average).
	Duration sim.Duration
}

// Scenario constants. Rates are per group; the plane runs two groups.
const (
	isoVictimRate = 30_000.0 // victim arrivals per group per second
	isoContract   = 30_000.0 // aggressor contract per group per second
	isoBurstMult  = 10       // aggressor burst multiple of contract
	isoHosts      = 10       // hosts per group: 0-6 general, 7-9 edge
	isoShards     = 4        // tenant-owned 0,1; spares 2,3
)

// isoEscrow / isoCap fund exactly two scale-out steps per group; the third
// saturated decision must degrade to throttling.
const (
	isoEscrow   = 2.0
	isoStepCost = 1.0
	isoCap      = 2.0
)

// isoTiers labels the pool: the last three hosts are edge.
func isoTiers() []shard.Tier {
	tiers := make([]shard.Tier, isoHosts)
	for h := isoHosts - 3; h < isoHosts; h++ {
		tiers[h] = shard.TierEdge
	}
	return tiers
}

// isoTierNIC gives edge hosts the fast NIC profile scale-out recruits for.
func isoTierNIC() map[shard.Tier]rdma.Config {
	return map[shard.Tier]rdma.Config{
		shard.TierEdge: {
			WQEProcess:   100 * sim.Nanosecond,
			RxProcess:    100 * sim.Nanosecond,
			DMAGbps:      400,
			DoorbellCost: 100 * sim.Nanosecond,
		},
	}
}

// TenantIsolationVerdict is one scenario's outcome.
type TenantIsolationVerdict struct {
	Params TenantIsolationParams
	// Baseline, QoSOn, Uncontrolled are the three runs (tenant order:
	// victim, aggressor).
	Baseline     load.Result
	QoSOn        load.Result
	Uncontrolled load.Result
	Checks       check.Report
	// Metrics is the QoS run's merged registry (group order).
	Metrics *metrics.Registry
}

// Pass reports whether every check passed.
func (v TenantIsolationVerdict) Pass() bool { return v.Checks.AllPass() }

// isoConfig builds one run. aggMult scales the aggressor's offered load as
// a multiple of its contract; the victim's absolute rate is identical in
// every run (the weights split the shared arrival stream).
func isoConfig(p TenantIsolationParams, aggMult int, qosOn bool) load.Config {
	vicW, aggW := 1, int(isoContract/isoVictimRate)*aggMult
	cfg := load.Config{
		System:         "hyperloop",
		Groups:         2,
		ShardsPerGroup: isoShards,
		HostsPerGroup:  isoHosts,
		Replicas:       3,
		FusionDepth:    4,
		DoorbellCost:   200 * sim.Nanosecond,
		Workers:        p.Workers,
		Seed:           p.Seed,
		OfferedLoad:    2 * (isoVictimRate + isoContract*float64(aggMult)),
		Duration:       p.Duration,
		SLO:            curveSLO,
		Tenants: []load.TenantClass{
			// The victim is unthrottled (rate 0): only isolation protects
			// it. Its SLO target makes breaches observable in the log.
			{Name: "victim", Weight: vicW,
				SLO: qos.SLO{P99Target: curveSLO}},
			{Name: "aggressor", Weight: aggW, RatePerSec: isoContract,
				SLO: qos.SLO{
					Budget: qos.Budget{Escrow: isoEscrow, StepCost: isoStepCost, SpendCap: isoCap},
					Hint:   shard.HintHot,
				}},
		},
		Admission: load.AdmissionConfig{
			QueueDepth:      64,
			MaxInflight:     32,
			DispatchBatch:   8,
			DispatchEvery:   2 * sim.Microsecond,
			PerTenantQueues: true,
		},
		HostTiers: isoTiers(),
		TierNIC:   isoTierNIC(),
		QoS:       qosOn,
	}
	cfg.Admission.Enabled = qosOn
	if !qosOn {
		// The counterfactual is the legacy hidden queue: no buckets, no
		// bounded FIFO, no per-tenant fairness.
		cfg.Admission.PerTenantQueues = false
	}
	return cfg
}

// TenantIsolationMatrix runs n isolation scenarios seeded baseSeed..+n-1
// over the worker pool; verdicts come back in input order, bit-identical at
// any parallelism.
func TenantIsolationMatrix(baseSeed int64, n int) []TenantIsolationVerdict {
	out, _ := RunParallel(Parallelism(), n, func(i int) (TenantIsolationVerdict, error) {
		return RunTenantIsolation(TenantIsolationParams{Seed: baseSeed + int64(i)}), nil
	})
	return out
}

// RunTenantIsolation runs and judges one tenant-isolation scenario.
func RunTenantIsolation(p TenantIsolationParams) TenantIsolationVerdict {
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.Duration <= 0 {
		p.Duration = 20 * sim.Millisecond
	}
	v := TenantIsolationVerdict{Params: p}

	v.Baseline = load.Run(isoConfig(p, 1, true))
	v.QoSOn = load.Run(isoConfig(p, isoBurstMult, true))
	v.Uncontrolled = load.Run(isoConfig(p, isoBurstMult, false))
	v.Metrics = v.QoSOn.MergedRegistry()

	for _, r := range []struct {
		name string
		res  load.Result
	}{{"baseline", v.Baseline}, {"qos-on", v.QoSOn}, {"uncontrolled", v.Uncontrolled}} {
		c := check.Result{Name: "accounting-" + r.name}
		switch {
		case r.res.CheckAccounting() != nil:
			c.Err = r.res.CheckAccounting()
		case !r.res.Skew.Pass():
			c.Err = r.res.Skew.Err
		default:
			c.Detail = fmt.Sprintf("%d arrivals, no hidden holes", r.res.Verdicts.Arrivals)
		}
		v.Checks = append(v.Checks, c)
	}

	// (a) The victim's p99 stays within 10% of baseline through the burst.
	vicBase, vicQoS := tenant(v.Baseline, "victim"), tenant(v.QoSOn, "victim")
	flat := check.Result{Name: "victim-flat-10pct"}
	bound := vicBase.P99 + vicBase.P99/10
	switch {
	case vicQoS.Acked == 0:
		flat.Err = fmt.Errorf("victim starved: 0 acked during burst")
	case vicQoS.P99 > bound:
		flat.Err = fmt.Errorf("victim p99 %v during burst, baseline %v (10%% bound %v)",
			vicQoS.P99, vicBase.P99, bound)
	default:
		flat.Detail = fmt.Sprintf("p99 %v burst vs %v baseline", vicQoS.P99, vicBase.P99)
	}
	v.Checks = append(v.Checks, flat)

	// (b) The aggressor is throttled against its contract, then recovers to
	// at least 1.5x contract goodput on funded capacity.
	agg := tenant(v.QoSOn, "aggressor")
	contractTotal := 2 * isoContract // both groups
	ackedRate := float64(agg.Acked) / p.Duration.Seconds()
	recover := check.Result{Name: "aggressor-recovers-1.5x"}
	switch {
	case agg.Throttled == 0:
		recover.Err = fmt.Errorf("aggressor burst (%d arrivals) never throttled", agg.Arrivals)
	case float64(agg.Throttled) < 0.5*float64(agg.Arrivals):
		recover.Err = fmt.Errorf("aggressor throttled only %d of %d arrivals", agg.Throttled, agg.Arrivals)
	case ackedRate < 1.5*contractTotal:
		recover.Err = fmt.Errorf("aggressor acked %.0f/s, want >= 1.5x contract %.0f/s",
			ackedRate, contractTotal)
	case ackedRate > 2.5*contractTotal:
		recover.Err = fmt.Errorf("aggressor acked %.0f/s: above any funded rate (cap 2x contract)", ackedRate)
	default:
		recover.Detail = fmt.Sprintf("throttled %d/%d, acked %.0f/s (%.1fx contract)",
			agg.Throttled, agg.Arrivals, ackedRate, ackedRate/contractTotal)
	}
	v.Checks = append(v.Checks, recover)

	// (b') The funded steps landed the spares on edge-tier hosts, and the
	// victim's shard never touched edge.
	tiers := isoTiers()
	edge := check.Result{Name: "scale-out-on-edge"}
	edgeErr := func() error {
		if len(v.QoSOn.Placements) != 2 {
			return fmt.Errorf("placements for %d groups, want 2", len(v.QoSOn.Placements))
		}
		for g, pl := range v.QoSOn.Placements {
			for _, h := range pl[0] {
				if tiers[h] == shard.TierEdge {
					return fmt.Errorf("group %d: victim shard on edge host %d: %v", g, h, pl[0])
				}
			}
			for _, sid := range []int{2, 3} { // the recruited spares
				edgeHosts := 0
				for _, h := range pl[sid] {
					if tiers[h] == shard.TierEdge {
						edgeHosts++
					}
				}
				if edgeHosts < 2 {
					return fmt.Errorf("group %d: spare shard %d on %v: %d edge hosts, want 2",
						g, sid, pl[sid], edgeHosts)
				}
			}
		}
		return nil
	}()
	if edgeErr != nil {
		edge.Err = edgeErr
	} else {
		edge.Detail = "both spares per group recruited onto 2-of-3 edge chains; victim stayed off edge"
	}
	v.Checks = append(v.Checks, edge)

	// (c) Spend halts exactly at the per-group cap: 2 steps per group, the
	// escrow drained, and one cap-exhausted degrade per group.
	ledger := check.Result{Name: "budget-cap-halts"}
	var aggLedger qos.TenantState
	for _, st := range v.QoSOn.QoSTenants {
		if st.Name == "aggressor" {
			aggLedger = st
		}
	}
	capEvents := 0
	for _, e := range v.QoSOn.QoSEvents {
		if e.Name == "aggressor" && e.Kind == qos.CapExhausted {
			capEvents++
		}
	}
	switch {
	case aggLedger.Steps != 4:
		ledger.Err = fmt.Errorf("aggressor scale-out steps = %d, want 4 (2 per group)", aggLedger.Steps)
	case aggLedger.Spent != 2*isoCap || aggLedger.EscrowLeft != 0:
		ledger.Err = fmt.Errorf("spent/escrow = %.1f/%.1f, want %.1f/0",
			aggLedger.Spent, aggLedger.EscrowLeft, 2*isoCap)
	case !aggLedger.Degraded:
		ledger.Err = fmt.Errorf("aggressor not degraded to throttling at the cap")
	case capEvents != 2:
		ledger.Err = fmt.Errorf("cap-exhausted logged %d times, want once per group", capEvents)
	default:
		ledger.Detail = fmt.Sprintf("4 funded steps, spent %.0f of cap %.0f, degraded",
			aggLedger.Spent, 2*isoCap)
	}
	v.Checks = append(v.Checks, ledger)

	// (d) The uncontrolled counterfactual inflates the victim's tail 10x+.
	vicOff := tenant(v.Uncontrolled, "victim")
	degrade := check.Result{Name: "uncontrolled-10x-victim-p99"}
	if vicOff.P99 < 10*vicQoS.P99 {
		degrade.Err = fmt.Errorf("uncontrolled victim p99 %v < 10x controlled %v", vicOff.P99, vicQoS.P99)
	} else {
		degrade.Detail = fmt.Sprintf("victim p99 %v uncontrolled vs %v with QoS (%.0fx)",
			vicOff.P99, vicQoS.P99, float64(vicOff.P99)/float64(vicQoS.P99))
	}
	v.Checks = append(v.Checks, degrade)
	return v
}
