package experiments

import (
	"fmt"

	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

// MsgSizesLatency is the x-axis of Figures 8 and 10.
var MsgSizesLatency = []int{128, 256, 512, 1024, 2048, 4096, 8192}

// MsgSizesThroughput is the x-axis of Figure 9.
var MsgSizesThroughput = []int{1024, 2048, 4096, 8192, 16384, 32768, 65536}

// GWriteLatency measures gWRITE latency (closed loop) — one cell of
// Figure 8(a) / Figure 10.
func GWriteLatency(p MicroParams) (stats.Summary, error) {
	p.fill()
	r := newMicroRig(p)
	defer r.close()
	r.cl.Client().StoreWrite(0, make([]byte, p.MsgSize))
	hist, err := r.runOps(p.Ops, p.Pipeline, budget(p), func(i int, done func(error)) {
		if err := r.api.GWrite(0, p.MsgSize, p.Durable, done); err != nil {
			done(err)
		}
	})
	return hist.Summarize(), err
}

// GMemcpyLatency measures gMEMCPY latency — one cell of Figure 8(b).
func GMemcpyLatency(p MicroParams) (stats.Summary, error) {
	p.fill()
	r := newMicroRig(p)
	defer r.close()
	r.cl.Client().StoreWrite(0, make([]byte, p.MsgSize))
	dst := 1 << 20
	hist, err := r.runOps(p.Ops, p.Pipeline, budget(p), func(i int, done func(error)) {
		if err := r.api.GMemcpy(dst, 0, p.MsgSize, p.Durable, done); err != nil {
			done(err)
		}
	})
	return hist.Summarize(), err
}

// GCASLatency measures gCAS latency — Table 2.
func GCASLatency(p MicroParams) (stats.Summary, error) {
	p.fill()
	r := newMicroRig(p)
	defer r.close()
	hist, err := r.runOps(p.Ops, 1, budget(p), func(i int, done func(error)) {
		// Alternate the lock word so every CAS succeeds.
		old, new := uint64(0), uint64(1)
		if i%2 == 1 {
			old, new = 1, 0
		}
		if err := r.api.GCAS(0, old, new, done); err != nil {
			done(err)
		}
	})
	return hist.Summarize(), err
}

// budget sizes the simulation budget generously for a run. Without the
// wakeup bonus every hop waits a full scheduling round (~10ms), so the
// ablation needs the larger budget.
func budget(p MicroParams) sim.Duration {
	per := 25 * sim.Millisecond
	if p.NoWakeupBonus {
		per = 80 * sim.Millisecond
	}
	d := sim.Duration(p.Ops) * per
	if d < 10*sim.Second {
		d = 10 * sim.Second
	}
	return d
}

// LatencyRow is one sweep point comparing systems.
type LatencyRow struct {
	MsgSize int
	ByName  map[string]stats.Summary
}

// LatencySweep runs a primitive across message sizes and systems —
// Figure 8(a) and 8(b). The (size, system) grid fans out over the
// configured worker pool; every cell is an independent simulation, so the
// assembled rows are identical to a serial run.
func LatencySweep(prim string, sizes []int, systems []System, base MicroParams) ([]LatencyRow, error) {
	var cell func(MicroParams) (stats.Summary, error)
	switch prim {
	case "gwrite":
		cell = GWriteLatency
	case "gmemcpy":
		cell = GMemcpyLatency
	case "gcas":
		cell = GCASLatency
	default:
		return nil, fmt.Errorf("experiments: unknown primitive %q", prim)
	}
	cells, err := RunParallel(Parallelism(), len(sizes)*len(systems),
		func(i int) (stats.Summary, error) {
			sz, sys := sizes[i/len(systems)], systems[i%len(systems)]
			p := base
			p.System = sys
			p.MsgSize = sz
			s, err := cell(p)
			if err != nil {
				return s, fmt.Errorf("%s/%v/%dB: %w", prim, sys, sz, err)
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []LatencyRow
	for si, sz := range sizes {
		row := LatencyRow{MsgSize: sz, ByName: make(map[string]stats.Summary)}
		for yi, sys := range systems {
			row.ByName[sys.String()] = cells[si*len(systems)+yi]
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ThroughputPoint is one Figure 9 cell: ops rate plus critical-path CPU.
type ThroughputPoint struct {
	MsgSize int
	KopsSec float64
	// CPUCorePct is replica-host CPU consumed during the run, in percent
	// of one core (the paper's Figure 9 right axis).
	CPUCorePct float64
}

// Throughput pushes totalBytes of gWRITEs at the given message size with a
// deep pipeline and measures rate and replica CPU — Figure 9. No background
// tenants: the CPU axis isolates the datapath's own consumption.
func Throughput(sys System, msgSize, totalBytes int, seed int64) (ThroughputPoint, error) {
	p := MicroParams{
		System:         sys,
		MsgSize:        msgSize,
		Ops:            totalBytes / msgSize,
		Pipeline:       64,
		TenantsPerCore: 0,
		Seed:           seed,
	}
	p.fill()
	r := newMicroRig(p)
	defer r.close()
	r.cl.Client().StoreWrite(0, make([]byte, p.MsgSize))
	for _, rep := range r.cl.Replicas() {
		rep.Host.ResetAccounting()
	}
	start := r.eng.Now()
	_, err := r.runOps(p.Ops, p.Pipeline, 120*sim.Second, func(i int, done func(error)) {
		if err := r.api.GWrite(0, p.MsgSize, false, done); err != nil {
			done(err)
		}
	})
	if err != nil {
		return ThroughputPoint{}, err
	}
	elapsed := r.eng.Now().Sub(start)
	var cpu float64
	for _, rep := range r.cl.Replicas() {
		cpu += rep.Host.Utilization() * float64(rep.Host.Cores())
	}
	cpu /= float64(len(r.cl.Replicas())) // avg per replica, in cores
	return ThroughputPoint{
		MsgSize:    msgSize,
		KopsSec:    float64(p.Ops) / elapsed.Seconds() / 1e3,
		CPUCorePct: cpu * 100,
	}, nil
}

// GroupScalingRow is one Figure 10 cell.
type GroupScalingRow struct {
	GroupSize int
	MsgSize   int
	P99       sim.Duration
	Mean      sim.Duration
}

// GroupScaling measures gWRITE tail latency across group sizes — Figure 10.
// The (group, size) grid fans out over the configured worker pool.
func GroupScaling(sys System, groupSizes, msgSizes []int, base MicroParams) ([]GroupScalingRow, error) {
	return RunParallel(Parallelism(), len(groupSizes)*len(msgSizes),
		func(i int) (GroupScalingRow, error) {
			g, m := groupSizes[i/len(msgSizes)], msgSizes[i%len(msgSizes)]
			p := base
			p.System = sys
			p.GroupSize = g
			p.MsgSize = m
			s, err := GWriteLatency(p)
			if err != nil {
				return GroupScalingRow{}, fmt.Errorf("group %d size %d: %w", g, m, err)
			}
			return GroupScalingRow{GroupSize: g, MsgSize: m, P99: s.P99, Mean: s.Mean}, nil
		})
}

// ThroughputRow is one Figure 9 sweep row across systems.
type ThroughputRow struct {
	MsgSize int
	ByName  map[string]ThroughputPoint
}

// ThroughputSweep runs Throughput across message sizes and systems —
// Figure 9 — fanning the (size, system) grid out over the configured
// worker pool.
func ThroughputSweep(systems []System, sizes []int, totalBytes int, seed int64) ([]ThroughputRow, error) {
	cells, err := RunParallel(Parallelism(), len(sizes)*len(systems),
		func(i int) (ThroughputPoint, error) {
			sz, sys := sizes[i/len(systems)], systems[i%len(systems)]
			pt, err := Throughput(sys, sz, totalBytes, seed)
			if err != nil {
				return pt, fmt.Errorf("throughput/%v/%dB: %w", sys, sz, err)
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	var rows []ThroughputRow
	for si, sz := range sizes {
		row := ThroughputRow{MsgSize: sz, ByName: make(map[string]ThroughputPoint)}
		for yi, sys := range systems {
			row.ByName[sys.String()] = cells[si*len(systems)+yi]
		}
		rows = append(rows, row)
	}
	return rows, nil
}
