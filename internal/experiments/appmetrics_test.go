package experiments

import (
	"bytes"
	"testing"
)

func TestAppMetricsDeterministic(t *testing.T) {
	dump := func() []byte {
		reg, err := AppMetrics(1, 200)
		if err != nil {
			t.Fatal(err)
		}
		data, err := reg.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := dump(), dump()
	if len(a) == 0 || !bytes.Contains(a, []byte("ops_acked")) {
		t.Fatalf("app metrics dump missing op ledger: %d bytes", len(a))
	}
	if !bytes.Equal(a, b) {
		t.Fatal("app metrics dump not reproducible")
	}
}

func TestMotivationMetricsDeterministic(t *testing.T) {
	dump := func() []byte {
		reg, err := MotivationMetrics(1, 100)
		if err != nil {
			t.Fatal(err)
		}
		data, err := reg.ExportJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := dump(), dump()
	if len(a) == 0 || !bytes.Contains(a, []byte("update_latency_ns")) {
		t.Fatalf("motivation metrics dump missing op ledger: %d bytes", len(a))
	}
	if !bytes.Equal(a, b) {
		t.Fatal("motivation metrics dump not reproducible")
	}
}
