package experiments

import (
	"fmt"

	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/naive"
	"hyperloop/internal/rdma"
	"hyperloop/internal/sim"
	"hyperloop/internal/stats"
)

// AblationFlush quantifies the cost of durability: gWRITE with and without
// the interleaved gFLUSH (§4.2). Returns (volatile, durable) summaries.
func AblationFlush(msgSize, ops int, seed int64) (stats.Summary, stats.Summary, error) {
	base := MicroParams{System: HyperLoop, MsgSize: msgSize, Ops: ops, TenantsPerCore: 0, Seed: seed}
	v := base
	v.Durable = false
	volatileS, err := GWriteLatency(v)
	if err != nil {
		return stats.Summary{}, stats.Summary{}, err
	}
	d := base
	d.Durable = true
	durableS, err := GWriteLatency(d)
	return volatileS, durableS, err
}

// AblationReplenishBatch measures replica CPU consumed by ring
// replenishment as the batch period varies — the off-critical-path cost
// HyperLoop trades for a CPU-free datapath.
type ReplenishPoint struct {
	Period      sim.Duration
	CPUCorePct  float64 // mean replica CPU in % of one core
	MeanLatency sim.Duration
}

// AblationReplenishBatch sweeps the replenisher period under a pipelined
// gWRITE load.
func AblationReplenishBatch(periods []sim.Duration, ops int, seed int64) ([]ReplenishPoint, error) {
	var out []ReplenishPoint
	for _, period := range periods {
		eng := sim.NewEngine()
		cl := cluster.New(eng, cluster.Config{Nodes: 4, StoreSize: 16 << 20, Seed: seed})
		g := core.New(cl, core.Config{Depth: 2048, MaxInflight: 128, ReplenishEvery: period})
		cl.Client().StoreWrite(0, make([]byte, 1024))
		for _, rep := range cl.Replicas() {
			rep.Host.ResetAccounting()
		}
		hist := stats.NewHistogram()
		completed, launched := 0, 0
		var launch func()
		launch = func() {
			if launched >= ops {
				return
			}
			launched++
			start := eng.Now()
			g.GWrite(0, 1024, true, func(r core.Result) {
				if r.Err == nil {
					hist.Record(eng.Now().Sub(start))
				}
				completed++
				launch()
			})
		}
		for i := 0; i < 64; i++ {
			launch()
		}
		if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(60*sim.Second)) {
			return nil, fmt.Errorf("replenish ablation %v: stalled (%v)", period, g.Failed())
		}
		if g.Failed() != nil {
			return nil, g.Failed()
		}
		var cpu float64
		for _, rep := range cl.Replicas() {
			cpu += rep.Host.Utilization() * float64(rep.Host.Cores())
		}
		cpu /= float64(len(cl.Replicas()))
		out = append(out, ReplenishPoint{Period: period, CPUCorePct: cpu * 100, MeanLatency: hist.Mean()})
		g.Close()
	}
	return out, nil
}

// AblationForwarding contrasts WAIT-triggered NIC forwarding (HyperLoop)
// with CPU forwarding (Naive-Event) on otherwise idle hosts: the residual
// gap is pure datapath cost, isolating the §4.1 mechanism from the
// multi-tenancy effect.
func AblationForwarding(msgSize, ops int, seed int64) (nic, cpu stats.Summary, err error) {
	nic, err = GWriteLatency(MicroParams{System: HyperLoop, MsgSize: msgSize, Ops: ops, TenantsPerCore: 0, Seed: seed})
	if err != nil {
		return
	}
	cpu, err = GWriteLatency(MicroParams{System: NaiveEvent, MsgSize: msgSize, Ops: ops, TenantsPerCore: 0, Seed: seed})
	return
}

// AblationWakeupBonus removes the CFS sleeper-fairness model (pure FIFO
// queueing behind tenants) to show how much of the Naive latency profile
// the scheduler model itself contributes.
func AblationWakeupBonus(msgSize, ops int, seed int64) (withBonus, withoutBonus stats.Summary, err error) {
	run := func(noBonus bool) (stats.Summary, error) {
		p := MicroParams{
			System: NaiveEvent, MsgSize: msgSize, Ops: ops,
			TenantsPerCore: 10, Seed: seed, NoWakeupBonus: noBonus,
		}
		return GWriteLatency(p)
	}
	withBonus, err = run(false)
	if err != nil {
		return
	}
	withoutBonus, err = run(true)
	return
}

// AblationChainVsFanout compares the chain topology against the §7
// FaRM-style fan-out for the same replica count: the chain pays serial
// hops, the fan-out pays parallel writes plus an all-acks barrier.
func AblationChainVsFanout(replicas, ops int, seed int64) (chain, fanout stats.Summary, err error) {
	chainS, err := GWriteLatency(MicroParams{
		System: HyperLoop, GroupSize: replicas, MsgSize: 1024, Ops: ops,
		TenantsPerCore: 0, Durable: true, Seed: seed,
	})
	if err != nil {
		return
	}
	chain = chainS

	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: replicas + 1, StoreSize: 16 << 20, Seed: seed})
	g := core.NewFanout(eng, cl.Client(), cl.Replicas()[0], cl.Replicas()[1:], core.Config{Depth: 1024})
	cl.Client().StoreWrite(0, make([]byte, 1024))
	hist := stats.NewHistogram()
	completed := 0
	var issue func()
	issue = func() {
		start := eng.Now()
		g.GWrite(0, 1024, true, func(r core.Result) {
			if r.Err == nil {
				hist.Record(eng.Now().Sub(start))
			}
			completed++
			if completed < ops {
				issue()
			}
		})
	}
	issue()
	if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(60*sim.Second)) {
		err = fmt.Errorf("fanout ablation stalled at %d/%d (%v)", completed, ops, g.Failed())
		return
	}
	fanout = hist.Summarize()
	return
}

// AblationFixedVsManipulated compares the §4.1 fixed-replication strawman
// (static descriptors, one buffer shape) against full remote WQE
// manipulation: the manipulated path's extra cost is the metadata SEND and
// descriptor scatter.
func AblationFixedVsManipulated(msgSize, ops int, seed int64) (fixed, manipulated stats.Summary, err error) {
	manipulated, err = GWriteLatency(MicroParams{
		System: HyperLoop, MsgSize: msgSize, Ops: ops, TenantsPerCore: 0, Seed: seed,
	})
	if err != nil {
		return
	}
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{Nodes: 4, StoreSize: 16 << 20, Seed: seed})
	g := core.NewFixedChain(cl, 0, msgSize, core.Config{Depth: 1024})
	cl.Client().StoreWrite(0, make([]byte, msgSize))
	hist := stats.NewHistogram()
	completed := 0
	var issue func()
	issue = func() {
		start := eng.Now()
		g.Write(func(r core.Result) {
			if r.Err == nil {
				hist.Record(eng.Now().Sub(start))
			}
			completed++
			if completed < ops {
				issue()
			}
		})
	}
	issue()
	if !eng.RunUntil(func() bool { return completed >= ops || g.Failed() != nil }, eng.Now().Add(60*sim.Second)) {
		err = fmt.Errorf("fixed ablation stalled at %d/%d (%v)", completed, ops, g.Failed())
		return
	}
	fixed = hist.Summarize()
	return
}

// MultiGroupPoint is one co-location sweep cell: many replication groups
// sharing the same three servers (the multi-tenant deployment the paper
// targets), measured from one probe group.
type MultiGroupPoint struct {
	Groups int
	Probe  stats.Summary
}

// MultiGroupCoLocation co-locates n replication groups of the given system
// on three shared servers and measures one group's gWRITE latency while
// the others run closed-loop traffic. HyperLoop groups should interfere
// only through the NICs and wire (µs-scale); Naïve groups contend for the
// servers' CPUs.
func MultiGroupCoLocation(sys System, groups, ops int, seed int64) (MultiGroupPoint, error) {
	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes:     4, // node 0 drives every group; nodes 1-3 are the shared servers
		StoreSize: (groups + 1) << 16,
		Seed:      seed,
	})
	servers := cl.Replicas()
	client := cl.Client()

	type member struct {
		write func(off, size int, done func(error)) error
		fail  func() error
	}
	mk := func() member {
		switch sys {
		case HyperLoop:
			g := core.NewWithNodes(eng, client, servers, core.Config{Depth: 512})
			return member{
				write: func(off, size int, done func(error)) error {
					return g.GWrite(off, size, true, func(r core.Result) { done(r.Err) })
				},
				fail: g.Failed,
			}
		default:
			g := naive.NewWithNodes(eng, client, servers, naive.Config{Mode: naive.Event})
			return member{
				write: func(off, size int, done func(error)) error {
					return g.GWrite(off, size, true, func(r naive.Result) { done(r.Err) })
				},
				fail: g.Failed,
			}
		}
	}

	members := make([]member, groups)
	for i := range members {
		members[i] = mk()
	}
	// Distinct 64KB windows per group so stores do not collide.
	for i := range members {
		client.StoreWrite(i<<16, make([]byte, 1024))
	}

	// Background groups: closed-loop traffic forever.
	for i := 1; i < groups; i++ {
		i := i
		var loop func()
		loop = func() {
			members[i].write(i<<16, 1024, func(err error) {
				if err == nil {
					loop()
				}
			})
		}
		loop()
	}

	// Probe group: measured ops.
	hist := stats.NewHistogram()
	completed := 0
	var probe func()
	probe = func() {
		start := eng.Now()
		members[0].write(0, 1024, func(err error) {
			if err == nil {
				hist.Record(eng.Now().Sub(start))
			}
			completed++
			if completed < ops {
				probe()
			}
		})
	}
	probe()
	if !eng.RunUntil(func() bool { return completed >= ops || members[0].fail() != nil },
		eng.Now().Add(120*sim.Second)) {
		return MultiGroupPoint{}, fmt.Errorf("multigroup stalled at %d/%d (%v)", completed, ops, members[0].fail())
	}
	if err := members[0].fail(); err != nil {
		return MultiGroupPoint{}, err
	}
	return MultiGroupPoint{Groups: groups, Probe: hist.Summarize()}, nil
}

// ReadScalingPoint reports aggregate replica-read throughput when reads
// spread across `Replicas` chain members.
type ReadScalingPoint struct {
	Replicas int
	KopsSec  float64
}

// ReadScaling measures the §5 claim that read locks let every replica
// serve consistent reads "for higher read throughput": aggregate one-sided
// read throughput with clients spread across 1, 2, or 3 replicas.
func ReadScaling(spread []int, readsPer int, seed int64) ([]ReadScalingPoint, error) {
	var out []ReadScalingPoint
	for _, nrep := range spread {
		eng := sim.NewEngine()
		cl := cluster.New(eng, cluster.Config{Nodes: 4, StoreSize: 16 << 20, Seed: seed})
		g := core.New(cl, core.Config{Depth: 256})

		// One one-sided reader pipeline per target replica.
		type reader struct {
			qp  *rdma.QP
			buf *rdma.MemoryRegion
		}
		var readers []reader
		for i := 0; i < nrep; i++ {
			q, _ := cluster.ConnectPair(cl.Client(), cl.Replicas()[i], 64, 1)
			q.SendCQ().SetAutoDrain(true)
			readers = append(readers, reader{
				qp:  q,
				buf: cl.Client().NIC.RegisterRAM(1024, rdma.AccessLocalWrite),
			})
		}
		total := readsPer * nrep
		completed := 0
		start := eng.Now()
		for i := range readers {
			rd := readers[i]
			issued := 0
			var loop func()
			loop = func() {
				if issued >= readsPer {
					return
				}
				issued++
				rd.qp.SendCQ().SetCallback(func(e rdma.CQE) {
					rd.qp.SendCQ().SetCallback(nil)
					completed++
					loop()
				})
				rd.qp.PostSend(rdma.WQE{
					Opcode: rdma.OpRead, Signaled: true,
					RKey: cl.Replicas()[i].Store.RKey(), RAddr: 0,
					SGEs: []rdma.SGE{{LKey: rd.buf.LKey(), Offset: 0, Length: 1024}},
				})
			}
			loop()
		}
		if !eng.RunUntil(func() bool { return completed >= total }, eng.Now().Add(60*sim.Second)) {
			g.Close()
			return nil, fmt.Errorf("read scaling stalled at %d/%d", completed, total)
		}
		elapsed := eng.Now().Sub(start)
		out = append(out, ReadScalingPoint{
			Replicas: nrep,
			KopsSec:  float64(total) / elapsed.Seconds() / 1e3,
		})
		g.Close()
	}
	return out, nil
}
