package experiments

import (
	"fmt"
	"testing"

	"hyperloop/internal/sim"
)

// renderColdVerdict flattens a cold-restore verdict for byte comparison.
func renderColdVerdict(v ColdRestoreVerdict) string {
	out := fmt.Sprintf("%v failovers=%d detect=%v rto=%v rpo-cold=%d acked-lost=%d attempts=%d committed=%d errored=%d\n",
		v.Spec, v.Failovers, v.DetectIn, v.RTO, v.RPOCold, v.AckedLost, v.RestoreAttempts, v.Committed, v.Errored)
	out += fmt.Sprintf("  restore: %dB snap + %d segs (%d recs) to seq %d in %v\n",
		v.Restore.SnapshotBytes, v.Restore.Segments, v.Restore.Records, v.Restore.RestoredSeq, v.Restore.Elapsed)
	out += fmt.Sprintf("  stream: %d segs %d snaps %d recs %d retries\n",
		v.Stream.Segments, v.Stream.Snapshots, v.Stream.Records, v.Stream.Retries)
	for _, e := range v.Timeline {
		out += "  " + e.String() + "\n"
	}
	for _, r := range v.Checks {
		out += "  " + r.String() + "\n"
	}
	return out
}

func TestColdRestoreDeterministic(t *testing.T) {
	p := ColdRestoreParams{Seed: 2}
	a := renderColdVerdict(RunColdRestoreScenario(p))
	b := renderColdVerdict(RunColdRestoreScenario(p))
	if a != b {
		t.Fatalf("verdicts diverged:\n--- a ---\n%s--- b ---\n%s", a, b)
	}
}

// TestColdRestoreMatrixPasses is the acceptance gate: several seeds — which
// between them hit the uploader-kill and restorer-kill chaos arms — all with
// zero acked writes lost and every invariant green.
func TestColdRestoreMatrixPasses(t *testing.T) {
	verdicts := ColdRestoreMatrix(1, 6)
	sawUploaderKill, sawRestorerKill := false, false
	for _, v := range verdicts {
		if !v.Pass() {
			t.Errorf("scenario failed:\n%s", renderColdVerdict(v))
			continue
		}
		if v.AckedLost != 0 {
			t.Errorf("seed %d: %d acked writes lost", v.Spec.Seed, v.AckedLost)
		}
		if v.RTO <= 0 {
			t.Errorf("seed %d: no RTO measured", v.Spec.Seed)
		}
		if v.Spec.KillUploader {
			sawUploaderKill = true
		}
		if v.Spec.KillRestorer {
			sawRestorerKill = true
			if v.RestoreAttempts < 2 {
				t.Errorf("seed %d: restorer killed but only %d attempt(s)", v.Spec.Seed, v.RestoreAttempts)
			}
		}
		if testing.Verbose() {
			t.Logf("\n%s", renderColdVerdict(v))
		}
	}
	if !sawUploaderKill || !sawRestorerKill {
		t.Fatalf("chaos arms not covered: uploader-kill=%v restorer-kill=%v", sawUploaderKill, sawRestorerKill)
	}
}

func TestColdRestoreOrderStable(t *testing.T) {
	SetParallelism(4)
	defer SetParallelism(0)
	a := ColdRestoreMatrix(11, 3)
	SetParallelism(1)
	b := ColdRestoreMatrix(11, 3)
	for i := range a {
		ra, rb := renderColdVerdict(a[i]), renderColdVerdict(b[i])
		if ra != rb {
			t.Fatalf("verdict %d differs between parallel and serial runs:\n--- parallel ---\n%s--- serial ---\n%s", i, ra, rb)
		}
	}
}

// TestRestoreSweepShape pins the stream-shape tradeoff the RTO/RPO table
// reports: every cell restores cleanly, and within a snapshot interval the
// segment size only changes how the covered range is chunked, never whether
// acked writes survive.
func TestRestoreSweepShape(t *testing.T) {
	cells := RestoreSweep(4,
		[]int{1 << 10, 8 << 10},
		[]sim.Duration{10 * sim.Millisecond, 40 * sim.Millisecond})
	if len(cells) != 4 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if !c.Verdict.Pass() {
			t.Errorf("cell seg=%d snap=%v failed:\n%s", c.SegmentBytes, c.SnapshotEvery, renderColdVerdict(c.Verdict))
		}
		if c.Verdict.AckedLost != 0 {
			t.Errorf("cell seg=%d snap=%v lost %d acked writes", c.SegmentBytes, c.SnapshotEvery, c.Verdict.AckedLost)
		}
	}
}
