package experiments

import (
	"fmt"

	"hyperloop/internal/check"
	"hyperloop/internal/cluster"
	"hyperloop/internal/core"
	"hyperloop/internal/fabric"
	"hyperloop/internal/faults"
	"hyperloop/internal/locks"
	"hyperloop/internal/metrics"
	"hyperloop/internal/sim"
)

// Lock-contention chaos: two coordinators hammer one write lock through
// acquire/hold/release cycles while a seeded NIC stall freezes a replica
// mid-run. The NIC-resident retry programs absorb the stall (attempts
// stretch, budgets don't burn), so the invariants are strict: mutual
// exclusion never breaks, every cycle completes, and the lock word ends
// free on every replica.

// LockContentionParams selects one scenario.
type LockContentionParams struct {
	Seed int64
}

// LockContentionVerdict is one scenario's outcome.
type LockContentionVerdict struct {
	Params   LockContentionParams
	Spec     faults.LockContentionSpec
	Acquired int    // completed acquisitions across both owners
	Retries  uint64 // CAS retries recorded by the lock manager
	MaxHeld  int    // max concurrent critical-section occupancy observed
	Timeline []faults.Event
	Checks   check.Report
	Metrics  *metrics.Registry
}

// Pass reports whether every invariant check passed.
func (v LockContentionVerdict) Pass() bool { return v.Checks.AllPass() }

// RunLockContention plans and judges one lock-contention scenario.
func RunLockContention(p LockContentionParams) LockContentionVerdict {
	spec := faults.PlanLockContention(p.Seed)
	v := LockContentionVerdict{Params: p, Spec: spec, Metrics: metrics.NewRegistry()}

	eng := sim.NewEngine()
	cl := cluster.New(eng, cluster.Config{
		Nodes: 4, StoreSize: 1 << 20, Fabric: fabric.Config{JitterFrac: -1},
	})
	g := core.New(cl, core.Config{Depth: 256})
	defer g.Close()
	m := locks.New(g, eng, lockStageBase, locks.Config{})
	plane := faults.NewPlane(eng, cl, p.Seed)
	plane.NICStall(spec.StallAt, cl.Replicas()[spec.VictimIdx], spec.StallFor)

	held := 0
	failures := 0
	doneOwners := 0
	var cycle func(owner uint64, remaining int)
	cycle = func(owner uint64, remaining int) {
		if remaining == 0 {
			doneOwners++
			return
		}
		m.WrLock(0, owner, func(err error) {
			if err != nil {
				failures++
				doneOwners++
				return
			}
			held++
			if held > v.MaxHeld {
				v.MaxHeld = held
			}
			v.Acquired++
			eng.Schedule(spec.Hold, func() {
				held--
				m.WrUnlock(0, owner, func(err error) {
					if err != nil {
						failures++
						doneOwners++
						return
					}
					cycle(owner, remaining-1)
				})
			})
		})
	}
	cycle(1, spec.Cycles)
	cycle(2, spec.Cycles)
	finished := eng.RunUntil(func() bool { return doneOwners == 2 }, eng.Now().Add(60*sim.Second))
	v.Timeline = plane.Timeline()
	_, v.Retries, _ = m.Stats()

	c := check.Result{Name: "completion"}
	switch {
	case !finished:
		c.Err = fmt.Errorf("owners stalled: %d of 2 finished", doneOwners)
	case failures > 0:
		c.Err = fmt.Errorf("%d lock operations failed", failures)
	case v.Acquired != 2*spec.Cycles:
		c.Err = fmt.Errorf("acquisitions = %d, want %d", v.Acquired, 2*spec.Cycles)
	default:
		c.Detail = fmt.Sprintf("%d acquisitions, %d retries", v.Acquired, v.Retries)
	}
	v.Checks = append(v.Checks, c)

	c = check.Result{Name: "mutual-exclusion"}
	if v.MaxHeld > 1 {
		c.Err = fmt.Errorf("critical-section occupancy reached %d", v.MaxHeld)
	} else {
		c.Detail = "occupancy never exceeded 1"
	}
	v.Checks = append(v.Checks, c)

	c = check.Result{Name: "lock-free-after"}
	for ri := 0; ri < 3 && c.Err == nil; ri++ {
		b := g.Replica(ri).StoreBytes(lockStageBase, 8)
		var w uint64
		for i := 7; i >= 0; i-- {
			w = w<<8 | uint64(b[i])
		}
		if w != 0 {
			c.Err = fmt.Errorf("replica %d lock word %x after both owners finished", ri, w)
		}
	}
	if c.Err == nil {
		c.Detail = "word 0 on every replica"
	}
	v.Checks = append(v.Checks, c)

	c = check.Result{Name: "contention-real"}
	if v.Retries == 0 {
		c.Err = fmt.Errorf("no retries recorded — scenario exercised nothing")
	} else {
		c.Detail = fmt.Sprintf("%d retries absorbed NIC-side", v.Retries)
	}
	v.Checks = append(v.Checks, c)
	return v
}

// LockContentionMatrix runs seedsPer scenarios over the worker pool;
// verdicts come back in seed order.
func LockContentionMatrix(seed int64, seedsPer int) []LockContentionVerdict {
	out, _ := RunParallel(Parallelism(), seedsPer, func(i int) (LockContentionVerdict, error) {
		return RunLockContention(LockContentionParams{Seed: seed + int64(i)}), nil
	})
	return out
}
